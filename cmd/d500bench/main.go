// Command d500bench regenerates every table and figure of the Deep500
// paper's evaluation (§V) on the Deep500-Go reproduction stack and emits
// machine-readable benchmark reports (internal/bench schema).
//
// Usage:
//
//	d500bench -experiment all                       # everything (paper-scale)
//	d500bench -experiment fig6conv -quick
//	d500bench -experiment tables -quick -format json -out bench.json
//	d500bench -compare old.json new.json            # regression gate
//	d500bench -experiment tables -quick -baseline BENCH_BASELINE.json
//	d500bench -list
//
// Exit codes: 0 success, 1 experiment failure or classified regression,
// 2 usage error (unknown experiment id, bad flags).
package main

import (
	"fmt"
	"io"
	"os"

	"flag"

	"deep500/internal/bench"
	"deep500/internal/core"
	"deep500/internal/executor"
)

func main() { os.Exit(run()) }

func run() int {
	experiment := flag.String("experiment", "all", "experiment id (or 'all')")
	quick := flag.Bool("quick", false, "scaled-down problem sizes and re-runs")
	seed := flag.Uint64("seed", 500, "global RNG seed")
	exec := flag.String("exec", "sequential", "graph execution backend: sequential, parallel")
	arena := flag.Bool("arena", false, "recycle activation buffers through a tensor arena")
	format := flag.String("format", "text", "output format: text or json")
	out := flag.String("out", "", "write the JSON benchmark report to this file")
	compare := flag.String("compare", "", "compare this baseline report against a second report (positional arg) and exit")
	baseline := flag.String("baseline", "", "after running, gate the fresh report against this baseline report")
	threshold := flag.Float64("threshold", bench.DefaultThreshold, "relative median change classified as improvement/regression")
	list := flag.Bool("list", false, "list experiment ids and exit")
	flag.Parse()

	if *format != "text" && *format != "json" {
		fmt.Fprintf(os.Stderr, "d500bench: unknown -format %q (text or json)\n", *format)
		return 2
	}

	// Pure comparison mode: no experiments run.
	if *compare != "" {
		if flag.NArg() != 1 {
			fmt.Fprintln(os.Stderr, "d500bench: -compare OLD.json needs exactly one positional argument: NEW.json")
			return 2
		}
		return compareReports(*compare, flag.Arg(0), *threshold, *format)
	}

	if _, err := executor.BackendByName(*exec); err != nil {
		fmt.Fprintln(os.Stderr, "d500bench:", err)
		return 2
	}
	o := core.Options{Quick: *quick, Seed: *seed, Exec: *exec, Arena: *arena}
	suite := bench.NewSuite()
	core.RegisterExperiments(suite, o)

	if *list {
		for _, id := range suite.IDs() {
			fmt.Println(id)
		}
		return 0
	}

	targets := []string{*experiment}
	if *experiment == "all" {
		targets = suite.IDs()
	}
	for _, id := range targets {
		if !suite.Has(id) {
			fmt.Fprintf(os.Stderr, "d500bench: unknown experiment %q; known ids:\n", id)
			for _, known := range suite.IDs() {
				fmt.Fprintln(os.Stderr, "  "+known)
			}
			return 2
		}
	}

	env := bench.CaptureEnv()
	env.ExecBackend = *exec
	env.Arena = *arena
	env.Quick = *quick
	env.Seed = *seed

	var human io.Writer = os.Stdout
	if *format == "json" {
		human = io.Discard // stdout carries the report itself
	}
	report, err := suite.Run(targets, bench.RunConfig{Out: human, Env: env})
	if err != nil {
		fmt.Fprintf(os.Stderr, "d500bench: %v\n", err)
		return 1
	}
	if *format == "json" {
		if err := report.WriteJSON(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "d500bench: %v\n", err)
			return 1
		}
	}
	if *out != "" {
		if err := report.WriteFile(*out); err != nil {
			fmt.Fprintf(os.Stderr, "d500bench: %v\n", err)
			return 1
		}
	}
	if *baseline != "" {
		old, err := bench.ReadReport(*baseline)
		if err != nil {
			fmt.Fprintf(os.Stderr, "d500bench: %v\n", err)
			return 1
		}
		cmp := bench.Compare(old, report, bench.CompareConfig{Threshold: *threshold})
		cmp.Render(os.Stderr)
		if cmp.Regressed > 0 {
			fmt.Fprintf(os.Stderr, "d500bench: %d metric(s) regressed against %s\n", cmp.Regressed, *baseline)
			return 1
		}
	}
	return 0
}

func compareReports(oldPath, newPath string, threshold float64, format string) int {
	oldR, err := bench.ReadReport(oldPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "d500bench: %v\n", err)
		return 1
	}
	newR, err := bench.ReadReport(newPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "d500bench: %v\n", err)
		return 1
	}
	cmp := bench.Compare(oldR, newR, bench.CompareConfig{Threshold: threshold})
	if format == "json" {
		if err := cmp.WriteJSON(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "d500bench: %v\n", err)
			return 1
		}
	} else {
		cmp.Render(os.Stdout)
	}
	if cmp.Regressed > 0 {
		fmt.Fprintf(os.Stderr, "d500bench: %d metric(s) regressed\n", cmp.Regressed)
		return 1
	}
	return 0
}
