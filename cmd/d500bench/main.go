// Command d500bench regenerates every table and figure of the Deep500
// paper's evaluation (§V) through the public d500 Session API and emits
// machine-readable benchmark reports (internal/bench schema).
//
// Usage:
//
//	d500bench -experiment all                       # everything (paper-scale)
//	d500bench -experiment fig6conv -quick
//	d500bench -experiment tables,compile -quick     # comma-separated ids
//	d500bench -experiment compile -quick -opt       # compile pipeline everywhere
//	d500bench -experiment tables -quick -format json -out bench.json
//	d500bench -experiment all -quick -timeout 2m    # deadline-bounded run
//	d500bench -compare old.json new.json            # regression gate
//	d500bench -experiment tables -quick -baseline BENCH_BASELINE.json
//	d500bench -list
//
// Exit codes: 0 success, 1 experiment failure or classified regression,
// 2 usage error (unknown experiment id, bad flags).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"

	"deep500/d500"
	"deep500/internal/bench"
)

func main() { os.Exit(run()) }

func run() int {
	experiment := flag.String("experiment", "all", "comma-separated experiment ids (or 'all')")
	quick := flag.Bool("quick", false, "scaled-down problem sizes and re-runs")
	seed := flag.Uint64("seed", 500, "global RNG seed")
	exec := flag.String("exec", "sequential", "graph execution backend: sequential, parallel")
	arena := flag.Bool("arena", false, "recycle activation buffers through a tensor arena")
	opt := flag.Bool("opt", false, "run the compile pipeline (fusion/folding/DCE) over every experiment model")
	gemm := flag.String("gemm", "", "GEMM kernel algorithm: naive, blocked, parallel, packed (default packed)")
	plan := flag.Bool("plan", false, "statically plan forward activation memory (zero-alloc steady-state inference)")
	timeout := flag.Duration("timeout", 0, "abort the suite after this duration (0 = no deadline)")
	format := flag.String("format", "text", "output format: text or json")
	out := flag.String("out", "", "write the JSON benchmark report to this file")
	compare := flag.String("compare", "", "compare this baseline report against a second report (positional arg) and exit")
	baseline := flag.String("baseline", "", "after running, gate the fresh report against this baseline report")
	threshold := flag.Float64("threshold", bench.DefaultThreshold, "relative median change classified as improvement/regression")
	list := flag.Bool("list", false, "list experiment ids and exit")
	flag.Parse()

	if *format != "text" && *format != "json" {
		fmt.Fprintf(os.Stderr, "d500bench: unknown -format %q (text or json)\n", *format)
		return 2
	}

	// Pure comparison mode: no experiments run.
	if *compare != "" {
		if flag.NArg() != 1 {
			fmt.Fprintln(os.Stderr, "d500bench: -compare OLD.json needs exactly one positional argument: NEW.json")
			return 2
		}
		return compareReports(*compare, flag.Arg(0), *threshold, *format)
	}

	// Session construction validates the -exec flag: unknown backends are
	// a usage error before any experiment runs.
	sessOpts := []d500.Option{
		d500.WithBackendName(*exec),
		d500.WithSeed(*seed),
	}
	if *arena {
		sessOpts = append(sessOpts, d500.WithArena())
	}
	if *opt {
		sessOpts = append(sessOpts, d500.WithOptimize())
	}
	if *gemm != "" {
		sessOpts = append(sessOpts, d500.WithGemm(*gemm))
	}
	if *plan {
		sessOpts = append(sessOpts, d500.WithMemPlan())
	}
	if *quick {
		sessOpts = append(sessOpts, d500.WithQuick())
	}
	sess, err := d500.New(sessOpts...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "d500bench:", err)
		return 2
	}

	if *list {
		for _, id := range sess.Experiments() {
			fmt.Println(id)
		}
		return 0
	}

	// Outside -compare mode no positional arguments are meaningful; a stray
	// word (e.g. a value after a boolean flag) silently stops flag parsing,
	// so reject it loudly instead of running a misconfigured suite.
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "d500bench: unexpected argument %q (flags must precede it; boolean flags like -opt take no value)\n", flag.Arg(0))
		return 2
	}

	var targets []string
	for _, id := range strings.Split(*experiment, ",") {
		if id = strings.TrimSpace(id); id != "" {
			targets = append(targets, id)
		}
	}
	if *experiment == "all" {
		targets = sess.Experiments()
	}
	if len(targets) == 0 {
		fmt.Fprintln(os.Stderr, "d500bench: -experiment names no experiments")
		return 2
	}
	for _, id := range targets {
		if !sess.HasExperiment(id) {
			fmt.Fprintf(os.Stderr, "d500bench: unknown experiment %q; known ids:\n", id)
			for _, known := range sess.Experiments() {
				fmt.Fprintln(os.Stderr, "  "+known)
			}
			return 2
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	var human io.Writer = os.Stdout
	if *format == "json" {
		human = io.Discard // stdout carries the report itself
	}
	report, runErr := sess.Bench(ctx, targets, d500.BenchConfig{Out: human})
	if runErr != nil {
		if errors.Is(runErr, context.DeadlineExceeded) {
			fmt.Fprintf(os.Stderr, "d500bench: suite stopped at the -timeout %v deadline (%d experiment(s) completed)\n",
				*timeout, len(report.Experiments))
		} else {
			fmt.Fprintf(os.Stderr, "d500bench: %v\n", runErr)
		}
	}
	// The suite preserves experiments that completed before an error or
	// deadline; write whatever we have so partial runs are not lost.
	if *format == "json" {
		if err := report.WriteJSON(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "d500bench: %v\n", err)
			return 1
		}
	}
	if *out != "" {
		if err := report.WriteFile(*out); err != nil {
			fmt.Fprintf(os.Stderr, "d500bench: %v\n", err)
			return 1
		}
	}
	if runErr != nil {
		return 1
	}
	if *baseline != "" {
		old, err := bench.ReadReport(*baseline)
		if err != nil {
			fmt.Fprintf(os.Stderr, "d500bench: %v\n", err)
			return 1
		}
		cmp := bench.Compare(old, report, bench.CompareConfig{Threshold: *threshold})
		cmp.Render(os.Stderr)
		if cmp.Regressed > 0 {
			fmt.Fprintf(os.Stderr, "d500bench: %d metric(s) regressed against %s\n", cmp.Regressed, *baseline)
			return 1
		}
	}
	return 0
}

func compareReports(oldPath, newPath string, threshold float64, format string) int {
	oldR, err := bench.ReadReport(oldPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "d500bench: %v\n", err)
		return 1
	}
	newR, err := bench.ReadReport(newPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "d500bench: %v\n", err)
		return 1
	}
	cmp := bench.Compare(oldR, newR, bench.CompareConfig{Threshold: threshold})
	if format == "json" {
		if err := cmp.WriteJSON(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "d500bench: %v\n", err)
			return 1
		}
	} else {
		cmp.Render(os.Stdout)
	}
	if cmp.Regressed > 0 {
		fmt.Fprintf(os.Stderr, "d500bench: %d metric(s) regressed\n", cmp.Regressed)
		return 1
	}
	return 0
}
