// Command d500bench regenerates every table and figure of the Deep500
// paper's evaluation (§V) on the Deep500-Go reproduction stack.
//
// Usage:
//
//	d500bench -experiment all            # everything (paper-scale)
//	d500bench -experiment fig6conv -quick
//	d500bench -list
//
// Experiments: tables, fig2, fig6conv, fig6gemm, fig6acc, fig7, overhead,
// fig8, table3, fig9, fig10, fig11, fig12strong, fig12weak, all.
package main

import (
	"flag"
	"fmt"
	"os"

	"deep500/internal/core"
	"deep500/internal/executor"
)

func main() {
	experiment := flag.String("experiment", "all", "experiment id (or 'all')")
	quick := flag.Bool("quick", false, "scaled-down problem sizes and re-runs")
	seed := flag.Uint64("seed", 500, "global RNG seed")
	exec := flag.String("exec", "sequential", "graph execution backend: sequential, parallel")
	list := flag.Bool("list", false, "list experiment ids and exit")
	flag.Parse()

	ids := []string{"tables", "fig2", "fig6conv", "fig6gemm", "fig6acc", "fig7",
		"overhead", "fig8", "table3", "fig9", "fig10", "fig11", "fig12strong",
		"fig12weak", "validate"}
	if *list {
		for _, id := range ids {
			fmt.Println(id)
		}
		return
	}

	if _, err := executor.BackendByName(*exec); err != nil {
		fmt.Fprintln(os.Stderr, "d500bench:", err)
		os.Exit(1)
	}
	o := core.Options{Quick: *quick, Seed: *seed, Exec: *exec}
	out := os.Stdout
	run := func(id string) error {
		switch id {
		case "tables":
			core.RenderTableI().Render(out)
			core.RenderTableII().Render(out)
		case "fig2":
			core.RenderFig2().Render(out)
		case "fig6conv":
			core.RenderFig6(core.RunFig6Conv(o)).Render(out)
		case "fig6gemm":
			core.RenderFig6(core.RunFig6Gemm(o)).Render(out)
		case "fig6acc":
			t := &core.Table{Title: "§V-B: operator correctness vs fp32 direct reference",
				Headers: []string{"Algorithm(backend)", "Median l-inf"}}
			for _, r := range core.RunFig6Accuracy(o) {
				t.AddRow(r.Backend, fmt.Sprintf("%.3g", r.MedianLInf))
			}
			t.AddNote("paper reports ≈7e-4 median l-inf between Deep500 and frameworks")
			t.Render(out)
		case "fig7":
			res, err := core.RunFig7(o)
			if err != nil {
				return err
			}
			core.RenderFig7(res).Render(out)
		case "overhead":
			res, err := core.RunOverhead(o)
			if err != nil {
				return err
			}
			core.RenderOverhead(res).Render(out)
		case "fig8":
			dir, cleanup, err := core.TempWorkDir()
			if err != nil {
				return err
			}
			defer cleanup()
			res, err := core.RunFig8(o, dir)
			if err != nil {
				return err
			}
			core.RenderFig8(res).Render(out)
		case "table3":
			dir, cleanup, err := core.TempWorkDir()
			if err != nil {
				return err
			}
			defer cleanup()
			rows, err := core.RunTable3(o, dir)
			if err != nil {
				return err
			}
			core.RenderTable3(rows).Render(out)
		case "fig9":
			curves, err := core.RunFig9(o)
			if err != nil {
				return err
			}
			core.RenderConvergence("Fig. 9: optimizer convergence (ResNet-8 scaled, synthetic CIFAR-10)", curves).Render(out)
		case "fig10":
			curves, err := core.RunFig10(o)
			if err != nil {
				return err
			}
			core.RenderConvergence("Fig. 10: Adam across backends, native vs Deep500 reference", curves).Render(out)
		case "fig11":
			points, err := core.RunFig11(o)
			if err != nil {
				return err
			}
			core.RenderFig11(points).Render(out)
		case "fig12strong":
			rows, err := core.RunFig12Strong(o)
			if err != nil {
				return err
			}
			core.RenderFig12("Fig. 12 (left): strong scaling, ResNet-50, global B=1024", rows).Render(out)
		case "fig12weak":
			rows, err := core.RunFig12Weak(o)
			if err != nil {
				return err
			}
			core.RenderFig12("Fig. 12 (right): weak scaling, ResNet-50", rows).Render(out)
		case "validate":
			results, err := core.RunValidationSuite(o)
			if err != nil {
				return err
			}
			fmt.Fprintln(out, "\n== validation suite (paper §III-E / §IV) ==")
			failed := 0
			for _, r := range results {
				fmt.Fprintln(out, " ", r)
				if !r.Passed {
					failed++
				}
			}
			if failed > 0 {
				return fmt.Errorf("%d validation checks failed", failed)
			}
		default:
			return fmt.Errorf("unknown experiment %q (use -list)", id)
		}
		return nil
	}

	targets := []string{*experiment}
	if *experiment == "all" {
		targets = ids
	}
	for _, id := range targets {
		if err := run(id); err != nil {
			fmt.Fprintf(os.Stderr, "d500bench: %s: %v\n", id, err)
			os.Exit(1)
		}
	}
}
