// Command d500serve runs the Deep500-Go online-inference server: one or
// more models — trained D5NX checkpoints or freshly initialized zoo
// architectures — behind a multi-tenant model registry, each with its own
// dynamic micro-batching queue and session-replica pool (optionally
// autoscaled), over the HTTP JSON front end.
//
// Usage:
//
//	d500serve -zoo mlp                              # serve a zoo model
//	d500serve -model trained.d5nx -addr :8500       # serve a checkpoint
//	d500serve -models hi=mlp:2,lo=lenet:1           # two tenants, priorities
//	d500serve -zoo lenet -replicas 1 -max-replicas 4    # queue-driven autoscaling
//	d500serve -zoo lenet -replicas 4 -batch 16 -linger 2ms -exec parallel -arena -opt
//	d500serve -zoo mlp -log                         # JSON request log on stdout
//
// Routes: POST /v1/infer (sole model, or ?model=name), POST
// /v1/models/{name}/infer, PUT /v1/models/{name} (hot load/swap from the
// zoo or a checkpoint), DELETE /v1/models/{name} (unload), GET /v1/models
// (tenant listing with input signatures), GET /metrics (Prometheus text
// exposition — see docs/operations.md), GET /stats (serving counters as
// JSON), GET /healthz. Under -trace, GET /debug/traces serves the
// flight-recorded request traces as JSON and GET /debug/traces/perfetto
// as Chrome trace-event JSON; -pprof mounts net/http/pprof under
// /debug/pprof/. Backpressure surfaces as HTTP 429; a crashed
// replica fails its in-flight requests with 500 and is respawned unless
// -respawn=false. SIGINT or SIGTERM triggers graceful shutdown (drain the
// queues, stop the replicas), bounded by -grace.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"deep500/d500"
	"deep500/internal/graph"
	"deep500/internal/models"
)

// zooModel builds a headless (inference-only) zoo architecture at its
// classic input geometry.
func zooModel(name string) (*graph.Model, error) {
	mnist := models.Config{Classes: 10, Channels: 1, Height: 28, Width: 28, Seed: 42}
	cifar := models.Config{Classes: 10, Channels: 3, Height: 32, Width: 32, Seed: 42}
	switch strings.ToLower(name) {
	case "mlp":
		return models.MLP(mnist, 256, 128), nil
	case "lenet":
		return models.LeNet(mnist), nil
	case "resnet8":
		return models.ResNet(8, cifar), nil
	case "resnet18":
		return models.ResNet(18, cifar), nil
	case "wrn16":
		return models.WideResNet(16, 2, cifar), nil
	default:
		return nil, fmt.Errorf("unknown zoo model %q (mlp, lenet, resnet8, resnet18, wrn16)", name)
	}
}

// tenantSpec is one -models entry: a serving name, a zoo architecture,
// and an admission priority.
type tenantSpec struct {
	name     string
	zoo      string
	priority int
}

// parseTenants parses the -models list: comma-separated name=zoo or
// name=zoo:priority entries.
func parseTenants(s string) ([]tenantSpec, error) {
	var out []tenantSpec
	for _, entry := range strings.Split(s, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		name, rest, ok := strings.Cut(entry, "=")
		if !ok || name == "" {
			return nil, fmt.Errorf("bad -models entry %q (want name=zoo or name=zoo:priority)", entry)
		}
		spec := tenantSpec{name: name}
		zoo, prio, hasPrio := strings.Cut(rest, ":")
		spec.zoo = zoo
		if hasPrio {
			p, err := strconv.Atoi(prio)
			if err != nil {
				return nil, fmt.Errorf("bad priority in -models entry %q: %v", entry, err)
			}
			spec.priority = p
		}
		out = append(out, spec)
	}
	if len(out) == 0 {
		return nil, errors.New("-models is empty")
	}
	return out, nil
}

func main() { os.Exit(run()) }

func run() int {
	addr := flag.String("addr", ":8500", "listen address")
	modelPath := flag.String("model", "", "serve this D5NX checkpoint (overrides -zoo)")
	zoo := flag.String("zoo", "mlp", "serve a freshly initialized zoo model: mlp, lenet, resnet8, resnet18, wrn16")
	tenants := flag.String("models", "", "serve several tenants: name=zoo:priority, comma-separated (overrides -zoo and -model)")
	batch := flag.Int("batch", 8, "micro-batch flush size (1 disables batching)")
	linger := flag.Duration("linger", 2*time.Millisecond, "max wait for a batch to fill")
	replicas := flag.Int("replicas", 2, "session replicas serving concurrently (the autoscaler's floor)")
	maxReplicas := flag.Int("max-replicas", 0, "autoscale each tenant's pool up to this many replicas (0 = fixed pool)")
	scaleEvery := flag.Duration("scale-interval", 0, "autoscaler sampling interval (0 = default 25ms)")
	scaleUp := flag.Float64("scale-up", 0, "queue-occupancy fraction that triggers a scale-up (0 = default 0.5)")
	scaleIdle := flag.Duration("scale-idle", 0, "idle time before a scaled-up replica retires (0 = default 500ms)")
	queue := flag.Int("queue", 0, "admission queue depth (0 = replicas*batch*4)")
	execName := flag.String("exec", "sequential", "graph execution backend: sequential, parallel")
	arena := flag.Bool("arena", false, "recycle activation buffers through a shared tensor arena")
	optimize := flag.Bool("opt", false, "compile the graph before serving (fusion/folding/DCE)")
	respawn := flag.Bool("respawn", true, "rebuild crashed replicas from the shared weights")
	logReq := flag.Bool("log", false, "write one JSON line per HTTP request to stdout")
	traceOn := flag.Bool("trace", false, "record request traces into the in-memory flight recorder (GET /debug/traces)")
	traceSlow := flag.Duration("trace-slow", 0, "tail-sample any request at least this slow (implies -trace; 0 = default 250ms)")
	pprofOn := flag.Bool("pprof", false, "mount net/http/pprof profiles under /debug/pprof/")
	grace := flag.Duration("grace", 10*time.Second, "graceful shutdown budget")
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "d500serve: unexpected argument %q (boolean flags like -opt and -arena take no value)\n", flag.Arg(0))
		return 2
	}

	metrics := d500.NewMetrics()
	sessOpts := []d500.Option{
		d500.WithBackendName(*execName),
		d500.WithHook(metrics.Hook()),
	}
	// One tracer shared by every tenant's replicas: all request traces land
	// in one flight recorder, served at /debug/traces. The d500_trace_*
	// series are always registered so dashboards keep a stable shape.
	var tracer *d500.Tracer
	if *traceOn || *traceSlow > 0 {
		tc := d500.DefaultTraceConfig()
		tc.Process = "serve"
		if *traceSlow > 0 {
			tc.SlowThreshold = *traceSlow
		}
		var err error
		if tracer, err = d500.NewTracer(tc); err != nil {
			fmt.Fprintln(os.Stderr, "d500serve:", err)
			return 2
		}
		sessOpts = append(sessOpts, d500.WithTracer(tracer))
	}
	metrics.ObserveTracer(tracer)
	if *arena {
		sessOpts = append(sessOpts, d500.WithArena())
	}
	if *optimize {
		sessOpts = append(sessOpts, d500.WithOptimize())
	}
	srvOpts := []d500.ServerOption{
		d500.WithMaxBatch(*batch),
		d500.WithMaxLinger(*linger),
		d500.WithReplicas(*replicas),
		d500.WithSession(sessOpts...),
	}
	if *maxReplicas > 0 {
		srvOpts = append(srvOpts, d500.WithMaxReplicas(*maxReplicas))
	}
	if *scaleEvery > 0 {
		srvOpts = append(srvOpts, d500.WithScaleInterval(*scaleEvery))
	}
	if *scaleUp > 0 {
		srvOpts = append(srvOpts, d500.WithScaleUpOccupancy(*scaleUp))
	}
	if *scaleIdle > 0 {
		srvOpts = append(srvOpts, d500.WithScaleDownIdle(*scaleIdle))
	}
	if *queue > 0 {
		srvOpts = append(srvOpts, d500.WithQueueDepth(*queue))
	}
	if *respawn {
		srvOpts = append(srvOpts, d500.WithRespawn())
	}

	// The initial tenant set: -models pairs, else the single -model
	// checkpoint or -zoo architecture under its graph name.
	type initial struct {
		name     string
		version  string
		priority int
		model    *graph.Model
	}
	var boot []initial
	if *tenants != "" {
		specs, err := parseTenants(*tenants)
		if err != nil {
			fmt.Fprintln(os.Stderr, "d500serve:", err)
			return 2
		}
		for _, s := range specs {
			m, err := zooModel(s.zoo)
			if err != nil {
				fmt.Fprintln(os.Stderr, "d500serve:", err)
				return 2
			}
			boot = append(boot, initial{name: s.name, version: "zoo/" + strings.ToLower(s.zoo), priority: s.priority, model: m})
		}
	} else {
		var (
			m       *graph.Model
			version string
			err     error
		)
		if *modelPath != "" {
			m, err = d500.Load(*modelPath)
			version = *modelPath
		} else {
			m, err = zooModel(*zoo)
			version = "zoo/" + strings.ToLower(*zoo)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "d500serve:", err)
			return 2
		}
		boot = append(boot, initial{name: m.Name, version: version, model: m})
	}

	registry, err := d500.NewRegistry()
	if err != nil {
		fmt.Fprintln(os.Stderr, "d500serve:", err)
		return 2
	}
	for _, b := range boot {
		spec := d500.ModelSpec{Version: b.version, Priority: b.priority, Model: b.model, Options: srvOpts}
		if err := registry.Load(b.name, spec); err != nil {
			fmt.Fprintln(os.Stderr, "d500serve:", err)
			registry.Close(context.Background())
			return 2
		}
		fmt.Printf("d500serve: model %q %s (%d nodes, %d params) — batch %d, linger %v, %d replica(s), exec %s",
			b.name, b.version, len(b.model.Nodes), b.model.ParamCount(), *batch, *linger, *replicas, *execName)
		if *maxReplicas > *replicas {
			fmt.Printf(", autoscale to %d", *maxReplicas)
		}
		if b.priority != 0 {
			fmt.Printf(", priority %d", b.priority)
		}
		fmt.Println()
	}
	fmt.Printf("d500serve: %d model(s) on %s\n", len(boot), *addr)

	// Hot loading over PUT /v1/models/{name}: a zoo architecture or a
	// D5NX checkpoint, served with the same options as the boot tenants.
	loader := func(name string, req d500.LoadRequest) (d500.ModelSpec, error) {
		switch {
		case req.Zoo != "" && req.Checkpoint != "":
			return d500.ModelSpec{}, errors.New("specify zoo or checkpoint, not both")
		case req.Zoo != "":
			m, err := zooModel(req.Zoo)
			if err != nil {
				return d500.ModelSpec{}, err
			}
			version := req.Version
			if version == "" {
				version = "zoo/" + strings.ToLower(req.Zoo)
			}
			return d500.ModelSpec{Version: version, Priority: req.Priority, Model: m, Options: srvOpts}, nil
		case req.Checkpoint != "":
			m, err := d500.Load(req.Checkpoint)
			if err != nil {
				return d500.ModelSpec{}, err
			}
			version := req.Version
			if version == "" {
				version = req.Checkpoint
			}
			return d500.ModelSpec{Version: version, Priority: req.Priority, Model: m, Options: srvOpts}, nil
		default:
			return d500.ModelSpec{}, errors.New("load request needs a zoo model or a checkpoint path")
		}
	}

	// Observability: Prometheus exposition on /metrics, request accounting
	// (and the optional JSON access log) around every other route.
	metrics.ObserveRegistry(registry)
	var logw io.Writer
	if *logReq {
		logw = os.Stdout
	}
	mux := http.NewServeMux()
	mux.Handle("/metrics", metrics.Handler())
	if tracer != nil {
		mux.Handle("/debug/traces", tracer.Handler())
		mux.Handle("/debug/traces/", tracer.Handler())
		slow := d500.DefaultTraceConfig().SlowThreshold
		if *traceSlow > 0 {
			slow = *traceSlow
		}
		fmt.Printf("d500serve: tracing on (tail-sampling requests >= %v) — GET /debug/traces\n", slow)
	}
	if *pprofOn {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		fmt.Println("d500serve: pprof on — GET /debug/pprof/")
	}
	mux.Handle("/", metrics.Middleware(registry.Handler(loader), logw))

	httpSrv := &http.Server{Addr: *addr, Handler: mux}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	select {
	case err := <-errc:
		// ListenAndServe never returns nil; reaching here without a signal
		// means the listener failed (e.g. the port is taken).
		fmt.Fprintln(os.Stderr, "d500serve:", err)
		registry.Close(context.Background())
		return 1
	case <-ctx.Done():
	}

	// Graceful shutdown: stop accepting connections, drain in-flight HTTP
	// requests, then drain the serving queues and stop the replicas.
	fmt.Println("d500serve: shutting down…")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *grace)
	defer cancel()
	code := 0
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		fmt.Fprintln(os.Stderr, "d500serve: http shutdown:", err)
		code = 1
	}
	if err := registry.Close(shutdownCtx); err != nil && !errors.Is(err, context.Canceled) {
		fmt.Fprintln(os.Stderr, "d500serve: server close:", err)
		code = 1
	}
	st := registry.Stats()
	fmt.Printf("d500serve: served %d request(s) in %d batch(es) (occupancy %.2f rows/batch, %d rejected, %d scale-up(s))\n",
		st.Aggregate.Requests, st.Aggregate.Batches, st.Aggregate.Occupancy, st.Aggregate.Rejected, st.Aggregate.ScaleUps)
	fmt.Println("d500serve: shutdown complete")
	return code
}
