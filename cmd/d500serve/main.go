// Command d500serve runs the Deep500-Go online-inference server: a model
// — a trained D5NX checkpoint or a freshly initialized zoo architecture —
// behind the dynamic micro-batching queue and session-replica pool, over
// the HTTP JSON front end.
//
// Usage:
//
//	d500serve -zoo mlp                              # serve a zoo model
//	d500serve -model trained.d5nx -addr :8500       # serve a checkpoint
//	d500serve -zoo lenet -replicas 4 -batch 16 -linger 2ms -exec parallel -arena -opt
//	d500serve -zoo mlp -log                         # JSON request log on stdout
//
// Routes: POST /v1/infer (JSON feeds → JSON outputs), GET /metrics
// (Prometheus text exposition — see docs/operations.md), GET /stats
// (serving counters as JSON), GET /healthz. Backpressure surfaces as HTTP
// 429; a crashed replica fails its in-flight requests with 500 and is
// respawned unless -respawn=false. SIGINT or SIGTERM triggers graceful
// shutdown (drain the queue, stop the replicas), bounded by -grace.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"deep500/d500"
	"deep500/internal/graph"
	"deep500/internal/models"
)

// zooModel builds a headless (inference-only) zoo architecture at its
// classic input geometry.
func zooModel(name string) (*graph.Model, error) {
	mnist := models.Config{Classes: 10, Channels: 1, Height: 28, Width: 28, Seed: 42}
	cifar := models.Config{Classes: 10, Channels: 3, Height: 32, Width: 32, Seed: 42}
	switch strings.ToLower(name) {
	case "mlp":
		return models.MLP(mnist, 256, 128), nil
	case "lenet":
		return models.LeNet(mnist), nil
	case "resnet8":
		return models.ResNet(8, cifar), nil
	case "resnet18":
		return models.ResNet(18, cifar), nil
	case "wrn16":
		return models.WideResNet(16, 2, cifar), nil
	default:
		return nil, fmt.Errorf("unknown zoo model %q (mlp, lenet, resnet8, resnet18, wrn16)", name)
	}
}

func main() { os.Exit(run()) }

func run() int {
	addr := flag.String("addr", ":8500", "listen address")
	modelPath := flag.String("model", "", "serve this D5NX checkpoint (overrides -zoo)")
	zoo := flag.String("zoo", "mlp", "serve a freshly initialized zoo model: mlp, lenet, resnet8, resnet18, wrn16")
	batch := flag.Int("batch", 8, "micro-batch flush size (1 disables batching)")
	linger := flag.Duration("linger", 2*time.Millisecond, "max wait for a batch to fill")
	replicas := flag.Int("replicas", 2, "session replicas serving concurrently")
	queue := flag.Int("queue", 0, "admission queue depth (0 = replicas*batch*4)")
	execName := flag.String("exec", "sequential", "graph execution backend: sequential, parallel")
	arena := flag.Bool("arena", false, "recycle activation buffers through a shared tensor arena")
	optimize := flag.Bool("opt", false, "compile the graph before serving (fusion/folding/DCE)")
	respawn := flag.Bool("respawn", true, "rebuild crashed replicas from the shared weights")
	logReq := flag.Bool("log", false, "write one JSON line per HTTP request to stdout")
	grace := flag.Duration("grace", 10*time.Second, "graceful shutdown budget")
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "d500serve: unexpected argument %q (boolean flags like -opt and -arena take no value)\n", flag.Arg(0))
		return 2
	}

	var (
		model *graph.Model
		err   error
	)
	if *modelPath != "" {
		model, err = d500.Load(*modelPath)
	} else {
		model, err = zooModel(*zoo)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "d500serve:", err)
		return 2
	}

	metrics := d500.NewMetrics()
	sessOpts := []d500.Option{
		d500.WithBackendName(*execName),
		d500.WithHook(metrics.Hook()),
	}
	if *arena {
		sessOpts = append(sessOpts, d500.WithArena())
	}
	if *optimize {
		sessOpts = append(sessOpts, d500.WithOptimize())
	}
	srvOpts := []d500.ServerOption{
		d500.WithMaxBatch(*batch),
		d500.WithMaxLinger(*linger),
		d500.WithReplicas(*replicas),
		d500.WithSession(sessOpts...),
	}
	if *queue > 0 {
		srvOpts = append(srvOpts, d500.WithQueueDepth(*queue))
	}
	if *respawn {
		srvOpts = append(srvOpts, d500.WithRespawn())
	}
	server, err := d500.NewServer(model, srvOpts...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "d500serve:", err)
		return 2
	}

	fmt.Printf("d500serve: model %q (%d nodes, %d params) on %s — batch %d, linger %v, %d replica(s), exec %s\n",
		model.Name, len(model.Nodes), model.ParamCount(), *addr, *batch, *linger, *replicas, *execName)
	if stats, ok := server.OptimizeStats(); ok {
		fmt.Println("d500serve:", stats)
	}

	// Observability: Prometheus exposition on /metrics, request accounting
	// (and the optional JSON access log) around every other route.
	metrics.Observe(server)
	var logw io.Writer
	if *logReq {
		logw = os.Stdout
	}
	mux := http.NewServeMux()
	mux.Handle("/metrics", metrics.Handler())
	mux.Handle("/", metrics.Middleware(server.Handler(), logw))

	httpSrv := &http.Server{Addr: *addr, Handler: mux}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	select {
	case err := <-errc:
		// ListenAndServe never returns nil; reaching here without a signal
		// means the listener failed (e.g. the port is taken).
		fmt.Fprintln(os.Stderr, "d500serve:", err)
		server.Close(context.Background())
		return 1
	case <-ctx.Done():
	}

	// Graceful shutdown: stop accepting connections, drain in-flight HTTP
	// requests, then drain the serving queue and stop the replicas.
	fmt.Println("d500serve: shutting down…")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *grace)
	defer cancel()
	code := 0
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		fmt.Fprintln(os.Stderr, "d500serve: http shutdown:", err)
		code = 1
	}
	if err := server.Close(shutdownCtx); err != nil && !errors.Is(err, context.Canceled) {
		fmt.Fprintln(os.Stderr, "d500serve: server close:", err)
		code = 1
	}
	st := server.Stats()
	fmt.Printf("d500serve: served %d request(s) in %d batch(es) (occupancy %.2f rows/batch, %d rejected)\n",
		st.Requests, st.Batches, st.Occupancy, st.Rejected)
	fmt.Println("d500serve: shutdown complete")
	return code
}
