// Command d500dist is the distributed-training entry point, one binary for
// every role in the stack:
//
//	-role sim     (default) the in-process simulated cluster: goroutine
//	              ranks over the virtual α-β network, reporting accuracy,
//	              communication volume and simulated makespan (paper
//	              Level 3).
//	-role launch  the networked control plane: starts the trainer-service
//	              HTTP API (/v1/jobs), submits one job built from the
//	              flags, re-execs itself as one OS process per rank
//	              (parameter server + workers over loopback TCP), monitors
//	              heartbeats, restarts dead workers from checkpoints, and
//	              waits for the job to finish.
//	-role ps      one rank process (internal; spawned by launch).
//	-role worker  one rank process (internal; spawned by launch).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"deep500/d500"
	"deep500/internal/dist"
	"deep500/internal/jobs"
	"deep500/internal/models"
	"deep500/internal/mpi"
)

func main() {
	role := flag.String("role", "sim", "sim, launch, ps or worker")
	scheme := flag.String("scheme", "dsgd", "sim: dsgd, dpsgd, mavg, sparse, pssgd, asgd, stale; launch: asgd, pssgd, dsgd")
	nodes := flag.Int("nodes", 4, "sim: number of simulated nodes")
	workers := flag.Int("workers", 2, "launch: number of worker processes")
	epochs := flag.Int("epochs", 4, "epochs")
	batch := flag.Int("batch", 16, "per-node minibatch")
	lr := flag.Float64("lr", 0.05, "learning rate")
	samples := flag.Int("samples", 1920, "synthetic training samples")
	seed := flag.Uint64("seed", 42, "seed")
	hidden := flag.Int("hidden", 32, "launch: MLP hidden width")
	optimizer := flag.String("optimizer", "sgd", "launch: sgd, momentum, adam, rmsprop")
	quant := flag.Uint("quant", 0, "launch: gradient quantization bits (0 = full precision)")
	ckptDir := flag.String("checkpoint-dir", "", "launch: exact-resume checkpoint directory (enables restart recovery)")
	ckptEvery := flag.Int("checkpoint-every", 5, "launch: checkpoint cadence in steps")
	maxRestarts := flag.Int("max-restarts", 2, "launch: per-worker restart budget")
	addr := flag.String("addr", "127.0.0.1:6500", "launch: control-plane HTTP listen address")
	hbTimeout := flag.Duration("heartbeat-timeout", 15*time.Second, "launch: silence before a rank is declared dead")
	// Rank-process plumbing (set by the launcher, not by hand).
	jobID := flag.String("job", "", "ps/worker: job ID")
	rank := flag.Int("rank", -1, "ps/worker: rank index")
	control := flag.String("control", "", "ps/worker: control-plane base URL")
	flag.Parse()

	switch strings.ToLower(*role) {
	case "sim":
		runSim(*scheme, *nodes, *epochs, *batch, *lr, *samples, *seed)
	case "launch":
		runLaunch(launchConfig{
			spec: jobs.Spec{
				Scheme:          jobs.Scheme(strings.ToLower(*scheme)),
				Workers:         *workers,
				Epochs:          *epochs,
				Batch:           *batch,
				LR:              *lr,
				Samples:         *samples,
				Seed:            *seed,
				Hidden:          *hidden,
				Optimizer:       *optimizer,
				QuantBits:       *quant,
				CheckpointDir:   *ckptDir,
				CheckpointEvery: *ckptEvery,
				MaxRestarts:     *maxRestarts,
			},
			addr:      *addr,
			hbTimeout: *hbTimeout,
		})
	case "ps", "worker":
		runRankProcess(*jobID, *rank, *control)
	default:
		fmt.Fprintf(os.Stderr, "d500dist: unknown role %q (sim, launch, ps, worker)\n", *role)
		os.Exit(2)
	}
}

// ---- launch: the networked control plane ----

type launchConfig struct {
	spec      jobs.Spec
	addr      string
	hbTimeout time.Duration
}

func runLaunch(cfg launchConfig) {
	self, err := os.Executable()
	if err != nil {
		fatal(err)
	}
	ln, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		fatal(err)
	}
	controlURL := "http://" + ln.Addr().String()

	mgr, err := jobs.NewManager(jobs.Config{
		Runner:           &jobs.ExecRunner{Binary: self, ControlURL: controlURL},
		HeartbeatTimeout: cfg.hbTimeout,
	})
	if err != nil {
		fatal(err)
	}
	srv := &http.Server{Handler: jobs.Handler(mgr)}
	go srv.Serve(ln)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	job, err := mgr.Submit(cfg.spec)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("d500dist: control plane on %s, job %s (%s, %d workers, world %d)\n",
		controlURL, job.ID, job.Spec.Scheme, job.Spec.Workers, job.Spec.WorldSize())

	// Wait for a terminal state, narrating worker restarts as they happen.
	lastRestarts := 0
	ticker := time.NewTicker(250 * time.Millisecond)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			fmt.Fprintln(os.Stderr, "d500dist: interrupted, cancelling job")
			mgr.Cancel(job.ID)
		case <-ticker.C:
		}
		j, err := mgr.Get(job.ID)
		if err != nil {
			fatal(err)
		}
		if r := totalRestarts(j); r > lastRestarts {
			fmt.Printf("d500dist: restarted %d worker(s) from checkpoint\n", r-lastRestarts)
			lastRestarts = r
		}
		if j.State.Terminal() {
			printOutcome(j)
			mgr.Shutdown()
			srv.Close()
			if j.State != jobs.StateSucceeded {
				os.Exit(1)
			}
			return
		}
	}
}

func totalRestarts(j *jobs.Job) int {
	n := 0
	for _, w := range j.Workers {
		n += w.Restarts
	}
	return n
}

func printOutcome(j *jobs.Job) {
	fmt.Printf("d500dist: job %s %s", j.ID, j.State)
	if j.Error != "" {
		fmt.Printf(" (%s)", j.Error)
	}
	fmt.Println()
	out, _ := json.MarshalIndent(j.Workers, "", "  ")
	fmt.Println(string(out))
}

// ---- ps / worker: one rank process ----

func runRankProcess(jobID string, rank int, control string) {
	if jobID == "" || rank < 0 || control == "" {
		fmt.Fprintln(os.Stderr, "d500dist: -job, -rank and -control are required for rank roles")
		os.Exit(2)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := jobs.RunRank(ctx, jobs.RankConfig{JobID: jobID, Rank: rank, ControlURL: control}); err != nil {
		fmt.Fprintf(os.Stderr, "d500dist: rank %d: %v\n", rank, err)
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "d500dist:", err)
	os.Exit(1)
}

// ---- sim: the in-process simulated cluster (paper Level 3) ----

func runSim(scheme string, nodes, epochs, batch int, lr float64, samples int, seed uint64) {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	centralized := false
	switch strings.ToLower(scheme) {
	case "pssgd", "asgd", "stale":
		centralized = true
	case "dsgd", "dpsgd", "mavg", "sparse":
	default:
		fmt.Fprintf(os.Stderr, "d500dist: unknown scheme %q\n", scheme)
		os.Exit(1)
	}

	cfg := models.Config{Classes: 4, Channels: 1, Height: 8, Width: 8, WithHead: true, Seed: seed}
	shape := []int{1, 8, 8}
	trainDS, testDS := d500.SyntheticSplit(samples, samples/4, cfg.Classes, shape, 0.25, seed)
	stepsPerEpoch := samples / func() int {
		w := nodes
		if centralized {
			w--
		}
		if w < 1 {
			w = 1
		}
		return w
	}() / batch

	accCh := make(chan float64, 1)
	makespan, world, err := mpi.Run(nodes, mpi.Aries(), func(r *mpi.Rank) error {
		sess, err := d500.New(d500.WithSeed(seed))
		if err != nil {
			return err
		}
		if err := sess.Open(models.MLP(cfg, 64)); err != nil {
			return err
		}
		if centralized && r.ID() == 0 {
			net, err := sess.Network()
			if err != nil {
				return err
			}
			return dist.RunPSServer(ctx, r, d500.SGD(lr),
				dist.PackParams(net), dist.ServerConfig{
					Mode:           psMode(scheme),
					Staleness:      2,
					StepsPerWorker: stepsPerEpoch * epochs,
				})
		}
		workerIdx, workers := r.ID(), nodes
		if centralized {
			workerIdx, workers = r.ID()-1, nodes-1
		}
		d, err := sess.NewDriver(d500.SGD(lr))
		if err != nil {
			return err
		}
		var opt d500.Optimizer
		switch strings.ToLower(scheme) {
		case "dsgd":
			opt = dist.NewConsistentDecentralized(d, r, mpi.AllreduceRing)
		case "dpsgd":
			opt = dist.NewNeighborAveraging(d, r)
		case "mavg":
			opt = dist.NewModelAveraging(d, r, 2)
		case "sparse":
			opt = dist.NewSparseDecentralized(d, r, 0.2)
		default:
			ge, err := sess.GraphExecutor()
			if err != nil {
				return err
			}
			opt = dist.NewCentralizedWorker(ge, r)
		}
		sampler := dist.NewDistributedSampler(trainDS, batch, workerIdx, workers, seed)
		trainer, err := sess.NewTrainer(opt, sampler, nil)
		if err != nil {
			return err
		}
		for ep := 0; ep < epochs; ep++ {
			sampler.Reset()
			for s := 0; s < stepsPerEpoch; s++ {
				b := sampler.Next()
				if b == nil {
					break
				}
				if _, err := trainer.Step(ctx, b); err != nil {
					return err
				}
			}
		}
		reporter := 0
		if centralized {
			reporter = 1
		}
		if r.ID() == reporter {
			acc, err := trainer.Evaluate(ctx, d500.SequentialSampler(testDS, 64))
			if err != nil {
				return err
			}
			accCh <- acc
		}
		return nil
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "d500dist:", err)
		os.Exit(1)
	}
	acc := <-accCh
	fmt.Printf("scheme=%s nodes=%d epochs=%d batch/node=%d\n", scheme, nodes, epochs, batch)
	fmt.Printf("final test accuracy:   %.4f\n", acc)
	fmt.Printf("simulated makespan:    %v (virtual α-β clock)\n", makespan)
	fmt.Printf("communication volume:  %.2f MB sent / %.2f MB received / %d messages\n",
		float64(world.Volume.Sent())/1e6, float64(world.Volume.Received())/1e6, world.Volume.Messages())
}

func psMode(scheme string) dist.PSMode {
	switch strings.ToLower(scheme) {
	case "asgd":
		return dist.PSAsync
	case "stale":
		return dist.PSStale
	default:
		return dist.PSSync
	}
}
