// Command d500dist runs distributed training on the simulated cluster:
// real data-parallel SGD across goroutine ranks with the chosen consistency
// scheme, reporting accuracy, per-node communication volume and simulated
// makespan (paper Level 3). Each rank drives its loop through a d500
// Session; Ctrl-C cancels decentralized runs between steps (parameter-
// server runs stop best-effort at the next server round).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"

	"deep500/d500"
	"deep500/internal/dist"
	"deep500/internal/models"
	"deep500/internal/mpi"
)

func main() {
	scheme := flag.String("scheme", "dsgd", "dsgd, dpsgd, mavg, sparse, pssgd, asgd, stale")
	nodes := flag.Int("nodes", 4, "number of simulated nodes")
	epochs := flag.Int("epochs", 4, "epochs")
	batch := flag.Int("batch", 16, "per-node minibatch")
	lr := flag.Float64("lr", 0.05, "learning rate")
	samples := flag.Int("samples", 1920, "synthetic training samples")
	seed := flag.Uint64("seed", 42, "seed")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	centralized := false
	switch strings.ToLower(*scheme) {
	case "pssgd", "asgd", "stale":
		centralized = true
	case "dsgd", "dpsgd", "mavg", "sparse":
	default:
		fmt.Fprintf(os.Stderr, "d500dist: unknown scheme %q\n", *scheme)
		os.Exit(1)
	}

	cfg := models.Config{Classes: 4, Channels: 1, Height: 8, Width: 8, WithHead: true, Seed: *seed}
	shape := []int{1, 8, 8}
	trainDS, testDS := d500.SyntheticSplit(*samples, *samples/4, cfg.Classes, shape, 0.25, *seed)
	stepsPerEpoch := *samples / func() int {
		w := *nodes
		if centralized {
			w--
		}
		if w < 1 {
			w = 1
		}
		return w
	}() / *batch

	accCh := make(chan float64, 1)
	makespan, world, err := mpi.Run(*nodes, mpi.Aries(), func(r *mpi.Rank) error {
		sess, err := d500.New(d500.WithSeed(*seed))
		if err != nil {
			return err
		}
		if err := sess.Open(models.MLP(cfg, 64)); err != nil {
			return err
		}
		if centralized && r.ID() == 0 {
			net, err := sess.Network()
			if err != nil {
				return err
			}
			return dist.RunPSServer(ctx, r, d500.SGD(*lr),
				dist.PackParams(net), dist.ServerConfig{
					Mode:           psMode(*scheme),
					Staleness:      2,
					StepsPerWorker: stepsPerEpoch * *epochs,
				})
		}
		workerIdx, workers := r.ID(), *nodes
		if centralized {
			workerIdx, workers = r.ID()-1, *nodes-1
		}
		d, err := sess.NewDriver(d500.SGD(*lr))
		if err != nil {
			return err
		}
		var opt d500.Optimizer
		switch strings.ToLower(*scheme) {
		case "dsgd":
			opt = dist.NewConsistentDecentralized(d, r, mpi.AllreduceRing)
		case "dpsgd":
			opt = dist.NewNeighborAveraging(d, r)
		case "mavg":
			opt = dist.NewModelAveraging(d, r, 2)
		case "sparse":
			opt = dist.NewSparseDecentralized(d, r, 0.2)
		default:
			ge, err := sess.GraphExecutor()
			if err != nil {
				return err
			}
			opt = dist.NewCentralizedWorker(ge, r)
		}
		sampler := dist.NewDistributedSampler(trainDS, *batch, workerIdx, workers, *seed)
		trainer, err := sess.NewTrainer(opt, sampler, nil)
		if err != nil {
			return err
		}
		for ep := 0; ep < *epochs; ep++ {
			sampler.Reset()
			for s := 0; s < stepsPerEpoch; s++ {
				b := sampler.Next()
				if b == nil {
					break
				}
				if _, err := trainer.Step(ctx, b); err != nil {
					return err
				}
			}
		}
		reporter := 0
		if centralized {
			reporter = 1
		}
		if r.ID() == reporter {
			acc, err := trainer.Evaluate(ctx, d500.SequentialSampler(testDS, 64))
			if err != nil {
				return err
			}
			accCh <- acc
		}
		return nil
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "d500dist:", err)
		os.Exit(1)
	}
	acc := <-accCh
	fmt.Printf("scheme=%s nodes=%d epochs=%d batch/node=%d\n", *scheme, *nodes, *epochs, *batch)
	fmt.Printf("final test accuracy:   %.4f\n", acc)
	fmt.Printf("simulated makespan:    %v (virtual α-β clock)\n", makespan)
	fmt.Printf("communication volume:  %.2f MB sent / %.2f MB received / %d messages\n",
		float64(world.Volume.Sent())/1e6, float64(world.Volume.Received())/1e6, world.Volume.Messages())
}

func psMode(scheme string) dist.PSMode {
	switch strings.ToLower(scheme) {
	case "asgd":
		return dist.PSAsync
	case "stale":
		return dist.PSStale
	default:
		return dist.PSSync
	}
}
