// Command d500dist is the distributed-training entry point, one binary for
// every role in the stack:
//
//	-role sim     (default) the in-process simulated cluster: goroutine
//	              ranks over the virtual α-β network, reporting accuracy,
//	              communication volume and simulated makespan (paper
//	              Level 3).
//	-role launch  the networked control plane: starts the trainer-service
//	              HTTP API (/v1/jobs), submits one job built from the
//	              flags, re-execs itself as one OS process per rank
//	              (parameter server + workers over loopback TCP), monitors
//	              heartbeats, restarts dead workers from checkpoints, and
//	              waits for the job to finish.
//	-role ps      one rank process (internal; spawned by launch).
//	-role worker  one rank process (internal; spawned by launch).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"time"

	"deep500/d500"
	"deep500/internal/dist"
	"deep500/internal/jobs"
	"deep500/internal/models"
	"deep500/internal/mpi"
	"deep500/internal/obs/trace"
)

func main() {
	role := flag.String("role", "sim", "sim, launch, ps or worker")
	scheme := flag.String("scheme", "dsgd", "sim: dsgd, dpsgd, mavg, sparse, pssgd, asgd, stale; launch: asgd, pssgd, dsgd")
	nodes := flag.Int("nodes", 4, "sim: number of simulated nodes")
	workers := flag.Int("workers", 2, "launch: number of worker processes")
	epochs := flag.Int("epochs", 4, "epochs")
	batch := flag.Int("batch", 16, "per-node minibatch")
	lr := flag.Float64("lr", 0.05, "learning rate")
	samples := flag.Int("samples", 1920, "synthetic training samples")
	seed := flag.Uint64("seed", 42, "seed")
	hidden := flag.Int("hidden", 32, "launch: MLP hidden width")
	optimizer := flag.String("optimizer", "sgd", "launch: sgd, momentum, adam, rmsprop")
	quant := flag.Uint("quant", 0, "launch: gradient quantization bits (0 = full precision)")
	ckptDir := flag.String("checkpoint-dir", "", "launch: exact-resume checkpoint directory (enables restart recovery)")
	ckptEvery := flag.Int("checkpoint-every", 5, "launch: checkpoint cadence in steps")
	maxRestarts := flag.Int("max-restarts", 2, "launch: per-worker restart budget")
	addr := flag.String("addr", "127.0.0.1:6500", "launch: control-plane HTTP listen address")
	hbTimeout := flag.Duration("heartbeat-timeout", 15*time.Second, "launch: silence before a rank is declared dead")
	traceOn := flag.Bool("trace", false, "trace the run: launcher + rank spans assemble into one tree (GET /debug/traces on -addr)")
	traceSlow := flag.Duration("trace-slow", 0, "tail-sample any step at least this slow (implies -trace; 0 = default 250ms)")
	pprofOn := flag.Bool("pprof", false, "launch: mount net/http/pprof on the control-plane listener")
	// Rank-process plumbing (set by the launcher, not by hand).
	jobID := flag.String("job", "", "ps/worker: job ID")
	rank := flag.Int("rank", -1, "ps/worker: rank index")
	control := flag.String("control", "", "ps/worker: control-plane base URL")
	flag.Parse()

	switch strings.ToLower(*role) {
	case "sim":
		runSim(*scheme, *nodes, *epochs, *batch, *lr, *samples, *seed)
	case "launch":
		runLaunch(launchConfig{
			spec: jobs.Spec{
				Scheme:          jobs.Scheme(strings.ToLower(*scheme)),
				Workers:         *workers,
				Epochs:          *epochs,
				Batch:           *batch,
				LR:              *lr,
				Samples:         *samples,
				Seed:            *seed,
				Hidden:          *hidden,
				Optimizer:       *optimizer,
				QuantBits:       *quant,
				CheckpointDir:   *ckptDir,
				CheckpointEvery: *ckptEvery,
				MaxRestarts:     *maxRestarts,
			},
			addr:      *addr,
			hbTimeout: *hbTimeout,
			traceOn:   *traceOn || *traceSlow > 0,
			traceSlow: *traceSlow,
			pprof:     *pprofOn,
		})
	case "ps", "worker":
		runRankProcess(*jobID, *rank, *control, *traceOn || *traceSlow > 0, *traceSlow)
	default:
		fmt.Fprintf(os.Stderr, "d500dist: unknown role %q (sim, launch, ps, worker)\n", *role)
		os.Exit(2)
	}
}

// ---- launch: the networked control plane ----

type launchConfig struct {
	spec      jobs.Spec
	addr      string
	hbTimeout time.Duration
	traceOn   bool
	traceSlow time.Duration
	pprof     bool
}

func runLaunch(cfg launchConfig) {
	self, err := os.Executable()
	if err != nil {
		fatal(err)
	}
	ln, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		fatal(err)
	}
	controlURL := "http://" + ln.Addr().String()

	// The launcher's tracer roots every job's span tree; rank processes get
	// the -trace flags forwarded so they trace their side and upload the
	// spans back to POST /v1/jobs/{id}/spans — one tree across processes.
	var tr *trace.Tracer
	var extraArgs []string
	if cfg.traceOn {
		opts := trace.Options{Process: "launcher"}
		if cfg.traceSlow > 0 {
			opts.SlowThreshold = cfg.traceSlow
		}
		tr = trace.New(opts)
		extraArgs = append(extraArgs, "-trace")
		if cfg.traceSlow > 0 {
			extraArgs = append(extraArgs, "-trace-slow", cfg.traceSlow.String())
		}
	}

	mgr, err := jobs.NewManager(jobs.Config{
		Runner:           &jobs.ExecRunner{Binary: self, ControlURL: controlURL, ExtraArgs: extraArgs},
		HeartbeatTimeout: cfg.hbTimeout,
		Tracer:           tr,
	})
	if err != nil {
		fatal(err)
	}
	mux := http.NewServeMux()
	if tr != nil {
		mux.Handle("/debug/traces", tr.Recorder().Handler())
		mux.Handle("/debug/traces/", tr.Recorder().Handler())
	}
	if cfg.pprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	mux.Handle("/", jobs.Handler(mgr))
	srv := &http.Server{Handler: mux}
	go srv.Serve(ln)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	job, err := mgr.Submit(cfg.spec)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("d500dist: control plane on %s, job %s (%s, %d workers, world %d)\n",
		controlURL, job.ID, job.Spec.Scheme, job.Spec.Workers, job.Spec.WorldSize())
	if rm, ok := trace.Parse(job.Spec.Trace); ok {
		fmt.Printf("d500dist: job trace %s — GET %s/debug/traces?trace=%s\n",
			trace.FormatID(rm.Trace), controlURL, trace.FormatID(rm.Trace))
	}

	// Wait for a terminal state, narrating worker restarts as they happen.
	lastRestarts := 0
	ticker := time.NewTicker(250 * time.Millisecond)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			fmt.Fprintln(os.Stderr, "d500dist: interrupted, cancelling job")
			mgr.Cancel(job.ID)
		case <-ticker.C:
		}
		j, err := mgr.Get(job.ID)
		if err != nil {
			fatal(err)
		}
		if r := totalRestarts(j); r > lastRestarts {
			fmt.Printf("d500dist: restarted %d worker(s) from checkpoint\n", r-lastRestarts)
			lastRestarts = r
		}
		if j.State.Terminal() {
			printOutcome(j)
			if tr != nil {
				printTraceSummary(tr, j)
			}
			mgr.Shutdown()
			srv.Close()
			if j.State != jobs.StateSucceeded {
				os.Exit(1)
			}
			return
		}
	}
}

func totalRestarts(j *jobs.Job) int {
	n := 0
	for _, w := range j.Workers {
		n += w.Restarts
	}
	return n
}

// printTraceSummary renders the job's assembled span tree per process.
// Rank processes upload their spans after reporting the terminal state,
// so the summary waits briefly for every rank's subtree to land.
func printTraceSummary(tr *trace.Tracer, j *jobs.Job) {
	rm, ok := trace.Parse(j.Spec.Trace)
	if !ok {
		return
	}
	want := 1 + j.Spec.WorldSize() // launcher + every rank
	deadline := time.Now().Add(2 * time.Second)
	var td trace.TraceData
	for {
		td, _ = tr.Recorder().Trace(rm.Trace)
		procs := map[string]bool{}
		for _, s := range td.Spans {
			procs[s.Process] = true
		}
		if len(procs) >= want || time.Now().After(deadline) {
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	perProc := map[string]int{}
	for _, s := range td.Spans {
		perProc[s.Process]++
	}
	names := make([]string, 0, len(perProc))
	for p := range perProc {
		names = append(names, p)
	}
	sort.Strings(names)
	fmt.Printf("d500dist: trace %s assembled %d span(s):", trace.FormatID(rm.Trace), len(td.Spans))
	for _, p := range names {
		fmt.Printf(" %s=%d", p, perProc[p])
	}
	fmt.Println()
}

func printOutcome(j *jobs.Job) {
	fmt.Printf("d500dist: job %s %s", j.ID, j.State)
	if j.Error != "" {
		fmt.Printf(" (%s)", j.Error)
	}
	fmt.Println()
	out, _ := json.MarshalIndent(j.Workers, "", "  ")
	fmt.Println(string(out))
}

// ---- ps / worker: one rank process ----

func runRankProcess(jobID string, rank int, control string, traceOn bool, traceSlow time.Duration) {
	if jobID == "" || rank < 0 || control == "" {
		fmt.Fprintln(os.Stderr, "d500dist: -job, -rank and -control are required for rank roles")
		os.Exit(2)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	rc := jobs.RankConfig{JobID: jobID, Rank: rank, ControlURL: control}
	if traceOn {
		opts := trace.Options{Process: fmt.Sprintf("rank-%d", rank)}
		if traceSlow > 0 {
			opts.SlowThreshold = traceSlow
		}
		rc.Tracer = trace.New(opts)
	}
	if err := jobs.RunRank(ctx, rc); err != nil {
		fmt.Fprintf(os.Stderr, "d500dist: rank %d: %v\n", rank, err)
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "d500dist:", err)
	os.Exit(1)
}

// ---- sim: the in-process simulated cluster (paper Level 3) ----

func runSim(scheme string, nodes, epochs, batch int, lr float64, samples int, seed uint64) {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	centralized := false
	switch strings.ToLower(scheme) {
	case "pssgd", "asgd", "stale":
		centralized = true
	case "dsgd", "dpsgd", "mavg", "sparse":
	default:
		fmt.Fprintf(os.Stderr, "d500dist: unknown scheme %q\n", scheme)
		os.Exit(1)
	}

	cfg := models.Config{Classes: 4, Channels: 1, Height: 8, Width: 8, WithHead: true, Seed: seed}
	shape := []int{1, 8, 8}
	trainDS, testDS := d500.SyntheticSplit(samples, samples/4, cfg.Classes, shape, 0.25, seed)
	stepsPerEpoch := samples / func() int {
		w := nodes
		if centralized {
			w--
		}
		if w < 1 {
			w = 1
		}
		return w
	}() / batch

	accCh := make(chan float64, 1)
	makespan, world, err := mpi.Run(nodes, mpi.Aries(), func(r *mpi.Rank) error {
		sess, err := d500.New(d500.WithSeed(seed))
		if err != nil {
			return err
		}
		if err := sess.Open(models.MLP(cfg, 64)); err != nil {
			return err
		}
		if centralized && r.ID() == 0 {
			net, err := sess.Network()
			if err != nil {
				return err
			}
			return dist.RunPSServer(ctx, r, d500.SGD(lr),
				dist.PackParams(net), dist.ServerConfig{
					Mode:           psMode(scheme),
					Staleness:      2,
					StepsPerWorker: stepsPerEpoch * epochs,
				})
		}
		workerIdx, workers := r.ID(), nodes
		if centralized {
			workerIdx, workers = r.ID()-1, nodes-1
		}
		d, err := sess.NewDriver(d500.SGD(lr))
		if err != nil {
			return err
		}
		var opt d500.Optimizer
		switch strings.ToLower(scheme) {
		case "dsgd":
			opt = dist.NewConsistentDecentralized(d, r, mpi.AllreduceRing)
		case "dpsgd":
			opt = dist.NewNeighborAveraging(d, r)
		case "mavg":
			opt = dist.NewModelAveraging(d, r, 2)
		case "sparse":
			opt = dist.NewSparseDecentralized(d, r, 0.2)
		default:
			ge, err := sess.GraphExecutor()
			if err != nil {
				return err
			}
			opt = dist.NewCentralizedWorker(ge, r)
		}
		sampler := dist.NewDistributedSampler(trainDS, batch, workerIdx, workers, seed)
		trainer, err := sess.NewTrainer(opt, sampler, nil)
		if err != nil {
			return err
		}
		for ep := 0; ep < epochs; ep++ {
			sampler.Reset()
			for s := 0; s < stepsPerEpoch; s++ {
				b := sampler.Next()
				if b == nil {
					break
				}
				if _, err := trainer.Step(ctx, b); err != nil {
					return err
				}
			}
		}
		reporter := 0
		if centralized {
			reporter = 1
		}
		if r.ID() == reporter {
			acc, err := trainer.Evaluate(ctx, d500.SequentialSampler(testDS, 64))
			if err != nil {
				return err
			}
			accCh <- acc
		}
		return nil
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "d500dist:", err)
		os.Exit(1)
	}
	acc := <-accCh
	fmt.Printf("scheme=%s nodes=%d epochs=%d batch/node=%d\n", scheme, nodes, epochs, batch)
	fmt.Printf("final test accuracy:   %.4f\n", acc)
	fmt.Printf("simulated makespan:    %v (virtual α-β clock)\n", makespan)
	fmt.Printf("communication volume:  %.2f MB sent / %.2f MB received / %d messages\n",
		float64(world.Volume.Sent())/1e6, float64(world.Volume.Received())/1e6, world.Volume.Messages())
}

func psMode(scheme string) dist.PSMode {
	switch strings.ToLower(scheme) {
	case "asgd":
		return dist.PSAsync
	case "stale":
		return dist.PSStale
	default:
		return dist.PSSync
	}
}
