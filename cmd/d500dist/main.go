// Command d500dist runs distributed training on the simulated cluster:
// real data-parallel SGD across goroutine ranks with the chosen consistency
// scheme, reporting accuracy, per-node communication volume and simulated
// makespan (paper Level 3).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"deep500/internal/dist"
	"deep500/internal/executor"
	"deep500/internal/models"
	"deep500/internal/mpi"
	"deep500/internal/training"
)

func main() {
	scheme := flag.String("scheme", "dsgd", "dsgd, dpsgd, mavg, sparse, pssgd, asgd, stale")
	nodes := flag.Int("nodes", 4, "number of simulated nodes")
	epochs := flag.Int("epochs", 4, "epochs")
	batch := flag.Int("batch", 16, "per-node minibatch")
	lr := flag.Float64("lr", 0.05, "learning rate")
	samples := flag.Int("samples", 1920, "synthetic training samples")
	seed := flag.Uint64("seed", 42, "seed")
	flag.Parse()

	centralized := false
	switch strings.ToLower(*scheme) {
	case "pssgd", "asgd", "stale":
		centralized = true
	case "dsgd", "dpsgd", "mavg", "sparse":
	default:
		fmt.Fprintf(os.Stderr, "d500dist: unknown scheme %q\n", *scheme)
		os.Exit(1)
	}

	cfg := models.Config{Classes: 4, Channels: 1, Height: 8, Width: 8, WithHead: true, Seed: *seed}
	shape := []int{1, 8, 8}
	trainDS, testDS := training.SyntheticSplit(*samples, *samples/4, cfg.Classes, shape, 0.25, *seed)
	stepsPerEpoch := *samples / func() int {
		w := *nodes
		if centralized {
			w--
		}
		if w < 1 {
			w = 1
		}
		return w
	}() / *batch

	accCh := make(chan float64, 1)
	makespan, world, err := mpi.Run(*nodes, mpi.Aries(), func(r *mpi.Rank) error {
		m := models.MLP(cfg, 64)
		e := executor.MustNew(m)
		e.SetTraining(true)
		if centralized && r.ID() == 0 {
			return dist.RunPSServer(r, training.NewGradientDescent(float32(*lr)),
				dist.PackParams(e.Network()), dist.ServerConfig{
					Mode:           psMode(*scheme),
					Staleness:      2,
					StepsPerWorker: stepsPerEpoch * *epochs,
				})
		}
		workerIdx, workers := r.ID(), *nodes
		if centralized {
			workerIdx, workers = r.ID()-1, *nodes-1
		}
		d := training.NewDriver(e, training.NewGradientDescent(float32(*lr)))
		var opt training.Optimizer
		switch strings.ToLower(*scheme) {
		case "dsgd":
			opt = dist.NewConsistentDecentralized(d, r, mpi.AllreduceRing)
		case "dpsgd":
			opt = dist.NewNeighborAveraging(d, r)
		case "mavg":
			opt = dist.NewModelAveraging(d, r, 2)
		case "sparse":
			opt = dist.NewSparseDecentralized(d, r, 0.2)
		default:
			opt = dist.NewCentralizedWorker(e, r)
		}
		sampler := dist.NewDistributedSampler(trainDS, *batch, workerIdx, workers, *seed)
		runner := training.NewRunner(opt, sampler, nil)
		for ep := 0; ep < *epochs; ep++ {
			sampler.Reset()
			for s := 0; s < stepsPerEpoch; s++ {
				b := sampler.Next()
				if b == nil {
					break
				}
				if _, err := runner.Step(b); err != nil {
					return err
				}
			}
		}
		reporter := 0
		if centralized {
			reporter = 1
		}
		if r.ID() == reporter {
			test := training.NewSequentialSampler(testDS, 64)
			accCh <- runner.Evaluate(test)
		}
		return nil
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "d500dist:", err)
		os.Exit(1)
	}
	acc := <-accCh
	fmt.Printf("scheme=%s nodes=%d epochs=%d batch/node=%d\n", *scheme, *nodes, *epochs, *batch)
	fmt.Printf("final test accuracy:   %.4f\n", acc)
	fmt.Printf("simulated makespan:    %v (virtual α-β clock)\n", makespan)
	fmt.Printf("communication volume:  %.2f MB sent / %.2f MB received / %d messages\n",
		float64(world.Volume.Sent())/1e6, float64(world.Volume.Received())/1e6, world.Volume.Messages())
}

func psMode(scheme string) dist.PSMode {
	switch strings.ToLower(scheme) {
	case "asgd":
		return dist.PSAsync
	case "stale":
		return dist.PSStale
	default:
		return dist.PSSync
	}
}
