// Command d500data generates, packs and inspects the synthetic dataset
// containers of Deep500-Go (raw binary, record shards, indexed tar).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"deep500/internal/datasets"
)

func specByName(name string) (datasets.Spec, bool) {
	for _, s := range []datasets.Spec{datasets.MNIST, datasets.FashionMNIST,
		datasets.CIFAR10, datasets.CIFAR100, datasets.ImageNet} {
		if strings.EqualFold(s.Name, name) {
			return s, true
		}
	}
	return datasets.Spec{}, false
}

func main() {
	format := flag.String("format", "record", "container: raw, record, tar")
	spec := flag.String("spec", "cifar-10", "dataset spec: mnist, fashion-mnist, cifar-10, cifar-100, imagenet")
	n := flag.Int("n", 256, "number of samples")
	shards := flag.Int("shards", 1, "record shards")
	out := flag.String("out", "dataset", "output path (prefix for record shards)")
	seed := flag.Uint64("seed", 1, "generator seed")
	inspectTar := flag.String("inspect-tar", "", "print the index of an existing tar dataset")
	flag.Parse()

	if *inspectTar != "" {
		s, ok := specByName(*spec)
		if !ok {
			fatal(fmt.Errorf("unknown spec %q", *spec))
		}
		it, err := datasets.OpenIndexedTar(*inspectTar, s)
		fatalIfErr(err)
		defer it.Close()
		fmt.Printf("%s: %d samples of %dx%dx%d\n", *inspectTar, it.Len(), s.H, s.W, s.C)
		show := it.Len()
		if show > 10 {
			show = 10
		}
		for i := 0; i < show; i++ {
			jp, label, err := it.ReadSample(i)
			fatalIfErr(err)
			fmt.Printf("  sample %3d: label=%-4d jpeg=%d bytes\n", i, label, len(jp))
		}
		return
	}

	s, ok := specByName(*spec)
	if !ok {
		fatal(fmt.Errorf("unknown spec %q", *spec))
	}
	switch *format {
	case "raw":
		fatalIfErr(datasets.WriteRawBinary(*out, s, *n, *seed))
		fmt.Printf("wrote %d raw samples (%s) to %s\n", *n, s.Name, *out)
	case "record":
		paths, err := datasets.WriteRecordDataset(*out, s, *n, *shards, *seed)
		fatalIfErr(err)
		fmt.Printf("wrote %d JPEG records (%s) across %d shard(s):\n", *n, s.Name, len(paths))
		for _, p := range paths {
			st, _ := os.Stat(p)
			fmt.Printf("  %s (%d bytes)\n", p, st.Size())
		}
	case "tar":
		fatalIfErr(datasets.WriteIndexedTar(*out, s, *n, *seed))
		fmt.Printf("wrote %d JPEG samples (%s) to indexed tar %s\n", *n, s.Name, *out)
	default:
		fatal(fmt.Errorf("unknown format %q", *format))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "d500data:", err)
	os.Exit(1)
}

func fatalIfErr(err error) {
	if err != nil {
		fatal(err)
	}
}
