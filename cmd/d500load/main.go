// Command d500load is the open-loop traffic generator for d500serve: it
// fires HTTP inference requests on a deterministic, seeded Poisson
// schedule (steady, ramp or spike profile) without waiting for
// completions — offered load is independent of service capacity, so
// overload, backpressure and autoscaler reaction are visible instead of
// self-throttled — then reports latency percentiles, goodput, and
// timeout/reject rates, and checks them against an SLO.
//
// Usage:
//
//	d500load -url http://127.0.0.1:8500 -rate 200 -duration 5s
//	d500load -url http://127.0.0.1:8500 -model hi -profile spike -rate 100 -peak 2000 \
//	         -duration 3s -spike-start 1s -spike-len 500ms -seed 500
//	d500load -rate 300 -duration 2s -slo-p99 250ms -slo-served 0.98   # exit 1 on SLO failure
//
// The request body is synthesized from the target model's input signature
// (GET /v1/models), so the generator works against any served model. The
// exit code is the SLO verdict: 0 pass, 1 fail, 2 usage/transport error.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"deep500/internal/load"
)

// modelInfo is the subset of the /v1/models listing the generator needs:
// the tenant's name and its input signature.
type modelInfo struct {
	Name   string `json:"name"`
	Inputs []struct {
		Name  string `json:"Name"`
		Shape []int  `json:"Shape"`
	} `json:"inputs"`
}

// discover fetches the served models and picks the target: the named one,
// or the sole tenant when no name is given.
func discover(client *http.Client, base, model string) (modelInfo, error) {
	resp, err := client.Get(base + "/v1/models")
	if err != nil {
		return modelInfo{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return modelInfo{}, fmt.Errorf("GET /v1/models: %s", resp.Status)
	}
	var listing struct {
		Models []modelInfo `json:"models"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&listing); err != nil {
		return modelInfo{}, fmt.Errorf("decoding /v1/models: %w", err)
	}
	if model == "" {
		if len(listing.Models) != 1 {
			names := make([]string, len(listing.Models))
			for i, m := range listing.Models {
				names[i] = m.Name
			}
			return modelInfo{}, fmt.Errorf("server has %d models (%s); pick one with -model", len(listing.Models), strings.Join(names, ", "))
		}
		return listing.Models[0], nil
	}
	for _, m := range listing.Models {
		if m.Name == model {
			return m, nil
		}
	}
	return modelInfo{}, fmt.Errorf("model %q is not served", model)
}

// buildBody synthesizes one single-row request body from the model's
// input signature (dynamic dimensions become 1).
func buildBody(info modelInfo) ([]byte, error) {
	if len(info.Inputs) == 0 {
		return nil, fmt.Errorf("model %q reports no inputs", info.Name)
	}
	feeds := make(map[string]any, len(info.Inputs))
	for _, in := range info.Inputs {
		shape := append([]int(nil), in.Shape...)
		vol := 1
		for i, d := range shape {
			if d < 0 {
				shape[i] = 1
			}
			vol *= shape[i]
		}
		feeds[in.Name] = map[string]any{"shape": shape, "data": make([]float32, vol)}
	}
	return json.Marshal(map[string]any{"feeds": feeds})
}

func main() { os.Exit(run()) }

func run() int {
	base := flag.String("url", "http://127.0.0.1:8500", "d500serve base URL")
	model := flag.String("model", "", "target model name (default: the sole served model)")
	profile := flag.String("profile", "steady", "traffic shape: steady, ramp, spike")
	rate := flag.Float64("rate", 100, "baseline arrival rate, requests/second")
	peak := flag.Float64("peak", 0, "ramp's final rate or the spike's elevated rate")
	duration := flag.Duration("duration", 5*time.Second, "generation window")
	spikeStart := flag.Duration("spike-start", 0, "spike window start offset")
	spikeLen := flag.Duration("spike-len", 0, "spike window length")
	seed := flag.Uint64("seed", 500, "schedule seed: same (profile, seed) always sends the same schedule")
	deadline := flag.Duration("deadline", 500*time.Millisecond, "per-request deadline (0 = none)")
	sloP99 := flag.Duration("slo-p99", 0, "SLO: p99 latency bound (0 = skip)")
	sloTimeout := flag.Float64("slo-timeout", 0, "SLO: max timed-out fraction of sent requests")
	sloReject := flag.Float64("slo-reject", 0, "SLO: max rejected fraction of sent requests")
	sloServed := flag.Float64("slo-served", 0, "SLO: min served fraction of sent requests (0 = skip)")
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "d500load: unexpected argument %q\n", flag.Arg(0))
		return 2
	}

	p := load.Profile{
		Kind:       load.Kind(*profile),
		Rate:       *rate,
		Peak:       *peak,
		Duration:   *duration,
		SpikeStart: *spikeStart,
		SpikeLen:   *spikeLen,
	}
	if err := p.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, "d500load:", err)
		return 2
	}

	client := &http.Client{}
	target := strings.TrimRight(*base, "/")
	info, err := discover(client, target, *model)
	if err != nil {
		fmt.Fprintln(os.Stderr, "d500load:", err)
		return 2
	}
	body, err := buildBody(info)
	if err != nil {
		fmt.Fprintln(os.Stderr, "d500load:", err)
		return 2
	}
	inferURL := target + "/v1/models/" + info.Name + "/infer"

	send := func(ctx context.Context) error {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, inferURL, bytes.NewReader(body))
		if err != nil {
			return err
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := client.Do(req)
		if err != nil {
			// Unwrap so load.Classify sees the context expiry.
			if ctxErr := ctx.Err(); ctxErr != nil {
				return ctxErr
			}
			return err
		}
		defer resp.Body.Close()
		io.Copy(io.Discard, resp.Body)
		switch resp.StatusCode {
		case http.StatusOK:
			return nil
		case http.StatusTooManyRequests, http.StatusServiceUnavailable:
			return load.ErrRejected
		default:
			return fmt.Errorf("HTTP %s", resp.Status)
		}
	}

	fmt.Printf("d500load: %s profile against %s (model %q), %.0f req/s", p.Kind, target, info.Name, p.Rate)
	if p.Kind != load.Steady {
		fmt.Printf(" peaking at %.0f req/s", p.Peak)
	}
	fmt.Printf(" for %v, seed %d\n", p.Duration, *seed)

	res, err := load.Run(context.Background(), load.Config{
		Profile:  p,
		Seed:     *seed,
		Deadline: *deadline,
		Send:     send,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "d500load:", err)
		return 2
	}

	fmt.Printf("d500load: sent %d — ok %d, rejected %d, timeout %d, failed %d\n",
		res.Sent, res.OK, res.Rejected, res.TimedOut, res.Failed)
	fmt.Printf("d500load: latency p50 %v  p95 %v  p99 %v — goodput %.1f req/s\n",
		res.Percentile(0.50).Round(time.Microsecond),
		res.Percentile(0.95).Round(time.Microsecond),
		res.Percentile(0.99).Round(time.Microsecond),
		res.Goodput())

	verdict := res.Check(load.SLO{
		P99:            *sloP99,
		MaxTimeoutFrac: *sloTimeout,
		MaxRejectFrac:  *sloReject,
		MinServedFrac:  *sloServed,
	})
	fmt.Println("d500load: slo", verdict)
	if !verdict.Pass {
		return 1
	}
	return 0
}
