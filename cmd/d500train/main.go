// Command d500train trains a model-zoo network on a synthetic dataset with
// a chosen optimizer and backend, reporting the Level 2 metrics
// (training/test accuracy, loss curve, time-to-accuracy) — a runnable
// version of the paper's training-loop manager.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"deep500/internal/executor"
	"deep500/internal/frameworks"
	"deep500/internal/graph"
	"deep500/internal/metrics"
	"deep500/internal/models"
	"deep500/internal/tensor"
	"deep500/internal/training"
)

func buildModel(name string, cfg models.Config) (*graph.Model, error) {
	switch strings.ToLower(name) {
	case "mlp":
		return models.MLP(cfg, 256, 128), nil
	case "lenet":
		return models.LeNet(cfg), nil
	case "resnet8":
		return models.ResNet(8, cfg), nil
	case "resnet18":
		return models.ResNet(18, cfg), nil
	case "wrn16":
		return models.WideResNet(16, 2, cfg), nil
	default:
		return nil, fmt.Errorf("unknown model %q (mlp, lenet, resnet8, resnet18, wrn16)", name)
	}
}

func buildOptimizer(name string, lr float64) (training.ThreeStep, error) {
	switch strings.ToLower(name) {
	case "sgd":
		return training.NewGradientDescent(float32(lr)), nil
	case "momentum":
		return training.NewMomentum(float32(lr), 0.9), nil
	case "nesterov":
		return training.NewNesterov(float32(lr), 0.9), nil
	case "adagrad":
		return training.NewAdaGrad(float32(lr)), nil
	case "rmsprop":
		return training.NewRMSProp(float32(lr), 0.9), nil
	case "adam":
		return training.NewAdam(float32(lr)), nil
	case "adam-fused":
		return training.NewFusedAdam(float32(lr)), nil
	case "accelegrad":
		return training.NewAcceleGrad(float32(lr), 1, 1), nil
	default:
		return nil, fmt.Errorf("unknown optimizer %q", name)
	}
}

func main() {
	model := flag.String("model", "lenet", "model: mlp, lenet, resnet8, resnet18, wrn16")
	opt := flag.String("optimizer", "momentum", "optimizer: sgd, momentum, nesterov, adagrad, rmsprop, adam, adam-fused, accelegrad")
	backend := flag.String("backend", "reference", "backend: reference, tfgo, torchgo, cf2go")
	execName := flag.String("exec", "sequential", "graph execution backend: sequential, parallel")
	arena := flag.Bool("arena", false, "recycle activation buffers through a tensor arena")
	epochs := flag.Int("epochs", 5, "training epochs")
	batch := flag.Int("batch", 64, "minibatch size")
	lr := flag.Float64("lr", 0.02, "learning rate")
	samples := flag.Int("samples", 2048, "synthetic training samples")
	seed := flag.Uint64("seed", 42, "seed")
	target := flag.Float64("target", 0.9, "time-to-accuracy target")
	save := flag.String("save", "", "save the trained model as D5NX to this path")
	flag.Parse()

	cfg := models.Config{Classes: 10, Channels: 3, Height: 16, Width: 16,
		WithHead: true, Seed: *seed, WidthScale: 0.5}
	if *model == "mlp" || *model == "lenet" {
		cfg.Channels, cfg.Height, cfg.Width = 1, 28, 28
		cfg.WidthScale = 1
	}
	m, err := buildModel(*model, cfg)
	fatalIf(err)

	execB, err := executor.BackendByName(*execName)
	fatalIf(err)
	opts := []executor.Option{executor.WithBackend(execB)}
	if *arena {
		opts = append(opts, executor.WithArena(tensor.NewArena()))
	}
	var exec *executor.Executor
	if *backend == "reference" {
		exec, err = executor.New(m, opts...)
	} else {
		prof, ok := frameworks.ByName(*backend)
		if !ok {
			fatalIf(fmt.Errorf("unknown backend %q", *backend))
		}
		exec, err = prof.NewExecutor(m, opts...)
	}
	fatalIf(err)
	exec.SetTraining(true)

	ts, err := buildOptimizer(*opt, *lr)
	fatalIf(err)

	shape := []int{cfg.Channels, cfg.Height, cfg.Width}
	train, test := training.SyntheticSplit(*samples, *samples/4, cfg.Classes, shape, 0.3, *seed)
	r := training.NewRunner(
		training.NewDriver(exec, ts),
		training.NewShuffleSampler(train, *batch, *seed),
		training.NewSequentialSampler(test, *batch))
	r.TTA = metrics.NewTimeToAccuracy("tta", *target)
	r.TTA.Start()
	r.AfterEpoch = func(epoch int, testAcc float64) {
		fmt.Printf("epoch %2d  test accuracy %.4f  last loss %.4f\n",
			epoch, testAcc, r.LossCurve.Last())
	}
	fmt.Printf("training %s (%d params) with %s on %s backend, B=%d, lr=%g\n",
		m.Name, m.ParamCount(), *opt, *backend, *batch, *lr)
	fatalIf(r.RunEpochs(*epochs))

	fmt.Printf("\nfinal test accuracy: %.4f (best %.4f)\n", r.TestAcc.Last(), r.TestAcc.Best())
	if ok, when := r.TTA.Reached(); ok {
		fmt.Printf("time to %.0f%% accuracy: %v\n", *target*100, when)
	} else {
		fmt.Printf("target accuracy %.0f%% not reached\n", *target*100)
	}
	if *save != "" {
		fatalIf(graph.Save(m, *save))
		fmt.Printf("model saved to %s\n", *save)
	}
}

func fatalIf(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "d500train:", err)
		os.Exit(1)
	}
}
