// Command d500train trains a model-zoo network on a synthetic dataset with
// a chosen optimizer and backend, reporting the Level 2 metrics
// (training/test accuracy, loss curve, time-to-accuracy) — a runnable
// version of the paper's training-loop manager, driven entirely through
// the public d500 Session API. Ctrl-C cancels the run between steps.
//
// -ckpt enables exact-resume checkpointing (atomic background writes every
// epoch, or every -ckpt-every steps); -resume continues an interrupted run
// from such a checkpoint. Pass the original run's flags alongside -resume —
// the model comes from the checkpoint, but optimizer, sampler and seed are
// reconstructed from the command line. See docs/operations.md.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"

	"deep500/d500"
	"deep500/internal/graph"
	"deep500/internal/models"
)

func buildModel(name string, cfg models.Config) (*graph.Model, error) {
	switch strings.ToLower(name) {
	case "mlp":
		return models.MLP(cfg, 256, 128), nil
	case "lenet":
		return models.LeNet(cfg), nil
	case "resnet8":
		return models.ResNet(8, cfg), nil
	case "resnet18":
		return models.ResNet(18, cfg), nil
	case "wrn16":
		return models.WideResNet(16, 2, cfg), nil
	default:
		return nil, fmt.Errorf("unknown model %q (mlp, lenet, resnet8, resnet18, wrn16)", name)
	}
}

func main() {
	model := flag.String("model", "lenet", "model: mlp, lenet, resnet8, resnet18, wrn16")
	opt := flag.String("optimizer", "momentum", "optimizer: sgd, momentum, nesterov, adagrad, rmsprop, adam, adam-fused, accelegrad")
	backend := flag.String("backend", "reference", "framework backend: reference, tfgo, torchgo, cf2go")
	execName := flag.String("exec", "sequential", "graph execution backend: sequential, parallel")
	arena := flag.Bool("arena", false, "recycle activation buffers through a tensor arena")
	optimize := flag.Bool("opt", false, "compile the graph before execution (fusion/folding/DCE)")
	gemm := flag.String("gemm", "", "GEMM kernel algorithm: naive, blocked, parallel, packed (default packed)")
	plan := flag.Bool("plan", false, "statically plan forward activation memory (speeds up the evaluation passes)")
	epochs := flag.Int("epochs", 5, "training epochs")
	batch := flag.Int("batch", 64, "minibatch size")
	lr := flag.Float64("lr", 0.02, "learning rate")
	samples := flag.Int("samples", 2048, "synthetic training samples")
	seed := flag.Uint64("seed", 42, "seed")
	target := flag.Float64("target", 0.9, "time-to-accuracy target")
	save := flag.String("save", "", "save the trained model as D5NX to this path")
	ckpt := flag.String("ckpt", "", "write exact-resume training checkpoints to this path")
	ckptEvery := flag.Int("ckpt-every", 0, "checkpoint cadence in steps (0 = every epoch boundary)")
	resume := flag.String("resume", "", "resume training from this checkpoint (pass the original run's flags)")
	traceOn := flag.Bool("trace", false, "trace the run (step/epoch/per-op spans); retained traces print as trace lines")
	traceSlow := flag.Duration("trace-slow", 0, "tail-sample any run at least this slow (implies -trace; 0 = default 250ms)")
	flag.Parse()
	// A stray positional (e.g. "d500train -opt adam", where boolean -opt
	// consumes no value and "adam" stops flag parsing) would otherwise run
	// silently misconfigured with every later flag ignored.
	if flag.NArg() > 0 {
		fatalIf(fmt.Errorf("unexpected argument %q (boolean flags like -opt and -arena take no value; did you mean -optimizer?)", flag.Arg(0)))
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	cfg := models.Config{Classes: 10, Channels: 3, Height: 16, Width: 16,
		WithHead: true, Seed: *seed, WidthScale: 0.5}
	if *model == "mlp" || *model == "lenet" {
		cfg.Channels, cfg.Height, cfg.Width = 1, 28, 28
		cfg.WidthScale = 1
	}
	var (
		m  *graph.Model
		cp *d500.Checkpoint
	)
	if *resume != "" {
		var err error
		cp, err = d500.Resume(*resume)
		fatalIf(err)
		m = cp.Model()
		fmt.Printf("resuming from %s (step %d, %d epoch(s) done)\n", *resume, cp.Step(), cp.EpochsDone())
	} else {
		var err error
		m, err = buildModel(*model, cfg)
		fatalIf(err)
	}

	opts := []d500.Option{
		d500.WithBackendName(*execName),
		d500.WithFramework(*backend),
		d500.WithSeed(*seed),
		d500.WithHook(d500.ConsoleHook(os.Stdout)),
	}
	if *arena {
		opts = append(opts, d500.WithArena())
	}
	if *optimize {
		opts = append(opts, d500.WithOptimize())
	}
	if *gemm != "" {
		opts = append(opts, d500.WithGemm(*gemm))
	}
	if *plan {
		opts = append(opts, d500.WithMemPlan())
	}
	if *ckptEvery > 0 {
		opts = append(opts, d500.WithCheckpointEvery(*ckptEvery))
	}
	if *traceSlow > 0 {
		opts = append(opts, d500.WithTraceSlow(*traceSlow))
	} else if *traceOn {
		opts = append(opts, d500.WithTrace())
	}
	sess, err := d500.New(opts...)
	fatalIf(err)
	fatalIf(sess.Open(m))
	if stats, ok := sess.OptimizeStats(); ok {
		fmt.Println(stats)
	}

	ts, err := d500.OptimizerByName(*opt, *lr)
	fatalIf(err)

	shape := []int{cfg.Channels, cfg.Height, cfg.Width}
	train, test := d500.SyntheticSplit(*samples, *samples/4, cfg.Classes, shape, 0.3, *seed)

	fmt.Printf("training %s (%d params) with %s on %s backend (%s exec), B=%d, lr=%g\n",
		m.Name, m.ParamCount(), *opt, sess.Framework(), sess.Backend(), *batch, *lr)
	res, err := sess.Train(ctx, d500.TrainConfig{
		Optimizer:      ts,
		Train:          d500.ShuffleSampler(train, *batch, *seed),
		Test:           d500.SequentialSampler(test, *batch),
		Epochs:         *epochs,
		TargetAccuracy: *target,
		CheckpointPath: *ckpt,
		Resume:         cp,
	})
	if errors.Is(err, context.Canceled) {
		fmt.Fprintln(os.Stderr, "d500train: interrupted, run cancelled")
		os.Exit(130)
	}
	fatalIf(err)

	fmt.Printf("\n%s\n", res)
	if res.TargetReached {
		fmt.Printf("time to %.0f%% accuracy: %v\n", *target*100, res.TimeToTarget)
	} else {
		fmt.Printf("target accuracy %.0f%% not reached\n", *target*100)
	}
	if *save != "" {
		fatalIf(sess.Save(*save))
		fmt.Printf("model saved to %s (serve it: d500serve -model %s)\n", *save, *save)
	}
}

func fatalIf(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "d500train:", err)
		os.Exit(1)
	}
}
