// Command d500info prints the Deep500-Go surveys and registries: the
// paper's Table I (framework features), Table II (benchmark features),
// Fig. 2 (nodes-over-time survey), the registered operator set, the model
// zoo, the emulated framework backends, the benchmark experiment registry
// (the ids d500bench -experiment accepts), the serving defaults of
// d500serve, and the observability defaults (tracing flight recorder,
// pprof) shared by d500serve, d500train and d500dist.
package main

import (
	"flag"
	"fmt"
	"os"

	"deep500/d500"
	"deep500/internal/frameworks"
	"deep500/internal/graph"
	"deep500/internal/jobs"
	"deep500/internal/models"
	"deep500/internal/ops"
	"deep500/internal/transport"
)

// printExperiments lists the registered benchmark experiment ids — the
// same registry d500bench prints on an unknown -experiment (exit 2).
func printExperiments() error {
	sess, err := d500.New()
	if err != nil {
		return err
	}
	fmt.Println("\nBenchmark experiments (d500bench -experiment ids):")
	for _, id := range sess.Experiments() {
		fmt.Printf("  %s\n", id)
	}
	return nil
}

// printServe renders the d500serve / d500.NewServer option surface with
// its resolved defaults.
func printServe() {
	d := d500.DefaultServerConfig()
	fmt.Println("\nServing defaults (d500serve / d500.NewServer):")
	fmt.Printf("  %-22s %d rows (flag -batch, option WithMaxBatch; 1 disables batching)\n", "max batch", d.MaxBatch)
	fmt.Printf("  %-22s %v (flag -linger, option WithMaxLinger)\n", "max linger", d.MaxLinger)
	fmt.Printf("  %-22s %d (flag -replicas, option WithReplicas)\n", "session replicas", d.Replicas)
	fmt.Printf("  %-22s %d requests (flag -queue, option WithQueueDepth; default replicas×batch×4)\n", "admission queue", d.QueueDepth)
	fmt.Printf("  %-22s %d (flag -max-replicas, option WithMaxReplicas; equal to replicas = fixed pool)\n", "max replicas", d.MaxReplicas)
	fmt.Printf("  %-22s %v (flag -scale-interval, option WithScaleInterval)\n", "scale interval", d.ScaleInterval)
	fmt.Printf("  %-22s %.2f queue occupancy (flag -scale-up, option WithScaleUpOccupancy)\n", "scale-up threshold", d.ScaleUpOccupancy)
	fmt.Printf("  %-22s %v idle (flag -scale-idle, option WithScaleDownIdle)\n", "scale-down after", d.ScaleDownIdle)
	fmt.Printf("  %-22s %v (registry option WithDrainGrace; bounds swap/unload drains)\n", "drain grace", d.DrainGrace)
	fmt.Printf("  %-22s %.2f higher-priority occupancy (registry option WithShedOccupancy)\n", "shed threshold", d.ShedOccupancy)
	fmt.Printf("  %-22s %d workers (shared kernels pool)\n", "worker budget", d.PoolWorkers)
	fmt.Printf("  %-22s %v (WithSession(WithFramework(...)))\n", "replica frameworks", d.Frameworks)
}

// printDist renders the distributed-training surface: the TCP transport's
// resolved defaults and the job-spec defaults of d500dist -role launch.
func printDist() {
	o := transport.DefaultOptions()
	fmt.Println("\nTransport defaults (internal/transport, d500dist rank fabric):")
	fmt.Printf("  %-22s %v (one dial attempt)\n", "dial timeout", o.DialTimeout)
	fmt.Printf("  %-22s %d attempts, backoff %v doubling to 1s\n", "dial retries", o.DialRetries, o.DialBackoff)
	fmt.Printf("  %-22s %v (per-frame write / handshake read)\n", "io timeout", o.IOTimeout)
	fmt.Printf("  %-22s %v (blocking receive bound)\n", "recv timeout", o.RecvTimeout)
	fmt.Printf("  %-22s full precision (flag -quant 1..8 enables quantized frames)\n", "quantize bits")

	s := jobs.Spec{}.WithDefaults()
	fmt.Println("\nJob-spec defaults (d500dist -role launch / POST /v1/jobs):")
	fmt.Printf("  %-22s %s (asgd restartable; pssgd, dsgd fail on worker loss)\n", "scheme", s.Scheme)
	fmt.Printf("  %-22s %d (+1 parameter-server rank for centralized schemes)\n", "workers", s.Workers)
	fmt.Printf("  %-22s %s lr=%g\n", "optimizer", s.Optimizer, s.LR)
	fmt.Printf("  %-22s %s hidden=%d\n", "model", s.Model, s.Hidden)
	fmt.Printf("  %-22s %d samples, batch %d, %d epochs\n", "data", s.Samples, s.Batch, s.Epochs)
	fmt.Printf("  %-22s every %d steps (flag -checkpoint-dir enables)\n", "checkpoints", s.CheckpointEvery)
	fmt.Printf("  %-22s %d per worker\n", "max restarts", s.MaxRestarts)
}

// printObs renders the observability defaults shared across the binaries:
// the tracing flight recorder behind -trace/-trace-slow (d500serve,
// d500train, d500dist) and the -pprof debug surface.
func printObs() {
	tc := d500.DefaultTraceConfig()
	fmt.Println("\nTracing defaults (flags -trace / -trace-slow on d500serve, d500train, d500dist):")
	fmt.Printf("  %-22s %v (flag -trace-slow; slower roots are always retained)\n", "slow threshold", tc.SlowThreshold)
	fmt.Printf("  %-22s 1 in %d root traces retained regardless of latency\n", "head sampling", tc.SampleEvery)
	fmt.Printf("  %-22s %d traces, oldest evicted first\n", "flight recorder", tc.Capacity)
	fmt.Printf("  %-22s %d spans per trace, overflow dropped and counted\n", "span cap", tc.MaxSpansPerTrace)
	fmt.Printf("  %-22s GET /debug/traces (JSON), /debug/traces/perfetto (Perfetto/Chrome)\n", "endpoints")
	fmt.Printf("  %-22s d500_trace_spans_total, d500_trace_spans_dropped_total, d500_trace_traces_sampled_total\n", "metrics")
	fmt.Println("\npprof (flag -pprof on d500serve and d500dist -role launch):")
	fmt.Printf("  %-22s off by default; mounts net/http/pprof at GET /debug/pprof/\n", "profiles")
}

func main() {
	table := flag.Int("table", 0, "print survey table 1 or 2")
	fig := flag.Int("fig", 0, "print survey figure 2")
	showOps := flag.Bool("ops", false, "list registered operators")
	showModels := flag.Bool("models", false, "list the model zoo")
	showBackends := flag.Bool("backends", false, "list emulated framework backends")
	showExperiments := flag.Bool("experiments", false, "list registered benchmark experiments")
	showServe := flag.Bool("serve", false, "show d500serve serving options and defaults")
	showDist := flag.Bool("dist", false, "show distributed transport and job-spec defaults")
	showObs := flag.Bool("obs", false, "show observability defaults (tracing flight recorder, pprof)")
	flag.Parse()

	any := false
	if *table == 1 {
		d500.RenderTableI(os.Stdout)
		any = true
	}
	if *table == 2 {
		d500.RenderTableII(os.Stdout)
		any = true
	}
	if *fig == 2 {
		d500.RenderFig2(os.Stdout)
		any = true
	}
	if *showOps {
		fmt.Println("\nRegistered operators (Level 0 builders):")
		for _, name := range ops.RegisteredOps() {
			schema, _ := graph.LookupSchema(name)
			domain := schema.Domain
			if domain == "" {
				domain = "standard"
			}
			fmt.Printf("  %-22s domain=%s inputs=[%d,%d]\n", name, domain, schema.MinInputs, schema.MaxInputs)
		}
		any = true
	}
	if *showModels {
		fmt.Println("\nModel zoo (D5NX builders):")
		cfg := models.Config{Classes: 10, Channels: 3, Height: 32, Width: 32, Seed: 1}
		for _, m := range []*graph.Model{
			models.LeNet(models.Config{Classes: 10, Channels: 1, Height: 28, Width: 28, Seed: 1}),
			models.AlexNet(models.Config{Classes: 1000, Channels: 3, Height: 224, Width: 224, Seed: 1}),
			models.ResNet(18, cfg),
			models.ResNet(50, cfg),
			models.WideResNet(16, 4, cfg),
			models.MLP(models.Config{Classes: 10, Channels: 1, Height: 28, Width: 28, Seed: 1}, 512, 256),
		} {
			fmt.Printf("  %-12s nodes=%-4d params=%d\n", m.Name, len(m.Nodes), m.ParamCount())
		}
		any = true
	}
	if *showBackends {
		fmt.Println("\nEmulated framework backends:")
		for _, p := range frameworks.All() {
			fmt.Printf("  %-10s %-22s dispatch=%v fused-opt=%v eager=%v\n",
				p.Name, p.DisplayName, p.OpOverhead, p.FusedOptimizers, p.Eager)
		}
		any = true
	}
	if *showExperiments {
		if err := printExperiments(); err != nil {
			fmt.Fprintln(os.Stderr, "d500info:", err)
			os.Exit(1)
		}
		any = true
	}
	if *showServe {
		printServe()
		any = true
	}
	if *showDist {
		printDist()
		any = true
	}
	if *showObs {
		printObs()
		any = true
	}
	if !any {
		d500.RenderTableI(os.Stdout)
		d500.RenderTableII(os.Stdout)
		d500.RenderFig2(os.Stdout)
		if err := printExperiments(); err != nil {
			fmt.Fprintln(os.Stderr, "d500info:", err)
			os.Exit(1)
		}
		printServe()
		printDist()
		printObs()
	}
}
