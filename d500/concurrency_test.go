package d500

import (
	"context"
	"sync"
	"testing"

	"deep500/internal/kernels"
	"deep500/internal/tensor"
)

// TestConcurrentSessionsSharedPool is the documented concurrency
// contract's proof (run under -race in CI): two Sessions sharing one
// kernels.Pool — and one model's weight tensors — can Infer concurrently,
// with arenas enabled, and produce the same outputs they produce alone.
func TestConcurrentSessionsSharedPool(t *testing.T) {
	m := serveModel()
	pool := kernels.NewPool(4)

	newSharedSession := func() *Session {
		t.Helper()
		s, err := New(WithBackend(Parallel), WithArena())
		if err != nil {
			t.Fatal(err)
		}
		// In-package shortcut: WithPool sizes a private pool, and this test
		// specifically needs both sessions on one pool instance.
		s.pool = pool
		if err := s.Open(m); err != nil {
			t.Fatal(err)
		}
		return s
	}
	s1 := newSharedSession()
	s2 := newSharedSession()
	if s1.pool != s2.pool {
		t.Fatal("sessions do not share the pool")
	}

	// Reference outputs, computed serially.
	in1, in2 := serveInput(2, 1), serveInput(2, 2)
	want1, err := s1.Infer(context.Background(), map[string]*tensor.Tensor{"x": in1})
	if err != nil {
		t.Fatal(err)
	}
	want2, err := s2.Infer(context.Background(), map[string]*tensor.Tensor{"x": in2})
	if err != nil {
		t.Fatal(err)
	}

	const rounds = 20
	var wg sync.WaitGroup
	run := func(s *Session, in *tensor.Tensor, want map[string]*tensor.Tensor) {
		defer wg.Done()
		for r := 0; r < rounds; r++ {
			got, err := s.Infer(context.Background(), map[string]*tensor.Tensor{"x": in})
			if err != nil {
				t.Errorf("round %d: %v", r, err)
				return
			}
			for name, w := range want {
				g := got[name]
				if g == nil || !tensor.SameShape(w, g) {
					t.Errorf("round %d: output %q missing or misshapen", r, name)
					return
				}
				for i, v := range w.Data() {
					if g.Data()[i] != v {
						t.Errorf("round %d: output %q diverges under concurrency: %g vs %g",
							r, name, g.Data()[i], v)
						return
					}
				}
			}
		}
	}
	wg.Add(2)
	go run(s1, in1, want1)
	go run(s2, in2, want2)
	wg.Wait()
}
