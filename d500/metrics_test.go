package d500

import (
	"bytes"
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"deep500/internal/models"
	"deep500/internal/obs"
	"deep500/internal/tensor"
)

// TestMetricsCoversCanonicalNames: once a Metrics observes a server, every
// metric in the canonical obs.CoreNames() list must be registered — the
// same invariant tools/docscheck enforces between names and
// docs/operations.md, closed from the code side. (The d500_dist_* names in
// obs.DistNames() are registered by the internal/jobs control plane and
// covered by its own conformance test.)
func TestMetricsCoversCanonicalNames(t *testing.T) {
	m := models.MLP(models.Config{Classes: 4, Channels: 1, Height: 4, Width: 4, Seed: 7}, 8)
	metrics := NewMetrics()
	srv, err := NewServer(m,
		WithMaxBatch(2),
		WithReplicas(1),
		WithSession(WithArena(), WithHook(metrics.Hook())),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close(context.Background())
	metrics.Observe(srv)

	// Serve one request so the event-driven histograms have samples.
	rng := tensor.NewRNG(3)
	if _, err := srv.Infer(context.Background(), map[string]*tensor.Tensor{
		"x": tensor.RandNormal(rng, 0, 1, 1, 1, 4, 4),
	}); err != nil {
		t.Fatal(err)
	}

	rec := httptest.NewRecorder()
	metrics.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /metrics: %d", rec.Code)
	}
	body := rec.Body.String()
	for _, name := range obs.CoreNames() {
		if !strings.Contains(body, "# TYPE "+name+" ") {
			t.Errorf("canonical metric %s is not registered by NewMetrics+Observe", name)
		}
	}
	for _, want := range []string{
		"d500_serve_queue_depth 0",
		"d500_serve_replicas_live 1",
		"d500_serve_batches_total 1",
		"d500_serve_batch_latency_seconds_bucket{le=\"+Inf\"} 1",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("missing %q in /metrics output", want)
		}
	}
}

// TestMetricsTrainingHook: training events drive the train_* series, and
// checkpoint writes are counted.
func TestMetricsTrainingHook(t *testing.T) {
	metrics := NewMetrics()
	hook := metrics.Hook()
	hook(StepEnd{Step: 1, Loss: 2.5, Accuracy: 0.25})
	hook(StepEnd{Step: 2, Loss: 1.25, Accuracy: 0.5})
	hook(EpochEnd{Epoch: 1, TestAccuracy: 0.5})
	hook(EvalEnd{Accuracy: 0.75})
	hook(CheckpointSaved{Step: 2, Epoch: 1, Path: "x.ckpt"})
	hook(ServeSample{Requests: 1, Rows: 1, QueueWait: time.Millisecond, Exec: 2 * time.Millisecond})

	rec := httptest.NewRecorder()
	metrics.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	body := rec.Body.String()
	for _, want := range []string{
		"d500_train_steps_total 2",
		"d500_train_loss 1.25",
		"d500_train_accuracy 0.5",
		"d500_train_epochs_total 1",
		"d500_eval_accuracy 0.75",
		"d500_checkpoint_writes_total 1",
		"d500_serve_queue_wait_seconds_count 1",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("missing %q in /metrics output:\n%s", want, body)
		}
	}
}

// TestMetricsMiddleware: request accounting and the JSON access log wrap
// an arbitrary handler.
func TestMetricsMiddleware(t *testing.T) {
	metrics := NewMetrics()
	var log bytes.Buffer
	h := metrics.Middleware(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusTeapot)
	}), &log)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/teapot", nil))

	rec = httptest.NewRecorder()
	metrics.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if !strings.Contains(rec.Body.String(), `d500_serve_requests_total{code="418"} 1`) {
		t.Fatalf("request not accounted:\n%s", rec.Body.String())
	}
	if !strings.Contains(log.String(), `"path":"/teapot"`) || !strings.Contains(log.String(), `"status":418`) {
		t.Fatalf("access log wrong: %s", log.String())
	}
}
