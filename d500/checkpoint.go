package d500

import (
	"errors"
	"fmt"

	"deep500/internal/graph"
)

// Checkpointing: the public wrapping of the internal D5NX binary format,
// so binaries and consumers can persist trained weights and serve them
// later without importing internal/graph.
//
// A D5NX checkpoint is the whole model — graph structure plus parameter
// tensors — in a deterministic binary encoding (same model, same bytes),
// so a train → Save → Load → serve pipeline reproduces inference exactly.

// Save writes the session's open model — including its current, possibly
// trained, parameter tensors — to path in the D5NX binary format. The
// saved graph is the model as opened (the compile pipeline's rewrites are
// an executor-side concern and are re-applied on load); parameter
// mutations from training are captured because executors reference the
// model's tensors rather than copying them.
func (s *Session) Save(path string) error {
	if s.model == nil {
		return errNotOpen
	}
	if err := graph.Save(s.model, path); err != nil {
		return fmt.Errorf("d500: saving model %q: %w", s.model.Name, err)
	}
	return nil
}

// Load reads a D5NX model checkpoint written by Session.Save (or the
// internal graph.Save). The loaded model is ready for Session.Open or
// NewServer.
func Load(path string) (*graph.Model, error) {
	if path == "" {
		return nil, errors.New("d500: Load requires a path")
	}
	m, err := graph.Load(path)
	if err != nil {
		return nil, fmt.Errorf("d500: loading model from %s: %w", path, err)
	}
	return m, nil
}
