package d500

import (
	"context"
	"errors"
	"fmt"

	"deep500/internal/bench"
	"deep500/internal/compile"
	"deep500/internal/executor"
	"deep500/internal/frameworks"
	"deep500/internal/graph"
	"deep500/internal/kernels"
	"deep500/internal/obs/trace"
	"deep500/internal/tensor"
	"deep500/internal/training"
)

// Session is a fully resolved Deep500-Go configuration: execution backend,
// framework profile, allocation strategy, seed and event hook. Open binds
// it to a model; Infer, Train, Evaluate and Bench then drive the stack
// with context-aware execution throughout.
//
// # Concurrency contract
//
// A Session is single-goroutine: no two Session methods may run
// concurrently, because a pass mutates per-pass executor state (activation
// maps, FLOP counters, arena lifetimes) without cross-call locking. What
// IS safe — and what the serving layer is built on — is running many
// Sessions concurrently from different goroutines:
//
//   - Sessions may share one kernel worker pool. The pool is a counting
//     semaphore of worker tokens; a session that finds the pool drained
//     simply runs its kernels inline, so concurrent sessions degrade to
//     sequential execution instead of oversubscribing the machine.
//     Parallel-backend sessions built without WithPool all share the
//     process-wide default pool.
//   - Sessions may share one model (Open the same *graph.Model in each):
//     parameter tensors are referenced, not copied, so all of them serve
//     the same weights. Concurrent *readers* (Infer) are safe; mutating
//     parameters (Train) while another session reads them is a data race
//     the caller must exclude.
//   - The tensor arena is internally synchronized. Each Session owns its
//     arena (WithArena), and the replicas of a Server share one.
//
// For request-level serving concurrency use NewServer, which manages a
// pool of session replicas behind a batching queue — Server, unlike
// Session, is safe for concurrent method calls. Sessions are cheap: the
// heavy state is the model's executor, built by Open.
type Session struct {
	cfg    config
	prof   *frameworks.Profile
	pool   *kernels.Pool
	tracer *Tracer

	model *graph.Model
	exec  *executor.Executor

	// benchSuite caches the registered experiment registry (see suite()).
	benchSuite *bench.Suite
}

// New resolves the options into a Session, validating everything eagerly:
// unknown backends, unknown framework names and invalid pool sizes return
// errors here, never panics later.
func New(opts ...Option) (*Session, error) {
	c := config{backend: Sequential, seed: defaultSeed}
	for _, opt := range opts {
		if opt == nil {
			continue
		}
		if err := opt(&c); err != nil {
			return nil, err
		}
	}
	s := &Session{cfg: c}
	if c.framework != "" {
		p, ok := frameworks.ByName(c.framework)
		if !ok { // unreachable: WithFramework validated, but never panic
			return nil, fmt.Errorf("d500: unknown framework backend %q", c.framework)
		}
		s.prof = &p
	}
	if c.poolWorkers > 0 {
		s.pool = kernels.NewPool(c.poolWorkers)
	}
	switch {
	case c.tracer != nil:
		// Shared tracer (WithTracer): recorder and sampling belong to the
		// owner; no hook binding, so several sessions can share one safely.
		s.tracer = c.tracer
	case c.traceOwn:
		tc := DefaultTraceConfig()
		if c.traceSlow > 0 {
			tc.SlowThreshold = c.traceSlow
		}
		opts := tc.internal()
		if c.hook != nil {
			hook := c.hook
			opts.OnRetain = func(td trace.TraceData) {
				root, ok := td.Root()
				if !ok {
					return
				}
				hook(TraceSpan{
					Name:     root.Name,
					TraceID:  fmt.Sprintf("%016x", td.ID),
					Duration: root.Duration,
					Spans:    len(td.Spans),
					Error:    root.Error,
				})
			}
		}
		s.tracer = &Tracer{t: trace.New(opts)}
	}
	return s, nil
}

// Tracer returns the session's tracer: the one WithTracer attached, the
// session-owned one WithTrace built, or nil (valid everywhere — tracing
// off). Mount Tracer().Handler() to expose the flight recorder.
func (s *Session) Tracer() *Tracer { return s.tracer }

// Backend returns the session's execution backend.
func (s *Session) Backend() Backend { return s.cfg.backend }

// Framework returns the emulated framework profile name ("reference" when
// the session uses the uninstrumented reference executor).
func (s *Session) Framework() string {
	if s.cfg.framework == "" {
		return "reference"
	}
	return s.cfg.framework
}

// Seed returns the seed driving the session's generators.
func (s *Session) Seed() uint64 { return s.cfg.seed }

// Model returns the opened model, nil before Open.
func (s *Session) Model() *graph.Model { return s.model }

// errNotOpen is returned by execution methods before Open succeeds.
var errNotOpen = errors.New("d500: session has no open model (call Open first)")

// execOptions builds fresh executor construction options; arenas are per
// executor so Open-ing a new model never shares buffers with the old one.
func (s *Session) execOptions() []executor.Option {
	var b executor.ExecBackend = executor.SequentialBackend{}
	if s.cfg.backend == Parallel {
		b = executor.NewParallelBackend(s.pool)
	}
	opts := []executor.Option{executor.WithBackend(b)}
	if s.cfg.arena {
		opts = append(opts, executor.WithArena(tensor.NewArena()))
	}
	if s.cfg.optimize {
		opts = append(opts, executor.WithOptimize(compile.Defaults()))
	}
	if s.cfg.gemm != "" {
		// The name was validated at New; ParseGemmAlgo cannot fail here.
		algo, _ := kernels.ParseGemmAlgo(s.cfg.gemm)
		opts = append(opts, executor.WithGemm(algo))
	}
	if s.cfg.memPlan {
		opts = append(opts, executor.WithMemPlan(true))
	}
	return opts
}

// Open validates the model, builds its executor under the session's
// configuration and makes it the session's active model. Re-opening with a
// different model replaces the previous executor.
func (s *Session) Open(m *graph.Model) error {
	if m == nil {
		return errors.New("d500: Open requires a non-nil model")
	}
	var (
		e   *executor.Executor
		err error
	)
	if s.prof != nil {
		e, err = s.prof.NewExecutor(m, s.execOptions()...)
	} else {
		e, err = executor.New(m, s.execOptions()...)
	}
	if err != nil {
		return fmt.Errorf("d500: opening model %q: %w", m.Name, err)
	}
	s.model, s.exec = m, e
	return nil
}

// OptimizeStats summarizes what the compile pipeline did to the open model
// (see WithOptimize). It is the public mirror of the internal compile
// report, so consumers never import internal/compile.
type OptimizeStats struct {
	// NodesBefore / NodesAfter are graph node counts around the pipeline.
	NodesBefore, NodesAfter int
	// Folded nodes were evaluated at compile time into initializers.
	Folded int
	// Eliminated nodes were unreachable from the declared outputs.
	Eliminated int
	// Fused counts operator chains collapsed into single fused nodes.
	Fused int
	// PrunedInitializers counts unreferenced initializers dropped.
	PrunedInitializers int
}

// String renders the one-line summary the binaries print under -opt.
func (s OptimizeStats) String() string {
	return fmt.Sprintf("optimized: %d → %d nodes (folded %d, eliminated %d, fused %d chains)",
		s.NodesBefore, s.NodesAfter, s.Folded, s.Eliminated, s.Fused)
}

// OptimizeStats reports the compile-pipeline rewrite statistics of the open
// model. ok is false when no model is open or the session was built without
// WithOptimize.
func (s *Session) OptimizeStats() (stats OptimizeStats, ok bool) {
	if s.exec == nil {
		return OptimizeStats{}, false
	}
	rep := s.exec.CompileReport()
	if rep == nil {
		return OptimizeStats{}, false
	}
	return OptimizeStats{
		NodesBefore:        rep.NodesBefore,
		NodesAfter:         rep.NodesAfter,
		Folded:             rep.Folded,
		Eliminated:         rep.Eliminated,
		Fused:              rep.Fused,
		PrunedInitializers: rep.PrunedInitializers,
	}, true
}

// Network exposes the live network of the open model — parameters,
// gradients and feeds — which the distributed schemes pack and scatter.
func (s *Session) Network() (*executor.Network, error) {
	if s.exec == nil {
		return nil, errNotOpen
	}
	return s.exec.Network(), nil
}

// SetTraining switches training-dependent operators (dropout, batch
// normalization) between training and inference behaviour — the escape
// hatch for step-level loops driven through NewDriver/NewTrainer.
// Session.Train and Evaluate manage the mode themselves.
func (s *Session) SetTraining(on bool) error {
	if s.exec == nil {
		return errNotOpen
	}
	s.exec.SetTraining(on)
	return nil
}

// GraphExecutor exposes the open model's executor behind the internal
// GraphExecutor interface — the handle the Level 3 worker schemes
// (dist.NewCentralizedWorker) bind to.
func (s *Session) GraphExecutor() (executor.GraphExecutor, error) {
	if s.exec == nil {
		return nil, errNotOpen
	}
	return s.exec, nil
}

// Infer runs one forward pass over the open model and returns its declared
// outputs. Cancelling ctx aborts the pass between operator dispatches.
func (s *Session) Infer(ctx context.Context, feeds map[string]*tensor.Tensor) (map[string]*tensor.Tensor, error) {
	if s.exec == nil {
		return nil, errNotOpen
	}
	return s.exec.Inference(ctx, feeds)
}

// Evaluate computes mean accuracy of the open model over a sampler in
// inference mode and emits an EvalEnd event. The model output carrying
// batch accuracy defaults to "acc"; pass a name to override it (the
// counterpart of TrainConfig.AccOutput). Inference failures — and a model
// that never produces the accuracy output — are returned as errors, never
// reported as 0% accuracy. The executor's training/inference mode is
// restored afterwards.
func (s *Session) Evaluate(ctx context.Context, data Sampler, accOutput ...string) (float64, error) {
	if s.exec == nil {
		return 0, errNotOpen
	}
	if data == nil {
		return 0, errors.New("d500: Evaluate requires a sampler")
	}
	name := "acc"
	if len(accOutput) > 0 && accOutput[0] != "" {
		name = accOutput[0]
	}
	acc, err := training.EvaluateExecutor(ctx, s.exec, data, name)
	if err != nil {
		return 0, err
	}
	s.emit(EvalEnd{Accuracy: acc})
	return acc, nil
}

// emit delivers an event to the session hook, if any.
func (s *Session) emit(e Event) {
	if s.cfg.hook != nil {
		s.cfg.hook(e)
	}
}
