package d500

import (
	"context"
	"fmt"
	"net/http"
	"sync"
	"time"

	"deep500/internal/graph"
	"deep500/internal/serve"
	"deep500/internal/tensor"
)

// Multi-tenant serving errors, re-exported like the single-server set.
var (
	// ErrUnknownModel is returned for requests naming a model the registry
	// does not serve (HTTP 404).
	ErrUnknownModel = serve.ErrUnknownModel
	// ErrShed marks a low-priority admission rejected because a
	// higher-priority tenant's queue is under pressure; it wraps
	// ErrOverloaded, so generic backpressure handling keeps working.
	ErrShed = serve.ErrShed
)

// ModelSpec describes one loadable model version for a Registry: the
// model graph plus the same ServerOption vocabulary NewServer takes.
type ModelSpec struct {
	// Version identifies the build for display and swap bookkeeping.
	Version string
	// Priority orders tenants for admission shedding (higher wins; equal
	// priorities never shed each other).
	Priority int
	// Model is the graph to serve; required.
	Model *graph.Model
	// Options configure the version's serving pool exactly like NewServer.
	Options []ServerOption
}

// ModelStatus is one tenant's reportable state (see Registry.Models).
type ModelStatus = serve.ModelStatus

// RegistryStats is the aggregate snapshot returned by Registry.Stats.
type RegistryStats = serve.RegistryStats

// LoadRequest is the HTTP model-load body (PUT /v1/models/{name}):
// version, priority, and either a zoo model name or a checkpoint path for
// the loader to resolve.
type LoadRequest = serve.LoadRequest

// LoadFunc resolves an HTTP load request into a ModelSpec — the policy
// hook that decides what "zoo" and "checkpoint" mean for this process
// (cmd/d500serve wires the built-in model zoo here).
type LoadFunc func(name string, req LoadRequest) (ModelSpec, error)

// registryConfig is the resolved registry configuration.
type registryConfig struct {
	drainGrace time.Duration
	shedOcc    float64
}

// RegistryOption configures NewRegistry.
type RegistryOption func(*registryConfig) error

// WithDrainGrace bounds how long a replaced or unloaded version's server
// may spend draining in-flight requests in the background (default 30s).
func WithDrainGrace(d time.Duration) RegistryOption {
	return func(c *registryConfig) error {
		if d <= 0 {
			return fmt.Errorf("d500: WithDrainGrace requires a positive duration, got %v", d)
		}
		c.drainGrace = d
		return nil
	}
}

// WithShedOccupancy sets the queue-occupancy fraction at or above which a
// tenant counts as pressured for priority shedding (default 0.5).
func WithShedOccupancy(frac float64) RegistryOption {
	return func(c *registryConfig) error {
		if frac <= 0 || frac > 1 {
			return fmt.Errorf("d500: WithShedOccupancy requires a fraction in (0, 1], got %g", frac)
		}
		c.shedOcc = frac
		return nil
	}
}

// Registry is the multi-tenant serving front end: a name → Server table
// with hot load/unload over HTTP, atomic version swaps (in-flight
// requests drain on the version that admitted them while new admissions
// route to the replacement), queue-driven per-model autoscaling (via each
// spec's WithMaxReplicas), and priority-based admission shedding. All
// methods are safe for concurrent use.
type Registry struct {
	inner *serve.Registry

	mu      sync.Mutex
	servers map[string]*Server // current version's wrapper per tenant
}

// NewRegistry builds an empty model registry.
func NewRegistry(opts ...RegistryOption) (*Registry, error) {
	var cfg registryConfig
	for _, opt := range opts {
		if opt == nil {
			continue
		}
		if err := opt(&cfg); err != nil {
			return nil, err
		}
	}
	return &Registry{
		inner: serve.NewRegistry(serve.RegistryOptions{
			DrainGrace:    cfg.drainGrace,
			ShedOccupancy: cfg.shedOcc,
		}),
		servers: make(map[string]*Server),
	}, nil
}

// convert wraps a d500 ModelSpec into the internal one, tracking the
// built wrapper so per-tenant state the internal layer cannot see (the
// replica-shared arena) stays observable.
func (r *Registry) convert(name string, spec ModelSpec) (serve.ModelSpec, error) {
	if spec.Model == nil {
		return serve.ModelSpec{}, fmt.Errorf("%w: model spec for %q has no graph", ErrBadRequest, name)
	}
	return serve.ModelSpec{
		Version:  spec.Version,
		Priority: spec.Priority,
		Build: func() (*serve.Server, error) {
			srv, err := NewServer(spec.Model, spec.Options...)
			if err != nil {
				return nil, err
			}
			r.mu.Lock()
			r.servers[name] = srv
			r.mu.Unlock()
			return srv.inner, nil
		},
	}, nil
}

// Load installs (or hot-swaps) the named model. A failing build leaves
// the previous version serving untouched; a successful one atomically
// replaces it — the old version drains in the background.
func (r *Registry) Load(name string, spec ModelSpec) error {
	ispec, err := r.convert(name, spec)
	if err != nil {
		return err
	}
	return r.inner.Load(name, ispec)
}

// Unload removes the named model; its server drains in the background.
func (r *Registry) Unload(name string) error { return r.inner.Unload(name) }

// Infer routes one request to the named model. Unknown names return
// ErrUnknownModel; priority-shed admissions return ErrShed.
func (r *Registry) Infer(ctx context.Context, name string, feeds map[string]*tensor.Tensor) (map[string]*tensor.Tensor, error) {
	return r.inner.Infer(ctx, name, feeds)
}

// Models lists the loaded tenants, sorted by name.
func (r *Registry) Models() []ModelStatus { return r.inner.Models() }

// Stats returns lifecycle counters plus the sum of every tenant's
// serving counters.
func (r *Registry) Stats() RegistryStats { return r.inner.Stats() }

// Handler returns the registry's HTTP front end: inference (POST
// /v1/infer?model=..., POST /v1/models/{name}/infer), the model lifecycle
// (PUT/DELETE/GET /v1/models/{name}, GET /v1/models), GET /stats and
// GET /healthz. load resolves PUT bodies into specs; nil disables hot
// loading (PUT answers 501).
func (r *Registry) Handler(load LoadFunc) http.Handler {
	var inner serve.LoadFunc
	if load != nil {
		inner = func(name string, req LoadRequest) (serve.ModelSpec, error) {
			spec, err := load(name, req)
			if err != nil {
				return serve.ModelSpec{}, err
			}
			return r.convert(name, spec)
		}
	}
	return r.inner.Handler(inner)
}

// Close unloads every model and waits for their servers to drain,
// bounded by ctx.
func (r *Registry) Close(ctx context.Context) error { return r.inner.Close(ctx) }

// arenaBytes sums the idle arena footprint across currently-loaded
// tenants, pruning wrappers whose tenant is gone (unloaded, or replaced
// by a version whose build raced a registry close).
func (r *Registry) arenaBytes() float64 {
	loaded := make(map[string]bool)
	for _, m := range r.inner.Models() {
		loaded[m.Name] = true
	}
	var total float64
	r.mu.Lock()
	for name, srv := range r.servers {
		if !loaded[name] {
			delete(r.servers, name)
			continue
		}
		if srv.arena != nil {
			total += float64(srv.arena.FreeBytes())
		}
	}
	r.mu.Unlock()
	return total
}
