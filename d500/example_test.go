package d500_test

import (
	"context"
	"fmt"
	"log"

	"deep500/d500"
	"deep500/internal/models"
)

// Example_quickstart walks the shortest useful path through the public
// API: build a zoo model, open it in a session, run one inference pass.
// Printed values are structural (node and parameter counts, output
// presence), so the example output is deterministic on every platform.
func Example_quickstart() {
	// A LeNet with a training head: inputs "x"/"labels", outputs include
	// "loss" and "acc".
	model := models.LeNet(models.Config{
		Classes: 10, Channels: 1, Height: 28, Width: 28,
		WithHead: true, Seed: 42,
	})

	sess, err := d500.New(d500.WithSeed(42))
	if err != nil {
		log.Fatal(err)
	}
	if err := sess.Open(model); err != nil {
		log.Fatal(err)
	}

	train, _ := d500.SyntheticSplit(8, 4, 10, []int{1, 28, 28}, 0.3, 7)
	batch := d500.SequentialSampler(train, 8).Next()
	out, err := sess.Infer(context.Background(), batch.Feeds())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("model %q: %d nodes, %d parameters\n",
		model.Name, len(model.Nodes), model.ParamCount())
	fmt.Printf("outputs: loss=%t acc=%t\n", out["loss"] != nil, out["acc"] != nil)
	// Output:
	// model "lenet": 14 nodes, 61706 parameters
	// outputs: loss=true acc=true
}

// ExampleSession_Train trains a small MLP on an easily learnable
// synthetic task and reports coarse, platform-independent facts about the
// result instead of raw floats.
func ExampleSession_Train() {
	model := models.MLP(models.Config{
		Classes: 4, Channels: 1, Height: 6, Width: 6,
		WithHead: true, Seed: 1,
	}, 32)

	sess, err := d500.New(d500.WithSeed(1))
	if err != nil {
		log.Fatal(err)
	}
	if err := sess.Open(model); err != nil {
		log.Fatal(err)
	}

	train, test := d500.SyntheticSplit(256, 64, 4, []int{1, 6, 6}, 0.1, 3)
	res, err := sess.Train(context.Background(), d500.TrainConfig{
		Optimizer: d500.Momentum(0.05, 0.9),
		Train:     d500.ShuffleSampler(train, 32, 1),
		Test:      d500.SequentialSampler(test, 32),
		Epochs:    3,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("epochs=%d steps=%d\n", res.Epochs, res.Steps)
	fmt.Printf("learned something: %t\n", res.FinalTestAccuracy > 0.5)
	// Output:
	// epochs=3 steps=24
	// learned something: true
}

// ExampleSession_Bench runs one registered paper experiment in quick mode
// and inspects the machine-readable report it returns.
func ExampleSession_Bench() {
	sess, err := d500.New(d500.WithQuick(), d500.WithSeed(500))
	if err != nil {
		log.Fatal(err)
	}

	rep, err := sess.Bench(context.Background(), []string{"tables"}, d500.BenchConfig{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("schema v%d, experiments: %d\n", rep.SchemaVersion, len(rep.Experiments))
	exp := rep.Experiments[0]
	fmt.Printf("id=%s records=%t\n", exp.ID, len(exp.Records) > 0)
	// Output:
	// schema v1, experiments: 1
	// id=tables records=true
}

// ExampleSession_OptimizeStats shows the graph-compilation pipeline
// (d500.WithOptimize) shrinking a model's dispatch schedule: LeNet's two
// Conv→Bias→ReLU and two Dense→Bias→ReLU chains fuse into single nodes.
// Node counts are structural, so the output is deterministic.
func ExampleSession_OptimizeStats() {
	model := models.LeNet(models.Config{
		Classes: 10, Channels: 1, Height: 28, Width: 28,
		WithHead: true, Seed: 42,
	})

	sess, err := d500.New(d500.WithOptimize(), d500.WithSeed(42))
	if err != nil {
		log.Fatal(err)
	}
	if err := sess.Open(model); err != nil {
		log.Fatal(err)
	}

	stats, ok := sess.OptimizeStats()
	fmt.Println(ok)
	fmt.Println(stats)
	// Output:
	// true
	// optimized: 14 → 10 nodes (folded 0, eliminated 0, fused 4 chains)
}
