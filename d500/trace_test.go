package d500

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"deep500/internal/models"
	"deep500/internal/obs"
	"deep500/internal/tensor"
)

func TestTraceOptionValidation(t *testing.T) {
	if _, err := New(WithTraceSlow(0)); err == nil {
		t.Error("WithTraceSlow(0) must fail")
	}
	if _, err := New(WithTraceSlow(-time.Second)); err == nil {
		t.Error("negative WithTraceSlow must fail")
	}
	if _, err := New(WithTracer(nil)); err == nil {
		t.Error("WithTracer(nil) must fail")
	}
	if _, err := NewTracer(TraceConfig{SlowThreshold: -1}); err == nil {
		t.Error("negative SlowThreshold must fail")
	}
	if _, err := NewTracer(TraceConfig{SampleEvery: -1}); err == nil {
		t.Error("negative SampleEvery must fail")
	}
}

// TestNilTracerIsInert: the documented contract that a nil *Tracer is
// valid everywhere tracing can be off.
func TestNilTracerIsInert(t *testing.T) {
	var tr *Tracer
	if spans, dropped, sampled := tr.Counters(); spans != 0 || dropped != 0 || sampled != 0 {
		t.Fatal("nil tracer reports non-zero counters")
	}
	rec := httptest.NewRecorder()
	tr.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces", nil))
	if rec.Code != http.StatusNotFound {
		t.Fatalf("nil tracer handler: %d, want 404", rec.Code)
	}
	sess, err := New()
	if err != nil {
		t.Fatal(err)
	}
	if sess.Tracer() != nil {
		t.Fatal("untraced session claims a tracer")
	}
}

// TestSessionTraceSpanEvent: a session-owned tracer (WithTrace) traces a
// training run end to end — the hook receives a TraceSpan event whose
// exemplar ID retrieves the full train.run span tree from the flight
// recorder through the public Handler.
func TestSessionTraceSpanEvent(t *testing.T) {
	var traces []TraceSpan
	sess := openSession(t, WithTrace(), WithHook(func(e Event) {
		if ts, ok := e.(TraceSpan); ok {
			traces = append(traces, ts)
		}
	}))
	if sess.Tracer() == nil {
		t.Fatal("WithTrace session owns no tracer")
	}
	train, _ := SyntheticSplit(128, 32, 4, []int{1, 8, 8}, 0.3, 7)
	if _, err := sess.Train(context.Background(), TrainConfig{
		Optimizer: SGD(0.05),
		Train:     ShuffleSampler(train, 32, 1),
		Epochs:    1,
	}); err != nil {
		t.Fatal(err)
	}
	// The first root is always head-sampled, so the single run is retained.
	if len(traces) != 1 {
		t.Fatalf("%d TraceSpan events, want 1", len(traces))
	}
	ev := traces[0]
	if ev.Name != "train.run" {
		t.Fatalf("root name %q, want train.run", ev.Name)
	}
	if len(ev.TraceID) != 16 {
		t.Fatalf("TraceID %q is not 16 hex digits", ev.TraceID)
	}
	if ev.Error {
		t.Fatal("successful run flagged as error")
	}
	// run + epoch + 4 steps at minimum; the sampled step adds op spans.
	if ev.Spans < 6 {
		t.Fatalf("retained trace has %d spans, want >= 6", ev.Spans)
	}

	rec := httptest.NewRecorder()
	sess.Tracer().Handler().ServeHTTP(rec,
		httptest.NewRequest("GET", "/debug/traces?trace="+ev.TraceID, nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /debug/traces?trace=%s: %d\n%s", ev.TraceID, rec.Code, rec.Body)
	}
	var got struct {
		Trace string `json:"trace"`
		Spans []struct {
			Name string `json:"name"`
		} `json:"spans"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &got); err != nil {
		t.Fatal(err)
	}
	if got.Trace != ev.TraceID || len(got.Spans) != ev.Spans {
		t.Fatalf("recorder serves trace %s with %d spans, event said %s/%d",
			got.Trace, len(got.Spans), ev.TraceID, ev.Spans)
	}
	names := map[string]int{}
	for _, s := range got.Spans {
		names[s.Name]++
	}
	for _, want := range []string{"train.run", "train.epoch", "train.step", "exec.forward"} {
		if names[want] == 0 {
			t.Errorf("retained trace has no %q span (got %v)", want, names)
		}
	}
	spans, _, sampled := sess.Tracer().Counters()
	if spans == 0 || sampled == 0 {
		t.Fatalf("counters: %d spans, %d sampled — want both non-zero", spans, sampled)
	}
}

// TestObserveTracerCoversTraceNames: ObserveTracer registers every
// canonical d500_trace_* series — the code-side closure of the docscheck
// gate, like TestMetricsCoversCanonicalNames for the core names. A nil
// tracer still registers the series at zero.
func TestObserveTracerCoversTraceNames(t *testing.T) {
	metrics := NewMetrics()
	metrics.ObserveTracer(nil)
	rec := httptest.NewRecorder()
	metrics.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	body := rec.Body.String()
	for _, name := range obs.TraceNames() {
		if !strings.Contains(body, "# TYPE "+name+" ") {
			t.Errorf("canonical metric %s is not registered by ObserveTracer", name)
		}
	}
	for _, want := range []string{
		"d500_trace_spans_total 0",
		"d500_trace_spans_dropped_total 0",
		"d500_trace_traces_sampled_total 0",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("missing %q in /metrics output", want)
		}
	}
}

// TestServerTracerWiring: WithSession(WithTracer) lands serve spans in
// the shared recorder, and Server.Tracer exposes the shared handle.
func TestServerTracerWiring(t *testing.T) {
	tr, err := NewTracer(TraceConfig{SampleEvery: 1, SlowThreshold: time.Hour, Process: "serve-test"})
	if err != nil {
		t.Fatal(err)
	}
	sess, err := New(WithTracer(tr))
	if err != nil {
		t.Fatal(err)
	}
	if sess.Tracer() != tr {
		t.Fatal("WithTracer session does not share the tracer")
	}
	metrics := NewMetrics()
	metrics.ObserveTracer(tr)
	m := models.MLP(models.Config{Classes: 4, Channels: 1, Height: 4, Width: 4, Seed: 7}, 8)
	srv, err := NewServer(m, WithMaxBatch(2), WithSession(WithTracer(tr)))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close(context.Background())
	if srv.Tracer() != tr {
		t.Fatal("server does not share the tracer")
	}
	rng := tensor.NewRNG(3)
	if _, err := srv.Infer(context.Background(), map[string]*tensor.Tensor{
		"x": tensor.RandNormal(rng, 0, 1, 1, 1, 4, 4),
	}); err != nil {
		t.Fatal(err)
	}
	spans, _, sampled := tr.Counters()
	if spans == 0 || sampled == 0 {
		t.Fatalf("serve request recorded %d spans, %d sampled — want both non-zero", spans, sampled)
	}
	rec := httptest.NewRecorder()
	metrics.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if !strings.Contains(rec.Body.String(), "d500_trace_traces_sampled_total 1") {
		t.Fatalf("sampled counter not exported:\n%s", rec.Body.String())
	}
}
