package d500

import (
	"errors"
	"fmt"
	"sync"

	"deep500/internal/graph"
	"deep500/internal/tensor"
	"deep500/internal/training"
)

// Exact-resume checkpointing. A training checkpoint (D5NX version 2) is the
// model plus everything else the trajectory depends on — optimizer slots,
// step/epoch counters, and the sampler's order/RNG cursor — captured at a
// step boundary and written atomically. Resuming from it reproduces the
// uninterrupted run's loss trajectory bitwise (on the deterministic
// sequential backend; parallel-backend reductions and stochastic operators
// with executor-local RNGs, i.e. dropout, are reproducible only per-build).

// Checkpoint is a loaded training checkpoint: the model snapshot plus the
// run state needed to continue it exactly. Load one with Resume, Open its
// Model on a session configured like the original run, and pass the
// checkpoint through TrainConfig.Resume.
type Checkpoint struct {
	model *graph.Model
	train *graph.TrainState
}

// Model returns the checkpointed model snapshot (weights as of the
// checkpointed step). Open it before training, and build the run's
// samplers/optimizer with the same configuration as the original run —
// cursors and slots are restored from the checkpoint on top.
func (c *Checkpoint) Model() *graph.Model { return c.model }

// Step returns the number of optimization steps completed at capture.
func (c *Checkpoint) Step() int { return c.train.Step }

// EpochsDone returns the number of full epochs completed at capture.
func (c *Checkpoint) EpochsDone() int { return c.train.EpochsDone }

// Resume loads a training checkpoint written by a Session.Train run with
// TrainConfig.CheckpointPath set. Plain model files (Session.Save output)
// are rejected: they carry no training state — use Load for those.
func Resume(path string) (*Checkpoint, error) {
	if path == "" {
		return nil, errors.New("d500: Resume requires a path")
	}
	c, err := graph.LoadCheckpoint(path)
	if err != nil {
		return nil, fmt.Errorf("d500: loading checkpoint from %s: %w", path, err)
	}
	if c.Train == nil {
		return nil, fmt.Errorf("d500: %s is a plain model, not a training checkpoint (use d500.Load)", path)
	}
	return &Checkpoint{model: c.Model, train: c.Train}, nil
}

// checkpointer drives the asynchronous checkpoint pipeline of a Train run:
// the training goroutine captures consistent snapshots at step/epoch
// boundaries and hands them to one background writer; completions come
// back over a channel and are emitted as CheckpointSaved events from the
// training goroutine (respecting the Hook single-goroutine contract). A
// snapshot arriving while the writer is still busy is skipped — cadence
// degrades under slow disks, consistency never does.
type checkpointer struct {
	sess  *Session
	path  string
	every int // steps; 0 = every epoch boundary
	co    training.CheckpointableOptimizer
	cs    training.CheckpointableSampler
	r     *training.Runner

	jobs    chan *graph.Checkpoint
	results chan ckptResult
	wg      sync.WaitGroup

	// lastMid tracks the most recent boundary type (step vs epoch), so the
	// final checkpoint finish writes is stamped correctly: a run cancelled
	// mid-epoch resumes its sampler cursor, a run that stopped on an epoch
	// boundary starts the next epoch fresh. Training-goroutine only.
	lastMid bool

	mu      sync.Mutex
	failure error
	cancel  func()
}

type ckptResult struct {
	step, epoch int
	err         error
}

// newCheckpointer validates that the run is checkpointable and starts the
// writer goroutine. cancel aborts the run when a write fails.
func newCheckpointer(s *Session, cfg TrainConfig, r *training.Runner, cancel func()) (*checkpointer, error) {
	co, ok := training.Checkpointable(cfg.Optimizer)
	if !ok {
		return nil, fmt.Errorf("d500: optimizer %T does not support checkpointing (implement training.CheckpointableOptimizer)", cfg.Optimizer)
	}
	cs, ok := cfg.Train.(training.CheckpointableSampler)
	if !ok {
		return nil, fmt.Errorf("d500: sampler %T does not support checkpointing (implement training.CheckpointableSampler)", cfg.Train)
	}
	ck := &checkpointer{
		sess:    s,
		path:    cfg.CheckpointPath,
		every:   s.cfg.ckptEvery,
		co:      co,
		cs:      cs,
		r:       r,
		jobs:    make(chan *graph.Checkpoint, 1),
		results: make(chan ckptResult, 4),
		cancel:  cancel,
	}
	if cfg.Resume != nil {
		ck.lastMid = cfg.Resume.train.MidEpoch
	}
	ck.wg.Add(1)
	go ck.writer()
	return ck, nil
}

// restore rewinds session, optimizer, sampler and runner to a checkpoint.
// The caller must already have opened the checkpoint's model on the session.
func restoreCheckpoint(s *Session, cfg TrainConfig, r *training.Runner, ck *Checkpoint) error {
	if s.model != ck.model {
		return errors.New("d500: TrainConfig.Resume checkpoint's model is not the session's open model (Open(checkpoint.Model()) first)")
	}
	co, ok := training.Checkpointable(cfg.Optimizer)
	if !ok {
		return fmt.Errorf("d500: optimizer %T does not support resume", cfg.Optimizer)
	}
	cs, ok := cfg.Train.(training.CheckpointableSampler)
	if !ok {
		return fmt.Errorf("d500: sampler %T does not support resume", cfg.Train)
	}
	ts := ck.train
	if err := co.RestoreState(training.OptimizerState{
		Ints:    ts.OptInts,
		Floats:  ts.OptFloats,
		Tensors: ts.OptTensors,
	}); err != nil {
		return fmt.Errorf("d500: restoring optimizer state: %w", err)
	}
	var rng *tensor.RNGState
	if ts.HasSamplerRNG {
		st := ts.SamplerRNG
		rng = &st
	}
	if err := cs.RestoreState(training.SamplerState{
		Order: ts.SamplerOrder,
		Pos:   ts.SamplerPos,
		RNG:   rng,
	}); err != nil {
		return fmt.Errorf("d500: restoring sampler state: %w", err)
	}
	r.ResumeAt(ts.Step, ts.EpochsDone, ts.MidEpoch)
	return nil
}

// snapshot captures a consistent checkpoint of the run at the current step
// boundary: a structural model clone with cloned parameter tensors (fused
// optimizers update weights in place, so the live tensors keep mutating
// while the writer encodes), the optimizer's deep-copied state, and the
// sampler cursor.
func (ck *checkpointer) snapshot(midEpoch bool) *graph.Checkpoint {
	m := ck.sess.model.ShallowClone()
	for name, t := range m.Initializers {
		m.Initializers[name] = t.Clone()
	}
	opt := ck.co.CaptureState()
	samp := ck.cs.CaptureState()
	ts := &graph.TrainState{
		Step:         ck.r.Steps(),
		EpochsDone:   ck.r.EpochsDone(),
		MidEpoch:     midEpoch,
		OptInts:      opt.Ints,
		OptFloats:    opt.Floats,
		OptTensors:   opt.Tensors,
		SamplerOrder: samp.Order,
		SamplerPos:   samp.Pos,
	}
	if samp.RNG != nil {
		ts.HasSamplerRNG = true
		ts.SamplerRNG = *samp.RNG
	}
	return &graph.Checkpoint{Model: m, Train: ts}
}

// afterStep is chained into the runner's AfterStep hook.
func (ck *checkpointer) afterStep(step int) {
	ck.lastMid = true
	ck.drainResults()
	if ck.every > 0 && step%ck.every == 0 {
		ck.submit(ck.snapshot(true))
	}
}

// afterEpoch is chained into the runner's AfterEpoch hook.
func (ck *checkpointer) afterEpoch() {
	ck.lastMid = false
	ck.drainResults()
	if ck.every == 0 {
		ck.submit(ck.snapshot(false))
	}
}

// submit hands a snapshot to the writer without blocking; if the writer is
// still busy with the previous checkpoint, this one is skipped.
func (ck *checkpointer) submit(c *graph.Checkpoint) {
	select {
	case ck.jobs <- c:
	default:
	}
}

// writer is the background goroutine: one atomic file write per snapshot.
func (ck *checkpointer) writer() {
	defer ck.wg.Done()
	for c := range ck.jobs {
		err := graph.SaveCheckpoint(c, ck.path)
		if err != nil {
			ck.mu.Lock()
			if ck.failure == nil {
				ck.failure = fmt.Errorf("d500: writing checkpoint %s: %w", ck.path, err)
			}
			ck.mu.Unlock()
			ck.cancel() // abort the run: silent checkpoint loss is worse
		}
		ck.results <- ckptResult{step: c.Train.Step, epoch: c.Train.EpochsDone, err: err}
	}
}

// drainResults emits CheckpointSaved events for completed writes. It runs
// on the training goroutine, keeping the Hook contract.
func (ck *checkpointer) drainResults() {
	for {
		select {
		case res := <-ck.results:
			if res.err == nil {
				ck.sess.emit(CheckpointSaved{Step: res.step, Epoch: res.epoch, Path: ck.path})
			}
		default:
			return
		}
	}
}

// finish stops the writer, flushes pending completions, writes a final
// synchronous checkpoint of the run's end state, and returns the first
// write failure (if any). It runs on the training goroutine.
func (ck *checkpointer) finish() error {
	close(ck.jobs)
	ck.wg.Wait()
	ck.drainResults()
	ck.mu.Lock()
	failure := ck.failure
	ck.mu.Unlock()
	if failure != nil {
		return failure
	}
	final := ck.snapshot(ck.lastMid)
	if err := graph.SaveCheckpoint(final, ck.path); err != nil {
		return fmt.Errorf("d500: writing final checkpoint %s: %w", ck.path, err)
	}
	ck.sess.emit(CheckpointSaved{Step: final.Train.Step, Epoch: final.Train.EpochsDone, Path: ck.path})
	return nil
}
