package d500

import (
	"fmt"
	"net/http"
	"time"

	"deep500/internal/obs/trace"
)

// TraceConfig configures a Tracer: the tail-sampling flight recorder
// behind -trace on d500serve, d500train and d500dist. Zero fields take
// the documented defaults (DefaultTraceConfig).
type TraceConfig struct {
	// SlowThreshold is the tail-sampling latency bound: a request/run
	// whose root span reaches it is always retained, however the head
	// sampler rolled. Default 250ms (the -trace-slow flag).
	SlowThreshold time.Duration
	// SampleEvery head-samples one trace in N regardless of latency; 1
	// retains everything. Default 64.
	SampleEvery int
	// Capacity is the flight recorder's trace capacity, oldest evicted
	// first. Default 256.
	Capacity int
	// MaxSpansPerTrace bounds one trace's span buffer; overflow spans are
	// dropped and counted. Default 512.
	MaxSpansPerTrace int
	// Process names this process on every span, grouping the Perfetto
	// view ("serve", "launcher", "rank-1", ...).
	Process string
	// Seed fixes the trace/span ID sequence; 0 derives a per-process seed
	// so concurrent processes do not collide.
	Seed uint64
}

// DefaultTraceConfig returns the resolved tracer defaults — the same
// constants a zero TraceConfig becomes, rendered by d500info -obs.
func DefaultTraceConfig() TraceConfig {
	o := trace.DefaultOptions()
	return TraceConfig{
		SlowThreshold:    o.SlowThreshold,
		SampleEvery:      o.SampleEvery,
		Capacity:         o.Capacity,
		MaxSpansPerTrace: o.MaxSpansPerTrace,
	}
}

// internal lowers the public config onto the tracer's option struct.
func (c TraceConfig) internal() trace.Options {
	return trace.Options{
		SlowThreshold:    c.SlowThreshold,
		SampleEvery:      c.SampleEvery,
		Capacity:         c.Capacity,
		MaxSpansPerTrace: c.MaxSpansPerTrace,
		Process:          c.Process,
		Seed:             c.Seed,
	}
}

// Tracer is the public handle on the span tracer and its flight
// recorder. Build one with NewTracer and share it across a Session, a
// Server and a jobs manager via WithTracer — their spans then land in
// one recorder, and Handler serves them. A nil *Tracer is valid
// everywhere and means tracing is off.
type Tracer struct {
	t *trace.Tracer
}

// NewTracer builds a tracer with a bounded in-memory flight recorder.
func NewTracer(cfg TraceConfig) (*Tracer, error) {
	if cfg.SlowThreshold < 0 {
		return nil, fmt.Errorf("d500: TraceConfig.SlowThreshold must be non-negative, got %v", cfg.SlowThreshold)
	}
	if cfg.SampleEvery < 0 {
		return nil, fmt.Errorf("d500: TraceConfig.SampleEvery must be non-negative, got %d", cfg.SampleEvery)
	}
	return &Tracer{t: trace.New(cfg.internal())}, nil
}

// Handler serves the flight recorder: GET /debug/traces (JSON, with
// ?trace=<16hex> selecting one trace) and GET /debug/traces/perfetto
// (Chrome trace-event JSON loadable in Perfetto / chrome://tracing).
// cmd/d500serve and the d500dist job manager mount it under -trace.
func (t *Tracer) Handler() http.Handler {
	if t == nil {
		return http.NotFoundHandler()
	}
	return t.t.Recorder().Handler()
}

// Counters reports the tracer's lifetime totals: spans recorded, spans
// dropped (late arrivals and per-trace overflow) and traces retained by
// sampling — the d500_trace_* series of Metrics.ObserveTracer.
func (t *Tracer) Counters() (spans, dropped, sampled uint64) {
	if t == nil {
		return 0, 0, 0
	}
	return t.t.Counters()
}

// raw exposes the internal tracer to the package (nil-safe).
func (t *Tracer) raw() *trace.Tracer {
	if t == nil {
		return nil
	}
	return t.t
}
