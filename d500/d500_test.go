package d500

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"deep500/internal/models"
	"deep500/internal/tensor"
)

func TestNewRejectsInvalidOptions(t *testing.T) {
	cases := map[string]Option{
		"unknown framework": WithFramework("mxnetgo"),
		"bad backend name":  WithBackendName("turbo"),
		"bad backend value": WithBackend(Backend(99)),
		"zero pool":         WithPool(0),
		"negative pool":     WithPool(-4),
	}
	for name, opt := range cases {
		if _, err := New(opt); err == nil {
			t.Errorf("%s: New must fail", name)
		}
	}
}

func TestParseBackend(t *testing.T) {
	for name, want := range map[string]Backend{
		"": Sequential, "sequential": Sequential, "parallel": Parallel, "Parallel": Parallel,
	} {
		got, err := ParseBackend(name)
		if err != nil || got != want {
			t.Fatalf("ParseBackend(%q) = %v, %v", name, got, err)
		}
	}
	if _, err := ParseBackend("gpu"); err == nil || !strings.Contains(err.Error(), "gpu") {
		t.Fatalf("unknown backend error: %v", err)
	}
}

func TestExecutionBeforeOpenFails(t *testing.T) {
	sess, err := New()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Infer(context.Background(), nil); !errors.Is(err, errNotOpen) {
		t.Fatalf("Infer before Open: %v", err)
	}
	if _, err := sess.Evaluate(context.Background(), SequentialSampler(mustDataset(t), 8)); !errors.Is(err, errNotOpen) {
		t.Fatalf("Evaluate before Open: %v", err)
	}
	if _, err := sess.NewDriver(SGD(0.1)); !errors.Is(err, errNotOpen) {
		t.Fatalf("NewDriver before Open: %v", err)
	}
}

func mustDataset(t *testing.T) Dataset {
	t.Helper()
	train, _ := SyntheticSplit(64, 16, 4, []int{1, 8, 8}, 0.3, 3)
	return train
}

func openSession(t *testing.T, opts ...Option) *Session {
	t.Helper()
	sess, err := New(opts...)
	if err != nil {
		t.Fatal(err)
	}
	cfg := models.Config{Classes: 4, Channels: 1, Height: 8, Width: 8, WithHead: true, Seed: 5}
	if err := sess.Open(models.MLP(cfg, 32)); err != nil {
		t.Fatal(err)
	}
	return sess
}

func TestSessionInferAndEvaluate(t *testing.T) {
	var events []Event
	sess := openSession(t, WithBackend(Parallel), WithArena(), WithHook(func(e Event) {
		events = append(events, e)
	}))
	train, test := SyntheticSplit(128, 32, 4, []int{1, 8, 8}, 0.3, 7)
	b := SequentialSampler(train, 8).Next()
	out, err := sess.Infer(context.Background(), b.Feeds())
	if err != nil {
		t.Fatal(err)
	}
	if out["loss"] == nil || out["acc"] == nil {
		t.Fatalf("missing outputs: %v", out)
	}
	acc, err := sess.Evaluate(context.Background(), SequentialSampler(test, 16))
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0 || acc > 1 {
		t.Fatalf("accuracy out of range: %v", acc)
	}
	if len(events) != 1 {
		t.Fatalf("want one EvalEnd event, got %v", events)
	}
	if ev, ok := events[0].(EvalEnd); !ok || ev.Accuracy != acc {
		t.Fatalf("EvalEnd mismatch: %+v vs %v", events[0], acc)
	}
}

func TestSessionTrainEmitsEventStream(t *testing.T) {
	var steps, epochs int
	sess := openSession(t, WithHook(func(e Event) {
		switch e.(type) {
		case StepEnd:
			steps++
		case EpochEnd:
			epochs++
		}
	}))
	train, test := SyntheticSplit(128, 32, 4, []int{1, 8, 8}, 0.3, 7)
	res, err := sess.Train(context.Background(), TrainConfig{
		Optimizer: Momentum(0.05, 0.9),
		Train:     ShuffleSampler(train, 32, 1),
		Test:      SequentialSampler(test, 32),
		Epochs:    2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Steps != 8 || steps != 8 { // 128/32 × 2 epochs
		t.Fatalf("steps: result %d, events %d (want 8)", res.Steps, steps)
	}
	if res.Epochs != 2 || epochs != 2 {
		t.Fatalf("epochs: result %d, events %d (want 2)", res.Epochs, epochs)
	}
	if res.FinalTestAccuracy < 0 || res.FinalTestAccuracy > 1 {
		t.Fatalf("final accuracy: %v", res.FinalTestAccuracy)
	}
}

// TestTrainCancelStopsParallelRunBetweenSteps is the API acceptance test:
// cancelling the context stops a parallel-backend training run between
// optimization steps and surfaces context.Canceled through Session.Train.
func TestTrainCancelStopsParallelRunBetweenSteps(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var lastStep int
	sess := openSession(t, WithBackend(Parallel), WithHook(func(e Event) {
		if s, ok := e.(StepEnd); ok {
			lastStep = s.Step
			if s.Step == 3 {
				cancel()
			}
		}
	}))
	train, _ := SyntheticSplit(512, 64, 4, []int{1, 8, 8}, 0.3, 7)
	_, err := sess.Train(ctx, TrainConfig{
		Optimizer: SGD(0.05),
		Train:     ShuffleSampler(train, 32, 1),
		Epochs:    10,
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if lastStep != 3 {
		t.Fatalf("run continued to step %d after cancellation at step 3", lastStep)
	}
}

func TestBenchDeadlineExceeded(t *testing.T) {
	sess, err := New(WithQuick(), WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	if _, err := sess.Bench(ctx, []string{"tables"}, BenchConfig{}); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want DeadlineExceeded, got %v", err)
	}
}

func TestBenchEmitsBenchSamples(t *testing.T) {
	var samples []BenchSample
	sess, err := New(WithQuick(), WithHook(func(e Event) {
		if s, ok := e.(BenchSample); ok {
			samples = append(samples, s)
		}
	}))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sess.Bench(context.Background(), []string{"fig2"}, BenchConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Experiments) != 1 || len(samples) == 0 {
		t.Fatalf("experiments %d, samples %d", len(rep.Experiments), len(samples))
	}
	if samples[0].Experiment != "fig2" || samples[0].Metric == "" {
		t.Fatalf("sample: %+v", samples[0])
	}
	if got := len(rep.Experiments[0].Records); got != len(samples) {
		t.Fatalf("stream saw %d records, report has %d", len(samples), got)
	}
}

func TestSessionWithPoolAndFramework(t *testing.T) {
	sess, err := New(WithBackend(Parallel), WithPool(2), WithFramework("cf2go"), WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	if sess.Framework() != "cf2go" {
		t.Fatalf("framework: %s", sess.Framework())
	}
	cfg := models.Config{Classes: 4, Channels: 1, Height: 8, Width: 8, WithHead: true, Seed: 5}
	if err := sess.Open(models.MLP(cfg, 16)); err != nil {
		t.Fatal(err)
	}
	x := tensor.Full(0.5, 2, 1, 8, 8)
	labels := tensor.From([]float32{0, 1}, 2)
	out, err := sess.Infer(context.Background(), map[string]*tensor.Tensor{"x": x, "labels": labels})
	if err != nil {
		t.Fatal(err)
	}
	if out["loss"] == nil {
		t.Fatalf("missing loss output: %v", out)
	}
}

func TestEvaluateRestoresInferenceMode(t *testing.T) {
	sess := openSession(t)
	train, test := SyntheticSplit(64, 32, 4, []int{1, 8, 8}, 0.3, 7)
	// Evaluate on a never-trained session must not flip it into training
	// mode, and a completed Train must hand the session back in inference
	// mode.
	if _, err := sess.Evaluate(context.Background(), SequentialSampler(test, 16)); err != nil {
		t.Fatal(err)
	}
	ge, err := sess.GraphExecutor()
	if err != nil {
		t.Fatal(err)
	}
	if ge.Training() {
		t.Fatal("Evaluate left a fresh session in training mode")
	}
	if _, err := sess.Train(context.Background(), TrainConfig{
		Optimizer: SGD(0.05), Train: ShuffleSampler(train, 32, 1), Epochs: 1,
	}); err != nil {
		t.Fatal(err)
	}
	if ge.Training() {
		t.Fatal("Train left the session in training mode")
	}
}

func TestEvaluateMissingAccOutputErrors(t *testing.T) {
	sess := openSession(t)
	_, test := SyntheticSplit(64, 32, 4, []int{1, 8, 8}, 0.3, 7)
	if _, err := sess.Evaluate(context.Background(), SequentialSampler(test, 16), "no-such-output"); err == nil {
		t.Fatal("missing accuracy output must error, not report 0%")
	}
}

func TestWithSeedZeroUsesDefault(t *testing.T) {
	sess, err := New(WithSeed(0))
	if err != nil {
		t.Fatal(err)
	}
	if sess.Seed() != 500 {
		t.Fatalf("WithSeed(0) resolved to %d, want default 500", sess.Seed())
	}
}

func TestOptimizerByName(t *testing.T) {
	for _, name := range []string{"sgd", "momentum", "nesterov", "adagrad", "rmsprop", "adam", "adam-fused", "accelegrad"} {
		if _, err := OptimizerByName(name, 0.01); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
	if _, err := OptimizerByName("lion", 0.01); err == nil {
		t.Fatal("unknown optimizer must error")
	}
}
