package d500

import (
	"context"
	"errors"
	"fmt"
	"time"

	"deep500/internal/metrics"
	"deep500/internal/obs/trace"
	"deep500/internal/training"
)

// Re-exported training types. These aliases are the public names of the
// Level 2 data-path vocabulary, so consumers never import
// internal/training to construct a session-driven run. Custom optimizers
// implement ThreeStep; custom distributed schemes implement Optimizer.
type (
	// ThreeStep is the paper's three-step optimizer abstraction
	// (new_input / prepare_param / update_rule).
	ThreeStep = training.ThreeStep
	// Optimizer runs one training step per call; the distributed schemes
	// in internal/dist satisfy it too.
	Optimizer = training.Optimizer
	// Driver is the reference Optimizer driving a ThreeStep against the
	// session's executor.
	Driver = training.Driver
	// Batch is one minibatch of samples plus labels.
	Batch = training.Batch
	// Sampler yields batches until an epoch is exhausted.
	Sampler = training.Sampler
	// Dataset is an indexable sample store.
	Dataset = training.Dataset
	// InMemoryDataset is the built-in in-memory Dataset.
	InMemoryDataset = training.InMemoryDataset
)

// Optimizer constructors: typed wrappers over the Level 2 optimizer zoo.
// Learning rates are float64 at the API surface and converted once.

// SGD is plain gradient descent.
func SGD(lr float64) ThreeStep { return training.NewGradientDescent(float32(lr)) }

// Momentum is SGD with classical momentum.
func Momentum(lr, momentum float64) ThreeStep {
	return training.NewMomentum(float32(lr), float32(momentum))
}

// Nesterov is SGD with Nesterov momentum.
func Nesterov(lr, momentum float64) ThreeStep {
	return training.NewNesterov(float32(lr), float32(momentum))
}

// AdaGrad adapts per-parameter rates by accumulated squared gradients.
func AdaGrad(lr float64) ThreeStep { return training.NewAdaGrad(float32(lr)) }

// RMSProp keeps an exponential moving average of squared gradients.
func RMSProp(lr, decay float64) ThreeStep { return training.NewRMSProp(float32(lr), float32(decay)) }

// Adam is the reference Adam formulation.
func Adam(lr float64) ThreeStep { return training.NewAdam(float32(lr)) }

// FusedAdam is the single-kernel native Adam (Caffe2-style fused update).
func FusedAdam(lr float64) ThreeStep { return training.NewFusedAdam(float32(lr)) }

// AcceleGrad is the paper's custom-optimizer walkthrough (Listing 7).
func AcceleGrad(lr, d, g float64) ThreeStep {
	return training.NewAcceleGrad(float32(lr), float32(d), float32(g))
}

// OptimizerByName resolves a CLI optimizer selector. Unknown names return
// an error listing the valid set.
func OptimizerByName(name string, lr float64) (ThreeStep, error) {
	switch name {
	case "sgd":
		return SGD(lr), nil
	case "momentum":
		return Momentum(lr, 0.9), nil
	case "nesterov":
		return Nesterov(lr, 0.9), nil
	case "adagrad":
		return AdaGrad(lr), nil
	case "rmsprop":
		return RMSProp(lr, 0.9), nil
	case "adam":
		return Adam(lr), nil
	case "adam-fused":
		return FusedAdam(lr), nil
	case "accelegrad":
		return AcceleGrad(lr, 1, 1), nil
	}
	return nil, fmt.Errorf("d500: unknown optimizer %q (sgd, momentum, nesterov, adagrad, rmsprop, adam, adam-fused, accelegrad)", name)
}

// Data helpers: public constructors for the built-in samplers and the
// synthetic dataset generators used throughout the examples and tests.

// SyntheticSplit generates train and test datasets sharing class
// prototypes but with disjoint noise draws.
func SyntheticSplit(nTrain, nTest, classes int, shape []int, noise float64, seed uint64) (train, test *InMemoryDataset) {
	return training.SyntheticSplit(nTrain, nTest, classes, shape, float32(noise), seed)
}

// ShuffleSampler yields batches in a fresh random order every epoch.
func ShuffleSampler(d Dataset, batch int, seed uint64) Sampler {
	return training.NewShuffleSampler(d, batch, seed)
}

// SequentialSampler yields batches in dataset order.
func SequentialSampler(d Dataset, batch int) Sampler {
	return training.NewSequentialSampler(d, batch)
}

// NewDriver binds a three-step optimizer to the session's open model and
// switches the executor into training mode. The returned Driver satisfies
// Optimizer and is what the distributed schemes in internal/dist wrap.
func (s *Session) NewDriver(ts ThreeStep) (*Driver, error) {
	if s.exec == nil {
		return nil, errNotOpen
	}
	if ts == nil {
		return nil, errors.New("d500: NewDriver requires an optimizer")
	}
	s.exec.SetTraining(true)
	return training.NewDriver(s.exec, ts), nil
}

// Trainer gives step-level control over a training run — the distributed
// binaries drive custom per-rank loops through it — while still routing
// observations through the session event stream.
type Trainer struct {
	s *Session
	r *training.Runner
}

// NewTrainer builds a runner over any Optimizer (a session Driver, or a
// distributed wrapper around one) with the session hook wired into the
// step/epoch callbacks. test may be nil.
func (s *Session) NewTrainer(opt Optimizer, train, test Sampler) (*Trainer, error) {
	if opt == nil {
		return nil, errors.New("d500: NewTrainer requires an optimizer")
	}
	if train == nil {
		return nil, errors.New("d500: NewTrainer requires a training sampler")
	}
	r := training.NewRunner(opt, train, test)
	r.AfterStep = func(step int, loss, acc float64) {
		s.emit(StepEnd{Step: step, Loss: loss, Accuracy: acc})
	}
	r.AfterEpoch = func(epoch int, testAcc float64) {
		s.emit(EpochEnd{Epoch: epoch, TestAccuracy: testAcc, LastLoss: r.LossCurve.Last()})
	}
	return &Trainer{s: s, r: r}, nil
}

// Step runs one optimization step on a batch and returns its loss.
func (t *Trainer) Step(ctx context.Context, b *Batch) (float64, error) { return t.r.Step(ctx, b) }

// RunEpoch trains over one pass of the training sampler and returns the
// mean loss; cancellation stops at a batch boundary.
func (t *Trainer) RunEpoch(ctx context.Context) (float64, error) { return t.r.RunEpoch(ctx) }

// RunEpochs trains for n epochs with per-epoch evaluation.
func (t *Trainer) RunEpochs(ctx context.Context, n int) error { return t.r.RunEpochs(ctx, n) }

// Evaluate computes mean accuracy over a sampler and emits EvalEnd.
func (t *Trainer) Evaluate(ctx context.Context, data Sampler) (float64, error) {
	acc, err := t.r.Evaluate(ctx, data)
	if err != nil {
		return 0, err
	}
	t.s.emit(EvalEnd{Accuracy: acc})
	return acc, nil
}

// TrainConfig parameterizes Session.Train.
type TrainConfig struct {
	// Optimizer is the three-step optimizer to drive (required).
	Optimizer ThreeStep
	// Train is the training sampler (required); Test enables per-epoch
	// evaluation (optional).
	Train, Test Sampler
	// Epochs defaults to 1.
	Epochs int
	// LossOutput / AccOutput override the model output names carrying the
	// loss and batch accuracy (defaults "loss", "acc").
	LossOutput, AccOutput string
	// TargetAccuracy, when positive, tracks time-to-accuracy against this
	// test-set target.
	TargetAccuracy float64
	// StopOnNaN aborts the run when the loss diverges.
	StopOnNaN bool
	// CheckpointPath enables exact-resume checkpointing: the run's state
	// (model weights, optimizer slots, sampler/RNG cursor) is snapshotted at
	// step or epoch boundaries (see WithCheckpointEvery) and written to this
	// path atomically by a background writer, plus once synchronously when
	// the run ends. Requires a checkpointable optimizer and sampler (all
	// built-ins are). Each durable write emits a CheckpointSaved event; a
	// write failure aborts the run.
	CheckpointPath string
	// Resume continues a run from a checkpoint loaded with d500.Resume. The
	// session must have Opened exactly Resume.Model(), and Optimizer/Train/
	// Test must be constructed with the original run's configuration —
	// optimizer slots, sampler cursor and step/epoch counters are restored
	// on top, after which the loss trajectory continues bitwise-identically
	// to the uninterrupted run (on the deterministic sequential backend).
	// Epochs still names the run's total epoch count: a run checkpointed
	// after epoch 2 of 5 resumes with Epochs: 5 and trains the remaining 3.
	Resume *Checkpoint
}

// TrainResult summarizes a completed training run.
type TrainResult struct {
	// Epochs and Steps actually executed.
	Epochs, Steps int
	// FinalLoss is the last recorded training loss.
	FinalLoss float64
	// FinalTestAccuracy / BestTestAccuracy are test-set metrics (zero
	// without a test sampler).
	FinalTestAccuracy, BestTestAccuracy float64
	// TargetReached and TimeToTarget report time-to-accuracy when
	// TrainConfig.TargetAccuracy was set.
	TargetReached bool
	TimeToTarget  time.Duration
	// Duration is the wall-clock time of the whole run.
	Duration time.Duration
}

// String renders the result as the summary block the binaries print.
func (r *TrainResult) String() string {
	return fmt.Sprintf("trained %d epochs (%d steps) in %s: final loss %.4f, test accuracy %.4f (best %.4f)",
		r.Epochs, r.Steps, fdur(r.Duration), r.FinalLoss, r.FinalTestAccuracy, r.BestTestAccuracy)
}

// Train runs a full training session over the open model: optimizer
// driver, runner, per-epoch evaluation, event emission and optional
// time-to-accuracy tracking. Cancelling ctx stops between steps and
// returns the context's error.
func (s *Session) Train(ctx context.Context, cfg TrainConfig) (*TrainResult, error) {
	if cfg.Optimizer == nil {
		return nil, errors.New("d500: TrainConfig.Optimizer is required")
	}
	if cfg.Train == nil {
		return nil, errors.New("d500: TrainConfig.Train sampler is required")
	}
	d, err := s.NewDriver(cfg.Optimizer)
	if err != nil {
		return nil, err
	}
	// NewDriver switched the executor into training mode; a completed (or
	// cancelled) Train leaves the session ready for inference again.
	defer s.exec.SetTraining(false)
	if cfg.LossOutput != "" {
		d.Loss = cfg.LossOutput
	}
	t, err := s.NewTrainer(d, cfg.Train, cfg.Test)
	if err != nil {
		return nil, err
	}
	if cfg.LossOutput != "" {
		t.r.LossOutput = cfg.LossOutput
	}
	if cfg.AccOutput != "" {
		t.r.AccOutput = cfg.AccOutput
	}
	t.r.StopOnNaN = cfg.StopOnNaN
	var tta *metrics.TimeToAccuracy
	if cfg.TargetAccuracy > 0 {
		tta = metrics.NewTimeToAccuracy("tta", cfg.TargetAccuracy)
		tta.Start()
		t.r.TTA = tta
	}
	if cfg.Resume != nil {
		if err := restoreCheckpoint(s, cfg, t.r, cfg.Resume); err != nil {
			return nil, err
		}
	}
	runCtx := ctx
	if runCtx == nil {
		runCtx = context.Background()
	}
	var ck *checkpointer
	if cfg.CheckpointPath != "" {
		var cancel context.CancelFunc
		runCtx, cancel = context.WithCancel(runCtx)
		defer cancel()
		ck, err = newCheckpointer(s, cfg, t.r, cancel)
		if err != nil {
			return nil, err
		}
		// Chain the checkpoint capture behind the event-emitting callbacks;
		// both run on the training goroutine at step/epoch boundaries.
		prevStep := t.r.AfterStep
		t.r.AfterStep = func(step int, loss, acc float64) {
			prevStep(step, loss, acc)
			ck.afterStep(step)
		}
		prevEpoch := t.r.AfterEpoch
		t.r.AfterEpoch = func(epoch int, testAcc float64) {
			prevEpoch(epoch, testAcc)
			ck.afterEpoch()
		}
	}
	epochs := cfg.Epochs
	if epochs <= 0 {
		epochs = 1
	}
	// The whole run is one trace: epoch, step and per-op spans nest under
	// this root, and the tail sampler retains slow or failed runs.
	var root *trace.Span
	if tr := s.tracer.raw(); tr.Enabled() {
		root = tr.StartRoot("train.run",
			trace.Int("epochs", epochs), trace.Bool("resumed", cfg.Resume != nil))
		runCtx = trace.NewContext(runCtx, root)
	}
	start := time.Now()
	runErr := t.r.RunEpochs(runCtx, epochs)
	root.SetError(runErr)
	root.End()
	if ck != nil {
		// A checkpoint-write failure cancels the run context, so it takes
		// precedence over the context error it caused.
		if ckErr := ck.finish(); ckErr != nil {
			return nil, ckErr
		}
	}
	if runErr != nil {
		return nil, runErr
	}
	res := &TrainResult{
		Epochs:    t.r.EpochsDone(),
		Steps:     t.r.Steps(),
		FinalLoss: t.r.LossCurve.Last(),
		Duration:  time.Since(start),
	}
	if cfg.Test != nil && t.r.TestAcc != nil {
		res.FinalTestAccuracy = t.r.TestAcc.Last()
		res.BestTestAccuracy = t.r.TestAcc.Best()
	}
	if tta != nil {
		res.TargetReached, res.TimeToTarget = tta.Reached()
	}
	return res, nil
}
