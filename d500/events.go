package d500

import (
	"fmt"
	"io"
	"time"
)

// Event is a structured observation from a Session or Server: a training
// step or epoch finishing, an evaluation completing, a benchmark sample
// being recorded, a serving micro-batch executing, the autoscaler resizing
// a replica pool, a replica crashing, a checkpoint landing on disk, or
// the session tracer retaining a trace. The concrete types are StepEnd,
// EpochEnd, EvalEnd, BenchSample, ServeSample, ServeScale, ReplicaDown,
// CheckpointSaved and TraceSpan; consumers type-switch on the value they
// receive.
type Event interface{ event() }

// StepEnd is emitted after every optimization step.
type StepEnd struct {
	// Step is the 1-based global step counter of the run.
	Step int
	// Loss is the step's loss output.
	Loss float64
	// Accuracy is the step's minibatch accuracy output.
	Accuracy float64
}

// EpochEnd is emitted after every training epoch (including its periodic
// evaluation, when a test set is configured).
type EpochEnd struct {
	// Epoch is the 1-based epoch number.
	Epoch int
	// TestAccuracy is the post-epoch test-set accuracy (0 without a test
	// set).
	TestAccuracy float64
	// LastLoss is the most recent training loss observation.
	LastLoss float64
}

// EvalEnd is emitted when a standalone evaluation completes.
type EvalEnd struct {
	// Accuracy is the sample-weighted mean accuracy over the sampler.
	Accuracy float64
}

// BenchSample is emitted for every record a benchmark experiment appends
// to the machine-readable report, while the suite is still running.
type BenchSample struct {
	// Experiment is the suite experiment id ("fig6conv", "backend", ...).
	Experiment string
	// Metric is the record name within the experiment.
	Metric string
	// Unit is the record's unit ("s", "B", "frac", ...).
	Unit string
	// Value is the record's median.
	Value float64
	// Samples is how many raw observations back the value.
	Samples int
}

// ServeSample is emitted by a Server for every executed micro-batch: how
// many requests and rows were coalesced, how long the batch's oldest
// request waited, and how long the batched pass took. Emissions are
// serialized across replicas, so a hook consuming them need not be
// thread-safe.
type ServeSample struct {
	// Replica identifies the session replica that ran the batch.
	Replica int
	// Requests and Rows describe the coalesced batch.
	Requests, Rows int
	// QueueWait is the oldest request's admission-to-dispatch wait.
	QueueWait time.Duration
	// Exec is the batched forward-pass duration.
	Exec time.Duration
}

// ServeScale is emitted by a Server whose autoscaler (WithMaxReplicas)
// changed the replica pool: a replica was added under queue pressure, or
// an idle scaled-up replica was retired by draining. Emitted from the
// scaler goroutine; unlike ServeSample it is NOT serialized with the
// batch events, so a hook consuming it together with them must be
// thread-safe (Metrics is).
type ServeScale struct {
	// Replicas is the pool size after the change.
	Replicas int
	// Up reports the direction: true for a scale-up.
	Up bool
}

// ReplicaDown is emitted by a Server when one of its replicas crashes: a
// panic in the replica's pass was recovered, its in-flight requests failed
// with ErrReplicaCrash, and the pool continues at degraded capacity.
// Emissions are serialized with ServeSample, so a hook consuming both need
// not be thread-safe.
type ReplicaDown struct {
	// Replica identifies the crashed replica.
	Replica int
	// Err is the recovered panic, wrapped in ErrReplicaCrash.
	Err error
	// Respawned reports whether the replica was rebuilt from the shared
	// weights and returned to the pool (see WithRespawn).
	Respawned bool
}

// CheckpointSaved is emitted by Session.Train after a training checkpoint
// has been durably written (the asynchronous writer completed its atomic
// rename). It is delivered on the training goroutine, like every other
// training event.
type CheckpointSaved struct {
	// Step and Epoch locate the snapshot in the run: optimization steps and
	// full epochs completed at capture time.
	Step, Epoch int
	// Path is the checkpoint file.
	Path string
}

// TraceSpan is emitted when a session-owned tracer (WithTrace) retains a
// trace in its flight recorder — head-sampled, tail-sampled for latency,
// or errored. TraceID is the exemplar to pass to GET /debug/traces.
// Like ServeScale, it is delivered on whichever goroutine ended the
// trace's root span, NOT serialized with the training events: a hook
// consuming it together with them must be thread-safe (Metrics is;
// ConsoleHook emits a single Fprintf per event).
type TraceSpan struct {
	// Name is the root span's name ("train.run", "serve.request", ...).
	Name string
	// TraceID is the 16-hex trace identifier.
	TraceID string
	// Duration is the root span's duration.
	Duration time.Duration
	// Spans is how many spans the retained trace held at retention.
	Spans int
	// Error reports whether the root span recorded an error.
	Error bool
}

func (StepEnd) event()         {}
func (EpochEnd) event()        {}
func (EvalEnd) event()         {}
func (BenchSample) event()     {}
func (ServeSample) event()     {}
func (ServeScale) event()      {}
func (ReplicaDown) event()     {}
func (CheckpointSaved) event() {}
func (TraceSpan) event()       {}

// Hook consumes the session event stream. Hooks run synchronously on the
// training/benchmark goroutine: keep them fast, or hand off to a channel.
type Hook func(Event)

// MultiHook fans one event stream out to several consumers in order; nil
// entries are skipped.
func MultiHook(hooks ...Hook) Hook {
	return func(e Event) {
		for _, h := range hooks {
			if h != nil {
				h(e)
			}
		}
	}
}

// ConsoleHook renders the event stream as human-readable progress lines —
// the table renderers the binaries previously hand-rolled, reimplemented
// as one stream consumer. StepEnd events are sampled (every 50th) to keep
// terminals readable; every other event renders unconditionally.
func ConsoleHook(w io.Writer) Hook {
	if w == nil {
		return func(Event) {}
	}
	return func(e Event) {
		switch ev := e.(type) {
		case StepEnd:
			if ev.Step%50 == 0 {
				fmt.Fprintf(w, "step %5d  loss %.4f  batch acc %.3f\n", ev.Step, ev.Loss, ev.Accuracy)
			}
		case EpochEnd:
			fmt.Fprintf(w, "epoch %2d  test accuracy %.4f  last loss %.4f\n", ev.Epoch, ev.TestAccuracy, ev.LastLoss)
		case EvalEnd:
			fmt.Fprintf(w, "evaluation  accuracy %.4f\n", ev.Accuracy)
		case BenchSample:
			fmt.Fprintf(w, "bench %-12s %-32s %12.6g %s (%d samples)\n", ev.Experiment, ev.Metric, ev.Value, ev.Unit, ev.Samples)
		case ServeSample:
			fmt.Fprintf(w, "serve replica %d  batch %d req / %d rows  wait %s  exec %s\n",
				ev.Replica, ev.Requests, ev.Rows, fdur(ev.QueueWait), fdur(ev.Exec))
		case ServeScale:
			dir := "down to"
			if ev.Up {
				dir = "up to"
			}
			fmt.Fprintf(w, "serve autoscale %s %d replicas\n", dir, ev.Replicas)
		case ReplicaDown:
			state := "dead"
			if ev.Respawned {
				state = "respawned"
			}
			fmt.Fprintf(w, "serve replica %d DOWN (%s): %v\n", ev.Replica, state, ev.Err)
		case CheckpointSaved:
			fmt.Fprintf(w, "checkpoint saved at step %d (epoch %d): %s\n", ev.Step, ev.Epoch, ev.Path)
		case TraceSpan:
			status := ""
			if ev.Error {
				status = "  ERROR"
			}
			fmt.Fprintf(w, "trace %s  %s  %d spans  %s%s\n",
				ev.TraceID, ev.Name, ev.Spans, fdur(ev.Duration), status)
		}
	}
}

// timing helper shared by TrainResult rendering.
func fdur(d time.Duration) string { return d.Round(time.Millisecond).String() }
