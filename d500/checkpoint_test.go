package d500

import (
	"context"
	"path/filepath"
	"testing"

	"deep500/internal/models"
	"deep500/internal/tensor"
)

// TestCheckpointRoundTrip is the satellite acceptance test: train a model
// through the public API, Save it, Load it back, and require identical
// inference — including when the loaded checkpoint is served through
// NewServer.
func TestCheckpointRoundTrip(t *testing.T) {
	ctx := context.Background()
	m := models.MLP(models.Config{Classes: 4, Channels: 1, Height: 4, Width: 4, WithHead: true, Seed: 7}, 8)

	sess, err := New(WithSeed(11))
	if err != nil {
		t.Fatal(err)
	}
	// Save before Open is a typed failure, not a panic.
	if err := sess.Save(filepath.Join(t.TempDir(), "x.d5nx")); err == nil {
		t.Fatal("Save before Open must fail")
	}
	if err := sess.Open(m); err != nil {
		t.Fatal(err)
	}

	// A short training run mutates the parameters away from their init.
	train, _ := SyntheticSplit(64, 16, 4, []int{1, 4, 4}, 0.3, 7)
	if _, err := sess.Train(ctx, TrainConfig{
		Optimizer: SGD(0.05),
		Train:     ShuffleSampler(train, 16, 1),
		Epochs:    2,
	}); err != nil {
		t.Fatal(err)
	}

	feeds := func() map[string]*tensor.Tensor {
		rng := tensor.NewRNG(3)
		labels := tensor.New(2)
		return map[string]*tensor.Tensor{
			"x":      tensor.RandNormal(rng, 0, 1, 2, 1, 4, 4),
			"labels": labels,
		}
	}
	want, err := sess.Infer(ctx, feeds())
	if err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "trained.d5nx")
	if err := sess.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}

	// Identical inference through a fresh session…
	sess2, err := New()
	if err != nil {
		t.Fatal(err)
	}
	if err := sess2.Open(loaded); err != nil {
		t.Fatal(err)
	}
	got, err := sess2.Infer(ctx, feeds())
	if err != nil {
		t.Fatal(err)
	}
	for name, w := range want {
		g := got[name]
		if g == nil || !tensor.SameShape(w, g) {
			t.Fatalf("output %q missing or misshapen after reload", name)
		}
		for i, v := range w.Data() {
			if g.Data()[i] != v {
				t.Fatalf("output %q differs after reload: %g vs %g", name, g.Data()[i], v)
			}
		}
	}

	// …and through the serving layer over the loaded checkpoint.
	srv, err := NewServer(loaded, WithMaxBatch(1))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close(ctx)
	served, err := srv.Infer(ctx, feeds())
	if err != nil {
		t.Fatal(err)
	}
	for name, w := range want {
		g := served[name]
		if g == nil || !tensor.SameShape(w, g) {
			t.Fatalf("served output %q missing or misshapen", name)
		}
		for i, v := range w.Data() {
			if g.Data()[i] != v {
				t.Fatalf("served output %q differs: %g vs %g", name, g.Data()[i], v)
			}
		}
	}

	if _, err := Load(""); err == nil {
		t.Fatal("Load of empty path must fail")
	}
	if _, err := Load(filepath.Join(t.TempDir(), "missing.d5nx")); err == nil {
		t.Fatal("Load of missing file must fail")
	}
}
