package d500

import (
	"context"
	"io"

	"deep500/internal/bench"
	"deep500/internal/core"
)

// BenchReport is the machine-readable benchmark report (re-exported from
// internal/bench so consumers can write, read and compare reports without
// importing internal packages).
type BenchReport = bench.Report

// BenchConfig parameterizes Session.Bench.
type BenchConfig struct {
	// Out receives the human-readable tables; nil discards them (JSON-only
	// runs).
	Out io.Writer
}

// coreOptions maps the session configuration onto the experiment options.
func (s *Session) coreOptions() core.Options {
	return core.Options{
		Quick:    s.cfg.quick,
		Seed:     s.cfg.seed,
		Exec:     s.cfg.backend.String(),
		Arena:    s.cfg.arena,
		Optimize: s.cfg.optimize,
		Gemm:     s.cfg.gemm,
		MemPlan:  s.cfg.memPlan,
	}
}

// suite lazily builds (and caches) the registered experiment suite under
// the session's options; registration is pure so one registry serves
// every listing, lookup and run. Sessions are single-goroutine (see the
// Session doc), so no lock is needed.
func (s *Session) suite() *bench.Suite {
	if s.benchSuite == nil {
		s.benchSuite = bench.NewSuite()
		core.RegisterExperiments(s.benchSuite, s.coreOptions())
	}
	return s.benchSuite
}

// Experiments returns every registered benchmark experiment id in
// registration order.
func (s *Session) Experiments() []string { return s.suite().IDs() }

// HasExperiment reports whether id names a registered experiment.
func (s *Session) HasExperiment(id string) bool { return s.suite().Has(id) }

// Bench runs the named paper experiments (all of them when ids is empty)
// and returns the machine-readable report. Every record an experiment
// emits is also surfaced through the session hook as a BenchSample event.
// The context is observed between experiments and inside the
// graph-executing ones, so deadlines and cancellation stop long suites.
func (s *Session) Bench(ctx context.Context, ids []string, cfg BenchConfig) (*BenchReport, error) {
	suite := s.suite()
	if len(ids) == 0 {
		ids = suite.IDs()
	}
	env := bench.CaptureEnv()
	env.ExecBackend = s.cfg.backend.String()
	env.Arena = s.cfg.arena
	env.Optimize = s.cfg.optimize
	env.Gemm = s.cfg.gemm
	env.MemPlan = s.cfg.memPlan
	env.Quick = s.cfg.quick
	env.Seed = s.cfg.seed
	return suite.Run(ctx, ids, bench.RunConfig{
		Out: cfg.Out,
		Env: env,
		Observe: func(experimentID string, r bench.Record) {
			s.emit(BenchSample{
				Experiment: experimentID,
				Metric:     r.Name,
				Unit:       r.Unit,
				Value:      r.Stats.Median,
				Samples:    len(r.Samples),
			})
		},
	})
}

// Survey renderers: the paper's static tables and figures, exposed so
// informational binaries need no internal/core import.

// RenderTableI writes the paper's Table I (framework feature survey).
func RenderTableI(w io.Writer) { core.RenderTableI().Render(w) }

// RenderTableII writes the paper's Table II (benchmark feature survey).
func RenderTableII(w io.Writer) { core.RenderTableII().Render(w) }

// RenderFig2 writes the paper's Fig. 2 (compute nodes over time survey).
func RenderFig2(w io.Writer) { core.RenderFig2().Render(w) }
