package d500

import (
	"context"
	"math"
	"path/filepath"
	"testing"

	"deep500/internal/graph"
	"deep500/internal/models"
)

// Exact-resume acceptance tests: a training run killed mid-epoch and
// resumed from its checkpoint must reproduce the uninterrupted run's
// per-step loss trajectory bitwise (sequential backend — the repo's
// deterministic reference).

const (
	resumeSeed    = 21
	resumeBatch   = 16
	resumeSamples = 64 // 4 steps per epoch
	resumeEpochs  = 3
)

// resumeModel builds the run's model fresh — Seed pins the initializer
// draw, so every run starts from identical weights.
func resumeModel() *graph.Model {
	return models.MLP(models.Config{Classes: 4, Channels: 1, Height: 4, Width: 4, WithHead: true, Seed: 7}, 8)
}

// trainRun executes one training run and returns the per-step losses
// keyed by global step number. cancelAt > 0 cancels the run from the
// AfterStep hook at that step; ckptPath/ckptEvery enable checkpointing;
// cp resumes from a checkpoint.
func trainRun(t *testing.T, cancelAt int, ckptPath string, ckptEvery int, cp *Checkpoint) (map[int]float64, error) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	losses := make(map[int]float64)
	saved := 0
	hook := func(e Event) {
		switch ev := e.(type) {
		case StepEnd:
			losses[ev.Step] = ev.Loss
			if cancelAt > 0 && ev.Step == cancelAt {
				cancel()
			}
		case CheckpointSaved:
			saved++
		}
	}

	opts := []Option{WithSeed(11), WithHook(hook)}
	if ckptEvery > 0 {
		opts = append(opts, WithCheckpointEvery(ckptEvery))
	}
	sess, err := New(opts...)
	if err != nil {
		t.Fatal(err)
	}
	if cp != nil {
		if err := sess.Open(cp.Model()); err != nil {
			t.Fatal(err)
		}
	} else {
		if err := sess.Open(resumeModel()); err != nil {
			t.Fatal(err)
		}
	}

	// Dataset, sampler and optimizer are reconstructed identically for every
	// run — exactly what a resumed binary does from its flags.
	train, test := SyntheticSplit(resumeSamples, resumeSamples/4, 4, []int{1, 4, 4}, 0.3, resumeSeed)
	_, err = sess.Train(ctx, TrainConfig{
		Optimizer:      Adam(0.01),
		Train:          ShuffleSampler(train, resumeBatch, resumeSeed),
		Test:           SequentialSampler(test, resumeBatch),
		Epochs:         resumeEpochs,
		CheckpointPath: ckptPath,
		Resume:         cp,
	})
	if ckptPath != "" && err == nil && saved == 0 {
		t.Fatal("checkpointing run emitted no CheckpointSaved event")
	}
	return losses, err
}

// TestResumeExactTrajectory is the tentpole acceptance test: kill a
// checkpointing run mid-epoch, resume it, and require every post-resume
// step loss to be bitwise-equal to the uninterrupted run's.
func TestResumeExactTrajectory(t *testing.T) {
	// Reference: uninterrupted 3-epoch run (12 steps).
	want, err := trainRun(t, 0, "", 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(want) != resumeEpochs*resumeSamples/resumeBatch {
		t.Fatalf("reference run took %d steps, want %d", len(want), resumeEpochs*resumeSamples/resumeBatch)
	}

	// Interrupted run: checkpoints every 3 steps, killed at step 5 (epoch 2,
	// step 1 — mid-epoch). The synchronous final checkpoint captures step 5.
	path := filepath.Join(t.TempDir(), "run.ckpt")
	const killAt = 5
	got, err := trainRun(t, killAt, path, 3, nil)
	if err == nil {
		t.Fatal("cancelled run reported success")
	}
	for step := 1; step <= killAt; step++ {
		if math.Float64bits(got[step]) != math.Float64bits(want[step]) {
			t.Fatalf("pre-kill divergence at step %d: %v vs %v (training is not deterministic)",
				step, got[step], want[step])
		}
	}

	cp, err := Resume(path)
	if err != nil {
		t.Fatal(err)
	}
	if cp.Step() != killAt {
		t.Fatalf("checkpoint at step %d, want %d (final synchronous write)", cp.Step(), killAt)
	}
	if cp.EpochsDone() != 1 {
		t.Fatalf("checkpoint EpochsDone = %d, want 1", cp.EpochsDone())
	}

	resumed, err := trainRun(t, 0, "", 0, cp)
	if err != nil {
		t.Fatal(err)
	}
	for step := killAt + 1; step <= len(want); step++ {
		g, ok := resumed[step]
		if !ok {
			t.Fatalf("resumed run never reached step %d", step)
		}
		if math.Float64bits(g) != math.Float64bits(want[step]) {
			t.Fatalf("post-resume divergence at step %d: %v vs %v", step, g, want[step])
		}
	}
	for step := 1; step <= killAt; step++ {
		if _, ok := resumed[step]; ok {
			t.Fatalf("resumed run re-ran step %d", step)
		}
	}
}

// TestResumeEpochBoundary: a run that completes normally checkpoints its
// end state with MidEpoch=false; resuming it with a larger epoch budget
// trains exactly the additional epochs, matching a longer uninterrupted
// run bitwise.
func TestResumeEpochBoundary(t *testing.T) {
	// Reference: 3 uninterrupted epochs.
	want, err := trainRun(t, 0, "", 0, nil)
	if err != nil {
		t.Fatal(err)
	}

	// Checkpointing run with a smaller budget: 2 epochs to completion, so
	// the final synchronous checkpoint lands exactly on the epoch boundary.
	path := filepath.Join(t.TempDir(), "boundary.ckpt")
	ctx := context.Background()
	sess, err := New(WithSeed(11))
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.Open(resumeModel()); err != nil {
		t.Fatal(err)
	}
	train, test := SyntheticSplit(resumeSamples, resumeSamples/4, 4, []int{1, 4, 4}, 0.3, resumeSeed)
	if _, err := sess.Train(ctx, TrainConfig{
		Optimizer:      Adam(0.01),
		Train:          ShuffleSampler(train, resumeBatch, resumeSeed),
		Test:           SequentialSampler(test, resumeBatch),
		Epochs:         2,
		CheckpointPath: path,
	}); err != nil {
		t.Fatal(err)
	}

	cp, err := Resume(path)
	if err != nil {
		t.Fatal(err)
	}
	if cp.EpochsDone() != 2 {
		t.Fatalf("EpochsDone = %d, want 2", cp.EpochsDone())
	}
	stepsPerEpoch := resumeSamples / resumeBatch
	if cp.Step() != 2*stepsPerEpoch {
		t.Fatalf("Step = %d, want %d", cp.Step(), 2*stepsPerEpoch)
	}

	resumed, err := trainRun(t, 0, "", 0, cp)
	if err != nil {
		t.Fatal(err)
	}
	for step := 2*stepsPerEpoch + 1; step <= 3*stepsPerEpoch; step++ {
		if math.Float64bits(resumed[step]) != math.Float64bits(want[step]) {
			t.Fatalf("boundary-resume divergence at step %d: %v vs %v", step, resumed[step], want[step])
		}
	}
}

// TestResumeValidation covers the typed failure modes of the resume path.
func TestResumeValidation(t *testing.T) {
	if _, err := Resume(""); err == nil {
		t.Fatal("Resume(\"\") must fail")
	}
	if _, err := Resume(filepath.Join(t.TempDir(), "missing.ckpt")); err == nil {
		t.Fatal("Resume of a missing file must fail")
	}

	// A plain Session.Save file is not a training checkpoint.
	sess, err := New(WithSeed(11))
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.Open(resumeModel()); err != nil {
		t.Fatal(err)
	}
	plain := filepath.Join(t.TempDir(), "plain.d5nx")
	if err := sess.Save(plain); err != nil {
		t.Fatal(err)
	}
	if _, err := Resume(plain); err == nil {
		t.Fatal("Resume of a plain model file must fail")
	}

	// Resuming onto a session whose open model is not the checkpoint's is a
	// typed error, not silent weight corruption.
	path := filepath.Join(t.TempDir(), "run.ckpt")
	if _, err := trainRun(t, 2, path, 1, nil); err == nil {
		t.Fatal("cancelled run reported success")
	}
	cp, err := Resume(path)
	if err != nil {
		t.Fatal(err)
	}
	train, _ := SyntheticSplit(resumeSamples, resumeSamples/4, 4, []int{1, 4, 4}, 0.3, resumeSeed)
	if _, err := sess.Train(context.Background(), TrainConfig{
		Optimizer: Adam(0.01),
		Train:     ShuffleSampler(train, resumeBatch, resumeSeed),
		Epochs:    1,
		Resume:    cp,
	}); err == nil {
		t.Fatal("resume onto a different open model must fail")
	}
}
