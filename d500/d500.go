// Package d500 is the public API of Deep500-Go: the one supported way to
// construct and drive the stack that cmd/ binaries, examples and external
// consumers use instead of reaching into internal/ packages.
//
// A Session is assembled from typed functional options and resolves its
// configuration at construction, returning errors instead of panicking:
//
//	sess, err := d500.New(
//		d500.WithBackend(d500.Parallel),
//		d500.WithArena(),
//		d500.WithSeed(42),
//	)
//	if err != nil { ... }
//	if err := sess.Open(model); err != nil { ... }
//	out, err := sess.Infer(ctx, feeds)
//
// Every execution entry point — Infer, Train, Evaluate, Bench, Trainer
// steps — takes a context.Context that is observed between operator
// dispatches, training steps and suite experiments, so callers get
// cancellation and deadlines through the full execution chain.
//
// Observation happens through a single structured event stream: install a
// Hook with WithHook and receive typed StepEnd / EpochEnd / EvalEnd /
// BenchSample / ServeSample events. ConsoleHook renders that stream as
// the progress lines and sample tables the binaries print.
//
// For online inference, NewServer wraps a model in the serving
// subsystem — a dynamic micro-batching queue over a pool of session
// replicas with bounded admission and an HTTP JSON front end:
//
//	srv, err := d500.NewServer(model,
//		d500.WithMaxBatch(8), d500.WithReplicas(4),
//		d500.WithSession(d500.WithArena(), d500.WithOptimize()),
//	)
//	if err != nil { ... }
//	http.ListenAndServe(":8500", srv.Handler())
//
// Session.Save and Load round-trip trained weights through the D5NX
// checkpoint format, so a train → Save → Load → serve pipeline
// reproduces inference exactly.
//
// For operations, Metrics aggregates the event stream and the server's
// stats into a dependency-free Prometheus /metrics endpoint with a JSON
// request-log middleware; replica panics are isolated (ErrReplicaCrash,
// optional respawn via WithRespawn); and TrainConfig.CheckpointPath plus
// Resume give exact-resume training checkpoints — a killed run restarts
// from its checkpoint and reproduces the uninterrupted loss trajectory
// bitwise. The runbook is docs/operations.md.
package d500
