package d500

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"deep500/internal/models"
	"deep500/internal/obs"
	"deep500/internal/tensor"
)

// TestRegistryLifecycleAndMetrics drives the public multi-tenant surface
// end to end: load two models, route, hot-swap one, observe everything
// through ObserveRegistry (aggregate series, lifecycle counters, and
// per-tenant labeled series tracking load/unload), then unload.
func TestRegistryLifecycleAndMetrics(t *testing.T) {
	reg, err := NewRegistry(WithDrainGrace(5 * time.Second))
	if err != nil {
		t.Fatal(err)
	}
	defer reg.Close(context.Background())

	mlp := serveModel()
	lenet := models.LeNet(models.Config{Classes: 10, Channels: 1, Height: 28, Width: 28, Seed: 3})
	if err := reg.Load("mlp", ModelSpec{Version: "v1", Priority: 2, Model: mlp,
		Options: []ServerOption{WithMaxBatch(2), WithSession(WithArena())}}); err != nil {
		t.Fatal(err)
	}
	if err := reg.Load("lenet", ModelSpec{Version: "v1", Model: lenet}); err != nil {
		t.Fatal(err)
	}

	metrics := NewMetrics()
	metrics.ObserveRegistry(reg)

	// Route to both tenants; an unknown name is a typed error.
	if _, err := reg.Infer(context.Background(), "mlp", map[string]*tensor.Tensor{"x": serveInput(1, 1)}); err != nil {
		t.Fatal(err)
	}
	rng := tensor.NewRNG(2)
	if _, err := reg.Infer(context.Background(), "lenet", map[string]*tensor.Tensor{
		"x": tensor.RandNormal(rng, 0, 1, 1, 1, 28, 28),
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Infer(context.Background(), "ghost", nil); !errors.Is(err, ErrUnknownModel) {
		t.Fatalf("unknown model: %v", err)
	}

	// Hot swap mlp to v2; the registry must report the swap and keep both
	// tenants serving.
	if err := reg.Load("mlp", ModelSpec{Version: "v2", Priority: 2, Model: mlp}); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Infer(context.Background(), "mlp", map[string]*tensor.Tensor{"x": serveInput(1, 4)}); err != nil {
		t.Fatal(err)
	}
	st := reg.Stats()
	if st.Models != 2 || st.Loads != 2 || st.Swaps != 1 {
		t.Fatalf("registry stats: %+v", st)
	}
	ms := reg.Models()
	if len(ms) != 2 || ms[0].Name != "lenet" || ms[1].Name != "mlp" || ms[1].Version != "v2" {
		t.Fatalf("models listing: %+v", ms)
	}

	rec := httptest.NewRecorder()
	metrics.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	body := rec.Body.String()
	for _, name := range obs.CoreNames() {
		if !strings.Contains(body, "# TYPE "+name+" ") {
			t.Errorf("canonical metric %s is not registered by ObserveRegistry", name)
		}
	}
	for _, want := range []string{
		"d500_serve_models 2",
		"d500_serve_model_loads_total 2",
		"d500_serve_model_swaps_total 1",
		"d500_serve_replicas_live 2",
		`d500_serve_model_replicas_live{model="lenet"} 1`,
		`d500_serve_model_replicas_live{model="mlp"} 1`,
		`d500_serve_model_requests_total{model="lenet"} 1`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("missing %q in /metrics output", want)
		}
	}

	// Unloading drops the tenant's labeled series and bumps the counter.
	if err := reg.Unload("lenet"); err != nil {
		t.Fatal(err)
	}
	rec = httptest.NewRecorder()
	metrics.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	body = rec.Body.String()
	if strings.Contains(body, `model="lenet"`) {
		t.Error("unloaded tenant still has labeled series")
	}
	if !strings.Contains(body, "d500_serve_model_unloads_total 1") ||
		!strings.Contains(body, "d500_serve_models 1") {
		t.Errorf("unload not reflected:\n%s", body)
	}
}

// TestRegistryOptionValidation mirrors the fail-fast option policy.
func TestRegistryOptionValidation(t *testing.T) {
	if _, err := NewRegistry(WithDrainGrace(0)); err == nil {
		t.Error("zero drain grace accepted")
	}
	if _, err := NewRegistry(WithShedOccupancy(1.5)); err == nil {
		t.Error("occupancy above 1 accepted")
	}
	reg, err := NewRegistry()
	if err != nil {
		t.Fatal(err)
	}
	defer reg.Close(context.Background())
	if err := reg.Load("x", ModelSpec{Version: "v1"}); !errors.Is(err, ErrBadRequest) {
		t.Errorf("nil model graph: %v", err)
	}
}

// TestAutoscaleOptionsAndEvent checks the autoscaler option surface and
// that pool resizes reach the session hook as ServeScale events.
func TestAutoscaleOptionsAndEvent(t *testing.T) {
	m := serveModel()
	for name, opts := range map[string][]ServerOption{
		"max-replicas": {WithMaxReplicas(0)},
		"below-floor":  {WithReplicas(3), WithMaxReplicas(2)},
		"interval":     {WithScaleInterval(0)},
		"occupancy":    {WithScaleUpOccupancy(2)},
		"idle":         {WithScaleDownIdle(-time.Second)},
	} {
		if _, err := NewServer(m, opts...); err == nil {
			t.Errorf("%s: invalid option accepted", name)
		}
	}

	events := make(chan ServeScale, 64)
	srv, err := NewServer(m,
		WithMaxBatch(1),
		WithReplicas(1),
		WithMaxReplicas(2),
		WithQueueDepth(4),
		WithScaleInterval(2*time.Millisecond),
		WithScaleUpOccupancy(0.25),
		WithScaleDownIdle(20*time.Millisecond),
		WithSession(WithHook(func(e Event) {
			if ev, ok := e.(ServeScale); ok {
				select {
				case events <- ev:
				default:
				}
			}
		})),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close(context.Background())

	// Keep the queue backlogged with continuous producers (a burst that
	// waits for its own completions can drain between scaler samples on a
	// loaded single-CPU machine) until the scaler reacts.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				_, _ = srv.Infer(context.Background(), map[string]*tensor.Tensor{"x": serveInput(1, seed)})
			}
		}(uint64(i))
	}
	defer wg.Wait()
	defer close(stop)

	select {
	case ev := <-events:
		if !ev.Up || ev.Replicas < 2 {
			t.Fatalf("first scale event should grow the pool: %+v", ev)
		}
		if st := srv.Stats(); st.ScaleUps == 0 {
			t.Fatalf("event without counter: %+v", st)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("no ServeScale event under sustained backlog")
	}
}
