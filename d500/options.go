package d500

import (
	"fmt"
	"strings"
	"time"

	"deep500/internal/frameworks"
	"deep500/internal/kernels"
)

// Backend selects the graph-execution strategy of a Session's executors.
type Backend int

const (
	// Sequential is the paper's reference execution model: nodes run one
	// after another in topological order on the calling goroutine.
	Sequential Backend = iota
	// Parallel is the dependency-counting dataflow scheduler: independent
	// branches of the graph execute concurrently over the shared worker
	// pool.
	Parallel
)

// String returns the canonical backend name ("sequential", "parallel").
func (b Backend) String() string {
	switch b {
	case Sequential:
		return "sequential"
	case Parallel:
		return "parallel"
	}
	return fmt.Sprintf("Backend(%d)", int(b))
}

// valid reports whether b is a declared Backend constant.
func (b Backend) valid() bool { return b == Sequential || b == Parallel }

// ParseBackend resolves a backend selector from a CLI flag or config
// string. Valid names: "sequential" (or ""), "parallel". Unknown names
// return an error instead of panicking, so flag validation can surface
// them before any experiment runs.
func ParseBackend(name string) (Backend, error) {
	switch strings.ToLower(strings.TrimSpace(name)) {
	case "", "sequential":
		return Sequential, nil
	case "parallel":
		return Parallel, nil
	}
	return Sequential, fmt.Errorf("d500: unknown execution backend %q (valid: sequential, parallel)", name)
}

// Frameworks returns the names New accepts for WithFramework, reference
// first.
func Frameworks() []string {
	names := []string{"reference"}
	for _, p := range frameworks.All() {
		names = append(names, p.Name)
	}
	return names
}

// GemmAlgorithms returns the names WithGemm accepts, slowest first. The
// last entry ("packed") is the default every session uses when WithGemm is
// not given.
func GemmAlgorithms() []string {
	return []string{"naive", "blocked", "parallel", "packed"}
}

// config is the resolved Session configuration; options validate eagerly
// so New fails fast with a descriptive error.
type config struct {
	backend     Backend
	framework   string
	arena       bool
	optimize    bool
	gemm        string // canonical algorithm name, "" = registry default (packed)
	memPlan     bool
	seed        uint64 // always non-zero after New (defaultSeed fallback)
	poolWorkers int
	quick       bool
	hook        Hook
	ckptEvery   int // checkpoint cadence in steps (0 = every epoch)
	traceOwn    bool
	traceSlow   time.Duration
	tracer      *Tracer
}

// Option configures a Session at construction. Options are applied in
// order; the first error aborts New.
type Option func(*config) error

// WithBackend selects the graph-execution backend (Sequential by default).
func WithBackend(b Backend) Option {
	return func(c *config) error {
		if !b.valid() {
			return fmt.Errorf("d500: invalid backend %d (use d500.Sequential or d500.Parallel)", int(b))
		}
		c.backend = b
		return nil
	}
}

// WithBackendName is WithBackend over a string selector — the flag-friendly
// form binaries use.
func WithBackendName(name string) Option {
	return func(c *config) error {
		b, err := ParseBackend(name)
		if err != nil {
			return err
		}
		c.backend = b
		return nil
	}
}

// WithFramework selects an emulated framework profile ("tfgo", "torchgo",
// "cf2go") instead of the uninstrumented reference executor. The name is
// resolved at New: unknown frameworks error immediately.
func WithFramework(name string) Option {
	return func(c *config) error {
		name = strings.ToLower(strings.TrimSpace(name))
		if name == "" || name == "reference" {
			c.framework = ""
			return nil
		}
		if _, ok := frameworks.ByName(name); !ok {
			return fmt.Errorf("d500: unknown framework backend %q (valid: %s)",
				name, strings.Join(Frameworks(), ", "))
		}
		c.framework = name
		return nil
	}
}

// WithArena routes operator output allocation through a recycling tensor
// arena: intermediate activations are returned to a buffer pool at the end
// of each pass instead of being garbage.
func WithArena() Option {
	return func(c *config) error {
		c.arena = true
		return nil
	}
}

// WithOptimize enables the graph-compilation pipeline: every model the
// session opens is rewritten — constant folding, dead-node elimination, and
// fusion of Dense→Bias→Activation and Conv→Bias→ReLU chains into one-pass
// fused kernels — before either execution backend runs it. Optimized
// executors produce tolerance-equal outputs and gradients; the rewrite
// statistics of the open model are available via Session.OptimizeStats.
// (This is the -opt flag of d500bench and d500train.)
func WithOptimize() Option {
	return func(c *config) error {
		c.optimize = true
		return nil
	}
}

// WithGemm selects the GEMM kernel algorithm every GEMM-backed operator of
// the session's models uses: "naive", "blocked", "parallel" or "packed"
// (see GemmAlgorithms). The empty string keeps the default, the BLIS-style
// packed register-tiled kernel. Unknown names error at New, so flag
// validation surfaces them before any model opens. (This is the -gemm flag
// of d500bench and d500train.)
func WithGemm(name string) Option {
	return func(c *config) error {
		name = strings.ToLower(strings.TrimSpace(name))
		if name == "" {
			c.gemm = ""
			return nil
		}
		if _, ok := kernels.ParseGemmAlgo(name); !ok {
			return fmt.Errorf("d500: unknown GEMM algorithm %q (valid: %s)",
				name, strings.Join(GemmAlgorithms(), ", "))
		}
		c.gemm = name
		return nil
	}
}

// WithMemPlan enables liveness-based static memory planning of forward
// activations: the first inference pass at a given set of feed shapes
// profiles the graph, then a single pre-sized slab backs every intermediate
// tensor of subsequent same-shape passes, making steady-state inference
// allocation-free. Shape changes re-profile transparently and training
// passes bypass the plan, so the option is always safe to enable. (This is
// the -plan flag of d500bench and d500train.)
func WithMemPlan() Option {
	return func(c *config) error {
		c.memPlan = true
		return nil
	}
}

// WithSeed sets the seed driving every generator the session constructs
// (model init, synthetic data, benchmark problems). Zero selects the
// default seed (500), matching the benchmark suite's convention, so the
// seed recorded in benchmark reports is always the seed that ran.
func WithSeed(seed uint64) Option {
	return func(c *config) error {
		if seed == 0 {
			seed = defaultSeed
		}
		c.seed = seed
		return nil
	}
}

// defaultSeed mirrors core.Options' zero-seed convention.
const defaultSeed = 500

// WithPool gives the session a dedicated worker pool of the given size for
// the parallel scheduler and kernel fan-outs, instead of the process-wide
// shared pool. Sizes below 1 are rejected.
func WithPool(workers int) Option {
	return func(c *config) error {
		if workers < 1 {
			return fmt.Errorf("d500: WithPool requires at least 1 worker, got %d", workers)
		}
		c.poolWorkers = workers
		return nil
	}
}

// WithQuick scales benchmark problem sizes and rerun counts down so the
// full suite completes in seconds (the -quick flag of d500bench).
func WithQuick() Option {
	return func(c *config) error {
		c.quick = true
		return nil
	}
}

// WithCheckpointEvery sets the cadence, in optimization steps, of the
// asynchronous checkpoints Session.Train writes when
// TrainConfig.CheckpointPath is set: every n steps, the run's state (model
// weights, optimizer slots, sampler/RNG cursor) is snapshotted and written
// atomically in the background. Without this option a checkpointing run
// snapshots at every epoch boundary instead. See TrainConfig.CheckpointPath
// and Resume.
func WithCheckpointEvery(steps int) Option {
	return func(c *config) error {
		if steps < 1 {
			return fmt.Errorf("d500: WithCheckpointEvery requires at least 1 step, got %d", steps)
		}
		c.ckptEvery = steps
		return nil
	}
}

// WithHook installs the session's event hook: the single observation
// channel through which training steps, epoch boundaries, evaluations and
// benchmark samples are reported. Use MultiHook to fan out to several
// consumers.
func WithHook(h Hook) Option {
	return func(c *config) error {
		c.hook = h
		return nil
	}
}

// WithTrace gives the session its own span tracer with default sampling
// (DefaultTraceConfig): training runs, serve requests and per-op executor
// work record into a bounded flight recorder, and every retained trace is
// reported to the session hook as a TraceSpan event. Use WithTracer
// instead to share one tracer (and one recorder) across several
// components. (This is the -trace flag of d500train.)
func WithTrace() Option {
	return func(c *config) error {
		c.traceOwn = true
		return nil
	}
}

// WithTraceSlow enables tracing (as WithTrace) and sets the tail-sampling
// latency threshold: any request or run whose root span lasts at least d
// is retained regardless of the head sampler. (This is the -trace-slow
// flag of d500train, d500serve and d500dist.)
func WithTraceSlow(d time.Duration) Option {
	return func(c *config) error {
		if d <= 0 {
			return fmt.Errorf("d500: WithTraceSlow requires a positive threshold, got %v", d)
		}
		c.traceOwn = true
		c.traceSlow = d
		return nil
	}
}

// WithTracer attaches a shared tracer built by NewTracer, so this
// session's spans land in the same flight recorder as the other
// components holding it (a Server, a jobs manager). Shared tracers are
// not bound to the session hook — read them via Tracer.Handler or
// Metrics.ObserveTracer. A nil tracer is rejected; omit the option to
// run untraced.
func WithTracer(t *Tracer) Option {
	return func(c *config) error {
		if t == nil {
			return fmt.Errorf("d500: WithTracer requires a non-nil tracer (omit the option to disable tracing)")
		}
		c.tracer = t
		return nil
	}
}
