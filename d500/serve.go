package d500

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"time"

	"deep500/internal/compile"
	"deep500/internal/executor"
	"deep500/internal/graph"
	"deep500/internal/kernels"
	"deep500/internal/serve"
	"deep500/internal/tensor"
)

// Serving errors, re-exported from the internal subsystem so consumers
// can match backpressure conditions with errors.Is without importing
// internal packages.
var (
	// ErrOverloaded is the typed backpressure signal: the server's bounded
	// admission queue is full and the request was rejected immediately.
	ErrOverloaded = serve.ErrQueueFull
	// ErrServerClosed is returned by Server.Infer once Close has begun.
	ErrServerClosed = serve.ErrClosed
	// ErrBadRequest wraps request-validation failures (missing feeds,
	// shape mismatches, disagreeing batch dimensions).
	ErrBadRequest = serve.ErrBadRequest
	// ErrReplicaCrash marks requests that were in flight on a replica whose
	// pass panicked; the pool recovers and keeps serving (see ReplicaDown
	// and WithRespawn).
	ErrReplicaCrash = serve.ErrReplicaCrash
)

// ServerStats is the serving counter snapshot returned by Server.Stats
// (and rendered by the HTTP /stats route).
type ServerStats = serve.Stats

// serverConfig is the resolved server configuration.
type serverConfig struct {
	sess        []Option
	maxBatch    int
	linger      time.Duration
	replicas    int
	maxReplicas int
	queue       int
	respawn     bool
	scaleEvery  time.Duration
	scaleUpOcc  float64
	scaleIdle   time.Duration
}

// ServerOption configures NewServer. Options are applied in order; the
// first error aborts construction.
type ServerOption func(*serverConfig) error

// WithMaxBatch sets the row count at which a forming micro-batch flushes
// immediately (default 8); 1 disables micro-batching.
func WithMaxBatch(n int) ServerOption {
	return func(c *serverConfig) error {
		if n < 1 {
			return fmt.Errorf("d500: WithMaxBatch requires at least 1 row, got %d", n)
		}
		c.maxBatch = n
		return nil
	}
}

// WithMaxLinger bounds how long a non-full batch waits for more requests
// after its first request is picked up (default 0: flush with whatever is
// already queued, never wait).
func WithMaxLinger(d time.Duration) ServerOption {
	return func(c *serverConfig) error {
		if d < 0 {
			return fmt.Errorf("d500: WithMaxLinger requires a non-negative duration, got %v", d)
		}
		c.linger = d
		return nil
	}
}

// WithReplicas sets the number of independent session replicas serving
// requests (default 1). Sessions are single-goroutine by contract, so
// serving concurrency comes from replicas; all replicas share the model
// weights, the kernel worker pool and the tensor arena.
func WithReplicas(n int) ServerOption {
	return func(c *serverConfig) error {
		if n < 1 {
			return fmt.Errorf("d500: WithReplicas requires at least 1 replica, got %d", n)
		}
		c.replicas = n
		return nil
	}
}

// WithMaxReplicas enables queue-driven autoscaling: the pool starts at
// WithReplicas (the floor it also shrinks back to when idle) and grows
// toward n while admission-queue occupancy stays above the scale-up
// high-water mark. Scaled-down replicas retire by draining — a replica
// is never stopped mid-batch. The default (n equal to the replica floor)
// keeps the pool fixed.
func WithMaxReplicas(n int) ServerOption {
	return func(c *serverConfig) error {
		if n < 1 {
			return fmt.Errorf("d500: WithMaxReplicas requires at least 1 replica, got %d", n)
		}
		c.maxReplicas = n
		return nil
	}
}

// WithScaleInterval sets how often the autoscaler samples queue occupancy
// (default 25ms). Only meaningful with WithMaxReplicas.
func WithScaleInterval(d time.Duration) ServerOption {
	return func(c *serverConfig) error {
		if d <= 0 {
			return fmt.Errorf("d500: WithScaleInterval requires a positive duration, got %v", d)
		}
		c.scaleEvery = d
		return nil
	}
}

// WithScaleUpOccupancy sets the queue-occupancy fraction at or above
// which the autoscaler adds a replica (default 0.5). Only meaningful with
// WithMaxReplicas.
func WithScaleUpOccupancy(frac float64) ServerOption {
	return func(c *serverConfig) error {
		if frac <= 0 || frac > 1 {
			return fmt.Errorf("d500: WithScaleUpOccupancy requires a fraction in (0, 1], got %g", frac)
		}
		c.scaleUpOcc = frac
		return nil
	}
}

// WithScaleDownIdle sets how long the queue must stay empty before a
// scaled-up replica is retired (default 500ms). Only meaningful with
// WithMaxReplicas.
func WithScaleDownIdle(d time.Duration) ServerOption {
	return func(c *serverConfig) error {
		if d <= 0 {
			return fmt.Errorf("d500: WithScaleDownIdle requires a positive duration, got %v", d)
		}
		c.scaleIdle = d
		return nil
	}
}

// WithQueueDepth bounds the admission queue (default replicas×batch×4).
// A full queue rejects requests with ErrOverloaded.
func WithQueueDepth(n int) ServerOption {
	return func(c *serverConfig) error {
		if n < 1 {
			return fmt.Errorf("d500: WithQueueDepth requires at least 1 slot, got %d", n)
		}
		c.queue = n
		return nil
	}
}

// WithRespawn makes the server rebuild a crashed replica from the shared
// model weights and return it to the pool. A replica crash — a panic
// recovered inside its pass — always fails that replica's in-flight
// requests with ErrReplicaCrash and emits a ReplicaDown event; with
// respawn enabled, serving capacity recovers instead of staying degraded.
func WithRespawn() ServerOption {
	return func(c *serverConfig) error {
		c.respawn = true
		return nil
	}
}

// WithSession forwards Session options to the server's replicas: backend
// selection, arena recycling, the compile pipeline, a dedicated worker
// pool and the event hook all mean the same thing they mean for a
// Session. Shared resources are resolved once — the replicas share one
// worker pool, one arena and one compiled model.
func WithSession(opts ...Option) ServerOption {
	return func(c *serverConfig) error {
		c.sess = append(c.sess, opts...)
		return nil
	}
}

// Server is the online-inference front end over a pool of session
// replicas: single-item Infer calls are coalesced by a dynamic
// micro-batching queue into batched tensor executions and split back per
// request. Construct with NewServer; all methods are safe for concurrent
// use — Server is the one concurrency-safe entry point of the package
// (see the Session concurrency contract).
type Server struct {
	inner  *serve.Server
	name   string // model name, the per-tenant metrics label
	stats  OptimizeStats
	opt    bool
	arena  *tensor.Arena // replica-shared arena, nil without WithArena
	tracer *Tracer       // replica-shared tracer, nil when tracing is off
}

// NewServer builds a serving pool over the model. The replicas are
// configured through WithSession (same vocabulary as New) and share the
// model's parameter tensors, one kernel worker pool and one tensor arena;
// the compile pipeline, when enabled, runs once and every replica serves
// the compiled graph.
//
// Every executed micro-batch is reported to the session hook (WithSession
// + WithHook) as a ServeSample event.
func NewServer(m *graph.Model, opts ...ServerOption) (*Server, error) {
	if m == nil {
		return nil, errors.New("d500: NewServer requires a non-nil model")
	}
	cfg := serverConfig{maxBatch: serve.DefaultMaxBatch, replicas: serve.DefaultReplicas}
	for _, opt := range opts {
		if opt == nil {
			continue
		}
		if err := opt(&cfg); err != nil {
			return nil, err
		}
	}
	if cfg.maxReplicas > 0 && cfg.maxReplicas < cfg.replicas {
		return nil, fmt.Errorf("d500: WithMaxReplicas(%d) is below the replica floor %d", cfg.maxReplicas, cfg.replicas)
	}
	// Resolve the replica template exactly like New resolves a Session, so
	// option validation and defaulting stay in one place.
	base, err := New(cfg.sess...)
	if err != nil {
		return nil, err
	}

	s := &Server{}
	served := m
	if base.cfg.optimize {
		om, rep, err := compile.Optimize(m, compile.Defaults())
		if err != nil {
			return nil, fmt.Errorf("d500: compiling model %q for serving: %w", m.Name, err)
		}
		served = om
		s.opt = true
		s.stats = OptimizeStats{
			NodesBefore:        rep.NodesBefore,
			NodesAfter:         rep.NodesAfter,
			Folded:             rep.Folded,
			Eliminated:         rep.Eliminated,
			Fused:              rep.Fused,
			PrunedInitializers: rep.PrunedInitializers,
		}
	}

	// Shared replica resources: one pool, one arena.
	pool := base.pool
	var arena *tensor.Arena
	if base.cfg.arena {
		arena = tensor.NewArena()
	}
	s.arena = arena
	factory := func() (executor.GraphExecutor, error) {
		var execOpts []executor.Option
		if base.cfg.backend == Parallel {
			execOpts = append(execOpts, executor.WithBackend(executor.NewParallelBackend(pool)))
		}
		if arena != nil {
			execOpts = append(execOpts, executor.WithArena(arena))
		}
		if base.prof != nil {
			return base.prof.NewExecutor(served, execOpts...)
		}
		return executor.New(served, execOpts...)
	}

	var observe func(serve.Sample)
	var onDown func(int, error, bool)
	var onScale func(int, bool)
	if hook := base.cfg.hook; hook != nil {
		observe = func(sm serve.Sample) {
			hook(ServeSample{
				Replica:   sm.Replica,
				Requests:  sm.Requests,
				Rows:      sm.Rows,
				QueueWait: sm.QueueWait,
				Exec:      sm.Exec,
			})
		}
		onDown = func(replica int, cause error, respawned bool) {
			hook(ReplicaDown{Replica: replica, Err: cause, Respawned: respawned})
		}
		onScale = func(replicas int, up bool) {
			hook(ServeScale{Replicas: replicas, Up: up})
		}
	}

	inner, err := serve.New(serve.Options{
		MaxBatch:         cfg.maxBatch,
		MaxLinger:        cfg.linger,
		Replicas:         cfg.replicas,
		MaxReplicas:      cfg.maxReplicas,
		QueueDepth:       cfg.queue,
		ScaleInterval:    cfg.scaleEvery,
		ScaleUpOccupancy: cfg.scaleUpOcc,
		ScaleDownIdle:    cfg.scaleIdle,
		NewExecutor:      factory,
		Observe:          observe,
		Respawn:          cfg.respawn,
		OnReplicaDown:    onDown,
		OnScale:          onScale,
		Tracer:           base.tracer.raw(),
	})
	if err != nil {
		return nil, err
	}
	s.inner = inner
	s.name = m.Name
	s.tracer = base.tracer
	return s, nil
}

// Tracer returns the tracer serving requests record into — the one
// WithSession(WithTrace/WithTracer) resolved — or nil when tracing is
// off. Mount Tracer().Handler() to expose the flight recorder.
func (s *Server) Tracer() *Tracer { return s.tracer }

// Infer runs one inference request through the micro-batching pipeline.
// Feeds must supply exactly the model's declared inputs, each with a
// leading batch dimension; row-aligned outputs come back split to this
// request's rows, batch-scoped outputs (a batch-mean loss) as copies.
// ctx is honored while the request is queued; admission overload returns
// ErrOverloaded immediately.
func (s *Server) Infer(ctx context.Context, feeds map[string]*tensor.Tensor) (map[string]*tensor.Tensor, error) {
	return s.inner.Infer(ctx, feeds)
}

// Handler returns the server's HTTP JSON front end: POST /v1/infer,
// GET /stats, GET /healthz. Backpressure maps onto status codes (429
// queue full, 503 closed, 400 bad request, 504 queued-request deadline).
func (s *Server) Handler() http.Handler { return s.inner.Handler() }

// Stats returns a snapshot of the serving counters: served requests /
// rows / batches, mean batch occupancy, rejections, and per-batch queue
// wait and execution means.
func (s *Server) Stats() ServerStats { return s.inner.Stats() }

// OptimizeStats reports what the compile pipeline did to the served
// model; ok is false when the server was built without WithOptimize.
func (s *Server) OptimizeStats() (stats OptimizeStats, ok bool) { return s.stats, s.opt }

// Close stops admission (Infer then returns ErrServerClosed), drains the
// queued requests and waits for the replicas to finish. If ctx expires
// first, in-flight passes are cancelled and Close returns ctx.Err().
func (s *Server) Close(ctx context.Context) error { return s.inner.Close(ctx) }

// poolWorkers reports the server-shared worker budget — used by d500info
// to render serving defaults.
func poolWorkers(p *kernels.Pool) int {
	if p == nil {
		p = kernels.Default
	}
	return p.Workers()
}

// ServerDefaults describes the serving configuration NewServer resolves
// when no options are given — the discoverability surface d500info
// renders next to the experiment registry.
type ServerDefaults struct {
	// MaxBatch / MaxLinger / Replicas / QueueDepth mirror the ServerOption
	// defaults.
	MaxBatch   int
	MaxLinger  time.Duration
	Replicas   int
	QueueDepth int
	// MaxReplicas / ScaleInterval / ScaleUpOccupancy / ScaleDownIdle mirror
	// the autoscaler defaults (MaxReplicas equal to Replicas: fixed pool).
	MaxReplicas      int
	ScaleInterval    time.Duration
	ScaleUpOccupancy float64
	ScaleDownIdle    time.Duration
	// DrainGrace / ShedOccupancy mirror the registry defaults.
	DrainGrace    time.Duration
	ShedOccupancy float64
	// PoolWorkers is the shared kernel worker budget replicas draw from.
	PoolWorkers int
	// Frameworks lists the framework profiles WithSession(WithFramework)
	// accepts for replicas.
	Frameworks []string
}

// DefaultServerConfig returns the documented NewServer defaults —
// resolved from the same constants serve.New applies, so the rendered
// defaults can never drift from the running ones.
func DefaultServerConfig() ServerDefaults {
	return ServerDefaults{
		MaxBatch:         serve.DefaultMaxBatch,
		MaxLinger:        0,
		Replicas:         serve.DefaultReplicas,
		QueueDepth:       serve.DefaultQueueDepth(serve.DefaultReplicas, serve.DefaultMaxBatch),
		MaxReplicas:      serve.DefaultReplicas,
		ScaleInterval:    serve.DefaultScaleInterval,
		ScaleUpOccupancy: serve.DefaultScaleUpOccupancy,
		ScaleDownIdle:    serve.DefaultScaleDownIdle,
		DrainGrace:       serve.DefaultDrainGrace,
		ShedOccupancy:    serve.DefaultShedOccupancy,
		PoolWorkers:      poolWorkers(nil),
		Frameworks:       Frameworks(),
	}
}
