package d500

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"deep500/internal/graph"
	"deep500/internal/models"
	"deep500/internal/tensor"
)

// serveModel builds the tiny headless MLP the serving tests use.
func serveModel() *graph.Model {
	return models.MLP(models.Config{Classes: 4, Channels: 1, Height: 4, Width: 4, Seed: 7}, 8)
}

func serveInput(rows int, seed uint64) *tensor.Tensor {
	rng := tensor.NewRNG(seed)
	return tensor.RandNormal(rng, 0, 1, rows, 1, 4, 4)
}

// TestServerOptionValidation mirrors the Session's fail-fast option
// policy.
func TestServerOptionValidation(t *testing.T) {
	m := serveModel()
	for name, opts := range map[string][]ServerOption{
		"batch":    {WithMaxBatch(0)},
		"linger":   {WithMaxLinger(-time.Second)},
		"replicas": {WithReplicas(0)},
		"queue":    {WithQueueDepth(0)},
		"session":  {WithSession(WithBackendName("bogus"))},
	} {
		if _, err := NewServer(m, opts...); err == nil {
			t.Errorf("%s: invalid option accepted", name)
		}
	}
	if _, err := NewServer(nil); err == nil {
		t.Error("nil model accepted")
	}
}

// TestServerServesAndObserves drives concurrent requests through a fully
// configured server (parallel backend, arena, compile pipeline, replicas)
// and checks results against a plain Session plus the ServeSample stream.
func TestServerServesAndObserves(t *testing.T) {
	m := serveModel()

	// Reference outputs through a plain session.
	sess, err := New()
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.Open(m); err != nil {
		t.Fatal(err)
	}

	var mu sync.Mutex
	var samples []ServeSample
	srv, err := NewServer(m,
		WithMaxBatch(4),
		WithMaxLinger(50*time.Millisecond),
		WithReplicas(2),
		WithQueueDepth(64),
		WithSession(
			WithBackend(Parallel),
			WithArena(),
			WithOptimize(),
			WithHook(func(e Event) {
				if s, ok := e.(ServeSample); ok {
					mu.Lock()
					samples = append(samples, s)
					mu.Unlock()
				}
			}),
		),
	)
	if err != nil {
		t.Fatal(err)
	}
	if stats, ok := srv.OptimizeStats(); !ok || stats.Fused == 0 {
		t.Fatalf("compile pipeline did not run for serving: %+v ok=%v", stats, ok)
	}

	const requests = 8
	inputs := make([]*tensor.Tensor, requests)
	var wg sync.WaitGroup
	got := make([]map[string]*tensor.Tensor, requests)
	errs := make([]error, requests)
	for i := 0; i < requests; i++ {
		inputs[i] = serveInput(1, uint64(i))
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got[i], errs[i] = srv.Infer(context.Background(),
				map[string]*tensor.Tensor{"x": inputs[i]})
		}(i)
	}
	wg.Wait()
	for i := 0; i < requests; i++ {
		if errs[i] != nil {
			t.Fatalf("request %d: %v", i, errs[i])
		}
		want, err := sess.Infer(context.Background(), map[string]*tensor.Tensor{"x": inputs[i]})
		if err != nil {
			t.Fatal(err)
		}
		for name, w := range want {
			g := got[i][name]
			if g == nil || !tensor.SameShape(w, g) {
				t.Fatalf("request %d output %q missing or misshapen", i, name)
			}
			for j, v := range w.Data() {
				d := float64(g.Data()[j] - v)
				if d < 0 {
					d = -d
				}
				if d > 1e-5 {
					t.Fatalf("request %d output %q diverges: %g vs %g", i, name, g.Data()[j], v)
				}
			}
		}
	}

	if err := srv.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(samples) == 0 {
		t.Fatal("no ServeSample events reached the hook")
	}
	var rows int
	for _, s := range samples {
		rows += s.Rows
	}
	if rows != requests {
		t.Fatalf("ServeSample events account for %d rows, want %d", rows, requests)
	}
	st := srv.Stats()
	if st.Requests != requests || st.Batches != uint64(len(samples)) {
		t.Fatalf("stats %+v disagree with %d observed samples", st, len(samples))
	}

	// Typed backpressure survives the public wrapping.
	if _, err := srv.Infer(context.Background(), map[string]*tensor.Tensor{"x": serveInput(1, 9)}); !errors.Is(err, ErrServerClosed) {
		t.Fatalf("want ErrServerClosed, got %v", err)
	}
	if d := DefaultServerConfig(); d.MaxBatch != 8 || d.Replicas != 1 || d.PoolWorkers < 1 {
		t.Fatalf("DefaultServerConfig = %+v", d)
	}
}
