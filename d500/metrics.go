package d500

import (
	"io"
	"net/http"

	"deep500/internal/obs"
)

// Metrics aggregates the session/server event stream and serving counters
// into a Prometheus-scrapable registry — the production observability
// surface documented in docs/operations.md. Build one with NewMetrics,
// install Hook() on the sessions/servers to observe, call Observe(server)
// to export the serving gauges, and mount Handler() as GET /metrics (this
// is what cmd/d500serve does).
type Metrics struct {
	reg *obs.Registry

	requests *obs.CounterVec

	batchLatency *obs.Histogram
	queueWait    *obs.Histogram

	trainSteps  *obs.Counter
	trainEpochs *obs.Counter
	trainLoss   *obs.Gauge
	trainAcc    *obs.Gauge
	evalAcc     *obs.Gauge
	ckptWrites  *obs.Counter
}

// NewMetrics builds a registry with the event-driven series registered
// (request counts, latency histograms, training progress). The
// Stats-driven serving gauges appear once Observe binds a Server.
func NewMetrics() *Metrics {
	reg := obs.NewRegistry()
	return &Metrics{
		reg: reg,
		requests: reg.CounterVec(obs.MetricServeRequestsTotal,
			"HTTP requests served, by status code.", "code"),
		batchLatency: reg.Histogram(obs.MetricServeBatchLatencySeconds,
			"Batched forward-pass execution time in seconds.", nil),
		queueWait: reg.Histogram(obs.MetricServeQueueWaitSeconds,
			"Admission-to-dispatch queue wait of each batch's oldest request, in seconds.", nil),
		trainSteps: reg.Counter(obs.MetricTrainStepsTotal,
			"Optimization steps completed."),
		trainEpochs: reg.Counter(obs.MetricTrainEpochsTotal,
			"Training epochs completed."),
		trainLoss: reg.Gauge(obs.MetricTrainLoss,
			"Loss of the most recent training step."),
		trainAcc: reg.Gauge(obs.MetricTrainAccuracy,
			"Minibatch accuracy of the most recent training step."),
		evalAcc: reg.Gauge(obs.MetricEvalAccuracy,
			"Accuracy of the most recent evaluation."),
		ckptWrites: reg.Counter(obs.MetricCheckpointWritesTotal,
			"Training checkpoints durably written."),
	}
}

// Hook returns an event hook feeding the registry; chain it with other
// consumers via MultiHook. Like every Hook it relies on the emitter's
// serialization guarantees (training events on the training goroutine,
// serve events serialized across replicas) — the underlying metrics are
// additionally thread-safe, so sharing one Metrics between a trainer and a
// server is fine.
func (m *Metrics) Hook() Hook {
	return func(e Event) {
		switch ev := e.(type) {
		case StepEnd:
			m.trainSteps.Inc()
			m.trainLoss.Set(ev.Loss)
			m.trainAcc.Set(ev.Accuracy)
		case EpochEnd:
			m.trainEpochs.Inc()
		case EvalEnd:
			m.evalAcc.Set(ev.Accuracy)
		case ServeSample:
			m.batchLatency.Observe(ev.Exec.Seconds())
			m.queueWait.Observe(ev.QueueWait.Seconds())
		case CheckpointSaved:
			m.ckptWrites.Inc()
		}
	}
}

// serveSource abstracts what the serving gauges are read from, so one
// registration path covers both a standalone Server (a single implicit
// tenant) and a multi-tenant Registry (aggregates summed across tenants,
// plus one labeled series per tenant).
type serveSource struct {
	stats    func() ServerStats           // aggregate serving counters
	models   func() []ModelStatus         // per-tenant state (one synthetic entry for a Server)
	registry func() (l, s, u, sh float64) // loads, swaps, unloads, sheds
	arena    func() float64               // idle arena bytes
}

// Observe exports the server's counters and gauges: queue depth/capacity,
// batch totals and occupancy, rejection/expiry/failure counts, replica
// capacity (configured, live, crashes, respawns, autoscaler moves) and the
// shared arena's idle footprint. Values are read from Server.Stats at
// scrape time, so they never drift from GET /stats. The multi-tenant
// series render the server as a single tenant named after its model; the
// registry lifecycle counters stay at zero. Call Observe or
// ObserveRegistry at most once per Metrics.
func (m *Metrics) Observe(s *Server) {
	name := s.name
	m.observeServe(serveSource{
		stats: s.Stats,
		models: func() []ModelStatus {
			return []ModelStatus{{Name: name, Stats: s.Stats()}}
		},
		registry: func() (float64, float64, float64, float64) { return 0, 0, 0, 0 },
		arena: func() float64 {
			if s.arena == nil {
				return 0
			}
			return float64(s.arena.FreeBytes())
		},
	})
}

// ObserveRegistry exports a multi-tenant registry: every aggregate series
// Observe exports (summed across tenants, so dashboards built for a
// single server keep working), the registry lifecycle counters
// (loads/swaps/unloads, priority sheds), a loaded-tenant gauge, and
// per-tenant series labeled by model name that appear and vanish with hot
// load/unload. Call Observe or ObserveRegistry at most once per Metrics.
func (m *Metrics) ObserveRegistry(r *Registry) {
	m.observeServe(serveSource{
		stats:  func() ServerStats { return r.Stats().Aggregate },
		models: r.Models,
		registry: func() (float64, float64, float64, float64) {
			st := r.Stats()
			return float64(st.Loads), float64(st.Swaps), float64(st.Unloads), float64(st.Sheds)
		},
		arena: r.arenaBytes,
	})
}

func (m *Metrics) observeServe(src serveSource) {
	stats := func(f func(ServerStats) float64) func() float64 {
		return func() float64 { return f(src.stats()) }
	}
	perModel := func(f func(ModelStatus) float64) func() map[string]float64 {
		return func() map[string]float64 {
			models := src.models()
			out := make(map[string]float64, len(models))
			for _, st := range models {
				out[st.Name] = f(st)
			}
			return out
		}
	}
	m.reg.GaugeFunc(obs.MetricServeQueueDepth,
		"Current admission-queue length.",
		stats(func(st ServerStats) float64 { return float64(st.QueueDepth) }))
	m.reg.GaugeFunc(obs.MetricServeQueueCapacity,
		"Admission-queue capacity; depth at capacity rejects with 429.",
		stats(func(st ServerStats) float64 { return float64(st.QueueCap) }))
	m.reg.CounterFunc(obs.MetricServeBatchesTotal,
		"Micro-batches executed.",
		stats(func(st ServerStats) float64 { return float64(st.Batches) }))
	m.reg.CounterFunc(obs.MetricServeBatchRowsTotal,
		"Rows served through executed micro-batches.",
		stats(func(st ServerStats) float64 { return float64(st.Rows) }))
	m.reg.GaugeFunc(obs.MetricServeBatchOccupancy,
		"Mean rows per executed micro-batch (rows/batches).",
		stats(func(st ServerStats) float64 { return st.Occupancy }))
	m.reg.CounterFunc(obs.MetricServeRejectedTotal,
		"Requests rejected at admission because the queue was full.",
		stats(func(st ServerStats) float64 { return float64(st.Rejected) }))
	m.reg.CounterFunc(obs.MetricServeExpiredTotal,
		"Requests whose context ended while queued.",
		stats(func(st ServerStats) float64 { return float64(st.Expired) }))
	m.reg.CounterFunc(obs.MetricServeFailedTotal,
		"Requests failed by batch errors, including replica crashes.",
		stats(func(st ServerStats) float64 { return float64(st.Failed) }))
	m.reg.GaugeFunc(obs.MetricServeReplicas,
		"Configured replica floor.",
		stats(func(st ServerStats) float64 { return float64(st.Replicas) }))
	m.reg.GaugeFunc(obs.MetricServeReplicasLive,
		"Replicas currently serving; below the configured floor the pool is degraded.",
		stats(func(st ServerStats) float64 { return float64(st.LiveReplicas) }))
	m.reg.CounterFunc(obs.MetricServeReplicaCrashesTotal,
		"Replica panics recovered.",
		stats(func(st ServerStats) float64 { return float64(st.Crashes) }))
	m.reg.CounterFunc(obs.MetricServeReplicaRespawns,
		"Crashed replicas rebuilt from the shared weights.",
		stats(func(st ServerStats) float64 { return float64(st.Respawns) }))
	m.reg.CounterFunc(obs.MetricServeScaleUpsTotal,
		"Replicas added by the queue-driven autoscaler.",
		stats(func(st ServerStats) float64 { return float64(st.ScaleUps) }))
	m.reg.CounterFunc(obs.MetricServeScaleDownsTotal,
		"Idle replicas retired (drained) by the autoscaler.",
		stats(func(st ServerStats) float64 { return float64(st.ScaleDowns) }))
	m.reg.GaugeFunc(obs.MetricServeArenaBytes,
		"Idle bytes pooled in the replica-shared tensor arenas (0 without -arena).",
		src.arena)
	m.reg.GaugeFunc(obs.MetricServeModels,
		"Models currently loaded (1 for a standalone server).",
		func() float64 { return float64(len(src.models())) })
	m.reg.CounterFunc(obs.MetricServeModelLoadsTotal,
		"Models hot-loaded into the registry.",
		func() float64 { l, _, _, _ := src.registry(); return l })
	m.reg.CounterFunc(obs.MetricServeModelSwapsTotal,
		"Atomic version swaps (a load replacing a served model).",
		func() float64 { _, s, _, _ := src.registry(); return s })
	m.reg.CounterFunc(obs.MetricServeModelUnloadsTotal,
		"Models unloaded from the registry.",
		func() float64 { _, _, u, _ := src.registry(); return u })
	m.reg.CounterFunc(obs.MetricServeShedTotal,
		"Admissions shed because a higher-priority model was under pressure.",
		func() float64 { _, _, _, sh := src.registry(); return sh })
	m.reg.CounterVecFunc(obs.MetricServeModelRequestsTotal,
		"Requests admitted, by model.", "model",
		perModel(func(st ModelStatus) float64 { return float64(st.Stats.Requests) }))
	m.reg.GaugeVecFunc(obs.MetricServeModelQueueDepth,
		"Current admission-queue length, by model.", "model",
		perModel(func(st ModelStatus) float64 { return float64(st.Stats.QueueDepth) }))
	m.reg.GaugeVecFunc(obs.MetricServeModelReplicasLive,
		"Replicas currently serving, by model.", "model",
		perModel(func(st ModelStatus) float64 { return float64(st.Stats.LiveReplicas) }))
}

// ObserveTracer exports the tracer's lifetime counters as the canonical
// d500_trace_* series: spans recorded, spans dropped (late arrivals and
// per-trace overflow) and traces retained by sampling. Values are read
// from Tracer.Counters at scrape time. A nil tracer still registers the
// series (at zero), so dashboards keep a stable shape whether or not
// -trace is on. Call at most once per Metrics.
func (m *Metrics) ObserveTracer(t *Tracer) {
	m.reg.CounterFunc(obs.MetricTraceSpansTotal,
		"Spans recorded into trace buffers.",
		func() float64 { spans, _, _ := t.Counters(); return float64(spans) })
	m.reg.CounterFunc(obs.MetricTraceSpansDroppedTotal,
		"Spans dropped: unretained traces, late arrivals after their root ended, or per-trace buffer overflow.",
		func() float64 { _, dropped, _ := t.Counters(); return float64(dropped) })
	m.reg.CounterFunc(obs.MetricTraceTracesSampledTotal,
		"Traces retained in the flight recorder (head-sampled, tail-sampled slow, errored or forced).",
		func() float64 { _, _, sampled := t.Counters(); return float64(sampled) })
}

// Handler serves the registry in Prometheus text exposition format;
// cmd/d500serve mounts it at GET /metrics.
func (m *Metrics) Handler() http.Handler { return m.reg.Handler() }

// Middleware wraps an HTTP handler with request accounting: every request
// increments d500_serve_requests_total{code=...}, and when logw is non-nil
// each request is additionally logged as one JSON line (time, method,
// path, status, bytes, duration, remote) — the -log flag of d500serve.
func (m *Metrics) Middleware(next http.Handler, logw io.Writer) http.Handler {
	return obs.Middleware(next, m.requests, logw)
}
