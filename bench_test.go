package deep500

// Repository-level benchmark harness: one benchmark per table/figure of the
// paper's evaluation (run the full experiment drivers with
// `go run ./cmd/d500bench`), plus ablation benchmarks for the design
// choices listed in DESIGN.md §5. Benchmarks use scaled problem sizes so
// `go test -bench=. -benchmem` completes in minutes on a laptop.

import (
	"context"
	"fmt"
	"testing"

	"deep500/internal/core"
	"deep500/internal/datasets"
	"deep500/internal/dist"
	"deep500/internal/executor"
	"deep500/internal/frameworks"
	"deep500/internal/graph"
	"deep500/internal/kernels"
	"deep500/internal/metrics"
	"deep500/internal/models"
	"deep500/internal/mpi"
	"deep500/internal/ops"
	"deep500/internal/tensor"
	"deep500/internal/training"
	"deep500/internal/transform"
)

var benchOpts = core.Options{Quick: true, Seed: 99}

// --- Fig. 6: Level 0 operator performance -------------------------------

func BenchmarkFig6ConvSpotlight(b *testing.B) {
	// spotlight shape (scaled): conv through each backend vs bare kernel
	p := core.ConvProblem{N: 4, C: 3, H: 64, W: 64, M: 16, K: 3, Stride: 1, Pad: 1}
	rng := tensor.NewRNG(1)
	x := tensor.RandNormal(rng, 0, 1, p.N, p.C, p.H, p.W)

	b.Run("deepbench", func(b *testing.B) {
		s := kernels.ConvShape{N: p.N, C: p.C, H: p.H, W: p.W, M: p.M,
			KH: p.K, KW: p.K, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}
		w := tensor.RandNormal(rng, 0, 0.2, p.M, p.C, p.K, p.K)
		out := make([]float32, s.OutputSize())
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			kernels.Conv2D(kernels.ConvIm2Col, s, x.Data(), w.Data(), nil, out)
		}
	})
	for _, prof := range []frameworks.Profile{frameworks.TorchGo, frameworks.CF2Go, frameworks.TFGo} {
		prof.MemoryCapacity = 0
		b.Run(prof.Name, func(b *testing.B) {
			m := benchConvGraph(p)
			e, err := prof.NewExecutor(m)
			if err != nil {
				b.Fatal(err)
			}
			feeds := map[string]*tensor.Tensor{"x": x}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := e.Inference(context.Background(), feeds); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// benchConvGraph wraps one conv problem into a runnable model.
func benchConvGraph(p core.ConvProblem) *graph.Model {
	m := graph.NewModel("conv-bench")
	rng := tensor.NewRNG(11)
	m.AddInput("x", -1, p.C, p.H, p.W)
	m.AddInitializer("w", tensor.HeInit(rng, p.C*p.K*p.K, p.M, p.C, p.K, p.K))
	m.AddNode(graph.NewNode("Conv", "conv", []string{"x", "w"}, []string{"y"},
		graph.IntsAttr("strides", int64(p.Stride), int64(p.Stride)),
		graph.IntsAttr("pads", int64(p.Pad), int64(p.Pad)),
		graph.IntsAttr("kernel_shape", int64(p.K), int64(p.K))))
	m.AddOutput("y")
	return m
}

func BenchmarkFig6GemmSpotlight(b *testing.B) {
	// spotlight M=K=2560 N=64 scaled to 640
	m, k, n := 640, 640, 64
	rng := tensor.NewRNG(2)
	a := tensor.RandNormal(rng, 0, 1, m, k)
	bb := tensor.RandNormal(rng, 0, 1, k, n)
	c := make([]float32, m*n)
	b.Run("deepbench", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			kernels.Gemm(kernels.GemmParallel, a.Data(), bb.Data(), c, m, k, n)
		}
	})
	b.Run("blocked-kernel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			kernels.Gemm(kernels.GemmBlocked, a.Data(), bb.Data(), c, m, k, n)
		}
	})
}

// --- Execution backends: sequential vs parallel dataflow vs arena --------

// The branchy acceptance model lives in core.BranchyModel so the suite's
// "backend" experiment (cmd/d500bench -experiment backend) and these
// micro-benchmarks measure the identical workload.

// BenchmarkBackendForward compares forward-pass latency of the execution
// backends on the branchy multi-operator model (the acceptance workload for
// the dataflow scheduler: expect ≥1.5× for parallel over sequential at
// GOMAXPROCS ≥ 4).
func BenchmarkBackendForward(b *testing.B) {
	m := core.BranchyModel(8)
	rng := tensor.NewRNG(18)
	feeds := map[string]*tensor.Tensor{"x": tensor.RandNormal(rng, 0, 1, 2, 8, 24, 24)}
	for _, v := range core.BackendVariants() {
		b.Run(v.Name, func(b *testing.B) {
			e, err := executor.New(m, v.Opts()...)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := e.Inference(context.Background(), feeds); err != nil { // warmup
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := e.Inference(context.Background(), feeds); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkBackendTrainingStep compares a full training step (forward +
// backward + update) across backends on a LeNet-scale CNN.
func BenchmarkBackendTrainingStep(b *testing.B) {
	ds := training.SyntheticClassification(128, 10, []int{1, 28, 28}, 0.3, 19)
	batch := training.NewSequentialSampler(ds, 32).Next()
	for _, v := range core.BackendVariants() {
		if v.Name == "sequential+arena" {
			continue // training comparison covers the three headline variants
		}
		b.Run(v.Name, func(b *testing.B) {
			m := models.LeNet(models.Config{Classes: 10, Channels: 1, Height: 28, Width: 28,
				WithHead: true, Seed: 20})
			e := executor.MustNew(m, v.Opts()...)
			e.SetTraining(true)
			d := training.NewDriver(e, training.NewMomentum(0.05, 0.9))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := d.Train(context.Background(), batch.Feeds()); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Fig. 7: micro-batch transformation ---------------------------------

func BenchmarkFig7Microbatch(b *testing.B) {
	cfg := models.Config{Classes: 10, Channels: 3, Height: 64, Width: 64,
		Seed: 3, WidthScale: 0.0625}
	batch := 16
	rng := tensor.NewRNG(3)
	x := tensor.RandNormal(rng, 0, 1, batch, 3, 64, 64)
	feeds := map[string]*tensor.Tensor{"x": x}
	for _, variant := range []string{"original", "microbatched"} {
		b.Run(variant, func(b *testing.B) {
			m := models.AlexNet(cfg)
			transform.StripDropout(m)
			if variant == "microbatched" {
				if _, err := transform.MicrobatchModel(m, batch, 4<<20, nil); err != nil {
					b.Fatal(err)
				}
			}
			e, err := executor.New(m)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := e.Inference(context.Background(), feeds); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- §V-D: instrumentation overhead --------------------------------------

func BenchmarkOverheadTrainingStep(b *testing.B) {
	for _, instrumented := range []bool{false, true} {
		name := "native"
		if instrumented {
			name = "instrumented"
		}
		b.Run(name, func(b *testing.B) {
			m := models.MLP(models.Config{Classes: 10, Channels: 1, Height: 16, Width: 16,
				WithHead: true, Seed: 4}, 128)
			e := executor.MustNew(m)
			e.SetTraining(true)
			if instrumented {
				fo := metrics.NewFrameworkOverhead()
				e.Events = fo.Events()
			}
			d := training.NewDriver(e, training.NewMomentum(0.05, 0.9))
			ds := training.SyntheticClassification(256, 10, []int{1, 16, 16}, 0.3, 4)
			s := training.NewShuffleSampler(ds, 64, 1)
			batch := s.Next()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := d.Train(context.Background(), batch.Feeds()); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Fig. 8 / Table III: dataset loading ---------------------------------

func BenchmarkFig8RawVsSynth(b *testing.B) {
	dir := b.TempDir()
	spec := datasets.MNIST
	path := dir + "/mnist.bin"
	if err := datasets.WriteRawBinary(path, spec, 256, 1); err != nil {
		b.Fatal(err)
	}
	ds, err := datasets.OpenRawBinary(path, spec)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("real", func(b *testing.B) {
		s := training.NewSequentialSampler(ds, 128)
		for i := 0; i < b.N; i++ {
			s.Reset()
			s.Next()
		}
	})
	b.Run("synth", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			datasets.SynthBatch(spec, 128, uint64(i))
		}
	})
}

func BenchmarkTable3Decode(b *testing.B) {
	dir := b.TempDir()
	spec := datasets.Spec{Name: "im", H: 64, W: 64, C: 3, Classes: 10}
	tarPath := dir + "/im.tar"
	if err := datasets.WriteIndexedTar(tarPath, spec, 64, 2); err != nil {
		b.Fatal(err)
	}
	it, err := datasets.OpenIndexedTar(tarPath, spec)
	if err != nil {
		b.Fatal(err)
	}
	defer it.Close()
	recPaths, err := datasets.WriteRecordDataset(dir+"/im", spec, 64, 1, 2)
	if err != nil {
		b.Fatal(err)
	}
	idx := make([]int, 32)
	for i := range idx {
		idx[i] = i
	}
	b.Run("tar+basic", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := datasets.TarBatch(it, idx, datasets.BasicDecoder{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("tar+turbo", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := datasets.TarBatch(it, idx, datasets.TurboDecoder{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("record+native", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			p, err := datasets.NewRecordPipeline(recPaths, spec, 64, true, 1)
			if err != nil {
				b.Fatal(err)
			}
			if _, _, err := p.NextBatch(32); err != nil {
				b.Fatal(err)
			}
			p.Close()
		}
	})
}

// --- Fig. 9/10: optimizer step cost --------------------------------------

func BenchmarkFig9OptimizerStep(b *testing.B) {
	cases := []struct {
		name string
		mk   func() training.ThreeStep
	}{
		{"sgd-ref", func() training.ThreeStep { return training.NewGradientDescent(0.05) }},
		{"sgd-fused", func() training.ThreeStep { return training.FromUpdateRule(training.NewFusedSGD(0.05)) }},
		{"adam-ref", func() training.ThreeStep { return training.NewAdam(0.001) }},
		{"adam-fused", func() training.ThreeStep { return training.NewFusedAdam(0.001) }},
		{"accelegrad", func() training.ThreeStep { return training.NewAcceleGrad(0.02, 1, 1) }},
	}
	ds := training.SyntheticClassification(128, 10, []int{1, 16, 16}, 0.3, 5)
	s := training.NewSequentialSampler(ds, 64)
	batch := s.Next()
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			m := models.MLP(models.Config{Classes: 10, Channels: 1, Height: 16, Width: 16,
				WithHead: true, Seed: 5}, 256)
			e := executor.MustNew(m)
			e.SetTraining(true)
			d := training.NewDriver(e, c.mk())
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := d.Train(context.Background(), batch.Feeds()); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Fig. 11: divergence measurement cost --------------------------------

func BenchmarkFig11DivergenceStep(b *testing.B) {
	mk := func(v training.AdamVariant) (*executor.Executor, *training.Driver) {
		m := models.MLP(models.Config{Classes: 10, Channels: 1, Height: 8, Width: 8,
			WithHead: true, Seed: 6}, 64)
		e := executor.MustNew(m)
		e.SetTraining(true)
		return e, training.NewDriver(e, training.NewAdamVariant(0.001, v))
	}
	e1, d1 := mk(training.AdamReference)
	e2, d2 := mk(training.AdamEpsInside)
	ds := training.SyntheticClassification(128, 10, []int{1, 8, 8}, 0.3, 6)
	batch := training.NewSequentialSampler(ds, 32).Next()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := d1.Train(context.Background(), batch.Feeds()); err != nil {
			b.Fatal(err)
		}
		if _, err := d2.Train(context.Background(), batch.Feeds()); err != nil {
			b.Fatal(err)
		}
		for _, name := range e1.Network().Params() {
			p1, _ := e1.Network().FetchTensor(name)
			p2, _ := e2.Network().FetchTensor(name)
			tensor.Compare(p2, p1)
		}
	}
}

// --- Fig. 12: distributed scaling simulation -----------------------------

func BenchmarkFig12StrongRound(b *testing.B) {
	for _, scheme := range []string{"CDSGD", "REF-dsgd", "REF-asgd", "SparCML"} {
		b.Run(scheme, func(b *testing.B) {
			o := benchOpts
			for i := 0; i < b.N; i++ {
				rows, err := benchFig12Round(o, scheme)
				if err != nil {
					b.Fatal(err)
				}
				_ = rows
			}
		})
	}
}

func benchFig12Round(o core.Options, scheme string) ([]core.Fig12Row, error) {
	return core.RunFig12Schemes(o, []int{8}, 64, 1, []string{scheme})
}

// --- Ablations (DESIGN.md §5) --------------------------------------------

func BenchmarkAblationGemm(b *testing.B) {
	m, k, n := 256, 256, 256
	rng := tensor.NewRNG(7)
	a := tensor.RandNormal(rng, 0, 1, m, k)
	bb := tensor.RandNormal(rng, 0, 1, k, n)
	c := make([]float32, m*n)
	for _, algo := range []kernels.GemmAlgo{kernels.GemmNaive, kernels.GemmBlocked, kernels.GemmParallel} {
		b.Run(algo.String(), func(b *testing.B) {
			b.SetBytes(int64(kernels.GemmFLOPs(m, k, n)))
			for i := 0; i < b.N; i++ {
				kernels.Gemm(algo, a.Data(), bb.Data(), c, m, k, n)
			}
		})
	}
}

func BenchmarkAblationConv(b *testing.B) {
	s := kernels.ConvShape{N: 2, C: 16, H: 32, W: 32, M: 16, KH: 3, KW: 3,
		StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}
	rng := tensor.NewRNG(8)
	in := tensor.RandNormal(rng, 0, 1, s.InputSize())
	w := tensor.RandNormal(rng, 0, 0.2, s.WeightSize())
	out := make([]float32, s.OutputSize())
	for _, algo := range []kernels.ConvAlgo{kernels.ConvDirect, kernels.ConvIm2Col, kernels.ConvWinograd} {
		b.Run(algo.String(), func(b *testing.B) {
			b.SetBytes(s.FLOPs())
			for i := 0; i < b.N; i++ {
				kernels.Conv2D(algo, s, in.Data(), w.Data(), nil, out)
			}
		})
	}
}

func BenchmarkAblationAllreduce(b *testing.B) {
	for _, algo := range []struct {
		name string
		a    mpi.AllreduceAlgo
	}{{"ring", mpi.AllreduceRing}, {"doubling", mpi.AllreduceDoubling}} {
		for _, size := range []int{1 << 10, 1 << 16} {
			b.Run(fmt.Sprintf("%s/%d", algo.name, size), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					_, _, err := mpi.Run(8, mpi.Aries(), func(r *mpi.Rank) error {
						data := make([]float32, size)
						r.AllreduceSum(algo.a, data, mpi.SimActual)
						return nil
					})
					if err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

func BenchmarkAblationAdamFusion(b *testing.B) {
	n := 100_000
	rng := tensor.NewRNG(9)
	grad := tensor.RandNormal(rng, 0, 1, n)
	b.Run("fused", func(b *testing.B) {
		param := tensor.RandNormal(rng, 0, 1, n)
		m := make([]float32, n)
		v := make([]float32, n)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			kernels.AdamFused(param.Data(), grad.Data(), m, v, 0.001, 0.9, 0.999, 1e-8, i+1)
		}
	})
	b.Run("composed", func(b *testing.B) {
		adam := training.NewAdam(0.001)
		param := tensor.RandNormal(rng, 0, 1, n)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			adam.NewInput()
			param = adam.UpdateRule(grad, param, "p")
		}
	})
}

func BenchmarkAblationShuffleBuffer(b *testing.B) {
	dir := b.TempDir()
	spec := datasets.MNIST
	paths, err := datasets.WriteRecordDataset(dir+"/sb", spec, 128, 1, 10)
	if err != nil {
		b.Fatal(err)
	}
	for _, buf := range []int{8, 64, 128} {
		b.Run(fmt.Sprintf("buffer%d", buf), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				p, err := datasets.NewRecordPipeline(paths, spec, buf, true, uint64(i))
				if err != nil {
					b.Fatal(err)
				}
				if _, _, err := p.NextBatch(32); err != nil {
					b.Fatal(err)
				}
				p.Close()
			}
		})
	}
}

func BenchmarkSerializationD5NX(b *testing.B) {
	m := models.ResNet(18, models.Config{Classes: 10, Channels: 3, Height: 32, Width: 32,
		Seed: 10, WidthScale: 0.25})
	dir := b.TempDir()
	path := dir + "/m.d5nx"
	b.Run("save", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if err := graph.Save(m, path); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("load", func(b *testing.B) {
		if err := graph.Save(m, path); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := graph.Load(path); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkRNNCell covers the fourth DeepBench operator family (Table II
// "Ops": Conv, GEMM, RNN, Allreduce).
func BenchmarkRNNCell(b *testing.B) {
	rng := tensor.NewRNG(12)
	n, idim, hdim := 32, 128, 128
	inputs := []*tensor.Tensor{
		tensor.RandNormal(rng, 0, 1, n, idim),
		tensor.RandNormal(rng, 0, 0.5, n, hdim),
		tensor.RandNormal(rng, 0, 0.3, idim, hdim),
		tensor.RandNormal(rng, 0, 0.3, hdim, hdim),
		tensor.RandNormal(rng, 0, 0.1, hdim),
	}
	cell := ops.NewRNNTanhCell()
	b.Run("forward", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			cell.Forward(inputs)
		}
	})
	b.Run("forward+backward", func(b *testing.B) {
		outs := cell.Forward(inputs)
		grads := []*tensor.Tensor{tensor.Full(1, n, hdim)}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			outs = cell.Forward(inputs)
			cell.Backward(grads, inputs, outs)
		}
	})
}

// BenchmarkAblationQuantize measures the compression tradeoff: quantize +
// dequantize cost per gradient vector (the compute the wire savings buy).
func BenchmarkAblationQuantize(b *testing.B) {
	rng := tensor.NewRNG(13)
	g := tensor.RandNormal(rng, 0, 1, 100_000)
	for _, bits := range []uint{2, 4, 8} {
		b.Run(fmt.Sprintf("bits%d", bits), func(b *testing.B) {
			dst := make([]float32, g.Size())
			for i := 0; i < b.N; i++ {
				codes, scale := dist.Quantize(g.Data(), bits)
				dist.Dequantize(codes, scale, bits, dst)
			}
		})
	}
}

// BenchmarkPipelinePartition measures the Level 1 pipeline transform.
func BenchmarkPipelinePartition(b *testing.B) {
	cfg := models.Config{Classes: 10, Channels: 3, Height: 32, Width: 32, Seed: 14, WidthScale: 0.25}
	for i := 0; i < b.N; i++ {
		m := models.ResNet(18, cfg)
		if _, err := transform.PartitionPipeline(m, 4); err != nil {
			b.Fatal(err)
		}
	}
}
