// Command docscheck is the repository's documentation linter, run by the
// CI docs job. It fails (exit 1) on:
//
//  1. broken intra-repository markdown links — every relative link target
//     in every *.md file must exist on disk (fragments are stripped;
//     external http(s)/mailto links are ignored); and
//  2. exported identifiers in the public d500/ package missing doc
//     comments — the public API surface must stay fully documented; and
//  3. drift between the canonical metric list (internal/obs/names.go)
//     and the metric reference in docs/operations.md — every canonical
//     series must be documented there, and every d500_* series the doc
//     mentions must exist in code.
//
// Usage: go run ./tools/docscheck [repo-root]   (default ".")
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strings"

	"deep500/internal/obs"
)

func main() {
	root := "."
	if len(os.Args) > 1 {
		root = os.Args[1]
	}
	var problems []string
	problems = append(problems, checkMarkdownLinks(root)...)
	problems = append(problems, checkDocComments(filepath.Join(root, "d500"))...)
	problems = append(problems, checkMetricsDocs(filepath.Join(root, "docs", "operations.md"))...)
	if len(problems) > 0 {
		for _, p := range problems {
			fmt.Fprintln(os.Stderr, p)
		}
		fmt.Fprintf(os.Stderr, "docscheck: %d problem(s)\n", len(problems))
		os.Exit(1)
	}
	fmt.Println("docscheck: markdown links, d500 doc comments and metric reference OK")
}

// mdLink matches [text](target); images ![alt](target) share the suffix.
var mdLink = regexp.MustCompile(`\]\(([^)\s]+)\)`)

// checkMarkdownLinks verifies every relative link in every markdown file
// under root resolves to an existing file or directory.
func checkMarkdownLinks(root string) []string {
	var problems []string
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if name == ".git" || name == "node_modules" || (strings.HasPrefix(name, ".") && name != ".") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(d.Name(), ".md") {
			return nil
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		for _, m := range mdLink.FindAllStringSubmatch(string(data), -1) {
			target := m[1]
			if strings.HasPrefix(target, "http://") || strings.HasPrefix(target, "https://") ||
				strings.HasPrefix(target, "mailto:") || strings.HasPrefix(target, "#") {
				continue
			}
			target, _, _ = strings.Cut(target, "#") // drop fragment
			if target == "" {
				continue
			}
			resolved := filepath.Join(filepath.Dir(path), target)
			if _, err := os.Stat(resolved); err != nil {
				problems = append(problems, fmt.Sprintf("%s: broken link %q (%s does not exist)", path, m[1], resolved))
			}
		}
		return nil
	})
	if err != nil {
		problems = append(problems, fmt.Sprintf("docscheck: walking %s: %v", root, err))
	}
	return problems
}

// checkDocComments parses every non-test Go file in dir and reports
// exported top-level declarations (functions, methods, types, and the
// first name of var/const specs) without a doc comment. Grouped specs
// inherit the group's doc, matching godoc behaviour.
func checkDocComments(dir string) []string {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi fs.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return []string{fmt.Sprintf("docscheck: parsing %s: %v", dir, err)}
	}
	var problems []string
	report := func(pos token.Pos, kind, name string) {
		p := fset.Position(pos)
		problems = append(problems, fmt.Sprintf("%s:%d: exported %s %s has no doc comment", p.Filename, p.Line, kind, name))
	}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					if !d.Name.IsExported() || d.Doc != nil {
						continue
					}
					// Methods on unexported receivers stay internal.
					if d.Recv != nil && !exportedRecv(d.Recv) {
						continue
					}
					kind := "function"
					if d.Recv != nil {
						kind = "method"
					}
					report(d.Pos(), kind, d.Name.Name)
				case *ast.GenDecl:
					for _, spec := range d.Specs {
						switch s := spec.(type) {
						case *ast.TypeSpec:
							if s.Name.IsExported() && d.Doc == nil && s.Doc == nil && s.Comment == nil {
								report(s.Pos(), "type", s.Name.Name)
							}
						case *ast.ValueSpec:
							for _, n := range s.Names {
								if n.IsExported() && d.Doc == nil && s.Doc == nil && s.Comment == nil {
									report(s.Pos(), strings.ToLower(d.Tok.String()), n.Name)
								}
							}
						}
					}
				}
			}
		}
	}
	return problems
}

// metricToken matches a d500_* metric series name in documentation prose,
// tables and PromQL snippets.
var metricToken = regexp.MustCompile(`\bd500_[a-z0-9_]+\b`)

// checkMetricsDocs enforces two-way conformance between the canonical
// metric list (internal/obs.Names) and the metric reference document:
// every canonical series must be mentioned, and every d500_* series the
// document mentions (after stripping the derived _bucket/_sum/_count
// histogram suffixes) must be canonical. This is the docs-side half of
// the invariant; d500's TestMetricsCoversCanonicalNames is the code side.
func checkMetricsDocs(docPath string) []string {
	data, err := os.ReadFile(docPath)
	if err != nil {
		return []string{fmt.Sprintf("docscheck: reading %s: %v", docPath, err)}
	}
	doc := string(data)

	canonical := make(map[string]bool)
	for _, name := range obs.Names() {
		canonical[name] = true
	}

	var problems []string
	for _, name := range obs.Names() {
		if !strings.Contains(doc, name) {
			problems = append(problems, fmt.Sprintf("%s: canonical metric %s is not documented", docPath, name))
		}
	}
	seen := make(map[string]bool)
	for _, tok := range metricToken.FindAllString(doc, -1) {
		base := tok
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			base = strings.TrimSuffix(base, suffix)
		}
		if !canonical[base] && !seen[tok] {
			seen[tok] = true
			problems = append(problems, fmt.Sprintf("%s: documented metric %s does not exist in internal/obs/names.go", docPath, tok))
		}
	}
	return problems
}

// exportedRecv reports whether a method receiver names an exported type.
func exportedRecv(recv *ast.FieldList) bool {
	if len(recv.List) == 0 {
		return false
	}
	t := recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if ident, ok := t.(*ast.Ident); ok {
		return ident.IsExported()
	}
	return false
}
