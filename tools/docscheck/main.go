// Command docscheck is the repository's documentation linter, run by the
// CI docs job. It fails (exit 1) on:
//
//  1. broken intra-repository markdown links — every relative link target
//     in every *.md file must exist on disk (fragments are stripped;
//     external http(s)/mailto links are ignored); and
//  2. exported identifiers in the public d500/ package missing doc
//     comments — the public API surface must stay fully documented.
//
// Usage: go run ./tools/docscheck [repo-root]   (default ".")
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

func main() {
	root := "."
	if len(os.Args) > 1 {
		root = os.Args[1]
	}
	var problems []string
	problems = append(problems, checkMarkdownLinks(root)...)
	problems = append(problems, checkDocComments(filepath.Join(root, "d500"))...)
	if len(problems) > 0 {
		for _, p := range problems {
			fmt.Fprintln(os.Stderr, p)
		}
		fmt.Fprintf(os.Stderr, "docscheck: %d problem(s)\n", len(problems))
		os.Exit(1)
	}
	fmt.Println("docscheck: markdown links and d500 doc comments OK")
}

// mdLink matches [text](target); images ![alt](target) share the suffix.
var mdLink = regexp.MustCompile(`\]\(([^)\s]+)\)`)

// checkMarkdownLinks verifies every relative link in every markdown file
// under root resolves to an existing file or directory.
func checkMarkdownLinks(root string) []string {
	var problems []string
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if name == ".git" || name == "node_modules" || (strings.HasPrefix(name, ".") && name != ".") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(d.Name(), ".md") {
			return nil
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		for _, m := range mdLink.FindAllStringSubmatch(string(data), -1) {
			target := m[1]
			if strings.HasPrefix(target, "http://") || strings.HasPrefix(target, "https://") ||
				strings.HasPrefix(target, "mailto:") || strings.HasPrefix(target, "#") {
				continue
			}
			target, _, _ = strings.Cut(target, "#") // drop fragment
			if target == "" {
				continue
			}
			resolved := filepath.Join(filepath.Dir(path), target)
			if _, err := os.Stat(resolved); err != nil {
				problems = append(problems, fmt.Sprintf("%s: broken link %q (%s does not exist)", path, m[1], resolved))
			}
		}
		return nil
	})
	if err != nil {
		problems = append(problems, fmt.Sprintf("docscheck: walking %s: %v", root, err))
	}
	return problems
}

// checkDocComments parses every non-test Go file in dir and reports
// exported top-level declarations (functions, methods, types, and the
// first name of var/const specs) without a doc comment. Grouped specs
// inherit the group's doc, matching godoc behaviour.
func checkDocComments(dir string) []string {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi fs.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return []string{fmt.Sprintf("docscheck: parsing %s: %v", dir, err)}
	}
	var problems []string
	report := func(pos token.Pos, kind, name string) {
		p := fset.Position(pos)
		problems = append(problems, fmt.Sprintf("%s:%d: exported %s %s has no doc comment", p.Filename, p.Line, kind, name))
	}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					if !d.Name.IsExported() || d.Doc != nil {
						continue
					}
					// Methods on unexported receivers stay internal.
					if d.Recv != nil && !exportedRecv(d.Recv) {
						continue
					}
					kind := "function"
					if d.Recv != nil {
						kind = "method"
					}
					report(d.Pos(), kind, d.Name.Name)
				case *ast.GenDecl:
					for _, spec := range d.Specs {
						switch s := spec.(type) {
						case *ast.TypeSpec:
							if s.Name.IsExported() && d.Doc == nil && s.Doc == nil && s.Comment == nil {
								report(s.Pos(), "type", s.Name.Name)
							}
						case *ast.ValueSpec:
							for _, n := range s.Names {
								if n.IsExported() && d.Doc == nil && s.Doc == nil && s.Comment == nil {
									report(s.Pos(), strings.ToLower(d.Tok.String()), n.Name)
								}
							}
						}
					}
				}
			}
		}
	}
	return problems
}

// exportedRecv reports whether a method receiver names an exported type.
func exportedRecv(recv *ast.FieldList) bool {
	if len(recv.List) == 0 {
		return false
	}
	t := recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if ident, ok := t.(*ast.Ident); ok {
		return ident.IsExported()
	}
	return false
}
