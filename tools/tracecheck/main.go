// Command tracecheck validates a Chrome trace-event JSON dump — the body
// of GET /debug/traces/perfetto — the way CI consumes it: the document
// must be well-formed (every span event carries ids, non-negative
// timestamps and a process), and it must hold at least one complete
// serving span chain
//
//	serve.request → serve.queue
//	serve.request → serve.batch → serve.execute → exec.forward → op:*
//
// with the batch span linking the coalesced request traces. Reads the
// file named by its argument (or stdin with none), prints a one-line
// summary, and exits 1 with a diagnostic when validation fails.
//
// Usage:
//
//	curl -s localhost:8500/debug/traces/perfetto | go run ./tools/tracecheck
//	go run ./tools/tracecheck perfetto.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
)

// event is one trace-event record; pointers distinguish absent fields
// from zero values during well-formedness checks.
type event struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	Ts   *float64       `json:"ts"`
	Dur  *float64       `json:"dur"`
	Pid  *int           `json:"pid"`
	Tid  *int           `json:"tid"`
	Args map[string]any `json:"args"`
}

// str reads a string arg ("" when absent or mistyped).
func (e event) str(key string) string {
	s, _ := e.Args[key].(string)
	return s
}

func main() {
	chain := flag.String("chain", "serve", "span chain to require: serve, none")
	flag.Parse()

	in := io.Reader(os.Stdin)
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fatal(err.Error())
		}
		defer f.Close()
		in = f
	}
	var doc struct {
		TraceEvents     []event `json:"traceEvents"`
		DisplayTimeUnit string  `json:"displayTimeUnit"`
	}
	dec := json.NewDecoder(in)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&doc); err != nil {
		fatal("malformed trace-event JSON: " + err.Error())
	}

	// Well-formedness: every span ("X") event needs ids and sane timing;
	// metadata ("M") events need a pid. Index spans for the chain walk.
	spans := map[string]event{} // span id (16 hex) → event
	children := map[string][]event{}
	nSpans := 0
	for i, e := range doc.TraceEvents {
		switch e.Ph {
		case "M":
			if e.Pid == nil {
				fatal(fmt.Sprintf("event %d: metadata event without pid", i))
			}
		case "X":
			nSpans++
			id := e.str("span")
			switch {
			case e.Name == "":
				fatal(fmt.Sprintf("event %d: span without a name", i))
			case len(id) != 16 || len(e.str("trace")) != 16:
				fatal(fmt.Sprintf("event %d (%s): span/trace id not 16 hex digits", i, e.Name))
			case e.Ts == nil || e.Dur == nil || *e.Dur < 0:
				fatal(fmt.Sprintf("event %d (%s): missing ts/dur or negative dur", i, e.Name))
			case e.Pid == nil || e.Tid == nil:
				fatal(fmt.Sprintf("event %d (%s): missing pid/tid lane", i, e.Name))
			case spans[id].Name != "":
				fatal(fmt.Sprintf("event %d (%s): duplicate span id %s", i, e.Name, id))
			}
			spans[id] = e
			if p := e.str("parent"); p != "" {
				children[p] = append(children[p], e)
			}
		default:
			fatal(fmt.Sprintf("event %d: unsupported phase %q", i, e.Ph))
		}
	}
	if nSpans == 0 {
		fatal("no span events (is tracing on and a trace retained?)")
	}

	if *chain == "serve" {
		if err := findServeChain(spans, children); err != "" {
			fatal(err)
		}
	}
	fmt.Printf("tracecheck: OK — %d event(s), %d span(s)", len(doc.TraceEvents), nSpans)
	if *chain != "none" {
		fmt.Printf(", complete %s chain found", *chain)
	}
	fmt.Println()
}

// findServeChain looks for one fully-linked serving chain and returns a
// diagnostic naming the deepest stage reached when there is none.
func findServeChain(spans map[string]event, children map[string][]event) string {
	deepest := "no op:* span found"
	for id, op := range spans {
		if !strings.HasPrefix(op.Name, "op:") {
			continue
		}
		fwd, ok := spans[op.str("parent")]
		if !ok || fwd.Name != "exec.forward" {
			deepest = fmt.Sprintf("op span %s not parented on exec.forward", id)
			continue
		}
		exec, ok := spans[fwd.str("parent")]
		if !ok || exec.Name != "serve.execute" {
			deepest = "exec.forward not parented on serve.execute"
			continue
		}
		batch, ok := spans[exec.str("parent")]
		if !ok || batch.Name != "serve.batch" {
			deepest = "serve.execute not parented on serve.batch"
			continue
		}
		req, ok := spans[batch.str("parent")]
		if !ok || req.Name != "serve.request" {
			deepest = "serve.batch not parented on serve.request"
			continue
		}
		links, _ := batch.Args["links"].([]any)
		if len(links) == 0 {
			deepest = "serve.batch links no request traces"
			continue
		}
		hostLinked := false
		for _, l := range links {
			if s, _ := l.(string); s == req.str("trace") {
				hostLinked = true
			}
		}
		if !hostLinked {
			deepest = "serve.batch does not link its host request's trace"
			continue
		}
		queued := false
		for _, c := range children[req.str("span")] {
			if c.Name == "serve.queue" {
				queued = true
			}
		}
		if !queued {
			deepest = "serve.request has no serve.queue child"
			continue
		}
		return ""
	}
	return "no complete serve.request→serve.queue + serve.batch→serve.execute→exec.forward→op chain: " + deepest
}

func fatal(msg string) {
	fmt.Fprintln(os.Stderr, "tracecheck:", msg)
	os.Exit(1)
}
