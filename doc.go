// Package deep500 is the root of Deep500-Go, a from-scratch Go reproduction
// of "A Modular Benchmarking Infrastructure for High-Performance and
// Reproducible Deep Learning" (Ben-Nun et al., IPDPS 2019).
//
// The supported entry point is the d500 package: a d500.Session assembled
// from typed functional options (WithBackend, WithFramework, WithArena,
// WithOptimize, WithSeed, WithPool, WithHook) with
// Open/Infer/Train/Evaluate/Bench methods, context-aware execution
// through the whole chain, and a structured event stream
// (StepEnd/EpochEnd/EvalEnd/BenchSample/ServeSample) as the single
// observation channel. For online inference, d500.NewServer puts a model
// behind the serving subsystem (internal/serve): a dynamic micro-batching
// queue over a pool of session replicas with bounded admission, fronted
// by HTTP JSON in cmd/d500serve; d500.Load and Session.Save round-trip
// trained weights through the D5NX checkpoint format. Everything under
// internal/ is an implementation detail; cmd/ and examples/ consume only
// the public API. See README.md §"Public API" for the migration table
// from the old internal entry points, ARCHITECTURE.md for the layer map,
// the dataflow of one Session.Train call, the lifetime of one serving
// request, and the graph-compilation pipeline (internal/compile:
// constant folding, dead-node elimination, operator fusion) documented
// pass by pass, and docs/serving.md for batching semantics and
// backpressure.
//
// The root package carries only the repository-level benchmark harness
// (bench_test.go): one benchmark per paper table/figure plus ablations of
// the design choices called out in DESIGN.md §5.
//
// Machine-readable benchmark results live in internal/bench: d500bench
// emits bench.Report JSON (environment capture, raw samples, derived
// stats), and bench.Compare classifies metric deltas between two reports
// as improved/regressed/neutral — the regression gate CI applies against
// the committed BENCH_BASELINE.json. See README.md §"Benchmarking &
// regression gates" for the schema and the baseline-refresh workflow.
package deep500
