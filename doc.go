// Package deep500 is the root of Deep500-Go, a from-scratch Go reproduction
// of "A Modular Benchmarking Infrastructure for High-Performance and
// Reproducible Deep Learning" (Ben-Nun et al., IPDPS 2019). See README.md
// for the architecture overview, DESIGN.md for the system inventory and
// substitutions, and EXPERIMENTS.md for paper-vs-measured results.
//
// The root package carries only the repository-level benchmark harness
// (bench_test.go): one benchmark per paper table/figure plus ablations of
// the design choices called out in DESIGN.md §5.
//
// Machine-readable benchmark results live in internal/bench: d500bench
// emits bench.Report JSON (environment capture, raw samples, derived
// stats), and bench.Compare classifies metric deltas between two reports
// as improved/regressed/neutral — the regression gate CI applies against
// the committed BENCH_BASELINE.json. See README.md §"Benchmarking &
// regression gates" for the schema and the baseline-refresh workflow.
package deep500
