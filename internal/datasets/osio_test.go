package datasets

import "os"

func osReadFile(path string) ([]byte, error)  { return os.ReadFile(path) }
func osWriteFile(path string, b []byte) error { return os.WriteFile(path, b, 0o644) }
