package datasets

import (
	"io"
	"path/filepath"
	"sort"
	"testing"

	"deep500/internal/tensor"
)

func TestGenerateImageDeterministic(t *testing.T) {
	a := GenerateImage(CIFAR10, 3, 42)
	b := GenerateImage(CIFAR10, 3, 42)
	if len(a) != 32*32*3 {
		t.Fatalf("len %d", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("not deterministic")
		}
	}
	c := GenerateImage(CIFAR10, 4, 42)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different labels produced identical images")
	}
}

func TestJPEGRoundTrip(t *testing.T) {
	for _, spec := range []Spec{MNIST, CIFAR10} {
		img := GenerateImage(spec, 1, 7)
		jp, err := EncodeJPEG(spec, img)
		if err != nil {
			t.Fatal(err)
		}
		if len(jp) == 0 || len(jp) >= spec.PixelBytes() {
			t.Fatalf("%s: jpeg %d bytes vs raw %d (no compression?)", spec.Name, len(jp), spec.PixelBytes())
		}
		back, err := DecodeJPEG(spec, jp)
		if err != nil {
			t.Fatal(err)
		}
		// lossy: check coarse agreement
		var maxd int
		for i := range img {
			d := int(img[i]) - int(back[i])
			if d < 0 {
				d = -d
			}
			if d > maxd {
				maxd = d
			}
		}
		if maxd > 60 {
			t.Fatalf("%s: max pixel error %d after jpeg round trip", spec.Name, maxd)
		}
	}
}

func TestRawBinaryContainer(t *testing.T) {
	path := filepath.Join(t.TempDir(), "mnist.bin")
	if err := WriteRawBinary(path, MNIST, 30, 1); err != nil {
		t.Fatal(err)
	}
	ds, err := OpenRawBinary(path, MNIST)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Len() != 30 {
		t.Fatalf("len %d", ds.Len())
	}
	if !tensor.ShapeEq(ds.SampleShape(), []int{1, 28, 28}) {
		t.Fatalf("shape %v", ds.SampleShape())
	}
	buf := make([]float32, 28*28)
	if label := ds.Read(13, buf); label != 3 {
		t.Fatalf("label %d", label)
	}
	for _, v := range buf {
		if v < 0 || v >= 1.00001 {
			t.Fatalf("pixel %v out of range", v)
		}
	}
}

func TestRecordFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "x.rec")
	w, err := NewRecordWriter(path)
	if err != nil {
		t.Fatal(err)
	}
	payloads := [][]byte{[]byte("hello"), []byte(""), make([]byte, 100000)}
	for _, p := range payloads {
		if err := w.Write(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := OpenRecord(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	for i, want := range payloads {
		got, err := r.Next()
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if string(got) != string(want) {
			t.Fatalf("record %d corrupted", i)
		}
	}
	if _, err := r.Next(); err != io.EOF {
		t.Fatalf("want EOF, got %v", err)
	}
	if err := r.Reset(); err != nil {
		t.Fatal(err)
	}
	if got, err := r.Next(); err != nil || string(got) != "hello" {
		t.Fatal("reset failed")
	}
}

func TestRecordCRCDetectsCorruption(t *testing.T) {
	path := filepath.Join(t.TempDir(), "c.rec")
	w, _ := NewRecordWriter(path)
	w.Write([]byte("payload-payload"))
	w.Close()
	// flip a payload byte
	raw, err := readFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[14] ^= 0xFF
	if err := writeFile(path, raw); err != nil {
		t.Fatal(err)
	}
	r, _ := OpenRecord(path)
	defer r.Close()
	if _, err := r.Next(); err == nil {
		t.Fatal("corruption not detected")
	}
}

func TestEncodeDecodeSample(t *testing.T) {
	p := EncodeSample(77, []byte{1, 2, 3})
	label, jp, err := DecodeSample(p)
	if err != nil || label != 77 || len(jp) != 3 || jp[2] != 3 {
		t.Fatalf("label=%d jp=%v err=%v", label, jp, err)
	}
	if _, _, err := DecodeSample([]byte{1}); err == nil {
		t.Fatal("short payload accepted")
	}
}

func TestShardedRecordDataset(t *testing.T) {
	dir := t.TempDir()
	paths, err := WriteRecordDataset(filepath.Join(dir, "ds"), MNIST, 20, 4, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 4 {
		t.Fatalf("%d shards", len(paths))
	}
	total := 0
	for _, p := range paths {
		r, err := OpenRecord(p)
		if err != nil {
			t.Fatal(err)
		}
		for {
			if _, err := r.Next(); err != nil {
				break
			}
			total++
		}
		r.Close()
	}
	if total != 20 {
		t.Fatalf("total records %d", total)
	}
}

func TestIndexedTarRandomAccess(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ds.tar")
	if err := WriteIndexedTar(path, MNIST, 12, 3); err != nil {
		t.Fatal(err)
	}
	it, err := OpenIndexedTar(path, MNIST)
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	if it.Len() != 12 {
		t.Fatalf("len %d", it.Len())
	}
	// random access out of order, compare against regeneration
	for _, i := range []int{7, 0, 11, 3} {
		jp, label, err := it.ReadSample(i)
		if err != nil {
			t.Fatal(err)
		}
		if label != i%10 {
			t.Fatalf("sample %d label %d", i, label)
		}
		px, err := DecodeJPEG(MNIST, jp)
		if err != nil {
			t.Fatalf("sample %d: %v", i, err)
		}
		if len(px) != MNIST.PixelBytes() {
			t.Fatal("decode size")
		}
	}
	if _, _, err := it.ReadSample(99); err == nil {
		t.Fatal("out of range accepted")
	}
}

func TestDecodersAgree(t *testing.T) {
	path := filepath.Join(t.TempDir(), "d.tar")
	if err := WriteIndexedTar(path, CIFAR10, 8, 9); err != nil {
		t.Fatal(err)
	}
	it, err := OpenIndexedTar(path, CIFAR10)
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	idx := []int{0, 1, 2, 3, 4, 5, 6, 7}
	xb, lb, err := TarBatch(it, idx, BasicDecoder{})
	if err != nil {
		t.Fatal(err)
	}
	xt, lt, err := TarBatch(it, idx, TurboDecoder{})
	if err != nil {
		t.Fatal(err)
	}
	if !tensor.AllClose(xb, xt, 0, 0) {
		t.Fatal("decoders disagree")
	}
	for i := range lb {
		if lb[i] != lt[i] {
			t.Fatal("labels disagree")
		}
	}
}

func TestRecordPipelineSequentialCoversAll(t *testing.T) {
	dir := t.TempDir()
	paths, err := WriteRecordDataset(filepath.Join(dir, "p"), MNIST, 25, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewRecordPipeline(paths, MNIST, 8, false, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	var labels []int
	for {
		x, l, err := p.NextBatch(10)
		if err != nil {
			t.Fatal(err)
		}
		if x == nil {
			break
		}
		labels = append(labels, l...)
	}
	if len(labels) != 25 {
		t.Fatalf("streamed %d of 25", len(labels))
	}
}

func TestRecordPipelinePseudoShuffle(t *testing.T) {
	dir := t.TempDir()
	paths, err := WriteRecordDataset(filepath.Join(dir, "s"), MNIST, 40, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	read := func(shuffle bool, seed uint64) []int {
		p, err := NewRecordPipeline(paths, MNIST, 16, shuffle, seed)
		if err != nil {
			t.Fatal(err)
		}
		defer p.Close()
		var out []int
		for {
			x, l, err := p.NextBatch(8)
			if err != nil {
				t.Fatal(err)
			}
			if x == nil {
				break
			}
			out = append(out, l...)
		}
		return out
	}
	seq := read(false, 1)
	shuf := read(true, 1)
	if len(seq) != 40 || len(shuf) != 40 {
		t.Fatalf("lengths %d %d", len(seq), len(shuf))
	}
	diff := false
	for i := range seq {
		if seq[i] != shuf[i] {
			diff = true
			break
		}
	}
	if !diff {
		t.Fatal("shuffle produced sequential order")
	}
	// multiset of labels must be identical
	a := append([]int(nil), seq...)
	b := append([]int(nil), shuf...)
	sort.Ints(a)
	sort.Ints(b)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("shuffle lost samples")
		}
	}
}

func TestSynthBatch(t *testing.T) {
	x, labels := SynthBatch(CIFAR10, 16, 3)
	if !tensor.ShapeEq(x.Shape(), []int{16, 3, 32, 32}) {
		t.Fatalf("shape %v", x.Shape())
	}
	if len(labels) != 16 {
		t.Fatal("labels")
	}
	for _, l := range labels {
		if l < 0 || l >= 10 {
			t.Fatalf("label %d", l)
		}
	}
}

func readFile(path string) ([]byte, error)  { return osReadFile(path) }
func writeFile(path string, b []byte) error { return osWriteFile(path, b) }
