package datasets

import (
	"bufio"
	"fmt"
	"io"
	"os"
)

// Raw binary container: fixed-size records of [1-byte label | pixels],
// the format family of the MNIST/CIFAR distribution files. Small datasets
// in this format live fully in memory after one sequential read — which is
// why Fig. 8 finds "real" loading *faster* than synthetic generation for
// MNIST-scale data.

// WriteRawBinary generates n synthetic samples into a raw binary file.
func WriteRawBinary(path string, spec Spec, n int, seed uint64) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := bufio.NewWriterSize(f, 1<<20)
	for i := 0; i < n; i++ {
		label := i % spec.Classes
		if err := w.WriteByte(uint8(label % 256)); err != nil {
			f.Close()
			return err
		}
		img := GenerateImage(spec, label, seed+uint64(i))
		if _, err := w.Write(img); err != nil {
			f.Close()
			return err
		}
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// RawDataset is an in-memory raw binary dataset implementing
// training.Dataset (pixels normalized to [0,1)).
type RawDataset struct {
	spec   Spec
	data   []uint8
	n      int
	record int
}

// OpenRawBinary reads a raw binary file fully into memory.
func OpenRawBinary(path string, spec Spec) (*RawDataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	data, err := io.ReadAll(bufio.NewReaderSize(f, 1<<20))
	if err != nil {
		return nil, err
	}
	record := 1 + spec.PixelBytes()
	if len(data)%record != 0 {
		return nil, fmt.Errorf("datasets: raw file %s size %d not a multiple of record %d", path, len(data), record)
	}
	return &RawDataset{spec: spec, data: data, n: len(data) / record, record: record}, nil
}

// Len returns the sample count.
func (d *RawDataset) Len() int { return d.n }

// SampleShape returns [C, H, W].
func (d *RawDataset) SampleShape() []int { return []int{d.spec.C, d.spec.H, d.spec.W} }

// Read normalizes sample i into dst and returns its label.
func (d *RawDataset) Read(i int, dst []float32) int {
	rec := d.data[i*d.record : (i+1)*d.record]
	label := int(rec[0])
	// HWC bytes → CHW floats
	hw := d.spec.H * d.spec.W
	for p := 0; p < hw; p++ {
		for c := 0; c < d.spec.C; c++ {
			dst[c*hw+p] = float32(rec[1+p*d.spec.C+c]) / 255
		}
	}
	return label
}
