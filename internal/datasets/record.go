package datasets

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

// Record container: CRC-framed length-prefixed records, the TFRecord
// analogue. Each record is [uint64 length | uint32 crc(length) |
// payload | uint32 crc(payload)], where the payload is
// [uint32 label | JPEG bytes]. Record files are sequential-access; shuffle
// is provided by the pseudo-shuffling buffer in pipeline.go, exactly the
// mechanism the paper describes for TensorFlow ("a buffer of images is
// loaded into memory once and shuffled internally", §V-D).

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// RecordWriter writes framed records.
type RecordWriter struct {
	f *os.File
	w *bufio.Writer
}

// NewRecordWriter creates a record file.
func NewRecordWriter(path string) (*RecordWriter, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	return &RecordWriter{f: f, w: bufio.NewWriterSize(f, 1<<20)}, nil
}

// Write appends one payload.
func (w *RecordWriter) Write(payload []byte) error {
	var hdr [12]byte
	binary.LittleEndian.PutUint64(hdr[:8], uint64(len(payload)))
	binary.LittleEndian.PutUint32(hdr[8:], crc32.Checksum(hdr[:8], crcTable))
	if _, err := w.w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := w.w.Write(payload); err != nil {
		return err
	}
	var tail [4]byte
	binary.LittleEndian.PutUint32(tail[:], crc32.Checksum(payload, crcTable))
	_, err := w.w.Write(tail[:])
	return err
}

// Close flushes and closes the file.
func (w *RecordWriter) Close() error {
	if err := w.w.Flush(); err != nil {
		w.f.Close()
		return err
	}
	return w.f.Close()
}

// RecordReader reads framed records sequentially.
type RecordReader struct {
	f *os.File
	r *bufio.Reader
}

// OpenRecord opens a record file for sequential reading.
func OpenRecord(path string) (*RecordReader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	return &RecordReader{f: f, r: bufio.NewReaderSize(f, 1<<20)}, nil
}

// Next returns the next payload or io.EOF.
func (r *RecordReader) Next() ([]byte, error) {
	var hdr [12]byte
	if _, err := io.ReadFull(r.r, hdr[:]); err != nil {
		return nil, err
	}
	if crc32.Checksum(hdr[:8], crcTable) != binary.LittleEndian.Uint32(hdr[8:]) {
		return nil, fmt.Errorf("datasets: record length CRC mismatch")
	}
	n := binary.LittleEndian.Uint64(hdr[:8])
	if n > 1<<30 {
		return nil, fmt.Errorf("datasets: unreasonable record size %d", n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r.r, payload); err != nil {
		return nil, err
	}
	var tail [4]byte
	if _, err := io.ReadFull(r.r, tail[:]); err != nil {
		return nil, err
	}
	if crc32.Checksum(payload, crcTable) != binary.LittleEndian.Uint32(tail[:]) {
		return nil, fmt.Errorf("datasets: record payload CRC mismatch")
	}
	return payload, nil
}

// Close closes the file.
func (r *RecordReader) Close() error { return r.f.Close() }

// Reset rewinds to the file start.
func (r *RecordReader) Reset() error {
	if _, err := r.f.Seek(0, io.SeekStart); err != nil {
		return err
	}
	r.r.Reset(r.f)
	return nil
}

// EncodeSample frames a labeled JPEG into a record payload.
func EncodeSample(label int, jpegBytes []byte) []byte {
	out := make([]byte, 4+len(jpegBytes))
	binary.LittleEndian.PutUint32(out[:4], uint32(label))
	copy(out[4:], jpegBytes)
	return out
}

// DecodeSample splits a record payload into label and JPEG bytes.
func DecodeSample(payload []byte) (label int, jpegBytes []byte, err error) {
	if len(payload) < 4 {
		return 0, nil, fmt.Errorf("datasets: short sample payload")
	}
	return int(binary.LittleEndian.Uint32(payload[:4])), payload[4:], nil
}

// WriteRecordDataset generates n synthetic JPEG samples into one or more
// record files (shards). Shard k receives samples with index ≡ k (mod
// shards), matching the paper's "ImageNet sharded to 1024 files" setup.
func WriteRecordDataset(pathPrefix string, spec Spec, n, shards int, seed uint64) ([]string, error) {
	if shards < 1 {
		shards = 1
	}
	paths := make([]string, shards)
	writers := make([]*RecordWriter, shards)
	for s := 0; s < shards; s++ {
		paths[s] = fmt.Sprintf("%s-%05d-of-%05d.rec", pathPrefix, s, shards)
		w, err := NewRecordWriter(paths[s])
		if err != nil {
			return nil, err
		}
		writers[s] = w
	}
	for i := 0; i < n; i++ {
		label := i % spec.Classes
		img := GenerateImage(spec, label, seed+uint64(i))
		jp, err := EncodeJPEG(spec, img)
		if err != nil {
			return nil, err
		}
		if err := writers[i%shards].Write(EncodeSample(label, jp)); err != nil {
			return nil, err
		}
	}
	for _, w := range writers {
		if err := w.Close(); err != nil {
			return nil, err
		}
	}
	return paths, nil
}
