package datasets

import (
	"archive/tar"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// IndexedTar is the paper's IndexedTarDataset: a POSIX tar of JPEG files
// with a precomputed index of member offsets, enabling random access by
// sample number (true random shuffling — unlike the record container's
// pseudo-shuffling). Random access pays a seek per image, which Table III
// measures.

// WriteIndexedTar generates n synthetic JPEG samples into a tar archive.
// Member names encode the label: "class_<label>/img_<i>.jpg".
func WriteIndexedTar(path string, spec Spec, n int, seed uint64) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	tw := tar.NewWriter(f)
	for i := 0; i < n; i++ {
		label := i % spec.Classes
		img := GenerateImage(spec, label, seed+uint64(i))
		jp, err := EncodeJPEG(spec, img)
		if err != nil {
			f.Close()
			return err
		}
		hdr := &tar.Header{
			Name: fmt.Sprintf("class_%d/img_%d.jpg", label, i),
			Mode: 0o644,
			Size: int64(len(jp)),
		}
		if err := tw.WriteHeader(hdr); err != nil {
			f.Close()
			return err
		}
		if _, err := tw.Write(jp); err != nil {
			f.Close()
			return err
		}
	}
	if err := tw.Close(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

type tarEntry struct {
	offset int64
	size   int64
	label  int
}

// IndexedTar provides random access into a tar of JPEG samples.
type IndexedTar struct {
	f       *os.File
	entries []tarEntry
	Spec    Spec
}

// OpenIndexedTar scans the archive once to build the member index
// ("precomputed indexing" in the paper), then serves random reads.
func OpenIndexedTar(path string, spec Spec) (*IndexedTar, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	it := &IndexedTar{f: f, Spec: spec}
	tr := tar.NewReader(f)
	for {
		hdr, err := tr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			f.Close()
			return nil, err
		}
		off, err := f.Seek(0, io.SeekCurrent)
		if err != nil {
			f.Close()
			return nil, err
		}
		// Seek position is at the start of this member's data because the
		// tar reader buffers only headers; recompute defensively from the
		// reader by draining — instead record via hdr and reader position.
		label := labelFromName(hdr.Name)
		it.entries = append(it.entries, tarEntry{offset: off, size: hdr.Size, label: label})
		if _, err := io.Copy(io.Discard, tr); err != nil {
			f.Close()
			return nil, err
		}
	}
	return it, nil
}

func labelFromName(name string) int {
	// class_<label>/img_<i>.jpg
	if !strings.HasPrefix(name, "class_") {
		return 0
	}
	rest := name[len("class_"):]
	if idx := strings.IndexByte(rest, '/'); idx > 0 {
		if v, err := strconv.Atoi(rest[:idx]); err == nil {
			return v
		}
	}
	return 0
}

// Len returns the number of archived samples.
func (t *IndexedTar) Len() int { return len(t.entries) }

// ReadSample returns the JPEG bytes and label of sample i via positioned
// read (random access).
func (t *IndexedTar) ReadSample(i int) ([]byte, int, error) {
	if i < 0 || i >= len(t.entries) {
		return nil, 0, fmt.Errorf("datasets: tar index %d out of range", i)
	}
	e := t.entries[i]
	buf := make([]byte, e.size)
	if _, err := t.f.ReadAt(buf, e.offset); err != nil {
		return nil, 0, err
	}
	return buf, e.label, nil
}

// Close closes the archive.
func (t *IndexedTar) Close() error { return t.f.Close() }
