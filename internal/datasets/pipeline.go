package datasets

import (
	"errors"
	"io"

	"deep500/internal/kernels"
	"deep500/internal/tensor"
)

// Decoder turns JPEG byte slices into HWC pixel buffers.
type Decoder interface {
	Name() string
	// DecodeBatch decodes all inputs (order-preserving).
	DecodeBatch(spec Spec, jpegs [][]byte) ([][]uint8, error)
}

// BasicDecoder decodes sequentially, one image at a time — the PIL
// stand-in of Table III.
type BasicDecoder struct{}

// Name returns "basic".
func (BasicDecoder) Name() string { return "basic" }

// DecodeBatch decodes inputs one after another.
func (BasicDecoder) DecodeBatch(spec Spec, jpegs [][]byte) ([][]uint8, error) {
	out := make([][]uint8, len(jpegs))
	for i, j := range jpegs {
		px, err := DecodeJPEG(spec, j)
		if err != nil {
			return nil, err
		}
		out[i] = px
	}
	return out, nil
}

// TurboDecoder decodes with a parallel worker pool — the libjpeg-turbo
// stand-in of Table III (and the "parallel decoding" the paper attributes
// to TensorFlow's native pipeline). Decoding draws from the shared
// kernels.Pool worker budget, so a data pipeline decoding the next batch
// while the executor runs the current one cannot oversubscribe the machine.
type TurboDecoder struct {
	// Workers, when > 0, caps the fan-out with a private bounded pool
	// instead of the shared budget (the Table III ablation knob).
	Workers int
}

// Name returns "turbo".
func (TurboDecoder) Name() string { return "turbo" }

// DecodeBatch decodes inputs concurrently.
func (d TurboDecoder) DecodeBatch(spec Spec, jpegs [][]byte) ([][]uint8, error) {
	out := make([][]uint8, len(jpegs))
	errs := make([]error, len(jpegs))
	pool := kernels.Default
	if d.Workers > 0 {
		pool = kernels.NewPool(d.Workers)
	}
	pool.Parallel(len(jpegs), func(i int) {
		out[i], errs[i] = DecodeJPEG(spec, jpegs[i])
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// TarBatch loads the given sample indices from an indexed tar through the
// decoder and assembles an NCHW minibatch — the tar pipelines of Table
// III. Sequential access passes sorted indices; shuffled access passes a
// random permutation slice.
func TarBatch(t *IndexedTar, indices []int, dec Decoder) (*tensor.Tensor, []int, error) {
	jpegs := make([][]byte, len(indices))
	labels := make([]int, len(indices))
	for i, idx := range indices {
		j, label, err := t.ReadSample(idx)
		if err != nil {
			return nil, nil, err
		}
		jpegs[i] = j
		labels[i] = label
	}
	imgs, err := dec.DecodeBatch(t.Spec, jpegs)
	if err != nil {
		return nil, nil, err
	}
	return assembleBatch(t.Spec, imgs), labels, nil
}

func assembleBatch(spec Spec, imgs [][]uint8) *tensor.Tensor {
	batch := len(imgs)
	x := tensor.New(batch, spec.C, spec.H, spec.W)
	hw := spec.H * spec.W
	for n, img := range imgs {
		base := n * spec.C * hw
		for p := 0; p < hw; p++ {
			for c := 0; c < spec.C; c++ {
				x.Data()[base+c*hw+p] = float32(img[p*spec.C+c]) / 255
			}
		}
	}
	return x
}

// RecordPipeline streams record shards through a shuffle buffer and a
// parallel decoder — the "native decoder" pipeline of Table III. The
// shuffle buffer implements the paper's pseudo-shuffling: a window of
// records is held in memory and emitted in random order, trading
// stochasticity for sequential file I/O.
type RecordPipeline struct {
	Spec       Spec
	BufferSize int
	Shuffle    bool
	Decoder    Decoder
	rng        *tensor.RNG

	paths   []string
	shard   int
	reader  *RecordReader
	buf     [][]byte // raw payloads in the shuffle window
	drained bool
}

// NewRecordPipeline opens shard paths for streaming.
func NewRecordPipeline(paths []string, spec Spec, bufferSize int, shuffle bool, seed uint64) (*RecordPipeline, error) {
	p := &RecordPipeline{
		Spec: spec, BufferSize: bufferSize, Shuffle: shuffle,
		Decoder: TurboDecoder{}, rng: tensor.NewRNG(seed), paths: paths,
	}
	if bufferSize < 1 {
		p.BufferSize = 1
	}
	return p, p.openShard(0)
}

func (p *RecordPipeline) openShard(i int) error {
	if p.reader != nil {
		p.reader.Close()
		p.reader = nil
	}
	if i >= len(p.paths) {
		p.drained = true
		return nil
	}
	r, err := OpenRecord(p.paths[i])
	if err != nil {
		return err
	}
	p.shard = i
	p.reader = r
	return nil
}

// fill tops up the shuffle buffer from the shards.
func (p *RecordPipeline) fill() error {
	for len(p.buf) < p.BufferSize && !p.drained {
		payload, err := p.reader.Next()
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			if err2 := p.openShard(p.shard + 1); err2 != nil {
				return err2
			}
			continue
		}
		if err != nil {
			return err
		}
		p.buf = append(p.buf, payload)
	}
	return nil
}

// NextBatch returns the next decoded minibatch, or (nil, nil, nil) when the
// epoch is exhausted.
func (p *RecordPipeline) NextBatch(batch int) (*tensor.Tensor, []int, error) {
	if err := p.fill(); err != nil {
		return nil, nil, err
	}
	if len(p.buf) == 0 {
		return nil, nil, nil
	}
	n := batch
	if n > len(p.buf) {
		n = len(p.buf)
	}
	jpegs := make([][]byte, n)
	labels := make([]int, n)
	for i := 0; i < n; i++ {
		pick := 0
		if p.Shuffle {
			pick = p.rng.Intn(len(p.buf))
		}
		payload := p.buf[pick]
		p.buf[pick] = p.buf[len(p.buf)-1]
		p.buf = p.buf[:len(p.buf)-1]
		label, jp, err := DecodeSample(payload)
		if err != nil {
			return nil, nil, err
		}
		jpegs[i] = jp
		labels[i] = label
		if err := p.fill(); err != nil {
			return nil, nil, err
		}
	}
	imgs, err := p.Decoder.DecodeBatch(p.Spec, jpegs)
	if err != nil {
		return nil, nil, err
	}
	return assembleBatch(p.Spec, imgs), labels, nil
}

// Close releases the open shard.
func (p *RecordPipeline) Close() error {
	if p.reader != nil {
		return p.reader.Close()
	}
	return nil
}
