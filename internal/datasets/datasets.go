// Package datasets implements the dataset substrate of Deep500-Go's
// Level 2/3 evaluation (paper §V-D, Fig. 8 and Table III): deterministic
// synthetic image generation at the paper's dataset shapes, three storage
// containers (raw binary ≈ MNIST ubyte, CRC-framed record files ≈
// TFRecord, indexed POSIX tar), real JPEG encoding/decoding through the Go
// standard library with two pipelines (sequential "basic" ≈ PIL and a
// parallel worker pool ≈ libjpeg-turbo), pseudo-shuffle buffering, and
// sharded storage for distributed loading experiments.
package datasets

import (
	"bytes"
	"fmt"
	"image"
	"image/jpeg"
	"math"

	"deep500/internal/tensor"
)

// Spec describes a dataset family at the paper's shapes.
type Spec struct {
	Name    string
	H, W, C int
	Classes int
}

// The dataset specs used throughout the evaluation.
var (
	MNIST        = Spec{Name: "mnist", H: 28, W: 28, C: 1, Classes: 10}
	FashionMNIST = Spec{Name: "fashion-mnist", H: 28, W: 28, C: 1, Classes: 10}
	CIFAR10      = Spec{Name: "cifar-10", H: 32, W: 32, C: 3, Classes: 10}
	CIFAR100     = Spec{Name: "cifar-100", H: 32, W: 32, C: 3, Classes: 100}
	ImageNet     = Spec{Name: "imagenet", H: 224, W: 224, C: 3, Classes: 1000}
)

// PixelBytes returns the raw sample size in bytes.
func (s Spec) PixelBytes() int { return s.H * s.W * s.C }

// GenerateImage produces a deterministic, class-conditional synthetic image
// (HWC uint8). Patterns mix class-dependent sinusoids with per-image phase
// noise, which makes them JPEG-compressible like natural images while being
// fully reproducible.
func GenerateImage(spec Spec, label int, imageSeed uint64) []uint8 {
	rng := tensor.NewRNG(imageSeed ^ 0x9E3779B9)
	img := make([]uint8, spec.PixelBytes())
	fx := 1 + float64(label%7)
	fy := 1 + float64((label/7)%5)
	phase := rng.Float64() * 2 * math.Pi
	amp := 80 + 40*rng.Float64()
	for y := 0; y < spec.H; y++ {
		for x := 0; x < spec.W; x++ {
			base := amp * math.Sin(2*math.Pi*fx*float64(x)/float64(spec.W)+phase) *
				math.Cos(2*math.Pi*fy*float64(y)/float64(spec.H))
			for c := 0; c < spec.C; c++ {
				v := 128 + base*(1-0.2*float64(c)) + 8*rng.Norm()
				if v < 0 {
					v = 0
				}
				if v > 255 {
					v = 255
				}
				img[(y*spec.W+x)*spec.C+c] = uint8(v)
			}
		}
	}
	return img
}

// EncodeJPEG compresses an HWC uint8 image to JPEG bytes (quality 85,
// roughly ImageNet-like file sizes).
func EncodeJPEG(spec Spec, pixels []uint8) ([]byte, error) {
	var src image.Image
	if spec.C == 1 {
		g := image.NewGray(image.Rect(0, 0, spec.W, spec.H))
		copy(g.Pix, pixels)
		src = g
	} else {
		rgba := image.NewRGBA(image.Rect(0, 0, spec.W, spec.H))
		for i := 0; i < spec.H*spec.W; i++ {
			rgba.Pix[i*4] = pixels[i*3]
			rgba.Pix[i*4+1] = pixels[i*3+1]
			rgba.Pix[i*4+2] = pixels[i*3+2]
			rgba.Pix[i*4+3] = 255
		}
		src = rgba
	}
	var buf bytes.Buffer
	if err := jpeg.Encode(&buf, src, &jpeg.Options{Quality: 85}); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// DecodeJPEG decompresses JPEG bytes into HWC uint8 pixels for the spec.
func DecodeJPEG(spec Spec, data []byte) ([]uint8, error) {
	img, err := jpeg.Decode(bytes.NewReader(data))
	if err != nil {
		return nil, err
	}
	b := img.Bounds()
	if b.Dx() != spec.W || b.Dy() != spec.H {
		return nil, fmt.Errorf("datasets: decoded %dx%d, want %dx%d", b.Dx(), b.Dy(), spec.W, spec.H)
	}
	out := make([]uint8, spec.PixelBytes())
	for y := 0; y < spec.H; y++ {
		for x := 0; x < spec.W; x++ {
			r, g, bl, _ := img.At(b.Min.X+x, b.Min.Y+y).RGBA()
			if spec.C == 1 {
				out[y*spec.W+x] = uint8(r >> 8)
			} else {
				out[(y*spec.W+x)*3] = uint8(r >> 8)
				out[(y*spec.W+x)*3+1] = uint8(g >> 8)
				out[(y*spec.W+x)*3+2] = uint8(bl >> 8)
			}
		}
	}
	return out, nil
}

// PixelsToFloats normalizes uint8 pixels into [0,1) floats, appended to dst.
func PixelsToFloats(pixels []uint8, dst []float32) {
	for i, p := range pixels {
		dst[i] = float32(p) / 255
	}
}

// SynthBatch allocates and generates a synthetic minibatch directly in
// memory — the "Synth" generator baseline of Fig. 8 (no storage, no
// decode; just allocation plus pseudo-random fill).
func SynthBatch(spec Spec, batch int, seed uint64) (*tensor.Tensor, []int) {
	rng := tensor.NewRNG(seed)
	x := tensor.New(batch, spec.C, spec.H, spec.W)
	d := x.Data()
	for i := range d {
		d[i] = rng.Float32()
	}
	labels := make([]int, batch)
	for i := range labels {
		labels[i] = rng.Intn(spec.Classes)
	}
	return x, labels
}
