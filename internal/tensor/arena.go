package tensor

import (
	"fmt"
	"math/bits"
	"sync"
	"sync/atomic"
	"unsafe"
)

// Allocator abstracts tensor allocation so operator implementations can be
// pointed at a recycling arena instead of the garbage collector. The plain
// package-level New is the default allocator.
type Allocator interface {
	// Get returns a zero-filled tensor of the given shape.
	Get(shape ...int) *Tensor
}

// Arena is a size-class buffer pool for tensor storage. Steady-state
// inference and training allocate the same activation shapes every pass;
// routing those allocations through an arena and releasing them at the end
// of each pass turns per-pass garbage into a handful of reused buffers.
//
// Tensors acquired from an arena are reference counted: Get returns a
// tensor with one reference, Retain adds one, and Release drops one,
// returning the storage to the arena when the count reaches zero. Release
// on a GC-managed tensor (arena == nil) is a no-op, so callers can release
// mixed populations — e.g. an executor's activation set, which also
// contains feeds, parameters and view tensors — unconditionally.
//
// The arena is safe for concurrent use; the parallel dataflow backend
// acquires output buffers from many operator goroutines at once.
type Arena struct {
	mu   sync.Mutex
	free map[int][][]float32 // power-of-two capacity class → buffers

	gets, hits int64
}

// NewArena returns an empty arena.
func NewArena() *Arena {
	return &Arena{free: make(map[int][][]float32)}
}

// sizeClass rounds n up to the next power of two (minimum 64 elements, so
// tiny scalars don't fragment the class map).
func sizeClass(n int) int {
	if n <= 64 {
		return 64
	}
	return 1 << bits.Len(uint(n-1))
}

// Get returns a zero-filled tensor of the given shape with one reference,
// reusing a pooled buffer when one of the right class is free.
func (a *Arena) Get(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		if d < 0 {
			panic(fmt.Sprintf("tensor: negative dimension %d in shape %v", d, shape))
		}
		n *= d
	}
	if n == 0 {
		return New(shape...)
	}
	class := sizeClass(n)
	a.mu.Lock()
	a.gets++
	var buf []float32
	if list := a.free[class]; len(list) > 0 {
		buf = list[len(list)-1]
		a.free[class] = list[:len(list)-1]
		a.hits++
	}
	a.mu.Unlock()
	if buf == nil {
		buf = make([]float32, class)
	}
	data := buf[:n]
	for i := range data {
		data[i] = 0
	}
	s := make([]int, len(shape))
	copy(s, shape)
	return &Tensor{shape: s, data: data, arena: a, refs: 1}
}

// GetBuf returns a raw float32 scratch buffer with at least n elements of
// capacity, sliced to length n. Unlike Get it builds no Tensor header and
// does not zero the storage — contents are unspecified — so steady-state
// callers (kernel pack buffers, im2col columns) allocate nothing once the
// arena is warm. Pair with PutBuf.
func (a *Arena) GetBuf(n int) []float32 {
	if n <= 0 {
		return nil
	}
	class := sizeClass(n)
	a.mu.Lock()
	a.gets++
	var buf []float32
	if list := a.free[class]; len(list) > 0 {
		buf = list[len(list)-1]
		a.free[class] = list[:len(list)-1]
		a.hits++
	}
	a.mu.Unlock()
	if buf == nil {
		buf = make([]float32, class)
	}
	return buf[:n]
}

// PutBuf returns a buffer obtained from GetBuf to the arena. Passing a
// buffer whose capacity is not a size class (i.e. one that did not come
// from this package) would poison the class map, so such buffers are
// dropped for the GC instead.
func (a *Arena) PutBuf(buf []float32) {
	c := cap(buf)
	if c == 0 || c != sizeClass(c) {
		return
	}
	a.put(buf[:0:c])
}

// put returns a buffer to its size class.
func (a *Arena) put(buf []float32) {
	class := cap(buf)
	a.mu.Lock()
	a.free[class] = append(a.free[class], buf[:0])
	a.mu.Unlock()
}

// ArenaStats reports allocation traffic through an arena.
type ArenaStats struct {
	// Gets counts Get calls; Hits counts those served from pooled buffers.
	Gets, Hits int64
}

// Stats returns a snapshot of the arena's traffic counters.
func (a *Arena) Stats() ArenaStats {
	a.mu.Lock()
	defer a.mu.Unlock()
	return ArenaStats{Gets: a.gets, Hits: a.hits}
}

// FreeBytes returns the number of bytes currently pooled (free and awaiting
// reuse). Checked-out buffers are not counted; the figure is the arena's
// idle footprint, which the /metrics arena_bytes gauge reports.
func (a *Arena) FreeBytes() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	var b int64
	for class, list := range a.free {
		b += int64(class) * int64(len(list)) * 4
	}
	return b
}

// Retain adds a reference to an arena-backed tensor and returns t. It is a
// no-op for GC-managed tensors.
func (t *Tensor) Retain() *Tensor {
	if t.arena != nil {
		atomic.AddInt32(&t.refs, 1)
	}
	return t
}

// Release drops a reference; when the count reaches zero the storage goes
// back to the arena and the tensor becomes unusable (its data is detached
// so stale use fails loudly instead of silently reading recycled memory).
// Release on a GC-managed tensor is a no-op.
func (t *Tensor) Release() {
	if t.arena == nil {
		return
	}
	if atomic.AddInt32(&t.refs, -1) == 0 {
		buf := t.data[:0]
		a := t.arena
		t.data = nil
		t.arena = nil
		a.put(buf[:0:cap(buf)])
	}
}

// ArenaBacked reports whether t currently holds a live arena buffer.
func (t *Tensor) ArenaBacked() bool { return t.arena != nil }

// Overlaps reports whether t and o share any underlying storage. Executors
// use it to avoid recycling an activation buffer that a view tensor (for
// example a zero-copy split output returned to the caller) still aliases.
func (t *Tensor) Overlaps(o *Tensor) bool {
	if len(t.data) == 0 || len(o.data) == 0 {
		return false
	}
	a0 := uintptr(unsafe.Pointer(unsafe.SliceData(t.data)))
	a1 := a0 + uintptr(len(t.data))*4
	b0 := uintptr(unsafe.Pointer(unsafe.SliceData(o.data)))
	b1 := b0 + uintptr(len(o.data))*4
	return a0 < b1 && b0 < a1
}
