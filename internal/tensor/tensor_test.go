package tensor

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewShapeAndSize(t *testing.T) {
	x := New(2, 3, 4)
	if x.Size() != 24 || x.Rank() != 3 {
		t.Fatalf("got size=%d rank=%d", x.Size(), x.Rank())
	}
	if x.Bytes() != 96 {
		t.Fatalf("bytes = %d, want 96", x.Bytes())
	}
	if got := x.Strides(); !ShapeEq(got, []int{12, 4, 1}) {
		t.Fatalf("strides = %v", got)
	}
}

func TestScalar(t *testing.T) {
	s := Scalar(3.5)
	if s.Rank() != 0 || s.Size() != 1 || s.Data()[0] != 3.5 {
		t.Fatalf("bad scalar %v", s)
	}
}

func TestAtSetIndex(t *testing.T) {
	x := New(3, 4)
	x.Set(7, 1, 2)
	if x.At(1, 2) != 7 {
		t.Fatalf("At(1,2) = %v", x.At(1, 2))
	}
	if x.Index(1, 2) != 6 {
		t.Fatalf("Index(1,2) = %d", x.Index(1, 2))
	}
	if x.Data()[6] != 7 {
		t.Fatal("flat layout wrong")
	}
}

func TestIndexPanics(t *testing.T) {
	x := New(2, 2)
	for _, idx := range [][]int{{2, 0}, {0, -1}, {0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Index(%v) did not panic", idx)
				}
			}()
			x.Index(idx...)
		}()
	}
}

func TestFromPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("From with wrong length did not panic")
		}
	}()
	From([]float32{1, 2, 3}, 2, 2)
}

func TestReshape(t *testing.T) {
	x := From([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	y := x.Reshape(3, 2)
	if !ShapeEq(y.Shape(), []int{3, 2}) {
		t.Fatalf("shape %v", y.Shape())
	}
	// Reshape is a view: mutating y mutates x.
	y.Set(42, 0, 0)
	if x.At(0, 0) != 42 {
		t.Fatal("reshape is not a view")
	}
	z := x.Reshape(-1, 2)
	if !ShapeEq(z.Shape(), []int{3, 2}) {
		t.Fatalf("inferred shape %v", z.Shape())
	}
}

func TestReshapeErrors(t *testing.T) {
	x := New(2, 3)
	for _, shape := range [][]int{{4, 2}, {-1, -1}, {-1, 4}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Reshape(%v) did not panic", shape)
				}
			}()
			x.Reshape(shape...)
		}()
	}
}

func TestCloneIndependence(t *testing.T) {
	x := From([]float32{1, 2}, 2)
	y := x.Clone()
	y.Data()[0] = 99
	if x.Data()[0] != 1 {
		t.Fatal("clone shares storage")
	}
}

func TestElementwise(t *testing.T) {
	a := From([]float32{1, 2, 3}, 3)
	b := From([]float32{4, 5, 6}, 3)
	if got := Add(a, b).Data(); got[0] != 5 || got[2] != 9 {
		t.Fatalf("Add = %v", got)
	}
	if got := Sub(b, a).Data(); got[0] != 3 || got[2] != 3 {
		t.Fatalf("Sub = %v", got)
	}
	if got := Mul(a, b).Data(); got[1] != 10 {
		t.Fatalf("Mul = %v", got)
	}
	if got := Div(b, a).Data(); got[2] != 2 {
		t.Fatalf("Div = %v", got)
	}
}

func TestInPlaceOps(t *testing.T) {
	a := From([]float32{1, 2}, 2)
	a.AddInPlace(From([]float32{10, 20}, 2))
	a.Scale(2)
	a.AddScalar(1)
	a.Axpy(3, From([]float32{1, 1}, 2))
	want := []float32{(1+10)*2 + 1 + 3, (2+20)*2 + 1 + 3}
	if a.Data()[0] != want[0] || a.Data()[1] != want[1] {
		t.Fatalf("got %v want %v", a.Data(), want)
	}
}

func TestReductions(t *testing.T) {
	x := From([]float32{-3, 1, 2}, 3)
	if x.Sum() != 0 {
		t.Fatalf("Sum = %v", x.Sum())
	}
	if x.Min() != -3 || x.Max() != 2 {
		t.Fatalf("min/max = %v/%v", x.Min(), x.Max())
	}
	if x.ArgMax() != 2 {
		t.Fatalf("ArgMax = %d", x.ArgMax())
	}
	if x.Norm1() != 6 {
		t.Fatalf("Norm1 = %v", x.Norm1())
	}
	if math.Abs(x.Norm2()-math.Sqrt(14)) > 1e-12 {
		t.Fatalf("Norm2 = %v", x.Norm2())
	}
	if x.NormInf() != 3 {
		t.Fatalf("NormInf = %v", x.NormInf())
	}
}

func TestVariance(t *testing.T) {
	x := From([]float32{2, 4, 4, 4, 5, 5, 7, 9}, 8)
	if math.Abs(x.Variance()-4) > 1e-9 {
		t.Fatalf("Variance = %v, want 4", x.Variance())
	}
}

func TestTranspose2D(t *testing.T) {
	x := From([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	y := Transpose2D(x)
	if !ShapeEq(y.Shape(), []int{3, 2}) || y.At(2, 1) != 6 || y.At(0, 1) != 4 {
		t.Fatalf("transpose wrong: %v", y)
	}
}

func TestSumAxis0AndBroadcast(t *testing.T) {
	x := From([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	s := SumAxis0(x)
	if s.Data()[0] != 5 || s.Data()[2] != 9 {
		t.Fatalf("SumAxis0 = %v", s.Data())
	}
	x.BroadcastAddRow(From([]float32{10, 20, 30}, 3))
	if x.At(1, 2) != 36 {
		t.Fatalf("BroadcastAddRow: %v", x.Data())
	}
}

func TestCompareNorms(t *testing.T) {
	a := From([]float32{1, 2, 3}, 3)
	b := From([]float32{1, 2, 4}, 3)
	d := Compare(a, b)
	if d.L1 != 1 || d.LInf != 1 || d.MaxErrorIdx != 2 {
		t.Fatalf("Compare = %+v", d)
	}
	if math.Abs(d.RelLInf-0.25) > 1e-12 {
		t.Fatalf("RelLInf = %v", d.RelLInf)
	}
}

func TestAllClose(t *testing.T) {
	a := From([]float32{1, 2}, 2)
	b := From([]float32{1.0001, 2}, 2)
	if !AllClose(a, b, 1e-3, 0) {
		t.Fatal("expected close")
	}
	if AllClose(a, b, 0, 1e-6) {
		t.Fatal("expected not close")
	}
}

func TestHeatmap(t *testing.T) {
	a := New(4, 4)
	b := New(4, 4)
	b.Data()[15] = 8 // error concentrated at the end
	grid := Heatmap(a, b, 2, 2)
	if grid[0][0] != 0 || grid[1][1] == 0 {
		t.Fatalf("heatmap %v", grid)
	}
}

func TestHasNaN(t *testing.T) {
	x := From([]float32{1, float32(math.NaN())}, 2)
	if !x.HasNaN() {
		t.Fatal("NaN not detected")
	}
	y := From([]float32{1, 2}, 2)
	if y.HasNaN() {
		t.Fatal("false NaN")
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed produced different streams")
		}
	}
	c := NewRNG(43)
	if NewRNG(42).Uint64() == c.Uint64() {
		t.Fatal("different seeds produced identical first draw")
	}
}

func TestRNGNormMoments(t *testing.T) {
	rng := NewRNG(7)
	n := 50000
	var sum, sq float64
	for i := 0; i < n; i++ {
		v := rng.Norm()
		sum += v
		sq += v * v
	}
	mean := sum / float64(n)
	variance := sq/float64(n) - mean*mean
	if math.Abs(mean) > 0.02 || math.Abs(variance-1) > 0.05 {
		t.Fatalf("mean=%v var=%v", mean, variance)
	}
}

func TestPermIsPermutation(t *testing.T) {
	rng := NewRNG(1)
	p := rng.Perm(100)
	seen := make([]bool, 100)
	for _, v := range p {
		if v < 0 || v >= 100 || seen[v] {
			t.Fatalf("not a permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestInitializers(t *testing.T) {
	rng := NewRNG(3)
	x := XavierInit(rng, 100, 100, 100, 100)
	limit := math.Sqrt(6.0 / 200.0)
	if float64(x.Max()) > limit || float64(x.Min()) < -limit {
		t.Fatalf("Xavier out of range: [%v, %v] limit %v", x.Min(), x.Max(), limit)
	}
	h := HeInit(rng, 50, 2000)
	std := math.Sqrt(h.Variance())
	want := math.Sqrt(2.0 / 50.0)
	if math.Abs(std-want)/want > 0.15 {
		t.Fatalf("He std = %v, want ≈ %v", std, want)
	}
}

// --- property-based tests ---

func boundedVec(raw []float32) []float32 {
	out := make([]float32, 0, len(raw))
	for _, v := range raw {
		if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
			continue
		}
		// keep magnitudes tame so fp32 associativity slack stays small
		out = append(out, float32(math.Mod(float64(v), 1000)))
	}
	if len(out) == 0 {
		out = append(out, 1)
	}
	return out
}

func TestPropAddCommutative(t *testing.T) {
	f := func(raw []float32) bool {
		v := boundedVec(raw)
		a := From(v, len(v))
		b := RandUniform(NewRNG(uint64(len(v))), -1, 1, len(v))
		x, y := Add(a, b), Add(b, a)
		for i := range x.Data() {
			if x.Data()[i] != y.Data()[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropSubIsAddInverse(t *testing.T) {
	f := func(raw []float32) bool {
		v := boundedVec(raw)
		a := From(v, len(v))
		b := RandUniform(NewRNG(99), -1, 1, len(v))
		back := Sub(Add(a, b), b)
		return AllClose(back, a, 1e-5, 1e-4)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropTransposeInvolution(t *testing.T) {
	f := func(r8, c8 uint8) bool {
		r, c := int(r8%16)+1, int(c8%16)+1
		x := RandUniform(NewRNG(uint64(r*100+c)), -1, 1, r, c)
		y := Transpose2D(Transpose2D(x))
		return AllClose(y, x, 0, 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropNormTriangleInequality(t *testing.T) {
	f := func(seed uint16) bool {
		rng := NewRNG(uint64(seed))
		n := rng.Intn(64) + 1
		a := RandNormal(rng, 0, 1, n)
		b := RandNormal(rng, 0, 1, n)
		return Add(a, b).Norm2() <= a.Norm2()+b.Norm2()+1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropReshapePreservesData(t *testing.T) {
	f := func(seed uint16) bool {
		rng := NewRNG(uint64(seed))
		r, c := rng.Intn(8)+1, rng.Intn(8)+1
		x := RandUniform(rng, -1, 1, r, c)
		y := x.Reshape(c, r).Reshape(r*c).Reshape(r, c)
		return AllClose(x, y, 0, 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
