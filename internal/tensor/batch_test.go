package tensor

import "testing"

func TestConcatRowsAndSliceRows(t *testing.T) {
	a := From([]float32{1, 2, 3, 4}, 2, 2)
	b := From([]float32{5, 6}, 1, 2)
	c := From([]float32{7, 8, 9, 10, 11, 12}, 3, 2)

	cat, err := ConcatRows(a, b, c)
	if err != nil {
		t.Fatal(err)
	}
	if !ShapeEq(cat.Shape(), []int{6, 2}) {
		t.Fatalf("concat shape %v", cat.Shape())
	}
	want := []float32{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12}
	for i, v := range want {
		if cat.Data()[i] != v {
			t.Fatalf("concat data[%d] = %g, want %g", i, cat.Data()[i], v)
		}
	}

	// Splitting back at the original row offsets recovers each part.
	offs := []struct{ lo, hi int }{{0, 2}, {2, 3}, {3, 6}}
	for i, p := range []*Tensor{a, b, c} {
		got, err := cat.SliceRows(offs[i].lo, offs[i].hi)
		if err != nil {
			t.Fatal(err)
		}
		if !SameShape(got, p) {
			t.Fatalf("part %d shape %v vs %v", i, got.Shape(), p.Shape())
		}
		for j, v := range p.Data() {
			if got.Data()[j] != v {
				t.Fatalf("part %d data[%d] = %g, want %g", i, j, got.Data()[j], v)
			}
		}
	}

	// The slice is a copy: mutating it must not touch the batched tensor.
	s, _ := cat.SliceRows(0, 1)
	s.Data()[0] = 99
	if cat.Data()[0] != 1 {
		t.Fatal("SliceRows returned a view, want a copy")
	}
}

func TestConcatRowsErrors(t *testing.T) {
	if _, err := ConcatRows(); err == nil {
		t.Fatal("expected error for empty concat")
	}
	if _, err := ConcatRows(Scalar(1)); err == nil {
		t.Fatal("expected error for scalar concat")
	}
	if _, err := ConcatRows(New(2, 3), New(2, 4)); err == nil {
		t.Fatal("expected error for trailing-shape mismatch")
	}
	if _, err := ConcatRows(New(2, 3), New(2)); err == nil {
		t.Fatal("expected error for rank mismatch")
	}
}

func TestSliceRowsErrors(t *testing.T) {
	if _, err := Scalar(1).SliceRows(0, 1); err == nil {
		t.Fatal("expected error for scalar slice")
	}
	tt := New(3, 2)
	for _, r := range [][2]int{{-1, 1}, {2, 1}, {0, 4}} {
		if _, err := tt.SliceRows(r[0], r[1]); err == nil {
			t.Fatalf("expected error for range %v", r)
		}
	}
	if _, err := New(3).Rows(); err != nil {
		t.Fatal(err)
	}
	if _, err := Scalar(1).Rows(); err == nil {
		t.Fatal("expected error for scalar Rows")
	}
}
