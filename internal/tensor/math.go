package tensor

import (
	"fmt"
	"math"
)

// Add returns a + b elementwise (same shape required).
func Add(a, b *Tensor) *Tensor { return zipNew(a, b, func(x, y float32) float32 { return x + y }) }

// Sub returns a - b elementwise.
func Sub(a, b *Tensor) *Tensor { return zipNew(a, b, func(x, y float32) float32 { return x - y }) }

// Mul returns a * b elementwise (Hadamard product).
func Mul(a, b *Tensor) *Tensor { return zipNew(a, b, func(x, y float32) float32 { return x * y }) }

// Div returns a / b elementwise.
func Div(a, b *Tensor) *Tensor { return zipNew(a, b, func(x, y float32) float32 { return x / y }) }

func zipNew(a, b *Tensor, f func(x, y float32) float32) *Tensor {
	if !SameShape(a, b) {
		panic(fmt.Sprintf("tensor: shape mismatch %v vs %v", a.shape, b.shape))
	}
	out := New(a.shape...)
	for i := range a.data {
		out.data[i] = f(a.data[i], b.data[i])
	}
	return out
}

// AddInPlace computes t += x.
func (t *Tensor) AddInPlace(x *Tensor) *Tensor {
	if len(t.data) != len(x.data) {
		panic("tensor: AddInPlace size mismatch")
	}
	for i, v := range x.data {
		t.data[i] += v
	}
	return t
}

// SubInPlace computes t -= x.
func (t *Tensor) SubInPlace(x *Tensor) *Tensor {
	if len(t.data) != len(x.data) {
		panic("tensor: SubInPlace size mismatch")
	}
	for i, v := range x.data {
		t.data[i] -= v
	}
	return t
}

// Scale multiplies every element by s in place.
func (t *Tensor) Scale(s float32) *Tensor {
	for i := range t.data {
		t.data[i] *= s
	}
	return t
}

// AddScalar adds s to every element in place.
func (t *Tensor) AddScalar(s float32) *Tensor {
	for i := range t.data {
		t.data[i] += s
	}
	return t
}

// Axpy computes t += alpha*x (BLAS axpy) in place.
func (t *Tensor) Axpy(alpha float32, x *Tensor) *Tensor {
	if len(t.data) != len(x.data) {
		panic("tensor: Axpy size mismatch")
	}
	for i, v := range x.data {
		t.data[i] += alpha * v
	}
	return t
}

// Apply replaces every element with f(element), in place.
func (t *Tensor) Apply(f func(float32) float32) *Tensor {
	for i, v := range t.data {
		t.data[i] = f(v)
	}
	return t
}

// Map returns a new tensor with f applied to every element.
func Map(t *Tensor, f func(float32) float32) *Tensor {
	out := New(t.shape...)
	for i, v := range t.data {
		out.data[i] = f(v)
	}
	return out
}

// Sum returns the sum of all elements (accumulated in float64).
func (t *Tensor) Sum() float64 {
	var s float64
	for _, v := range t.data {
		s += float64(v)
	}
	return s
}

// Mean returns the arithmetic mean of all elements.
func (t *Tensor) Mean() float64 {
	if len(t.data) == 0 {
		return 0
	}
	return t.Sum() / float64(len(t.data))
}

// Min returns the smallest element.
func (t *Tensor) Min() float32 {
	m := float32(math.Inf(1))
	for _, v := range t.data {
		if v < m {
			m = v
		}
	}
	return m
}

// Max returns the largest element.
func (t *Tensor) Max() float32 {
	m := float32(math.Inf(-1))
	for _, v := range t.data {
		if v > m {
			m = v
		}
	}
	return m
}

// ArgMax returns the flat index of the largest element.
func (t *Tensor) ArgMax() int {
	best, bi := float32(math.Inf(-1)), 0
	for i, v := range t.data {
		if v > best {
			best, bi = v, i
		}
	}
	return bi
}

// Dot returns the inner product of a and b (float64 accumulation).
func Dot(a, b *Tensor) float64 {
	if len(a.data) != len(b.data) {
		panic("tensor: Dot size mismatch")
	}
	var s float64
	for i := range a.data {
		s += float64(a.data[i]) * float64(b.data[i])
	}
	return s
}

// Norm1 returns the ℓ1 norm of t.
func (t *Tensor) Norm1() float64 {
	var s float64
	for _, v := range t.data {
		s += math.Abs(float64(v))
	}
	return s
}

// Norm2 returns the ℓ2 (Euclidean) norm of t.
func (t *Tensor) Norm2() float64 {
	var s float64
	for _, v := range t.data {
		s += float64(v) * float64(v)
	}
	return math.Sqrt(s)
}

// NormInf returns the ℓ∞ (max-abs) norm of t.
func (t *Tensor) NormInf() float64 {
	var m float64
	for _, v := range t.data {
		if a := math.Abs(float64(v)); a > m {
			m = a
		}
	}
	return m
}

// Variance returns the population variance of the elements.
func (t *Tensor) Variance() float64 {
	if len(t.data) == 0 {
		return 0
	}
	mean := t.Mean()
	var s float64
	for _, v := range t.data {
		d := float64(v) - mean
		s += d * d
	}
	return s / float64(len(t.data))
}

// Transpose2D returns the transpose of a rank-2 tensor.
func Transpose2D(t *Tensor) *Tensor {
	if t.Rank() != 2 {
		panic("tensor: Transpose2D requires rank 2")
	}
	r, c := t.shape[0], t.shape[1]
	out := New(c, r)
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			out.data[j*r+i] = t.data[i*c+j]
		}
	}
	return out
}

// SumAxis0 reduces a rank-2 tensor [n, m] over its first axis to [m].
func SumAxis0(t *Tensor) *Tensor {
	if t.Rank() != 2 {
		panic("tensor: SumAxis0 requires rank 2")
	}
	n, m := t.shape[0], t.shape[1]
	out := New(m)
	for i := 0; i < n; i++ {
		row := t.data[i*m : (i+1)*m]
		for j, v := range row {
			out.data[j] += v
		}
	}
	return out
}

// BroadcastAddRow adds a row vector [m] to every row of a rank-2 tensor
// [n, m] in place.
func (t *Tensor) BroadcastAddRow(row *Tensor) *Tensor {
	if t.Rank() != 2 || row.Size() != t.shape[1] {
		panic("tensor: BroadcastAddRow shape mismatch")
	}
	n, m := t.shape[0], t.shape[1]
	for i := 0; i < n; i++ {
		dst := t.data[i*m : (i+1)*m]
		for j := range dst {
			dst[j] += row.data[j]
		}
	}
	return t
}
