package tensor

import "math"

// RNG is a small deterministic pseudo-random generator (SplitMix64 core with
// a xorshift finalizer). All stochastic components in Deep500-Go draw from
// seeded RNGs so that every experiment is bit-reproducible (paper pillar 5,
// "Reproducibility").
type RNG struct {
	state uint64
	// cached second normal variate for Box-Muller
	hasSpare bool
	spare    float64
}

// NewRNG returns a generator seeded with seed.
func NewRNG(seed uint64) *RNG { return &RNG{state: seed} }

// Uint64 returns the next 64 pseudo-random bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Float64 returns a uniform sample in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Float32 returns a uniform sample in [0, 1).
func (r *RNG) Float32() float32 { return float32(r.Float64()) }

// Intn returns a uniform sample in [0, n).
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("tensor: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Norm returns a standard-normal sample (Box-Muller).
func (r *RNG) Norm() float64 {
	if r.hasSpare {
		r.hasSpare = false
		return r.spare
	}
	var u, v, s float64
	for {
		u = 2*r.Float64() - 1
		v = 2*r.Float64() - 1
		s = u*u + v*v
		if s > 0 && s < 1 {
			break
		}
	}
	f := math.Sqrt(-2 * math.Log(s) / s)
	r.spare = v * f
	r.hasSpare = true
	return u * f
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Split derives an independent generator; useful for giving each worker or
// layer its own stream while keeping global determinism.
func (r *RNG) Split() *RNG { return NewRNG(r.Uint64() ^ 0xD1B54A32D192ED03) }

// RNGState is the complete serializable state of an RNG: the SplitMix64
// counter plus the cached Box-Muller spare. Restoring it reproduces the
// generator's future stream bit-for-bit, which exact-resume checkpointing
// depends on.
type RNGState struct {
	State    uint64
	HasSpare bool
	Spare    float64
}

// CaptureState returns a snapshot of the generator's state.
func (r *RNG) CaptureState() RNGState {
	return RNGState{State: r.state, HasSpare: r.hasSpare, Spare: r.spare}
}

// RestoreState rewinds the generator to a previously captured state.
func (r *RNG) RestoreState(s RNGState) {
	r.state = s.State
	r.hasSpare = s.HasSpare
	r.spare = s.Spare
}

// RandUniform fills a new tensor of the given shape with uniform samples in
// [lo, hi).
func RandUniform(rng *RNG, lo, hi float32, shape ...int) *Tensor {
	t := New(shape...)
	span := hi - lo
	for i := range t.data {
		t.data[i] = lo + span*rng.Float32()
	}
	return t
}

// RandNormal fills a new tensor with N(mean, std²) samples.
func RandNormal(rng *RNG, mean, std float32, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.data {
		t.data[i] = mean + std*float32(rng.Norm())
	}
	return t
}

// XavierInit returns a tensor initialized with Glorot-uniform samples
// (±sqrt(6/(fanIn+fanOut))), the standard initializer for dense layers.
func XavierInit(rng *RNG, fanIn, fanOut int, shape ...int) *Tensor {
	limit := float32(math.Sqrt(6.0 / float64(fanIn+fanOut)))
	return RandUniform(rng, -limit, limit, shape...)
}

// HeInit returns a tensor initialized with He-normal samples
// (std = sqrt(2/fanIn)), the standard initializer before ReLU layers.
func HeInit(rng *RNG, fanIn int, shape ...int) *Tensor {
	std := float32(math.Sqrt(2.0 / float64(fanIn)))
	return RandNormal(rng, 0, std, shape...)
}
