// Package tensor provides the dense numeric tensor type used throughout
// Deep500-Go. Tensors are row-major float32 buffers with an explicit shape.
// The package deliberately mirrors the "tensor descriptor" abstraction of the
// Deep500 paper (§IV-B): a shape, an element type (fp32 here), and a data
// layout, decoupled from any particular framework backend.
//
// Public entry points: Tensor construction (New, From, Full, Zeros-like
// via New), elementwise math (Add, Sub, Mul, Div, Map), the deterministic
// RNG with the He/Xavier initializers (NewRNG, HeInit, XavierInit,
// RandNormal), and Arena — the ref-counted, size-class recycling buffer
// pool executors use to stop steady-state passes from allocating garbage
// (Allocator is the interface operators draw outputs from).
package tensor

import (
	"fmt"
	"math"
	"strings"
)

// Tensor is a dense, row-major float32 tensor. The zero value is an empty
// scalar-less tensor; use New or From to construct usable values.
type Tensor struct {
	shape []int
	data  []float32
	// arena is non-nil for tensors acquired from an Arena; refs is their
	// reference count (see arena.go). GC-managed tensors leave both zero.
	arena *Arena
	refs  int32
}

// New returns a zero-filled tensor of the given shape. A call with no
// dimensions creates a scalar (one element, rank 0).
func New(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		if d < 0 {
			panic(fmt.Sprintf("tensor: negative dimension %d in shape %v", d, shape))
		}
		n *= d
	}
	s := make([]int, len(shape))
	copy(s, shape)
	return &Tensor{shape: s, data: make([]float32, n)}
}

// From wraps data in a tensor of the given shape. The data slice is used
// directly (not copied); its length must equal the shape volume.
func From(data []float32, shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		n *= d
	}
	if len(data) != n {
		panic(fmt.Sprintf("tensor: data length %d does not match shape %v (%d)", len(data), shape, n))
	}
	s := make([]int, len(shape))
	copy(s, shape)
	return &Tensor{shape: s, data: data}
}

// Scalar returns a rank-0 tensor holding v.
func Scalar(v float32) *Tensor {
	return &Tensor{shape: nil, data: []float32{v}}
}

// Full returns a tensor of the given shape with every element set to v.
func Full(v float32, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.data {
		t.data[i] = v
	}
	return t
}

// Shape returns the tensor's shape. The returned slice must not be mutated.
func (t *Tensor) Shape() []int { return t.shape }

// Rank returns the number of dimensions.
func (t *Tensor) Rank() int { return len(t.shape) }

// Size returns the total number of elements.
func (t *Tensor) Size() int { return len(t.data) }

// Bytes returns the storage footprint in bytes (4 bytes per element).
func (t *Tensor) Bytes() int64 { return int64(len(t.data)) * 4 }

// Dim returns the size of dimension i.
func (t *Tensor) Dim(i int) int { return t.shape[i] }

// Data returns the underlying buffer. Mutations are visible to the tensor.
func (t *Tensor) Data() []float32 { return t.data }

// Strides returns the row-major strides of the tensor.
func (t *Tensor) Strides() []int {
	s := make([]int, len(t.shape))
	acc := 1
	for i := len(t.shape) - 1; i >= 0; i-- {
		s[i] = acc
		acc *= t.shape[i]
	}
	return s
}

// Index converts multi-dimensional indices to a flat offset.
func (t *Tensor) Index(idx ...int) int {
	if len(idx) != len(t.shape) {
		panic(fmt.Sprintf("tensor: index rank %d does not match tensor rank %d", len(idx), len(t.shape)))
	}
	off := 0
	for i, x := range idx {
		if x < 0 || x >= t.shape[i] {
			panic(fmt.Sprintf("tensor: index %v out of bounds for shape %v", idx, t.shape))
		}
		off = off*t.shape[i] + x
	}
	return off
}

// At returns the element at the given indices.
func (t *Tensor) At(idx ...int) float32 { return t.data[t.Index(idx...)] }

// Set stores v at the given indices.
func (t *Tensor) Set(v float32, idx ...int) { t.data[t.Index(idx...)] = v }

// Clone returns a deep copy.
func (t *Tensor) Clone() *Tensor {
	d := make([]float32, len(t.data))
	copy(d, t.data)
	s := make([]int, len(t.shape))
	copy(s, t.shape)
	return &Tensor{shape: s, data: d}
}

// CopyFrom copies src's data into t. Shapes must have equal volume.
func (t *Tensor) CopyFrom(src *Tensor) {
	if len(t.data) != len(src.data) {
		panic(fmt.Sprintf("tensor: copy size mismatch %v vs %v", t.shape, src.shape))
	}
	copy(t.data, src.data)
}

// Reshape returns a view of t with a new shape of equal volume. One
// dimension may be -1, in which case it is inferred.
func (t *Tensor) Reshape(shape ...int) *Tensor {
	n, infer := 1, -1
	for i, d := range shape {
		if d == -1 {
			if infer >= 0 {
				panic("tensor: multiple -1 dimensions in reshape")
			}
			infer = i
			continue
		}
		n *= d
	}
	out := make([]int, len(shape))
	copy(out, shape)
	if infer >= 0 {
		if n == 0 || len(t.data)%n != 0 {
			panic(fmt.Sprintf("tensor: cannot infer dimension reshaping %v to %v", t.shape, shape))
		}
		out[infer] = len(t.data) / n
		n *= out[infer]
	}
	if n != len(t.data) {
		panic(fmt.Sprintf("tensor: cannot reshape %v (%d elems) to %v (%d elems)", t.shape, len(t.data), shape, n))
	}
	return &Tensor{shape: out, data: t.data}
}

// Zero sets all elements to 0.
func (t *Tensor) Zero() {
	for i := range t.data {
		t.data[i] = 0
	}
}

// Fill sets all elements to v.
func (t *Tensor) Fill(v float32) {
	for i := range t.data {
		t.data[i] = v
	}
}

// SameShape reports whether a and b have identical shapes.
func SameShape(a, b *Tensor) bool {
	if len(a.shape) != len(b.shape) {
		return false
	}
	for i := range a.shape {
		if a.shape[i] != b.shape[i] {
			return false
		}
	}
	return true
}

// Volume returns the number of elements implied by shape.
func Volume(shape []int) int {
	n := 1
	for _, d := range shape {
		n *= d
	}
	return n
}

// ShapeEq reports whether two shapes are identical.
func ShapeEq(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// String renders small tensors fully and large tensors as a summary.
func (t *Tensor) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Tensor%v", t.shape)
	if len(t.data) <= 16 {
		fmt.Fprintf(&b, "%v", t.data)
	} else {
		fmt.Fprintf(&b, "[%g %g %g ... %g] n=%d", t.data[0], t.data[1], t.data[2], t.data[len(t.data)-1], len(t.data))
	}
	return b.String()
}

// HasNaN reports whether any element is NaN or Inf.
func (t *Tensor) HasNaN() bool {
	for _, v := range t.data {
		if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
			return true
		}
	}
	return false
}
