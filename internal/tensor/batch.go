package tensor

import "fmt"

// Batch helpers: the serving layer's dynamic micro-batcher coalesces
// single-request tensors into one batched execution along the leading
// (batch) dimension and splits the batched outputs back per request.
// Both directions copy — a split row view into a batched activation would
// pin executor- or arena-owned storage past the pass that produced it.

// ConcatRows stacks tensors along dimension 0. Every part must have rank
// ≥ 1 and identical trailing dimensions; the result's leading dimension is
// the sum of the parts'. Violations return an error (not a panic): the
// serving layer turns them into per-request rejections instead of crashing
// a shared worker.
func ConcatRows(parts ...*Tensor) (*Tensor, error) {
	if len(parts) == 0 {
		return nil, fmt.Errorf("tensor: ConcatRows of no tensors")
	}
	first := parts[0]
	if first.Rank() < 1 {
		return nil, fmt.Errorf("tensor: ConcatRows requires rank ≥ 1, got a scalar")
	}
	rows := 0
	for _, p := range parts {
		if p.Rank() != first.Rank() || !ShapeEq(p.shape[1:], first.shape[1:]) {
			return nil, fmt.Errorf("tensor: ConcatRows shape mismatch: %v vs %v", p.shape, first.shape)
		}
		rows += p.shape[0]
	}
	shape := make([]int, first.Rank())
	copy(shape, first.shape)
	shape[0] = rows
	out := New(shape...)
	off := 0
	for _, p := range parts {
		off += copy(out.data[off:], p.data)
	}
	return out, nil
}

// SliceRows returns a copy of rows [start, end) of t along dimension 0.
// It copies so the slice outlives the batched tensor it came from (which
// may be arena-backed and recycled on the next pass).
func (t *Tensor) SliceRows(start, end int) (*Tensor, error) {
	if t.Rank() < 1 {
		return nil, fmt.Errorf("tensor: SliceRows requires rank ≥ 1, got a scalar")
	}
	if start < 0 || end < start || end > t.shape[0] {
		return nil, fmt.Errorf("tensor: SliceRows [%d, %d) out of range for %d rows", start, end, t.shape[0])
	}
	rowSize := 1
	for _, d := range t.shape[1:] {
		rowSize *= d
	}
	shape := make([]int, t.Rank())
	copy(shape, t.shape)
	shape[0] = end - start
	out := New(shape...)
	copy(out.data, t.data[start*rowSize:end*rowSize])
	return out, nil
}

// Rows returns the leading dimension of t, or an error for scalars — the
// batcher's unit of admission accounting.
func (t *Tensor) Rows() (int, error) {
	if t.Rank() < 1 {
		return 0, fmt.Errorf("tensor: a scalar has no batch dimension")
	}
	return t.shape[0], nil
}
