package tensor

import "math"

// DiffNorms holds the ℓ1, ℓ2 and ℓ∞ norms of the elementwise difference of
// two tensors, plus the location and value of the maximum error. This is the
// accuracy-metric family the paper attaches to Levels 0 and 1 (§IV-C/D).
type DiffNorms struct {
	L1, L2, LInf float64
	MaxErrorIdx  int
	RelLInf      float64 // ℓ∞ of the difference scaled by max |reference|
}

// Compare computes the difference norms between got and want. want is
// treated as the reference for the relative norm.
func Compare(got, want *Tensor) DiffNorms {
	if len(got.data) != len(want.data) {
		panic("tensor: Compare size mismatch")
	}
	var d DiffNorms
	var refMax float64
	for i := range got.data {
		diff := math.Abs(float64(got.data[i]) - float64(want.data[i]))
		d.L1 += diff
		d.L2 += diff * diff
		if diff > d.LInf {
			d.LInf = diff
			d.MaxErrorIdx = i
		}
		if a := math.Abs(float64(want.data[i])); a > refMax {
			refMax = a
		}
	}
	d.L2 = math.Sqrt(d.L2)
	if refMax > 0 {
		d.RelLInf = d.LInf / refMax
	} else {
		d.RelLInf = d.LInf
	}
	return d
}

// AllClose reports whether every element of got is within atol + rtol*|want|
// of the corresponding want element.
func AllClose(got, want *Tensor, rtol, atol float64) bool {
	if len(got.data) != len(want.data) {
		return false
	}
	for i := range got.data {
		g, w := float64(got.data[i]), float64(want.data[i])
		if math.Abs(g-w) > atol+rtol*math.Abs(w) {
			return false
		}
	}
	return true
}

// Heatmap reduces the elementwise absolute difference of two rank-≥2 tensors
// to a 2D grid of rows×cols cells, each holding the mean absolute error of
// the elements mapped into it. It is the "heatmap" validation output of the
// paper (§III-E): a coarse view that highlights *where* two computations
// disagree.
func Heatmap(got, want *Tensor, rows, cols int) [][]float64 {
	if len(got.data) != len(want.data) {
		panic("tensor: Heatmap size mismatch")
	}
	grid := make([][]float64, rows)
	counts := make([][]int, rows)
	for i := range grid {
		grid[i] = make([]float64, cols)
		counts[i] = make([]int, cols)
	}
	n := len(got.data)
	if n == 0 {
		return grid
	}
	cells := rows * cols
	for i := range got.data {
		cell := i * cells / n
		if cell >= cells {
			cell = cells - 1
		}
		r, c := cell/cols, cell%cols
		grid[r][c] += math.Abs(float64(got.data[i]) - float64(want.data[i]))
		counts[r][c]++
	}
	for r := range grid {
		for c := range grid[r] {
			if counts[r][c] > 0 {
				grid[r][c] /= float64(counts[r][c])
			}
		}
	}
	return grid
}
