package tensor

import (
	"fmt"
	"testing"
)

// Property tests for the batching round trip. The serving micro-batcher
// depends on exactly these identities — ConcatRows then SliceRows at the
// recorded row offsets must recover every request bit-for-bit, for any
// ragged mix of row counts the admission queue happens to coalesce — so
// they are checked over randomized shapes rather than a few hand-picked
// cases. Every trial is seeded and the failing trial's shape is printed,
// so a red run reproduces deterministically.

// raggedParts draws a random batch: a shared trailing shape of random
// rank 1..3 with dimensions from a spread that covers 1, powers of two,
// and off-by-one neighbors, split into 1..6 parts with ragged leading
// row counts (including single-row parts, the serving common case).
func raggedParts(rng *RNG) []*Tensor {
	dims := []int{1, 2, 3, 5, 8, 17, 31}
	rank := 1 + rng.Intn(3)
	trailing := make([]int, rank-1)
	for i := range trailing {
		trailing[i] = dims[rng.Intn(len(dims))]
	}
	parts := make([]*Tensor, 1+rng.Intn(6))
	for i := range parts {
		shape := append([]int{1 + rng.Intn(7)}, trailing...)
		parts[i] = RandNormal(rng, 0, 1, shape...)
	}
	return parts
}

// TestConcatSliceRoundTripProperty: for random ragged parts,
// SliceRows(ConcatRows(parts), offsets) == parts, element for element,
// and the total row count satisfies Rows(cat) == Σ Rows(part).
func TestConcatSliceRoundTripProperty(t *testing.T) {
	for trial := 0; trial < 200; trial++ {
		rng := NewRNG(uint64(9000 + trial))
		parts := raggedParts(rng)
		label := func() string {
			shapes := make([]string, len(parts))
			for i, p := range parts {
				shapes[i] = fmt.Sprint(p.Shape())
			}
			return fmt.Sprintf("trial %d, parts %v", trial, shapes)
		}

		cat, err := ConcatRows(parts...)
		if err != nil {
			t.Fatalf("%s: %v", label(), err)
		}
		totalRows := 0
		for _, p := range parts {
			r, err := p.Rows()
			if err != nil {
				t.Fatalf("%s: %v", label(), err)
			}
			totalRows += r
		}
		if got, _ := cat.Rows(); got != totalRows {
			t.Fatalf("%s: concat has %d rows, parts sum to %d", label(), got, totalRows)
		}
		if cat.Rank() != parts[0].Rank() {
			t.Fatalf("%s: concat rank %d vs part rank %d", label(), cat.Rank(), parts[0].Rank())
		}

		off := 0
		for i, p := range parts {
			rows := p.Shape()[0]
			got, err := cat.SliceRows(off, off+rows)
			if err != nil {
				t.Fatalf("%s: slicing part %d: %v", label(), i, err)
			}
			if !SameShape(got, p) {
				t.Fatalf("%s: part %d shape %v, want %v", label(), i, got.Shape(), p.Shape())
			}
			for j, v := range p.Data() {
				if got.Data()[j] != v {
					t.Fatalf("%s: part %d elem %d = %g, want %g", label(), i, j, got.Data()[j], v)
				}
			}
			off += rows
		}
	}
}

// TestSliceConcatInverseProperty is the opposite direction: cutting a
// random tensor at random ragged offsets and concatenating the pieces
// reproduces the original exactly — including empty [k, k) cuts, which
// contribute zero rows and must not disturb the reassembly.
func TestSliceConcatInverseProperty(t *testing.T) {
	for trial := 0; trial < 200; trial++ {
		rng := NewRNG(uint64(31000 + trial))
		rank := 1 + rng.Intn(3)
		shape := make([]int, rank)
		shape[0] = 1 + rng.Intn(12)
		for i := 1; i < rank; i++ {
			shape[i] = 1 + rng.Intn(9)
		}
		orig := RandNormal(rng, 0, 1, shape...)

		// Random cut points (sorted, possibly repeated → empty slices).
		cuts := []int{0}
		for k := 0; k < rng.Intn(4); k++ {
			cuts = append(cuts, rng.Intn(shape[0]+1))
		}
		cuts = append(cuts, shape[0])
		for i := 1; i < len(cuts); i++ {
			for j := i; j > 0 && cuts[j] < cuts[j-1]; j-- {
				cuts[j], cuts[j-1] = cuts[j-1], cuts[j]
			}
		}

		pieces := make([]*Tensor, 0, len(cuts)-1)
		for i := 1; i < len(cuts); i++ {
			s, err := orig.SliceRows(cuts[i-1], cuts[i])
			if err != nil {
				t.Fatalf("trial %d shape %v cuts %v: %v", trial, shape, cuts, err)
			}
			if got := s.Shape()[0]; got != cuts[i]-cuts[i-1] {
				t.Fatalf("trial %d shape %v: cut [%d,%d) has %d rows", trial, shape, cuts[i-1], cuts[i], got)
			}
			pieces = append(pieces, s)
		}

		back, err := ConcatRows(pieces...)
		if err != nil {
			t.Fatalf("trial %d shape %v cuts %v: %v", trial, shape, cuts, err)
		}
		if !SameShape(back, orig) {
			t.Fatalf("trial %d: reassembled shape %v, want %v (cuts %v)", trial, back.Shape(), shape, cuts)
		}
		for j, v := range orig.Data() {
			if back.Data()[j] != v {
				t.Fatalf("trial %d shape %v cuts %v: elem %d = %g, want %g",
					trial, shape, cuts, j, back.Data()[j], v)
			}
		}

		// The pieces are copies: mutating every piece must leave the
		// original untouched (the batcher hands slices to callers while
		// the arena may recycle the batch).
		for _, p := range pieces {
			for j := range p.Data() {
				p.Data()[j] = -1e30
			}
		}
		for j := range orig.Data() {
			if orig.Data()[j] == -1e30 {
				t.Fatalf("trial %d: mutating a slice reached the original at elem %d", trial, j)
			}
		}
	}
}
