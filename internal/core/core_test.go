package core

import (
	"bytes"
	"context"
	"math"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"deep500/internal/datasets"
	"deep500/internal/kernels"
)

var quick = Options{Quick: true, Seed: 7}

func TestTableRendering(t *testing.T) {
	tbl := &Table{Title: "x", Headers: []string{"a", "b"}}
	tbl.AddRow("1", "2")
	tbl.AddNote("n")
	var buf bytes.Buffer
	tbl.Render(&buf)
	out := buf.String()
	for _, want := range []string{"== x ==", "a", "1", "note: n"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in %q", want, out)
		}
	}
}

func TestCapabilityTables(t *testing.T) {
	t1 := RenderTableI()
	if len(t1.Rows) != len(TableI) {
		t.Fatal("table I rows")
	}
	// Deep500 row must be full across all columns
	last := TableI[len(TableI)-1]
	if !strings.Contains(last.Name, "Deep500") {
		t.Fatal("Deep500 row missing")
	}
	for _, c := range TableIColumns {
		if last.Caps[c] != Full {
			t.Fatalf("Deep500 missing capability %s", c)
		}
	}
	t2 := RenderTableII()
	if len(t2.Rows) != len(TableII) {
		t.Fatal("table II rows")
	}
	f2 := RenderFig2()
	if len(f2.Rows) != len(Fig2Survey) {
		t.Fatal("fig 2 rows")
	}
	// survey medians must be nondecreasing over time
	for i := 1; i < len(Fig2Survey); i++ {
		if Fig2Survey[i].Med < Fig2Survey[i-1].Med {
			t.Fatal("node counts should grow over time")
		}
	}
}

func TestFig6ConvShapes(t *testing.T) {
	// Wall-clock ordering assertions flake when the suite shares a loaded
	// machine; retry the whole measurement before declaring a regression.
	const attempts = 3
	var res Fig6Result
	for attempt := 1; ; attempt++ {
		var err error
		res, err = RunFig6Conv(context.Background(), quick)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.All) == 0 {
			t.Fatal("no rows")
		}
		medians := map[string]float64{}
		for _, r := range res.All {
			medians[r.Backend+"/"+r.Mode] = r.Summary.Median
		}
		// DeepBench must beat tfgo; Deep500 wrapping must stay within 50% of
		// native even at quick scale (paper: within CIs).
		ok := medians["deepbench/native"] < medians["tfgo/native"]
		for _, backend := range []string{"tfgo", "torchgo", "cf2go"} {
			n, d := medians[backend+"/native"], medians[backend+"/deep500"]
			if d > n*1.5 {
				ok = false
			}
		}
		if ok {
			break
		}
		if attempt == attempts {
			t.Fatalf("Fig6 ordering violated after %d attempts: %v", attempts, medians)
		}
	}
	tbl := RenderFig6(res)
	if len(tbl.Rows) != len(res.All) {
		t.Fatal("render mismatch")
	}
}

func TestFig6GemmRuns(t *testing.T) {
	res, err := RunFig6Gemm(context.Background(), quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.All) != 7 { // 3 backends × 2 modes + deepbench native
		t.Fatalf("rows = %d", len(res.All))
	}
	for _, r := range res.All {
		if r.Summary.Median <= 0 {
			t.Fatalf("%s/%s: non-positive median", r.Backend, r.Mode)
		}
	}
}

func TestFig6Accuracy(t *testing.T) {
	rows := RunFig6Accuracy(quick)
	if len(rows) != 2 {
		t.Fatal("rows")
	}
	anyNonzero := false
	for _, r := range rows {
		if r.MedianLInf < 0 || r.MedianLInf > 1e-2 {
			t.Fatalf("%s: linf %g outside plausible fp32 band", r.Backend, r.MedianLInf)
		}
		if r.MedianLInf > 0 {
			anyNonzero = true
		}
	}
	// at least the Winograd path must differ from direct convolution
	if !anyNonzero {
		t.Fatal("all algorithms bitwise identical to reference — measurement vacuous")
	}
}

func TestFig7Shapes(t *testing.T) {
	res, err := RunFig7(context.Background(), quick)
	if err != nil {
		t.Fatal(err)
	}
	cells := map[string]Fig7Cell{}
	for _, c := range res.Cells {
		cells[c.Backend+"/"+c.Variant] = c
	}
	if !cells["torchgo/original"].OOM {
		t.Fatal("torchgo original should OOM")
	}
	if cells["torchgo/microbatched"].OOM {
		t.Fatal("torchgo microbatched should fit")
	}
	if cells["tfgo/original"].OOM || cells["tfgo/microbatched"].OOM {
		t.Fatal("tfgo should fit both variants")
	}
	if cells["tfgo/microbatched"].TimeSeconds <= cells["tfgo/original"].TimeSeconds {
		t.Logf("note: tfgo microbatched (%v) not slower than original (%v) at quick scale",
			cells["tfgo/microbatched"].TimeSeconds, cells["tfgo/original"].TimeSeconds)
	}
	if res.Transformed == 0 {
		t.Fatal("no conv nodes transformed")
	}
	RenderFig7(res)
}

func TestOverheadSmall(t *testing.T) {
	res, err := RunOverhead(context.Background(), quick)
	if err != nil {
		t.Fatal(err)
	}
	if res.NativeEpoch.Median <= 0 {
		t.Fatal("no timing")
	}
	// The paper reports <1%; allow slack for quick-mode noise but the
	// instrumentation must not be catastrophic.
	if res.OverheadFraction > 0.15 {
		t.Fatalf("instrumentation overhead %v too large", res.OverheadFraction)
	}
	RenderOverhead(res)
}

func TestFig8Shapes(t *testing.T) {
	dir := t.TempDir()
	res, err := RunFig8(quick, dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Small) != 8 {
		t.Fatalf("small rows %d", len(res.Small))
	}
	byName := map[string]float64{}
	for _, r := range append(res.Small, res.Large...) {
		byName[r.Dataset+"/"+r.Generator] = r.Summary.Median
	}
	// ImageNet real loading (JPEG decode) must be much slower than synth.
	synth := byName["imagenet/synth"]
	oneNode := 0.0
	for _, r := range res.Large {
		if strings.Contains(r.Generator, "files+1nodes") {
			oneNode = r.Summary.Median
			break
		}
	}
	if oneNode <= synth {
		t.Fatalf("imagenet real %v not slower than synth %v", oneNode, synth)
	}
	RenderFig8(res)
}

func TestTable3Shapes(t *testing.T) {
	dir := t.TempDir()
	rows, err := RunTable3(quick, dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 12 {
		t.Fatalf("rows %d", len(rows))
	}
	cell := func(kind, pipe string) float64 {
		for _, r := range rows {
			if strings.Contains(r.DataKind, kind) && r.Pipeline == pipe {
				return r.Seconds
			}
		}
		t.Fatalf("missing cell %s/%s", kind, pipe)
		return 0
	}
	// Every cell must carry a real (positive) measurement.
	cell("images (sequential)", "tar+basic(PIL)")
	cell("images (sequential)", "tar+turbo")
	RenderTable3(rows)
}

// TestTable3TurboBeatsBasic asserts the Table III headline — the parallel
// ("turbo") decoder outperforms the sequential ("PIL") decoder on full
// batches. A single wall-clock comparison of two medians proved flaky on
// loaded CI machines, so this compares best-of-N timings and retries the
// whole comparison a few times before declaring a regression; on
// single-CPU machines the decoders are equivalent by construction and the
// comparison is skipped.
func TestTable3TurboBeatsBasic(t *testing.T) {
	// Turbo's fan-out is bounded by the shared pool's budget (fixed at
	// package init), not the current GOMAXPROCS — consult the pool.
	if kernels.Default.Workers() < 2 {
		t.Skip("turbo decoder degenerates to basic with a single worker")
	}
	dir := t.TempDir()
	spec := datasets.Spec{Name: "t3flake", H: 64, W: 64, C: 3, Classes: 10}
	const n = 96
	tarPath := filepath.Join(dir, "t3.tar")
	if err := datasets.WriteIndexedTar(tarPath, spec, n, 7); err != nil {
		t.Fatal(err)
	}
	it, err := datasets.OpenIndexedTar(tarPath, spec)
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	bestOf := func(reps int, dec datasets.Decoder) float64 {
		best := math.Inf(1)
		for r := 0; r < reps; r++ {
			start := time.Now()
			if _, _, err := datasets.TarBatch(it, idx, dec); err != nil {
				t.Fatal(err)
			}
			if d := time.Since(start).Seconds(); d < best {
				best = d
			}
		}
		return best
	}
	bestOf(1, datasets.TurboDecoder{}) // warmup (worker pool, page cache)
	const attempts = 5
	for attempt := 1; ; attempt++ {
		basic := bestOf(3, datasets.BasicDecoder{})
		turbo := bestOf(3, datasets.TurboDecoder{})
		if turbo < basic {
			return
		}
		if attempt == attempts {
			t.Fatalf("turbo %v not faster than basic %v after %d best-of-3 attempts",
				turbo, basic, attempts)
		}
	}
}

func TestFig9Convergence(t *testing.T) {
	curves, err := RunFig9(context.Background(), quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(curves) != 9 {
		t.Fatalf("curves %d", len(curves))
	}
	for _, c := range curves {
		if len(c.TestAcc) == 0 || len(c.LossCurve) == 0 {
			t.Fatalf("%s: empty curves", c.Name)
		}
	}
	RenderConvergence("fig9", curves)
}

func TestFig10Convergence(t *testing.T) {
	curves, err := RunFig10(context.Background(), quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(curves) != 4 {
		t.Fatalf("curves %d", len(curves))
	}
}

func TestFig11DivergenceGrows(t *testing.T) {
	points, err := RunFig11(context.Background(), quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) < 5 {
		t.Fatalf("points %d", len(points))
	}
	first, last := points[0], points[len(points)-1]
	if last.TotalL2 <= first.TotalL2 {
		t.Fatalf("divergence did not grow: %g -> %g", first.TotalL2, last.TotalL2)
	}
	RenderFig11(points)
}

func TestFig12StrongShapes(t *testing.T) {
	rows, err := RunFig12Strong(quick)
	if err != nil {
		t.Fatal(err)
	}
	tput := map[string]map[int]float64{}
	vol := map[string]map[int]float64{}
	for _, r := range rows {
		if tput[r.Scheme] == nil {
			tput[r.Scheme] = map[int]float64{}
			vol[r.Scheme] = map[int]float64{}
		}
		tput[r.Scheme][r.Nodes] = r.Throughput
		vol[r.Scheme][r.Nodes] = r.PerNodeGB
	}
	maxNodes := 8
	// CDSGD must beat the Python-profile reference DSGD at scale.
	if tput["CDSGD"][maxNodes] <= tput["REF-dsgd"][maxNodes] {
		t.Fatalf("CDSGD %v not faster than REF-dsgd %v",
			tput["CDSGD"][maxNodes], tput["REF-dsgd"][maxNodes])
	}
	// DSGD and CDSGD exhibit the same per-node communication volume.
	if d := vol["CDSGD"][maxNodes] - vol["REF-dsgd"][maxNodes]; d > 0.01 || d < -0.01 {
		t.Fatalf("CDSGD volume %v != REF-dsgd volume %v", vol["CDSGD"][maxNodes], vol["REF-dsgd"][maxNodes])
	}
	// SparCML ships fewer bytes than dense DSGD at small scale.
	if vol["SparCML"][4] >= vol["CDSGD"][4] {
		t.Fatalf("SparCML volume %v not below CDSGD %v", vol["SparCML"][4], vol["CDSGD"][4])
	}
	RenderFig12("strong", rows)
}

func TestFig12WeakShapes(t *testing.T) {
	rows, err := RunFig12Weak(quick)
	if err != nil {
		t.Fatal(err)
	}
	tput := map[string]map[int]float64{}
	for _, r := range rows {
		if tput[r.Scheme] == nil {
			tput[r.Scheme] = map[int]float64{}
		}
		tput[r.Scheme][r.Nodes] = r.Throughput
	}
	// weak scaling: CDSGD throughput must grow with node count
	if tput["CDSGD"][16] <= tput["CDSGD"][1] {
		t.Fatalf("CDSGD weak scaling flat: %v", tput["CDSGD"])
	}
	// decentralized allreduce must out-scale the parameter server
	if tput["CDSGD"][16] <= tput["TF-PS"][16] {
		t.Fatalf("CDSGD %v not above TF-PS %v at 16 nodes", tput["CDSGD"][16], tput["TF-PS"][16])
	}
}

func TestFig12FailureEmulation(t *testing.T) {
	o := Options{Quick: false, Seed: 3}
	// run only the failing points: craft a direct call
	rows, err := runFig12(o, []int{256}, func(int) int { return 1 }, 1, []string{"TF-PS", "Horovod"})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Failed == "" {
			t.Fatalf("%s at 256 should report the paper-observed failure", r.Scheme)
		}
	}
}

func TestValidationSuiteAllPass(t *testing.T) {
	results, err := RunValidationSuite(quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) < 9 {
		t.Fatalf("only %d validation checks ran", len(results))
	}
	for _, r := range results {
		if !r.Passed {
			t.Errorf("%v", r)
		}
	}
}
