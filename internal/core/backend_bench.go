package core

import (
	"context"
	"fmt"
	"runtime"
	"testing"

	"deep500/internal/executor"
	"deep500/internal/graph"
	"deep500/internal/metrics"
	"deep500/internal/models"
	"deep500/internal/tensor"
	"deep500/internal/training"
)

// BranchyModel builds an inception-style multi-tower graph: `branches`
// independent conv→relu→conv chains off the same input, merged by Sum. The
// convolutions use the direct algorithm so each operator is
// single-threaded — the model's parallelism lives between operators, which
// is exactly what the dataflow scheduler exploits and the sequential
// interpreter cannot. It is the acceptance workload of the execution
// backends, shared by the repository benchmark harness (bench_test.go) and
// the "backend" suite experiment.
func BranchyModel(branches int) *graph.Model {
	const c, h, w = 8, 24, 24
	m := graph.NewModel("branchy")
	rng := tensor.NewRNG(17)
	m.AddInput("x", -1, c, h, w)
	var merged []string
	for b := 0; b < branches; b++ {
		w1 := fmt.Sprintf("b%d_w1", b)
		w2 := fmt.Sprintf("b%d_w2", b)
		m.AddInitializer(w1, tensor.HeInit(rng, c*9, c, c, 3, 3))
		m.AddInitializer(w2, tensor.HeInit(rng, c*9, c, c, 3, 3))
		conv := func(name, in, wname, out string) {
			m.AddNode(graph.NewNode("Conv", name, []string{in, wname}, []string{out},
				graph.IntsAttr("strides", 1, 1), graph.IntsAttr("pads", 1, 1),
				graph.IntsAttr("kernel_shape", 3, 3), graph.StringAttr("algo", "direct")))
		}
		conv(fmt.Sprintf("b%d_c1", b), "x", w1, fmt.Sprintf("b%d_y1", b))
		m.AddNode(graph.NewNode("Relu", fmt.Sprintf("b%d_r", b),
			[]string{fmt.Sprintf("b%d_y1", b)}, []string{fmt.Sprintf("b%d_a", b)}))
		conv(fmt.Sprintf("b%d_c2", b), fmt.Sprintf("b%d_a", b), w2, fmt.Sprintf("b%d_y2", b))
		merged = append(merged, fmt.Sprintf("b%d_y2", b))
	}
	m.AddNode(graph.NewNode("Sum", "merge", merged, []string{"y"}))
	m.AddOutput("y")
	return m
}

// BackendVariant is one executor configuration of the backend comparison.
// Opts constructs fresh options per call so arenas are never shared
// between executors.
type BackendVariant struct {
	Name string
	Opts func() []executor.Option
}

// BackendVariants enumerates the execution-backend configurations the
// micro-benchmarks compare.
func BackendVariants() []BackendVariant {
	return []BackendVariant{
		{"sequential", func() []executor.Option { return nil }},
		{"parallel", func() []executor.Option {
			return []executor.Option{executor.WithBackend(executor.NewParallelBackend(nil))}
		}},
		{"parallel+arena", func() []executor.Option {
			return []executor.Option{
				executor.WithBackend(executor.NewParallelBackend(nil)),
				executor.WithArena(tensor.NewArena())}
		}},
		{"sequential+arena", func() []executor.Option {
			return []executor.Option{executor.WithArena(tensor.NewArena())}
		}},
	}
}

// BackendBenchRow is one (variant, workload) micro-benchmark measurement:
// per-op wall-clock samples plus the allocator counters the benchmark
// schema records.
type BackendBenchRow struct {
	Variant     string
	Kind        string // "forward" or "train-step"
	Seconds     []float64
	BytesPerOp  int64
	AllocsPerOp int64
	Warmup      int
}

// RunBackendMicrobench measures forward-pass latency on the branchy model
// and full training-step latency on LeNet for every backend variant. Quick
// mode hand-rolls a short timing loop with runtime.ReadMemStats allocator
// deltas; full mode defers to testing.Benchmark for calibrated iteration
// counts and per-op allocation counters.
func RunBackendMicrobench(ctx context.Context, o Options) ([]BackendBenchRow, error) {
	rng := tensor.NewRNG(o.seed())
	fwdModel := BranchyModel(8)
	fwdFeeds := map[string]*tensor.Tensor{"x": tensor.RandNormal(rng, 0, 1, 2, 8, 24, 24)}

	trainBatchSize := 32
	if o.Quick {
		trainBatchSize = 16
	}
	ds := training.SyntheticClassification(4*trainBatchSize, 10, []int{1, 28, 28}, 0.3, o.seed())
	batch := training.NewSequentialSampler(ds, trainBatchSize).Next()

	var rows []BackendBenchRow
	for _, v := range BackendVariants() {
		e, err := executor.New(fwdModel, v.Opts()...)
		if err != nil {
			return nil, err
		}
		fwd := func() error {
			_, err := e.Inference(ctx, fwdFeeds)
			return err
		}
		row, err := measureOp(o, v.Name, "forward", fwd)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)

		if v.Name == "sequential+arena" {
			continue // training comparison covers the three headline variants
		}
		m := models.LeNet(models.Config{Classes: 10, Channels: 1, Height: 28, Width: 28,
			WithHead: true, Seed: o.seed()})
		te, err := executor.New(m, v.Opts()...)
		if err != nil {
			return nil, err
		}
		te.SetTraining(true)
		d := training.NewDriver(te, training.NewMomentum(0.05, 0.9))
		step := func() error {
			_, err := d.Train(ctx, batch.Feeds())
			return err
		}
		row, err = measureOp(o, v.Name, "train-step", step)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// measureOp times op with warmup discard. Quick mode records a few
// timeLoop samples and derives bytes/allocs from runtime.MemStats deltas;
// full mode runs testing.Benchmark.
func measureOp(o Options, variant, kind string, op func() error) (BackendBenchRow, error) {
	row := BackendBenchRow{Variant: variant, Kind: kind, Warmup: 1}
	if err := op(); err != nil { // warmup: pools, caches, lazy init
		return row, err
	}
	if o.Quick {
		const samples, warmup, iters = 3, 1, 2
		var opErr error
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		dist, _ := timeLoop(samples, warmup, iters, func() {
			if opErr == nil {
				opErr = op()
			}
		})
		runtime.ReadMemStats(&after)
		if opErr != nil {
			return row, opErr
		}
		row.Warmup += warmup
		row.Seconds = dist.Samples
		ops := uint64((warmup + samples) * iters) // MemStats brackets warmup rounds too
		row.BytesPerOp = int64((after.TotalAlloc - before.TotalAlloc) / ops)
		row.AllocsPerOp = int64((after.Mallocs - before.Mallocs) / ops)
		return row, nil
	}
	var failed error
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := op(); err != nil {
				failed = err
				b.FailNow()
			}
		}
	})
	if failed != nil {
		return row, failed
	}
	row.Seconds = []float64{res.T.Seconds() / float64(res.N)}
	row.BytesPerOp = res.AllocedBytesPerOp()
	row.AllocsPerOp = res.AllocsPerOp()
	return row, nil
}

// RenderBackendBench renders the micro-benchmark rows.
func RenderBackendBench(rows []BackendBenchRow) *Table {
	t := &Table{Title: "Execution backends: forward & training-step micro-benchmarks",
		Headers: []string{"Variant", "Workload", "Median/op", "B/op", "allocs/op"}}
	for _, r := range rows {
		med := metrics.Summarize(r.Seconds).Median
		t.AddRow(r.Variant, r.Kind, fsec(med), fbytes(r.BytesPerOp), itoa(r.AllocsPerOp))
	}
	t.AddNote("forward: 8-tower branchy model (inter-operator parallelism); train-step: LeNet fwd+bwd+update")
	return t
}
