package core

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"deep500/internal/datasets"
	"deep500/internal/executor"
	"deep500/internal/frameworks"
	"deep500/internal/metrics"
	"deep500/internal/models"
	"deep500/internal/tensor"
	"deep500/internal/training"
)

// Fig8Row is one dataset-latency measurement; Summary keeps the raw
// samples for export into the benchmark schema.
type Fig8Row struct {
	Dataset   string
	Generator string // "real" or "synth", or the distributed variants
	Summary   metrics.Distribution
}

// Fig8Result is the dataset-latency experiment outcome.
type Fig8Result struct {
	Batch int
	Small []Fig8Row // MNIST/F-MNIST/CIFAR (raw binary)
	Large []Fig8Row // ImageNet-scale (record shards, 1/64 nodes)
}

// RunFig8 reproduces Fig. 8: minibatch-loading latency of real storage vs
// synthetic in-memory generation, for small raw-binary datasets and an
// ImageNet-scale record dataset sharded into 1 vs many files read by 1 vs
// 64 concurrent nodes.
func RunFig8(o Options, workDir string) (Fig8Result, error) {
	batch := 128
	nSamples := 512
	imagenetSpec := datasets.Spec{Name: "imagenet(scaled)", H: 64, W: 64, C: 3, Classes: 100}
	nodes := 64
	shardsMany := 64
	reruns := o.reruns()
	if o.Quick {
		batch, nSamples, nodes, shardsMany = 16, 64, 8, 8
		imagenetSpec.H, imagenetSpec.W = 32, 32
	}
	res := Fig8Result{Batch: batch}

	// --- small datasets: raw binary vs synthetic generation ---
	for _, spec := range []datasets.Spec{datasets.MNIST, datasets.FashionMNIST, datasets.CIFAR10, datasets.CIFAR100} {
		path := filepath.Join(workDir, spec.Name+".bin")
		if err := datasets.WriteRawBinary(path, spec, nSamples, o.seed()); err != nil {
			return res, err
		}
		ds, err := datasets.OpenRawBinary(path, spec)
		if err != nil {
			return res, err
		}
		real := metrics.NewDatasetLatency(spec.Name + "/real")
		sampler := training.NewSequentialSampler(ds, batch)
		for r := 0; r < reruns; r++ {
			sampler.Reset()
			real.Begin()
			sampler.Next()
			real.End()
		}
		synth := metrics.NewDatasetLatency(spec.Name + "/synth")
		for r := 0; r < reruns; r++ {
			synth.Begin()
			datasets.SynthBatch(spec, batch, o.seed()+uint64(r))
			synth.End()
		}
		res.Small = append(res.Small,
			Fig8Row{spec.Name, "real", real.Distribution()},
			Fig8Row{spec.Name, "synth", synth.Distribution()})
	}

	// --- ImageNet-scale: record shards × node counts ---
	for _, shards := range []int{1, shardsMany} {
		prefix := filepath.Join(workDir, fmt.Sprintf("imagenet-%d", shards))
		paths, err := datasets.WriteRecordDataset(prefix, imagenetSpec, nSamples, shards, o.seed())
		if err != nil {
			return res, err
		}
		for _, nNodes := range []int{1, nodes} {
			lat := metrics.NewDatasetLatency(fmt.Sprintf("%dfiles+%dnodes", shards, nNodes))
			for r := 0; r < reruns; r++ {
				perNode := make([]float64, nNodes)
				var wg sync.WaitGroup
				for node := 0; node < nNodes; node++ {
					wg.Add(1)
					go func(node int) {
						defer wg.Done()
						// each node streams its slice of the shard list
						nodePaths := paths
						if len(paths) >= nNodes {
							share := len(paths) / nNodes
							nodePaths = paths[node*share : (node+1)*share]
						}
						p, err := datasets.NewRecordPipeline(nodePaths, imagenetSpec, batch, true, o.seed()+uint64(node))
						if err != nil {
							return
						}
						defer p.Close()
						start := time.Now()
						p.NextBatch(batch)
						perNode[node] = time.Since(start).Seconds()
					}(node)
				}
				wg.Wait()
				worst := 0.0
				for _, v := range perNode {
					if v > worst {
						worst = v
					}
				}
				lat.Record(worst)
			}
			res.Large = append(res.Large, Fig8Row{
				Dataset:   "imagenet",
				Generator: fmt.Sprintf("%dfiles+%dnodes", shards, nNodes),
				Summary:   lat.Distribution(),
			})
		}
	}
	synth := metrics.NewDatasetLatency("imagenet/synth")
	for r := 0; r < reruns; r++ {
		synth.Begin()
		datasets.SynthBatch(imagenetSpec, batch, o.seed()+uint64(r))
		synth.End()
	}
	res.Large = append(res.Large, Fig8Row{"imagenet", "synth", synth.Distribution()})
	return res, nil
}

// RenderFig8 renders the dataset-latency results.
func RenderFig8(r Fig8Result) *Table {
	t := &Table{Title: fmt.Sprintf("Fig. 8: minibatch (B=%d) loading latency", r.Batch),
		Headers: []string{"Dataset", "Generator", "Median", "CI95"}}
	for _, rows := range [][]Fig8Row{r.Small, r.Large} {
		for _, row := range rows {
			t.AddRow(row.Dataset, row.Generator, fsec(row.Summary.Median),
				fmt.Sprintf("[%s, %s]", fsec(row.Summary.CI95Low), fsec(row.Summary.CI95High)))
		}
	}
	t.AddNote("expected shape: small in-memory datasets load faster than synth generation; JPEG-decoding ImageNet is orders slower than synth")
	return t
}

// Table3Row is one decoding-latency cell.
type Table3Row struct {
	DataKind string // "1 image (sequential)" etc.
	Pipeline string // tar+basic | tar+turbo | record+native
	Seconds  float64
}

// RunTable3 reproduces Table III: the ImageNet decoding-latency breakdown
// across containers (indexed tar vs record), decoders (basic/"PIL" vs
// turbo vs record-native pipelined) and access patterns (sequential vs
// shuffled).
func RunTable3(o Options, workDir string) ([]Table3Row, error) {
	spec := datasets.Spec{Name: "imagenet(scaled)", H: 64, W: 64, C: 3, Classes: 100}
	n := 512
	batch := 128
	if o.Quick {
		n, batch = 160, 64
	}
	tarPath := filepath.Join(workDir, "t3.tar")
	if err := datasets.WriteIndexedTar(tarPath, spec, n, o.seed()); err != nil {
		return nil, err
	}
	it, err := datasets.OpenIndexedTar(tarPath, spec)
	if err != nil {
		return nil, err
	}
	defer it.Close()
	recPaths, err := datasets.WriteRecordDataset(filepath.Join(workDir, "t3"), spec, n, 1, o.seed())
	if err != nil {
		return nil, err
	}

	rng := tensor.NewRNG(o.seed())
	seqIdx := make([]int, batch)
	for i := range seqIdx {
		seqIdx[i] = i
	}
	shufIdx := rng.Perm(n)[:batch]

	median := func(f func() error) (float64, error) {
		s := metrics.NewSampler("t", "s").WithReruns(o.reruns())
		for r := 0; r < o.reruns(); r++ {
			start := time.Now()
			if err := f(); err != nil {
				return 0, err
			}
			s.Record(time.Since(start).Seconds())
		}
		return s.Summarize().Median, nil
	}

	var rows []Table3Row
	add := func(kind, pipeline string, sec float64) {
		rows = append(rows, Table3Row{kind, pipeline, sec})
	}
	type tarPipe struct {
		name string
		dec  datasets.Decoder
	}
	for _, p := range []tarPipe{{"tar+basic(PIL)", datasets.BasicDecoder{}}, {"tar+turbo", datasets.TurboDecoder{}}} {
		for _, access := range []struct {
			name string
			one  []int
			many []int
		}{
			{"sequential", seqIdx[:1], seqIdx},
			{"shuffled", shufIdx[:1], shufIdx},
		} {
			one, err := median(func() error {
				_, _, err := datasets.TarBatch(it, access.one, p.dec)
				return err
			})
			if err != nil {
				return nil, err
			}
			add("1 image ("+access.name+")", p.name, one)
			many, err := median(func() error {
				_, _, err := datasets.TarBatch(it, access.many, p.dec)
				return err
			})
			if err != nil {
				return nil, err
			}
			add(fmt.Sprintf("%d images (%s)", batch, access.name), p.name, many)
		}
	}
	// record+native pipeline (pseudo-shuffled and sequential)
	for _, shuffle := range []bool{false, true} {
		name := "sequential"
		if shuffle {
			name = "pseudo-shuffled"
		}
		one, err := median(func() error {
			p, err := datasets.NewRecordPipeline(recPaths, spec, batch, shuffle, o.seed())
			if err != nil {
				return err
			}
			defer p.Close()
			_, _, err = p.NextBatch(1)
			return err
		})
		if err != nil {
			return nil, err
		}
		add("1 image ("+name+")", "record+native", one)
		many, err := median(func() error {
			p, err := datasets.NewRecordPipeline(recPaths, spec, batch, shuffle, o.seed())
			if err != nil {
				return err
			}
			defer p.Close()
			_, _, err = p.NextBatch(batch)
			return err
		})
		if err != nil {
			return nil, err
		}
		add(fmt.Sprintf("%d images (%s)", batch, name), "record+native", many)
	}
	return rows, nil
}

// RenderTable3 renders the decode-latency breakdown.
func RenderTable3(rows []Table3Row) *Table {
	t := &Table{Title: "Table III: image decoding latency breakdown (median)",
		Headers: []string{"Data", "Pipeline", "Time"}}
	for _, r := range rows {
		t.AddRow(r.DataKind, r.Pipeline, fsec(r.Seconds))
	}
	t.AddNote("expected shape: turbo < basic for batches; record+native pipelined pseudo-shuffle ≈ sequential; true-random tar access slowest")
	return t
}

// ConvergenceCurve is one optimizer's Fig. 9/10 series.
type ConvergenceCurve struct {
	Name      string
	TestAcc   []metrics.SeriesPoint
	LossCurve []metrics.SeriesPoint
	Duration  time.Duration
}

// RunFig9 reproduces Fig. 9: convergence (test accuracy per epoch, loss
// over time) of native fused optimizers vs Deep500 reference optimizers vs
// the custom AcceleGrad, all over the cf2go backend on a synthetic
// CIFAR-10-scale task with a scaled ResNet.
func RunFig9(ctx context.Context, o Options) ([]ConvergenceCurve, error) {
	epochs := 10
	nTrain, nTest := 2048, 512
	width := 0.25
	batch := 64
	if o.Quick {
		epochs, nTrain, nTest, width, batch = 2, 256, 64, 0.125, 32
	}
	cfg := models.Config{Classes: 10, Channels: 3, Height: 16, Width: 16,
		WithHead: true, BatchNorm: false, Seed: o.seed(), WidthScale: width}
	train, test := training.SyntheticSplit(nTrain, nTest, 10, []int{3, 16, 16}, 0.35, o.seed())

	optimizers := []struct {
		name string
		mk   func() training.ThreeStep
	}{
		{"GradDescent native", func() training.ThreeStep { return training.FromUpdateRule(training.NewFusedSGD(0.05)) }},
		{"Momentum native", func() training.ThreeStep { return training.FromUpdateRule(training.NewFusedMomentum(0.02, 0.9)) }},
		{"RmsProp native", func() training.ThreeStep { return training.FromUpdateRule(training.NewFusedRMSProp(0.002, 0.9)) }},
		{"AdaGrad native", func() training.ThreeStep { return training.FromUpdateRule(training.NewFusedAdaGrad(0.02)) }},
		{"Adam native", func() training.ThreeStep { return training.NewFusedAdam(0.002) }},
		{"Adam-Ref Deep500", func() training.ThreeStep { return training.NewAdam(0.002) }},
		{"GradDescent Deep500", func() training.ThreeStep { return training.NewGradientDescent(0.05) }},
		{"Momentum Deep500", func() training.ThreeStep { return training.NewMomentum(0.02, 0.9) }},
		{"AcceleGrad (custom)", func() training.ThreeStep { return training.NewAcceleGrad(0.02, 1, 1) }},
	}
	var out []ConvergenceCurve
	for _, opt := range optimizers {
		m := models.ResNet(8, cfg)
		execOpts, err := o.execOpts()
		if err != nil {
			return nil, err
		}
		e, err := frameworks.CF2Go.NewExecutor(m, execOpts...)
		if err != nil {
			return nil, err
		}
		e.OpOverhead = 0 // convergence experiment: timing dominated by math
		e.SetTraining(true)
		d := training.NewDriver(e, opt.mk())
		r := training.NewRunner(d,
			training.NewShuffleSampler(train, batch, o.seed()),
			training.NewSequentialSampler(test, batch))
		start := time.Now()
		if err := r.RunEpochs(ctx, epochs); err != nil {
			return nil, err
		}
		out = append(out, ConvergenceCurve{
			Name:      opt.name,
			TestAcc:   r.TestAcc.Points(),
			LossCurve: r.LossCurve.Points(),
			Duration:  time.Since(start),
		})
	}
	return out, nil
}

// RunFig10 reproduces Fig. 10: the Adam optimizer across two backends, each
// in native (fused) and Deep500-reference form.
func RunFig10(ctx context.Context, o Options) ([]ConvergenceCurve, error) {
	epochs := 8
	nTrain, nTest := 1024, 256
	batch := 64
	if o.Quick {
		epochs, nTrain, nTest, batch = 2, 256, 64, 32
	}
	cfg := models.Config{Classes: 10, Channels: 3, Height: 16, Width: 16,
		WithHead: true, Seed: o.seed(), WidthScale: 0.25}
	train, test := training.SyntheticSplit(nTrain, nTest, 10, []int{3, 16, 16}, 0.35, o.seed()+1)

	cases := []struct {
		name string
		prof frameworks.Profile
		mk   func() training.ThreeStep
	}{
		{"Adam TF (native)", frameworks.TFGo, func() training.ThreeStep { return training.NewFusedAdam(0.002) }},
		{"Adam TF Deep500", frameworks.TFGo, func() training.ThreeStep { return training.NewAdamVariant(0.002, training.AdamEpsInside) }},
		{"Adam CF2 (native)", frameworks.CF2Go, func() training.ThreeStep { return training.NewFusedAdam(0.002) }},
		{"Adam CF2 Deep500", frameworks.CF2Go, func() training.ThreeStep { return training.NewAdam(0.002) }},
	}
	var out []ConvergenceCurve
	for _, c := range cases {
		m := models.ResNet(8, cfg)
		prof := c.prof
		prof.OpOverhead /= 8
		execOpts, err := o.execOpts()
		if err != nil {
			return nil, err
		}
		e, err := prof.NewExecutor(m, execOpts...)
		if err != nil {
			return nil, err
		}
		e.SetTraining(true)
		d := training.NewDriver(e, c.mk())
		r := training.NewRunner(d,
			training.NewShuffleSampler(train, batch, o.seed()),
			training.NewSequentialSampler(test, batch))
		start := time.Now()
		if err := r.RunEpochs(ctx, epochs); err != nil {
			return nil, err
		}
		out = append(out, ConvergenceCurve{Name: c.name,
			TestAcc: r.TestAcc.Points(), LossCurve: r.LossCurve.Points(),
			Duration: time.Since(start)})
	}
	return out, nil
}

// RenderConvergence renders Fig. 9/10 curves as a table of epochs plus
// final stats.
func RenderConvergence(title string, curves []ConvergenceCurve) *Table {
	t := &Table{Title: title,
		Headers: []string{"Optimizer", "FinalTestAcc", "BestTestAcc", "FinalLoss", "Time"}}
	for _, c := range curves {
		finalAcc, bestAcc := 0.0, 0.0
		for _, p := range c.TestAcc {
			if p.Value > bestAcc {
				bestAcc = p.Value
			}
			finalAcc = p.Value
		}
		finalLoss := 0.0
		if len(c.LossCurve) > 0 {
			finalLoss = c.LossCurve[len(c.LossCurve)-1].Value
		}
		t.AddRow(c.Name, fpct(finalAcc), fpct(bestAcc),
			fmt.Sprintf("%.4f", finalLoss), fsec(c.Duration.Seconds()))
	}
	return t
}

// Fig11Point is one iteration of the Adam-divergence trajectory.
type Fig11Point struct {
	Iteration int
	TotalL2   float64
	TotalLInf float64
	PerLayer  map[string]float64 // layer → ℓ2 divergence
}

// RunFig11 reproduces Fig. 11: the ℓ2/ℓ∞ divergence between two Adam
// formulations (reference vs TF-style ε placement) training the same MLP
// from the same initialization on identical batches, per layer over
// iterations.
func RunFig11(ctx context.Context, o Options) ([]Fig11Point, error) {
	iters := 750
	if o.Quick {
		iters = 40
	}
	cfg := models.Config{Classes: 10, Channels: 1, Height: 16, Width: 16,
		WithHead: true, Seed: o.seed()}
	execOpts, err := o.execOpts()
	if err != nil {
		return nil, err
	}
	mk := func(v training.AdamVariant) (*executor.Executor, *training.Driver) {
		m := models.MLP(cfg, 128, 64)
		e := executor.MustNew(m, execOpts...)
		e.SetTraining(true)
		return e, training.NewDriver(e, training.NewAdamVariant(0.001, v))
	}
	e1, d1 := mk(training.AdamReference)
	e2, d2 := mk(training.AdamEpsInside)
	ds, _ := training.SyntheticSplit(1024, 64, 10, []int{1, 16, 16}, 0.3, o.seed())
	sampler := training.NewShuffleSampler(ds, 32, o.seed())

	var out []Fig11Point
	every := iters / 25
	if every < 1 {
		every = 1
	}
	for it := 1; it <= iters; it++ {
		b := sampler.Next()
		if b == nil {
			sampler.Reset()
			b = sampler.Next()
		}
		if _, err := d1.Train(ctx, b.Feeds()); err != nil {
			return nil, err
		}
		if _, err := d2.Train(ctx, b.Feeds()); err != nil {
			return nil, err
		}
		if it%every != 0 {
			continue
		}
		pt := Fig11Point{Iteration: it, PerLayer: map[string]float64{}}
		for _, name := range e1.Network().Params() {
			p1, _ := e1.Network().FetchTensor(name)
			p2, _ := e2.Network().FetchTensor(name)
			d := tensor.Compare(p2, p1)
			pt.PerLayer[name] = d.L2
			pt.TotalL2 += d.L2
			if d.LInf > pt.TotalLInf {
				pt.TotalLInf = d.LInf
			}
		}
		out = append(out, pt)
	}
	return out, nil
}

// RenderFig11 renders divergence trajectories.
func RenderFig11(points []Fig11Point) *Table {
	t := &Table{Title: "Fig. 11: weight divergence between Adam formulations (reference vs ε-inside)",
		Headers: []string{"Iteration", "Σ l2", "max l∞"}}
	for _, p := range points {
		t.AddRow(itoa(int64(p.Iteration)),
			fmt.Sprintf("%.5g", p.TotalL2), fmt.Sprintf("%.5g", p.TotalLInf))
	}
	t.AddNote("expected shape: divergence grows with iterations; fully connected weights diverge faster than biases")
	return t
}

// TempWorkDir creates a scratch directory for dataset experiments.
func TempWorkDir() (string, func(), error) {
	dir, err := os.MkdirTemp("", "deep500-bench-*")
	if err != nil {
		return "", nil, err
	}
	return dir, func() { os.RemoveAll(dir) }, nil
}
