package core

import (
	"context"
	"fmt"
	"sync"
	"time"

	"deep500/internal/bench"
	"deep500/internal/dist"
	"deep500/internal/executor"
	"deep500/internal/models"
	"deep500/internal/mpi"
	"deep500/internal/training"
	"deep500/internal/transport"
)

// This file implements the "dist" suite experiment: data-parallel DSGD
// over the real TCP transport on loopback, measured at 1, 2 and 4 workers.
// It is the networked counterpart of the fig12 scaling experiments — those
// run on the virtual α-β clock of the simulator, this one pays for real
// sockets, framing and goroutine scheduling. Step counts, per-step wire
// bytes and the final loss are deterministic and gate (the TCP ring
// reproduces the simulator ring's chunk schedule bitwise); wall-clock
// step time and scaling efficiency follow the machine and self-demote.

// DistBenchRow is one world size's measurement.
type DistBenchRow struct {
	Workers      int
	Steps        int       // per-worker steps taken (deterministic)
	FinalLoss    float64   // rank 0's last-step loss (deterministic)
	BytesPerStep float64   // rank 0 sent bytes / steps (deterministic)
	StepTimes    []float64 // per-step wall-clock seconds on rank 0
	Efficiency   float64   // t(1 worker) / t(n workers), filled by caller
}

// distBenchParams scales the experiment.
func distBenchParams(quick bool) (steps, batch, hidden int) {
	if quick {
		return 6, 8, 16
	}
	return 24, 16, 32
}

// RunDistBench trains the same model at each world size over loopback TCP
// with allreduce-averaged DSGD (the per-worker batch is fixed, weak
// scaling). Every worker runs the identical loop the job control plane's
// ranks run; rank 0's counters provide the wire-volume record.
func RunDistBench(ctx context.Context, o Options) ([]DistBenchRow, error) {
	steps, batch, hidden := distBenchParams(o.Quick)
	var rows []DistBenchRow
	for _, workers := range []int{1, 2, 4} {
		row, err := runDistWorld(ctx, o, workers, steps, batch, hidden)
		if err != nil {
			return nil, fmt.Errorf("dist: %d workers: %w", workers, err)
		}
		rows = append(rows, row)
	}
	base := medianOf(rows[0].StepTimes)
	for i := range rows {
		if t := medianOf(rows[i].StepTimes); t > 0 {
			rows[i].Efficiency = base / t
		}
	}
	return rows, nil
}

func runDistWorld(ctx context.Context, o Options, workers, steps, batch, hidden int) (DistBenchRow, error) {
	ds := training.SyntheticClassification(workers*batch*steps, 4, []int{1, 8, 8}, 0.25, o.seed())
	ranks, err := transport.NewLocalWorld(workers, nil)
	if err != nil {
		return DistBenchRow{}, err
	}
	defer func() {
		for _, r := range ranks {
			r.Close()
		}
	}()

	execOpts, err := o.execOpts()
	if err != nil {
		return DistBenchRow{}, err
	}

	losses := make([]float64, workers)
	times := make([][]float64, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for i, r := range ranks {
		wg.Add(1)
		go func(i int, r *transport.TCPRank) {
			defer wg.Done()
			errs[i] = transport.Protect(func() error {
				m := models.MLP(models.Config{Classes: 4, Channels: 1, Height: 8, Width: 8,
					WithHead: true, Seed: o.seed()}, hidden)
				e, err := executor.New(m, execOpts...)
				if err != nil {
					return err
				}
				e.SetTraining(true)
				d := training.NewDriver(e, training.NewGradientDescent(0.05))
				opt := dist.NewConsistentDecentralized(d, r, mpi.AllreduceRing)
				sampler := dist.NewDistributedSampler(ds, batch, i, workers, o.seed())
				for s := 0; s < steps; s++ {
					if err := ctx.Err(); err != nil {
						return err
					}
					b := sampler.Next()
					if b == nil {
						sampler.Reset()
						b = sampler.Next()
					}
					t0 := time.Now()
					out, err := opt.Train(ctx, b.Feeds())
					if err != nil {
						return err
					}
					times[i] = append(times[i], time.Since(t0).Seconds())
					if loss, ok := out["loss"]; ok && loss.Size() > 0 {
						losses[i] = float64(loss.Data()[0])
					}
				}
				return nil
			})
		}(i, r)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return DistBenchRow{}, fmt.Errorf("rank %d: %w", i, err)
		}
	}
	st := ranks[0].Stats()
	return DistBenchRow{
		Workers:      workers,
		Steps:        steps,
		FinalLoss:    losses[0],
		BytesPerStep: float64(st.SentBytes) / float64(steps),
		StepTimes:    times[0],
	}, nil
}

func medianOf(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	return quantile(xs, 0.5)
}

// RenderDistBench renders the scaling rows.
func RenderDistBench(rows []DistBenchRow) *Table {
	t := &Table{Title: "Distributed: DSGD over TCP loopback, ring allreduce (weak scaling, fixed per-worker batch)",
		Headers: []string{"Workers", "Steps", "Final loss", "Wire/step (rank 0)", "Median step", "Efficiency"}}
	for _, r := range rows {
		t.AddRow(itoa(int64(r.Workers)), itoa(int64(r.Steps)),
			fmt.Sprintf("%.4f", r.FinalLoss),
			fmtBytes(r.BytesPerStep),
			fsec(medianOf(r.StepTimes)),
			fmt.Sprintf("%.2f", r.Efficiency))
	}
	t.AddNote("real sockets and framing; the TCP ring reproduces the simulator ring's chunk schedule bitwise")
	t.AddNote("steps, wire volume and loss are deterministic and gate; step time and efficiency follow the machine")
	return t
}

func fmtBytes(b float64) string {
	switch {
	case b >= 1<<20:
		return fmt.Sprintf("%.2f MiB", b/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.2f KiB", b/(1<<10))
	default:
		return fmt.Sprintf("%.0f B", b)
	}
}

func runDistExp(c *bench.Context, o Options) error {
	rows, err := RunDistBench(c.Ctx, o)
	if err != nil {
		return err
	}
	RenderDistBench(rows).Render(c.Out)
	for _, r := range rows {
		key := fmt.Sprintf("%dworkers", r.Workers)
		c.RecordValue(key+"/steps", "steps", bench.HigherIsBetter, float64(r.Steps))
		c.RecordValue(key+"/final-loss", "loss", bench.LowerIsBetter, r.FinalLoss)
		c.RecordValue(key+"/bytes-per-step", "B", bench.LowerIsBetter, r.BytesPerStep)
		rec := c.RecordSamples(key+"/step-time", "s", bench.LowerIsBetter, r.StepTimes)
		rec.Warmup = 0
		c.RecordValue(key+"/efficiency", "ratio", bench.ReportOnly, r.Efficiency)
	}
	return nil
}
