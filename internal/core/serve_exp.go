package core

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"deep500/internal/bench"
	"deep500/internal/executor"
	"deep500/internal/models"
	"deep500/internal/serve"
	"deep500/internal/tensor"
)

// This file implements the "serve" suite experiment: online-inference
// throughput and latency under concurrent closed-loop clients, with the
// dynamic micro-batcher on (MaxBatch 8) versus off (MaxBatch 1, the
// single-request baseline). It is the serving-side counterpart of the
// paper's full-stack measurement philosophy: the same executor, kernels
// and model measured under a realistic operating condition — many
// concurrent small requests — instead of one big offline batch.
//
// Record semantics mirror the rest of the suite: request counts are
// deterministic and always gate; latency distributions are wall-clock
// ("s") and self-demote across differing CPUs; throughput, percentile
// spotlights and batch occupancy depend on scheduler timing and are
// recorded report-only.

// ServeBenchRow is one serving variant's measurement.
type ServeBenchRow struct {
	Variant    string // "unbatched" (MaxBatch 1) or "batched" (MaxBatch 8)
	MaxBatch   int
	Requests   int       // requests served (clients × per-client count)
	Latencies  []float64 // per-request client-observed seconds
	Throughput float64   // requests per busy wall-clock second
	Occupancy  float64   // mean rows per executed batch
	Batches    uint64

	busySeconds float64 // summed timed-round wall clock
}

// serveBenchConfig scales the experiment.
type serveBenchConfig struct {
	clients    int
	perClient  int
	maxBatch   int
	linger     time.Duration
	queueDepth int
}

func serveBenchParams(quick bool) serveBenchConfig {
	// The closed loop completes in tens of milliseconds even at full
	// scale, so quick mode keeps a sample large enough for stable
	// percentiles instead of the aggressive shrink other experiments need.
	cfg := serveBenchConfig{clients: 8, perClient: 150, maxBatch: 8, linger: 5 * time.Millisecond, queueDepth: 256}
	if quick {
		cfg.perClient = 60
	}
	return cfg
}

// RunServeBench drives the serving subsystem with closed-loop clients:
// every client keeps exactly one request in flight, so offered load
// follows capacity and the comparison isolates the batching effect. Both
// variants run one replica — the single-replica setting makes the
// batched-vs-unbatched contrast pure (no extra parallelism on either
// side). Outputs of the two variants are cross-checked for tolerance
// equality before any timing runs.
func RunServeBench(ctx context.Context, o Options) ([]ServeBenchRow, error) {
	p := serveBenchParams(o.Quick)
	// The mlp zoo builder at serving scale: narrow hidden layers (minimal
	// per-row GEMM work, which batching cannot amortize — with scalar CPU
	// kernels a wide MLP is compute-bound and batching is throughput-
	// neutral) across several graph nodes (per-pass scheduling, state-map
	// and dispatch overhead, which batching amortizes 8×). This is the
	// operating point real online inference lives at: many tiny requests
	// whose per-request overhead rivals their compute.
	m := models.MLP(models.Config{Classes: 10, Channels: 1, Height: 8, Width: 8, Seed: o.seed()}, 8, 8, 8, 8)

	// execOpts carries the session's backend, arena and compile-pipeline
	// selection, so -exec/-arena/-opt apply to serving like everywhere else.
	execOpts, err := o.execOpts()
	if err != nil {
		return nil, err
	}
	factory := func() (executor.GraphExecutor, error) { return executor.New(m, execOpts...) }

	// Per-client request tensors (reused across rounds; the server copies
	// outputs, never mutates feeds).
	inputs := make([]*tensor.Tensor, p.clients)
	for i := range inputs {
		rng := tensor.NewRNG(o.seed() + uint64(i)*7919)
		inputs[i] = tensor.RandNormal(rng, 0, 1, 1, 1, 8, 8)
	}

	// Correctness cross-check: batched outputs must match per-item
	// reference inference before any throughput claims.
	ref, err := executor.New(m)
	if err != nil {
		return nil, err
	}
	want := make([]map[string]*tensor.Tensor, p.clients)
	for i, in := range inputs {
		out, err := ref.Inference(ctx, map[string]*tensor.Tensor{"x": in})
		if err != nil {
			return nil, err
		}
		want[i] = out
	}

	variants := []struct {
		name     string
		maxBatch int
		linger   time.Duration
	}{
		{"unbatched", 1, 0},
		{"batched", p.maxBatch, p.linger},
	}
	servers := make([]*serve.Server, len(variants))
	defer func() {
		for _, s := range servers {
			if s != nil {
				s.Close(context.Background())
			}
		}
	}()
	results := make([]ServeBenchRow, len(variants))
	var warm []serve.Stats
	for vi, v := range variants {
		srv, err := serve.New(serve.Options{
			MaxBatch:    v.maxBatch,
			MaxLinger:   v.linger,
			Replicas:    1,
			QueueDepth:  p.queueDepth,
			NewExecutor: factory,
		})
		if err != nil {
			return nil, err
		}
		servers[vi] = srv
		results[vi] = ServeBenchRow{Variant: v.name, MaxBatch: v.maxBatch}

		// Warmup + correctness: every client's request once, checked
		// against the per-item reference.
		warmErrs := make([]error, p.clients)
		var wg sync.WaitGroup
		for i := 0; i < p.clients; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				out, err := srv.Infer(ctx, map[string]*tensor.Tensor{"x": inputs[i]})
				if err != nil {
					warmErrs[i] = err
					return
				}
				for name, w := range want[i] {
					g, ok := out[name]
					if !ok {
						warmErrs[i] = fmt.Errorf("serve: variant %s lost output %q", v.name, name)
						return
					}
					if d := maxAbsDiffT(w, g); d > 1e-4 {
						warmErrs[i] = fmt.Errorf("serve: variant %s output %q diverges from per-item inference: max |Δ| = %g", v.name, name, d)
						return
					}
				}
			}(i)
		}
		wg.Wait()
		for _, err := range warmErrs {
			if err != nil {
				return nil, err
			}
		}
		warm = append(warm, srv.Stats())
	}

	// Timed closed loops. Each variant starts from a freshly collected
	// heap (the testing.B convention): allocation pressure is a property
	// of the variant itself — the unbatched path allocates per-pass state
	// for every request, the batched path amortizes it — so each variant
	// must pay for its own garbage rather than inherit the other's (or a
	// previous experiment's) GC pacing. Rounds keep the two variants
	// adjacent in time against CPU-frequency drift.
	const roundLen = 30
	rounds := (p.perClient + roundLen - 1) / roundLen
	for r := 0; r < rounds; r++ {
		reqs := min(roundLen, p.perClient-r*roundLen)
		for vi := range variants {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			srv := servers[vi]
			runtime.GC()
			latencies := make([][]float64, p.clients)
			errs := make([]error, p.clients)
			var wg sync.WaitGroup
			start := time.Now()
			for i := 0; i < p.clients; i++ {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					lat := make([]float64, 0, reqs)
					for q := 0; q < reqs; q++ {
						if err := ctx.Err(); err != nil {
							errs[i] = err
							return
						}
						t0 := time.Now()
						if _, err := srv.Infer(ctx, map[string]*tensor.Tensor{"x": inputs[i]}); err != nil {
							errs[i] = err
							return
						}
						lat = append(lat, time.Since(t0).Seconds())
					}
					latencies[i] = lat
				}(i)
			}
			wg.Wait()
			busy := time.Since(start).Seconds()
			for _, err := range errs {
				if err != nil {
					return nil, err
				}
			}
			row := &results[vi]
			row.Requests += p.clients * reqs
			row.busySeconds += busy
			for _, lat := range latencies {
				row.Latencies = append(row.Latencies, lat...)
			}
		}
	}

	for vi := range results {
		row := &results[vi]
		st := servers[vi].Stats()
		if row.busySeconds > 0 {
			row.Throughput = float64(row.Requests) / row.busySeconds
		}
		// Timed-loop occupancy: subtract the warmup batches.
		if b := st.Batches - warm[vi].Batches; b > 0 {
			row.Batches = b
			row.Occupancy = float64(st.Rows-warm[vi].Rows) / float64(b)
		}
	}
	return results, nil
}

// quantile returns the q-quantile of xs (nearest-rank on a sorted copy).
func quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	i := int(q * float64(len(s)-1))
	return s[i]
}

// RenderServeBench renders the serving rows.
func RenderServeBench(rows []ServeBenchRow) *Table {
	t := &Table{Title: "Serving: dynamic micro-batching vs single-request baseline (mlp, 1 replica)",
		Headers: []string{"Variant", "MaxBatch", "Requests", "Throughput", "p50 lat", "p95 lat", "Rows/batch"}}
	for _, r := range rows {
		t.AddRow(r.Variant, itoa(int64(r.MaxBatch)), itoa(int64(r.Requests)),
			fmt.Sprintf("%.0f req/s", r.Throughput),
			fsec(quantile(r.Latencies, 0.50)), fsec(quantile(r.Latencies, 0.95)),
			fmt.Sprintf("%.2f", r.Occupancy))
	}
	t.AddNote("closed-loop clients (one request in flight each); batching amortizes per-pass dispatch and weight traffic")
	t.AddNote("request counts are deterministic and gate; latency/throughput/occupancy follow scheduler timing")
	return t
}

func runServeExp(c *bench.Context, o Options) error {
	rows, err := RunServeBench(c.Ctx, o)
	if err != nil {
		return err
	}
	RenderServeBench(rows).Render(c.Out)
	tput := map[string]float64{}
	for _, r := range rows {
		key := r.Variant
		c.RecordValue(key+"/requests", "req", bench.HigherIsBetter, float64(r.Requests))
		rec := c.RecordSamples(key+"/latency", "s", bench.LowerIsBetter, r.Latencies)
		rec.Warmup = 1 // one untimed round per client
		c.RecordValue(key+"/p50-latency", "s", bench.ReportOnly, quantile(r.Latencies, 0.50))
		c.RecordValue(key+"/p95-latency", "s", bench.ReportOnly, quantile(r.Latencies, 0.95))
		c.RecordValue(key+"/throughput", "req/s", bench.ReportOnly, r.Throughput)
		c.RecordValue(key+"/batch-occupancy", "rows", bench.ReportOnly, r.Occupancy)
		tput[key] = r.Throughput
	}
	if tput["unbatched"] > 0 {
		c.RecordValue("batched-speedup", "x", bench.ReportOnly, tput["batched"]/tput["unbatched"])
	}
	return nil
}
