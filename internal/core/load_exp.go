package core

import (
	"context"
	"fmt"
	"time"

	"deep500/internal/bench"
	"deep500/internal/executor"
	"deep500/internal/graph"
	"deep500/internal/load"
	"deep500/internal/models"
	"deep500/internal/serve"
	"deep500/internal/tensor"
)

// This file implements the "load" suite experiment: the open-loop traffic
// harness driving an autoscaling serving pool. Unlike the closed-loop
// "serve" experiment (offered load follows capacity, isolating the
// batching effect), the open-loop generator fires requests on a seeded
// Poisson schedule regardless of completions — the only regime where
// overload, backpressure and autoscaler reaction are visible.
//
// Record semantics: request counts are pure functions of (profile, seed)
// and always gate; the steady profile's SLO verdict runs far below
// capacity with generous bounds, so it is deterministic and gates too.
// Latency percentiles are wall-clock ("s") and self-demote across
// differing CPUs; outcome rates and autoscaler reaction under the spike
// profile follow scheduler timing and are recorded report-only.

// LoadBenchRow is one profile's measurement.
type LoadBenchRow struct {
	Profile  string
	Result   *load.Result
	Verdict  load.Verdict
	ScaleUps uint64
	MaxLive  int
}

// loadBenchConfig scales the experiment.
type loadBenchConfig struct {
	steady      load.Profile
	spike       load.Profile
	deadline    time.Duration
	slo         load.SLO
	replicas    int
	maxReplicas int
	opDelay     time.Duration
	maxBatch    int
	queueDepth  int
}

func loadBenchParams(quick bool) loadBenchConfig {
	cfg := loadBenchConfig{
		// Steady: well under single-replica capacity, the SLO-gated profile.
		steady: load.Profile{Kind: load.Steady, Rate: 200, Duration: 1500 * time.Millisecond},
		// Spike: 8× the base rate for a third of the run — enough pressure
		// to back the queue up and force the autoscaler's hand.
		spike: load.Profile{Kind: load.Spike, Rate: 150, Peak: 1200,
			Duration: 1500 * time.Millisecond, SpikeStart: 400 * time.Millisecond, SpikeLen: 500 * time.Millisecond},
		deadline: 500 * time.Millisecond,
		slo: load.SLO{
			P99:            250 * time.Millisecond,
			MaxTimeoutFrac: 0.02,
			MaxRejectFrac:  0.02,
			MinServedFrac:  0.98,
		},
		replicas:    1,
		maxReplicas: 4,
		// Replicas are paced with a fixed per-op delay, giving the pool a
		// known machine-independent service rate (~500 req/s per replica at
		// full batches): the steady profile runs at ~40% utilization and the
		// spike's peak reliably overloads one replica while staying well
		// inside four — so congestion, backpressure and autoscaler reaction
		// reproduce on any host. Raw serving speed (unpaced kernels) is the
		// "serve" experiment's subject, not this one's.
		opDelay:    500 * time.Microsecond,
		maxBatch:   4,
		queueDepth: 64,
	}
	if quick {
		cfg.steady.Duration = 900 * time.Millisecond
		cfg.spike.Duration = 900 * time.Millisecond
		cfg.spike.SpikeStart = 250 * time.Millisecond
		cfg.spike.SpikeLen = 300 * time.Millisecond
	}
	return cfg
}

// RunLoadBench runs the open-loop profiles against an autoscaling server
// (one replica floor, queue-driven growth to the max). Each profile gets
// a fresh server so autoscaler state never leaks between rows.
func RunLoadBench(ctx context.Context, o Options) ([]LoadBenchRow, error) {
	p := loadBenchParams(o.Quick)
	m := models.MLP(models.Config{Classes: 10, Channels: 1, Height: 8, Width: 8, Seed: o.seed()}, 8, 8, 8, 8)
	execOpts, err := o.execOpts()
	if err != nil {
		return nil, err
	}
	factory := func() (executor.GraphExecutor, error) {
		e, err := executor.New(m, execOpts...)
		if err != nil {
			return nil, err
		}
		e.Events = &executor.Events{BeforeOp: func(*graph.Node) { time.Sleep(p.opDelay) }}
		return e, nil
	}
	rng := tensor.NewRNG(o.seed())
	input := tensor.RandNormal(rng, 0, 1, 1, 1, 8, 8)

	profiles := []struct {
		name    string
		profile load.Profile
	}{
		{"steady", p.steady},
		{"spike", p.spike},
	}
	rows := make([]LoadBenchRow, 0, len(profiles))
	for _, pr := range profiles {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		maxLive := 0
		srv, err := serve.New(serve.Options{
			MaxBatch:      p.maxBatch,
			MaxLinger:     2 * time.Millisecond,
			Replicas:      p.replicas,
			MaxReplicas:   p.maxReplicas,
			QueueDepth:    p.queueDepth,
			ScaleInterval: 5 * time.Millisecond,
			ScaleDownIdle: 250 * time.Millisecond,
			NewExecutor:   factory,
			OnScale: func(replicas int, up bool) {
				if replicas > maxLive {
					maxLive = replicas
				}
			},
		})
		if err != nil {
			return nil, err
		}

		// Warm the pool (first pass allocates executor state).
		if _, err := srv.Infer(ctx, map[string]*tensor.Tensor{"x": input}); err != nil {
			srv.Close(context.Background())
			return nil, err
		}

		res, err := load.Run(ctx, load.Config{
			Profile:  pr.profile,
			Seed:     o.seed(),
			Deadline: p.deadline,
			Send: func(rctx context.Context) error {
				_, err := srv.Infer(rctx, map[string]*tensor.Tensor{"x": input})
				return err
			},
		})
		if cerr := srv.Close(context.Background()); err == nil && cerr != nil {
			err = cerr
		}
		if err != nil {
			return nil, err
		}
		st := srv.Stats()
		rows = append(rows, LoadBenchRow{
			Profile:  pr.name,
			Result:   res,
			Verdict:  res.Check(p.slo),
			ScaleUps: st.ScaleUps,
			MaxLive:  maxLive,
		})
	}
	return rows, nil
}

// RenderLoadBench renders the open-loop rows.
func RenderLoadBench(rows []LoadBenchRow) *Table {
	t := &Table{Title: "Open-loop load: seeded Poisson arrivals vs autoscaling pool (mlp, 1→4 replicas)",
		Headers: []string{"Profile", "Sent", "OK", "Rej", "Timeout", "p50", "p99", "Goodput", "ScaleUps", "SLO"}}
	for _, r := range rows {
		t.AddRow(r.Profile,
			itoa(int64(r.Result.Sent)), itoa(int64(r.Result.OK)),
			itoa(int64(r.Result.Rejected)), itoa(int64(r.Result.TimedOut)),
			fsec(r.Result.Percentile(0.50).Seconds()), fsec(r.Result.Percentile(0.99).Seconds()),
			fmt.Sprintf("%.0f req/s", r.Result.Goodput()),
			itoa(int64(r.ScaleUps)),
			r.Verdict.String())
	}
	t.AddNote("open loop: arrivals fire on the seeded schedule regardless of completions — overload is visible, not self-throttled")
	t.AddNote("sent counts are pure (profile, seed) functions and gate; outcome rates and autoscaler reaction follow scheduler timing")
	return t
}

func runLoadExp(c *bench.Context, o Options) error {
	rows, err := RunLoadBench(c.Ctx, o)
	if err != nil {
		return err
	}
	RenderLoadBench(rows).Render(c.Out)
	for _, r := range rows {
		key := r.Profile
		// Deterministic: the schedule length is a pure (profile, seed)
		// function — gates catch any drift in the thinning sampler or RNG.
		c.RecordValue(key+"/sent", "req", bench.HigherIsBetter, float64(r.Result.Sent))
		// Wall-clock latency spotlights; "s" units self-demote on CPU drift.
		c.RecordValue(key+"/p50-latency", "s", bench.LowerIsBetter, r.Result.Percentile(0.50).Seconds())
		c.RecordValue(key+"/p99-latency", "s", bench.LowerIsBetter, r.Result.Percentile(0.99).Seconds())
		// Scheduler-timing dependent: report-only.
		c.RecordValue(key+"/goodput", "req/s", bench.ReportOnly, r.Result.Goodput())
		c.RecordValue(key+"/timeout-rate", "frac", bench.ReportOnly, frac(r.Result.TimedOut, r.Result.Sent))
		c.RecordValue(key+"/reject-rate", "frac", bench.ReportOnly, frac(r.Result.Rejected, r.Result.Sent))
		c.RecordValue(key+"/scale-ups", "n", bench.ReportOnly, float64(r.ScaleUps))
		c.RecordValue(key+"/max-replicas-live", "n", bench.ReportOnly, float64(r.MaxLive))
		if key == "steady" {
			// Far below capacity with generous bounds: deterministic, gates.
			pass := 0.0
			if r.Verdict.Pass {
				pass = 1.0
			}
			c.RecordValue("steady/slo-pass", "bool", bench.HigherIsBetter, pass)
		} else {
			c.RecordValue(key+"/slo-pass", "bool", bench.ReportOnly, boolVal(r.Verdict.Pass))
		}
	}
	return nil
}

func frac(n, total int) float64 {
	if total == 0 {
		return 0
	}
	return float64(n) / float64(total)
}

func boolVal(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
