package core

import (
	"context"
	"fmt"
	"time"

	"deep500/internal/bench"
	"deep500/internal/compile"
	"deep500/internal/executor"
	"deep500/internal/graph"
	"deep500/internal/metrics"
	"deep500/internal/models"
	"deep500/internal/tensor"
)

// This file implements the "compile" suite experiment: the graph-level
// reproduction of the paper's Use Case 1 (§III-A) — the performance gap
// between a framework dispatching many small ops and one executing a fused
// kernel. It runs each workload's forward pass through an unoptimized and a
// compile-pipeline-optimized executor and records (a) the deterministic
// node-dispatch count per pass, which the CI regression gate always
// enforces, and (b) the wall-clock forward latency, which self-demotes
// across differing CPUs like every "s" metric.

// CompileBenchRow is one (workload, variant) measurement.
type CompileBenchRow struct {
	Workload   string // "mlp" (Dense→Bias→Act) or "lenet" (Conv→Bias→ReLU)
	Variant    string // "baseline", "optimized" or "planned"
	Dispatches int    // operator dispatches in one forward pass (deterministic)
	Fused      int    // chains fused by the pipeline (0 for baseline)
	Seconds    []float64
	Warmup     int
	// SlabBytes / NoReuseBytes describe the planned variant's static memory
	// plan (0 for the others); both are deterministic for a fixed model and
	// batch size.
	SlabBytes, NoReuseBytes int
}

// compileWorkload is one model the experiment exercises.
type compileWorkload struct {
	name  string
	model *graph.Model
	batch int
}

func compileWorkloads(o Options) []compileWorkload {
	batch := 32
	if o.Quick {
		batch = 8
	}
	mlpCfg := models.Config{Classes: 10, Channels: 1, Height: 28, Width: 28, WithHead: true, Seed: o.seed()}
	lenetCfg := mlpCfg
	return []compileWorkload{
		{"mlp", models.MLP(mlpCfg, 256, 128), batch},
		{"lenet", models.LeNet(lenetCfg), batch},
	}
}

// RunCompileBench measures forward dispatch counts and latency with the
// compile pipeline off and on, for an MLP (fused Dense→Bias→Activation
// chains) and LeNet (fused Conv→Bias→ReLU chains). It also cross-checks
// that both variants produce tolerance-equal outputs, failing the
// experiment on divergence. Baseline and optimized samples are interleaved
// round by round — the pairwise methodology of the Fig. 6 experiment — so
// allocator state and CPU-frequency drift hit both variants equally
// instead of biasing whichever was measured last.
func RunCompileBench(ctx context.Context, o Options) ([]CompileBenchRow, error) {
	samples, warmup, iters := 12, 2, 8
	if o.Quick {
		samples, warmup, iters = 6, 1, 4
	}
	var rows []CompileBenchRow
	for _, w := range compileWorkloads(o) {
		rng := tensor.NewRNG(o.seed())
		labels := tensor.New(w.batch)
		for i := 0; i < w.batch; i++ {
			labels.Data()[i] = float32(i % 10)
		}
		feeds := map[string]*tensor.Tensor{
			"x":      tensor.RandNormal(rng, 0, 1, w.batch, w.model.Inputs[0].Shape[1], w.model.Inputs[0].Shape[2], w.model.Inputs[0].Shape[3]),
			"labels": labels,
		}

		// "planned" stacks the static memory plan on the optimized graph, so
		// the experiment isolates what liveness-planned allocation adds on
		// top of fusion.
		variants := []string{"baseline", "optimized", "planned"}
		execs := make(map[string]*executor.Executor, len(variants))
		wrows := make(map[string]*CompileBenchRow, len(variants))
		var ref map[string]*tensor.Tensor
		// The baseline variant must stay unoptimized even when the session
		// itself runs with -opt (Options.Optimize), or the fused-vs-unfused
		// comparison would measure two identical executors.
		oBase := o
		oBase.Optimize = false
		for _, variant := range variants {
			if err := ctx.Err(); err != nil {
				return rows, err
			}
			opts, err := oBase.execOpts()
			if err != nil {
				return rows, err
			}
			fusedChains := 0
			if variant != "baseline" {
				opts = append(opts, executor.WithOptimize(compile.Defaults()))
			}
			if variant == "planned" {
				opts = append(opts, executor.WithMemPlan(true))
			}
			e, err := executor.New(w.model, opts...)
			if err != nil {
				return rows, err
			}
			if rep := e.CompileReport(); rep != nil {
				fusedChains = rep.Fused
			}

			// Deterministic dispatch count: one instrumented pass (which
			// doubles as warmup for the timing rounds below).
			dispatches := 0
			e.Events = &executor.Events{BeforeOp: func(n *graph.Node) { dispatches++ }}
			out, err := e.Inference(ctx, feeds)
			if err != nil {
				return rows, err
			}
			e.Events = nil
			if variant == "baseline" {
				ref = out
			} else {
				for name, r := range ref {
					g, ok := out[name]
					if !ok {
						return rows, fmt.Errorf("compile: optimized %s lost output %q", w.name, name)
					}
					if d := maxAbsDiffT(r, g); d > 1e-4 {
						return rows, fmt.Errorf("compile: %s output %q diverges after optimization: max |Δ| = %g", w.name, name, d)
					}
				}
			}
			execs[variant] = e
			wrows[variant] = &CompileBenchRow{
				Workload: w.name, Variant: variant,
				Dispatches: dispatches, Fused: fusedChains, Warmup: warmup,
			}
		}

		// Interleaved timing rounds.
		for r := 0; r < warmup+samples; r++ {
			for _, variant := range variants {
				if err := ctx.Err(); err != nil {
					return rows, err
				}
				e := execs[variant]
				start := time.Now()
				for i := 0; i < iters; i++ {
					if _, err := e.Inference(ctx, feeds); err != nil {
						return rows, err
					}
				}
				if r >= warmup {
					wrows[variant].Seconds = append(wrows[variant].Seconds,
						time.Since(start).Seconds()/float64(iters))
				}
			}
		}
		for _, variant := range variants {
			if variant == "planned" {
				if plan := execs[variant].MemPlan(); plan != nil {
					wrows[variant].SlabBytes = int(plan.SlabBytes())
					wrows[variant].NoReuseBytes = int(plan.NoReuseBytes())
				}
			}
			rows = append(rows, *wrows[variant])
		}
	}
	return rows, nil
}

// maxAbsDiffT is the ℓ∞ distance between two same-shaped tensors.
func maxAbsDiffT(a, b *tensor.Tensor) float64 {
	var m float64
	for i, v := range a.Data() {
		d := float64(v - b.Data()[i])
		if d < 0 {
			d = -d
		}
		if d > m {
			m = d
		}
	}
	return m
}

// RenderCompileBench renders the compile-pipeline rows.
func RenderCompileBench(rows []CompileBenchRow) *Table {
	t := &Table{Title: "Graph compilation: fused vs unfused forward pass",
		Headers: []string{"Workload", "Variant", "Dispatches/pass", "Fused chains", "Median fwd", "Plan slab"}}
	for _, r := range rows {
		med := metrics.Summarize(r.Seconds).Median
		slab := "—"
		if r.SlabBytes > 0 {
			slab = fmt.Sprintf("%d KiB (%.2fx reuse)", r.SlabBytes/1024,
				float64(r.NoReuseBytes)/float64(r.SlabBytes))
		}
		t.AddRow(r.Workload, r.Variant, itoa(int64(r.Dispatches)), itoa(int64(r.Fused)), fsec(med), slab)
	}
	t.AddNote("mlp: Dense→Bias→Activation fusion (FusedGemmAct); lenet: adds Conv→Bias→ReLU (FusedConvRelu)")
	t.AddNote("planned: optimized graph + liveness-planned activation slab (zero-alloc steady-state forward)")
	t.AddNote("dispatch counts are deterministic and always gate; wall-clock gates only on comparable CPUs")
	return t
}

func runCompileExp(c *bench.Context, o Options) error {
	rows, err := RunCompileBench(c.Ctx, o)
	if err != nil {
		return err
	}
	RenderCompileBench(rows).Render(c.Out)
	med := map[string]float64{}
	for _, r := range rows {
		key := r.Workload + "/" + r.Variant
		c.RecordValue(key+"/dispatches", "nodes", bench.LowerIsBetter, float64(r.Dispatches))
		if r.Variant == "optimized" {
			c.RecordValue(r.Workload+"/fused-chains", "chains", bench.HigherIsBetter, float64(r.Fused))
		}
		if r.Variant == "planned" && r.SlabBytes > 0 {
			// Slab size is deterministic for a fixed model and batch — a
			// planner regression that loses reuse shows up here.
			c.RecordValue(key+"/slab", "B", bench.LowerIsBetter, float64(r.SlabBytes))
			c.RecordValue(key+"/plan-reuse", "x", bench.ReportOnly,
				float64(r.NoReuseBytes)/float64(r.SlabBytes))
		}
		rec := c.RecordSamples(key+"/forward", "s", bench.LowerIsBetter, r.Seconds)
		rec.Warmup = r.Warmup
		med[key] = rec.Stats.Median
	}
	for _, w := range []string{"mlp", "lenet"} {
		if b, ok := med[w+"/baseline"]; ok && med[w+"/optimized"] > 0 {
			c.RecordValue(w+"/speedup", "x", bench.ReportOnly, b/med[w+"/optimized"])
		}
		if b, ok := med[w+"/baseline"]; ok && med[w+"/planned"] > 0 {
			c.RecordValue(w+"/plan-speedup", "x", bench.ReportOnly, b/med[w+"/planned"])
		}
	}
	return nil
}
