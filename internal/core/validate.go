package core

import (
	"deep500/internal/executor"
	"deep500/internal/kernels"
	"deep500/internal/models"
	"deep500/internal/ops"
	"deep500/internal/tensor"
	"deep500/internal/training"
	"deep500/internal/validation"
)

// RunValidationSuite exercises every validation procedure of the paper
// (§III-E, §IV "Validation" subsections) across the stack and returns one
// row per check: Level 0 forward/gradient tests on representative
// operators, Level 1 executor (and backprop) equivalence across backends,
// Level 2 optimizer-trajectory and sampler-bias tests, and Level 2/3
// training convergence.
func RunValidationSuite(o Options) ([]validation.Result, error) {
	rng := tensor.NewRNG(o.seed())
	var results []validation.Result

	// Level 0: forward agreement of conv algorithms, gradient checks.
	x := tensor.RandNormal(rng, 0, 1, 2, 3, 8, 8)
	w := tensor.RandNormal(rng, 0, 0.3, 4, 3, 3, 3)
	results = append(results, validation.TestForward(
		ops.NewConv2D(kernels.ConvWinograd, 1, 1, 1, 1),
		ops.NewConv2D(kernels.ConvDirect, 1, 1, 1, 1),
		[]*tensor.Tensor{x, w}, 1e-3))
	gradOps := []struct {
		name   string
		op     ops.Operator
		inputs []*tensor.Tensor
		check  []bool
	}{
		{"conv", ops.NewConv2D(kernels.ConvIm2Col, 1, 1, 1, 1),
			[]*tensor.Tensor{x.Clone(), w.Clone()}, []bool{true, true}},
		{"gemm", ops.NewGemm(kernels.GemmBlocked, false, false),
			[]*tensor.Tensor{tensor.RandNormal(rng, 0, 1, 4, 5), tensor.RandNormal(rng, 0, 1, 5, 3)},
			[]bool{true, true}},
		{"rnn", ops.NewRNNTanhCell(), []*tensor.Tensor{
			tensor.RandNormal(rng, 0, 1, 2, 3), tensor.RandNormal(rng, 0, 0.5, 2, 4),
			tensor.RandNormal(rng, 0, 0.4, 3, 4), tensor.RandNormal(rng, 0, 0.4, 4, 4),
			tensor.RandNormal(rng, 0, 0.1, 4)},
			[]bool{true, true, true, true, true}},
		{"softmax", ops.NewSoftmax(), []*tensor.Tensor{tensor.RandNormal(rng, 0, 1, 3, 5)}, []bool{true}},
	}
	for _, g := range gradOps {
		results = append(results, validation.TestGradient(g.op, g.inputs, g.check, validation.GradientCheckConfig{}))
	}

	// Level 1: executors on identical models must agree.
	cfg := models.Config{Classes: 10, Channels: 1, Height: 28, Width: 28, WithHead: true, Seed: o.seed()}
	e1 := executor.MustNew(models.LeNet(cfg))
	e2 := executor.MustNew(models.LeNet(cfg))
	feeds := map[string]*tensor.Tensor{
		"x":      tensor.RandNormal(rng, 0, 1, 2, 1, 28, 28),
		"labels": tensor.From([]float32{1, 7}, 2),
	}
	results = append(results, validation.TestExecutor(e1, e2, feeds, 1e-5))
	results = append(results, validation.TestExecutorBackprop(e1, e2, feeds, "loss", 1e-4))

	// Level 2: optimizer trajectory (fused vs reference Adam must agree),
	// sampler bias, training convergence.
	mk := func(ts training.ThreeStep) training.Optimizer {
		m := models.MLP(models.Config{Classes: 4, Channels: 1, Height: 4, Width: 4, WithHead: true, Seed: o.seed()}, 32)
		e := executor.MustNew(m)
		e.SetTraining(true)
		return training.NewDriver(e, ts)
	}
	ds, testDS := training.SyntheticSplit(256, 64, 4, []int{1, 4, 4}, 0.3, o.seed())
	s := training.NewSequentialSampler(ds, 32)
	var batches []*training.Batch
	for i := 0; i < 5; i++ {
		batches = append(batches, s.Next())
	}
	trajRes, _ := validation.TestOptimizer(mk(training.NewFusedAdam(0.01)), mk(training.NewAdam(0.01)), batches, 1e-3)
	results = append(results, trajRes)

	sampRes, _ := validation.TestSampler(training.NewSequentialSampler(ds, 32), 0.05)
	results = append(results, sampRes)

	report, err := validation.TestTraining(mk(training.NewMomentum(0.05, 0.9)),
		training.NewShuffleSampler(ds, 32, o.seed()),
		training.NewSequentialSampler(testDS, 32), 4, 0.85)
	if err != nil {
		return results, err
	}
	trainRes := validation.Result{Name: "test_training", Passed: report.Converged}
	if !report.Converged {
		trainRes.Details = "did not reach target accuracy"
	}
	results = append(results, trainRes)
	return results, nil
}
