// Package core is the top of the Deep500-Go meta-framework: it wires the
// four levels together into the experiment harness that regenerates every
// table and figure of the paper's evaluation (§V), and encodes the paper's
// survey tables (Table I, Table II, Fig. 2) as data.
package core

import (
	"fmt"
	"io"
	"strings"
)

// Table is a printable result table: the common output format of all
// experiments.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a row of cells.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// AddNote appends a footnote.
func (t *Table) AddNote(n string) { t.Notes = append(t.Notes, n) }

// Render writes the table in aligned plain text.
func (t *Table) Render(w io.Writer) {
	fmt.Fprintf(w, "\n== %s ==\n", t.Title)
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = pad(c, widths[i])
			} else {
				parts[i] = c
			}
		}
		fmt.Fprintln(w, "  "+strings.Join(parts, "  "))
	}
	line(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// Fmt helpers for cells.
func fsec(s float64) string {
	switch {
	case s == 0:
		return "0"
	case s < 1e-3:
		return fmt.Sprintf("%.1f µs", s*1e6)
	case s < 1:
		return fmt.Sprintf("%.2f ms", s*1e3)
	default:
		return fmt.Sprintf("%.3f s", s)
	}
}

func fbytes(b int64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.3f GB", float64(b)/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.2f MB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1f KB", float64(b)/(1<<10))
	default:
		return fmt.Sprintf("%d B", b)
	}
}

func fpct(f float64) string { return fmt.Sprintf("%.2f%%", f*100) }
