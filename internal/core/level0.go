package core

import (
	"context"
	"fmt"
	"time"

	"deep500/internal/compile"
	"deep500/internal/executor"
	"deep500/internal/frameworks"
	"deep500/internal/graph"
	"deep500/internal/kernels"
	"deep500/internal/metrics"
	"deep500/internal/tensor"
)

// Options configure experiment runs.
type Options struct {
	// Quick shrinks problem sizes and repetition counts so the full suite
	// runs in seconds (used by tests); the default reproduces paper-scale
	// measurement methodology (30 reruns, median + nonparametric CI).
	Quick bool
	// Seed drives all generators.
	Seed uint64
	// Exec selects the graph-execution backend for every executor an
	// experiment constructs: "sequential" (default) or "parallel".
	Exec string
	// Arena installs a fresh tensor buffer pool into every executor an
	// experiment constructs (mirrors d500train's -arena flag).
	Arena bool
	// Optimize runs the compile pipeline (fusion/folding/DCE) over every
	// model an experiment constructs (mirrors the -opt flag).
	Optimize bool
	// Gemm overrides the GEMM kernel algorithm on every GEMM-backed operator
	// an experiment constructs (mirrors the -gemm flag): "naive", "blocked",
	// "parallel" or "packed". Empty keeps the registry default (packed).
	Gemm string
	// MemPlan enables liveness-based static memory planning of forward
	// activations in every executor an experiment constructs (mirrors the
	// -plan flag).
	MemPlan bool
}

// execOpts resolves Exec into executor construction options. An invalid
// name returns an error: experiment results must never be silently
// attributed to a backend that did not run, and the caller (d500.New or
// cmd flag validation) surfaces the error instead of panicking.
func (o Options) execOpts() ([]executor.Option, error) {
	b, err := executor.BackendByName(o.Exec)
	if err != nil {
		return nil, err
	}
	opts := []executor.Option{executor.WithBackend(b)}
	if o.Arena {
		opts = append(opts, executor.WithArena(tensor.NewArena()))
	}
	if o.Optimize {
		opts = append(opts, executor.WithOptimize(compile.Defaults()))
	}
	if o.Gemm != "" {
		algo, ok := kernels.ParseGemmAlgo(o.Gemm)
		if !ok {
			return nil, fmt.Errorf("core: unknown GEMM algorithm %q (naive, blocked, parallel, packed)", o.Gemm)
		}
		opts = append(opts, executor.WithGemm(algo))
	}
	if o.MemPlan {
		opts = append(opts, executor.WithMemPlan(true))
	}
	return opts, nil
}

// Validate checks that the options name a known execution backend and, when
// set, a known GEMM algorithm.
func (o Options) Validate() error {
	if _, err := executor.BackendByName(o.Exec); err != nil {
		return err
	}
	if o.Gemm != "" {
		if _, ok := kernels.ParseGemmAlgo(o.Gemm); !ok {
			return fmt.Errorf("core: unknown GEMM algorithm %q (naive, blocked, parallel, packed)", o.Gemm)
		}
	}
	return nil
}

// measureIters is how many back-to-back invocations one timing sample
// averages over, suppressing scheduler and allocator jitter on small
// problems.
const measureIters = 4

func (o Options) reruns() int {
	if o.Quick {
		return 5
	}
	return metrics.DefaultReruns
}

func (o Options) seed() uint64 {
	if o.Seed == 0 {
		return 500
	}
	return o.Seed
}

// convModel wraps a single Conv node into a model for a framework backend.
func convModel(p ConvProblem, seed uint64) *graph.Model {
	m := graph.NewModel("conv-bench")
	rng := tensor.NewRNG(seed)
	m.AddInput("x", -1, p.C, p.H, p.W)
	m.AddInitializer("w", tensor.HeInit(rng, p.C*p.K*p.K, p.M, p.C, p.K, p.K))
	m.AddNode(graph.NewNode("Conv", "conv", []string{"x", "w"}, []string{"y"},
		graph.IntsAttr("strides", int64(p.Stride), int64(p.Stride)),
		graph.IntsAttr("pads", int64(p.Pad), int64(p.Pad)),
		graph.IntsAttr("kernel_shape", int64(p.K), int64(p.K))))
	m.AddOutput("y")
	return m
}

func gemmModel(p GemmProblem, seed uint64) *graph.Model {
	m := graph.NewModel("gemm-bench")
	rng := tensor.NewRNG(seed)
	m.AddInput("x", -1, p.K)
	m.AddInitializer("w", tensor.XavierInit(rng, p.K, p.N, p.K, p.N))
	m.AddNode(graph.NewNode("MatMul", "mm", []string{"x", "w"}, []string{"y"}))
	m.AddOutput("y")
	return m
}

// Fig6Row is one measurement series of the Level 0 experiment. Summary
// retains the raw samples so the row can be exported into the
// machine-readable benchmark schema (internal/bench).
type Fig6Row struct {
	Backend string
	Mode    string // "native" or "deep500"
	Summary metrics.Distribution
}

// Fig6Result holds the operator-benchmark outcome.
type Fig6Result struct {
	Kind      string // "conv" or "gemm"
	All       []Fig6Row
	Spotlight []Fig6Row
}

// RunFig6Conv reproduces Fig. 6a: convolution runtime across backends with
// the DeepBench bare-kernel baseline, measured both natively and under
// Deep500 instrumentation.
func RunFig6Conv(ctx context.Context, o Options) (Fig6Result, error) {
	return runFig6(ctx, "conv", DeepBenchConv(o.Quick), nil, o)
}

// RunFig6Gemm reproduces Fig. 6b: matrix-multiplication runtime.
func RunFig6Gemm(ctx context.Context, o Options) (Fig6Result, error) {
	return runFig6(ctx, "gemm", nil, DeepBenchGemm(o.Quick), o)
}

func runFig6(ctx context.Context, kind string, convs []ConvProblem, gemms []GemmProblem, o Options) (Fig6Result, error) {
	res := Fig6Result{Kind: kind}
	reruns := o.reruns()
	backends := frameworks.All()

	nProblems := len(convs) + len(gemms)
	for _, p := range backends {
		modes := []string{"native", "deep500"}
		if p.Name == "deepbench" {
			modes = modes[:1] // the baseline is by definition uninstrumented
		}
		all := make(map[string]*metrics.Sampler, len(modes))
		spot := make(map[string]*metrics.Sampler, len(modes))
		for _, mode := range modes {
			all[mode] = metrics.NewSampler(p.Name+"/"+mode, "s").WithReruns(reruns)
			spot[mode] = metrics.NewSampler(p.Name+"/"+mode, "s").WithReruns(reruns)
		}
		for pi := 0; pi < nProblems; pi++ {
			runners := make(map[string]func() (float64, error), len(modes))
			for _, mode := range modes {
				var err error
				if kind == "conv" {
					runners[mode], err = convRunner(ctx, convs[pi], p, mode == "deep500", o)
				} else {
					runners[mode], err = gemmRunner(ctx, gemms[pi], p, mode == "deep500", o)
				}
				if err != nil {
					return res, err
				}
				if _, err := runners[mode](); err != nil { // warmup
					return res, err
				}
			}
			// Interleave native and instrumented samples so both modes see
			// the same allocator/GC conditions (pairwise methodology).
			for r := 0; r < reruns; r++ {
				for _, mode := range modes {
					v, err := runners[mode]()
					if err != nil {
						return res, err
					}
					if pi == 0 {
						spot[mode].Record(v)
					} else {
						all[mode].Record(v)
					}
				}
			}
		}
		for _, mode := range modes {
			res.All = append(res.All, Fig6Row{Backend: p.Name, Mode: mode, Summary: all[mode].Distribution()})
			res.Spotlight = append(res.Spotlight, Fig6Row{Backend: p.Name, Mode: mode, Summary: spot[mode].Distribution()})
		}
	}
	return res, nil
}

// convRunner builds a measurement closure for one conv problem on one
// backend. The DeepBench profile calls the kernel directly with no graph.
func convRunner(ctx context.Context, p ConvProblem, prof frameworks.Profile, instrumented bool, o Options) (func() (float64, error), error) {
	rng := tensor.NewRNG(o.seed())
	if prof.Name == "deepbench" {
		s := kernels.ConvShape{N: p.N, C: p.C, H: p.H, W: p.W, M: p.M,
			KH: p.K, KW: p.K, StrideH: p.Stride, StrideW: p.Stride, PadH: p.Pad, PadW: p.Pad}
		in := tensor.RandNormal(rng, 0, 1, p.N, p.C, p.H, p.W)
		w := tensor.RandNormal(rng, 0, 0.2, p.M, p.C, p.K, p.K)
		out := make([]float32, s.OutputSize())
		return func() (float64, error) {
			if err := ctx.Err(); err != nil {
				return 0, err
			}
			start := time.Now()
			for i := 0; i < measureIters; i++ {
				kernels.Conv2D(kernels.ConvIm2Col, s, in.Data(), w.Data(), nil, out)
			}
			return time.Since(start).Seconds() / measureIters, nil
		}, nil
	}
	prof.MemoryCapacity = 0 // benchmarking, not OOM testing
	execOpts, err := o.execOpts()
	if err != nil {
		return nil, err
	}
	e, err := prof.NewExecutor(convModel(p, o.seed()), execOpts...)
	if err != nil {
		return nil, err
	}
	if instrumented {
		fo := metrics.NewFrameworkOverhead()
		e.Events = fo.Events()
	}
	x := tensor.RandNormal(rng, 0, 1, p.N, p.C, p.H, p.W)
	feeds := map[string]*tensor.Tensor{"x": x}
	return func() (float64, error) {
		start := time.Now()
		for i := 0; i < measureIters; i++ {
			if _, err := e.Inference(ctx, feeds); err != nil {
				return 0, err
			}
		}
		return time.Since(start).Seconds() / measureIters, nil
	}, nil
}

func gemmRunner(ctx context.Context, p GemmProblem, prof frameworks.Profile, instrumented bool, o Options) (func() (float64, error), error) {
	rng := tensor.NewRNG(o.seed())
	if prof.Name == "deepbench" {
		a := tensor.RandNormal(rng, 0, 1, p.M, p.K)
		b := tensor.RandNormal(rng, 0, 1, p.K, p.N)
		c := make([]float32, p.M*p.N)
		return func() (float64, error) {
			if err := ctx.Err(); err != nil {
				return 0, err
			}
			start := time.Now()
			for i := 0; i < measureIters; i++ {
				kernels.Gemm(kernels.GemmParallel, a.Data(), b.Data(), c, p.M, p.K, p.N)
			}
			return time.Since(start).Seconds() / measureIters, nil
		}, nil
	}
	prof.MemoryCapacity = 0
	execOpts, err := o.execOpts()
	if err != nil {
		return nil, err
	}
	e, err := prof.NewExecutor(gemmModel(p, o.seed()), execOpts...)
	if err != nil {
		return nil, err
	}
	if instrumented {
		fo := metrics.NewFrameworkOverhead()
		e.Events = fo.Events()
	}
	x := tensor.RandNormal(rng, 0, 1, p.M, p.K)
	feeds := map[string]*tensor.Tensor{"x": x}
	return func() (float64, error) {
		start := time.Now()
		for i := 0; i < measureIters; i++ {
			if _, err := e.Inference(ctx, feeds); err != nil {
				return 0, err
			}
		}
		return time.Since(start).Seconds() / measureIters, nil
	}, nil
}

// Fig6AccRow is one backend's accuracy-vs-reference measurement.
type Fig6AccRow struct {
	Backend    string
	MedianLInf float64
}

// RunFig6Accuracy reproduces the §V-B correctness check: the median ℓ∞
// difference between each backend's convolution outputs and the fp32
// direct-convolution reference across the problem set (the paper reports
// ≈7·10⁻⁴ against its frameworks).
func RunFig6Accuracy(o Options) []Fig6AccRow {
	problems := DeepBenchConv(o.Quick)
	var rows []Fig6AccRow
	for _, algo := range []struct {
		name string
		a    kernels.ConvAlgo
	}{{"im2col(tfgo/cf2go)", kernels.ConvIm2Col}, {"winograd(torchgo)", kernels.ConvWinograd}} {
		diffs := metrics.NewSampler(algo.name, "linf")
		for _, p := range problems {
			s := kernels.ConvShape{N: p.N, C: p.C, H: p.H, W: p.W, M: p.M,
				KH: p.K, KW: p.K, StrideH: p.Stride, StrideW: p.Stride, PadH: p.Pad, PadW: p.Pad}
			rng := tensor.NewRNG(o.seed() + uint64(p.C))
			in := tensor.RandNormal(rng, 0, 1, s.InputSize())
			w := tensor.RandNormal(rng, 0, 0.2, s.WeightSize())
			ref := make([]float32, s.OutputSize())
			got := make([]float32, s.OutputSize())
			kernels.Conv2D(kernels.ConvDirect, s, in.Data(), w.Data(), nil, ref)
			a := algo.a
			if a == kernels.ConvWinograd && !s.SupportsWinograd() {
				a = kernels.ConvIm2Col
			}
			kernels.Conv2D(a, s, in.Data(), w.Data(), nil, got)
			var linf float64
			for i := range got {
				d := float64(got[i]) - float64(ref[i])
				if d < 0 {
					d = -d
				}
				if d > linf {
					linf = d
				}
			}
			diffs.Record(linf)
		}
		rows = append(rows, Fig6AccRow{Backend: algo.name, MedianLInf: diffs.Summarize().Median})
	}
	return rows
}

// RenderFig6 renders a Fig6Result.
func RenderFig6(res Fig6Result) *Table {
	title := "Fig. 6a: convolution performance (all kernels + spotlight)"
	spotDesc := "N=16 C=3 H=W=224 K=3x3"
	if res.Kind == "gemm" {
		title = "Fig. 6b: GEMM performance (all kernels + spotlight)"
		spotDesc = "M=K=2560 N=64"
	}
	t := &Table{Title: title,
		Headers: []string{"Backend", "Mode", "Median(all)", "CI95(all)", "Median(spotlight)"}}
	spotIdx := map[string]metrics.Distribution{}
	for _, r := range res.Spotlight {
		spotIdx[r.Backend+"/"+r.Mode] = r.Summary
	}
	for _, r := range res.All {
		spot := spotIdx[r.Backend+"/"+r.Mode]
		t.AddRow(r.Backend, r.Mode, fsec(r.Summary.Median),
			fmt.Sprintf("[%s, %s]", fsec(r.Summary.CI95Low), fsec(r.Summary.CI95High)),
			fsec(spot.Median))
	}
	t.AddNote("spotlight shape: " + spotDesc + " (scaled in -quick mode)")
	t.AddNote("expected shape: deepbench fastest; tfgo slowest framework; deep500 mode within CI of native")
	return t
}
