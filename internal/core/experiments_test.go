package core

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"deep500/internal/bench"
)

func quickSuite() *bench.Suite {
	s := bench.NewSuite()
	RegisterExperiments(s, quick)
	return s
}

func TestRegistryCoversEveryExperiment(t *testing.T) {
	ids := quickSuite().IDs()
	want := []string{"tables", "fig2", "fig6conv", "fig6gemm", "fig6acc", "fig7",
		"overhead", "fig8", "table3", "fig9", "fig10", "fig11", "fig12strong",
		"fig12weak", "validate", "backend", "compile", "serve", "gemm", "dist", "load"}
	if len(ids) != len(want) {
		t.Fatalf("ids = %v", ids)
	}
	for i, id := range want {
		if ids[i] != id {
			t.Fatalf("id[%d] = %q, want %q", i, ids[i], id)
		}
	}
}

func TestTablesExperimentEmitsRecordsAndRenders(t *testing.T) {
	var human bytes.Buffer
	rep, err := quickSuite().Run(context.Background(), []string{"tables", "fig2"},
		bench.RunConfig{Out: &human, Env: bench.Environment{NumCPU: 8, CPUModel: "test"}})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(human.String(), "Table I") || !strings.Contains(human.String(), "Fig. 2") {
		t.Fatal("human rendering missing")
	}
	if len(rep.Experiments) != 2 {
		t.Fatalf("experiments: %d", len(rep.Experiments))
	}
	recs := map[string]bench.Record{}
	for _, r := range rep.Experiments[0].Records {
		recs[r.Name] = r
	}
	if recs["tableI/systems"].Stats.Median != float64(len(TableI)) {
		t.Fatalf("tableI/systems: %+v", recs["tableI/systems"].Stats)
	}
	render, ok := recs["render/tables"]
	if !ok || render.Unit != "s" || render.Stats.N == 0 || render.Stats.Median <= 0 {
		t.Fatalf("render/tables: %+v", render)
	}
	if render.Warmup == 0 {
		t.Fatal("render timing must discard warmup samples")
	}
}

// TestSelfCompareNeutralAndInjectedSlowdownRegresses is the acceptance
// scenario end-to-end: a report compared against itself is all-neutral and
// exits clean; doubling one timing sample set classifies it regressed.
func TestSelfCompareNeutralAndInjectedSlowdownRegresses(t *testing.T) {
	env := bench.Environment{NumCPU: 8, GOMAXPROCS: 8, CPUModel: "test"}
	rep, err := quickSuite().Run(context.Background(), []string{"tables"}, bench.RunConfig{Env: env})
	if err != nil {
		t.Fatal(err)
	}
	self := bench.Compare(rep, rep, bench.CompareConfig{})
	if self.Regressed != 0 || self.Improved != 0 {
		t.Fatalf("self-compare not neutral: %+v", self.Deltas)
	}

	// Rebuild the report with a 2× slowdown injected into the wall-clock
	// record, as a CI regression would appear.
	slow, err := quickSuite().Run(context.Background(), []string{"tables"}, bench.RunConfig{Env: env})
	if err != nil {
		t.Fatal(err)
	}
	injected := false
	for i := range slow.Experiments[0].Records {
		rec := &slow.Experiments[0].Records[i]
		if rec.Name == "render/tables" {
			for j := range rec.Samples {
				rec.Samples[j] *= 2
			}
			rec.Finalize()
			injected = true
		}
	}
	if !injected {
		t.Fatal("render/tables record missing")
	}
	cmp := bench.Compare(rep, slow, bench.CompareConfig{})
	found := false
	for _, d := range cmp.Deltas {
		if d.Metric == "render/tables" {
			found = true
			if d.Class != bench.ClassRegressed {
				t.Fatalf("injected slowdown classified %q (%+v)", d.Class, d)
			}
		}
	}
	if !found || cmp.Regressed == 0 {
		t.Fatalf("regression not detected: %+v", cmp)
	}

	// The same injection on a single-CPU environment is report-only — the
	// CI de-flake contract for quick-mode bench jobs.
	oneCPU := env
	oneCPU.NumCPU = 1
	repOne, slowOne := *rep, *slow
	repOne.Env, slowOne.Env = oneCPU, oneCPU
	if c := bench.Compare(&repOne, &slowOne, bench.CompareConfig{}); c.Regressed != 0 {
		t.Fatalf("single-CPU env must not gate wall clock: %+v", c.Deltas)
	}
}

func TestBackendExperimentRecordsAllocs(t *testing.T) {
	var human bytes.Buffer
	rep, err := quickSuite().Run(context.Background(), []string{"backend"},
		bench.RunConfig{Out: &human, Env: bench.Environment{NumCPU: 8}})
	if err != nil {
		t.Fatal(err)
	}
	recs := map[string]bench.Record{}
	for _, r := range rep.Experiments[0].Records {
		recs[r.Name] = r
	}
	for _, name := range []string{"sequential/forward", "parallel/forward",
		"parallel+arena/forward", "sequential+arena/forward",
		"sequential/train-step", "parallel/train-step", "parallel+arena/train-step"} {
		r, ok := recs[name]
		if !ok {
			t.Fatalf("missing record %q (have %v)", name, human.String())
		}
		if r.Stats.N == 0 || r.Stats.Median <= 0 {
			t.Fatalf("%s: empty timing %+v", name, r.Stats)
		}
		if r.Stats.BytesPerOp <= 0 {
			t.Fatalf("%s: no allocator counters: %+v", name, r.Stats)
		}
	}
	if !strings.Contains(human.String(), "micro-benchmarks") {
		t.Fatal("backend table not rendered")
	}
}
