package core

import (
	"context"
	"fmt"
	"time"

	"deep500/internal/bench"
	"deep500/internal/kernels"
	"deep500/internal/metrics"
	"deep500/internal/tensor"
)

// This file implements the "gemm" suite experiment: a square-size sweep of
// the GEMM kernel algorithms (blocked, parallel, packed), benchmarking the
// BLIS-style packed register-tiled kernel against its predecessors. Every
// algorithm is conformance-checked against a naive triple-loop reference at
// every size — the check count is a deterministic gating record, while
// wall-clock samples self-demote across differing CPUs like every "s"
// metric. The packed-vs-blocked speedup is recorded per size (report-only:
// it is a ratio of two noisy medians).

// GemmAlgoBenchRow is one (size, algorithm) measurement series.
type GemmAlgoBenchRow struct {
	Size    int // square problem: m = k = n = Size
	Algo    string
	Seconds []float64
	Warmup  int
	LInf    float64 // ℓ∞ distance to the naive reference (deterministic)
}

func gemmBenchSizes(quick bool) []int {
	if quick {
		return []int{64, 128}
	}
	return []int{128, 256, 512}
}

// gemmBenchAlgos are the swept implementations, in presentation order.
var gemmBenchAlgos = []kernels.GemmAlgo{kernels.GemmBlocked, kernels.GemmParallel, kernels.GemmPacked}

// RunGemmAlgoBench sweeps the GEMM algorithms over square problems. Timing
// rounds are interleaved across algorithms (the pairwise methodology of the
// Fig. 6 experiment) so allocator state and CPU-frequency drift hit every
// algorithm equally.
func RunGemmAlgoBench(ctx context.Context, o Options) ([]GemmAlgoBenchRow, error) {
	samples, warmup, iters := 10, 2, 3
	if o.Quick {
		samples, warmup, iters = 5, 1, 2
	}
	var rows []GemmAlgoBenchRow
	for _, n := range gemmBenchSizes(o.Quick) {
		rng := tensor.NewRNG(o.seed() + uint64(n))
		a := tensor.RandNormal(rng, 0, 1, n, n).Data()
		b := tensor.RandNormal(rng, 0, 1, n, n).Data()
		ref := make([]float32, n*n)
		kernels.Gemm(kernels.GemmNaive, a, b, ref, n, n, n)

		out := make(map[kernels.GemmAlgo][]float32, len(gemmBenchAlgos))
		wrows := make(map[kernels.GemmAlgo]*GemmAlgoBenchRow, len(gemmBenchAlgos))
		for _, algo := range gemmBenchAlgos {
			if err := ctx.Err(); err != nil {
				return rows, err
			}
			c := make([]float32, n*n)
			kernels.Gemm(algo, a, b, c, n, n, n)
			var linf float64
			for i, v := range c {
				d := float64(v - ref[i])
				if d < 0 {
					d = -d
				}
				if d > linf {
					linf = d
				}
			}
			out[algo] = c
			wrows[algo] = &GemmAlgoBenchRow{Size: n, Algo: algo.String(), Warmup: warmup, LInf: linf}
		}

		for r := 0; r < warmup+samples; r++ {
			for _, algo := range gemmBenchAlgos {
				if err := ctx.Err(); err != nil {
					return rows, err
				}
				c := out[algo]
				start := time.Now()
				for i := 0; i < iters; i++ {
					kernels.Gemm(algo, a, b, c, n, n, n)
				}
				if r >= warmup {
					wrows[algo].Seconds = append(wrows[algo].Seconds,
						time.Since(start).Seconds()/float64(iters))
				}
			}
		}
		for _, algo := range gemmBenchAlgos {
			rows = append(rows, *wrows[algo])
		}
	}
	return rows, nil
}

// gemmConformanceTol is the ℓ∞ budget against the naive reference: float32
// summation-order error grows with k, and 512-deep dot products of unit
// normals stay well under this bound for every blocking scheme.
const gemmConformanceTol = 1e-3

// RenderGemmAlgoBench renders the sweep with per-size speedups over the
// blocked baseline.
func RenderGemmAlgoBench(rows []GemmAlgoBenchRow) *Table {
	t := &Table{Title: "GEMM kernels: packed register-tiled vs blocked (square sweep)",
		Headers: []string{"Size", "Algorithm", "Median", "GFLOP/s", "vs blocked", "l-inf vs naive"}}
	blocked := map[int]float64{}
	for _, r := range rows {
		if r.Algo == kernels.GemmBlocked.String() {
			blocked[r.Size] = metrics.Summarize(r.Seconds).Median
		}
	}
	for _, r := range rows {
		med := metrics.Summarize(r.Seconds).Median
		flops := float64(kernels.GemmFLOPs(r.Size, r.Size, r.Size))
		speedup := "—"
		if b, ok := blocked[r.Size]; ok && med > 0 && r.Algo != kernels.GemmBlocked.String() {
			speedup = fmt.Sprintf("%.2fx", b/med)
		}
		t.AddRow(itoa(int64(r.Size)), r.Algo, fsec(med),
			fmt.Sprintf("%.2f", flops/med/1e9), speedup, fmt.Sprintf("%.3g", r.LInf))
	}
	t.AddNote("packed: MR×NR register micro-tiles over panel-packed operands, transposes folded into packing")
	t.AddNote("conformance counts are deterministic and always gate; wall-clock gates only on comparable CPUs")
	return t
}

func runGemmExp(c *bench.Context, o Options) error {
	rows, err := RunGemmAlgoBench(c.Ctx, o)
	if err != nil {
		return err
	}
	RenderGemmAlgoBench(rows).Render(c.Out)
	conformOK := 0
	med := map[string]float64{}
	for _, r := range rows {
		key := fmt.Sprintf("%d/%s", r.Size, r.Algo)
		rec := c.RecordSamples(key, "s", bench.LowerIsBetter, r.Seconds)
		rec.Warmup = r.Warmup
		rec.Work = kernels.GemmFLOPs(r.Size, r.Size, r.Size)
		rec.Finalize()
		med[key] = rec.Stats.Median
		if r.LInf <= gemmConformanceTol {
			conformOK++
		} else {
			return fmt.Errorf("gemm: %s diverges from naive reference at %d³: l-inf = %g", r.Algo, r.Size, r.LInf)
		}
	}
	for _, n := range gemmBenchSizes(o.Quick) {
		b := med[fmt.Sprintf("%d/%s", n, kernels.GemmBlocked)]
		p := med[fmt.Sprintf("%d/%s", n, kernels.GemmPacked)]
		if b > 0 && p > 0 {
			c.RecordValue(fmt.Sprintf("%d/packed-speedup", n), "x", bench.ReportOnly, b/p)
		}
	}
	c.RecordValue("conformance-ok", "checks", bench.HigherIsBetter, float64(conformOK))
	return nil
}
