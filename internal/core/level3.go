package core

import (
	"fmt"
	"time"

	"deep500/internal/mpi"
)

// ResNet-50 data-parallel parameters for the scaling simulation.
const (
	resnet50Params   = 25_600_000
	resnet50GradB    = int64(resnet50Params) * 4
	imagesPerSecP100 = 250.0 // ≈ P100 ResNet-50 fwd+bwd throughput
)

// Cost profiles: "C++" custom operators with direct GPU pointers vs
// "Python" reference bindings that stage through NumPy and host memory
// (§V-E: the C++ DSGD "is almost an order of magnitude faster than its
// Python counterpart, which undergoes conversions to/from NumPy arrays").
func cppProfile() mpi.CostModel {
	return mpi.CostModel{
		Latency: 1500, Bandwidth: 10e9,
		SendOverhead: 500, PerMessageCPU: 5 * time.Microsecond,
		HostDeviceBandwidth: 50e9, // GPUDirect-style
	}
}

func pythonProfile() mpi.CostModel {
	return mpi.CostModel{
		Latency: 1500, Bandwidth: 10e9,
		SendOverhead: 500, PerMessageCPU: 2 * time.Millisecond,
		HostDeviceBandwidth: 2e9, // synchronous GPU→host→NumPy staging
	}
}

// Fig12Row is one (scheme, nodes) scaling measurement.
type Fig12Row struct {
	Scheme     string
	Nodes      int
	Throughput float64 // images per simulated second
	PerNodeGB  float64 // communicated data per node
	Failed     string  // non-empty: observed failure (paper replication)
}

// fig12Scheme describes one distributed optimizer variant for the scaling
// simulation. Communication is executed for real over the goroutine ranks
// (small live buffers, ResNet-50-sized charges); compute advances virtual
// time by the P100 model.
type fig12Scheme struct {
	name string
	cost mpi.CostModel
	// run executes iters training steps of the scheme on rank r with the
	// given per-node batch.
	run func(r *mpi.Rank, iters, batchPerNode int)
	// centralized marks parameter-server schemes (rank 0 is the server and
	// contributes no images).
	centralized bool
	// failsAt emulates failures the paper observed at specific scales
	// (TF-PS crash, Horovod divergence at 256 nodes).
	failsAt map[int]string
}

func computeStep(r *mpi.Rank, batchPerNode int) {
	r.Compute(time.Duration(float64(batchPerNode) / imagesPerSecP100 * float64(time.Second)))
}

// liveBuf is the small real payload carried by simulated large messages.
func liveBuf() []float32 { return make([]float32, 256) }

func fig12Schemes(staleness int) []fig12Scheme {
	ring := func(cost mpi.CostModel) func(*mpi.Rank, int, int) {
		return func(r *mpi.Rank, iters, batch int) {
			buf := liveBuf()
			for i := 0; i < iters; i++ {
				computeStep(r, batch)
				r.AllreduceSum(mpi.AllreduceRing, buf, resnet50GradB)
			}
		}
	}
	psSync := func(r *mpi.Rank, iters, batch int) {
		p := r.Size()
		if r.ID() == 0 { // server
			for i := 0; i < iters; i++ {
				for w := 1; w < p; w++ {
					r.Recv(w)
				}
				for w := 1; w < p; w++ {
					r.Send(w, liveBuf(), resnet50GradB)
				}
			}
			return
		}
		for i := 0; i < iters; i++ {
			computeStep(r, batch)
			r.Send(0, liveBuf(), resnet50GradB)
			r.Recv(0)
		}
	}
	psAsync := func(r *mpi.Rank, iters, batch int) {
		p := r.Size()
		if r.ID() == 0 {
			for n := 0; n < (p-1)*iters; n++ {
				_, src := r.RecvAny()
				r.Send(src, liveBuf(), resnet50GradB)
			}
			return
		}
		for i := 0; i < iters; i++ {
			computeStep(r, batch)
			r.Send(0, liveBuf(), resnet50GradB)
			r.Recv(0)
		}
	}
	dpsgd := func(r *mpi.Rank, iters, batch int) {
		p := r.Size()
		for i := 0; i < iters; i++ {
			computeStep(r, batch)
			if p == 1 {
				continue
			}
			left, right := (r.ID()-1+p)%p, (r.ID()+1)%p
			r.Send(right, liveBuf(), resnet50GradB)
			r.Send(left, liveBuf(), resnet50GradB)
			r.Recv(left)
			r.Recv(right)
		}
	}
	sparse := func(r *mpi.Rank, iters, batch int) {
		// SparCML-style: top-10% selection (charged as filter compute) then
		// recursive-doubling exchange of a densifying sparse vector.
		const density = 0.1
		filter := time.Duration(float64(resnet50Params) / 400e6 * float64(time.Second)) // selection pass
		for i := 0; i < iters; i++ {
			computeStep(r, batch)
			r.Compute(filter)
			nnz := int64(float64(resnet50Params) * density)
			for mask := 1; mask < r.Size(); mask <<= 1 {
				partner := r.ID() ^ mask
				bytes := nnz * 8 // index+value per entry
				r.Send(partner, liveBuf(), bytes)
				r.Recv(partner)
				// densification: the union roughly doubles until saturation
				nnz *= 2
				if nnz > int64(resnet50Params) {
					nnz = int64(resnet50Params)
				}
			}
		}
	}
	mavg := func(r *mpi.Rank, iters, batch int) {
		buf := liveBuf()
		for i := 0; i < iters; i++ {
			computeStep(r, batch)
			// model averaging communicates parameters, not gradients
			r.AllreduceSum(mpi.AllreduceRing, buf, resnet50GradB)
		}
	}
	_ = staleness
	return []fig12Scheme{
		{name: "CDSGD", cost: cppProfile(), run: ring(cppProfile())},
		{name: "Horovod", cost: cppProfile(), run: ring(cppProfile()),
			failsAt: map[int]string{256: "exploding loss (paper §V-E observation)"}},
		{name: "SparCML", cost: cppProfile(), run: sparse},
		{name: "REF-dsgd", cost: pythonProfile(), run: ring(pythonProfile())},
		{name: "REF-dpsgd", cost: pythonProfile(), run: dpsgd},
		{name: "REF-mavg", cost: pythonProfile(), run: mavg},
		{name: "REF-pssgd", cost: pythonProfile(), run: psSync, centralized: true},
		{name: "REF-asgd", cost: pythonProfile(), run: psAsync, centralized: true},
		{name: "TF-PS", cost: cppProfile(), run: psSync, centralized: true,
			failsAt: map[int]string{256: "crash (paper §V-E observation)"}},
	}
}

// RunFig12Strong reproduces the strong-scaling experiment: global minibatch
// 1024 split over 8–64 nodes.
func RunFig12Strong(o Options) ([]Fig12Row, error) {
	nodes := []int{8, 16, 32, 64}
	globalBatch := 1024
	iters := 4
	if o.Quick {
		nodes = []int{4, 8}
		iters = 2
	}
	return runFig12(o, nodes, func(p int) int { return globalBatch / p }, iters,
		[]string{"CDSGD", "Horovod", "SparCML", "REF-dsgd", "REF-dpsgd", "REF-mavg", "REF-pssgd", "REF-asgd", "TF-PS"})
}

// RunFig12Weak reproduces the weak-scaling experiment: fixed per-node batch
// on 1–256 nodes.
func RunFig12Weak(o Options) ([]Fig12Row, error) {
	nodes := []int{1, 4, 16, 64, 256}
	perNode := 64
	iters := 4
	if o.Quick {
		nodes = []int{1, 4, 16}
		iters = 2
	}
	return runFig12(o, nodes, func(int) int { return perNode }, iters,
		[]string{"CDSGD", "Horovod", "SPARCML", "TF-PS"})
}

// RunFig12Schemes runs selected schemes at fixed per-node batch — the
// entry point benchmarks use for single-round scaling measurements.
func RunFig12Schemes(o Options, nodes []int, batchPerNode, iters int, schemeNames []string) ([]Fig12Row, error) {
	return runFig12(o, nodes, func(int) int { return batchPerNode }, iters, schemeNames)
}

func runFig12(o Options, nodes []int, batchPerNode func(p int) int, iters int, schemeNames []string) ([]Fig12Row, error) {
	wanted := make(map[string]bool, len(schemeNames))
	for _, n := range schemeNames {
		wanted[normalize(n)] = true
	}
	var rows []Fig12Row
	for _, scheme := range fig12Schemes(2) {
		if !wanted[normalize(scheme.name)] {
			continue
		}
		for _, p := range nodes {
			if msg, bad := scheme.failsAt[p]; bad {
				rows = append(rows, Fig12Row{Scheme: scheme.name, Nodes: p, Failed: msg})
				continue
			}
			batch := batchPerNode(p)
			if batch < 1 {
				batch = 1
			}
			workers := p
			if scheme.centralized && p > 1 {
				workers = p - 1
			}
			sentPerNode := make([]int64, p)
			makespan, _, err := mpi.Run(p, scheme.cost, func(r *mpi.Rank) error {
				scheme.run(r, iters, batch)
				sentPerNode[r.ID()] = r.SentBytes
				return nil
			})
			if err != nil {
				return rows, fmt.Errorf("%s at %d nodes: %w", scheme.name, p, err)
			}
			images := float64(workers * batch * iters)
			row := Fig12Row{Scheme: scheme.name, Nodes: p}
			if makespan > 0 {
				row.Throughput = images / makespan.Seconds()
			}
			// report a worker's volume (rank p-1 is always a worker)
			row.PerNodeGB = float64(sentPerNode[p-1]) / 1e9
			rows = append(rows, row)
		}
	}
	return rows, nil
}

func normalize(s string) string {
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c >= 'A' && c <= 'Z' {
			c += 'a' - 'A'
		}
		out = append(out, c)
	}
	return string(out)
}

// RenderFig12 renders scaling rows.
func RenderFig12(title string, rows []Fig12Row) *Table {
	t := &Table{Title: title,
		Headers: []string{"Optimizer", "Nodes", "Throughput [img/s]", "Sent/node"}}
	for _, r := range rows {
		if r.Failed != "" {
			t.AddRow(r.Scheme, itoa(int64(r.Nodes)), "n/a: "+r.Failed, "-")
			continue
		}
		t.AddRow(r.Scheme, itoa(int64(r.Nodes)),
			fmt.Sprintf("%.0f", r.Throughput),
			fmt.Sprintf("%.3f GB", r.PerNodeGB))
	}
	t.AddNote("throughput in *simulated* seconds (α-β virtual clock; see internal/mpi)")
	t.AddNote("expected shape: CDSGD/Horovod ≈10x REF-dsgd; ASGD degrades with nodes; PSSGD messages grow with nodes; SparCML volume < dense but slower at scale")
	return t
}

// SuiteDist is a convenience: strong scaling + its communication volumes,
// the full Fig. 12 reproduction.
func SuiteDist(o Options) (*Table, *Table, error) {
	strong, err := RunFig12Strong(o)
	if err != nil {
		return nil, nil, err
	}
	weak, err := RunFig12Weak(o)
	if err != nil {
		return nil, nil, err
	}
	return RenderFig12("Fig. 12 (left): strong scaling, ResNet-50, global B=1024", strong),
		RenderFig12("Fig. 12 (right): weak scaling, ResNet-50", weak), nil
}

// SimClockNote documents virtual-time semantics for reports.
const SimClockNote = "distributed timings use the deterministic α-β virtual clock of internal/mpi; " +
	"collectives move real data between goroutine ranks, so algorithmic correctness is testable bit-for-bit"
