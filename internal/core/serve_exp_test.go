package core

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"deep500/internal/bench"
)

// TestServeExperimentShape runs the serve experiment end to end at quick
// scale and checks its record contract: deterministic request counts,
// latency sample distributions, full batch occupancy on the batched
// variant, and the speedup spotlight.
func TestServeExperimentShape(t *testing.T) {
	var human bytes.Buffer
	rep, err := quickSuite().Run(context.Background(), []string{"serve"},
		bench.RunConfig{Out: &human, Env: bench.Environment{NumCPU: 8, CPUModel: "test"}})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(human.String(), "micro-batching") {
		t.Fatal("human rendering missing")
	}
	recs := map[string]bench.Record{}
	for _, r := range rep.Experiments[0].Records {
		recs[r.Name] = r
	}

	p := serveBenchParams(true)
	wantReq := float64(p.clients * p.perClient)
	for _, variant := range []string{"unbatched", "batched"} {
		if got := recs[variant+"/requests"].Stats.Median; got != wantReq {
			t.Fatalf("%s/requests = %g, want %g", variant, got, wantReq)
		}
		lat := recs[variant+"/latency"]
		if lat.Unit != "s" || lat.Stats.N != p.clients*p.perClient || lat.Stats.Median <= 0 {
			t.Fatalf("%s/latency: %+v", variant, lat.Stats)
		}
		if recs[variant+"/p95-latency"].Stats.Median < recs[variant+"/p50-latency"].Stats.Median {
			t.Fatalf("%s: p95 below p50", variant)
		}
		if recs[variant+"/throughput"].Stats.Median <= 0 {
			t.Fatalf("%s/throughput missing", variant)
		}
	}
	// The unbatched variant must execute one row per batch; the batched
	// variant must actually coalesce (occupancy well above 1 — closed-loop
	// clients keep the queue primed, in practice it pins at MaxBatch).
	if occ := recs["unbatched/batch-occupancy"].Stats.Median; occ != 1 {
		t.Fatalf("unbatched occupancy = %g, want 1", occ)
	}
	if occ := recs["batched/batch-occupancy"].Stats.Median; occ < 2 {
		t.Fatalf("batched occupancy = %g, want ≥ 2", occ)
	}
	if _, ok := recs["batched-speedup"]; !ok {
		t.Fatal("batched-speedup record missing")
	}
	// Throughput and occupancy follow scheduler timing: they must stay
	// report-only so differing CI hardware can never fail the gate on them.
	for _, name := range []string{"unbatched/throughput", "batched/throughput",
		"batched/batch-occupancy", "batched-speedup", "unbatched/p50-latency"} {
		if recs[name].Better != bench.ReportOnly {
			t.Fatalf("%s must be report-only, is %q", name, recs[name].Better)
		}
	}
}

// TestServeExperimentHonorsCancellation aborts the experiment mid-run.
func TestServeExperimentHonorsCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunServeBench(ctx, quick); err == nil {
		t.Fatal("cancelled serve bench did not fail")
	}
}
