package core

import (
	"context"
	"errors"
	"fmt"
	"time"

	"deep500/internal/executor"
	"deep500/internal/frameworks"
	"deep500/internal/metrics"
	"deep500/internal/models"
	"deep500/internal/tensor"
	"deep500/internal/training"
	"deep500/internal/transform"
)

// Fig7Cell is one (backend, variant) measurement of the micro-batching
// experiment.
type Fig7Cell struct {
	Backend     string
	Variant     string // "original" or "microbatched"
	OOM         bool
	TimeSeconds float64
	PeakBytes   int64
}

// Fig7Result is the outcome of the Level 1 micro-batching experiment.
type Fig7Result struct {
	Batch       int
	CapacityB   int64
	Transformed int
	Cells       []Fig7Cell
}

// RunFig7 reproduces §V-C / Fig. 7: AlexNet at a large minibatch OOMs on
// the torchgo backend (hungry allocator); the ILP micro-batching transform
// eliminates the OOM, while on tfgo the extra split/concat copies slow
// execution down. Model width and batch are scaled in quick mode; the
// device capacity is derived from the measured peak so the experiment is
// robust to scaling.
func RunFig7(ctx context.Context, o Options) (Fig7Result, error) {
	batch := 468 / 4 // scaled stand-in for the paper's 468
	width := 0.125
	if o.Quick {
		batch = 16
		width = 0.0625
	}
	cfg := models.Config{Classes: 100, Channels: 3, Height: 224, Width: 224,
		Seed: o.seed(), WidthScale: width}
	if o.Quick {
		cfg.Height, cfg.Width = 64, 64
	}
	// Dry run with unlimited memory to find the peak requirement.
	// The OOM experiment ignores Options.Exec: transient workspace peaks are
	// schedule-dependent under the parallel backend, which would make the
	// OOM/no-OOM classification nondeterministic.
	probe, err := frameworks.TorchGo.NewExecutor(models.AlexNet(cfg))
	if err != nil {
		return Fig7Result{}, err
	}
	probe.Memory = executor.NewMemoryModel(0)
	probe.OpOverhead = 0
	rng := tensor.NewRNG(o.seed())
	x := tensor.RandNormal(rng, 0, 1, batch, cfg.Channels, cfg.Height, cfg.Width)
	feeds := map[string]*tensor.Tensor{"x": x}
	if _, err := probe.Inference(ctx, feeds); err != nil {
		return Fig7Result{}, err
	}
	peak := probe.Memory.Peak()
	// capacity between tfgo's need (×1.10) and torchgo's (×1.30)
	capacity := int64(float64(peak) * 1.18)

	res := Fig7Result{Batch: batch, CapacityB: capacity}
	for _, prof := range []frameworks.Profile{frameworks.TorchGo, frameworks.TFGo} {
		prof.MemoryCapacity = capacity
		prof.OpOverhead = prof.OpOverhead / 4 // keep runtime reasonable

		for _, variant := range []string{"original", "microbatched"} {
			m := models.AlexNet(cfg)
			transform.StripDropout(m)
			if variant == "microbatched" {
				budget := capacity / 4
				n, err := transform.MicrobatchModel(m, batch, budget, nil)
				if err != nil {
					return res, err
				}
				if res.Transformed == 0 {
					res.Transformed = n
				}
			}
			e, err := prof.NewExecutor(m)
			if err != nil {
				return res, err
			}
			cell := Fig7Cell{Backend: prof.Name, Variant: variant}
			// warmup pass (also detects OOM), then the timed pass
			_, err = e.Inference(ctx, feeds)
			var oom *executor.OOMError
			switch {
			case errors.As(err, &oom):
				cell.OOM = true
				cell.PeakBytes = e.Memory.Peak()
			case err != nil:
				return res, err
			default:
				start := time.Now()
				if _, err := e.Inference(ctx, feeds); err != nil {
					return res, err
				}
				cell.TimeSeconds = time.Since(start).Seconds()
				cell.PeakBytes = e.Memory.Peak()
			}
			res.Cells = append(res.Cells, cell)
		}
	}
	return res, nil
}

// RenderFig7 renders the micro-batching outcome.
func RenderFig7(r Fig7Result) *Table {
	t := &Table{Title: fmt.Sprintf("Fig. 7 / §V-C: micro-batch transformation (AlexNet, B=%d, device=%s)",
		r.Batch, fbytes(r.CapacityB)),
		Headers: []string{"Backend", "Variant", "Result", "Time", "PeakMem"}}
	for _, c := range r.Cells {
		result := "ok"
		timeStr := fsec(c.TimeSeconds)
		if c.OOM {
			result = "OOM"
			timeStr = "-"
		}
		t.AddRow(c.Backend, c.Variant, result, timeStr, fbytes(c.PeakBytes))
	}
	t.AddNote(fmt.Sprintf("%d conv nodes micro-batched by ILP", r.Transformed))
	t.AddNote("expected shape: torchgo original OOMs, microbatched runs; tfgo runs both but is slower microbatched (split/concat copies)")
	return t
}

// OverheadResult is the Level 2 instrumentation-overhead measurement.
type OverheadResult struct {
	NativeEpoch       metrics.Distribution
	InstrumentedEpoch metrics.Distribution
	OverheadFraction  float64
}

// RunOverhead reproduces the §V-D "Optimization Overhead" experiment: epoch
// time of a native training loop vs the same loop under full Deep500
// instrumentation (events + metrics). The paper reports <1% overhead.
func RunOverhead(ctx context.Context, o Options) (OverheadResult, error) {
	epochs := o.reruns()
	cfg := models.Config{Classes: 10, Channels: 1, Height: 16, Width: 16,
		WithHead: true, Seed: o.seed()}
	hidden := 256
	n := 2048
	if o.Quick {
		// enough steps per epoch that the median is stable at ms scale
		hidden, n, epochs = 64, 1024, 8
	}
	ds, _ := training.SyntheticSplit(n, 64, 10, []int{1, cfg.Height, cfg.Width}, 0.3, o.seed())

	mkRunner := func(instrument bool) (*training.Runner, error) {
		m := models.MLP(cfg, hidden)
		execOpts, err := o.execOpts()
		if err != nil {
			return nil, err
		}
		e := executor.MustNew(m, execOpts...)
		e.SetTraining(true)
		if instrument {
			fo := metrics.NewFrameworkOverhead()
			e.Events = fo.Events()
		}
		d := training.NewDriver(e, training.NewMomentum(0.05, 0.9))
		sampler := training.NewShuffleSampler(ds, 64, o.seed())
		r := training.NewRunner(d, sampler, nil)
		if !instrument {
			r.TrainingAcc = nil
			r.LossCurve = nil
		}
		return r, nil
	}
	native, err := mkRunner(false)
	if err != nil {
		return OverheadResult{}, err
	}
	inst, err := mkRunner(true)
	if err != nil {
		return OverheadResult{}, err
	}
	// Warm both configurations, then interleave epoch measurements so both
	// see identical cache/allocator/GC conditions (paired methodology, as
	// in the Level 0 experiment).
	if _, err := native.EpochTime(ctx); err != nil {
		return OverheadResult{}, err
	}
	if _, err := inst.EpochTime(ctx); err != nil {
		return OverheadResult{}, err
	}
	nativeT := metrics.NewSampler("native epoch", "s").WithReruns(epochs)
	instT := metrics.NewSampler("instrumented epoch", "s").WithReruns(epochs)
	for ep := 0; ep < epochs; ep++ {
		dn, err := native.EpochTime(ctx)
		if err != nil {
			return OverheadResult{}, err
		}
		nativeT.Record(dn.Seconds())
		di, err := inst.EpochTime(ctx)
		if err != nil {
			return OverheadResult{}, err
		}
		instT.Record(di.Seconds())
	}
	res := OverheadResult{NativeEpoch: nativeT.Distribution(), InstrumentedEpoch: instT.Distribution()}
	if res.NativeEpoch.Median > 0 {
		res.OverheadFraction = (res.InstrumentedEpoch.Median - res.NativeEpoch.Median) / res.NativeEpoch.Median
	}
	return res, nil
}

// RenderOverhead renders the instrumentation-overhead outcome.
func RenderOverhead(r OverheadResult) *Table {
	t := &Table{Title: "§V-D: Deep500 instrumentation overhead per training epoch",
		Headers: []string{"Configuration", "Median epoch", "CI95"}}
	t.AddRow("native", fsec(r.NativeEpoch.Median),
		fmt.Sprintf("[%s, %s]", fsec(r.NativeEpoch.CI95Low), fsec(r.NativeEpoch.CI95High)))
	t.AddRow("deep500-instrumented", fsec(r.InstrumentedEpoch.Median),
		fmt.Sprintf("[%s, %s]", fsec(r.InstrumentedEpoch.CI95Low), fsec(r.InstrumentedEpoch.CI95High)))
	t.AddNote(fmt.Sprintf("measured overhead: %s (paper: <1%%)", fpct(r.OverheadFraction)))
	return t
}
