package core

import "sort"

// Support levels in the capability matrices.
type Support int

const (
	No Support = iota
	Partial
	Full
	UpdateRuleOnly // "UR" in Table I
)

func (s Support) String() string {
	switch s {
	case Full:
		return "yes"
	case Partial:
		return "part"
	case UpdateRuleOnly:
		return "UR"
	}
	return "-"
}

// SystemKind distinguishes libraries, frameworks and frontends in Table I.
type SystemKind string

const (
	Library   SystemKind = "L"
	Framework SystemKind = "F"
	Frontend  SystemKind = "E"
)

// TableIColumns are the feature columns of the paper's Table I.
var TableIColumns = []string{
	"Sta", "Cus", "Def", "Eag", "Com", "Tra", "Dat", "Opt", "CusOpt",
	"PS", "Dec", "Asy", "CusDist",
}

// SystemCaps is one row of Table I.
type SystemCaps struct {
	Name string
	Kind SystemKind
	Caps map[string]Support
}

// TableI reproduces the paper's framework/feature survey (Table I).
// Encoded from the published matrix; Deep500 itself provides an isolated
// modular abstraction (and reference implementation) of each feature.
var TableI = []SystemCaps{
	{"cuDNN", Library, caps("Sta")},
	{"MKL-DNN", Library, caps("Sta")},
	{"TensorFlow", Framework, withUR(caps("Sta", "Def", "Com", "Tra", "Dat", "CusOpt", "PS", "Asy"), "Opt")},
	{"Caffe2", Framework, withUR(caps("Sta", "Cus", "Def", "Com", "Dat", "PS", "Dec", "Asy"), "Opt")},
	{"PyTorch", Framework, caps("Sta", "Eag", "Dat", "Opt", "Dec", "Asy")},
	{"MXNet", Framework, withUR(caps("Sta", "Cus", "Def", "Com", "Dat", "CusOpt", "PS", "Asy"), "Opt")},
	{"CNTK", Framework, withUR(caps("Sta", "Cus", "Def", "Com", "Dat", "PS", "Dec", "Asy"), "Opt")},
	{"Theano", Framework, caps("Sta", "Def", "Com", "Tra")},
	{"Chainer[MN]", Framework, caps("Sta", "Eag", "Dat", "CusOpt", "Dec", "Asy")},
	{"Darknet", Framework, caps("Sta", "Cus", "Def")},
	{"DL4j", Framework, withUR(caps("Sta", "Def", "Com", "Dat", "PS", "Asy"), "Opt")},
	{"DSSTNE", Framework, withUR(caps("Sta", "Cus", "Def", "Com"), "Opt")},
	{"PaddlePaddle", Framework, withUR(caps("Sta", "Def", "Dat", "PS", "Asy"), "Opt")},
	{"TVM", Framework, caps("Sta", "Def", "Com", "Tra")},
	{"Keras", Frontend, withUR(caps("Sta", "Def", "Eag", "Com", "Dat"), "Opt")},
	{"Horovod", Frontend, caps("Dec", "CusDist")},
	{"TensorLayer", Frontend, withUR(caps("Sta", "Def", "Com", "Dat"), "Opt")},
	{"Lasagne", Frontend, withUR(caps("Sta", "Def", "Com"), "Opt")},
	{"TFLearn", Frontend, caps("Sta", "Def", "Com", "Dat", "Opt")},
	{"Deep500 [this work]", Framework, caps(TableIColumns...)},
}

func caps(names ...string) map[string]Support {
	m := make(map[string]Support)
	for _, n := range names {
		m[n] = Full
	}
	return m
}

func withUR(m map[string]Support, col string) map[string]Support {
	m[col] = UpdateRuleOnly
	return m
}

// TableIIColumns are the feature columns of the paper's Table II.
var TableIIColumns = []string{
	"Perf", "Con", "Acc", "Tim", "Cos", "Ene", "Util", "Mem", "Tput", "Brk",
	"Sca", "Com", "TTA", "FTA", "Lat", "Clo", "Ope", "Inf", "Ops",
	"Img", "Obj", "Spe", "Txt", "RL",
}

// BenchmarkCaps is one row of Table II.
type BenchmarkCaps struct {
	Name    string
	Caps    map[string]Support
	Remarks string
}

// TableII reproduces the paper's benchmark survey (Table II).
var TableII = []BenchmarkCaps{
	{"DeepBench", caps("Perf", "Tim", "Tput", "Inf", "Ops"), "Ops: Conv., GEMM, RNN, Allreduce"},
	{"TBD", caps("Perf", "Tim", "Util", "Mem", "Tput", "Inf", "Img", "Obj", "Spe", "Txt", "RL"), "+GANs"},
	{"Fathom", caps("Perf", "Tim", "Tput", "Brk", "Inf", "Img", "Spe", "Txt", "RL"), "+Auto-encoders"},
	{"DLBS", caps("Perf", "Tim", "Tput", "Inf", "Img"), ""},
	{"DAWNBench", caps("Perf", "Con", "Tim", "Cos", "TTA", "FTA", "Lat", "Clo", "Ope", "Img", "Txt"), ""},
	{"Kaggle", caps("Acc", "FTA", "Ope", "Img", "Obj"), "Varying workloads"},
	{"ImageNet", caps("Acc", "FTA", "Ope", "Img", "Obj"), ""},
	{"MLPerf", caps("Perf", "Con", "Acc", "Tim", "Cos", "TTA", "Clo", "Ope", "Img", "Obj", "Spe", "Txt", "RL"), ""},
	{"Deep500 [this work]", caps(TableIIColumns...), "white-box meta-framework"},
}

// NodesSurveyPoint is one box of the paper's Fig. 2 (compute nodes used in
// distributed DL publications over time, from Ben-Nun & Hoefler's survey).
type NodesSurveyPoint struct {
	Period                  string
	Min, P25, Med, P75, Max float64
}

// Fig2Survey is the nodes-over-time distribution behind Fig. 2.
var Fig2Survey = []NodesSurveyPoint{
	{"pre-2013", 1, 1, 4, 16, 256},
	{"2013", 1, 4, 16, 64, 1000},
	{"2014", 1, 8, 32, 96, 1024},
	{"2015", 1, 8, 32, 128, 2048},
	{"2016", 1, 16, 64, 256, 4096},
	{"2017-present", 1, 32, 128, 512, 18000},
}

// RenderTableI renders the framework capability matrix.
func RenderTableI() *Table {
	t := &Table{Title: "Table I: DL systems and features (reproduced survey)",
		Headers: append([]string{"System", "Kind"}, TableIColumns...)}
	for _, s := range TableI {
		row := []string{s.Name, string(s.Kind)}
		for _, c := range TableIColumns {
			row = append(row, s.Caps[c].String())
		}
		t.AddRow(row...)
	}
	t.AddNote("Sta=standard ops, Cus=customizable, Def=deferred, Eag=eager, Com=compilation, Tra=transformable, Dat=dataset integration, Opt=optimizers (UR=update-rule only), PS=parameter server, Dec=decentralized, Asy=async SGD")
	return t
}

// RenderTableII renders the benchmark capability matrix.
func RenderTableII() *Table {
	t := &Table{Title: "Table II: DL benchmarks and functionalities (reproduced survey)",
		Headers: append([]string{"Benchmark"}, TableIIColumns...)}
	for _, b := range TableII {
		row := []string{b.Name}
		for _, c := range TableIIColumns {
			row = append(row, b.Caps[c].String())
		}
		t.AddRow(row...)
	}
	return t
}

// RenderFig2 renders the nodes-over-time survey.
func RenderFig2() *Table {
	t := &Table{Title: "Fig. 2: compute nodes used in distributed DL over time (survey data)",
		Headers: []string{"Period", "Min", "P25", "Median", "P75", "Max"}}
	for _, p := range Fig2Survey {
		t.AddRow(p.Period,
			fnum(p.Min), fnum(p.P25), fnum(p.Med), fnum(p.P75), fnum(p.Max))
	}
	return t
}

func fnum(f float64) string {
	if f == float64(int64(f)) {
		return itoa(int64(f))
	}
	return itoa(int64(f + 0.5))
}

func itoa(v int64) string {
	if v == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	neg := v < 0
	if neg {
		v = -v
	}
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		b[i] = '-'
	}
	return string(b[i:])
}

// DeepBenchConvShapes lists convolution problem sizes in the spirit of the
// DeepBench suite the paper samples its Level 0 tests from (94 shapes in
// the original; a representative subset here, scaled to CPU feasibility).
type ConvProblem struct {
	N, C, H, W, M, K, Stride, Pad int
}

// DeepBenchConv returns the conv problem set. quick selects a small subset.
func DeepBenchConv(quick bool) []ConvProblem {
	all := []ConvProblem{
		{16, 3, 224, 224, 64, 3, 1, 1}, // the paper's spotlight shape (Fig. 6a right)
		{8, 64, 56, 56, 64, 3, 1, 1},
		{8, 128, 28, 28, 128, 3, 1, 1},
		{8, 256, 14, 14, 256, 3, 1, 1},
		{8, 512, 7, 7, 512, 3, 1, 1},
		{16, 3, 112, 112, 64, 7, 2, 3},
		{4, 96, 27, 27, 256, 5, 1, 2},
		{16, 64, 28, 28, 128, 1, 1, 0},
		{8, 32, 56, 56, 64, 3, 2, 1},
		{2, 256, 28, 28, 512, 3, 1, 1},
	}
	if quick {
		return []ConvProblem{
			{2, 3, 32, 32, 8, 3, 1, 1},
			{2, 8, 16, 16, 16, 3, 1, 1},
			{1, 16, 14, 14, 16, 3, 2, 1},
		}
	}
	return all
}

// GemmProblem is one GEMM problem size.
type GemmProblem struct{ M, K, N int }

// DeepBenchGemm returns the GEMM problem set (spotlight M=K=2560, N=64
// first, as in Fig. 6b right).
func DeepBenchGemm(quick bool) []GemmProblem {
	all := []GemmProblem{
		{2560, 2560, 64}, // spotlight
		{1760, 1760, 128},
		{2048, 2048, 32},
		{1024, 1024, 256},
		{512, 512, 512},
		{4096, 512, 64},
		{256, 2048, 256},
		{128, 4096, 128},
	}
	if quick {
		return []GemmProblem{{128, 128, 32}, {64, 256, 64}, {256, 64, 16}}
	}
	return all
}

// SortedCapNames returns column names sorted (helper for tests).
func SortedCapNames(m map[string]Support) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
