package core

import (
	"fmt"
	"io"
	"time"

	"deep500/internal/bench"
	"deep500/internal/kernels"
	"deep500/internal/metrics"
)

// RegisterExperiments registers every paper experiment into the suite,
// with o captured. Each experiment renders its table(s) to the context's
// human writer and emits bench.Records into the machine-readable report —
// the registry replaces the hardcoded id switch that used to live in
// cmd/d500bench/main.go.
func RegisterExperiments(s *bench.Suite, o Options) {
	s.Register(bench.Definition{ID: "tables", Title: "Tables I & II: systems and benchmark surveys",
		Run: func(c *bench.Context) error { return runTables(c) }})
	s.Register(bench.Definition{ID: "fig2", Title: "Fig. 2: compute nodes in distributed DL over time",
		Run: func(c *bench.Context) error { return runFig2Exp(c) }})
	s.Register(bench.Definition{ID: "fig6conv", Title: "Fig. 6a: convolution performance",
		Run: func(c *bench.Context) error { return runFig6Exp(c, o, "conv") }})
	s.Register(bench.Definition{ID: "fig6gemm", Title: "Fig. 6b: GEMM performance",
		Run: func(c *bench.Context) error { return runFig6Exp(c, o, "gemm") }})
	s.Register(bench.Definition{ID: "fig6acc", Title: "§V-B: operator correctness vs fp32 reference",
		Run: func(c *bench.Context) error { return runFig6AccExp(c, o) }})
	s.Register(bench.Definition{ID: "fig7", Title: "Fig. 7 / §V-C: micro-batch transformation",
		Run: func(c *bench.Context) error { return runFig7Exp(c, o) }})
	s.Register(bench.Definition{ID: "overhead", Title: "§V-D: instrumentation overhead",
		Run: func(c *bench.Context) error { return runOverheadExp(c, o) }})
	s.Register(bench.Definition{ID: "fig8", Title: "Fig. 8: minibatch loading latency",
		Run: func(c *bench.Context) error { return runFig8Exp(c, o) }})
	s.Register(bench.Definition{ID: "table3", Title: "Table III: image decoding latency",
		Run: func(c *bench.Context) error { return runTable3Exp(c, o) }})
	s.Register(bench.Definition{ID: "fig9", Title: "Fig. 9: optimizer convergence",
		Run: func(c *bench.Context) error {
			return runConvergenceExp(c, "Fig. 9: optimizer convergence (ResNet-8 scaled, synthetic CIFAR-10)", func() ([]ConvergenceCurve, error) { return RunFig9(c.Ctx, o) })
		}})
	s.Register(bench.Definition{ID: "fig10", Title: "Fig. 10: Adam across backends",
		Run: func(c *bench.Context) error {
			return runConvergenceExp(c, "Fig. 10: Adam across backends, native vs Deep500 reference", func() ([]ConvergenceCurve, error) { return RunFig10(c.Ctx, o) })
		}})
	s.Register(bench.Definition{ID: "fig11", Title: "Fig. 11: Adam formulation divergence",
		Run: func(c *bench.Context) error { return runFig11Exp(c, o) }})
	s.Register(bench.Definition{ID: "fig12strong", Title: "Fig. 12 (left): strong scaling",
		Run: func(c *bench.Context) error {
			rows, err := RunFig12Strong(o)
			if err != nil {
				return err
			}
			return recordFig12(c, "Fig. 12 (left): strong scaling, ResNet-50, global B=1024", rows)
		}})
	s.Register(bench.Definition{ID: "fig12weak", Title: "Fig. 12 (right): weak scaling",
		Run: func(c *bench.Context) error {
			rows, err := RunFig12Weak(o)
			if err != nil {
				return err
			}
			return recordFig12(c, "Fig. 12 (right): weak scaling, ResNet-50", rows)
		}})
	s.Register(bench.Definition{ID: "validate", Title: "Validation suite (paper §III-E / §IV)",
		Run: func(c *bench.Context) error { return runValidateExp(c, o) }})
	s.Register(bench.Definition{ID: "backend", Title: "Execution-backend micro-benchmarks",
		Run: func(c *bench.Context) error { return runBackendExp(c, o) }})
	s.Register(bench.Definition{ID: "compile", Title: "Graph compilation: fused vs unfused (§III-A Use Case 1)",
		Run: func(c *bench.Context) error { return runCompileExp(c, o) }})
	s.Register(bench.Definition{ID: "serve", Title: "Serving: micro-batched vs single-request inference",
		Run: func(c *bench.Context) error { return runServeExp(c, o) }})
	s.Register(bench.Definition{ID: "gemm", Title: "GEMM kernels: packed register-tiled sweep",
		Run: func(c *bench.Context) error { return runGemmExp(c, o) }})
	s.Register(bench.Definition{ID: "dist", Title: "Distributed: DSGD scaling over TCP loopback",
		Run: func(c *bench.Context) error { return runDistExp(c, o) }})
	s.Register(bench.Definition{ID: "load", Title: "Open-loop load: SLO-checked traffic vs autoscaling pool",
		Run: func(c *bench.Context) error { return runLoadExp(c, o) }})
}

// recordDist exports a timing distribution as one record.
func recordDist(c *bench.Context, name, unit string, better bench.Direction, d metrics.Distribution, warmup int) *bench.Record {
	r := c.RecordSamples(name, unit, better, d.Samples)
	r.Warmup = warmup
	return r
}

func runTables(c *bench.Context) error {
	t1, t2 := RenderTableI(), RenderTableII()
	t1.Render(c.Out)
	t2.Render(c.Out)

	// Deterministic coverage metrics: gate against accidental survey edits.
	c.RecordValue("tableI/systems", "rows", bench.HigherIsBetter, float64(len(TableI)))
	c.RecordValue("tableII/benchmarks", "rows", bench.HigherIsBetter, float64(len(TableII)))
	deep500Caps := 0
	for _, col := range TableIColumns {
		if TableI[len(TableI)-1].Caps[col] == Full {
			deep500Caps++
		}
	}
	c.RecordValue("tableI/deep500-capabilities", "cols", bench.HigherIsBetter, float64(deep500Caps))
	deep500Bench := 0
	for _, col := range TableIIColumns {
		if TableII[len(TableII)-1].Caps[col] == Full {
			deep500Bench++
		}
	}
	c.RecordValue("tableII/deep500-capabilities", "cols", bench.HigherIsBetter, float64(deep500Bench))

	// Report-pipeline latency: rendering both survey tables. This is the
	// wall-clock record the CI bench job tracks run over run.
	samples, warmup := timeLoop(8, 2, 25, func() {
		t1.Render(io.Discard)
		t2.Render(io.Discard)
	})
	recordDist(c, "render/tables", "s", bench.LowerIsBetter, samples, warmup)
	return nil
}

// timeLoop measures f averaged over iters per sample, discarding warmup
// leading samples, and returns the retained distribution.
func timeLoop(samples, warmup, iters int, f func()) (metrics.Distribution, int) {
	s := metrics.NewSampler("t", "s").WithReruns(samples)
	for k := 0; k < warmup+samples; k++ {
		start := time.Now()
		for i := 0; i < iters; i++ {
			f()
		}
		if k >= warmup {
			s.Record(time.Since(start).Seconds() / float64(iters))
		}
	}
	return s.Distribution(), warmup
}

func runFig2Exp(c *bench.Context) error {
	RenderFig2().Render(c.Out)
	for _, p := range Fig2Survey {
		c.RecordValue("nodes-median/"+p.Period, "nodes", bench.ReportOnly, p.Med)
	}
	return nil
}

func runFig6Exp(c *bench.Context, o Options, kind string) error {
	var res Fig6Result
	var err error
	var work int64
	if kind == "conv" {
		res, err = RunFig6Conv(c.Ctx, o)
		if err != nil {
			return err
		}
		p := DeepBenchConv(o.Quick)[0]
		work = kernels.ConvShape{N: p.N, C: p.C, H: p.H, W: p.W, M: p.M,
			KH: p.K, KW: p.K, StrideH: p.Stride, StrideW: p.Stride, PadH: p.Pad, PadW: p.Pad}.FLOPs()
	} else {
		res, err = RunFig6Gemm(c.Ctx, o)
		if err != nil {
			return err
		}
		p := DeepBenchGemm(o.Quick)[0]
		work = kernels.GemmFLOPs(p.M, p.K, p.N)
	}
	RenderFig6(res).Render(c.Out)
	for _, r := range res.All {
		recordDist(c, "all/"+r.Backend+"/"+r.Mode, "s", bench.LowerIsBetter, r.Summary, 1)
	}
	for _, r := range res.Spotlight {
		rec := recordDist(c, "spotlight/"+r.Backend+"/"+r.Mode, "s", bench.LowerIsBetter, r.Summary, 1)
		rec.Work = work
		rec.Finalize()
	}
	return nil
}

func runFig6AccExp(c *bench.Context, o Options) error {
	rows := RunFig6Accuracy(o)
	t := &Table{Title: "§V-B: operator correctness vs fp32 direct reference",
		Headers: []string{"Algorithm(backend)", "Median l-inf"}}
	for _, r := range rows {
		t.AddRow(r.Backend, fmt.Sprintf("%.3g", r.MedianLInf))
		c.RecordValue("linf/"+r.Backend, "linf", bench.LowerIsBetter, r.MedianLInf)
	}
	t.AddNote("paper reports ≈7e-4 median l-inf between Deep500 and frameworks")
	t.Render(c.Out)
	return nil
}

func runFig7Exp(c *bench.Context, o Options) error {
	res, err := RunFig7(c.Ctx, o)
	if err != nil {
		return err
	}
	RenderFig7(res).Render(c.Out)
	for _, cell := range res.Cells {
		key := cell.Backend + "/" + cell.Variant
		oom := 0.0
		if cell.OOM {
			oom = 1
		}
		// OOM-or-not is the experiment's expected *shape* (torchgo original
		// must OOM), validated by tests — recorded, never gated.
		c.RecordValue(key+"/oom", "bool", bench.ReportOnly, oom)
		c.RecordValue(key+"/peak-mem", "B", bench.LowerIsBetter, float64(cell.PeakBytes))
		if !cell.OOM {
			c.RecordValue(key+"/time", "s", bench.LowerIsBetter, cell.TimeSeconds)
		}
	}
	c.RecordValue("microbatched-nodes", "nodes", bench.ReportOnly, float64(res.Transformed))
	return nil
}

func runOverheadExp(c *bench.Context, o Options) error {
	res, err := RunOverhead(c.Ctx, o)
	if err != nil {
		return err
	}
	RenderOverhead(res).Render(c.Out)
	recordDist(c, "epoch/native", "s", bench.LowerIsBetter, res.NativeEpoch, 1)
	recordDist(c, "epoch/instrumented", "s", bench.LowerIsBetter, res.InstrumentedEpoch, 1)
	// The fraction of two noisy medians is too jittery to gate at ±20%.
	c.RecordValue("overhead-fraction", "ratio", bench.ReportOnly, res.OverheadFraction)
	return nil
}

func runFig8Exp(c *bench.Context, o Options) error {
	dir, cleanup, err := TempWorkDir()
	if err != nil {
		return err
	}
	defer cleanup()
	res, err := RunFig8(o, dir)
	if err != nil {
		return err
	}
	RenderFig8(res).Render(c.Out)
	for _, rows := range [][]Fig8Row{res.Small, res.Large} {
		for _, r := range rows {
			recordDist(c, r.Dataset+"/"+r.Generator, "s", bench.LowerIsBetter, r.Summary, 0)
		}
	}
	return nil
}

func runTable3Exp(c *bench.Context, o Options) error {
	dir, cleanup, err := TempWorkDir()
	if err != nil {
		return err
	}
	defer cleanup()
	rows, err := RunTable3(o, dir)
	if err != nil {
		return err
	}
	RenderTable3(rows).Render(c.Out)
	for _, r := range rows {
		c.RecordValue(r.Pipeline+"/"+r.DataKind, "s", bench.LowerIsBetter, r.Seconds)
	}
	return nil
}

func runConvergenceExp(c *bench.Context, title string, run func() ([]ConvergenceCurve, error)) error {
	curves, err := run()
	if err != nil {
		return err
	}
	RenderConvergence(title, curves).Render(c.Out)
	for _, cv := range curves {
		finalAcc, bestAcc := 0.0, 0.0
		for _, p := range cv.TestAcc {
			if p.Value > bestAcc {
				bestAcc = p.Value
			}
			finalAcc = p.Value
		}
		c.RecordValue(cv.Name+"/final-acc", "frac", bench.HigherIsBetter, finalAcc)
		c.RecordValue(cv.Name+"/best-acc", "frac", bench.HigherIsBetter, bestAcc)
		if n := len(cv.LossCurve); n > 0 {
			c.RecordValue(cv.Name+"/final-loss", "loss", bench.LowerIsBetter, cv.LossCurve[n-1].Value)
		}
		c.RecordValue(cv.Name+"/time", "s", bench.ReportOnly, cv.Duration.Seconds())
	}
	return nil
}

func runFig11Exp(c *bench.Context, o Options) error {
	points, err := RunFig11(c.Ctx, o)
	if err != nil {
		return err
	}
	RenderFig11(points).Render(c.Out)
	if n := len(points); n > 0 {
		c.RecordValue("final-l2", "l2", bench.ReportOnly, points[n-1].TotalL2)
		c.RecordValue("final-linf", "linf", bench.ReportOnly, points[n-1].TotalLInf)
	}
	return nil
}

func recordFig12(c *bench.Context, title string, rows []Fig12Row) error {
	RenderFig12(title, rows).Render(c.Out)
	for _, r := range rows {
		key := fmt.Sprintf("%s/%dnodes", r.Scheme, r.Nodes)
		if r.Failed != "" {
			c.RecordValue(key+"/failed", "bool", bench.ReportOnly, 1)
			continue
		}
		// Virtual-clock throughput is deterministic for the ring/doubling
		// schemes; the async parameter server depends on message arrival
		// order, so it is recorded but not gated.
		dir := bench.HigherIsBetter
		if r.Scheme == "REF-asgd" {
			dir = bench.ReportOnly
		}
		c.RecordValue(key+"/throughput", "img/s", dir, r.Throughput)
		c.RecordValue(key+"/sent-per-node", "GB", bench.LowerIsBetter, r.PerNodeGB)
	}
	c.Note(SimClockNote)
	return nil
}

func runValidateExp(c *bench.Context, o Options) error {
	results, err := RunValidationSuite(o)
	if err != nil {
		return err
	}
	fmt.Fprintln(c.Out, "\n== validation suite (paper §III-E / §IV) ==")
	failed := 0
	for _, r := range results {
		fmt.Fprintln(c.Out, " ", r)
		if !r.Passed {
			failed++
		}
	}
	c.RecordValue("checks-passed", "checks", bench.HigherIsBetter, float64(len(results)-failed))
	c.RecordValue("checks-total", "checks", bench.HigherIsBetter, float64(len(results)))
	if failed > 0 {
		return fmt.Errorf("%d validation checks failed", failed)
	}
	return nil
}

func runBackendExp(c *bench.Context, o Options) error {
	rows, err := RunBackendMicrobench(c.Ctx, o)
	if err != nil {
		return err
	}
	RenderBackendBench(rows).Render(c.Out)
	for _, r := range rows {
		rec := c.RecordSamples(r.Variant+"/"+r.Kind, "s", bench.LowerIsBetter, r.Seconds)
		rec.Warmup = r.Warmup
		rec.Stats.BytesPerOp = r.BytesPerOp
		rec.Stats.AllocsPerOp = r.AllocsPerOp
		// Allocator counters wobble with GC timing under the parallel
		// scheduler; tracked, not gated.
		c.RecordValue(r.Variant+"/"+r.Kind+"/bytes-per-op", "B", bench.ReportOnly, float64(r.BytesPerOp))
		c.RecordValue(r.Variant+"/"+r.Kind+"/allocs-per-op", "allocs", bench.ReportOnly, float64(r.AllocsPerOp))
	}
	return nil
}
