package mpi

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func noCost() CostModel { return CostModel{} }

func TestSendRecv(t *testing.T) {
	_, _, err := Run(2, Aries(), func(r *Rank) error {
		if r.ID() == 0 {
			r.Send(1, []float32{1, 2, 3}, SimActual)
		} else {
			got := r.Recv(0)
			if len(got) != 3 || got[2] != 3 {
				t.Errorf("recv %v", got)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSendCopiesData(t *testing.T) {
	_, _, err := Run(2, noCost(), func(r *Rank) error {
		if r.ID() == 0 {
			buf := []float32{1}
			r.Send(1, buf, SimActual)
			buf[0] = 99 // must not affect the receiver
		} else {
			if got := r.Recv(0); got[0] != 1 {
				t.Errorf("message aliased sender buffer: %v", got)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestMessageOrderFIFO(t *testing.T) {
	_, _, err := Run(2, Aries(), func(r *Rank) error {
		if r.ID() == 0 {
			for i := 0; i < 10; i++ {
				r.Send(1, []float32{float32(i)}, SimActual)
			}
		} else {
			for i := 0; i < 10; i++ {
				if got := r.Recv(0); got[0] != float32(i) {
					t.Errorf("out of order: %v at %d", got, i)
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllreduceBothAlgorithms(t *testing.T) {
	for _, algo := range []AllreduceAlgo{AllreduceRing, AllreduceDoubling} {
		for _, p := range []int{1, 2, 3, 4, 8, 7} {
			results := make([][]float32, p)
			_, _, err := Run(p, Aries(), func(r *Rank) error {
				data := make([]float32, 13)
				for i := range data {
					data[i] = float32(r.ID()*100 + i)
				}
				r.AllreduceSum(algo, data, SimActual)
				results[r.ID()] = data
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			// expected sum over ranks
			for i := 0; i < 13; i++ {
				var want float32
				for rank := 0; rank < p; rank++ {
					want += float32(rank*100 + i)
				}
				for rank := 0; rank < p; rank++ {
					if math.Abs(float64(results[rank][i]-want)) > 1e-3 {
						t.Fatalf("algo %v p=%d rank %d elem %d: %v want %v",
							algo, p, rank, i, results[rank][i], want)
					}
				}
			}
		}
	}
}

func TestBroadcast(t *testing.T) {
	for _, p := range []int{2, 3, 4, 8, 5} {
		for root := 0; root < p; root += 2 {
			_, _, err := Run(p, Aries(), func(r *Rank) error {
				data := make([]float32, 4)
				if r.ID() == root {
					for i := range data {
						data[i] = float32(i + 1)
					}
				}
				r.Broadcast(root, data, SimActual)
				for i := range data {
					if data[i] != float32(i+1) {
						t.Errorf("p=%d root=%d rank %d got %v", p, root, r.ID(), data)
						break
					}
				}
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
		}
	}
}

func TestGather(t *testing.T) {
	_, _, err := Run(4, Aries(), func(r *Rank) error {
		data := []float32{float32(r.ID())}
		got := r.Gather(2, data, SimActual)
		if r.ID() == 2 {
			for i := 0; i < 4; i++ {
				if got[i][0] != float32(i) {
					t.Errorf("gather slot %d = %v", i, got[i])
				}
			}
		} else if got != nil {
			t.Error("non-root received gather output")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBarrierAndClocks(t *testing.T) {
	makespan, _, err := Run(4, Aries(), func(r *Rank) error {
		if r.ID() == 0 {
			r.Compute(time.Millisecond) // slowest rank
		}
		before := r.Time()
		r.Barrier()
		if r.ID() != 0 && r.Time() < time.Millisecond {
			t.Errorf("rank %d virtual clock %v did not wait for slow rank (before %v)", r.ID(), r.Time(), before)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if makespan < time.Millisecond {
		t.Fatalf("makespan %v", makespan)
	}
}

func TestVirtualTimeScalesWithBytes(t *testing.T) {
	cost := CostModel{Latency: time.Microsecond, Bandwidth: 1e9}
	timeFor := func(bytes int64) time.Duration {
		makespan, _, err := Run(2, cost, func(r *Rank) error {
			if r.ID() == 0 {
				r.Send(1, []float32{0}, bytes)
			} else {
				r.Recv(0)
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return makespan
	}
	small := timeFor(1000)
	large := timeFor(100_000_000)
	// 100 MB at 1 GB/s = 100 ms ≫ small
	if large < 50*time.Millisecond || large < 10*small {
		t.Fatalf("large=%v small=%v", large, small)
	}
}

func TestCommunicationVolumeAccounting(t *testing.T) {
	_, w, err := Run(2, Aries(), func(r *Rank) error {
		if r.ID() == 0 {
			r.Send(1, make([]float32, 256), SimActual) // 1024 B
		} else {
			r.Recv(0)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if w.Volume.Sent() != 1024 {
		t.Fatalf("sent = %d", w.Volume.Sent())
	}
	if w.Volume.Received() != 1024 {
		t.Fatalf("received = %d", w.Volume.Received())
	}
}

func TestSimulatedBytesDecoupledFromBuffer(t *testing.T) {
	_, w, err := Run(2, Aries(), func(r *Rank) error {
		if r.ID() == 0 {
			r.Send(1, []float32{1}, 1<<20) // tiny buffer, 1 MiB charged
		} else {
			r.Recv(0)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if w.Volume.Sent() != 1<<20 {
		t.Fatalf("charged %d", w.Volume.Sent())
	}
}

func TestRecvAny(t *testing.T) {
	_, _, err := Run(4, Aries(), func(r *Rank) error {
		if r.ID() == 0 {
			seen := map[int]bool{}
			for i := 0; i < 3; i++ {
				data, src := r.RecvAny()
				if int(data[0]) != src {
					t.Errorf("payload %v from %d", data, src)
				}
				seen[src] = true
			}
			if len(seen) != 3 {
				t.Errorf("sources %v", seen)
			}
		} else {
			r.Send(0, []float32{float32(r.ID())}, SimActual)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestServerQueueingEmergesFromTimestamps(t *testing.T) {
	// Many clients hitting one server must serialize: the makespan grows
	// roughly linearly with client count (the paper's ASGD observation ¶).
	cost := CostModel{Latency: 10 * time.Microsecond, Bandwidth: 1e9, PerMessageCPU: 100 * time.Microsecond}
	makespanFor := func(p int) time.Duration {
		ms, _, err := Run(p, cost, func(r *Rank) error {
			if r.ID() == 0 {
				for i := 1; i < p; i++ {
					data, src := r.RecvAny()
					r.Send(src, data, SimActual)
				}
			} else {
				r.Send(0, make([]float32, 1000), SimActual)
				r.Recv(0)
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return ms
	}
	m4 := makespanFor(4)
	m16 := makespanFor(16)
	if m16 < 2*m4 {
		t.Fatalf("no queueing effect: 4 ranks %v, 16 ranks %v", m4, m16)
	}
}

func TestRunPropagatesErrors(t *testing.T) {
	_, _, err := Run(2, noCost(), func(r *Rank) error {
		if r.ID() == 1 {
			panic("boom")
		}
		r.Send(1, []float32{1}, SimActual)
		return nil
	})
	if err == nil {
		t.Fatal("panic not propagated")
	}
}

func TestPropAllreduceEqualsSerialSum(t *testing.T) {
	f := func(seed uint16) bool {
		p := int(seed%6) + 2
		n := int(seed%17) + 1
		results := make([][]float32, p)
		_, _, err := Run(p, noCost(), func(r *Rank) error {
			data := make([]float32, n)
			for i := range data {
				data[i] = float32((r.ID()+1)*(i+1)) / 7
			}
			r.AllreduceSum(AllreduceRing, data, SimActual)
			results[r.ID()] = data
			return nil
		})
		if err != nil {
			return false
		}
		for i := 0; i < n; i++ {
			var want float64
			for rank := 0; rank < p; rank++ {
				want += float64((rank + 1) * (i + 1))
			}
			want /= 7
			for rank := 0; rank < p; rank++ {
				if math.Abs(float64(results[rank][i])-want) > 1e-2 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
