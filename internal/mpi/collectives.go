package mpi

// Collective operations. Two allreduce algorithms are provided — ring
// (bandwidth-optimal, 2(p-1) steps on n/p chunks) and recursive doubling
// (latency-optimal, log p steps on full n) — so their tradeoff can be
// benchmarked (ablation bench in DESIGN.md §5). All collectives move real
// data and charge virtual time through the underlying Send/Recv.

// AllreduceAlgo selects the allreduce implementation.
type AllreduceAlgo int

const (
	// AllreduceRing is the bandwidth-optimal ring algorithm.
	AllreduceRing AllreduceAlgo = iota
	// AllreduceDoubling is recursive doubling (power-of-two ranks only;
	// falls back to ring otherwise).
	AllreduceDoubling
)

// AllreduceSum sums data elementwise across all ranks, in place, using the
// selected algorithm. simBytes charges a scaled wire size for the *whole
// vector* (chunk costs are derived proportionally); pass SimActual to
// charge real sizes.
func (r *Rank) AllreduceSum(algo AllreduceAlgo, data []float32, simBytes int64) {
	p := r.world.size
	if p == 1 {
		return
	}
	if simBytes == SimActual {
		simBytes = int64(len(data)) * 4
	}
	if algo == AllreduceDoubling && p&(p-1) == 0 {
		r.allreduceDoubling(data, simBytes)
		return
	}
	r.allreduceRing(data, simBytes)
}

// allreduceRing: reduce-scatter then allgather over a logical ring.
func (r *Rank) allreduceRing(data []float32, simBytes int64) {
	p := r.world.size
	n := len(data)
	// chunk boundaries
	bounds := make([]int, p+1)
	for i := 0; i <= p; i++ {
		bounds[i] = i * n / p
	}
	chunkBytes := func(c int) int64 {
		if n == 0 {
			return simBytes / int64(p)
		}
		return simBytes * int64(bounds[c+1]-bounds[c]) / int64(n)
	}
	next := (r.id + 1) % p
	prev := (r.id - 1 + p) % p

	// Reduce-scatter: after p-1 steps, rank i holds the full sum of chunk
	// (i+1) mod p.
	for step := 0; step < p-1; step++ {
		sendChunk := (r.id - step + p) % p
		recvChunk := (r.id - step - 1 + p) % p
		r.Send(next, data[bounds[sendChunk]:bounds[sendChunk+1]], chunkBytes(sendChunk))
		in := r.Recv(prev)
		dst := data[bounds[recvChunk]:bounds[recvChunk+1]]
		for i := range dst {
			dst[i] += in[i]
		}
	}
	// Allgather: circulate the reduced chunks.
	for step := 0; step < p-1; step++ {
		sendChunk := (r.id - step + 1 + p) % p
		recvChunk := (r.id - step + p) % p
		r.Send(next, data[bounds[sendChunk]:bounds[sendChunk+1]], chunkBytes(sendChunk))
		in := r.Recv(prev)
		copy(data[bounds[recvChunk]:bounds[recvChunk+1]], in)
	}
}

// allreduceDoubling: log2(p) exchange-and-add steps on the full vector.
func (r *Rank) allreduceDoubling(data []float32, simBytes int64) {
	p := r.world.size
	for mask := 1; mask < p; mask <<= 1 {
		partner := r.id ^ mask
		r.Send(partner, data, simBytes)
		in := r.Recv(partner)
		for i := range data {
			data[i] += in[i]
		}
	}
}

// Broadcast sends root's data to all ranks (binomial tree), in place.
func (r *Rank) Broadcast(root int, data []float32, simBytes int64) {
	p := r.world.size
	if p == 1 {
		return
	}
	if simBytes == SimActual {
		simBytes = int64(len(data)) * 4
	}
	// canonical binomial tree (as in MPICH): receive from the parent at the
	// lowest set bit of the relative rank, then fan out to children.
	rel := (r.id - root + p) % p
	mask := 1
	for mask < p {
		if rel&mask != 0 {
			src := r.id - mask
			if src < 0 {
				src += p
			}
			in := r.Recv(src)
			copy(data, in)
			break
		}
		mask <<= 1
	}
	mask >>= 1
	for mask > 0 {
		if rel+mask < p {
			dst := r.id + mask
			if dst >= p {
				dst -= p
			}
			r.Send(dst, data, simBytes)
		}
		mask >>= 1
	}
}

// Gather collects each rank's data at root; root returns all payloads in
// rank order (including its own), others return nil.
func (r *Rank) Gather(root int, data []float32, simBytes int64) [][]float32 {
	p := r.world.size
	if r.id != root {
		r.Send(root, data, simBytes)
		return nil
	}
	out := make([][]float32, p)
	for src := 0; src < p; src++ {
		if src == root {
			cp := make([]float32, len(data))
			copy(cp, data)
			out[src] = cp
			continue
		}
		out[src] = r.Recv(src)
	}
	return out
}

// Barrier synchronizes all ranks (allreduce of one element).
func (r *Rank) Barrier() {
	one := []float32{1}
	r.AllreduceSum(AllreduceDoubling, one, 4)
}
