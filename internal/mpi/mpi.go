// Package mpi is the message-passing substrate of Deep500-Go's Level 3.
// It stands in for MPI-on-Aries in the paper's evaluation (see DESIGN.md):
// ranks are goroutines that exchange *real data* through in-memory
// mailboxes — so distributed algorithms are executed for real and can be
// validated bit-for-bit against serial execution — while every operation
// also advances a per-rank *virtual clock* under an α–β (latency-bandwidth)
// network cost model. Virtual time yields scaling curves for node counts
// far beyond the host machine (the paper runs up to 256 nodes), with
// contention effects such as parameter-server queueing emerging naturally
// from message timestamps.
package mpi

import (
	"context"
	"fmt"
	"sync"
	"time"

	"deep500/internal/metrics"
)

// CostModel parameterizes the simulated network and node.
type CostModel struct {
	// Latency is α: per-message startup cost.
	Latency time.Duration
	// Bandwidth is the per-link bandwidth in bytes/second (1/β).
	Bandwidth float64
	// SendOverhead is the CPU time a sender is busy per message (LogP "o").
	SendOverhead time.Duration
	// HostDeviceBytesPerSecond models the synchronous GPU↔host copy the
	// paper notes reference implementations pay before communicating
	// (§IV-F); 0 disables the charge.
	HostDeviceBandwidth float64
	// PerMessageCPU is extra per-message processing (serialization,
	// Python/NumPy conversion in the paper's reference optimizers). This is
	// the knob that separates "Python profile" from "C++ profile" codes.
	PerMessageCPU time.Duration
}

// Aries returns a cost model loosely calibrated to the Cray Aries
// interconnect of Piz Daint (the paper's testbed): ~1.5 µs latency,
// ~10 GB/s per-link bandwidth.
func Aries() CostModel {
	return CostModel{
		Latency:      1500 * time.Nanosecond,
		Bandwidth:    10e9,
		SendOverhead: 500 * time.Nanosecond,
	}
}

// transferSeconds is the α+βn wire time for n bytes.
func (c CostModel) transferSeconds(bytes int64) float64 {
	s := c.Latency.Seconds()
	if c.Bandwidth > 0 {
		s += float64(bytes) / c.Bandwidth
	}
	return s
}

type message struct {
	data    []float32
	tag     int
	arrival float64 // virtual arrival time at the receiver (seconds)
}

// mailbox is an unbounded FIFO queue with blocking pop.
type mailbox struct {
	mu   sync.Mutex
	cond *sync.Cond
	q    []message
}

func newMailbox() *mailbox {
	m := &mailbox{}
	m.cond = sync.NewCond(&m.mu)
	return m
}

func (m *mailbox) push(msg message) {
	m.mu.Lock()
	m.q = append(m.q, msg)
	m.cond.Signal()
	m.mu.Unlock()
}

func (m *mailbox) pop() message {
	m.mu.Lock()
	for len(m.q) == 0 {
		m.cond.Wait()
	}
	msg := m.q[0]
	m.q = m.q[1:]
	m.mu.Unlock()
	return msg
}

func (m *mailbox) tryPop() (message, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.q) == 0 {
		return message{}, false
	}
	msg := m.q[0]
	m.q = m.q[1:]
	return msg, true
}

// World is a communicator: size ranks and their pairwise mailboxes.
type World struct {
	size  int
	cost  CostModel
	boxes [][]*mailbox // boxes[dst][src]
	// Volume aggregates traffic over all ranks.
	Volume *metrics.CommunicationVolume
}

// NewWorld creates a communicator of the given size.
func NewWorld(size int, cost CostModel) *World {
	if size < 1 {
		panic("mpi: world size must be ≥ 1")
	}
	w := &World{size: size, cost: cost, Volume: metrics.NewCommunicationVolume()}
	w.boxes = make([][]*mailbox, size)
	for dst := range w.boxes {
		w.boxes[dst] = make([]*mailbox, size)
		for src := range w.boxes[dst] {
			w.boxes[dst][src] = newMailbox()
		}
	}
	return w
}

// Size returns the number of ranks.
func (w *World) Size() int { return w.size }

// Rank is one process of the world. All methods must be called only from
// the goroutine that owns the rank.
type Rank struct {
	world *World
	id    int
	clock float64 // virtual seconds
	// SentBytes counts bytes this rank charged to the network.
	SentBytes int64
}

// ID returns the rank index; Size the world size.
func (r *Rank) ID() int   { return r.id }
func (r *Rank) Size() int { return r.world.size }

// Time returns the rank's current virtual time.
func (r *Rank) Time() time.Duration { return time.Duration(r.clock * float64(time.Second)) }

// Compute advances the virtual clock by a simulated computation of duration
// d (e.g. a forward+backward pass measured or modeled elsewhere).
func (r *Rank) Compute(d time.Duration) { r.clock += d.Seconds() }

// chargeHostCopy adds the GPU↔host staging cost for n bytes, if modeled.
func (r *Rank) chargeHostCopy(bytes int64) {
	if r.world.cost.HostDeviceBandwidth > 0 {
		r.clock += float64(bytes) / r.world.cost.HostDeviceBandwidth
	}
}

// Send transmits data to dst. simBytes is the *charged* wire size; pass
// SimActual to charge the real buffer size. The data slice is copied.
func (r *Rank) Send(dst int, data []float32, simBytes int64) {
	r.SendTagged(dst, data, 0, simBytes)
}

// SimActual charges the actual buffer size on the wire.
const SimActual int64 = -1

// SendTagged is Send with a message tag.
func (r *Rank) SendTagged(dst int, data []float32, tag int, simBytes int64) {
	if dst < 0 || dst >= r.world.size {
		panic(fmt.Sprintf("mpi: send to invalid rank %d", dst))
	}
	if simBytes == SimActual {
		simBytes = int64(len(data)) * 4
	}
	cost := r.world.cost
	r.clock += cost.SendOverhead.Seconds() + cost.PerMessageCPU.Seconds()
	r.chargeHostCopy(simBytes)
	arrival := r.clock + cost.transferSeconds(simBytes)
	cp := make([]float32, len(data))
	copy(cp, data)
	r.world.boxes[dst][r.id].push(message{data: cp, tag: tag, arrival: arrival})
	r.world.Volume.AddSent(simBytes)
	r.SentBytes += simBytes
}

// Recv blocks for a message from src and returns its payload; the virtual
// clock advances to at least the message's arrival time.
func (r *Rank) Recv(src int) []float32 {
	data, _ := r.RecvTagged(src)
	return data
}

// RecvTagged returns the payload and tag of the next message from src.
func (r *Rank) RecvTagged(src int) ([]float32, int) {
	msg := r.world.boxes[r.id][src].pop()
	if msg.arrival > r.clock {
		r.clock = msg.arrival
	}
	r.clock += r.world.cost.PerMessageCPU.Seconds()
	r.chargeHostCopy(int64(len(msg.data)) * 4)
	r.world.Volume.AddReceived(int64(len(msg.data)) * 4)
	return msg.data, msg.tag
}

// RecvAny polls all sources round-robin (deterministic order) and returns
// the first available message with its source. It busy-waits with a
// scheduler yield; use for server loops that consume from all workers.
func (r *Rank) RecvAny() ([]float32, int) {
	data, src, _ := r.RecvAnyTagged()
	return data, src
}

// RecvAnyTagged is RecvAny returning the message tag as well.
func (r *Rank) RecvAnyTagged() ([]float32, int, int) {
	data, src, tag, _ := r.recvAny(nil)
	return data, src, tag
}

// RecvAnyCtx is RecvAnyTagged that returns ctx.Err() if the context ends
// before a message arrives — the cancellation-aware receive the parameter
// server uses so a cancel unblocks it promptly instead of at the next
// message.
func (r *Rank) RecvAnyCtx(ctx context.Context) ([]float32, int, int, error) {
	return r.recvAny(ctx)
}

// recvAny scans all sources until a message is available; a non-nil ctx is
// checked every sweep.
func (r *Rank) recvAny(ctx context.Context) ([]float32, int, int, error) {
	for {
		if ctx != nil {
			if err := ctx.Err(); err != nil {
				return nil, 0, 0, err
			}
		}
		for src := 0; src < r.world.size; src++ {
			if src == r.id {
				continue
			}
			if msg, ok := r.world.boxes[r.id][src].tryPop(); ok {
				if msg.arrival > r.clock {
					r.clock = msg.arrival
				}
				r.clock += r.world.cost.PerMessageCPU.Seconds()
				r.world.Volume.AddReceived(int64(len(msg.data)) * 4)
				return msg.data, src, msg.tag, nil
			}
		}
		// Nothing ready: block on a round-robin scan with short sleeps to
		// avoid burning CPU; determinism of *virtual* time is preserved
		// because arrival stamps, not wall time, order the simulation.
		time.Sleep(time.Microsecond)
	}
}

// RecvCtx is Recv(src) that returns ctx.Err() if the context ends before a
// message from src arrives.
func (r *Rank) RecvCtx(ctx context.Context, src int) ([]float32, error) {
	for {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if msg, ok := r.world.boxes[r.id][src].tryPop(); ok {
			if msg.arrival > r.clock {
				r.clock = msg.arrival
			}
			r.clock += r.world.cost.PerMessageCPU.Seconds()
			r.chargeHostCopy(int64(len(msg.data)) * 4)
			r.world.Volume.AddReceived(int64(len(msg.data)) * 4)
			return msg.data, nil
		}
		time.Sleep(time.Microsecond)
	}
}

// Run spawns size rank goroutines executing fn and waits for completion.
// It returns the maximum virtual time across ranks (the simulated makespan).
func Run(size int, cost CostModel, fn func(r *Rank) error) (time.Duration, *World, error) {
	w := NewWorld(size, cost)
	ranks := make([]*Rank, size)
	errs := make([]error, size)
	var wg sync.WaitGroup
	for i := 0; i < size; i++ {
		ranks[i] = &Rank{world: w, id: i}
		wg.Add(1)
		go func(r *Rank) {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					errs[r.id] = fmt.Errorf("mpi: rank %d panicked: %v", r.id, p)
				}
			}()
			errs[r.id] = fn(r)
		}(ranks[i])
	}
	wg.Wait()
	var makespan time.Duration
	for _, r := range ranks {
		if t := r.Time(); t > makespan {
			makespan = t
		}
	}
	for _, err := range errs {
		if err != nil {
			return makespan, w, err
		}
	}
	return makespan, w, nil
}
