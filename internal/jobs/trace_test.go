package jobs

import (
	"fmt"
	"net/http/httptest"
	"testing"
	"time"

	"deep500/internal/obs/trace"
)

// startTracedControlPlane is startControlPlane with tracing on: the
// manager owns the launcher tracer, and every LocalRunner rank gets its
// own tracer instance — the same isolation separate OS processes have —
// so spans really travel the record-then-upload path.
func startTracedControlPlane(t *testing.T) (*Manager, *trace.Tracer) {
	t.Helper()
	tr := trace.New(trace.Options{Seed: 31, SlowThreshold: time.Hour, Process: "launcher"})
	runner := &LocalRunner{
		Heartbeat: 20,
		NewTracer: func(rank int) *trace.Tracer {
			return trace.New(trace.Options{
				Seed: 100 + uint64(rank), SlowThreshold: time.Hour,
				Process: fmt.Sprintf("rank-%d", rank),
			})
		},
	}
	m, err := NewManager(Config{
		Runner:           runner,
		HeartbeatTimeout: 10 * time.Second,
		PollInterval:     50 * time.Millisecond,
		Tracer:           tr,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(Handler(m))
	runner.ControlURL = srv.URL
	t.Cleanup(func() {
		m.Shutdown()
		srv.Close()
	})
	return m, tr
}

// TestDistributedTraceTree is the cross-process propagation acceptance
// check: a 2-worker DSGD job yields ONE trace in the manager's recorder
// holding the launcher's dist.job span plus both ranks' uploaded
// dist.rank subtrees with per-step and per-op spans.
func TestDistributedTraceTree(t *testing.T) {
	m, tr := startTracedControlPlane(t)
	job, err := m.Submit(Spec{
		Scheme: SchemeDSGD, Workers: 2, Epochs: 1, Batch: 8, Samples: 64, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := trace.Parse(job.Spec.Trace); !ok {
		t.Fatalf("submitted spec carries no trace context: %q", job.Spec.Trace)
	}
	awaitState(t, m, job.ID, StateSucceeded, 30*time.Second)

	// The rank uploads race the job's terminal transition; poll briefly.
	rm, _ := trace.Parse(job.Spec.Trace)
	var td trace.TraceData
	deadline := time.Now().Add(5 * time.Second)
	for {
		var ok bool
		td, ok = tr.Recorder().Trace(rm.Trace)
		if ok && countSpans(td, "dist.rank") == 2 && countSpans(td, "dist.job") == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("trace %016x incomplete: %d dist.job, %d dist.rank spans",
				rm.Trace, countSpans(td, "dist.job"), countSpans(td, "dist.rank"))
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err := trace.VerifyTree(td); err != nil {
		t.Fatal(err)
	}
	spans := map[uint64]trace.SpanData{}
	for _, s := range td.Spans {
		spans[s.ID] = s
	}
	root, ok := td.Root()
	if !ok || root.Name != "dist.job" {
		t.Fatalf("root %+v, want dist.job", root)
	}
	// Both rank spans parent on the job span, across process boundaries.
	ranks := 0
	for _, s := range td.Spans {
		if s.Name != "dist.rank" {
			continue
		}
		ranks++
		if s.Parent != root.ID {
			t.Fatalf("dist.rank span parented on %016x, want job span %016x", s.Parent, root.ID)
		}
		if s.Process == root.Process {
			t.Fatalf("rank span claims launcher process %q", s.Process)
		}
	}
	if ranks != 2 {
		t.Fatalf("%d dist.rank spans, want 2", ranks)
	}
	// The sampled first step of each rank carries its op subtree.
	if n := countSpans(td, "dist.step"); n < 2 {
		t.Fatalf("%d dist.step spans, want at least one per worker", n)
	}
	opChains := 0
	for _, s := range td.Spans {
		if s.Name != "exec.forward" {
			continue
		}
		step, ok := spans[s.Parent]
		if !ok || step.Name != "dist.step" {
			t.Fatalf("exec.forward parented on %+v, want dist.step", step)
		}
		opChains++
	}
	if opChains == 0 {
		t.Fatal("no exec.forward span under any dist.step")
	}
}

func countSpans(td trace.TraceData, name string) int {
	n := 0
	for _, s := range td.Spans {
		if s.Name == name {
			n++
		}
	}
	return n
}
