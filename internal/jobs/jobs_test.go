package jobs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"
	"time"

	"deep500/internal/obs"
)

// startControlPlane wires the full production stack — Manager, HTTP API,
// LocalRunner — with test-friendly timing. The LocalRunner runs every rank
// through the real RunRank path (HTTP registration, TCP transport,
// checkpointing) as goroutines, so the whole lifecycle runs under -race.
func startControlPlane(t *testing.T) (*Manager, *httptest.Server) {
	t.Helper()
	runner := &LocalRunner{Heartbeat: 20}
	m, err := NewManager(Config{
		Runner:           runner,
		HeartbeatTimeout: 10 * time.Second,
		PollInterval:     50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(Handler(m))
	runner.ControlURL = srv.URL
	t.Cleanup(func() {
		m.Shutdown()
		srv.Close()
	})
	return m, srv
}

// awaitState polls until the job reaches want or the deadline passes.
func awaitState(t *testing.T, m *Manager, id string, want JobState, within time.Duration) *Job {
	t.Helper()
	deadline := time.Now().Add(within)
	for {
		j, err := m.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		if j.State == want {
			return j
		}
		if j.State.Terminal() || time.Now().After(deadline) {
			t.Fatalf("job %s: state %s (error %q), want %s", id, j.State, j.Error, want)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// scrapeMetric reads one sample out of the control plane's Prometheus
// exposition.
func scrapeMetric(t *testing.T, m *Manager, name string) float64 {
	t.Helper()
	rec := httptest.NewRecorder()
	m.Metrics().Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	for _, line := range strings.Split(rec.Body.String(), "\n") {
		if strings.HasPrefix(line, name+" ") {
			var v float64
			if _, err := fmt.Sscanf(strings.TrimPrefix(line, name+" "), "%g", &v); err != nil {
				t.Fatalf("parsing %q: %v", line, err)
			}
			return v
		}
	}
	t.Fatalf("metric %s not in exposition", name)
	return 0
}

func TestSpecDefaults(t *testing.T) {
	s := Spec{}.WithDefaults()
	if err := s.Validate(); err != nil {
		t.Fatalf("default spec invalid: %v", err)
	}
	if s.Scheme != SchemeASGD || s.Workers != 2 || s.Optimizer != "sgd" {
		t.Fatalf("unexpected defaults: %+v", s)
	}
	if got := s.WorldSize(); got != 3 {
		t.Fatalf("asgd world = workers+PS: got %d want 3", got)
	}
	if got := s.WorkerIndex(1); got != 0 {
		t.Fatalf("rank 1 is worker 0 under a PS, got %d", got)
	}
	d := Spec{Scheme: SchemeDSGD}.WithDefaults()
	if got := d.WorldSize(); got != 2 {
		t.Fatalf("dsgd world = workers: got %d want 2", got)
	}
	// 512 samples / 2 workers / batch 8 × 2 epochs.
	if got := s.TotalSteps(); got != 64 {
		t.Fatalf("TotalSteps = %d, want 64", got)
	}
	if got := (Spec{CheckpointDir: "/tmp/x"}).CheckpointPath(2); got != "/tmp/x/rank-2.d5nx" {
		t.Fatalf("CheckpointPath = %q", got)
	}
	if got := (Spec{}).CheckpointPath(2); got != "" {
		t.Fatalf("CheckpointPath without dir = %q, want empty", got)
	}
}

func TestSpecValidateRejects(t *testing.T) {
	cases := []Spec{
		{Scheme: "ring"},                   // unknown scheme
		{Model: "transformer"},             // unknown model
		{QuantBits: 9},                     // out of range
		{Samples: 8, Workers: 4, Batch: 8}, // zero steps per epoch
	}
	for i, c := range cases {
		if err := c.WithDefaults().Validate(); err == nil {
			t.Errorf("case %d (%+v): expected validation error", i, c)
		}
	}
}

// TestMetricsCoverDistNames pins the two-way contract with obs.DistNames:
// every canonical d500_dist_* metric is registered by the control plane.
// (CoreNames are covered by the d500 package's own conformance test.)
func TestMetricsCoverDistNames(t *testing.T) {
	m := NewMetrics()
	rec := httptest.NewRecorder()
	m.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	body := rec.Body.String()
	for _, name := range obs.DistNames() {
		if !strings.Contains(body, name) {
			t.Errorf("metric %s missing from control-plane exposition", name)
		}
	}
}

// TestJobASGDSucceeds runs the real thing end to end: submit an async
// parameter-server job, three rank processes (PS + 2 workers) join over
// loopback TCP, train, report done, and the job reaches succeeded.
func TestJobASGDSucceeds(t *testing.T) {
	m, _ := startControlPlane(t)
	job, err := m.Submit(Spec{
		Scheme: SchemeASGD, Workers: 2,
		Samples: 64, Batch: 8, Epochs: 1, Hidden: 8, Seed: 42,
	})
	if err != nil {
		t.Fatal(err)
	}
	final := awaitState(t, m, job.ID, StateSucceeded, 30*time.Second)
	if len(final.Workers) != 3 {
		t.Fatalf("want 3 ranks, got %d", len(final.Workers))
	}
	if final.Workers[0].Role != "ps" {
		t.Fatalf("rank 0 role = %q, want ps", final.Workers[0].Role)
	}
	for _, w := range final.Workers {
		if w.Phase != WorkerDone {
			t.Errorf("rank %d phase %s, want done", w.Rank, w.Phase)
		}
	}
	// Each worker ran 64/2/8 = 4 steps and reported progress.
	for _, rank := range []int{1, 2} {
		if final.Workers[rank].Step != 4 {
			t.Errorf("rank %d step %d, want 4", rank, final.Workers[rank].Step)
		}
	}
	if m.Metrics().JobsRunning.Value() != 0 {
		t.Errorf("jobs_running gauge = %d after completion", m.Metrics().JobsRunning.Value())
	}
}

// TestJobDSGDSucceeds covers the decentralized path: no PS rank, the
// workers allreduce over the loopback ring.
func TestJobDSGDSucceeds(t *testing.T) {
	m, _ := startControlPlane(t)
	job, err := m.Submit(Spec{
		Scheme: SchemeDSGD, Workers: 2,
		Samples: 64, Batch: 8, Epochs: 1, Hidden: 8, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	final := awaitState(t, m, job.ID, StateSucceeded, 30*time.Second)
	if len(final.Workers) != 2 {
		t.Fatalf("dsgd wants no PS rank: got %d ranks", len(final.Workers))
	}
	for _, w := range final.Workers {
		if w.Role != "worker" {
			t.Errorf("rank %d role %q", w.Rank, w.Role)
		}
	}
}

// TestWorkerKillRestartsFromCheckpoint is the fault-tolerance acceptance
// test: kill a worker mid-run; the manager restarts it, the replacement
// resumes from its exact-resume checkpoint, and the job still succeeds.
func TestWorkerKillRestartsFromCheckpoint(t *testing.T) {
	m, _ := startControlPlane(t)
	dir := t.TempDir()
	job, err := m.Submit(Spec{
		Scheme: SchemeASGD, Workers: 2,
		Samples: 512, Batch: 8, Epochs: 4, Hidden: 8, Seed: 11,
		CheckpointDir: dir, CheckpointEvery: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	spec := job.Spec
	total := spec.TotalSteps() // 512/2/8 × 4 = 128

	// Wait until rank 1 has made real progress (≥ one checkpoint past
	// restore-ambiguity) but is far from done, then kill it.
	deadline := time.Now().Add(30 * time.Second)
	for {
		j, err := m.Get(job.ID)
		if err != nil {
			t.Fatal(err)
		}
		if j.State.Terminal() {
			t.Fatalf("job finished (%s) before the kill: error %q", j.State, j.Error)
		}
		if s := j.Workers[1].Step; s >= 4 && s <= total-8 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("rank 1 never reached the kill window (step %d)", j.Workers[1].Step)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := m.KillRank(job.ID, 1); err != nil {
		t.Fatal(err)
	}

	final := awaitState(t, m, job.ID, StateSucceeded, 60*time.Second)
	w := final.Workers[1]
	if w.Restarts < 1 {
		t.Fatalf("rank 1 restarts = %d, want ≥ 1", w.Restarts)
	}
	if w.Phase != WorkerDone {
		t.Fatalf("rank 1 phase %s, want done", w.Phase)
	}
	if _, err := os.Stat(spec.CheckpointPath(1)); err != nil {
		t.Fatalf("rank 1 checkpoint missing: %v", err)
	}
	// The restart resumed rather than started over: the replacement's final
	// step is the full budget, and it got there without re-running from 0
	// (the checkpoint pinned a step ≥ 2 before the kill).
	if w.Step != total {
		t.Fatalf("rank 1 final step %d, want %d", w.Step, total)
	}
}

// TestCrashWithoutCheckpointRestartsFromZero pins the documented fallback:
// no CheckpointDir means the replacement rejoins from step 0 — the async
// server absorbs the replayed gradients and the job still succeeds.
func TestCrashWithoutCheckpointRestartsFromZero(t *testing.T) {
	m, _ := startControlPlane(t)
	job, err := m.Submit(Spec{
		Scheme: SchemeASGD, Workers: 2,
		Samples: 1024, Batch: 8, Epochs: 4, Hidden: 8, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		j, err := m.Get(job.ID)
		if err != nil {
			t.Fatal(err)
		}
		if j.State.Terminal() {
			t.Fatalf("job finished (%s) before the kill: error %q", j.State, j.Error)
		}
		if j.Workers[2].Step >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("rank 2 never progressed")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := m.KillRank(job.ID, 2); err != nil {
		t.Fatal(err)
	}
	final := awaitState(t, m, job.ID, StateSucceeded, 60*time.Second)
	if final.Workers[2].Restarts < 1 {
		t.Fatalf("rank 2 restarts = %d, want ≥ 1", final.Workers[2].Restarts)
	}
}

// TestDSGDWorkerDeathFailsJob pins the scheme matrix: the allreduce ring
// cannot tolerate member loss, so a killed dsgd worker fails the job
// instead of restarting.
func TestDSGDWorkerDeathFailsJob(t *testing.T) {
	m, _ := startControlPlane(t)
	job, err := m.Submit(Spec{
		Scheme: SchemeDSGD, Workers: 2,
		Samples: 256, Batch: 8, Epochs: 4, Hidden: 8, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		j, err := m.Get(job.ID)
		if err != nil {
			t.Fatal(err)
		}
		if j.State == StateFailed {
			t.Fatalf("job failed before the kill: %q", j.Error)
		}
		if j.State == StateRunning && j.Workers[0].Step >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job never started training")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := m.KillRank(job.ID, 0); err != nil {
		t.Fatal(err)
	}
	final := awaitState(t, m, job.ID, StateFailed, 60*time.Second)
	if final.Workers[0].Restarts != 0 {
		t.Fatalf("dsgd rank restarted %d times; ring schemes must not restart", final.Workers[0].Restarts)
	}
	if m.Metrics().JobsRunning.Value() != 0 {
		t.Errorf("jobs_running gauge = %d after failure", m.Metrics().JobsRunning.Value())
	}
}

// blockingRunner fakes rank processes that never register or heartbeat —
// the heartbeat watchdog must kill them, and once restarts are exhausted
// the job fails.
type blockingRunner struct{}

func (blockingRunner) Start(job *Job, rank int) (Proc, error) {
	return &blockingProc{stop: make(chan struct{})}, nil
}

type blockingProc struct{ stop chan struct{} }

func (p *blockingProc) Wait() error {
	<-p.stop
	return fmt.Errorf("killed")
}

func (p *blockingProc) Kill() error {
	select {
	case <-p.stop:
	default:
		close(p.stop)
	}
	return nil
}

func (p *blockingProc) PID() int { return -1 }

func TestHeartbeatTimeoutKillsSilentRanks(t *testing.T) {
	m, err := NewManager(Config{
		Runner:           blockingRunner{},
		HeartbeatTimeout: 150 * time.Millisecond,
		PollInterval:     25 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Shutdown)
	job, err := m.Submit(Spec{
		Scheme: SchemeASGD, Workers: 1, MaxRestarts: 1,
		Samples: 16, Batch: 8, Epochs: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	final := awaitState(t, m, job.ID, StateFailed, 30*time.Second)
	if final.Error == "" {
		t.Fatal("failed job carries no error")
	}
	if v := scrapeMetric(t, m, obs.MetricDistHeartbeatTimeoutTotal); v == 0 {
		t.Error("heartbeat timeouts not counted")
	}
	// Both ranks went stale together; whichever exit lands first (the
	// non-restartable PS fails the job outright) the state machine must
	// settle with no live processes.
	for _, w := range final.Workers {
		if w.Phase == WorkerRunning {
			t.Errorf("rank %d still marked running after failure", w.Rank)
		}
	}
}

// TestHTTPAPI exercises the job monitor surface end to end over a real
// job: submit via POST, observe via GET, metrics and health, cancel.
func TestHTTPAPI(t *testing.T) {
	m, srv := startControlPlane(t)

	spec, _ := json.Marshal(Spec{
		Scheme: SchemeASGD, Workers: 2,
		Samples: 64, Batch: 8, Epochs: 1, Hidden: 8, Seed: 1,
	})
	resp, err := http.Post(srv.URL+"/v1/jobs", "application/json", bytes.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /v1/jobs: %s", resp.Status)
	}
	var job Job
	if err := json.NewDecoder(resp.Body).Decode(&job); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if job.ID == "" {
		t.Fatal("submitted job has no ID")
	}

	awaitState(t, m, job.ID, StateSucceeded, 30*time.Second)

	get := func(path string) (int, string) {
		r, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer r.Body.Close()
		b, _ := io.ReadAll(r.Body)
		return r.StatusCode, string(b)
	}

	if code, body := get("/v1/jobs/" + job.ID); code != http.StatusOK ||
		!strings.Contains(body, `"state":"succeeded"`) {
		t.Fatalf("GET job: %d %s", code, body)
	}
	if code, body := get("/v1/jobs"); code != http.StatusOK || !strings.Contains(body, job.ID) {
		t.Fatalf("GET list: %d %s", code, body)
	}
	if code, _ := get("/v1/jobs/nope"); code != http.StatusNotFound {
		t.Fatalf("GET missing job: %d, want 404", code)
	}
	if code, body := get("/metrics"); code != http.StatusOK ||
		!strings.Contains(body, obs.MetricDistJobsSucceededTotal) {
		t.Fatalf("GET /metrics: %d", code)
	} else if !strings.Contains(body, obs.MetricDistHeartbeatsTotal) {
		t.Fatal("metrics exposition missing heartbeat counter")
	}
	if code, _ := get("/healthz"); code != http.StatusOK {
		t.Fatalf("GET /healthz: %d", code)
	}

	// Cancel is idempotent on a terminal job (stays succeeded).
	req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/v1/jobs/"+job.ID, nil)
	r, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusOK {
		t.Fatalf("DELETE: %s", r.Status)
	}
	j, _ := m.Get(job.ID)
	if j.State != StateSucceeded {
		t.Fatalf("cancel after success flipped state to %s", j.State)
	}
}

// TestSubmitRejectsBadSpec pins validation at the API boundary.
func TestSubmitRejectsBadSpec(t *testing.T) {
	_, srv := startControlPlane(t)
	resp, err := http.Post(srv.URL+"/v1/jobs", "application/json",
		strings.NewReader(`{"scheme":"ring"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad spec: %s, want 400", resp.Status)
	}
}
