package jobs

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net"
	"net/http"
	"os"
	"sync/atomic"
	"time"

	"deep500/internal/dist"
	"deep500/internal/executor"
	"deep500/internal/graph"
	"deep500/internal/models"
	"deep500/internal/mpi"
	"deep500/internal/obs/trace"
	"deep500/internal/training"
	"deep500/internal/transport"
)

// traceStepEvery samples one distributed optimization step per this many
// for per-op tracing (plus the first step); every step's subtree on a
// long job would blow the per-trace span budget.
const traceStepEvery = 100

// RankConfig is everything a rank process needs to join its job: identity
// plus the control-plane URL. The spec itself is fetched from the control
// plane, so restarted processes always see the authoritative config.
type RankConfig struct {
	JobID      string
	Rank       int
	ControlURL string
	// HeartbeatMillis overrides the heartbeat cadence (default 500).
	HeartbeatMillis int
	// Tracer, when non-nil and the fetched spec carries a trace context,
	// records a "dist.rank" span tree for this rank and uploads it to the
	// control plane on completion.
	Tracer *trace.Tracer
}

// RunRank is the body of one rank process (d500dist -role ps|worker): it
// registers its transport address with the control plane, waits for the
// peers it must dial, joins the TCP fabric, and runs its role — the
// parameter-server loop on rank 0 of centralized schemes, the training
// loop otherwise. Workers of restartable schemes checkpoint to the spec's
// CheckpointDir and resume from it when the lifecycle manager restarts
// them after a crash.
func RunRank(ctx context.Context, rc RankConfig) (err error) {
	cl := &controlClient{base: rc.ControlURL, jobID: rc.JobID,
		http: &http.Client{Timeout: 10 * time.Second}}
	job, err := cl.fetchJob(ctx)
	if err != nil {
		return fmt.Errorf("jobs: rank %d fetching job: %w", rc.Rank, err)
	}
	spec := job.Spec
	world := spec.WorldSize()
	if rc.Rank < 0 || rc.Rank >= world {
		return fmt.Errorf("jobs: rank %d out of range for world %d", rc.Rank, world)
	}

	// Join the job's trace: the manager stamped its "dist.job" span into
	// the spec, so this rank's subtree grafts onto it; the spans upload
	// back at completion for one coherent tree across all processes.
	var rankSpan *trace.Span
	if rm, ok := trace.Parse(spec.Trace); ok && rc.Tracer.Enabled() {
		role := "worker"
		if spec.Scheme.Centralized() && rc.Rank == 0 {
			role = "ps"
		}
		rankSpan = rc.Tracer.StartRemote(rm, "dist.rank",
			trace.Int("rank", rc.Rank), trace.String("role", role))
		defer func() {
			rankSpan.SetError(err)
			rankSpan.End()
			// Best-effort upload: the trace is retained locally either way.
			if td, ok := rc.Tracer.Recorder().Trace(rm.Trace); ok {
				cl.uploadSpans(ctx, td.Spans)
			}
		}()
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return fmt.Errorf("jobs: rank %d listening: %w", rc.Rank, err)
	}
	// transport.New takes ownership of ln and closes it.
	if err := cl.register(ctx, rc.Rank, ln.Addr().String(), os.Getpid()); err != nil {
		ln.Close()
		return fmt.Errorf("jobs: rank %d registering: %w", rc.Rank, err)
	}

	// Which lower ranks must be dialable before the fabric can form: just
	// the server in centralized schemes (star), every lower rank in the
	// decentralized ring.
	var dialRanks []int
	if spec.Scheme.Centralized() {
		if rc.Rank > 0 {
			dialRanks = []int{0}
		} else {
			dialRanks = []int{}
		}
	}
	peers, err := cl.awaitPeers(ctx, rc.Rank, dialRanks)
	if err != nil {
		ln.Close()
		return err
	}

	rank, err := transport.New(transport.Options{
		ID: rc.Rank, Size: world,
		Listener:       ln,
		Peers:          peers,
		DialRanks:      dialRanks,
		QuantizeBits:   spec.QuantBits,
		BestEffortSend: spec.Scheme.Centralized() && rc.Rank == 0,
	})
	if err != nil {
		return fmt.Errorf("jobs: rank %d joining fabric: %w", rc.Rank, err)
	}
	defer rank.Close()
	// Stamp this rank's span into outbound transport frames so a peer
	// blocked in a receive can attribute the wait to the sender's trace.
	if rankSpan != nil {
		rank.SetTraceContext(rankSpan.TraceID(), rankSpan.SpanID())
	}

	// A cancelled rank (killed by the manager) may be blocked in a
	// transport receive that doesn't carry the context; closing the fabric
	// wakes it immediately instead of waiting out the receive timeout.
	watchdogDone := make(chan struct{})
	defer close(watchdogDone)
	go func() {
		select {
		case <-ctx.Done():
			rank.Close()
		case <-watchdogDone:
		}
	}()

	// Heartbeat loop: a side goroutine posting the training loop's atomic
	// progress until the rank finishes.
	var progress rankProgress
	hbEvery := time.Duration(rc.HeartbeatMillis) * time.Millisecond
	if hbEvery <= 0 {
		hbEvery = 500 * time.Millisecond
	}
	hbCtx, hbStop := context.WithCancel(ctx)
	defer hbStop()
	go func() {
		ticker := time.NewTicker(hbEvery)
		defer ticker.Stop()
		for {
			select {
			case <-hbCtx.Done():
				return
			case <-ticker.C:
				step, loss := progress.load()
				cl.heartbeat(hbCtx, rc.Rank, step, loss)
			}
		}
	}()

	runCtx := ctx
	if rankSpan != nil {
		runCtx = trace.NewContext(ctx, rankSpan)
	}
	err = transport.Protect(func() error {
		if spec.Scheme.Centralized() && rc.Rank == 0 {
			return runPS(runCtx, rank, spec)
		}
		return runTrainLoop(runCtx, rank, spec, rc.Rank, &progress)
	})
	if err != nil {
		return err
	}
	step, loss := progress.load()
	if err := cl.done(ctx, rc.Rank, step, loss); err != nil {
		return fmt.Errorf("jobs: rank %d reporting done: %w", rc.Rank, err)
	}
	return nil
}

// rankProgress is the step/loss cell shared between the training loop and
// the heartbeat goroutine.
type rankProgress struct {
	step atomic.Int64
	loss atomic.Uint64
}

func (p *rankProgress) store(step int, loss float64) {
	p.step.Store(int64(step))
	p.loss.Store(math.Float64bits(loss))
}

func (p *rankProgress) load() (int, float64) {
	return int(p.step.Load()), math.Float64frombits(p.loss.Load())
}

// buildModel constructs the spec's model deterministically (same seed on
// every rank → identical initial weights, matching the simulator runs).
func buildModel(spec Spec) *graph.Model {
	return models.MLP(models.Config{
		Classes: 4, Channels: 1, Height: 8, Width: 8,
		WithHead: true, Seed: spec.Seed,
	}, spec.Hidden)
}

// buildDataset generates the job's synthetic training set (identical on
// every rank; the distributed sampler shards it).
func buildDataset(spec Spec) *training.InMemoryDataset {
	return training.SyntheticClassification(spec.Samples, 4, []int{1, 8, 8}, 0.25, spec.Seed)
}

// buildRule resolves the spec's optimizer name.
func buildRule(spec Spec) (training.ThreeStep, error) {
	lr := float32(spec.LR)
	switch spec.Optimizer {
	case "sgd":
		return training.NewGradientDescent(lr), nil
	case "momentum":
		return training.NewMomentum(lr, 0.9), nil
	case "adam":
		return training.NewAdam(lr), nil
	case "rmsprop":
		return training.NewRMSProp(lr, 0.9), nil
	}
	return nil, fmt.Errorf("jobs: unknown optimizer %q (sgd, momentum, adam, rmsprop)", spec.Optimizer)
}

// runPS is rank 0 of a centralized scheme: the parameter server owning the
// authoritative weights. Async jobs serve until every worker reports done
// (restart-tolerant); sync jobs serve a fixed per-worker step count.
func runPS(ctx context.Context, rank *transport.TCPRank, spec Spec) error {
	rule, err := buildRule(spec)
	if err != nil {
		return err
	}
	e := executor.MustNew(buildModel(spec))
	e.SetTraining(true)
	cfg := dist.ServerConfig{Mode: dist.PSSync, StepsPerWorker: spec.TotalSteps()}
	if spec.Scheme == SchemeASGD {
		cfg = dist.ServerConfig{Mode: dist.PSAsync, UntilDone: true}
	}
	return dist.RunPSServer(ctx, rank, rule, dist.PackParams(e.Network()), cfg)
}

// runTrainLoop is a worker rank: shard the data, train for the spec's step
// budget through the scheme's optimizer, checkpoint on cadence, resume
// from the checkpoint when one exists.
func runTrainLoop(ctx context.Context, rank *transport.TCPRank, spec Spec, rankID int, progress *rankProgress) error {
	workerIdx := spec.WorkerIndex(rankID)
	model := buildModel(spec)
	ckptPath := ""
	if spec.Scheme.Restartable() {
		ckptPath = spec.CheckpointPath(rankID)
	}
	if ckptPath != "" {
		if err := os.MkdirAll(spec.CheckpointDir, 0o755); err != nil {
			return fmt.Errorf("jobs: rank %d checkpoint dir: %w", rankID, err)
		}
	}

	// Resume: a checkpoint left by a previous incarnation replaces the
	// fresh model and rewinds the sampler cursor and step counter.
	var resume *graph.TrainState
	if ckptPath != "" {
		if ck, err := graph.LoadCheckpoint(ckptPath); err == nil && ck.Train != nil {
			model = ck.Model
			resume = ck.Train
		} else if err != nil && !os.IsNotExist(err) {
			return fmt.Errorf("jobs: rank %d loading checkpoint %s: %w", rankID, ckptPath, err)
		}
	}

	e := executor.MustNew(model)
	e.SetTraining(true)
	ds := buildDataset(spec)
	sampler := dist.NewDistributedSampler(ds, spec.Batch, workerIdx, spec.Workers, spec.Seed)

	var opt training.Optimizer
	var cw *dist.CentralizedWorker
	if spec.Scheme.Centralized() {
		cw = dist.NewCentralizedWorker(e, rank)
		opt = cw
	} else {
		rule, err := buildRule(spec)
		if err != nil {
			return err
		}
		opt = dist.NewConsistentDecentralized(training.NewDriver(e, rule), rank, mpi.AllreduceRing)
	}

	step := 0
	if resume != nil {
		step = resume.Step
		st := training.SamplerState{Order: resume.SamplerOrder, Pos: resume.SamplerPos}
		if resume.HasSamplerRNG {
			rng := resume.SamplerRNG
			st.RNG = &rng
		}
		if err := sampler.RestoreState(st); err != nil {
			return fmt.Errorf("jobs: rank %d restoring sampler: %w", rankID, err)
		}
	}

	total := spec.TotalSteps()
	perEpoch := spec.StepsPerEpoch()
	var lastLoss float64
	for step < total {
		if err := ctx.Err(); err != nil {
			return err
		}
		b := sampler.Next()
		if b == nil {
			sampler.Reset()
			continue
		}
		// First and every traceStepEvery-th step get a span with the full
		// per-op subtree; the rest run with span-free contexts.
		var stepSpan *trace.Span
		stepCtx := ctx
		if parent := trace.FromContext(ctx); parent != nil {
			if step%traceStepEvery == 0 {
				stepSpan = parent.StartChild("dist.step", trace.Int("step", step+1))
				stepCtx = trace.NewContext(ctx, stepSpan)
			} else {
				stepCtx = trace.WithoutSpan(ctx)
			}
		}
		out, err := opt.Train(stepCtx, b.Feeds())
		if err != nil {
			stepSpan.SetError(err)
			stepSpan.End()
			return err
		}
		step++
		if loss, ok := out["loss"]; ok && loss.Size() > 0 {
			lastLoss = float64(loss.Data()[0])
		}
		stepSpan.AddAttrs(trace.Float("loss", lastLoss))
		stepSpan.End()
		progress.store(step, lastLoss)
		if ckptPath != "" && (step%spec.CheckpointEvery == 0 || step == total) {
			if err := saveWorkerCheckpoint(ckptPath, model, sampler, step, perEpoch); err != nil {
				return fmt.Errorf("jobs: rank %d checkpointing: %w", rankID, err)
			}
		}
	}
	if cw != nil && spec.Scheme == SchemeASGD {
		cw.Finish()
	}
	return nil
}

// saveWorkerCheckpoint writes a worker's exact-resume state: the model
// weights as of this step (cloned — the optimizer keeps mutating the live
// tensors), the shard cursor, and the step counter. Parameter-server
// schemes keep optimizer slots on the server, so the worker state carries
// none.
func saveWorkerCheckpoint(path string, model *graph.Model, sampler *dist.DistributedSampler, step, perEpoch int) error {
	m := model.Clone()
	st := sampler.CaptureState()
	ts := &graph.TrainState{
		Step:         step,
		EpochsDone:   step / perEpoch,
		MidEpoch:     step%perEpoch != 0,
		SamplerOrder: st.Order,
		SamplerPos:   st.Pos,
	}
	if st.RNG != nil {
		ts.HasSamplerRNG = true
		ts.SamplerRNG = *st.RNG
	}
	return graph.SaveCheckpoint(&graph.Checkpoint{Model: m, Train: ts}, path)
}

// controlClient is the rank side of the control-plane HTTP protocol.
type controlClient struct {
	base  string
	jobID string
	http  *http.Client
}

func (c *controlClient) url(suffix string) string {
	return fmt.Sprintf("%s/v1/jobs/%s%s", c.base, c.jobID, suffix)
}

func (c *controlClient) fetchJob(ctx context.Context) (*Job, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.url(""), nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("control plane returned %s", resp.Status)
	}
	var job Job
	if err := json.NewDecoder(resp.Body).Decode(&job); err != nil {
		return nil, err
	}
	return &job, nil
}

// post sends a JSON body, retrying briefly — the control plane owns the
// job lifecycle, so a lost done/register report would strand the rank.
func (c *controlClient) post(ctx context.Context, suffix string, body any) error {
	payload, err := json.Marshal(body)
	if err != nil {
		return err
	}
	var lastErr error
	for attempt := 0; attempt < 3; attempt++ {
		if attempt > 0 {
			select {
			case <-time.After(time.Duration(attempt) * 200 * time.Millisecond):
			case <-ctx.Done():
				return ctx.Err()
			}
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.url(suffix), bytes.NewReader(payload))
		if err != nil {
			return err
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := c.http.Do(req)
		if err != nil {
			lastErr = err
			continue
		}
		resp.Body.Close()
		if resp.StatusCode/100 == 2 {
			return nil
		}
		lastErr = fmt.Errorf("control plane returned %s", resp.Status)
	}
	return lastErr
}

func (c *controlClient) register(ctx context.Context, rank int, addr string, pid int) error {
	return c.post(ctx, "/register", map[string]any{"rank": rank, "addr": addr, "pid": pid})
}

func (c *controlClient) heartbeat(ctx context.Context, rank, step int, loss float64) error {
	return c.post(ctx, "/heartbeat", map[string]any{"rank": rank, "step": step, "loss": loss})
}

func (c *controlClient) done(ctx context.Context, rank, step int, loss float64) error {
	return c.post(ctx, "/done", map[string]any{"rank": rank, "step": step, "loss": loss})
}

func (c *controlClient) uploadSpans(ctx context.Context, spans []trace.SpanData) error {
	return c.post(ctx, "/spans", map[string]any{"spans": spans})
}

// awaitPeers polls the control plane until every rank this one must dial
// has registered a transport address.
func (c *controlClient) awaitPeers(ctx context.Context, rank int, dialRanks []int) ([]string, error) {
	need := dialRanks
	if need == nil {
		need = make([]int, rank)
		for i := range need {
			need[i] = i
		}
	}
	deadline := time.Now().Add(60 * time.Second)
	for {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.url("/peers"), nil)
		if err != nil {
			return nil, err
		}
		resp, err := c.http.Do(req)
		if err == nil && resp.StatusCode == http.StatusOK {
			var body struct {
				Addrs []string `json:"addrs"`
			}
			decodeErr := json.NewDecoder(resp.Body).Decode(&body)
			resp.Body.Close()
			if decodeErr == nil {
				ready := true
				for _, r := range need {
					if r < len(body.Addrs) && body.Addrs[r] == "" {
						ready = false
						break
					}
				}
				if ready {
					return body.Addrs, nil
				}
			}
		} else if resp != nil {
			resp.Body.Close()
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("jobs: rank %d: peers not registered within 60s", rank)
		}
		select {
		case <-time.After(50 * time.Millisecond):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}
