package jobs

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"deep500/internal/obs/trace"
)

// Config parameterizes a Manager.
type Config struct {
	// Runner spawns rank processes (required).
	Runner Runner
	// HeartbeatTimeout is how long a rank may go silent before the manager
	// declares it dead and kills its process (the exit path then decides
	// restart vs fail). Default 15s.
	HeartbeatTimeout time.Duration
	// PollInterval is the monitor's heartbeat-check cadence. Default 1s.
	PollInterval time.Duration
	// Metrics receives control-plane observations (default: fresh instance).
	Metrics *Metrics
	// Tracer, when non-nil, traces every job: Submit starts a forced
	// "dist.job" root span, rewrites the spec's trace context so rank
	// processes join it, and POST /v1/jobs/{id}/spans merges the spans
	// they upload back — one tree across launcher, PS and workers.
	Tracer *trace.Tracer
}

// Manager is the lifecycle manager: it owns the job table, spawns rank
// processes through the Runner, watches their exits and heartbeats, and
// drives the state machine — including restarting dead workers of
// restartable schemes from their checkpoints.
type Manager struct {
	cfg Config

	mu     sync.Mutex
	jobs   map[string]*Job
	nextID int

	wg sync.WaitGroup
}

// NewManager builds a Manager.
func NewManager(cfg Config) (*Manager, error) {
	if cfg.Runner == nil {
		return nil, fmt.Errorf("jobs: Config.Runner is required")
	}
	if cfg.HeartbeatTimeout <= 0 {
		cfg.HeartbeatTimeout = 15 * time.Second
	}
	if cfg.PollInterval <= 0 {
		cfg.PollInterval = time.Second
	}
	if cfg.Metrics == nil {
		cfg.Metrics = NewMetrics()
	}
	return &Manager{cfg: cfg, jobs: make(map[string]*Job)}, nil
}

// Metrics returns the manager's metrics surface.
func (m *Manager) Metrics() *Metrics { return m.cfg.Metrics }

// Submit validates a spec, creates the job, and deploys its rank
// processes. It returns the job snapshot once every process has been
// spawned (registration and training proceed asynchronously).
func (m *Manager) Submit(spec Spec) (*Job, error) {
	spec = spec.WithDefaults()
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	var span *trace.Span
	if tr := m.cfg.Tracer; tr.Enabled() {
		attrs := []trace.Attr{
			trace.String("scheme", string(spec.Scheme)),
			trace.Int("workers", spec.Workers),
			trace.String("name", spec.Name),
		}
		if rm, ok := trace.Parse(spec.Trace); ok {
			span = tr.StartRemote(rm, "dist.job", attrs...)
		} else {
			span = tr.StartRoot("dist.job", attrs...)
		}
		// A job trace is always worth keeping, however fast the job ran.
		span.Force()
		// Rank processes fetch the spec back; this is how they join the
		// job's trace.
		spec.Trace = trace.Format(span.TraceID(), span.SpanID())
	}
	m.mu.Lock()
	m.nextID++
	j := &Job{
		ID:      fmt.Sprintf("job-%d", m.nextID),
		Spec:    spec,
		State:   StatePending,
		Created: time.Now(),
		exits:   make(chan exitEvent, spec.WorldSize()*4),
		stop:    make(chan struct{}),
		span:    span,
	}
	for rank := 0; rank < spec.WorldSize(); rank++ {
		role := "worker"
		if spec.Scheme.Centralized() && rank == 0 {
			role = "ps"
		}
		j.Workers = append(j.Workers, &Worker{
			Rank: rank, Role: role, Phase: WorkerStarting, LastHeartbeat: time.Now(),
		})
	}
	m.jobs[j.ID] = j
	span.AddAttrs(trace.String("job", j.ID))
	m.cfg.Metrics.JobsSubmitted.Inc()
	m.mu.Unlock()

	if err := m.deploy(j); err != nil {
		m.mu.Lock()
		m.failLocked(j, fmt.Sprintf("deploy: %v", err))
		snap := j.snapshot()
		m.mu.Unlock()
		return snap, err
	}
	m.wg.Add(1)
	go m.monitor(j)

	m.mu.Lock()
	snap := j.snapshot()
	m.mu.Unlock()
	return snap, nil
}

// deploy spawns every rank process and moves the job to running.
func (m *Manager) deploy(j *Job) error {
	m.mu.Lock()
	j.State = StateDeploying
	m.mu.Unlock()
	for rank := range j.Workers {
		if err := m.spawnRank(j, rank); err != nil {
			return err
		}
	}
	m.mu.Lock()
	if !j.State.Terminal() {
		j.State = StateRunning
		j.Started = time.Now()
		m.cfg.Metrics.JobsRunning.Inc()
	}
	m.mu.Unlock()
	return nil
}

// spawnRank starts (or restarts) one rank process and watches its exit.
func (m *Manager) spawnRank(j *Job, rank int) error {
	proc, err := m.cfg.Runner.Start(j, rank)
	if err != nil {
		return err
	}
	m.mu.Lock()
	if j.State.Terminal() {
		// The job ended while this (re)start was in flight — nothing would
		// ever kill the fresh process, so reap it here instead of tracking
		// it. Deciding under the lock also keeps wg.Add ordered before
		// Shutdown's wg.Wait.
		m.mu.Unlock()
		proc.Kill()
		go proc.Wait()
		return nil
	}
	w := j.Workers[rank]
	w.proc = proc
	w.PID = proc.PID()
	w.incarnation++
	w.done = false
	w.Phase = WorkerRunning
	w.LastHeartbeat = time.Now()
	incarnation := w.incarnation
	m.cfg.Metrics.WorkersRunning.Inc()
	m.wg.Add(1)
	m.mu.Unlock()

	go func() {
		defer m.wg.Done()
		err := proc.Wait()
		m.cfg.Metrics.WorkersRunning.Dec()
		select {
		case j.exits <- exitEvent{rank: rank, incarnation: incarnation, err: err}:
		case <-j.stop:
		}
	}()
	return nil
}

// monitor is the per-job control loop: it reacts to process exits and
// enforces heartbeat deadlines until the job reaches a terminal state.
func (m *Manager) monitor(j *Job) {
	defer m.wg.Done()
	ticker := time.NewTicker(m.cfg.PollInterval)
	defer ticker.Stop()
	for {
		select {
		case <-j.stop:
			return
		case ev := <-j.exits:
			m.handleExit(j, ev)
		case <-ticker.C:
			m.checkHeartbeats(j)
		}
	}
}

// handleExit drives the state machine on a rank process termination.
func (m *Manager) handleExit(j *Job, ev exitEvent) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if j.State.Terminal() {
		return
	}
	w := j.Workers[ev.rank]
	if ev.incarnation != w.incarnation {
		return // stale notice from an already-replaced process
	}
	w.proc = nil
	if w.done && ev.err == nil {
		w.Phase = WorkerDone
		m.checkSucceededLocked(j)
		return
	}
	// Crash (or clean exit without reporting done — equally a failure).
	w.Phase = WorkerCrashed
	if ev.err != nil {
		w.Error = ev.err.Error()
	} else {
		w.Error = "exited without completing"
	}
	restartable := j.Spec.Scheme.Restartable() && w.Role == "worker"
	if restartable && w.Restarts < j.Spec.MaxRestarts {
		w.Restarts++
		w.Phase = WorkerRestarted
		m.cfg.Metrics.WorkerRestarts.Inc()
		rank := ev.rank
		// Spawn outside the lock; a spawn failure fails the job.
		go func() {
			if err := m.spawnRank(j, rank); err != nil {
				m.mu.Lock()
				m.failLocked(j, fmt.Sprintf("restarting rank %d: %v", rank, err))
				m.mu.Unlock()
			}
		}()
		return
	}
	m.failLocked(j, fmt.Sprintf("rank %d (%s) died: %s (restarts exhausted or scheme %s not restartable)",
		ev.rank, w.Role, w.Error, j.Spec.Scheme))
}

// checkHeartbeats kills ranks that went silent; their exit events then
// route through the normal crash path.
func (m *Manager) checkHeartbeats(j *Job) {
	m.mu.Lock()
	var stale []Proc
	if j.State == StateRunning {
		deadline := time.Now().Add(-m.cfg.HeartbeatTimeout)
		for _, w := range j.Workers {
			if w.Phase == WorkerRunning && w.proc != nil && w.LastHeartbeat.Before(deadline) {
				stale = append(stale, w.proc)
				m.cfg.Metrics.HeartbeatTimeouts.Inc()
			}
		}
	}
	m.mu.Unlock()
	for _, p := range stale {
		p.Kill()
	}
}

// checkSucceededLocked promotes the job when every rank completed.
func (m *Manager) checkSucceededLocked(j *Job) {
	for _, w := range j.Workers {
		if w.Phase != WorkerDone {
			return
		}
	}
	j.State = StateSucceeded
	j.Finished = time.Now()
	j.markStopped()
	m.cfg.Metrics.JobsRunning.Dec()
	m.cfg.Metrics.JobsSucceeded.Inc()
}

// failLocked moves the job to failed and kills every live process.
func (m *Manager) failLocked(j *Job, reason string) {
	if j.State.Terminal() {
		return
	}
	wasRunning := j.State == StateRunning
	j.State = StateFailed
	j.Error = reason
	j.Finished = time.Now()
	j.markStopped()
	if wasRunning {
		m.cfg.Metrics.JobsRunning.Dec()
	}
	m.cfg.Metrics.JobsFailed.Inc()
	m.killAllLocked(j)
}

// killAllLocked terminates every live rank process of j and settles their
// phases (a rank killed because its job ended is not "running" anymore).
func (m *Manager) killAllLocked(j *Job) {
	for _, w := range j.Workers {
		if w.proc != nil {
			w.proc.Kill()
			w.proc = nil
		}
		if w.Phase == WorkerStarting || w.Phase == WorkerRunning || w.Phase == WorkerRestarted {
			w.Phase = WorkerCrashed
			if w.Error == "" {
				w.Error = "terminated with job"
			}
		}
	}
}

// KillRank terminates one rank's process; the exit routes through the
// normal crash path (restart for restartable schemes, job failure
// otherwise). Tests and chaos drills use it to exercise recovery.
func (m *Manager) KillRank(id string, rank int) error {
	m.mu.Lock()
	j, ok := m.jobs[id]
	if !ok {
		m.mu.Unlock()
		return fmt.Errorf("jobs: no job %q", id)
	}
	if rank < 0 || rank >= len(j.Workers) {
		m.mu.Unlock()
		return fmt.Errorf("jobs: job %s has no rank %d", id, rank)
	}
	proc := j.Workers[rank].proc
	m.mu.Unlock()
	if proc == nil {
		return fmt.Errorf("jobs: job %s rank %d has no live process", id, rank)
	}
	return proc.Kill()
}

// Cancel terminates a job.
func (m *Manager) Cancel(id string) (*Job, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return nil, fmt.Errorf("jobs: no job %q", id)
	}
	if !j.State.Terminal() {
		wasRunning := j.State == StateRunning
		j.State = StateCancelled
		j.Finished = time.Now()
		j.markStopped()
		if wasRunning {
			m.cfg.Metrics.JobsRunning.Dec()
		}
		m.killAllLocked(j)
	}
	return j.snapshot(), nil
}

// Get returns a job snapshot.
func (m *Manager) Get(id string) (*Job, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return nil, fmt.Errorf("jobs: no job %q", id)
	}
	return j.snapshot(), nil
}

// List returns snapshots of every job, oldest first.
func (m *Manager) List() []*Job {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]*Job, 0, len(m.jobs))
	for _, j := range m.jobs {
		out = append(out, j.snapshot())
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Created.Before(out[b].Created) })
	return out
}

// Register records a rank process's transport listen address; the worker
// HTTP surface calls it, and peers poll PeerAddrs until the mesh is
// dialable.
func (m *Manager) Register(id string, rank int, addr string, pid int) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return fmt.Errorf("jobs: no job %q", id)
	}
	if rank < 0 || rank >= len(j.Workers) {
		return fmt.Errorf("jobs: job %s has no rank %d", id, rank)
	}
	w := j.Workers[rank]
	w.Addr = addr
	if pid != 0 {
		w.PID = pid
	}
	w.LastHeartbeat = time.Now()
	return nil
}

// PeerAddrs returns the per-rank transport addresses registered so far
// ("" for ranks that have not registered yet).
func (m *Manager) PeerAddrs(id string) ([]string, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return nil, fmt.Errorf("jobs: no job %q", id)
	}
	addrs := make([]string, len(j.Workers))
	for i, w := range j.Workers {
		addrs[i] = w.Addr
	}
	return addrs, nil
}

// Heartbeat records a rank's liveness report.
func (m *Manager) Heartbeat(id string, rank, step int, loss float64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return fmt.Errorf("jobs: no job %q", id)
	}
	if rank < 0 || rank >= len(j.Workers) {
		return fmt.Errorf("jobs: job %s has no rank %d", id, rank)
	}
	w := j.Workers[rank]
	w.LastHeartbeat = time.Now()
	w.Step = step
	w.Loss = loss
	m.cfg.Metrics.Heartbeats.Inc()
	return nil
}

// Done records a rank's successful completion; the job succeeds once every
// rank has both reported done and exited cleanly.
func (m *Manager) Done(id string, rank, step int, loss float64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return fmt.Errorf("jobs: no job %q", id)
	}
	if rank < 0 || rank >= len(j.Workers) {
		return fmt.Errorf("jobs: job %s has no rank %d", id, rank)
	}
	w := j.Workers[rank]
	w.done = true
	w.LastHeartbeat = time.Now()
	if step > 0 {
		w.Step = step
	}
	if loss != 0 {
		w.Loss = loss
	}
	return nil
}

// IngestSpans merges spans a rank process uploaded into the manager's
// flight recorder, grafting the worker subtrees onto the job trace. A
// no-op (but still an existence check) when the manager is untraced.
func (m *Manager) IngestSpans(id string, spans []trace.SpanData) error {
	m.mu.Lock()
	_, ok := m.jobs[id]
	m.mu.Unlock()
	if !ok {
		return fmt.Errorf("jobs: no job %q", id)
	}
	if m.cfg.Tracer.Enabled() {
		m.cfg.Tracer.Recorder().Ingest(spans)
	}
	return nil
}

// Shutdown cancels every live job and waits for monitors and process
// watchers to drain.
func (m *Manager) Shutdown() {
	m.mu.Lock()
	for _, j := range m.jobs {
		if !j.State.Terminal() {
			wasRunning := j.State == StateRunning
			j.State = StateCancelled
			j.Finished = time.Now()
			j.markStopped()
			if wasRunning {
				m.cfg.Metrics.JobsRunning.Dec()
			}
			m.killAllLocked(j)
		}
	}
	m.mu.Unlock()
	m.wg.Wait()
}
