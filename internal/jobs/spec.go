// Package jobs is the FfDL-shaped control plane over the networked
// distributed-training stack: a trainer service that accepts JSON job
// specs, a lifecycle manager that spawns one OS process per rank (a
// parameter server plus workers, or a decentralized ring), monitors them
// through heartbeats, restarts dead workers from their exact-resume
// checkpoints, and a job monitor speaking HTTP (/v1/jobs, /v1/jobs/{id}).
// The data plane underneath is internal/transport: every rank process
// speaks the TCP fabric, so the same dist optimizers that run on the
// in-process simulator train across real processes.
package jobs

import (
	"fmt"
	"strings"

	"deep500/internal/obs/trace"
)

// Scheme is a distributed training scheme the control plane can launch.
type Scheme string

const (
	// SchemeASGD is the asynchronous parameter server (HOGWILD-style).
	// Rank 0 serves in done-counting mode, so workers are restartable: a
	// replayed gradient after a checkpoint restart is just one more
	// asynchronous update.
	SchemeASGD Scheme = "asgd"
	// SchemePSSGD is the synchronous parameter server. Rounds assume exact
	// per-worker step counts, so a worker loss fails the job.
	SchemePSSGD Scheme = "pssgd"
	// SchemeDSGD is decentralized allreduce-averaged SGD over the ring.
	// The ring blocks on a dead member, so a worker loss fails the job.
	SchemeDSGD Scheme = "dsgd"
)

// Centralized reports whether the scheme dedicates rank 0 to a parameter
// server.
func (s Scheme) Centralized() bool { return s == SchemeASGD || s == SchemePSSGD }

// Restartable reports whether a dead worker can rejoin from its checkpoint
// without corrupting the scheme's consistency model. Only the asynchronous
// server qualifies: sync rounds and the allreduce ring both assume a fixed
// member set in lockstep.
func (s Scheme) Restartable() bool { return s == SchemeASGD }

// Spec is a training job specification, submitted as JSON to
// POST /v1/jobs. Zero fields take the documented defaults.
type Spec struct {
	// Name labels the job in listings (default "train").
	Name string `json:"name,omitempty"`
	// Scheme selects the distribution scheme (default asgd).
	Scheme Scheme `json:"scheme,omitempty"`
	// Model names the model architecture (currently "mlp").
	Model string `json:"model,omitempty"`
	// Hidden is the MLP hidden width (default 32).
	Hidden int `json:"hidden,omitempty"`
	// Optimizer is the update rule ("sgd", "momentum", "adam", ...; the
	// server applies it in centralized schemes, each worker in dsgd).
	Optimizer string `json:"optimizer,omitempty"`
	// LR is the learning rate (default 0.05).
	LR float64 `json:"lr,omitempty"`
	// Workers is the number of training workers (default 2); centralized
	// schemes add a parameter-server rank on top.
	Workers int `json:"workers,omitempty"`
	// Epochs is the number of passes over each worker's shard (default 2).
	Epochs int `json:"epochs,omitempty"`
	// Batch is the per-worker minibatch (default 8).
	Batch int `json:"batch,omitempty"`
	// Samples is the synthetic training-set size (default 512).
	Samples int `json:"samples,omitempty"`
	// Seed fixes the model init, data generation and shard permutation.
	Seed uint64 `json:"seed,omitempty"`
	// CheckpointDir, when set, enables exact-resume checkpointing: each
	// worker writes rank-<r>.d5nx there and a restarted worker resumes from
	// it (required for restart recovery; without it a restarted worker
	// rejoins from step 0).
	CheckpointDir string `json:"checkpoint_dir,omitempty"`
	// CheckpointEvery is the checkpoint cadence in steps (default 5).
	CheckpointEvery int `json:"checkpoint_every,omitempty"`
	// QuantBits, when 1..8, ships gradients quantized at that width.
	QuantBits uint `json:"quant_bits,omitempty"`
	// MaxRestarts bounds per-worker restarts (default 2).
	MaxRestarts int `json:"max_restarts,omitempty"`
	// Trace is the job's trace context in d500-trace header form
	// ("<16hex>-<16hex>"). A traced manager overwrites it on submit with
	// its own job span, so every rank process fetching the spec joins the
	// same trace; a submitter may pre-set it to graft the job onto an
	// existing trace.
	Trace string `json:"trace,omitempty"`
}

// WithDefaults returns the spec with zero fields filled in.
func (s Spec) WithDefaults() Spec {
	if s.Name == "" {
		s.Name = "train"
	}
	if s.Scheme == "" {
		s.Scheme = SchemeASGD
	}
	if s.Model == "" {
		s.Model = "mlp"
	}
	if s.Hidden <= 0 {
		s.Hidden = 32
	}
	if s.Optimizer == "" {
		s.Optimizer = "sgd"
	}
	if s.LR <= 0 {
		s.LR = 0.05
	}
	if s.Workers <= 0 {
		s.Workers = 2
	}
	if s.Epochs <= 0 {
		s.Epochs = 2
	}
	if s.Batch <= 0 {
		s.Batch = 8
	}
	if s.Samples <= 0 {
		s.Samples = 512
	}
	if s.CheckpointEvery <= 0 {
		s.CheckpointEvery = 5
	}
	if s.MaxRestarts <= 0 {
		s.MaxRestarts = 2
	}
	return s
}

// Validate rejects structurally impossible specs. Call on a
// defaults-applied spec.
func (s Spec) Validate() error {
	switch s.Scheme {
	case SchemeASGD, SchemePSSGD, SchemeDSGD:
	default:
		return fmt.Errorf("jobs: unknown scheme %q (asgd, pssgd, dsgd)", s.Scheme)
	}
	if strings.ToLower(s.Model) != "mlp" {
		return fmt.Errorf("jobs: unknown model %q (mlp)", s.Model)
	}
	if s.QuantBits > 8 {
		return fmt.Errorf("jobs: quant_bits %d out of range [0, 8]", s.QuantBits)
	}
	if s.StepsPerEpoch() < 1 {
		return fmt.Errorf("jobs: %d samples across %d workers at batch %d yields zero steps per epoch",
			s.Samples, s.Workers, s.Batch)
	}
	if s.Trace != "" {
		if _, ok := trace.Parse(s.Trace); !ok {
			return fmt.Errorf("jobs: malformed trace context %q (want <16hex>-<16hex>)", s.Trace)
		}
	}
	return nil
}

// WorldSize is the rank count: workers plus the parameter server for
// centralized schemes.
func (s Spec) WorldSize() int {
	if s.Scheme.Centralized() {
		return s.Workers + 1
	}
	return s.Workers
}

// WorkerIndex maps a rank to its 0-based worker index (data shard).
func (s Spec) WorkerIndex(rank int) int {
	if s.Scheme.Centralized() {
		return rank - 1
	}
	return rank
}

// StepsPerEpoch is each worker's step count per epoch: the dataset is
// sharded evenly and trailing partial batches are dropped, so every worker
// takes exactly this many steps.
func (s Spec) StepsPerEpoch() int { return s.Samples / s.Workers / s.Batch }

// TotalSteps is the per-worker step budget of the whole job.
func (s Spec) TotalSteps() int { return s.StepsPerEpoch() * s.Epochs }

// CheckpointPath is worker rank's checkpoint file ("" when checkpointing
// is off).
func (s Spec) CheckpointPath(rank int) string {
	if s.CheckpointDir == "" {
		return ""
	}
	return fmt.Sprintf("%s/rank-%d.d5nx", s.CheckpointDir, rank)
}
