package jobs

import (
	"errors"
	"time"

	"deep500/internal/obs/trace"
)

// JobState is the lifecycle state of a job (the FfDL-style state machine:
// pending → deploying → running → succeeded | failed | cancelled, with
// per-worker restarts inside running).
type JobState string

const (
	StatePending   JobState = "pending"
	StateDeploying JobState = "deploying"
	StateRunning   JobState = "running"
	StateSucceeded JobState = "succeeded"
	StateFailed    JobState = "failed"
	StateCancelled JobState = "cancelled"
)

// Terminal reports whether no further transitions happen.
func (s JobState) Terminal() bool {
	return s == StateSucceeded || s == StateFailed || s == StateCancelled
}

// WorkerPhase is the lifecycle state of one rank process.
type WorkerPhase string

const (
	WorkerStarting  WorkerPhase = "starting"
	WorkerRunning   WorkerPhase = "running"
	WorkerDone      WorkerPhase = "done"
	WorkerCrashed   WorkerPhase = "crashed"
	WorkerRestarted WorkerPhase = "restarted" // crashed, replacement spawned
)

// Worker is the control plane's view of one rank.
type Worker struct {
	// Rank is the transport rank; rank 0 is the parameter server in
	// centralized schemes.
	Rank int `json:"rank"`
	// Role is "ps" or "worker".
	Role string `json:"role"`
	// PID is the rank process's OS pid (negative for in-process test
	// runners). The CI smoke test reads it to kill a worker mid-run.
	PID int `json:"pid"`
	// Addr is the rank's transport listen address, registered by the
	// process at startup ("" until then, and for the highest rank, which
	// only dials).
	Addr string `json:"addr,omitempty"`
	// Phase is the rank's lifecycle state.
	Phase WorkerPhase `json:"phase"`
	// Restarts counts replacement processes spawned for this rank.
	Restarts int `json:"restarts"`
	// Step and Loss mirror the rank's latest heartbeat.
	Step int     `json:"step"`
	Loss float64 `json:"loss"`
	// LastHeartbeat is the arrival time of the latest heartbeat (or spawn
	// time before the first one).
	LastHeartbeat time.Time `json:"last_heartbeat"`
	// Error is the failure message of a crashed rank.
	Error string `json:"error,omitempty"`

	// incarnation discriminates process generations so a stale exit
	// notification from a replaced process is ignored.
	incarnation int
	proc        Proc
	done        bool // rank reported completion via POST done
}

// Job is one tracked training job. All fields are guarded by the owning
// Manager's mutex; JSON marshalling happens on snapshots.
type Job struct {
	ID      string    `json:"id"`
	Spec    Spec      `json:"spec"`
	State   JobState  `json:"state"`
	Created time.Time `json:"created"`
	Started time.Time `json:"started,omitempty"`
	// Finished is the terminal-transition time.
	Finished time.Time `json:"finished,omitempty"`
	// Error is the failure reason of a failed job.
	Error string `json:"error,omitempty"`
	// Workers is indexed by rank.
	Workers []*Worker `json:"workers"`

	exits   chan exitEvent
	stop    chan struct{} // closed on terminal transition; stops the monitor
	stopped bool
	// span is the job's forced "dist.job" root span (nil when the manager
	// is untraced); it ends on the terminal transition.
	span *trace.Span
}

// exitEvent is a rank process termination notice.
type exitEvent struct {
	rank        int
	incarnation int
	err         error
}

// snapshot deep-copies the JSON-visible state (called under the manager
// lock; the copy is marshalled outside it).
func (j *Job) snapshot() *Job {
	cp := &Job{
		ID: j.ID, Spec: j.Spec, State: j.State,
		Created: j.Created, Started: j.Started, Finished: j.Finished,
		Error:   j.Error,
		Workers: make([]*Worker, len(j.Workers)),
	}
	for i, w := range j.Workers {
		wc := *w
		wc.proc = nil
		cp.Workers[i] = &wc
	}
	return cp
}

// markStopped closes the monitor stop channel exactly once and ends the
// job span with the terminal state (manager lock held).
func (j *Job) markStopped() {
	if !j.stopped {
		j.stopped = true
		close(j.stop)
		j.span.AddAttrs(trace.String("state", string(j.State)))
		if j.State == StateFailed {
			j.span.SetError(errors.New(j.Error))
		}
		j.span.End()
	}
}
