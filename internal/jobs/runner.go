package jobs

import (
	"context"
	"fmt"
	"os"
	"os/exec"
	"sync/atomic"

	"deep500/internal/obs/trace"
)

// Proc is a running rank process as the lifecycle manager sees it.
type Proc interface {
	// Wait blocks until the process exits and returns its exit error.
	Wait() error
	// Kill terminates the process.
	Kill() error
	// PID is the OS pid (negative for in-process runners).
	PID() int
}

// Runner spawns rank processes. ExecRunner is the production
// implementation (one OS process per rank via os/exec); tests use
// LocalRunner to run ranks as goroutines under the race detector.
type Runner interface {
	Start(job *Job, rank int) (Proc, error)
}

// ExecRunner launches each rank as `<binary> -role <ps|worker> -job <id>
// -rank <r> -control <url>` — the d500dist single-binary re-exec pattern.
type ExecRunner struct {
	// Binary is the executable to launch (usually os.Executable()).
	Binary string
	// ControlURL is the manager's HTTP base URL the rank reports back to.
	ControlURL string
	// ExtraArgs are appended to every rank command line (d500dist forwards
	// its -trace flags through here so rank processes trace too).
	ExtraArgs []string
	// Stderr mirrors rank stderr into the manager's (default on).
	Quiet bool
}

// Start launches the rank process.
func (e *ExecRunner) Start(job *Job, rank int) (Proc, error) {
	role := "worker"
	if job.Spec.Scheme.Centralized() && rank == 0 {
		role = "ps"
	}
	args := []string{
		"-role", role,
		"-job", job.ID,
		"-rank", fmt.Sprint(rank),
		"-control", e.ControlURL,
	}
	args = append(args, e.ExtraArgs...)
	cmd := exec.Command(e.Binary, args...)
	if !e.Quiet {
		cmd.Stdout = os.Stdout
		cmd.Stderr = os.Stderr
	}
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("jobs: starting rank %d: %w", rank, err)
	}
	return &execProc{cmd: cmd}, nil
}

type execProc struct {
	cmd *exec.Cmd
}

func (p *execProc) Wait() error { return p.cmd.Wait() }
func (p *execProc) Kill() error { return p.cmd.Process.Kill() }
func (p *execProc) PID() int    { return p.cmd.Process.Pid }

// LocalRunner runs every rank as a goroutine inside this process —
// the control plane's test double, exercising the identical RunRank code
// path (HTTP registration, TCP transport, checkpoint restart) under the
// race detector. Kill cancels the rank's context.
type LocalRunner struct {
	// ControlURL is the manager's HTTP base URL.
	ControlURL string
	// Heartbeat overrides the rank heartbeat interval (tests shorten it).
	Heartbeat int // milliseconds; 0 = RunRank default
	// NewTracer, when set, builds each rank's tracer — one per rank, as
	// separate processes would have, so tests exercise the real
	// record-then-upload path.
	NewTracer func(rank int) *trace.Tracer

	pids atomic.Int64
}

// Start runs the rank in a goroutine.
func (l *LocalRunner) Start(job *Job, rank int) (Proc, error) {
	ctx, cancel := context.WithCancel(context.Background())
	p := &localProc{
		cancel: cancel,
		done:   make(chan error, 1),
		pid:    int(-(l.pids.Add(1))), // negative: not a real OS pid
	}
	rc := RankConfig{JobID: job.ID, Rank: rank, ControlURL: l.ControlURL}
	if l.Heartbeat > 0 {
		rc.HeartbeatMillis = l.Heartbeat
	}
	if l.NewTracer != nil {
		rc.Tracer = l.NewTracer(rank)
	}
	go func() { p.done <- RunRank(ctx, rc) }()
	return p, nil
}

type localProc struct {
	cancel context.CancelFunc
	done   chan error
	pid    int
	err    atomic.Pointer[error]
}

func (p *localProc) Wait() error {
	if e := p.err.Load(); e != nil {
		return *e
	}
	err := <-p.done
	p.err.Store(&err)
	return err
}

func (p *localProc) Kill() error {
	p.cancel()
	return nil
}

func (p *localProc) PID() int { return p.pid }
