package jobs

import (
	"net/http"
	"sync/atomic"

	"deep500/internal/obs"
)

// Metrics is the control plane's observability surface: every canonical
// d500_dist_* name (obs.DistNames) on one registry, exposed at /metrics in
// Prometheus text format alongside the job API.
type Metrics struct {
	reg *obs.Registry

	JobsSubmitted     *obs.Counter
	JobsSucceeded     *obs.Counter
	JobsFailed        *obs.Counter
	WorkerRestarts    *obs.Counter
	Heartbeats        *obs.Counter
	HeartbeatTimeouts *obs.Counter
	JobsRunning       *UpDown
	WorkersRunning    *UpDown
}

// UpDown adapts the set-only obs.Gauge into the inc/dec counter the
// lifecycle code wants for "currently running" quantities.
type UpDown struct {
	g *obs.Gauge
	v atomic.Int64
}

func (u *UpDown) Inc() { u.g.Set(float64(u.v.Add(1))) }
func (u *UpDown) Dec() { u.g.Set(float64(u.v.Add(-1))) }

// Value returns the current level.
func (u *UpDown) Value() int64 { return u.v.Load() }

// NewMetrics registers the distributed control-plane metrics on a fresh
// registry.
func NewMetrics() *Metrics {
	reg := obs.NewRegistry()
	return &Metrics{
		reg: reg,
		JobsSubmitted: reg.Counter(obs.MetricDistJobsSubmittedTotal,
			"Training jobs accepted by POST /v1/jobs."),
		JobsRunning: &UpDown{g: reg.Gauge(obs.MetricDistJobsRunning,
			"Jobs currently in the deploying or running state.")},
		JobsSucceeded: reg.Counter(obs.MetricDistJobsSucceededTotal,
			"Jobs that reached the succeeded state."),
		JobsFailed: reg.Counter(obs.MetricDistJobsFailedTotal,
			"Jobs that reached the failed state."),
		WorkersRunning: &UpDown{g: reg.Gauge(obs.MetricDistWorkersRunning,
			"Rank processes currently alive across all jobs.")},
		WorkerRestarts: reg.Counter(obs.MetricDistWorkerRestartsTotal,
			"Worker processes restarted from checkpoint after a crash."),
		Heartbeats: reg.Counter(obs.MetricDistHeartbeatsTotal,
			"Heartbeats received from rank processes."),
		HeartbeatTimeouts: reg.Counter(obs.MetricDistHeartbeatTimeoutTotal,
			"Rank processes killed for missing their heartbeat deadline."),
	}
}

// Handler serves the registry in Prometheus text exposition format.
func (m *Metrics) Handler() http.Handler { return m.reg.Handler() }
