package jobs

import (
	"encoding/json"
	"fmt"
	"net/http"

	"deep500/internal/obs/trace"
)

// Handler builds the trainer-service HTTP API over a Manager:
//
//	POST   /v1/jobs                 submit a Spec, returns the Job
//	GET    /v1/jobs                 list jobs
//	GET    /v1/jobs/{id}            one job's full status
//	DELETE /v1/jobs/{id}            cancel
//	GET    /v1/jobs/{id}/peers      rank → transport address table
//	POST   /v1/jobs/{id}/register   rank callback: transport address + pid
//	POST   /v1/jobs/{id}/heartbeat  rank callback: liveness + progress
//	POST   /v1/jobs/{id}/done       rank callback: clean completion
//	POST   /v1/jobs/{id}/spans      rank callback: trace-span upload
//	GET    /metrics                 Prometheus text exposition
//	GET    /healthz
func Handler(m *Manager) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		var spec Spec
		if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
			httpError(w, http.StatusBadRequest, fmt.Errorf("decoding spec: %w", err))
			return
		}
		// An inbound d500-trace header grafts the job onto the caller's
		// trace (same contract as the serve endpoints).
		if spec.Trace == "" {
			if rm, ok := trace.Parse(r.Header.Get(trace.HeaderName)); ok {
				spec.Trace = trace.Format(rm.Trace, rm.Span)
			}
		}
		job, err := m.Submit(spec)
		if err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		if job.Spec.Trace != "" {
			w.Header().Set(trace.HeaderName, job.Spec.Trace)
		}
		writeJSON(w, http.StatusAccepted, job)
	})
	mux.HandleFunc("GET /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"jobs": m.List()})
	})
	mux.HandleFunc("GET /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		job, err := m.Get(r.PathValue("id"))
		if err != nil {
			httpError(w, http.StatusNotFound, err)
			return
		}
		writeJSON(w, http.StatusOK, job)
	})
	mux.HandleFunc("DELETE /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		job, err := m.Cancel(r.PathValue("id"))
		if err != nil {
			httpError(w, http.StatusNotFound, err)
			return
		}
		writeJSON(w, http.StatusOK, job)
	})
	mux.HandleFunc("GET /v1/jobs/{id}/peers", func(w http.ResponseWriter, r *http.Request) {
		addrs, err := m.PeerAddrs(r.PathValue("id"))
		if err != nil {
			httpError(w, http.StatusNotFound, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"addrs": addrs})
	})
	mux.HandleFunc("POST /v1/jobs/{id}/register", func(w http.ResponseWriter, r *http.Request) {
		var body struct {
			Rank int    `json:"rank"`
			Addr string `json:"addr"`
			PID  int    `json:"pid"`
		}
		if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		if err := m.Register(r.PathValue("id"), body.Rank, body.Addr, body.PID); err != nil {
			httpError(w, http.StatusNotFound, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"ok": true})
	})
	mux.HandleFunc("POST /v1/jobs/{id}/heartbeat", func(w http.ResponseWriter, r *http.Request) {
		var body struct {
			Rank int     `json:"rank"`
			Step int     `json:"step"`
			Loss float64 `json:"loss"`
		}
		if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		if err := m.Heartbeat(r.PathValue("id"), body.Rank, body.Step, body.Loss); err != nil {
			httpError(w, http.StatusNotFound, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"ok": true})
	})
	mux.HandleFunc("POST /v1/jobs/{id}/done", func(w http.ResponseWriter, r *http.Request) {
		var body struct {
			Rank int     `json:"rank"`
			Step int     `json:"step"`
			Loss float64 `json:"loss"`
		}
		if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		if err := m.Done(r.PathValue("id"), body.Rank, body.Step, body.Loss); err != nil {
			httpError(w, http.StatusNotFound, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"ok": true})
	})
	mux.HandleFunc("POST /v1/jobs/{id}/spans", func(w http.ResponseWriter, r *http.Request) {
		var body struct {
			Spans []trace.SpanData `json:"spans"`
		}
		if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
			httpError(w, http.StatusBadRequest, fmt.Errorf("decoding spans: %w", err))
			return
		}
		if err := m.IngestSpans(r.PathValue("id"), body.Spans); err != nil {
			httpError(w, http.StatusNotFound, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"ok": true, "spans": len(body.Spans)})
	})
	mux.Handle("GET /metrics", m.Metrics().Handler())
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}
