package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"sync"
	"time"

	"deep500/internal/obs/trace"
)

// statusWriter records the status code and body size a handler produced.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(p)
	w.bytes += int64(n)
	return n, err
}

// accessEntry is one structured request-log line.
type accessEntry struct {
	Time   string  `json:"time"`
	Method string  `json:"method"`
	Path   string  `json:"path"`
	Status int     `json:"status"`
	Bytes  int64   `json:"bytes"`
	Millis float64 `json:"dur_ms"`
	Remote string  `json:"remote,omitempty"`
	// Trace is the request's trace-context exemplar (the d500-trace
	// response header a traced handler set): a slow log line hands its
	// trace ID straight to GET /debug/traces?trace=<id>.
	Trace string `json:"trace,omitempty"`
}

// Middleware wraps an HTTP handler with request observability: each
// response's status code increments requests (a CounterVec labeled by
// code), and — when logw is non-nil — one JSON object per request is
// written as a single line (structured access logs, the -log flag of
// d500serve). Either may be nil to disable that half.
func Middleware(next http.Handler, requests *CounterVec, logw io.Writer) http.Handler {
	var logMu sync.Mutex
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w}
		next.ServeHTTP(sw, r)
		if sw.status == 0 {
			sw.status = http.StatusOK
		}
		if requests != nil {
			requests.Inc(itoa(sw.status))
		}
		if logw != nil {
			line, err := json.Marshal(accessEntry{
				Time:   start.UTC().Format(time.RFC3339Nano),
				Method: r.Method,
				Path:   r.URL.Path,
				Status: sw.status,
				Bytes:  sw.bytes,
				Millis: float64(time.Since(start).Microseconds()) / 1000,
				Remote: r.RemoteAddr,
				Trace:  sw.Header().Get(trace.HeaderName),
			})
			if err == nil {
				logMu.Lock()
				logw.Write(append(line, '\n'))
				logMu.Unlock()
			}
		}
	})
}

// itoa converts a small positive int without strconv (keeps the hot
// middleware path allocation-light).
func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
