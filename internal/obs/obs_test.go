package obs

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func render(t *testing.T, r *Registry) string {
	t.Helper()
	var buf bytes.Buffer
	if err := r.Render(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// TestRenderFormat checks the text exposition basics: HELP/TYPE headers,
// sorted series, label quoting, and deterministic output.
func TestRenderFormat(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("zz_total", "a counter")
	g := r.Gauge("aa_depth", "a gauge")
	v := r.CounterVec("mm_requests_total", "by code", "code")
	r.GaugeFunc("ff_live", "from a func", func() float64 { return 3 })

	c.Add(2)
	c.Inc()
	g.Set(-1.5)
	v.Inc("200")
	v.Inc("200")
	v.Inc("500")

	out := render(t, r)
	for _, want := range []string{
		"# HELP zz_total a counter\n# TYPE zz_total counter\nzz_total 3\n",
		"# HELP aa_depth a gauge\n# TYPE aa_depth gauge\naa_depth -1.5\n",
		"mm_requests_total{code=\"200\"} 2\n",
		"mm_requests_total{code=\"500\"} 1\n",
		"ff_live 3\n",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
	// Sorted by name: aa before ff before mm before zz.
	if !(strings.Index(out, "aa_depth") < strings.Index(out, "ff_live") &&
		strings.Index(out, "ff_live") < strings.Index(out, "mm_requests_total") &&
		strings.Index(out, "mm_requests_total") < strings.Index(out, "zz_total")) {
		t.Fatalf("series not sorted by name:\n%s", out)
	}
	if out != render(t, r) {
		t.Fatal("render is not deterministic")
	}
}

// TestVecFuncs checks the func-driven labeled families: one series per
// map entry, label values sorted, series appearing and vanishing with the
// backing state (the model-registry shape).
func TestVecFuncs(t *testing.T) {
	r := NewRegistry()
	state := map[string]float64{"mlp": 2, "lenet": 5}
	r.GaugeVecFunc("tenant_depth", "queue depth by model", "model",
		func() map[string]float64 { return state })
	r.CounterVecFunc("tenant_total", "requests by model", "model",
		func() map[string]float64 { return state })

	out := render(t, r)
	for _, want := range []string{
		"# TYPE tenant_depth gauge\ntenant_depth{model=\"lenet\"} 5\ntenant_depth{model=\"mlp\"} 2\n",
		"# TYPE tenant_total counter\ntenant_total{model=\"lenet\"} 5\ntenant_total{model=\"mlp\"} 2\n",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}

	// Unloading a tenant drops its series; loading one adds it.
	delete(state, "lenet")
	state["cnn"] = 1
	out = render(t, r)
	if strings.Contains(out, "lenet") {
		t.Fatalf("unloaded tenant still rendered:\n%s", out)
	}
	if !strings.Contains(out, "tenant_depth{model=\"cnn\"} 1\n") {
		t.Fatalf("new tenant missing:\n%s", out)
	}

	// An empty family renders headers only — valid exposition.
	for k := range state {
		delete(state, k)
	}
	out = render(t, r)
	if strings.Contains(out, "tenant_depth{") {
		t.Fatalf("empty family rendered series:\n%s", out)
	}
	if !strings.Contains(out, "# TYPE tenant_depth gauge\n") {
		t.Fatalf("empty family lost its header:\n%s", out)
	}
}

// TestHistogram checks cumulative bucketing, the +Inf bucket, and sum/count.
func TestHistogram(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "latency", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.1, 0.5, 2, 100} {
		h.Observe(v)
	}
	out := render(t, r)
	for _, want := range []string{
		"lat_seconds_bucket{le=\"0.1\"} 2\n", // 0.05 and the boundary value 0.1
		"lat_seconds_bucket{le=\"1\"} 3\n",
		"lat_seconds_bucket{le=\"10\"} 4\n",
		"lat_seconds_bucket{le=\"+Inf\"} 5\n",
		"lat_seconds_sum 102.65\n",
		"lat_seconds_count 5\n",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestHistogramDefaultBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("d_seconds", "latency", nil)
	h.Observe(0.003)
	out := render(t, r)
	if !strings.Contains(out, "d_seconds_bucket{le=\"0.005\"} 1\n") {
		t.Fatalf("default latency buckets not applied:\n%s", out)
	}
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total", "x")
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	r.Counter("x_total", "again")
}

// TestHandler checks the scrape endpoint: GET only, Prometheus content
// type.
func TestHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total", "x").Inc()
	h := r.Handler()

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("GET /metrics: %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("content type %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "x_total 1") {
		t.Fatalf("body: %s", rec.Body.String())
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("POST", "/metrics", nil))
	if rec.Code != 405 {
		t.Fatalf("POST /metrics: want 405, got %d", rec.Code)
	}
}

// TestMiddleware checks request accounting by status code and the JSON
// access log.
func TestMiddleware(t *testing.T) {
	r := NewRegistry()
	requests := r.CounterVec(MetricServeRequestsTotal, "by code", "code")
	var log bytes.Buffer
	inner := http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Path == "/missing" {
			http.Error(w, "nope", http.StatusNotFound)
			return
		}
		w.Write([]byte("ok"))
	})
	h := Middleware(inner, requests, &log)

	for _, path := range []string{"/healthz", "/healthz", "/missing"} {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
	}

	out := render(t, r)
	if !strings.Contains(out, `{code="200"} 2`) || !strings.Contains(out, `{code="404"} 1`) {
		t.Fatalf("request accounting wrong:\n%s", out)
	}

	lines := strings.Split(strings.TrimSpace(log.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("want 3 access-log lines, got %d: %q", len(lines), log.String())
	}
	var entry struct {
		Time   string  `json:"time"`
		Method string  `json:"method"`
		Path   string  `json:"path"`
		Status int     `json:"status"`
		Bytes  int     `json:"bytes"`
		DurMS  float64 `json:"dur_ms"`
	}
	if err := json.Unmarshal([]byte(lines[2]), &entry); err != nil {
		t.Fatalf("access log is not one JSON object per line: %v (%q)", err, lines[2])
	}
	if entry.Method != "GET" || entry.Path != "/missing" || entry.Status != 404 || entry.Time == "" {
		t.Fatalf("access-log entry wrong: %+v", entry)
	}
}

// TestNames checks the canonical metric-name list the docs conformance
// gate consumes: well-formed Prometheus names, no duplicates.
func TestNames(t *testing.T) {
	names := Names()
	if len(names) == 0 {
		t.Fatal("Names() is empty")
	}
	seen := make(map[string]bool)
	for _, n := range names {
		if !strings.HasPrefix(n, "d500_") {
			t.Fatalf("metric %q lacks the d500_ prefix", n)
		}
		for _, c := range n {
			if !(c == '_' || c >= 'a' && c <= 'z' || c >= '0' && c <= '9') {
				t.Fatalf("metric %q has invalid character %q", n, c)
			}
		}
		if seen[n] {
			t.Fatalf("metric %q listed twice", n)
		}
		seen[n] = true
	}
}
