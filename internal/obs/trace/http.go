package trace

import (
	"encoding/json"
	"net/http"
	"sort"
)

// HTTP debug surface of the flight recorder:
//
//	GET /debug/traces            — retained traces as JSON
//	                               (?trace=<16 hex> selects one, 404 unknown)
//	GET /debug/traces/perfetto   — Chrome trace-event JSON, loadable in
//	                               ui.perfetto.dev ("Open trace file")

// traceJSON is one trace in the /debug/traces body.
type traceJSON struct {
	Trace string     `json:"trace"`
	Spans []SpanData `json:"spans"`
}

// Handler serves the debug routes above. Mount it at both /debug/traces
// and /debug/traces/ so the sub-path resolves.
func (r *Recorder) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /debug/traces", r.serveJSON)
	mux.HandleFunc("GET /debug/traces/{$}", r.serveJSON)
	mux.HandleFunc("GET /debug/traces/perfetto", r.servePerfetto)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // best-effort: the client may be gone
}

func (r *Recorder) serveJSON(w http.ResponseWriter, req *http.Request) {
	if q := req.URL.Query().Get("trace"); q != "" {
		id, ok := parseHex16(q)
		if !ok {
			writeJSON(w, http.StatusBadRequest, map[string]string{"error": "malformed trace id"})
			return
		}
		td, ok := r.Trace(id)
		if !ok {
			writeJSON(w, http.StatusNotFound, map[string]string{"error": "trace not retained"})
			return
		}
		writeJSON(w, http.StatusOK, traceJSON{Trace: FormatID(td.ID), Spans: td.Spans})
		return
	}
	all := r.Traces()
	out := struct {
		Traces []traceJSON `json:"traces"`
	}{Traces: make([]traceJSON, 0, len(all))}
	for _, td := range all {
		out.Traces = append(out.Traces, traceJSON{Trace: FormatID(td.ID), Spans: td.Spans})
	}
	writeJSON(w, http.StatusOK, out)
}

// perfettoEvent is one Chrome trace-event record. Spans render as "X"
// (complete) events; process names as "M" (metadata) events.
type perfettoEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

func (r *Recorder) servePerfetto(w http.ResponseWriter, req *http.Request) {
	all := r.Traces()

	// Stable pid per process name, in first-seen order.
	pids := map[string]int{}
	pid := func(proc string) int {
		if p, ok := pids[proc]; ok {
			return p
		}
		p := len(pids) + 1
		pids[proc] = p
		return p
	}

	events := []perfettoEvent{}
	nextTid := 1
	for _, td := range all {
		events = append(events, perfettoSpans(td, pid, &nextTid)...)
	}
	procs := make([]string, 0, len(pids))
	for p := range pids {
		procs = append(procs, p)
	}
	sort.Strings(procs)
	meta := make([]perfettoEvent, 0, len(procs))
	for _, p := range procs {
		name := p
		if name == "" {
			name = "d500"
		}
		meta = append(meta, perfettoEvent{
			Name: "process_name", Ph: "M", Pid: pids[p], Tid: 0,
			Args: map[string]any{"name": name},
		})
	}
	writeJSON(w, http.StatusOK, struct {
		TraceEvents     []perfettoEvent `json:"traceEvents"`
		DisplayTimeUnit string          `json:"displayTimeUnit"`
	}{TraceEvents: append(meta, events...), DisplayTimeUnit: "ms"})
}

// perfettoSpans renders one trace's spans as X events, assigning lanes
// (tids) so rendered slices on a lane always nest: a span joins a lane
// only if it fits inside that lane's innermost open slice. Sibling spans
// that overlap in time (parallel-backend ops) land on separate lanes
// instead of producing invalid nesting.
func perfettoSpans(td TraceData, pid func(string) int, nextTid *int) []perfettoEvent {
	type iv struct {
		span       SpanData
		start, end int64
	}
	byProc := map[string][]iv{}
	var procOrder []string
	for _, s := range td.Spans {
		start := s.Start.UnixNano()
		if _, ok := byProc[s.Process]; !ok {
			procOrder = append(procOrder, s.Process)
		}
		byProc[s.Process] = append(byProc[s.Process], iv{span: s, start: start, end: start + s.Duration.Nanoseconds()})
	}
	var out []perfettoEvent
	for _, proc := range procOrder {
		ivs := byProc[proc]
		sort.Slice(ivs, func(i, j int) bool {
			if ivs[i].start != ivs[j].start {
				return ivs[i].start < ivs[j].start
			}
			return ivs[i].end > ivs[j].end
		})
		// Each lane holds a stack of open intervals.
		var lanes [][]iv
		laneTid := []int{}
		for _, s := range ivs {
			lane := -1
			for li := range lanes {
				stack := lanes[li]
				for len(stack) > 0 && stack[len(stack)-1].end <= s.start {
					stack = stack[:len(stack)-1]
				}
				lanes[li] = stack
				if len(stack) == 0 || (s.start >= stack[len(stack)-1].start && s.end <= stack[len(stack)-1].end) {
					lane = li
					break
				}
			}
			if lane == -1 {
				lanes = append(lanes, nil)
				laneTid = append(laneTid, *nextTid)
				*nextTid++
				lane = len(lanes) - 1
			}
			lanes[lane] = append(lanes[lane], s)

			args := map[string]any{
				"trace": FormatID(s.span.Trace),
				"span":  FormatID(s.span.ID),
			}
			if s.span.Parent != 0 {
				args["parent"] = FormatID(s.span.Parent)
			}
			if len(s.span.Links) > 0 {
				links := make([]string, len(s.span.Links))
				for i, l := range s.span.Links {
					links[i] = FormatID(l)
				}
				args["links"] = links
			}
			if s.span.Error {
				args["error"] = true
			}
			for k, v := range attrMap(s.span.Attrs) {
				args[k] = v
			}
			out = append(out, perfettoEvent{
				Name: s.span.Name, Cat: "d500", Ph: "X",
				Ts:  float64(s.start) / 1e3,
				Dur: float64(s.span.Duration.Nanoseconds()) / 1e3,
				Pid: pid(proc), Tid: laneTid[lane], Args: args,
			})
		}
	}
	return out
}
