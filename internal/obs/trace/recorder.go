package trace

import (
	"encoding/json"
	"fmt"
	"sort"
	"sync"
	"time"
)

// SpanData is one finished span — the immutable record form spans reduce
// to on End, what the flight recorder stores, and the JSON unit worker
// processes upload to the control plane.
type SpanData struct {
	// Trace, ID and Parent are the span identifiers. Parent 0 marks a
	// local root; a remote-parented root's Parent names a span recorded in
	// another process.
	Trace, ID, Parent uint64
	// Name is the span name ("serve.request", "op:matmul", ...).
	Name string
	// Process names the recording process/component.
	Process string
	// Start is the span's start; Duration its monotonic length.
	Start time.Time
	// Duration is the span's monotonic length.
	Duration time.Duration
	// Attrs are the span's typed attributes.
	Attrs []Attr
	// Links are trace IDs this span links to (batch → coalesced requests).
	Links []uint64
	// Error marks a failed span.
	Error bool
}

// spanJSON is SpanData's wire form: IDs in 16-hex (uint64s are not safe
// in JavaScript number space), times as integer nanoseconds.
type spanJSON struct {
	Trace   string         `json:"trace"`
	Span    string         `json:"span"`
	Parent  string         `json:"parent,omitempty"`
	Name    string         `json:"name"`
	Process string         `json:"process,omitempty"`
	StartNS int64          `json:"start_unix_ns"`
	DurNS   int64          `json:"dur_ns"`
	Attrs   map[string]any `json:"attrs,omitempty"`
	Links   []string       `json:"links,omitempty"`
	Error   bool           `json:"error,omitempty"`
}

// attrMap renders attrs as a JSON object, last write winning per key.
func attrMap(attrs []Attr) map[string]any {
	if len(attrs) == 0 {
		return nil
	}
	m := make(map[string]any, len(attrs))
	for _, a := range attrs {
		m[a.Key] = a.Value
	}
	return m
}

// MarshalJSON renders the span in the upload/debug wire form.
func (s SpanData) MarshalJSON() ([]byte, error) {
	j := spanJSON{
		Trace:   FormatID(s.Trace),
		Span:    FormatID(s.ID),
		Name:    s.Name,
		Process: s.Process,
		StartNS: s.Start.UnixNano(),
		DurNS:   s.Duration.Nanoseconds(),
		Attrs:   attrMap(s.Attrs),
		Error:   s.Error,
	}
	if s.Parent != 0 {
		j.Parent = FormatID(s.Parent)
	}
	for _, l := range s.Links {
		j.Links = append(j.Links, FormatID(l))
	}
	return json.Marshal(j)
}

// UnmarshalJSON decodes the wire form, validating every identifier; a
// malformed ID is an error, never a zero-ID span.
func (s *SpanData) UnmarshalJSON(b []byte) error {
	var j spanJSON
	if err := json.Unmarshal(b, &j); err != nil {
		return err
	}
	tr, ok := parseHex16(j.Trace)
	if !ok || tr == 0 {
		return fmt.Errorf("trace: bad trace id %q", j.Trace)
	}
	id, ok := parseHex16(j.Span)
	if !ok || id == 0 {
		return fmt.Errorf("trace: bad span id %q", j.Span)
	}
	var parent uint64
	if j.Parent != "" {
		if parent, ok = parseHex16(j.Parent); !ok {
			return fmt.Errorf("trace: bad parent id %q", j.Parent)
		}
	}
	var links []uint64
	for _, l := range j.Links {
		v, ok := parseHex16(l)
		if !ok {
			return fmt.Errorf("trace: bad link id %q", l)
		}
		links = append(links, v)
	}
	var attrs []Attr
	if len(j.Attrs) > 0 {
		keys := make([]string, 0, len(j.Attrs))
		for k := range j.Attrs {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			attrs = append(attrs, Attr{Key: k, Value: j.Attrs[k]})
		}
	}
	*s = SpanData{
		Trace: tr, ID: id, Parent: parent,
		Name: j.Name, Process: j.Process,
		Start: time.Unix(0, j.StartNS), Duration: time.Duration(j.DurNS),
		Attrs: attrs, Links: links, Error: j.Error,
	}
	return nil
}

// TraceData is one retained trace: its ID and every recorded span, in
// end order (the root last among the locally recorded spans).
type TraceData struct {
	// ID is the trace identifier.
	ID uint64 `json:"-"`
	// Spans are the recorded spans.
	Spans []SpanData `json:"spans"`
}

// Root returns the trace's root span: the span whose parent is absent
// from the trace (a local root has Parent 0; a remote-parented root's
// parent lives in another process). False when the trace is empty.
func (td TraceData) Root() (SpanData, bool) {
	ids := make(map[uint64]bool, len(td.Spans))
	for _, s := range td.Spans {
		ids[s.ID] = true
	}
	for _, s := range td.Spans {
		if s.Parent == 0 || !ids[s.Parent] {
			return s, true
		}
	}
	return SpanData{}, false
}

// Recorder is the bounded in-memory flight recorder: the most recent
// retained traces, evicting oldest-first at capacity. Spans arriving for
// a trace already held (worker uploads joining a launcher trace) merge
// into the existing entry. Safe for concurrent use.
type Recorder struct {
	mu     sync.Mutex
	cap    int
	order  []uint64 // insertion order for eviction
	traces map[uint64]*TraceData
}

// NewRecorder builds a recorder holding up to capacity traces (minimum 1).
func NewRecorder(capacity int) *Recorder {
	if capacity < 1 {
		capacity = 1
	}
	return &Recorder{cap: capacity, traces: make(map[uint64]*TraceData)}
}

// add merges one retained trace.
func (r *Recorder) add(td TraceData) {
	if r == nil || td.ID == 0 || len(td.Spans) == 0 {
		return
	}
	r.mu.Lock()
	if cur, ok := r.traces[td.ID]; ok {
		// Merge by span ID so a retried upload (the control client retries
		// POSTs) or a shared-recorder test harness never duplicates spans.
		seen := make(map[uint64]bool, len(cur.Spans))
		for _, s := range cur.Spans {
			seen[s.ID] = true
		}
		for _, s := range td.Spans {
			if !seen[s.ID] {
				seen[s.ID] = true
				cur.Spans = append(cur.Spans, s)
			}
		}
	} else {
		if len(r.order) >= r.cap {
			delete(r.traces, r.order[0])
			r.order = r.order[1:]
		}
		cp := td
		cp.Spans = append([]SpanData(nil), td.Spans...)
		r.traces[td.ID] = &cp
		r.order = append(r.order, td.ID)
	}
	r.mu.Unlock()
}

// Ingest merges spans recorded by another process (the POST
// /v1/jobs/{id}/spans upload path), grouping them by trace ID.
func (r *Recorder) Ingest(spans []SpanData) {
	if r == nil {
		return
	}
	byTrace := make(map[uint64][]SpanData)
	var order []uint64
	for _, s := range spans {
		if s.Trace == 0 || s.ID == 0 {
			continue
		}
		if _, ok := byTrace[s.Trace]; !ok {
			order = append(order, s.Trace)
		}
		byTrace[s.Trace] = append(byTrace[s.Trace], s)
	}
	for _, id := range order {
		r.add(TraceData{ID: id, Spans: byTrace[id]})
	}
}

// Traces snapshots the retained traces, oldest first.
func (r *Recorder) Traces() []TraceData {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]TraceData, 0, len(r.order))
	for _, id := range r.order {
		td := r.traces[id]
		out = append(out, TraceData{ID: id, Spans: append([]SpanData(nil), td.Spans...)})
	}
	return out
}

// Trace returns one retained trace by ID.
func (r *Recorder) Trace(id uint64) (TraceData, bool) {
	if r == nil {
		return TraceData{}, false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	td, ok := r.traces[id]
	if !ok {
		return TraceData{}, false
	}
	return TraceData{ID: id, Spans: append([]SpanData(nil), td.Spans...)}, true
}
