package trace

import "fmt"

// VerifyTree checks the structural invariants of one retained trace and
// returns the first violation found, or nil. It is the shared oracle for
// the span-tree property tests:
//
//   - every span carries the trace's ID and a non-zero span ID, and span
//     IDs are unique within the trace;
//   - exactly one span is the root (its parent is zero or absent from the
//     trace — absent covers remote-parented roots whose parent lives in
//     another process);
//   - every child recorded in the same process as its parent starts no
//     earlier than the parent and ends no later (intervals nest). Spans
//     from different processes are exempt: their clocks are not comparable.
func VerifyTree(td TraceData) error {
	if len(td.Spans) == 0 {
		return fmt.Errorf("trace %016x: no spans", td.ID)
	}
	byID := make(map[uint64]SpanData, len(td.Spans))
	for _, s := range td.Spans {
		if s.Trace != td.ID {
			return fmt.Errorf("span %q: trace %016x, want %016x", s.Name, s.Trace, td.ID)
		}
		if s.ID == 0 {
			return fmt.Errorf("span %q: zero span id", s.Name)
		}
		if dup, ok := byID[s.ID]; ok {
			return fmt.Errorf("span id %016x used by both %q and %q", s.ID, dup.Name, s.Name)
		}
		byID[s.ID] = s
	}
	roots := 0
	for _, s := range td.Spans {
		parent, ok := byID[s.Parent]
		if s.Parent == 0 || !ok {
			roots++
			continue
		}
		if s.Process != parent.Process {
			continue
		}
		off := s.Start.Sub(parent.Start)
		if off < 0 {
			return fmt.Errorf("span %q starts %v before parent %q", s.Name, -off, parent.Name)
		}
		if over := off + s.Duration - parent.Duration; over > 0 {
			return fmt.Errorf("span %q ends %v after parent %q", s.Name, over, parent.Name)
		}
	}
	if roots != 1 {
		return fmt.Errorf("trace %016x: %d roots, want 1", td.ID, roots)
	}
	return nil
}
