package trace

import (
	"strings"
	"testing"
)

func TestFormatParseRoundTrip(t *testing.T) {
	cases := []Remote{
		{Trace: 1, Span: 0},
		{Trace: 0xdeadbeefcafef00d, Span: 0x0123456789abcdef},
		{Trace: ^uint64(0), Span: ^uint64(0)},
	}
	for _, c := range cases {
		s := Format(c.Trace, c.Span)
		if len(s) != 33 {
			t.Fatalf("Format(%x,%x) = %q, len %d", c.Trace, c.Span, s, len(s))
		}
		got, ok := Parse(s)
		if !ok || got != c {
			t.Fatalf("Parse(Format(%+v)) = %+v, %v", c, got, ok)
		}
		up, ok := Parse(strings.ToUpper(s))
		if !ok || up != c {
			t.Fatalf("uppercase parse of %q failed", s)
		}
	}
	if got := FormatID(0xab); got != "00000000000000ab" {
		t.Fatalf("FormatID = %q", got)
	}
}

func TestParseRejects(t *testing.T) {
	for _, s := range []string{
		"",
		"0000000000000001",                   // missing span half
		"0000000000000000-0000000000000001",  // zero trace
		"000000000000000g-0000000000000001",  // non-hex
		"0000000000000001-000000000000000g",  // non-hex span
		"0000000000000001_0000000000000002",  // wrong separator
		"0000000000000001-00000000000000012", // too long
		"0000000000000001-000000000000001",   // too short
		"00000000000000001-000000000000002",  // separator off by one
	} {
		if rm, ok := Parse(s); ok {
			t.Fatalf("Parse(%q) accepted: %+v", s, rm)
		}
	}
}

// FuzzParseHeader is the d500-trace decoder fuzz target: arbitrary input
// never panics, and anything accepted must round-trip exactly through
// Format (canonical lowercase) and carry a non-zero trace ID.
func FuzzParseHeader(f *testing.F) {
	f.Add("0000000000000001-0000000000000002")
	f.Add("DEADBEEFCAFEF00D-0123456789ABCDEF")
	f.Add("0000000000000000-0000000000000001")
	f.Add("ffffffffffffffff-ffffffffffffffff")
	f.Add("")
	f.Add(strings.Repeat("-", 33))
	f.Fuzz(func(t *testing.T, s string) {
		rm, ok := Parse(s)
		if !ok {
			if rm != (Remote{}) {
				t.Fatalf("rejected input returned non-zero remote %+v", rm)
			}
			return
		}
		if rm.Trace == 0 {
			t.Fatalf("accepted zero trace id from %q", s)
		}
		canon := Format(rm.Trace, rm.Span)
		if !strings.EqualFold(canon, s) {
			t.Fatalf("Parse(%q) = %+v but Format renders %q", s, rm, canon)
		}
		again, ok := Parse(canon)
		if !ok || again != rm {
			t.Fatalf("canonical form %q did not round-trip: %+v %v", canon, again, ok)
		}
	})
}
