package trace

import "context"

// Context plumbing. Three independent values ride a context:
//
//   - the current *Span (NewContext/FromContext), read by the executor to
//     parent per-op spans — the only per-pass cost when tracing is off is
//     one Value lookup returning nil;
//   - an inbound Remote (ContextWithRemote), set by HTTP handlers that
//     parsed a d500-trace header so Server.Infer can remote-parent the
//     request's root span;
//   - an outbound *Capture (ContextWithCapture), filled by Server.Infer
//     with the root span identity so the handler can echo the d500-trace
//     response header and the access log can attach the exemplar.

type spanKey struct{}

// NewContext returns ctx carrying s as the current span; a nil span
// returns ctx unchanged.
func NewContext(ctx context.Context, s *Span) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, spanKey{}, s)
}

// WithoutSpan returns ctx with no current span: FromContext below it
// returns nil even when an enclosing span rides ctx. Layers that sample
// their subtrees (the training runner's per-op step sampling) use it to
// suppress descendant spans without dropping the rest of the context.
func WithoutSpan(ctx context.Context) context.Context {
	return context.WithValue(ctx, spanKey{}, (*Span)(nil))
}

// FromContext returns the current span, or nil.
func FromContext(ctx context.Context) *Span {
	if ctx == nil {
		return nil
	}
	s, _ := ctx.Value(spanKey{}).(*Span)
	return s
}

type remoteKey struct{}

// ContextWithRemote returns ctx carrying an inbound remote trace context.
func ContextWithRemote(ctx context.Context, rm Remote) context.Context {
	if rm.Trace == 0 {
		return ctx
	}
	return context.WithValue(ctx, remoteKey{}, rm)
}

// RemoteFromContext returns the inbound remote trace context, if any.
func RemoteFromContext(ctx context.Context) (Remote, bool) {
	if ctx == nil {
		return Remote{}, false
	}
	rm, ok := ctx.Value(remoteKey{}).(Remote)
	return rm, ok
}

// Capture receives the identity of the trace started below a handler; the
// handler reads it back after the call to echo the d500-trace header.
// It is written and read on the handler's goroutine chain — no locking.
type Capture struct {
	// Trace and Span identify the root span started for the request
	// (zero when tracing is off).
	Trace, Span uint64
}

type captureKey struct{}

// ContextWithCapture returns ctx carrying c for a downstream layer to fill.
func ContextWithCapture(ctx context.Context, c *Capture) context.Context {
	if c == nil {
		return ctx
	}
	return context.WithValue(ctx, captureKey{}, c)
}

// CaptureFromContext returns the capture slot, or nil.
func CaptureFromContext(ctx context.Context) *Capture {
	if ctx == nil {
		return nil
	}
	c, _ := ctx.Value(captureKey{}).(*Capture)
	return c
}
