package trace

import (
	"context"
	"encoding/json"
	"errors"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

// newTest builds a deterministic retain-everything tracer.
func newTest(tweak func(*Options)) *Tracer {
	opt := Options{Seed: 1, SampleEvery: 1, SlowThreshold: time.Hour, Process: "test"}
	if tweak != nil {
		tweak(&opt)
	}
	return New(opt)
}

// TestSpanLifecycle pins the basic shape: parent links, attrs, links,
// counters, and the recorder holding the finished trace.
func TestSpanLifecycle(t *testing.T) {
	tr := newTest(nil)
	root := tr.StartRoot("root", String("k", "v"))
	child := root.StartChild("child", Int("n", 3))
	child.Link(42)
	child.End()
	grand := root.StartChild("late")
	grand.End()
	root.End()

	spans, dropped, sampled := tr.Counters()
	if spans != 3 || dropped != 0 || sampled != 1 {
		t.Fatalf("counters spans=%d dropped=%d sampled=%d", spans, dropped, sampled)
	}
	traces := tr.Recorder().Traces()
	if len(traces) != 1 || len(traces[0].Spans) != 3 {
		t.Fatalf("recorded %+v", traces)
	}
	td := traces[0]
	if td.ID != root.TraceID() {
		t.Fatalf("trace id %x vs root %x", td.ID, root.TraceID())
	}
	rootData, ok := td.Root()
	if !ok || rootData.Name != "root" || rootData.ID != root.SpanID() {
		t.Fatalf("root %+v ok=%v", rootData, ok)
	}
	for _, s := range td.Spans {
		if s.Name != "root" && s.Parent != root.SpanID() {
			t.Fatalf("span %q parent %x, want %x", s.Name, s.Parent, root.SpanID())
		}
		if s.Process != "test" {
			t.Fatalf("span %q process %q", s.Name, s.Process)
		}
	}
}

// TestNilSafety: the disabled tracer (nil) and nil spans no-op through
// the whole API — the property every call site relies on.
func TestNilSafety(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Fatal("nil tracer enabled")
	}
	s := tr.StartRoot("x")
	if s != nil {
		t.Fatal("nil tracer returned a span")
	}
	s.AddAttrs(String("a", "b"))
	s.Link(1)
	s.SetError(errors.New("x"))
	s.Force()
	s.End()
	if c := s.StartChild("y"); c != nil {
		t.Fatal("nil span returned a child")
	}
	if id := s.TraceID(); id != 0 {
		t.Fatal("nil span has a trace id")
	}
	if _, _, n := tr.Counters(); n != 0 {
		t.Fatal("nil tracer counted")
	}
	if tr.Recorder().Traces() != nil {
		t.Fatal("nil recorder returned traces")
	}
	ctx := NewContext(context.Background(), nil)
	if FromContext(ctx) != nil {
		t.Fatal("nil span round-tripped through context")
	}
}

// TestTailSampling: fast clean traces drop, slow ones and errored ones
// retain, head sampling retains its 1-in-N regardless.
func TestTailSampling(t *testing.T) {
	tr := New(Options{Seed: 2, SampleEvery: 1 << 30, SlowThreshold: 50 * time.Millisecond, Process: "test"})

	// The very first root is always head-sampled (n%N == 1 at n=1) so CI
	// deterministically retains at least one trace. Burn it.
	tr.StartRoot("first").End()
	if _, _, sampled := tr.Counters(); sampled != 1 {
		t.Fatal("first trace was not head-sampled")
	}

	fast := tr.StartRoot("fast")
	fast.StartChild("c").End()
	fast.End()
	if _, _, sampled := tr.Counters(); sampled != 1 {
		t.Fatal("fast clean trace was retained")
	}
	if _, dropped, _ := tr.Counters(); dropped != 2 {
		t.Fatalf("dropped %d spans, want 2", dropped)
	}

	slow := tr.StartRoot("slow")
	time.Sleep(60 * time.Millisecond)
	slow.End()
	if _, _, sampled := tr.Counters(); sampled != 2 {
		t.Fatal("slow trace was not tail-sampled")
	}

	bad := tr.StartRoot("bad")
	bad.StartChild("c").SetError(errors.New("boom"))
	bad.End()
	if _, _, sampled := tr.Counters(); sampled != 3 {
		t.Fatal("errored trace was not retained")
	}

	forced := tr.StartRoot("forced")
	forced.Force()
	forced.End()
	if _, _, sampled := tr.Counters(); sampled != 4 {
		t.Fatal("forced trace was not retained")
	}
}

// TestRemoteRoot: a remote-parented root adopts the remote trace ID,
// parents on the remote span, and always retains.
func TestRemoteRoot(t *testing.T) {
	tr := New(Options{Seed: 4, SampleEvery: 1 << 30, SlowThreshold: time.Hour, Process: "worker"})
	rm := Remote{Trace: 0xabc, Span: 0xdef}
	s := tr.StartRemote(rm, "rank")
	s.StartChild("step").End()
	s.End()
	td, ok := tr.Recorder().Trace(0xabc)
	if !ok {
		t.Fatal("remote trace not retained")
	}
	root, ok := td.Root()
	if !ok || root.Parent != 0xdef || root.Trace != 0xabc {
		t.Fatalf("remote root %+v", root)
	}
	if s2 := tr.StartRemote(Remote{}, "x"); s2 != nil {
		t.Fatal("zero remote produced a span")
	}
}

// TestLateAndCappedSpans: children ending after the root are dropped, and
// the per-trace span cap holds.
func TestLateAndCappedSpans(t *testing.T) {
	tr := newTest(func(o *Options) { o.MaxSpansPerTrace = 3 })
	root := tr.StartRoot("root")
	late := root.StartChild("late")
	for i := 0; i < 5; i++ {
		root.StartChild("c").End()
	}
	root.End()
	late.End()
	if c := root.StartChild("after"); c != nil {
		t.Fatal("child started after root end")
	}
	td, ok := tr.Recorder().Trace(root.TraceID())
	if !ok || len(td.Spans) != 3 {
		t.Fatalf("retained %d spans, want 3 (cap)", len(td.Spans))
	}
	_, dropped, _ := tr.Counters()
	// 5 children + late: 3 retained (incl. root? root is 1 of the 3)…
	// 7 spans ended, 3 kept → 4 dropped, plus the refused "after" child.
	if dropped != 5 {
		t.Fatalf("dropped %d, want 5", dropped)
	}
}

// TestRecorderEvictionAndMerge: capacity evicts oldest; same-ID adds merge.
func TestRecorderEvictionAndMerge(t *testing.T) {
	r := NewRecorder(2)
	mk := func(id uint64) TraceData {
		return TraceData{ID: id, Spans: []SpanData{{Trace: id, ID: id, Name: "root"}}}
	}
	r.add(mk(1))
	r.add(mk(2))
	r.add(mk(3))
	if _, ok := r.Trace(1); ok {
		t.Fatal("oldest trace not evicted")
	}
	if got := len(r.Traces()); got != 2 {
		t.Fatalf("%d traces, want 2", got)
	}
	r.add(TraceData{ID: 2, Spans: []SpanData{{Trace: 2, ID: 7, Parent: 2, Name: "child"}}})
	td, _ := r.Trace(2)
	if len(td.Spans) != 2 {
		t.Fatalf("merge produced %d spans", len(td.Spans))
	}
	r.Ingest([]SpanData{
		{Trace: 3, ID: 8, Parent: 3, Name: "ingested"},
		{Trace: 0, ID: 9, Name: "invalid"},
	})
	td, _ = r.Trace(3)
	if len(td.Spans) != 2 {
		t.Fatalf("ingest produced %d spans", len(td.Spans))
	}
}

// TestSpanJSONRoundTrip: the upload wire form survives a round trip,
// including links, attrs and errors.
func TestSpanJSONRoundTrip(t *testing.T) {
	in := SpanData{
		Trace: 0x0102030405060708, ID: 0x1112131415161718, Parent: 0x2122232425262728,
		Name: "op:matmul", Process: "rank-1",
		Start: time.Unix(12, 345), Duration: 987 * time.Microsecond,
		Attrs: []Attr{Int("n", 4), String("s", "x"), Bool("b", true)},
		Links: []uint64{0xdeadbeef}, Error: true,
	}
	b, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var out SpanData
	if err := json.Unmarshal(b, &out); err != nil {
		t.Fatal(err)
	}
	if out.Trace != in.Trace || out.ID != in.ID || out.Parent != in.Parent ||
		out.Name != in.Name || out.Process != in.Process ||
		out.Start.UnixNano() != in.Start.UnixNano() || out.Duration != in.Duration ||
		len(out.Links) != 1 || out.Links[0] != in.Links[0] || !out.Error {
		t.Fatalf("round trip mismatch:\n in %+v\nout %+v", in, out)
	}
	if len(out.Attrs) != 3 {
		t.Fatalf("attrs %+v", out.Attrs)
	}
	var bad SpanData
	for _, raw := range []string{
		`{"trace":"xyz","span":"0000000000000001","name":"a"}`,
		`{"trace":"0000000000000000","span":"0000000000000001","name":"a"}`,
		`{"trace":"0000000000000001","span":"nope","name":"a"}`,
		`{"trace":"0000000000000001","span":"0000000000000002","parent":"bad","name":"a"}`,
	} {
		if err := json.Unmarshal([]byte(raw), &bad); err == nil {
			t.Fatalf("malformed span decoded: %s", raw)
		}
	}
}

// TestHandlerJSONAndPerfetto: the debug endpoints render the recorder.
func TestHandlerJSONAndPerfetto(t *testing.T) {
	tr := newTest(nil)
	root := tr.StartRoot("serve.request")
	q := root.StartChild("serve.queue")
	q.End()
	root.End()
	h := tr.Recorder().Handler()

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces", nil))
	if rec.Code != 200 {
		t.Fatalf("/debug/traces: %d", rec.Code)
	}
	var body struct {
		Traces []struct {
			Trace string     `json:"trace"`
			Spans []SpanData `json:"spans"`
		} `json:"traces"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	if len(body.Traces) != 1 || len(body.Traces[0].Spans) != 2 {
		t.Fatalf("body %+v", body)
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces?trace="+FormatID(root.TraceID()), nil))
	if rec.Code != 200 {
		t.Fatalf("single-trace fetch: %d", rec.Code)
	}
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces?trace=0000000000000099", nil))
	if rec.Code != 404 {
		t.Fatalf("unknown trace: %d", rec.Code)
	}
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces?trace=zz", nil))
	if rec.Code != 400 {
		t.Fatalf("malformed trace id: %d", rec.Code)
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces/perfetto", nil))
	if rec.Code != 200 {
		t.Fatalf("/debug/traces/perfetto: %d", rec.Code)
	}
	var pf struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Pid  int            `json:"pid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &pf); err != nil {
		t.Fatal(err)
	}
	var x, meta int
	for _, e := range pf.TraceEvents {
		switch e.Ph {
		case "X":
			x++
			if e.Args["trace"] != FormatID(root.TraceID()) {
				t.Fatalf("event args %+v", e.Args)
			}
		case "M":
			meta++
		}
	}
	if x != 2 || meta != 1 {
		t.Fatalf("perfetto events: %d X, %d M", x, meta)
	}
}

// TestConcurrentTreeIntegrity is the package-level half of the span-tree
// property test: under concurrent children ending on both sides of the
// root, every recorded trace holds a well-formed tree — parents exist,
// intervals nest.
func TestConcurrentTreeIntegrity(t *testing.T) {
	tr := newTest(func(o *Options) { o.Capacity = 128; o.MaxSpansPerTrace = 4096 })
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				root := tr.StartRoot("root", Int("g", g))
				var cwg sync.WaitGroup
				for c := 0; c < 4; c++ {
					child := root.StartChild("child")
					cwg.Add(1)
					go func() {
						defer cwg.Done()
						child.StartChild("leaf").End()
						child.End()
					}()
				}
				cwg.Wait()
				root.End()
			}
		}(g)
	}
	wg.Wait()
	traces := tr.Recorder().Traces()
	if len(traces) == 0 {
		t.Fatal("no traces retained")
	}
	for _, td := range traces {
		if err := VerifyTree(td); err != nil {
			t.Fatal(err)
		}
	}
}

// TestVerifyTree sanity-checks the oracle's own failure detection.
func TestVerifyTreeViolations(t *testing.T) {
	root := SpanData{Trace: 1, ID: 1, Name: "root", Start: time.Unix(100, 0), Duration: time.Second}
	for name, td := range map[string]TraceData{
		"empty": {ID: 1},
		"escaping child": {ID: 1, Spans: []SpanData{root,
			{Trace: 1, ID: 2, Parent: 1, Name: "escapes", Start: time.Unix(100, 0), Duration: 2 * time.Second}}},
		"early child": {ID: 1, Spans: []SpanData{root,
			{Trace: 1, ID: 2, Parent: 1, Name: "early", Start: time.Unix(99, 0), Duration: time.Millisecond}}},
		"duplicate id": {ID: 1, Spans: []SpanData{root,
			{Trace: 1, ID: 1, Parent: 1, Name: "dup", Start: time.Unix(100, 0), Duration: 0}}},
		"two roots": {ID: 1, Spans: []SpanData{root,
			{Trace: 1, ID: 2, Name: "root2", Start: time.Unix(100, 0), Duration: 0}}},
		"wrong trace": {ID: 1, Spans: []SpanData{
			{Trace: 2, ID: 1, Name: "root", Start: time.Unix(100, 0), Duration: 0}}},
	} {
		if err := VerifyTree(td); err == nil {
			t.Errorf("%s: VerifyTree accepted the trace", name)
		}
	}
	good := TraceData{ID: 1, Spans: []SpanData{root,
		{Trace: 1, ID: 2, Parent: 1, Name: "c", Start: time.Unix(100, 0).Add(time.Millisecond), Duration: 10 * time.Millisecond},
		{Trace: 1, ID: 3, Parent: 99, Process: "other", Name: "remote-rooted?", Start: time.Unix(0, 0), Duration: 0}}}
	// span 3's parent is absent → it counts as a root → two roots → reject.
	if err := VerifyTree(good); err == nil {
		t.Error("second root accepted")
	}
	good.Spans = good.Spans[:2]
	if err := VerifyTree(good); err != nil {
		t.Errorf("valid trace rejected: %v", err)
	}
}
