// Package trace is Deep500-Go's dependency-free span tracer: the causal
// half of the observability surface, complementing the aggregate counters
// of internal/obs. A Tracer hands out spans — named, timestamped intervals
// with parent links, typed attributes and cross-trace links — and retains
// finished traces in a bounded in-memory flight recorder.
//
// # Sampling
//
// Tracing is cheap enough to leave on: every root span records its
// children into a per-trace buffer, and the keep/drop decision is made
// once, when the root ends ("tail sampling"). A trace is retained when any
// of these hold:
//
//   - head sampling: the trace is the 1-in-SampleEvery always-on sample;
//   - tail sampling: the root ran at least SlowThreshold, or any span in
//     the trace recorded an error;
//   - it was forced (Span.Force — used for job traces), or its root is
//     remote-parented (the initiating process already made the decision).
//
// Everything else is discarded and counted. The flight recorder keeps the
// most recent Capacity retained traces; GET /debug/traces serves them as
// JSON and GET /debug/traces/perfetto as Chrome trace-event JSON loadable
// in Perfetto (see Recorder.Handler).
//
// # Propagation
//
// Trace context crosses process boundaries two ways: the d500-trace HTTP
// header (Format/Parse, on the serve and jobs endpoints) and the trace
// fields of the transport frame header. A remote-parented root
// (StartRemote) grafts the local subtree onto the initiating process's
// trace; Recorder.Ingest merges spans uploaded by worker processes, so a
// distributed step renders as one tree.
//
// All Span and Tracer methods are safe on nil receivers: code threads
// *Span values unconditionally and pays a single nil check when tracing
// is disabled.
package trace

import (
	"os"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Defaults for Options fields left zero.
const (
	// DefaultCapacity is the flight recorder's trace capacity.
	DefaultCapacity = 256
	// DefaultSlowThreshold tail-samples roots at or above this latency.
	DefaultSlowThreshold = 250 * time.Millisecond
	// DefaultSampleEvery head-samples one trace in this many.
	DefaultSampleEvery = 64
	// DefaultMaxSpans bounds the spans buffered per trace.
	DefaultMaxSpans = 512
)

// Options configures a Tracer.
type Options struct {
	// Capacity is how many retained traces the flight recorder holds
	// (oldest evicted first). Default DefaultCapacity.
	Capacity int
	// SlowThreshold is the tail-sampling latency bound: a root span whose
	// duration reaches it retains its trace. Default DefaultSlowThreshold.
	SlowThreshold time.Duration
	// SampleEvery head-samples one root trace in N regardless of latency
	// (1 retains everything). Default DefaultSampleEvery.
	SampleEvery int
	// MaxSpansPerTrace bounds the span buffer of one trace; spans beyond
	// it are dropped and counted. Default DefaultMaxSpans.
	MaxSpansPerTrace int
	// Seed seeds the SplitMix64 ID generator; 0 derives a per-process seed
	// from the clock and pid, so concurrent processes do not collide.
	Seed uint64
	// Process names the process/component stamped on every span ("serve",
	// "launcher", "rank-1", ...), grouping spans in the Perfetto view.
	Process string
	// OnRetain, when non-nil, is called with every retained trace on the
	// goroutine that ended its root — the hook bridge for TraceSpan events.
	OnRetain func(TraceData)
}

// withDefaults resolves zero fields.
func (o Options) withDefaults() Options {
	if o.Capacity <= 0 {
		o.Capacity = DefaultCapacity
	}
	if o.SlowThreshold <= 0 {
		o.SlowThreshold = DefaultSlowThreshold
	}
	if o.SampleEvery <= 0 {
		o.SampleEvery = DefaultSampleEvery
	}
	if o.MaxSpansPerTrace <= 0 {
		o.MaxSpansPerTrace = DefaultMaxSpans
	}
	return o
}

// DefaultOptions returns the tracer's resolved defaults (what a zero
// Options becomes). d500info prints these.
func DefaultOptions() Options { return Options{}.withDefaults() }

// Attr is one typed span attribute. Build attrs with the String, Int,
// Bool and Duration constructors so values render consistently.
type Attr struct {
	// Key names the attribute.
	Key string
	// Value is the attribute value (string, int64 or bool).
	Value any
}

// String builds a string attribute.
func String(k, v string) Attr { return Attr{Key: k, Value: v} }

// Int builds an integer attribute.
func Int(k string, v int) Attr { return Attr{Key: k, Value: int64(v)} }

// Bool builds a boolean attribute.
func Bool(k string, v bool) Attr { return Attr{Key: k, Value: v} }

// Duration builds a duration attribute, rendered in Go duration syntax.
func Duration(k string, d time.Duration) Attr { return Attr{Key: k, Value: d.String()} }

// Float builds a floating-point attribute, rendered with %g.
func Float(k string, v float64) Attr { return Attr{Key: k, Value: strconv.FormatFloat(v, 'g', -1, 64)} }

// Tracer mints spans and owns the flight recorder. A nil *Tracer is the
// disabled tracer: every method no-ops and StartRoot returns a nil span.
type Tracer struct {
	opt Options
	rec *Recorder

	ids   atomic.Uint64 // SplitMix64 state
	roots atomic.Uint64 // root spans started, drives head sampling

	spans   atomic.Uint64 // spans ended under this tracer
	dropped atomic.Uint64 // spans discarded (unretained trace, cap, late)
	sampled atomic.Uint64 // traces retained
}

// New builds a tracer with opt resolved against the defaults.
func New(opt Options) *Tracer {
	opt = opt.withDefaults()
	t := &Tracer{opt: opt, rec: NewRecorder(opt.Capacity)}
	seed := opt.Seed
	if seed == 0 {
		seed = uint64(time.Now().UnixNano())*0x9E3779B97F4A7C15 ^ uint64(os.Getpid())<<32
	}
	t.ids.Store(seed)
	return t
}

// Enabled reports whether the tracer records anything (false for nil).
func (t *Tracer) Enabled() bool { return t != nil }

// Recorder returns the tracer's flight recorder (nil for a nil tracer).
func (t *Tracer) Recorder() *Recorder {
	if t == nil {
		return nil
	}
	return t.rec
}

// Counters snapshots the tracer's lifetime counters: spans ended, spans
// dropped, and traces retained — the d500_trace_* series.
func (t *Tracer) Counters() (spans, dropped, sampled uint64) {
	if t == nil {
		return 0, 0, 0
	}
	return t.spans.Load(), t.dropped.Load(), t.sampled.Load()
}

// nextID draws the next SplitMix64 identifier (never zero: zero is the
// wire encoding of "untraced").
func (t *Tracer) nextID() uint64 {
	x := t.ids.Add(0x9E3779B97F4A7C15)
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	if x == 0 {
		x = 1
	}
	return x
}

// StartRoot begins a new trace with a local root span. The root's span ID
// doubles as the trace ID.
func (t *Tracer) StartRoot(name string, attrs ...Attr) *Span {
	if t == nil {
		return nil
	}
	id := t.nextID()
	n := t.roots.Add(1)
	head := t.opt.SampleEvery == 1 || n%uint64(t.opt.SampleEvery) == 1
	return t.newSpan(&traceState{tracer: t, head: head}, SpanData{
		Trace: id, ID: id, Name: name, Attrs: attrs,
	}, true)
}

// StartRemote begins the local portion of a trace initiated elsewhere:
// the new root adopts the remote trace ID and parents on the remote span.
// Remote roots are always retained on End — the initiating process owns
// the sampling decision.
func (t *Tracer) StartRemote(rm Remote, name string, attrs ...Attr) *Span {
	if t == nil || rm.Trace == 0 {
		return nil
	}
	return t.newSpan(&traceState{tracer: t, remote: true}, SpanData{
		Trace: rm.Trace, ID: t.nextID(), Parent: rm.Span, Name: name, Attrs: attrs,
	}, true)
}

// newSpan stamps the shared fields and starts the clock.
func (t *Tracer) newSpan(st *traceState, d SpanData, root bool) *Span {
	d.Process = t.opt.Process
	d.Start = time.Now()
	return &Span{state: st, root: root, data: d}
}

// traceState accumulates the finished spans of one in-flight trace until
// its root ends and the retention decision is made.
type traceState struct {
	tracer *Tracer

	head   bool // head-sampled at StartRoot
	remote bool // remote-parented root: always retain

	mu     sync.Mutex
	spans  []SpanData
	forced bool // SetError/Force anywhere in the trace
	done   bool // root ended; late spans are dropped
}

// Span is one live interval of a trace. Methods are safe on nil receivers
// and safe for concurrent use, so parallel-backend op spans can share a
// parent.
type Span struct {
	state *traceState
	root  bool

	mu    sync.Mutex
	ended bool
	data  SpanData
}

// TraceID returns the span's trace identifier (0 for nil).
func (s *Span) TraceID() uint64 {
	if s == nil {
		return 0
	}
	return s.data.Trace
}

// SpanID returns the span's identifier (0 for nil).
func (s *Span) SpanID() uint64 {
	if s == nil {
		return 0
	}
	return s.data.ID
}

// StartChild begins a child span. Children started after the root ended
// return nil (and count as dropped when tracing is on).
func (s *Span) StartChild(name string, attrs ...Attr) *Span {
	if s == nil {
		return nil
	}
	st := s.state
	st.mu.Lock()
	done := st.done
	st.mu.Unlock()
	if done {
		st.tracer.dropped.Add(1)
		return nil
	}
	return st.tracer.newSpan(st, SpanData{
		Trace: s.data.Trace, ID: st.tracer.nextID(), Parent: s.data.ID,
		Name: name, Attrs: attrs,
	}, false)
}

// AddAttrs appends attributes; ignored after End.
func (s *Span) AddAttrs(attrs ...Attr) {
	if s == nil || len(attrs) == 0 {
		return
	}
	s.mu.Lock()
	if !s.ended {
		s.data.Attrs = append(s.data.Attrs, attrs...)
	}
	s.mu.Unlock()
}

// Link records a cross-trace link (a batch span links the traces of the
// requests it coalesced). Zero IDs are ignored.
func (s *Span) Link(traceID uint64) {
	if s == nil || traceID == 0 {
		return
	}
	s.mu.Lock()
	if !s.ended {
		s.data.Links = append(s.data.Links, traceID)
	}
	s.mu.Unlock()
}

// SetError marks the span failed (recording the error as an attribute)
// and forces retention of the whole trace.
func (s *Span) SetError(err error) {
	if s == nil || err == nil {
		return
	}
	s.mu.Lock()
	if !s.ended {
		s.data.Error = true
		s.data.Attrs = append(s.data.Attrs, String("error", err.Error()))
	}
	s.mu.Unlock()
	s.Force()
}

// Force retains the span's trace regardless of latency or sampling.
func (s *Span) Force() {
	if s == nil {
		return
	}
	st := s.state
	st.mu.Lock()
	st.forced = true
	st.mu.Unlock()
}

// End finishes the span. Ending is idempotent. When the span is its
// trace's root, the retention decision runs: the trace's buffered spans
// either enter the flight recorder or are dropped and counted.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	s.data.Duration = time.Since(s.data.Start)
	d := s.data
	s.mu.Unlock()
	s.state.record(d, s.root)
}

// record buffers one finished span, finalizing the trace when the root
// lands.
func (st *traceState) record(d SpanData, root bool) {
	t := st.tracer
	t.spans.Add(1)
	st.mu.Lock()
	if st.done {
		st.mu.Unlock()
		t.dropped.Add(1)
		return
	}
	if len(st.spans) < t.opt.MaxSpansPerTrace {
		st.spans = append(st.spans, d)
	} else {
		t.dropped.Add(1)
	}
	if !root {
		st.mu.Unlock()
		return
	}
	st.done = true
	spans := st.spans
	st.spans = nil
	retain := st.forced || st.remote || st.head
	st.mu.Unlock()

	if !retain && !d.Error && d.Duration < t.opt.SlowThreshold {
		t.dropped.Add(uint64(len(spans)))
		return
	}
	t.sampled.Add(1)
	td := TraceData{ID: d.Trace, Spans: spans}
	t.rec.add(td)
	if t.opt.OnRetain != nil {
		t.opt.OnRetain(td)
	}
}
