package trace

// The d500-trace propagation header: `<16 hex trace ID>-<16 hex span ID>`,
// 33 bytes, lowercase on the wire (parsing accepts either case). The same
// two identifiers travel in the transport frame header's trace fields. A
// zero trace ID means "untraced" and never round-trips: Parse rejects it,
// and Format is never called with one by the propagation paths.

// HeaderName is the HTTP header carrying trace context across processes
// on the serve and jobs endpoints.
const HeaderName = "d500-trace"

// Remote is a trace context received from another process: the trace to
// join and the remote span to parent on.
type Remote struct {
	// Trace is the trace identifier (non-zero).
	Trace uint64
	// Span is the remote parent span identifier (may be zero).
	Span uint64
}

const hexDigits = "0123456789abcdef"

// appendHex16 appends id as exactly 16 lowercase hex digits.
func appendHex16(dst []byte, id uint64) []byte {
	for shift := 60; shift >= 0; shift -= 4 {
		dst = append(dst, hexDigits[(id>>uint(shift))&0xf])
	}
	return dst
}

// FormatID renders one identifier as 16 lowercase hex digits.
func FormatID(id uint64) string {
	return string(appendHex16(make([]byte, 0, 16), id))
}

// Format renders a trace context in the d500-trace header encoding.
func Format(traceID, spanID uint64) string {
	b := make([]byte, 0, 33)
	b = appendHex16(b, traceID)
	b = append(b, '-')
	b = appendHex16(b, spanID)
	return string(b)
}

// parseHex16 parses exactly 16 hex digits (either case).
func parseHex16(s string) (uint64, bool) {
	if len(s) != 16 {
		return 0, false
	}
	var v uint64
	for i := 0; i < 16; i++ {
		c := s[i]
		var d uint64
		switch {
		case c >= '0' && c <= '9':
			d = uint64(c - '0')
		case c >= 'a' && c <= 'f':
			d = uint64(c-'a') + 10
		case c >= 'A' && c <= 'F':
			d = uint64(c-'A') + 10
		default:
			return 0, false
		}
		v = v<<4 | d
	}
	return v, true
}

// Parse decodes a d500-trace header value. It is strict: exactly 33
// bytes, a '-' at offset 16, hex digits everywhere else, and a non-zero
// trace ID. Malformed input returns ok=false, never panics.
func Parse(s string) (rm Remote, ok bool) {
	if len(s) != 33 || s[16] != '-' {
		return Remote{}, false
	}
	tr, ok1 := parseHex16(s[:16])
	sp, ok2 := parseHex16(s[17:])
	if !ok1 || !ok2 || tr == 0 {
		return Remote{}, false
	}
	return Remote{Trace: tr, Span: sp}, true
}
