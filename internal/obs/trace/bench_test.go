package trace

import (
	"context"
	"testing"
	"time"
)

// The disabled-tracer path is what every request, step and op pays when
// tracing is off: a nil-receiver method call or one context Value lookup
// returning nil. These benchmarks pin that cost near zero — CI runs them
// as a smoke alongside the d500bench regression gate, and
// TestDisabledPathAllocs below turns the allocation half into a hard
// test-time assertion.

func BenchmarkDisabledSpanLifecycle(b *testing.B) {
	var t *Tracer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		root := t.StartRoot("bench")
		child := root.StartChild("child")
		child.End()
		root.End()
	}
}

func BenchmarkDisabledFromContext(b *testing.B) {
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := FromContext(ctx)
		s.StartChild("op").End()
	}
}

func BenchmarkEnabledSpanLifecycle(b *testing.B) {
	// The traced counterpart, for scale: SampleEvery 1 retains everything,
	// a generous slow threshold keeps tail sampling out of the picture.
	t := New(Options{SampleEvery: 1, SlowThreshold: time.Hour, Seed: 7})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		root := t.StartRoot("bench")
		child := root.StartChild("child")
		child.End()
		root.End()
	}
}

// TestDisabledPathAllocs asserts the disabled paths allocate nothing, so
// a regression fails `go test` everywhere — not only on the bench runner.
func TestDisabledPathAllocs(t *testing.T) {
	var tr *Tracer
	ctx := context.Background()
	if n := testing.AllocsPerRun(100, func() {
		root := tr.StartRoot("t")
		root.StartChild("c").End()
		root.SetError(nil)
		root.End()
	}); n != 0 {
		t.Errorf("disabled span lifecycle allocates %v times per run, want 0", n)
	}
	if n := testing.AllocsPerRun(100, func() {
		FromContext(ctx).StartChild("op").End()
	}); n != 0 {
		t.Errorf("disabled context lookup allocates %v times per run, want 0", n)
	}
}
