package obs

// Canonical metric names. Every metric the d500 layer and the distributed
// control plane register is named here, and Names() is the single source
// of truth the tools/docscheck metrics↔docs conformance gate compares
// against docs/operations.md: a metric added without a doc row (or
// documented without existing) fails CI.
const (
	// Serving (d500serve /metrics).
	MetricServeRequestsTotal       = "d500_serve_requests_total"
	MetricServeQueueDepth          = "d500_serve_queue_depth"
	MetricServeQueueCapacity       = "d500_serve_queue_capacity"
	MetricServeBatchesTotal        = "d500_serve_batches_total"
	MetricServeBatchRowsTotal      = "d500_serve_batch_rows_total"
	MetricServeBatchOccupancy      = "d500_serve_batch_occupancy"
	MetricServeBatchLatencySeconds = "d500_serve_batch_latency_seconds"
	MetricServeQueueWaitSeconds    = "d500_serve_queue_wait_seconds"
	MetricServeRejectedTotal       = "d500_serve_rejected_total"
	MetricServeExpiredTotal        = "d500_serve_expired_total"
	MetricServeFailedTotal         = "d500_serve_failed_total"
	MetricServeReplicas            = "d500_serve_replicas"
	MetricServeReplicasLive        = "d500_serve_replicas_live"
	MetricServeReplicaCrashesTotal = "d500_serve_replica_crashes_total"
	MetricServeReplicaRespawns     = "d500_serve_replica_respawns_total"
	MetricServeArenaBytes          = "d500_serve_arena_bytes"

	// Multi-tenant serving (model registry + autoscaler).
	MetricServeModels             = "d500_serve_models"
	MetricServeModelLoadsTotal    = "d500_serve_model_loads_total"
	MetricServeModelSwapsTotal    = "d500_serve_model_swaps_total"
	MetricServeModelUnloadsTotal  = "d500_serve_model_unloads_total"
	MetricServeShedTotal          = "d500_serve_shed_total"
	MetricServeScaleUpsTotal      = "d500_serve_scale_ups_total"
	MetricServeScaleDownsTotal    = "d500_serve_scale_downs_total"
	MetricServeModelRequestsTotal = "d500_serve_model_requests_total"
	MetricServeModelQueueDepth    = "d500_serve_model_queue_depth"
	MetricServeModelReplicasLive  = "d500_serve_model_replicas_live"

	// Training (Session.Train through a Metrics hook).
	MetricTrainStepsTotal       = "d500_train_steps_total"
	MetricTrainLoss             = "d500_train_loss"
	MetricTrainAccuracy         = "d500_train_accuracy"
	MetricTrainEpochsTotal      = "d500_train_epochs_total"
	MetricEvalAccuracy          = "d500_eval_accuracy"
	MetricCheckpointWritesTotal = "d500_checkpoint_writes_total"

	// Distributed job control plane (d500dist -role launch /metrics).
	MetricDistJobsSubmittedTotal    = "d500_dist_jobs_submitted_total"
	MetricDistJobsRunning           = "d500_dist_jobs_running"
	MetricDistJobsSucceededTotal    = "d500_dist_jobs_succeeded_total"
	MetricDistJobsFailedTotal       = "d500_dist_jobs_failed_total"
	MetricDistWorkersRunning        = "d500_dist_workers_running"
	MetricDistWorkerRestartsTotal   = "d500_dist_worker_restarts_total"
	MetricDistHeartbeatsTotal       = "d500_dist_heartbeats_total"
	MetricDistHeartbeatTimeoutTotal = "d500_dist_heartbeat_timeouts_total"

	// Tracing (internal/obs/trace flight recorder, via Metrics.ObserveTracer).
	MetricTraceSpansTotal         = "d500_trace_spans_total"
	MetricTraceSpansDroppedTotal  = "d500_trace_spans_dropped_total"
	MetricTraceTracesSampledTotal = "d500_trace_traces_sampled_total"
)

// CoreNames returns the canonical names registered by the d500 session
// layer (serving + training), in declaration order.
func CoreNames() []string {
	return []string{
		MetricServeRequestsTotal,
		MetricServeQueueDepth,
		MetricServeQueueCapacity,
		MetricServeBatchesTotal,
		MetricServeBatchRowsTotal,
		MetricServeBatchOccupancy,
		MetricServeBatchLatencySeconds,
		MetricServeQueueWaitSeconds,
		MetricServeRejectedTotal,
		MetricServeExpiredTotal,
		MetricServeFailedTotal,
		MetricServeReplicas,
		MetricServeReplicasLive,
		MetricServeReplicaCrashesTotal,
		MetricServeReplicaRespawns,
		MetricServeArenaBytes,
		MetricServeModels,
		MetricServeModelLoadsTotal,
		MetricServeModelSwapsTotal,
		MetricServeModelUnloadsTotal,
		MetricServeShedTotal,
		MetricServeScaleUpsTotal,
		MetricServeScaleDownsTotal,
		MetricServeModelRequestsTotal,
		MetricServeModelQueueDepth,
		MetricServeModelReplicasLive,
		MetricTrainStepsTotal,
		MetricTrainLoss,
		MetricTrainAccuracy,
		MetricTrainEpochsTotal,
		MetricEvalAccuracy,
		MetricCheckpointWritesTotal,
	}
}

// DistNames returns the canonical names registered by the distributed job
// control plane (internal/jobs), in declaration order.
func DistNames() []string {
	return []string{
		MetricDistJobsSubmittedTotal,
		MetricDistJobsRunning,
		MetricDistJobsSucceededTotal,
		MetricDistJobsFailedTotal,
		MetricDistWorkersRunning,
		MetricDistWorkerRestartsTotal,
		MetricDistHeartbeatsTotal,
		MetricDistHeartbeatTimeoutTotal,
	}
}

// TraceNames returns the canonical names of the tracing counters,
// registered wherever a tracer is observed (Metrics.ObserveTracer, the
// d500dist launcher), in declaration order.
func TraceNames() []string {
	return []string{
		MetricTraceSpansTotal,
		MetricTraceSpansDroppedTotal,
		MetricTraceTracesSampledTotal,
	}
}

// Names returns every canonical metric name, in declaration order.
func Names() []string {
	return append(append(CoreNames(), DistNames()...), TraceNames()...)
}
