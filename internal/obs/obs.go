// Package obs is the observability layer: a dependency-free metrics
// registry rendering the Prometheus text exposition format. The d500 layer
// aggregates its typed Hook events (StepEnd, EvalEnd, ServeSample,
// ReplicaDown, ...) into these counters, gauges and fixed-bucket histograms
// and mounts the registry as GET /metrics on d500serve — turning the
// paper's measurement philosophy (every level instrumented) into an ops
// surface a standard Prometheus scraper can read.
//
// Public entry points: NewRegistry and its constructors (Counter,
// CounterVec, Gauge, GaugeFunc, CounterFunc, Histogram), Registry.Handler /
// Registry.Render for exposition, and the canonical metric-name constants
// in names.go (whose list Names() backs the docs conformance gate in
// tools/docscheck).
package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"sync"
)

// DefLatencyBuckets are the default latency histogram bounds in seconds,
// spanning 100µs to 2.5s — micro-batch passes on small models sit in the
// low milliseconds; the long tail catches cold starts and overload.
var DefLatencyBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
	0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5,
}

// metric is one registered series family with its metadata and renderer.
type metric struct {
	name, help, typ string
	render          func(w io.Writer, name string) error
}

// Registry holds named metrics and renders them sorted by name, so the
// same state always produces the same exposition bytes (determinism,
// paper pillar 5). All methods are safe for concurrent use.
type Registry struct {
	mu      sync.Mutex
	metrics map[string]*metric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{metrics: make(map[string]*metric)}
}

func (r *Registry) register(name, help, typ string, render func(io.Writer, string) error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.metrics[name]; dup {
		panic(fmt.Sprintf("obs: metric %q registered twice", name))
	}
	r.metrics[name] = &metric{name: name, help: help, typ: typ, render: render}
}

// Counter is a monotonically increasing value.
type Counter struct {
	mu  sync.Mutex
	val float64
}

// Counter registers and returns a counter.
func (r *Registry) Counter(name, help string) *Counter {
	c := &Counter{}
	r.register(name, help, "counter", func(w io.Writer, name string) error {
		c.mu.Lock()
		v := c.val
		c.mu.Unlock()
		_, err := fmt.Fprintf(w, "%s %s\n", name, fmtFloat(v))
		return err
	})
	return c
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds v (must be non-negative; counters only go up).
func (c *Counter) Add(v float64) {
	c.mu.Lock()
	c.val += v
	c.mu.Unlock()
}

// CounterVec is a family of counters split by one label.
type CounterVec struct {
	label string
	mu    sync.Mutex
	vals  map[string]float64
}

// CounterVec registers and returns a one-label counter family.
func (r *Registry) CounterVec(name, help, label string) *CounterVec {
	c := &CounterVec{label: label, vals: make(map[string]float64)}
	r.register(name, help, "counter", func(w io.Writer, name string) error {
		c.mu.Lock()
		keys := make([]string, 0, len(c.vals))
		for k := range c.vals {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		type kv struct {
			k string
			v float64
		}
		rows := make([]kv, len(keys))
		for i, k := range keys {
			rows[i] = kv{k, c.vals[k]}
		}
		c.mu.Unlock()
		for _, row := range rows {
			if _, err := fmt.Fprintf(w, "%s{%s=%q} %s\n", name, c.label, row.k, fmtFloat(row.v)); err != nil {
				return err
			}
		}
		return nil
	})
	return c
}

// Inc adds one to the counter for the given label value.
func (c *CounterVec) Inc(labelValue string) {
	c.mu.Lock()
	c.vals[labelValue]++
	c.mu.Unlock()
}

// Gauge is a value that can go up and down.
type Gauge struct {
	mu  sync.Mutex
	val float64
}

// Gauge registers and returns a gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	g := &Gauge{}
	r.register(name, help, "gauge", func(w io.Writer, name string) error {
		g.mu.Lock()
		v := g.val
		g.mu.Unlock()
		_, err := fmt.Fprintf(w, "%s %s\n", name, fmtFloat(v))
		return err
	})
	return g
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) {
	g.mu.Lock()
	g.val = v
	g.mu.Unlock()
}

// GaugeFunc registers a gauge whose value is read from f at scrape time —
// the natural shape for state someone else owns (queue length, live
// replica count, arena footprint).
func (r *Registry) GaugeFunc(name, help string, f func() float64) {
	r.register(name, help, "gauge", func(w io.Writer, name string) error {
		_, err := fmt.Fprintf(w, "%s %s\n", name, fmtFloat(f()))
		return err
	})
}

// CounterFunc registers a counter whose value is read from f at scrape
// time. f must be monotonic (a counter someone else already accumulates,
// e.g. a serve.Stats field).
func (r *Registry) CounterFunc(name, help string, f func() float64) {
	r.register(name, help, "counter", func(w io.Writer, name string) error {
		_, err := fmt.Fprintf(w, "%s %s\n", name, fmtFloat(f()))
		return err
	})
}

// renderVecFunc writes one labeled series per map entry, label values
// sorted, so the same state always renders the same bytes.
func renderVecFunc(w io.Writer, name, label string, f func() map[string]float64) error {
	vals := f()
	keys := make([]string, 0, len(vals))
	for k := range vals {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if _, err := fmt.Fprintf(w, "%s{%s=%q} %s\n", name, label, k, fmtFloat(vals[k])); err != nil {
			return err
		}
	}
	return nil
}

// GaugeVecFunc registers a one-label gauge family whose series set and
// values are read from f at scrape time — the natural shape for
// per-tenant state someone else owns (a model registry's queue depths):
// series appear and disappear as tenants load and unload.
func (r *Registry) GaugeVecFunc(name, help, label string, f func() map[string]float64) {
	r.register(name, help, "gauge", func(w io.Writer, name string) error {
		return renderVecFunc(w, name, label, f)
	})
}

// CounterVecFunc registers a one-label counter family read from f at
// scrape time. Each series must be monotonic for as long as it exists;
// a series vanishing (tenant unloaded) is fine — Prometheus treats it
// as a staleness marker, not a reset.
func (r *Registry) CounterVecFunc(name, help, label string, f func() map[string]float64) {
	r.register(name, help, "counter", func(w io.Writer, name string) error {
		return renderVecFunc(w, name, label, f)
	})
}

// Histogram is a fixed-bucket cumulative histogram of observations.
type Histogram struct {
	bounds []float64
	mu     sync.Mutex
	counts []uint64 // per-bound; observations beyond the last bound only hit +Inf
	inf    uint64
	sum    float64
}

// Histogram registers and returns a histogram with the given upper bounds
// (ascending). Nil bounds select DefLatencyBuckets.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	if bounds == nil {
		bounds = DefLatencyBuckets
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram %q bounds not ascending", name))
		}
	}
	h := &Histogram{bounds: append([]float64(nil), bounds...), counts: make([]uint64, len(bounds))}
	r.register(name, help, "histogram", func(w io.Writer, name string) error {
		h.mu.Lock()
		counts := append([]uint64(nil), h.counts...)
		inf := h.inf
		sum := h.sum
		h.mu.Unlock()
		var cum uint64
		for i, b := range h.bounds {
			cum += counts[i]
			if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, fmtFloat(b), cum); err != nil {
				return err
			}
		}
		cum += inf
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, cum); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum %s\n", name, fmtFloat(sum)); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "%s_count %d\n", name, cum)
		return err
	})
	return h
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	h.sum += v
	placed := false
	for i, b := range h.bounds {
		if v <= b {
			h.counts[i]++
			placed = true
			break
		}
	}
	if !placed {
		h.inf++
	}
	h.mu.Unlock()
}

// fmtFloat renders a float the way Prometheus expects (shortest
// round-trippable decimal, no exponent for typical values).
func fmtFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatFloat(v, 'f', -1, 64)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Render writes every registered metric in text exposition format,
// sorted by name.
func (r *Registry) Render(w io.Writer) error {
	r.mu.Lock()
	names := make([]string, 0, len(r.metrics))
	for name := range r.metrics {
		names = append(names, name)
	}
	sort.Strings(names)
	ms := make([]*metric, len(names))
	for i, name := range names {
		ms[i] = r.metrics[name]
	}
	r.mu.Unlock()
	for _, m := range ms {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", m.name, m.help, m.name, m.typ); err != nil {
			return err
		}
		if err := m.render(w, m.name); err != nil {
			return err
		}
	}
	return nil
}

// Handler serves the registry as a Prometheus scrape target.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet {
			w.Header().Set("Allow", http.MethodGet)
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.Render(w)
	})
}
