// Package ilp implements a small exact solver for bounded integer linear
// programs via depth-first branch and bound. The Level 1 micro-batching
// transformation (paper §V-C) uses it to choose micro-batch sizes and
// per-micro-batch convolution algorithms that maximize performance subject
// to memory-capacity constraints.
//
// The solver targets small problems (tens of variables with small bounds):
// it enumerates variable assignments depth-first, pruning with constraint
// feasibility bounds and an optimistic objective bound.
package ilp

import (
	"errors"
	"math"
)

// Relation is a constraint comparator.
type Relation int

const (
	LE Relation = iota // Σ aᵢxᵢ ≤ b
	GE                 // Σ aᵢxᵢ ≥ b
	EQ                 // Σ aᵢxᵢ = b
)

// Constraint is one linear constraint over all variables.
type Constraint struct {
	Coef []float64
	Rel  Relation
	RHS  float64
}

// Problem is: minimize Cost·x subject to Constraints, Lo ≤ x ≤ Hi, x ∈ ℤ.
type Problem struct {
	Cost []float64
	Lo   []int
	Hi   []int
	Cons []Constraint
}

// ErrInfeasible reports that no assignment satisfies the constraints.
var ErrInfeasible = errors.New("ilp: infeasible")

// Solve returns an optimal assignment and its objective value.
func Solve(p Problem) ([]int, float64, error) {
	n := len(p.Cost)
	if len(p.Lo) != n || len(p.Hi) != n {
		return nil, 0, errors.New("ilp: bounds length mismatch")
	}
	for _, c := range p.Cons {
		if len(c.Coef) != n {
			return nil, 0, errors.New("ilp: constraint length mismatch")
		}
	}
	for i := 0; i < n; i++ {
		if p.Lo[i] > p.Hi[i] {
			return nil, 0, ErrInfeasible
		}
	}

	s := &solver{p: p, n: n, x: make([]int, n), best: math.Inf(1)}
	// Precompute per-constraint min/max contribution of each variable.
	s.minContrib = make([][]float64, len(p.Cons))
	s.maxContrib = make([][]float64, len(p.Cons))
	for ci, c := range p.Cons {
		s.minContrib[ci] = make([]float64, n)
		s.maxContrib[ci] = make([]float64, n)
		for i := 0; i < n; i++ {
			a := c.Coef[i] * float64(p.Lo[i])
			b := c.Coef[i] * float64(p.Hi[i])
			s.minContrib[ci][i] = math.Min(a, b)
			s.maxContrib[ci][i] = math.Max(a, b)
		}
	}
	// Optimistic per-variable objective contribution.
	s.minCost = make([]float64, n)
	for i := 0; i < n; i++ {
		s.minCost[i] = math.Min(p.Cost[i]*float64(p.Lo[i]), p.Cost[i]*float64(p.Hi[i]))
	}
	// The coverage bound is sound only when all coefficients and costs of a
	// constraint's variables are nonnegative and lower bounds are zero.
	s.coverable = make([]bool, len(p.Cons))
	for ci, c := range p.Cons {
		ok := true
		for i := 0; i < n; i++ {
			if c.Coef[i] < 0 || p.Cost[i] < 0 || p.Lo[i] != 0 {
				ok = false
				break
			}
		}
		s.coverable[ci] = ok
	}

	s.dfs(0, 0)
	if s.bestX == nil {
		return nil, 0, ErrInfeasible
	}
	return s.bestX, s.best, nil
}

type solver struct {
	p                      Problem
	n                      int
	x                      []int
	best                   float64
	bestX                  []int
	minContrib, maxContrib [][]float64
	minCost                []float64
	coverable              []bool // constraints eligible for the coverage bound
	nodes                  int
}

// MaxNodes bounds the search; exceeding it returns the best found so far.
const MaxNodes = 5_000_000

func (s *solver) dfs(idx int, cost float64) {
	s.nodes++
	if s.nodes > MaxNodes {
		return
	}
	// objective bound
	optimistic := cost
	for i := idx; i < s.n; i++ {
		optimistic += s.minCost[i]
	}
	if optimistic >= s.best {
		return
	}
	// coverage bound: for ≥/= constraints with nonnegative coefficients and
	// costs, the remaining right-hand side must be covered at at least the
	// best cost-per-unit rate among the free variables (knapsack bound).
	for ci, c := range s.p.Cons {
		if c.Rel == LE || !s.coverable[ci] {
			continue
		}
		var fixed float64
		for i := 0; i < idx; i++ {
			fixed += c.Coef[i] * float64(s.x[i])
		}
		remaining := c.RHS - fixed
		if remaining <= 0 {
			continue
		}
		rate := math.Inf(1)
		for i := idx; i < s.n; i++ {
			if c.Coef[i] > 0 {
				if r := s.p.Cost[i] / c.Coef[i]; r < rate {
					rate = r
				}
			}
		}
		if math.IsInf(rate, 1) {
			continue
		}
		if cost+remaining*rate >= s.best {
			return
		}
	}
	// constraint feasibility bound
	for ci, c := range s.p.Cons {
		var fixed float64
		for i := 0; i < idx; i++ {
			fixed += c.Coef[i] * float64(s.x[i])
		}
		var minRest, maxRest float64
		for i := idx; i < s.n; i++ {
			minRest += s.minContrib[ci][i]
			maxRest += s.maxContrib[ci][i]
		}
		switch c.Rel {
		case LE:
			if fixed+minRest > c.RHS+1e-9 {
				return
			}
		case GE:
			if fixed+maxRest < c.RHS-1e-9 {
				return
			}
		case EQ:
			if fixed+minRest > c.RHS+1e-9 || fixed+maxRest < c.RHS-1e-9 {
				return
			}
		}
	}
	if idx == s.n {
		// all constraints already verified by the bound checks with no
		// remaining slack
		if cost < s.best {
			s.best = cost
			s.bestX = append([]int(nil), s.x...)
		}
		return
	}
	// Iterate large values first: greedy incumbents (few large
	// micro-batches) are found early and tighten the bounds.
	for v := s.p.Hi[idx]; v >= s.p.Lo[idx]; v-- {
		s.x[idx] = v
		s.dfs(idx+1, cost+s.p.Cost[idx]*float64(v))
	}
	s.x[idx] = s.p.Lo[idx]
}
