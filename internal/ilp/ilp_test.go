package ilp

import (
	"math"
	"testing"
	"testing/quick"

	"deep500/internal/tensor"
)

func TestSimpleKnapsack(t *testing.T) {
	// minimize 3x + 2y s.t. x + y == 10, x ≥ 2
	p := Problem{
		Cost: []float64{3, 2},
		Lo:   []int{2, 0},
		Hi:   []int{10, 10},
		Cons: []Constraint{{Coef: []float64{1, 1}, Rel: EQ, RHS: 10}},
	}
	x, obj, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if x[0] != 2 || x[1] != 8 || obj != 22 {
		t.Fatalf("x=%v obj=%v", x, obj)
	}
}

func TestInfeasible(t *testing.T) {
	p := Problem{
		Cost: []float64{1},
		Lo:   []int{0},
		Hi:   []int{5},
		Cons: []Constraint{{Coef: []float64{1}, Rel: GE, RHS: 6}},
	}
	if _, _, err := Solve(p); err != ErrInfeasible {
		t.Fatalf("err = %v", err)
	}
	// contradictory bounds
	p2 := Problem{Cost: []float64{1}, Lo: []int{3}, Hi: []int{2}}
	if _, _, err := Solve(p2); err != ErrInfeasible {
		t.Fatalf("err = %v", err)
	}
}

func TestInequalities(t *testing.T) {
	// maximize x+y  (minimize -x-y) s.t. 2x+y ≤ 8, x+3y ≤ 9
	p := Problem{
		Cost: []float64{-1, -1},
		Lo:   []int{0, 0},
		Hi:   []int{10, 10},
		Cons: []Constraint{
			{Coef: []float64{2, 1}, Rel: LE, RHS: 8},
			{Coef: []float64{1, 3}, Rel: LE, RHS: 9},
		},
	}
	x, obj, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	// integer optimum: (3,2) → 5
	if obj != -5 {
		t.Fatalf("x=%v obj=%v", x, obj)
	}
}

func TestNegativeCosts(t *testing.T) {
	p := Problem{
		Cost: []float64{-2, 1},
		Lo:   []int{0, 0},
		Hi:   []int{3, 3},
		Cons: []Constraint{{Coef: []float64{1, 1}, Rel: LE, RHS: 4}},
	}
	x, obj, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if x[0] != 3 || x[1] != 0 || obj != -6 {
		t.Fatalf("x=%v obj=%v", x, obj)
	}
}

func TestGEConstraint(t *testing.T) {
	// min x s.t. x ≥ 7
	p := Problem{Cost: []float64{1}, Lo: []int{0}, Hi: []int{20},
		Cons: []Constraint{{Coef: []float64{1}, Rel: GE, RHS: 7}}}
	x, _, err := Solve(p)
	if err != nil || x[0] != 7 {
		t.Fatalf("x=%v err=%v", x, err)
	}
}

func TestLengthValidation(t *testing.T) {
	if _, _, err := Solve(Problem{Cost: []float64{1}, Lo: []int{0}, Hi: []int{1, 2}}); err == nil {
		t.Fatal("bounds mismatch accepted")
	}
	if _, _, err := Solve(Problem{Cost: []float64{1}, Lo: []int{0}, Hi: []int{1},
		Cons: []Constraint{{Coef: []float64{1, 2}, Rel: LE, RHS: 1}}}); err == nil {
		t.Fatal("constraint mismatch accepted")
	}
}

// TestAgainstBruteForce checks the solver on random small problems against
// exhaustive enumeration.
func TestAgainstBruteForce(t *testing.T) {
	f := func(seed uint16) bool {
		rng := tensor.NewRNG(uint64(seed))
		n := rng.Intn(3) + 1
		p := Problem{Cost: make([]float64, n), Lo: make([]int, n), Hi: make([]int, n)}
		for i := 0; i < n; i++ {
			p.Cost[i] = float64(rng.Intn(11) - 5)
			p.Lo[i] = 0
			p.Hi[i] = rng.Intn(4) + 1
		}
		coef := make([]float64, n)
		for i := range coef {
			coef[i] = float64(rng.Intn(5))
		}
		p.Cons = []Constraint{{Coef: coef, Rel: LE, RHS: float64(rng.Intn(8))}}

		// brute force
		best := math.Inf(1)
		var rec func(i int, x []int, cost, lhs float64)
		rec = func(i int, x []int, cost, lhs float64) {
			if i == n {
				if lhs <= p.Cons[0].RHS+1e-9 && cost < best {
					best = cost
				}
				return
			}
			for v := p.Lo[i]; v <= p.Hi[i]; v++ {
				rec(i+1, x, cost+p.Cost[i]*float64(v), lhs+coef[i]*float64(v))
			}
		}
		rec(0, make([]int, n), 0, 0)

		x, obj, err := Solve(p)
		if math.IsInf(best, 1) {
			return err == ErrInfeasible
		}
		if err != nil {
			return false
		}
		_ = x
		return math.Abs(obj-best) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
