package training

import (
	"context"
	"strings"
	"testing"
	"time"

	"deep500/internal/obs/trace"
)

// TestTracedEpochSpans: a traced RunEpochs run yields one tree with
// epoch, step and eval spans under the run root, and op spans only under
// the sampled first step.
func TestTracedEpochSpans(t *testing.T) {
	tr := trace.New(trace.Options{
		Seed: 21, SampleEvery: 1, SlowThreshold: time.Hour, Process: "train-test",
	})
	r := cancelRunner(t)
	ds, _ := SyntheticSplit(128, 32, 4, []int{1, 8, 8}, 0.3, 3)
	r.TestSet = NewSequentialSampler(ds, 32)

	root := tr.StartRoot("train.run")
	ctx := trace.NewContext(context.Background(), root)
	if err := r.RunEpochs(ctx, 2); err != nil {
		t.Fatal(err)
	}
	root.End()

	td, ok := tr.Recorder().Trace(root.TraceID())
	if !ok {
		t.Fatal("training trace not retained")
	}
	if err := trace.VerifyTree(td); err != nil {
		t.Fatal(err)
	}
	spans := map[uint64]trace.SpanData{}
	counts := map[string]int{}
	for _, s := range td.Spans {
		spans[s.ID] = s
		counts[s.Name]++
	}
	if counts["train.epoch"] != 2 {
		t.Fatalf("%d epoch spans, want 2", counts["train.epoch"])
	}
	// 256 samples / batch 32 = 8 steps per epoch.
	if counts["train.step"] != 16 {
		t.Fatalf("%d step spans, want 16", counts["train.step"])
	}
	if counts["train.eval"] != 2 {
		t.Fatalf("%d eval spans, want 2", counts["train.eval"])
	}
	// Every op span chains op → exec pass → train.step or train.eval
	// (evaluation inference is traced too), and only the sampled first
	// step of the run carries the op subtree.
	stepsWithOps := map[uint64]bool{}
	for _, s := range td.Spans {
		if !strings.HasPrefix(s.Name, "op:") && !strings.HasPrefix(s.Name, "op.bwd:") {
			continue
		}
		pass, ok := spans[s.Parent]
		if !ok || !strings.HasPrefix(pass.Name, "exec.") {
			t.Fatalf("op span %q parented on %+v, want exec pass", s.Name, pass)
		}
		host, ok := spans[pass.Parent]
		if !ok || (host.Name != "train.step" && host.Name != "train.eval") {
			t.Fatalf("pass span %q parented on %+v, want train.step or train.eval", pass.Name, host)
		}
		if host.Name == "train.step" {
			stepsWithOps[host.ID] = true
		}
	}
	if len(stepsWithOps) != 1 {
		t.Fatalf("%d steps carry op spans, want only the sampled first", len(stepsWithOps))
	}
}
