package training

import (
	"context"
	"math"
	"testing"

	"deep500/internal/executor"
	"deep500/internal/models"
	"deep500/internal/tensor"
)

// TestRunnerBackendParity drives the full Level 2 training loop (Runner →
// Driver → executor) over the sequential reference and the parallel
// dataflow backend (with and without the tensor arena) and asserts the
// training trajectories coincide: same per-step losses, same final
// evaluation accuracy.
func TestRunnerBackendParity(t *testing.T) {
	mkRunner := func(opts ...executor.Option) (*Runner, *executor.Executor) {
		m := models.MLP(models.Config{Classes: 4, Channels: 1, Height: 8, Width: 8,
			WithHead: true, Seed: 11}, 32)
		e := executor.MustNew(m, opts...)
		e.SetTraining(true)
		train, test := SyntheticSplit(256, 64, 4, []int{1, 8, 8}, 0.3, 23)
		r := NewRunner(NewDriver(e, NewMomentum(0.05, 0.9)),
			NewShuffleSampler(train, 32, 7),
			NewSequentialSampler(test, 32))
		return r, e
	}

	type result struct {
		losses []float64
		acc    float64
	}
	run := func(opts ...executor.Option) result {
		r, _ := mkRunner(opts...)
		var res result
		r.AfterStep = func(_ int, loss, _ float64) { res.losses = append(res.losses, loss) }
		for epoch := 0; epoch < 2; epoch++ {
			if _, err := r.RunEpoch(context.Background()); err != nil {
				t.Fatal(err)
			}
		}
		acc, err := r.Evaluate(context.Background(), r.TestSet)
		if err != nil {
			t.Fatal(err)
		}
		res.acc = acc
		return res
	}

	ref := run()
	variants := map[string][]executor.Option{
		"parallel": {executor.WithBackend(executor.NewParallelBackend(nil))},
		"parallel+arena": {
			executor.WithBackend(executor.NewParallelBackend(nil)),
			executor.WithArena(tensor.NewArena()),
		},
	}
	for name, opts := range variants {
		got := run(opts...)
		if len(got.losses) != len(ref.losses) {
			t.Fatalf("%s: %d steps vs %d", name, len(got.losses), len(ref.losses))
		}
		for i := range ref.losses {
			if d := math.Abs(ref.losses[i] - got.losses[i]); d > 1e-4 {
				t.Fatalf("%s: loss at step %d diverges by %g (%g vs %g)",
					name, i, d, ref.losses[i], got.losses[i])
			}
		}
		if d := math.Abs(ref.acc - got.acc); d > 1e-9 {
			t.Fatalf("%s: final accuracy %g vs %g", name, got.acc, ref.acc)
		}
	}
}
