package training

import (
	"context"
	"errors"
	"testing"

	"deep500/internal/executor"
	"deep500/internal/models"
)

func cancelRunner(t *testing.T, opts ...executor.Option) *Runner {
	t.Helper()
	cfg := models.Config{Classes: 4, Channels: 1, Height: 8, Width: 8, WithHead: true, Seed: 3}
	m := models.MLP(cfg, 32)
	e, err := executor.New(m, opts...)
	if err != nil {
		t.Fatal(err)
	}
	e.SetTraining(true)
	ds, _ := SyntheticSplit(256, 64, 4, []int{1, 8, 8}, 0.3, 3)
	return NewRunner(NewDriver(e, NewGradientDescent(0.05)), NewShuffleSampler(ds, 32, 3), nil)
}

func TestRunEpochsCancelMidEpoch(t *testing.T) {
	r := cancelRunner(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var steps int
	r.AfterStep = func(step int, _, _ float64) {
		steps = step
		if step == 2 {
			cancel() // cancel mid-epoch, between steps
		}
	}
	err := r.RunEpochs(ctx, 5)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if steps != 2 {
		t.Fatalf("training ran %d steps after cancellation (want stop right after step 2)", steps)
	}
}

func TestRunEpochsCancelParallelBackend(t *testing.T) {
	r := cancelRunner(t, executor.WithBackend(executor.NewParallelBackend(nil)))
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	r.AfterStep = func(step int, _, _ float64) {
		if step == 2 {
			cancel()
		}
	}
	if err := r.RunEpochs(ctx, 5); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if got := r.Steps(); got != 2 {
		t.Fatalf("parallel-backend run took %d steps after cancellation (want 2)", got)
	}
}

func TestEvaluateReturnsInferenceError(t *testing.T) {
	r := cancelRunner(t)
	ds, _ := SyntheticSplit(64, 16, 4, []int{1, 8, 8}, 0.3, 4)
	// An already-cancelled context makes every inference fail: Evaluate
	// must surface that instead of reporting 0% accuracy.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := r.Evaluate(ctx, NewSequentialSampler(ds, 16)); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled from Evaluate, got %v", err)
	}
	// And a healthy evaluation still reports a real accuracy.
	acc, err := r.Evaluate(context.Background(), NewSequentialSampler(ds, 16))
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0 || acc > 1 {
		t.Fatalf("accuracy %v out of range", acc)
	}
}
