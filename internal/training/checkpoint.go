package training

import (
	"fmt"

	"deep500/internal/tensor"
)

// Exact-resume support. Every reference and fused optimizer can flatten its
// state (step counters, momentum/variance slots) into an OptimizerState and
// restore it later, and both samplers can capture their epoch cursor, so a
// checkpoint taken mid-run restores a trajectory that is bitwise-equal to
// the uninterrupted one (paper pillar 5, "Reproducibility").

// OptimizerState is a flattened, serializable snapshot of an optimizer.
// Tensor keys are namespaced by slot ("vel/<param>", "m/<param>", ...), so
// one flat map carries any number of per-parameter slot families.
type OptimizerState struct {
	Ints    map[string]int64
	Floats  map[string]float64
	Tensors map[string]*tensor.Tensor
}

func newOptimizerState() OptimizerState {
	return OptimizerState{
		Ints:    make(map[string]int64),
		Floats:  make(map[string]float64),
		Tensors: make(map[string]*tensor.Tensor),
	}
}

// CheckpointableOptimizer is implemented by optimizers that support exact
// resume. CaptureState must deep-copy tensor slots: the snapshot is handed
// to an asynchronous checkpoint writer while training keeps mutating the
// live state.
type CheckpointableOptimizer interface {
	CaptureState() OptimizerState
	RestoreState(OptimizerState) error
}

// captureTensors clones a slot map into dst under prefix+"/"+name keys.
func captureTensors(dst map[string]*tensor.Tensor, prefix string, slots map[string]*tensor.Tensor) {
	for name, t := range slots {
		dst[prefix+"/"+name] = t.Clone()
	}
}

// restoreTensors rebuilds a slot map from prefix-matched entries of src.
func restoreTensors(src map[string]*tensor.Tensor, prefix string) map[string]*tensor.Tensor {
	out := make(map[string]*tensor.Tensor)
	p := prefix + "/"
	for key, t := range src {
		if len(key) > len(p) && key[:len(p)] == p {
			out[key[len(p):]] = t.Clone()
		}
	}
	return out
}

// CaptureState snapshots the schedule step.
func (o *GradientDescent) CaptureState() OptimizerState {
	s := newOptimizerState()
	s.Ints["step"] = int64(o.step)
	return s
}

// RestoreState rewinds the schedule step.
func (o *GradientDescent) RestoreState(s OptimizerState) error {
	o.step = int(s.Ints["step"])
	return nil
}

// CaptureState snapshots the schedule step and velocity slots.
func (o *Momentum) CaptureState() OptimizerState {
	s := newOptimizerState()
	s.Ints["step"] = int64(o.step)
	captureTensors(s.Tensors, "vel", o.vel)
	return s
}

// RestoreState rewinds the schedule step and velocity slots.
func (o *Momentum) RestoreState(s OptimizerState) error {
	o.step = int(s.Ints["step"])
	o.vel = restoreTensors(s.Tensors, "vel")
	return nil
}

// CaptureState snapshots the squared-gradient accumulators.
func (o *AdaGrad) CaptureState() OptimizerState {
	s := newOptimizerState()
	captureTensors(s.Tensors, "sq", o.squares)
	return s
}

// RestoreState rewinds the squared-gradient accumulators.
func (o *AdaGrad) RestoreState(s OptimizerState) error {
	o.squares = restoreTensors(s.Tensors, "sq")
	return nil
}

// CaptureState snapshots the moving-average accumulators.
func (o *RMSProp) CaptureState() OptimizerState {
	s := newOptimizerState()
	captureTensors(s.Tensors, "sq", o.squares)
	return s
}

// RestoreState rewinds the moving-average accumulators.
func (o *RMSProp) RestoreState(s OptimizerState) error {
	o.squares = restoreTensors(s.Tensors, "sq")
	return nil
}

// CaptureState snapshots the time step and first/second-moment slots.
func (o *Adam) CaptureState() OptimizerState {
	s := newOptimizerState()
	s.Ints["t"] = int64(o.t)
	captureTensors(s.Tensors, "m", o.m)
	captureTensors(s.Tensors, "v", o.v)
	return s
}

// RestoreState rewinds the time step and moment slots.
func (o *Adam) RestoreState(s OptimizerState) error {
	o.t = int(s.Ints["t"])
	o.m = restoreTensors(s.Tensors, "m")
	o.v = restoreTensors(s.Tensors, "v")
	return nil
}

// CaptureState snapshots the full AcceleGrad state: time step, α_t/τ_t,
// the y/z sequences, and the per-parameter squared-norm accumulators.
func (o *AcceleGrad) CaptureState() OptimizerState {
	s := newOptimizerState()
	s.Ints["t"] = int64(o.t)
	if o.init {
		s.Ints["init"] = 1
	}
	s.Floats["alphaT"] = float64(o.alphaT)
	s.Floats["tauT"] = float64(o.tauT)
	for name, sq := range o.squares {
		s.Floats["sq/"+name] = sq
	}
	captureTensors(s.Tensors, "y", o.y)
	captureTensors(s.Tensors, "z", o.z)
	return s
}

// RestoreState rewinds the AcceleGrad state.
func (o *AcceleGrad) RestoreState(s OptimizerState) error {
	o.t = int(s.Ints["t"])
	o.init = s.Ints["init"] != 0
	o.alphaT = float32(s.Floats["alphaT"])
	o.tauT = float32(s.Floats["tauT"])
	o.squares = make(map[string]float64)
	for key, v := range s.Floats {
		if len(key) > 3 && key[:3] == "sq/" {
			o.squares[key[3:]] = v
		}
	}
	o.y = restoreTensors(s.Tensors, "y")
	o.z = restoreTensors(s.Tensors, "z")
	return nil
}

// CaptureState is empty: fused SGD is stateless.
func (o *FusedSGD) CaptureState() OptimizerState { return newOptimizerState() }

// RestoreState is a no-op for the stateless fused SGD.
func (o *FusedSGD) RestoreState(OptimizerState) error { return nil }

// CaptureState snapshots the velocity slots.
func (o *FusedMomentum) CaptureState() OptimizerState {
	s := newOptimizerState()
	captureTensors(s.Tensors, "vel", o.vel)
	return s
}

// RestoreState rewinds the velocity slots.
func (o *FusedMomentum) RestoreState(s OptimizerState) error {
	o.vel = restoreTensors(s.Tensors, "vel")
	return nil
}

// CaptureState snapshots the time step and moment slots.
func (o *FusedAdam) CaptureState() OptimizerState {
	s := newOptimizerState()
	s.Ints["t"] = int64(o.t)
	captureTensors(s.Tensors, "m", o.m)
	captureTensors(s.Tensors, "v", o.v)
	return s
}

// RestoreState rewinds the time step and moment slots.
func (o *FusedAdam) RestoreState(s OptimizerState) error {
	o.t = int(s.Ints["t"])
	o.m = restoreTensors(s.Tensors, "m")
	o.v = restoreTensors(s.Tensors, "v")
	return nil
}

// CaptureState snapshots the moving-average accumulators.
func (o *FusedRMSProp) CaptureState() OptimizerState {
	s := newOptimizerState()
	captureTensors(s.Tensors, "sq", o.squares)
	return s
}

// RestoreState rewinds the moving-average accumulators.
func (o *FusedRMSProp) RestoreState(s OptimizerState) error {
	o.squares = restoreTensors(s.Tensors, "sq")
	return nil
}

// CaptureState snapshots the squared-gradient accumulators.
func (o *FusedAdaGrad) CaptureState() OptimizerState {
	s := newOptimizerState()
	captureTensors(s.Tensors, "sq", o.squares)
	return s
}

// RestoreState rewinds the squared-gradient accumulators.
func (o *FusedAdaGrad) RestoreState(s OptimizerState) error {
	o.squares = restoreTensors(s.Tensors, "sq")
	return nil
}

// CaptureState forwards to the wrapped rule when it is checkpointable.
func (a ruleAdapter) CaptureState() OptimizerState {
	if c, ok := a.r.(CheckpointableOptimizer); ok {
		return c.CaptureState()
	}
	return newOptimizerState()
}

// RestoreState forwards to the wrapped rule when it is checkpointable.
func (a ruleAdapter) RestoreState(s OptimizerState) error {
	if c, ok := a.r.(CheckpointableOptimizer); ok {
		return c.RestoreState(s)
	}
	return nil
}

// Checkpointable reports whether a ThreeStep optimizer supports exact
// resume, unwrapping rule adapters (a stateless UpdateRule that does not
// implement CheckpointableOptimizer is trivially resumable only if it holds
// no state, which we cannot verify — so it must opt in).
func Checkpointable(ts ThreeStep) (CheckpointableOptimizer, bool) {
	if a, ok := ts.(ruleAdapter); ok {
		if _, ok := a.r.(CheckpointableOptimizer); ok {
			return a, true
		}
		return nil, false
	}
	c, ok := ts.(CheckpointableOptimizer)
	return c, ok
}

// SamplerState is the serializable epoch cursor of a sampler: the sample
// order of the in-flight epoch, the position of the next batch in it, and —
// for stochastic samplers — the shuffle RNG state.
type SamplerState struct {
	Order []int
	Pos   int
	RNG   *tensor.RNGState
}

// CheckpointableSampler is implemented by samplers that support exact
// resume of their epoch cursor.
type CheckpointableSampler interface {
	Sampler
	CaptureState() SamplerState
	RestoreState(SamplerState) error
}

// CaptureState snapshots the epoch cursor.
func (s *SequentialSampler) CaptureState() SamplerState {
	return SamplerState{Order: append([]int(nil), s.order...), Pos: s.pos}
}

// RestoreState rewinds the epoch cursor.
func (s *SequentialSampler) RestoreState(st SamplerState) error {
	if err := checkOrder(st.Order, s.ds.Len()); err != nil {
		return err
	}
	s.order = append([]int(nil), st.Order...)
	s.pos = st.Pos
	return nil
}

// CaptureState snapshots the epoch cursor and shuffle RNG.
func (s *ShuffleSampler) CaptureState() SamplerState {
	rng := s.rng.CaptureState()
	return SamplerState{Order: append([]int(nil), s.order...), Pos: s.pos, RNG: &rng}
}

// RestoreState rewinds the epoch cursor and shuffle RNG, so every future
// epoch reshuffles exactly as the uninterrupted run would have.
func (s *ShuffleSampler) RestoreState(st SamplerState) error {
	if err := checkOrder(st.Order, s.ds.Len()); err != nil {
		return err
	}
	if st.RNG == nil {
		return fmt.Errorf("training: checkpoint has no RNG state for a shuffle sampler")
	}
	s.order = append([]int(nil), st.Order...)
	s.pos = st.Pos
	s.rng.RestoreState(*st.RNG)
	return nil
}

func checkOrder(order []int, n int) error {
	for _, idx := range order {
		if idx < 0 || idx >= n {
			return fmt.Errorf("training: checkpoint sampler order index %d out of range for dataset of %d samples (resumed with a different dataset?)", idx, n)
		}
	}
	return nil
}
