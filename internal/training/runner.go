package training

import (
	"context"
	"fmt"
	"time"

	"deep500/internal/executor"
	"deep500/internal/metrics"
	"deep500/internal/obs/trace"
	"deep500/internal/tensor"
)

// traceStepEvery samples one optimization step per this many for per-op
// tracing: step spans are cheap, but wiring the executor's op spans under
// every step of a long run would blow the per-trace span budget, so only
// the first step and every traceStepEvery-th get the full subtree.
const traceStepEvery = 100

// Runner is the training-and-testing loop manager of Deep500's design
// (Fig. 3, Level 2): it drives an Optimizer over a training sampler, runs
// periodic evaluation over a test sampler, and feeds the Level 2 metrics
// (TrainingAccuracy, TestAccuracy, loss series, time-to-accuracy).
type Runner struct {
	Opt         Optimizer
	TrainSet    Sampler
	TestSet     Sampler // may be nil
	LossOutput  string  // model output carrying the loss (default "loss")
	AccOutput   string  // model output carrying batch accuracy (default "acc")
	TrainingAcc *metrics.Series
	TestAcc     *metrics.Series
	LossCurve   *metrics.Series
	TTA         *metrics.TimeToAccuracy // optional
	// AfterStep/AfterEpoch are user hooks (may be nil).
	AfterStep  func(step int, loss, acc float64)
	AfterEpoch func(epoch int, testAcc float64)
	// StopOnNaN aborts training when the loss becomes NaN/Inf (used by the
	// weak-scaling experiment to detect exploding losses).
	StopOnNaN bool

	step       int
	epochsDone int
	// skipReset makes the next RunEpoch continue the sampler's in-flight
	// epoch instead of resetting it — set by ResumeAt for mid-epoch resume.
	skipReset bool
}

// Steps returns the number of optimization steps completed so far.
func (r *Runner) Steps() int { return r.step }

// EpochsDone returns the number of full epochs completed so far.
func (r *Runner) EpochsDone() int { return r.epochsDone }

// ResumeAt rewinds the runner's counters to a checkpointed position: step
// optimization steps and epochsDone full epochs already behind us. When
// midEpoch is set the next RunEpoch continues the sampler's current cursor
// (the caller must have restored it) instead of starting a fresh epoch.
// RunEpochs(ctx, n) then trains the remaining n−epochsDone epochs, so step
// and epoch numbers reported to hooks continue the original run's sequence.
func (r *Runner) ResumeAt(step, epochsDone int, midEpoch bool) {
	r.step = step
	r.epochsDone = epochsDone
	r.skipReset = midEpoch
}

// NewRunner returns a runner with default metric cadences (training
// accuracy every step, test accuracy every epoch).
func NewRunner(opt Optimizer, train, test Sampler) *Runner {
	return &Runner{
		Opt: opt, TrainSet: train, TestSet: test,
		LossOutput:  "loss",
		AccOutput:   "acc",
		TrainingAcc: metrics.NewTrainingAccuracy(1),
		TestAcc:     metrics.NewTestAccuracy(1),
		LossCurve:   metrics.NewSeries("TrainingLoss", "loss", 1),
	}
}

// Step runs a single optimization step on one batch and returns the loss.
// Under a traced context (trace.NewContext upstream) it emits a
// "train.step" span; the first step and every traceStepEvery-th also
// parent the executor's forward/backward op spans.
func (r *Runner) Step(ctx context.Context, b *Batch) (float64, error) {
	var span *trace.Span
	if parent := trace.FromContext(ctx); parent != nil {
		sampled := r.step%traceStepEvery == 0
		span = parent.StartChild("train.step",
			trace.Int("step", r.step+1), trace.Bool("ops", sampled))
		if sampled {
			ctx = trace.NewContext(ctx, span)
		} else {
			ctx = trace.WithoutSpan(ctx)
		}
	}
	out, err := r.Opt.Train(ctx, b.Feeds())
	if err != nil {
		span.SetError(err)
		span.End()
		return 0, err
	}
	r.step++
	var loss, acc float64
	if t, ok := out[r.LossOutput]; ok && t.Size() == 1 {
		loss = float64(t.Data()[0])
	}
	if t, ok := out[r.AccOutput]; ok && t.Size() == 1 {
		acc = float64(t.Data()[0])
	}
	if r.TrainingAcc != nil {
		r.TrainingAcc.Observe(r.step, 0, acc)
	}
	if r.LossCurve != nil {
		r.LossCurve.Observe(r.step, 0, loss)
	}
	if r.AfterStep != nil {
		r.AfterStep(r.step, loss, acc)
	}
	span.AddAttrs(trace.Float("loss", loss), trace.Float("acc", acc))
	span.End()
	if r.StopOnNaN && (loss != loss || loss > 1e30) {
		return loss, fmt.Errorf("training: loss diverged at step %d (%v)", r.step, loss)
	}
	return loss, nil
}

// RunEpoch trains over one pass of the training sampler and returns the
// mean loss. The context is checked between steps, so cancellation stops
// the epoch at a batch boundary.
func (r *Runner) RunEpoch(ctx context.Context) (float64, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	resumed := r.skipReset
	r.skipReset = false
	if !resumed {
		r.TrainSet.Reset()
	}
	var span *trace.Span
	if parent := trace.FromContext(ctx); parent != nil {
		span = parent.StartChild("train.epoch",
			trace.Int("epoch", r.epochsDone+1), trace.Bool("resumed", resumed))
		ctx = trace.NewContext(ctx, span)
	}
	mean, n, err := r.runEpochSteps(ctx, resumed)
	span.AddAttrs(trace.Int("steps", n))
	span.SetError(err)
	span.End()
	return mean, err
}

// runEpochSteps is RunEpoch's step loop, split out so the epoch span can
// observe the outcome on every return path.
func (r *Runner) runEpochSteps(ctx context.Context, resumed bool) (float64, int, error) {
	var total float64
	var n int
	for {
		if err := ctx.Err(); err != nil {
			return 0, n, err
		}
		b := r.TrainSet.Next()
		if b == nil {
			break
		}
		loss, err := r.Step(ctx, b)
		if err != nil {
			return 0, n, err
		}
		total += loss
		n++
	}
	if n == 0 {
		if resumed {
			// The checkpoint fell exactly on the epoch boundary; nothing
			// of this epoch remains.
			return 0, 0, nil
		}
		return 0, 0, fmt.Errorf("training: empty epoch")
	}
	return total / float64(n), n, nil
}

// RunEpochs trains until n total epochs are done, with per-epoch
// evaluation. On a fresh runner that is n epochs; on one rewound with
// ResumeAt it is the remaining n−EpochsDone(). Cancelling ctx stops
// training between steps and surfaces the context's error.
func (r *Runner) RunEpochs(ctx context.Context, n int) error {
	if ctx == nil {
		ctx = context.Background()
	}
	for epoch := r.epochsDone + 1; epoch <= n; epoch++ {
		if _, err := r.RunEpoch(ctx); err != nil {
			return err
		}
		r.epochsDone = epoch
		var testAcc float64
		if r.TestSet != nil {
			var err error
			testAcc, err = r.Evaluate(ctx, r.TestSet)
			if err != nil {
				return err
			}
			if r.TestAcc != nil {
				r.TestAcc.Observe(r.step, epoch, testAcc)
			}
			if r.TTA != nil {
				r.TTA.Observe(testAcc)
			}
		}
		if r.AfterEpoch != nil {
			r.AfterEpoch(epoch, testAcc)
		}
	}
	return nil
}

// Evaluate computes mean accuracy of the model over a sampler (inference
// mode, no parameter updates). Inference failures are returned, never
// folded into the accuracy: a broken model reports an error instead of a
// silent 0% score.
func (r *Runner) Evaluate(ctx context.Context, s Sampler) (float64, error) {
	span := trace.FromContext(ctx).StartChild("train.eval")
	if span != nil {
		ctx = trace.NewContext(ctx, span)
	}
	acc, err := EvaluateExecutor(ctx, r.Opt.Executor(), s, r.AccOutput)
	span.AddAttrs(trace.Float("acc", acc))
	span.SetError(err)
	span.End()
	return acc, err
}

// EvaluateExecutor runs a sampler through an executor in inference mode
// and returns the sample-weighted mean of the named accuracy output. The
// executor's previous training/inference mode is restored afterwards, so
// evaluating through a session that never trained does not flip it into
// training mode. Batches whose outputs lack the accuracy tensor are an
// error, never a silent 0% score.
func EvaluateExecutor(ctx context.Context, exec executor.GraphExecutor, s Sampler, accOutput string) (float64, error) {
	if accOutput == "" {
		accOutput = "acc"
	}
	prev := exec.Training()
	exec.SetTraining(false)
	defer exec.SetTraining(prev)
	s.Reset()
	var correctWeighted float64
	var total, batches int
	for {
		b := s.Next()
		if b == nil {
			break
		}
		batches++
		out, err := exec.Inference(ctx, b.Feeds())
		if err != nil {
			return 0, fmt.Errorf("training: evaluation inference failed: %w", err)
		}
		if t, ok := out[accOutput]; ok && t.Size() == 1 {
			correctWeighted += float64(t.Data()[0]) * float64(b.Size())
			total += b.Size()
		}
	}
	if total == 0 {
		if batches > 0 {
			return 0, fmt.Errorf("training: model produced no scalar %q output during evaluation", accOutput)
		}
		return 0, nil
	}
	return correctWeighted / float64(total), nil
}

// EpochTime measures the wallclock duration of one training epoch without
// touching metric state — used by the Level 2 overhead experiment.
func (r *Runner) EpochTime(ctx context.Context) (time.Duration, error) {
	r.TrainSet.Reset()
	start := time.Now()
	for {
		b := r.TrainSet.Next()
		if b == nil {
			break
		}
		if _, err := r.Opt.Train(ctx, b.Feeds()); err != nil {
			return 0, err
		}
	}
	return time.Since(start), nil
}

// SyntheticClassification builds a deterministic, learnable classification
// dataset: each class has a random prototype pattern, and samples are the
// prototype plus Gaussian noise. It stands in for MNIST/CIFAR in
// convergence experiments (see DESIGN.md substitutions).
func SyntheticClassification(n, classes int, shape []int, noise float32, seed uint64) *InMemoryDataset {
	rng := tensor.NewRNG(seed)
	vol := tensor.Volume(shape)
	protos := make([][]float32, classes)
	for c := range protos {
		p := make([]float32, vol)
		for i := range p {
			p[i] = float32(rng.Norm())
		}
		protos[c] = p
	}
	data := make([]float32, n*vol)
	labels := make([]int, n)
	for i := 0; i < n; i++ {
		c := i % classes
		labels[i] = c
		dst := data[i*vol : (i+1)*vol]
		for j := range dst {
			dst[j] = protos[c][j] + noise*float32(rng.Norm())
		}
	}
	return NewInMemoryDataset(data, labels, shape)
}

// SyntheticSplit generates train and test datasets that share the same
// class prototypes (the same underlying task) but disjoint noise draws —
// what a convergence experiment needs for test accuracy to be meaningful.
func SyntheticSplit(nTrain, nTest, classes int, shape []int, noise float32, seed uint64) (train, test *InMemoryDataset) {
	full := SyntheticClassification(nTrain+nTest, classes, shape, noise, seed)
	vol := tensor.Volume(shape)
	train = NewInMemoryDataset(full.data[:nTrain*vol], full.labels[:nTrain], shape)
	test = NewInMemoryDataset(full.data[nTrain*vol:], full.labels[nTrain:], shape)
	return
}
