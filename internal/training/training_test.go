package training

import (
	"context"
	"math"
	"testing"
	"testing/quick"

	"deep500/internal/executor"
	"deep500/internal/metrics"
	"deep500/internal/models"
	"deep500/internal/tensor"
)

func mlpExec(t *testing.T, seed uint64) *executor.Executor {
	t.Helper()
	m := models.MLP(models.Config{
		Classes: 4, Channels: 1, Height: 4, Width: 4, WithHead: true, Seed: seed,
	}, 32)
	e, err := executor.New(m)
	if err != nil {
		t.Fatal(err)
	}
	e.SetTraining(true)
	return e
}

func synthSamplers(batch int) (*ShuffleSampler, *SequentialSampler) {
	train, test := SyntheticSplit(256, 64, 4, []int{1, 4, 4}, 0.3, 11)
	return NewShuffleSampler(train, batch, 1), NewSequentialSampler(test, batch)
}

func TestInMemoryDataset(t *testing.T) {
	ds := NewInMemoryDataset([]float32{1, 2, 3, 4, 5, 6}, []int{0, 1}, []int{3})
	if ds.Len() != 2 {
		t.Fatal("len")
	}
	buf := make([]float32, 3)
	if l := ds.Read(1, buf); l != 1 || buf[0] != 4 {
		t.Fatalf("read: label=%d buf=%v", l, buf)
	}
}

func TestSequentialSamplerCoversDataset(t *testing.T) {
	ds := SyntheticClassification(10, 2, []int{2}, 0.1, 1)
	s := NewSequentialSampler(ds, 4)
	var total int
	for b := s.Next(); b != nil; b = s.Next() {
		total += b.Size()
	}
	if total != 10 {
		t.Fatalf("covered %d of 10 (last partial batch must be included)", total)
	}
	s.Reset()
	if b := s.Next(); b == nil || b.Size() != 4 {
		t.Fatal("reset failed")
	}
}

func TestShuffleSamplerShuffles(t *testing.T) {
	ds := SyntheticClassification(64, 4, []int{1}, 0, 2)
	s := NewShuffleSampler(ds, 64, 3)
	b1 := s.Next()
	s.Reset()
	b2 := s.Next()
	diff := false
	for i := range b1.Labels.Data() {
		if b1.Labels.Data()[i] != b2.Labels.Data()[i] {
			diff = true
			break
		}
	}
	if !diff {
		t.Fatal("two epochs produced identical order")
	}
}

func TestShuffleSamplerDropsLastPartial(t *testing.T) {
	ds := SyntheticClassification(10, 2, []int{1}, 0, 3)
	s := NewShuffleSampler(ds, 4, 1)
	var batches int
	for b := s.Next(); b != nil; b = s.Next() {
		if b.Size() != 4 {
			t.Fatalf("partial batch of %d", b.Size())
		}
		batches++
	}
	if batches != 2 {
		t.Fatalf("batches = %d", batches)
	}
}

func TestDatasetBiasAttachment(t *testing.T) {
	ds := SyntheticClassification(100, 5, []int{1}, 0, 4)
	s := NewSequentialSampler(ds, 10)
	bias := metrics.NewDatasetBias()
	s.AttachBias(bias)
	for b := s.Next(); b != nil; b = s.Next() {
	}
	if got := bias.Histogram()[0]; got != 20 {
		t.Fatalf("label 0 count %d, want 20", got)
	}
	if bias.ChiSquare() != 0 {
		t.Fatalf("balanced dataset chi² = %v", bias.ChiSquare())
	}
}

// optimizersConverge verifies a three-step optimizer reaches high accuracy
// on an easy synthetic task.
func optimizerConverges(t *testing.T, name string, ts ThreeStep, epochs int) {
	t.Helper()
	e := mlpExec(t, 5)
	train, test := synthSamplers(32)
	r := NewRunner(NewDriver(e, ts), train, test)
	if err := r.RunEpochs(context.Background(), epochs); err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	if acc := r.TestAcc.Last(); acc < 0.9 {
		t.Fatalf("%s: test accuracy %v < 0.9", name, acc)
	}
}

func TestGradientDescentConverges(t *testing.T) {
	optimizerConverges(t, "sgd", NewGradientDescent(0.1), 5)
}
func TestMomentumConverges(t *testing.T) {
	optimizerConverges(t, "momentum", NewMomentum(0.05, 0.9), 5)
}
func TestNesterovConverges(t *testing.T) {
	optimizerConverges(t, "nesterov", NewNesterov(0.05, 0.9), 5)
}
func TestAdaGradConverges(t *testing.T) { optimizerConverges(t, "adagrad", NewAdaGrad(0.05), 5) }
func TestRMSPropConverges(t *testing.T) { optimizerConverges(t, "rmsprop", NewRMSProp(0.005, 0.9), 5) }
func TestAdamConverges(t *testing.T)    { optimizerConverges(t, "adam", NewAdam(0.005), 5) }
func TestAcceleGradConverges(t *testing.T) {
	optimizerConverges(t, "accelegrad", NewAcceleGrad(0.05, 1, 1), 6)
}
func TestFusedAdamConverges(t *testing.T) {
	optimizerConverges(t, "fused-adam", NewFusedAdam(0.005), 5)
}
func TestFusedSGDConverges(t *testing.T) {
	optimizerConverges(t, "fused-sgd", FromUpdateRule(NewFusedSGD(0.1)), 5)
}
func TestFusedMomentumConverges(t *testing.T) {
	optimizerConverges(t, "fused-momentum", FromUpdateRule(NewFusedMomentum(0.05, 0.9)), 5)
}

func TestFusedMatchesReferenceAdam(t *testing.T) {
	// One step of FusedAdam must match one step of reference Adam exactly
	// (same formulation) — the paper's operator-fusion comparison.
	e1 := mlpExec(t, 9)
	e2 := mlpExec(t, 9)
	train, _ := synthSamplers(16)
	b := train.Next()
	d1 := NewDriver(e1, NewAdam(0.01))
	d2 := NewDriver(e2, NewFusedAdam(0.01))
	if _, err := d1.Train(context.Background(), b.Feeds()); err != nil {
		t.Fatal(err)
	}
	if _, err := d2.Train(context.Background(), b.Feeds()); err != nil {
		t.Fatal(err)
	}
	for _, name := range e1.Network().Params() {
		p1, _ := e1.Network().FetchTensor(name)
		p2, _ := e2.Network().FetchTensor(name)
		if !tensor.AllClose(p1, p2, 1e-5, 1e-6) {
			d := tensor.Compare(p2, p1)
			t.Fatalf("param %s diverged after one step: Linf=%g", name, d.LInf)
		}
	}
}

func TestAdamVariantsDiverge(t *testing.T) {
	// The two Adam formulations must drift apart over iterations (Fig. 11).
	e1 := mlpExec(t, 21)
	e2 := mlpExec(t, 21)
	train, _ := synthSamplers(16)
	d1 := NewDriver(e1, NewAdamVariant(0.01, AdamReference))
	d2 := NewDriver(e2, NewAdamVariant(0.01, AdamEpsInside))
	var firstDiv, lastDiv float64
	for i := 0; i < 30; i++ {
		train.Reset()
		b := train.Next()
		if _, err := d1.Train(context.Background(), b.Feeds()); err != nil {
			t.Fatal(err)
		}
		if _, err := d2.Train(context.Background(), b.Feeds()); err != nil {
			t.Fatal(err)
		}
		var div float64
		for _, name := range e1.Network().Params() {
			p1, _ := e1.Network().FetchTensor(name)
			p2, _ := e2.Network().FetchTensor(name)
			div += tensor.Compare(p2, p1).L2
		}
		if i == 0 {
			firstDiv = div
		}
		lastDiv = div
	}
	if lastDiv <= firstDiv {
		t.Fatalf("divergence did not grow: first %g last %g", firstDiv, lastDiv)
	}
}

func TestSchedules(t *testing.T) {
	c := ConstantLR(0.1)
	if c(0) != 0.1 || c(1000) != 0.1 {
		t.Fatal("constant")
	}
	s := StepDecay(1, 0.5, 10)
	if s(0) != 1 || s(10) != 0.5 || s(20) != 0.25 {
		t.Fatalf("step decay: %v %v %v", s(0), s(10), s(20))
	}
	cos := CosineAnnealing(1, 0, 100)
	if cos(0) != 1 || math.Abs(float64(cos(50))-0.5) > 1e-6 || cos(100) != 0 {
		t.Fatalf("cosine: %v %v %v", cos(0), cos(50), cos(100))
	}
}

func TestRunnerMetricspopulated(t *testing.T) {
	e := mlpExec(t, 30)
	train, test := synthSamplers(32)
	r := NewRunner(NewDriver(e, NewGradientDescent(0.1)), train, test)
	r.TTA = metrics.NewTimeToAccuracy("tta", 0.5)
	r.TTA.Start()
	var steps, epochs int
	r.AfterStep = func(step int, loss, acc float64) { steps++ }
	r.AfterEpoch = func(epoch int, testAcc float64) { epochs++ }
	if err := r.RunEpochs(context.Background(), 2); err != nil {
		t.Fatal(err)
	}
	if steps == 0 || epochs != 2 {
		t.Fatalf("hooks: steps=%d epochs=%d", steps, epochs)
	}
	if len(r.LossCurve.Points()) != steps {
		t.Fatal("loss curve incomplete")
	}
	if len(r.TestAcc.Points()) != 2 {
		t.Fatal("test accuracy cadence wrong")
	}
	if ok, _ := r.TTA.Reached(); !ok {
		t.Fatal("TTA 0.5 not reached on easy task")
	}
	first := r.LossCurve.Points()[0].Value
	last := r.LossCurve.Last()
	if last >= first {
		t.Fatalf("loss did not decrease: %v -> %v", first, last)
	}
}

func TestGradHookRuns(t *testing.T) {
	e := mlpExec(t, 31)
	train, _ := synthSamplers(16)
	d := NewDriver(e, NewGradientDescent(0.1))
	var hooked int
	d.GradHook = func(name string, g *tensor.Tensor) *tensor.Tensor {
		hooked++
		return g
	}
	if _, err := d.Train(context.Background(), train.Next().Feeds()); err != nil {
		t.Fatal(err)
	}
	if hooked != len(e.Network().Params()) {
		t.Fatalf("hook ran %d times for %d params", hooked, len(e.Network().Params()))
	}
}

func TestEvaluateUsesInferenceMode(t *testing.T) {
	// Evaluate must not change parameters.
	e := mlpExec(t, 32)
	train, test := synthSamplers(16)
	r := NewRunner(NewDriver(e, NewGradientDescent(0.1)), train, test)
	before, _ := e.Network().FetchTensor(e.Network().Params()[0])
	snapshot := before.Clone()
	r.Evaluate(context.Background(), test)
	after, _ := e.Network().FetchTensor(e.Network().Params()[0])
	if !tensor.AllClose(after, snapshot, 0, 0) {
		t.Fatal("evaluation mutated parameters")
	}
}

func TestPropSamplerPartition(t *testing.T) {
	// Property: a sequential pass visits each index exactly once regardless
	// of batch size.
	f := func(seed uint16) bool {
		rng := tensor.NewRNG(uint64(seed))
		n := rng.Intn(50) + 1
		batch := rng.Intn(16) + 1
		ds := SyntheticClassification(n, 3, []int{1}, 0, uint64(seed))
		s := NewSequentialSampler(ds, batch)
		var total int
		for b := s.Next(); b != nil; b = s.Next() {
			total += b.Size()
		}
		return total == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSyntheticDatasetLearnable(t *testing.T) {
	// Sanity: classes are separable — nearest-prototype distance check.
	ds := SyntheticClassification(40, 4, []int{8}, 0.1, 99)
	buf1 := make([]float32, 8)
	buf2 := make([]float32, 8)
	l1 := ds.Read(0, buf1) // class 0
	l2 := ds.Read(4, buf2) // class 0 again (i%4)
	if l1 != l2 {
		t.Fatal("labels not cyclic")
	}
	var same float64
	for i := range buf1 {
		d := float64(buf1[i] - buf2[i])
		same += d * d
	}
	ds.Read(1, buf2) // class 1
	var diff float64
	for i := range buf1 {
		d := float64(buf1[i] - buf2[i])
		diff += d * d
	}
	if same >= diff {
		t.Fatalf("intra-class distance %v ≥ inter-class %v", same, diff)
	}
}
