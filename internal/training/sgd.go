package training

import (
	"math"

	"deep500/internal/tensor"
)

// Schedule maps a step index to a learning rate.
type Schedule func(step int) float32

// ConstantLR returns a constant learning-rate schedule.
func ConstantLR(lr float32) Schedule { return func(int) float32 { return lr } }

// StepDecay decays lr by factor every interval steps.
func StepDecay(lr, factor float32, interval int) Schedule {
	return func(step int) float32 {
		return lr * float32(math.Pow(float64(factor), float64(step/interval)))
	}
}

// CosineAnnealing anneals lr from lr to minLR over total steps.
func CosineAnnealing(lr, minLR float32, total int) Schedule {
	return func(step int) float32 {
		if step >= total {
			return minLR
		}
		c := 0.5 * (1 + math.Cos(math.Pi*float64(step)/float64(total)))
		return minLR + (lr-minLR)*float32(c)
	}
}

// GradientDescent is plain SGD with a learning-rate schedule — the paper's
// "Gradient Descent with learning rate schedule" reference optimizer. This
// is a deliberately *reference* (allocation-per-step, composed-from-tensor-
// ops) implementation; the fused counterparts live in fused.go.
type GradientDescent struct {
	LR   Schedule
	step int
}

// NewGradientDescent returns SGD with a constant learning rate.
func NewGradientDescent(lr float32) *GradientDescent {
	return &GradientDescent{LR: ConstantLR(lr)}
}

// NewInput advances the schedule.
func (o *GradientDescent) NewInput() { o.step++ }

// PrepareParam is a no-op for SGD.
func (o *GradientDescent) PrepareParam(string, *tensor.Tensor) *tensor.Tensor { return nil }

// UpdateRule returns w - lr·g.
func (o *GradientDescent) UpdateRule(grad, oldParam *tensor.Tensor, name string) *tensor.Tensor {
	lr := o.LR(o.step)
	return tensor.Sub(oldParam, tensor.Map(grad, func(g float32) float32 { return lr * g }))
}

// Momentum is SGD with (Polyak) momentum.
type Momentum struct {
	LR       Schedule
	Mu       float32
	Nesterov bool
	step     int
	vel      map[string]*tensor.Tensor
}

// NewMomentum returns momentum SGD.
func NewMomentum(lr, mu float32) *Momentum {
	return &Momentum{LR: ConstantLR(lr), Mu: mu, vel: make(map[string]*tensor.Tensor)}
}

// NewNesterov returns Nesterov-accelerated SGD.
func NewNesterov(lr, mu float32) *Momentum {
	m := NewMomentum(lr, mu)
	m.Nesterov = true
	return m
}

// NewInput advances the schedule.
func (o *Momentum) NewInput() { o.step++ }

// PrepareParam is a no-op.
func (o *Momentum) PrepareParam(string, *tensor.Tensor) *tensor.Tensor { return nil }

// UpdateRule applies v ← μv - lr·g; w ← w + v (plus the Nesterov lookahead
// when enabled).
func (o *Momentum) UpdateRule(grad, oldParam *tensor.Tensor, name string) *tensor.Tensor {
	lr := o.LR(o.step)
	v, ok := o.vel[name]
	if !ok {
		v = tensor.New(oldParam.Shape()...)
		o.vel[name] = v
	}
	v.Scale(o.Mu)
	v.Axpy(-lr, grad)
	if o.Nesterov {
		// w + μv - lr·g
		out := tensor.Add(oldParam, tensor.Map(v, func(x float32) float32 { return o.Mu * x }))
		out.Axpy(-lr, grad)
		return out
	}
	return tensor.Add(oldParam, v)
}
