// Package training implements Deep500 Level 2 (paper §IV-E): dataset
// samplers, the UpdateRule and ThreeStep optimizer abstractions, a zoo of
// reference optimizers (SGD, Momentum, Nesterov, AdaGrad, RMSProp, Adam,
// AcceleGrad), learning-rate schedules, and the training/testing loop
// runner with metric and event integration.
package training

import (
	"fmt"

	"deep500/internal/metrics"
	"deep500/internal/tensor"
)

// Dataset is random access to labeled samples. Implementations live in
// internal/datasets; small in-memory datasets can use InMemoryDataset.
type Dataset interface {
	// Len returns the number of samples.
	Len() int
	// SampleShape returns the shape of one sample (no batch dimension).
	SampleShape() []int
	// Read copies sample i into dst (length = volume of SampleShape) and
	// returns its label.
	Read(i int, dst []float32) int
}

// Batch is one minibatch: X has shape [B, sample...], Labels has shape [B].
type Batch struct {
	X      *tensor.Tensor
	Labels *tensor.Tensor
}

// Feeds returns the executor feed map for the conventional input names.
func (b *Batch) Feeds() map[string]*tensor.Tensor {
	return map[string]*tensor.Tensor{"x": b.X, "labels": b.Labels}
}

// Size returns the number of samples in the batch.
func (b *Batch) Size() int { return b.Labels.Size() }

// Sampler produces minibatches from a dataset — the DatasetSampler
// interface of the paper. Next returns nil at the end of an epoch; Reset
// starts the next epoch.
type Sampler interface {
	Next() *Batch
	Reset()
	BatchSize() int
}

// InMemoryDataset is a flat in-memory implementation of Dataset.
type InMemoryDataset struct {
	shape  []int
	stride int
	data   []float32
	labels []int
}

// NewInMemoryDataset wraps sample data (n × volume(shape)) and labels.
func NewInMemoryDataset(data []float32, labels []int, shape []int) *InMemoryDataset {
	stride := tensor.Volume(shape)
	if len(data) != stride*len(labels) {
		panic(fmt.Sprintf("training: data length %d != %d samples × %d", len(data), len(labels), stride))
	}
	return &InMemoryDataset{shape: append([]int(nil), shape...), stride: stride, data: data, labels: labels}
}

// Len returns the sample count.
func (d *InMemoryDataset) Len() int { return len(d.labels) }

// SampleShape returns the per-sample shape.
func (d *InMemoryDataset) SampleShape() []int { return d.shape }

// Read copies sample i into dst and returns its label.
func (d *InMemoryDataset) Read(i int, dst []float32) int {
	copy(dst, d.data[i*d.stride:(i+1)*d.stride])
	return d.labels[i]
}

// baseSampler assembles batches given an index order.
type baseSampler struct {
	ds        Dataset
	batch     int
	pos       int
	order     []int
	dropLast  bool
	bias      *metrics.DatasetBias
	batchBuf  []float32
	labelsBuf []float32
}

func (s *baseSampler) BatchSize() int { return s.batch }

// AttachBias wires a DatasetBias metric that observes every sampled label.
func (s *baseSampler) AttachBias(b *metrics.DatasetBias) { s.bias = b }

func (s *baseSampler) next() *Batch {
	remaining := len(s.order) - s.pos
	if remaining <= 0 || (s.dropLast && remaining < s.batch) {
		return nil
	}
	n := s.batch
	if n > remaining {
		n = remaining
	}
	stride := tensor.Volume(s.ds.SampleShape())
	if cap(s.batchBuf) < n*stride {
		s.batchBuf = make([]float32, n*stride)
		s.labelsBuf = make([]float32, n)
	}
	xData := make([]float32, n*stride)
	labels := make([]float32, n)
	for j := 0; j < n; j++ {
		idx := s.order[s.pos+j]
		label := s.ds.Read(idx, xData[j*stride:(j+1)*stride])
		labels[j] = float32(label)
		if s.bias != nil {
			s.bias.ObserveLabel(label)
		}
	}
	s.pos += n
	shape := append([]int{n}, s.ds.SampleShape()...)
	return &Batch{X: tensor.From(xData, shape...), Labels: tensor.From(labels, n)}
}

// SequentialSampler iterates the dataset in order.
type SequentialSampler struct{ baseSampler }

// NewSequentialSampler returns an in-order sampler.
func NewSequentialSampler(ds Dataset, batch int) *SequentialSampler {
	s := &SequentialSampler{baseSampler{ds: ds, batch: batch}}
	s.Reset()
	return s
}

// Next returns the next batch or nil at epoch end.
func (s *SequentialSampler) Next() *Batch { return s.next() }

// Reset rewinds to the dataset start.
func (s *SequentialSampler) Reset() {
	if s.order == nil {
		s.order = make([]int, s.ds.Len())
		for i := range s.order {
			s.order[i] = i
		}
	}
	s.pos = 0
}

// ShuffleSampler reshuffles the index order each epoch (uniform sampling
// without replacement — minibatch SGD's standard scheme, Algorithm 1).
type ShuffleSampler struct {
	baseSampler
	rng *tensor.RNG
}

// NewShuffleSampler returns a shuffling sampler seeded deterministically.
func NewShuffleSampler(ds Dataset, batch int, seed uint64) *ShuffleSampler {
	s := &ShuffleSampler{baseSampler: baseSampler{ds: ds, batch: batch, dropLast: true}, rng: tensor.NewRNG(seed)}
	s.Reset()
	return s
}

// Next returns the next batch or nil at epoch end.
func (s *ShuffleSampler) Next() *Batch { return s.next() }

// Reset reshuffles for a new epoch.
func (s *ShuffleSampler) Reset() {
	s.order = s.rng.Perm(s.ds.Len())
	s.pos = 0
}
