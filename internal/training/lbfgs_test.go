package training

import (
	"context"
	"testing"
)

func TestLBFGSConverges(t *testing.T) {
	e := mlpExec(t, 17)
	train, test := synthSamplers(32)
	opt := NewLBFGS(e, 0.2, 8)
	r := NewRunner(opt, train, test)
	if err := r.RunEpochs(context.Background(), 6); err != nil {
		t.Fatal(err)
	}
	if acc := r.TestAcc.Last(); acc < 0.9 {
		t.Fatalf("L-BFGS test accuracy %v < 0.9", acc)
	}
}

func TestLBFGSCurvatureHistoryBounded(t *testing.T) {
	e := mlpExec(t, 18)
	train, _ := synthSamplers(32)
	opt := NewLBFGS(e, 0.1, 3)
	for i := 0; i < 10; i++ {
		train.Reset()
		if _, err := opt.Train(context.Background(), train.Next().Feeds()); err != nil {
			t.Fatal(err)
		}
	}
	if len(opt.sHist) > 3 || len(opt.yHist) > 3 {
		t.Fatalf("history grew beyond bound: %d/%d", len(opt.sHist), len(opt.yHist))
	}
	if len(opt.sHist) == 0 {
		t.Fatal("no curvature pairs collected")
	}
}

func TestLBFGSFirstStepIsGradientDescent(t *testing.T) {
	// with no history, the two-loop direction is -g (up to γ=1)
	e := mlpExec(t, 19)
	opt := NewLBFGS(e, 0.05, 5)
	g := []float32{1, -2, 3}
	d := opt.direction(g)
	for i := range g {
		if d[i] != -g[i] {
			t.Fatalf("direction %v, want -g", d)
		}
	}
}
