package training

import (
	"math"

	"deep500/internal/tensor"
)

// AdaGrad accumulates squared gradients per parameter.
type AdaGrad struct {
	LR, Eps float32
	squares map[string]*tensor.Tensor
}

// NewAdaGrad returns an AdaGrad reference optimizer.
func NewAdaGrad(lr float32) *AdaGrad {
	return &AdaGrad{LR: lr, Eps: 1e-8, squares: make(map[string]*tensor.Tensor)}
}

// NewInput is a no-op.
func (o *AdaGrad) NewInput() {}

// PrepareParam is a no-op.
func (o *AdaGrad) PrepareParam(string, *tensor.Tensor) *tensor.Tensor { return nil }

// UpdateRule applies s += g²; w -= lr·g/(√s+ε).
func (o *AdaGrad) UpdateRule(grad, oldParam *tensor.Tensor, name string) *tensor.Tensor {
	s, ok := o.squares[name]
	if !ok {
		s = tensor.New(oldParam.Shape()...)
		o.squares[name] = s
	}
	s.AddInPlace(tensor.Mul(grad, grad))
	out := oldParam.Clone()
	g, sd, od := grad.Data(), s.Data(), out.Data()
	for i := range od {
		od[i] -= o.LR * g[i] / (float32(math.Sqrt(float64(sd[i]))) + o.Eps)
	}
	return out
}

// RMSProp keeps an exponential moving average of squared gradients.
type RMSProp struct {
	LR, Rho, Eps float32
	squares      map[string]*tensor.Tensor
}

// NewRMSProp returns an RMSProp reference optimizer.
func NewRMSProp(lr, rho float32) *RMSProp {
	return &RMSProp{LR: lr, Rho: rho, Eps: 1e-8, squares: make(map[string]*tensor.Tensor)}
}

// NewInput is a no-op.
func (o *RMSProp) NewInput() {}

// PrepareParam is a no-op.
func (o *RMSProp) PrepareParam(string, *tensor.Tensor) *tensor.Tensor { return nil }

// UpdateRule applies s ← ρs + (1-ρ)g²; w -= lr·g/√(s+ε).
func (o *RMSProp) UpdateRule(grad, oldParam *tensor.Tensor, name string) *tensor.Tensor {
	s, ok := o.squares[name]
	if !ok {
		s = tensor.New(oldParam.Shape()...)
		o.squares[name] = s
	}
	g, sd := grad.Data(), s.Data()
	for i := range sd {
		sd[i] = o.Rho*sd[i] + (1-o.Rho)*g[i]*g[i]
	}
	out := oldParam.Clone()
	od := out.Data()
	for i := range od {
		od[i] -= o.LR * g[i] / float32(math.Sqrt(float64(sd[i]+o.Eps)))
	}
	return out
}

// AdamVariant selects between two common, *non-identical* Adam formulations
// whose trajectories slowly diverge — the effect the paper visualizes in
// Fig. 11 by comparing TensorFlow's Adam with the reference one.
type AdamVariant int

const (
	// AdamReference is the formulation of Kingma & Ba (Algorithm 1 of the
	// Adam paper): w -= lr · m̂ / (√v̂ + ε).
	AdamReference AdamVariant = iota
	// AdamEpsInside is the TensorFlow formulation: the bias correction is
	// folded into the step size and ε is applied *after* the square root of
	// the uncorrected v: w -= α_t · m / (√v + ε̂).
	AdamEpsInside
)

// Adam is the Adam reference optimizer with selectable formulation.
type Adam struct {
	LR, Beta1, Beta2, Eps float32
	Variant               AdamVariant
	t                     int
	m, v                  map[string]*tensor.Tensor
}

// NewAdam returns Adam in the reference (paper) formulation.
func NewAdam(lr float32) *Adam {
	return &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8,
		m: make(map[string]*tensor.Tensor), v: make(map[string]*tensor.Tensor)}
}

// NewAdamVariant returns Adam in the chosen formulation.
func NewAdamVariant(lr float32, variant AdamVariant) *Adam {
	a := NewAdam(lr)
	a.Variant = variant
	return a
}

// NewInput advances the time step (bias correction uses t starting at 1).
func (o *Adam) NewInput() { o.t++ }

// PrepareParam is a no-op.
func (o *Adam) PrepareParam(string, *tensor.Tensor) *tensor.Tensor { return nil }

// UpdateRule applies the chosen Adam formulation.
func (o *Adam) UpdateRule(grad, oldParam *tensor.Tensor, name string) *tensor.Tensor {
	m, ok := o.m[name]
	if !ok {
		m = tensor.New(oldParam.Shape()...)
		o.m[name] = m
		o.v[name] = tensor.New(oldParam.Shape()...)
	}
	v := o.v[name]
	g, md, vd := grad.Data(), m.Data(), v.Data()
	for i := range md {
		md[i] = o.Beta1*md[i] + (1-o.Beta1)*g[i]
		vd[i] = o.Beta2*vd[i] + (1-o.Beta2)*g[i]*g[i]
	}
	t := o.t
	if t < 1 {
		t = 1
	}
	bc1 := 1 - float32(math.Pow(float64(o.Beta1), float64(t)))
	bc2 := 1 - float32(math.Pow(float64(o.Beta2), float64(t)))
	out := oldParam.Clone()
	od := out.Data()
	switch o.Variant {
	case AdamEpsInside:
		alpha := o.LR * float32(math.Sqrt(float64(bc2))) / bc1
		for i := range od {
			od[i] -= alpha * md[i] / (float32(math.Sqrt(float64(vd[i]))) + o.Eps)
		}
	default:
		for i := range od {
			mHat := md[i] / bc1
			vHat := vd[i] / bc2
			od[i] -= o.LR * mHat / (float32(math.Sqrt(float64(vHat))) + o.Eps)
		}
	}
	return out
}

// AcceleGrad implements the adaptive accelerated optimizer of Levy et al.
// (the paper's Listing 7), using the full three-step interface: it adjusts
// parameters before inference (the τ_t·z + (1-τ_t)·y interpolation) and
// keeps per-parameter y/z sequences.
type AcceleGrad struct {
	LR, D, G, Eps float32
	t             int
	alphaT, tauT  float32
	init          bool
	y, z          map[string]*tensor.Tensor
	squares       map[string]float64
}

// NewAcceleGrad returns an AcceleGrad optimizer. D bounds the domain
// diameter and G the gradient norm, as in the algorithm.
func NewAcceleGrad(lr, d, g float32) *AcceleGrad {
	return &AcceleGrad{LR: lr, D: d, G: g, Eps: 1e-8,
		y: make(map[string]*tensor.Tensor), z: make(map[string]*tensor.Tensor),
		squares: make(map[string]float64)}
}

// NewInput computes α_t and τ_t (Listing 7, new_input).
func (o *AcceleGrad) NewInput() {
	o.t++
	if o.t <= 3 {
		o.alphaT = 1
	} else {
		o.alphaT = float32(o.t) / 4
	}
	o.tauT = 1 / o.alphaT
}

// PrepareParam feeds the interpolated iterate τ_t·z + (1-τ_t)·y (Listing 7,
// prepare_param).
func (o *AcceleGrad) PrepareParam(name string, param *tensor.Tensor) *tensor.Tensor {
	if _, ok := o.y[name]; !ok {
		o.y[name] = param.Clone()
		o.z[name] = param.Clone()
		o.squares[name] = 0
	}
	y, z := o.y[name], o.z[name]
	out := tensor.New(param.Shape()...)
	od, yd, zd := out.Data(), y.Data(), z.Data()
	for i := range od {
		od[i] = o.tauT*zd[i] + (1-o.tauT)*yd[i]
	}
	return out
}

// UpdateRule applies the AcceleGrad update (Listing 7, update_rule).
func (o *AcceleGrad) UpdateRule(grad, oldParam *tensor.Tensor, name string) *tensor.Tensor {
	sq := o.squares[name]
	gnorm := grad.Norm2()
	sq += float64(o.alphaT) * float64(o.alphaT) * gnorm * gnorm
	etaT := 2 * float64(o.D) / math.Sqrt(float64(o.G)*float64(o.G)+sq)
	z, y := o.z[name], o.y[name]
	zd, yd, gd, od := z.Data(), y.Data(), grad.Data(), oldParam.Data()
	for i := range zd {
		zd[i] -= o.alphaT * float32(etaT) * gd[i]
		yd[i] = od[i] - float32(etaT)*gd[i]
	}
	o.squares[name] = sq
	adjusted := o.LR / (o.Eps + float32(math.Sqrt(sq)))
	out := oldParam.Clone()
	outD := out.Data()
	for i := range outD {
		outD[i] -= adjusted * gd[i]
	}
	o.init = true
	return out
}
