package training

import (
	"deep500/internal/kernels"
	"deep500/internal/tensor"
)

// The fused ("native") optimizers update parameters in place with a single
// kernel pass, the way Caffe2's dedicated Adam GPU operator does (paper Use
// Case 1). They contrast with the reference optimizers in sgd.go and
// adaptive.go, which compose tensor operations and allocate fresh tensors —
// the same contrast the paper measures in Fig. 9 (reference Adam ≈5× slower
// than the native fused one).

// FusedSGD applies w ← w − lr·g in one pass.
type FusedSGD struct{ LR float32 }

// NewFusedSGD returns a fused SGD update rule.
func NewFusedSGD(lr float32) *FusedSGD { return &FusedSGD{LR: lr} }

// Update applies the step in place and returns the same tensor.
func (o *FusedSGD) Update(grad, oldParam *tensor.Tensor, name string) *tensor.Tensor {
	kernels.SGDFused(oldParam.Data(), grad.Data(), o.LR)
	return oldParam
}

// FusedMomentum applies momentum SGD in one pass.
type FusedMomentum struct {
	LR, Mu float32
	vel    map[string]*tensor.Tensor
}

// NewFusedMomentum returns a fused momentum update rule.
func NewFusedMomentum(lr, mu float32) *FusedMomentum {
	return &FusedMomentum{LR: lr, Mu: mu, vel: make(map[string]*tensor.Tensor)}
}

// Update applies the step in place.
func (o *FusedMomentum) Update(grad, oldParam *tensor.Tensor, name string) *tensor.Tensor {
	v, ok := o.vel[name]
	if !ok {
		v = tensor.New(oldParam.Shape()...)
		o.vel[name] = v
	}
	kernels.MomentumFused(oldParam.Data(), grad.Data(), v.Data(), o.LR, o.Mu)
	return oldParam
}

// FusedAdam applies Adam in one pass (the "Adam native" of Fig. 9/10).
type FusedAdam struct {
	LR, Beta1, Beta2, Eps float32
	t                     int
	m, v                  map[string]*tensor.Tensor
}

// NewFusedAdam returns a fused Adam update rule.
func NewFusedAdam(lr float32) *FusedAdam {
	return &FusedAdam{LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8,
		m: make(map[string]*tensor.Tensor), v: make(map[string]*tensor.Tensor)}
}

// NewInput advances Adam's time step. FusedAdam implements ThreeStep
// directly so the step counter ticks once per iteration, not per parameter.
func (o *FusedAdam) NewInput() { o.t++ }

// PrepareParam is a no-op.
func (o *FusedAdam) PrepareParam(string, *tensor.Tensor) *tensor.Tensor { return nil }

// UpdateRule applies the fused Adam kernel in place.
func (o *FusedAdam) UpdateRule(grad, oldParam *tensor.Tensor, name string) *tensor.Tensor {
	m, ok := o.m[name]
	if !ok {
		m = tensor.New(oldParam.Shape()...)
		o.m[name] = m
		o.v[name] = tensor.New(oldParam.Shape()...)
	}
	t := o.t
	if t < 1 {
		t = 1
	}
	kernels.AdamFused(oldParam.Data(), grad.Data(), m.Data(), o.v[name].Data(),
		o.LR, o.Beta1, o.Beta2, o.Eps, t)
	return oldParam
}

// FusedRMSProp applies RMSProp in one pass.
type FusedRMSProp struct {
	LR, Rho, Eps float32
	squares      map[string]*tensor.Tensor
}

// NewFusedRMSProp returns a fused RMSProp update rule.
func NewFusedRMSProp(lr, rho float32) *FusedRMSProp {
	return &FusedRMSProp{LR: lr, Rho: rho, Eps: 1e-8, squares: make(map[string]*tensor.Tensor)}
}

// Update applies the step in place.
func (o *FusedRMSProp) Update(grad, oldParam *tensor.Tensor, name string) *tensor.Tensor {
	s, ok := o.squares[name]
	if !ok {
		s = tensor.New(oldParam.Shape()...)
		o.squares[name] = s
	}
	kernels.RMSPropFused(oldParam.Data(), grad.Data(), s.Data(), o.LR, o.Rho, o.Eps)
	return oldParam
}

// FusedAdaGrad applies AdaGrad in one pass.
type FusedAdaGrad struct {
	LR, Eps float32
	squares map[string]*tensor.Tensor
}

// NewFusedAdaGrad returns a fused AdaGrad update rule.
func NewFusedAdaGrad(lr float32) *FusedAdaGrad {
	return &FusedAdaGrad{LR: lr, Eps: 1e-8, squares: make(map[string]*tensor.Tensor)}
}

// Update applies the step in place.
func (o *FusedAdaGrad) Update(grad, oldParam *tensor.Tensor, name string) *tensor.Tensor {
	s, ok := o.squares[name]
	if !ok {
		s = tensor.New(oldParam.Shape()...)
		o.squares[name] = s
	}
	kernels.AdaGradFused(oldParam.Data(), grad.Data(), s.Data(), o.LR, o.Eps)
	return oldParam
}
