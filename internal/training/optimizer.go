package training

import (
	"context"

	"deep500/internal/executor"
	"deep500/internal/tensor"
)

// Optimizer can perform one training step given input feeds — the Level 2
// Optimizer interface. The paper's distributed optimizers (Level 3) also
// satisfy it, wrapping a base optimizer with communication (Listing 9).
type Optimizer interface {
	// Train runs one optimization step and returns the model outputs
	// (loss, accuracy, ...). Cancelling ctx aborts the underlying passes.
	Train(ctx context.Context, feeds map[string]*tensor.Tensor) (map[string]*tensor.Tensor, error)
	// Executor returns the underlying graph executor.
	Executor() executor.GraphExecutor
}

// ThreeStep is the paper's novel three-step optimizer abstraction
// (§IV-E): ¶ NewInput (per-iteration state, Algorithm 1 line 2 context),
// · PrepareParam (adjust parameters before inference, line 3), and
// ¸ UpdateRule (apply an update, line 6). Splitting the optimizer this way
// is what lets Level 3 distribute any optimizer automatically.
type ThreeStep interface {
	// NewInput advances per-iteration state (step counters, schedules).
	NewInput()
	// PrepareParam may return an adjusted parameter tensor to use for the
	// upcoming inference, or nil to leave the parameter unchanged.
	PrepareParam(name string, param *tensor.Tensor) *tensor.Tensor
	// UpdateRule returns the new parameter given its gradient and old value.
	UpdateRule(grad, oldParam *tensor.Tensor, name string) *tensor.Tensor
}

// UpdateRule is the simpler abstraction: a pure update rule U(g, w, t), the
// form most SGD-family optimizers take (Algorithm 1).
type UpdateRule interface {
	Update(grad, oldParam *tensor.Tensor, name string) *tensor.Tensor
}

// ruleAdapter lifts an UpdateRule into a ThreeStep.
type ruleAdapter struct{ r UpdateRule }

func (a ruleAdapter) NewInput() {}
func (a ruleAdapter) PrepareParam(string, *tensor.Tensor) *tensor.Tensor {
	return nil
}
func (a ruleAdapter) UpdateRule(g, w *tensor.Tensor, name string) *tensor.Tensor {
	return a.r.Update(g, w, name)
}

// FromUpdateRule wraps an UpdateRule as a ThreeStep optimizer.
func FromUpdateRule(r UpdateRule) ThreeStep { return ruleAdapter{r} }

// GradHook transforms a parameter gradient before the update rule runs —
// the interposition point Level 3 uses for allreduce, sparsification and
// compression.
type GradHook func(name string, grad *tensor.Tensor) *tensor.Tensor

// Driver executes the canonical three-step training iteration against a
// graph executor. It is the non-distributed reference Optimizer; the
// distributed optimizers in internal/dist follow the same sequence with
// communication inserted via GradHook or around the step.
type Driver struct {
	exec executor.GraphExecutor
	ts   ThreeStep
	// Loss is the loss tensor name (default "loss").
	Loss string
	// GradHook, when non-nil, transforms every gradient before the update.
	GradHook GradHook
	// Step counts completed training iterations.
	Step int
}

// NewDriver binds a three-step optimizer to an executor.
func NewDriver(exec executor.GraphExecutor, ts ThreeStep) *Driver {
	return &Driver{exec: exec, ts: ts, Loss: "loss"}
}

// Executor returns the bound executor.
func (d *Driver) Executor() executor.GraphExecutor { return d.exec }

// ThreeStep returns the wrapped optimizer.
func (d *Driver) ThreeStep() ThreeStep { return d.ts }

// Train runs one iteration: prepare parameters, inference+backprop, apply
// update rule (optionally transformed by GradHook) — Listing 9's sequence.
func (d *Driver) Train(ctx context.Context, feeds map[string]*tensor.Tensor) (map[string]*tensor.Tensor, error) {
	net := d.exec.Network()
	d.ts.NewInput()
	for _, name := range net.Params() {
		p, err := net.FetchTensor(name)
		if err != nil {
			return nil, err
		}
		if adjusted := d.ts.PrepareParam(name, p); adjusted != nil {
			net.FeedTensor(name, adjusted)
		}
	}
	out, err := d.exec.InferenceAndBackprop(ctx, feeds, d.Loss)
	if err != nil {
		return nil, err
	}
	for _, pg := range net.Gradients() {
		grad := pg.Grad
		if d.GradHook != nil {
			grad = d.GradHook(pg.Name, grad)
		}
		net.FeedTensor(pg.Name, d.ts.UpdateRule(grad, pg.Param, pg.Name))
	}
	d.Step++
	return out, nil
}
