package training

import (
	"context"

	"deep500/internal/executor"
	"deep500/internal/tensor"
)

// LBFGS is a limited-memory BFGS optimizer. It exists to demonstrate the
// paper's Use Case 3: second-order methods "require a training loop that is
// vastly different from Algorithm 1" and therefore cannot be expressed as
// an update rule — so LBFGS implements the full Optimizer interface with
// its own Train procedure (two-loop recursion over a gradient/step history
// on the flattened parameter vector) instead of ThreeStep.
type LBFGS struct {
	exec executor.GraphExecutor
	// LR is the step size applied to the two-loop direction.
	LR float32
	// History is the number of (s, y) curvature pairs retained (m in the
	// literature; the paper cites stochastic L-BFGS).
	History int
	// Loss is the loss tensor name.
	Loss string

	names []string
	sizes []int
	total int
	prevX []float32
	prevG []float32
	sHist [][]float32 // x_{k+1} - x_k
	yHist [][]float32 // g_{k+1} - g_k
}

// NewLBFGS returns an L-BFGS optimizer over the executor's parameters.
func NewLBFGS(exec executor.GraphExecutor, lr float32, history int) *LBFGS {
	if history < 1 {
		history = 5
	}
	l := &LBFGS{exec: exec, LR: lr, History: history, Loss: "loss"}
	net := exec.Network()
	for _, name := range net.Params() {
		t, _ := net.FetchTensor(name)
		l.names = append(l.names, name)
		l.sizes = append(l.sizes, t.Size())
		l.total += t.Size()
	}
	return l
}

// Executor returns the bound executor.
func (l *LBFGS) Executor() executor.GraphExecutor { return l.exec }

func (l *LBFGS) flattenParams() []float32 {
	out := make([]float32, l.total)
	off := 0
	net := l.exec.Network()
	for i, name := range l.names {
		t, _ := net.FetchTensor(name)
		copy(out[off:off+l.sizes[i]], t.Data())
		off += l.sizes[i]
	}
	return out
}

func (l *LBFGS) flattenGrads() []float32 {
	out := make([]float32, l.total)
	off := 0
	net := l.exec.Network()
	for i, name := range l.names {
		if g := net.Gradient(name); g != nil {
			copy(out[off:off+l.sizes[i]], g.Data())
		}
		off += l.sizes[i]
	}
	return out
}

func (l *LBFGS) scatterParams(flat []float32) {
	off := 0
	net := l.exec.Network()
	for i, name := range l.names {
		t, _ := net.FetchTensor(name)
		copy(t.Data(), flat[off:off+l.sizes[i]])
		off += l.sizes[i]
	}
}

func dot32(a, b []float32) float64 {
	var s float64
	for i := range a {
		s += float64(a[i]) * float64(b[i])
	}
	return s
}

// direction computes -H·g via the standard two-loop recursion.
func (l *LBFGS) direction(g []float32) []float32 {
	q := append([]float32(nil), g...)
	k := len(l.sHist)
	alpha := make([]float64, k)
	rho := make([]float64, k)
	for i := k - 1; i >= 0; i-- {
		sy := dot32(l.sHist[i], l.yHist[i])
		if sy <= 1e-10 {
			rho[i] = 0
			continue
		}
		rho[i] = 1 / sy
		alpha[i] = rho[i] * dot32(l.sHist[i], q)
		for j := range q {
			q[j] -= float32(alpha[i]) * l.yHist[i][j]
		}
	}
	// initial Hessian scaling γ = s·y / y·y
	if k > 0 {
		yy := dot32(l.yHist[k-1], l.yHist[k-1])
		if yy > 1e-10 {
			gamma := float32(dot32(l.sHist[k-1], l.yHist[k-1]) / yy)
			for j := range q {
				q[j] *= gamma
			}
		}
	}
	for i := 0; i < k; i++ {
		if rho[i] == 0 {
			continue
		}
		beta := rho[i] * dot32(l.yHist[i], q)
		for j := range q {
			q[j] += float32(alpha[i]-beta) * l.sHist[i][j]
		}
	}
	for j := range q {
		q[j] = -q[j]
	}
	return q
}

// Train runs one L-BFGS step: gradient evaluation, two-loop direction,
// fixed-step update, history maintenance.
func (l *LBFGS) Train(ctx context.Context, feeds map[string]*tensor.Tensor) (map[string]*tensor.Tensor, error) {
	out, err := l.exec.InferenceAndBackprop(ctx, feeds, l.Loss)
	if err != nil {
		return nil, err
	}
	x := l.flattenParams()
	g := l.flattenGrads()
	xPre := append([]float32(nil), x...) // x_k before the update

	if l.prevX != nil {
		s := make([]float32, l.total)
		y := make([]float32, l.total)
		for i := range s {
			s[i] = x[i] - l.prevX[i]
			y[i] = g[i] - l.prevG[i]
		}
		// curvature condition: only keep pairs with s·y > 0
		if dot32(s, y) > 1e-10 {
			l.sHist = append(l.sHist, s)
			l.yHist = append(l.yHist, y)
			if len(l.sHist) > l.History {
				l.sHist = l.sHist[1:]
				l.yHist = l.yHist[1:]
			}
		}
	}
	d := l.direction(g)
	for i := range x {
		x[i] += l.LR * d[i]
	}
	l.scatterParams(x)
	l.prevX = xPre
	l.prevG = g
	return out, nil
}
