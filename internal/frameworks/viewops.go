package frameworks

import (
	"deep500/internal/tensor"
)

// ViewSplitOp splits along axis 0 by returning zero-copy views into the
// input buffer — PyTorch-style chunking. Because axis-0 slices of a
// row-major tensor are contiguous, the views are valid tensors.
type ViewSplitOp struct {
	Sizes []int
}

// Name returns "Split" (it is a drop-in replacement).
func (o *ViewSplitOp) Name() string { return "Split" }

// Forward returns views over the input's rows.
func (o *ViewSplitOp) Forward(inputs []*tensor.Tensor) []*tensor.Tensor {
	x := inputs[0]
	rest := x.Shape()[1:]
	rowSize := 1
	for _, d := range rest {
		rowSize *= d
	}
	outs := make([]*tensor.Tensor, len(o.Sizes))
	off := 0
	for i, sz := range o.Sizes {
		shape := append([]int{sz}, rest...)
		outs[i] = tensor.From(x.Data()[off*rowSize:(off+sz)*rowSize], shape...)
		off += sz
	}
	return outs
}

// Backward assembles the input gradient from the chunk gradients.
func (o *ViewSplitOp) Backward(gradOutputs, fwdInputs, fwdOutputs []*tensor.Tensor) []*tensor.Tensor {
	gradIn := tensor.New(fwdInputs[0].Shape()...)
	off := 0
	for _, g := range gradOutputs {
		copy(gradIn.Data()[off:], g.Data())
		off += g.Size()
	}
	return []*tensor.Tensor{gradIn}
}

// FLOPs is zero: views move no data.
func (o *ViewSplitOp) FLOPs(inputs []*tensor.Tensor) int64 { return 0 }

// CopyAmplified wraps an operator with one extra materializing copy of
// every output — the staging copies TensorFlow's Split/Concat incur in the
// paper's micro-batch experiment ("splitting and concatenating nodes in
// TensorFlow incur additional memory copies", §V-C).
type CopyAmplified struct {
	Inner interface {
		Name() string
		Forward([]*tensor.Tensor) []*tensor.Tensor
		Backward(g, i, o []*tensor.Tensor) []*tensor.Tensor
		FLOPs([]*tensor.Tensor) int64
	}
}

// Name returns the wrapped operator's name.
func (o *CopyAmplified) Name() string { return o.Inner.Name() }

// Forward runs the inner op and deep-copies every output.
func (o *CopyAmplified) Forward(inputs []*tensor.Tensor) []*tensor.Tensor {
	outs := o.Inner.Forward(inputs)
	copies := make([]*tensor.Tensor, len(outs))
	for i, t := range outs {
		copies[i] = t.Clone()
	}
	return copies
}

// Backward runs the inner backward and deep-copies every gradient.
func (o *CopyAmplified) Backward(g, in, out []*tensor.Tensor) []*tensor.Tensor {
	grads := o.Inner.Backward(g, in, out)
	copies := make([]*tensor.Tensor, len(grads))
	for i, t := range grads {
		if t != nil {
			copies[i] = t.Clone()
		}
	}
	return copies
}

// FLOPs matches the inner operator.
func (o *CopyAmplified) FLOPs(inputs []*tensor.Tensor) int64 { return o.Inner.FLOPs(inputs) }
