// Package frameworks emulates the DL frameworks the Deep500 paper
// integrates and benchmarks — TensorFlow, PyTorch and Caffe2 — as backend
// profiles over the shared kernel substrate, plus the bare-kernel
// "DeepBench" baseline (see DESIGN.md substitutions).
//
// Each profile reproduces the mechanisms behind the paper's observations:
//
//   - per-operator dispatch overhead (TF highest, PyTorch lowest —
//     Fig. 6's framework ordering; DeepBench has none),
//   - operator granularity and fusion (cf2go ships fused optimizer
//     kernels, tfgo composes many small ops — Use Case 1),
//   - split/concat semantics (tfgo materializes copies, torchgo uses
//     views — the Fig. 7 asymmetry),
//   - a device memory model (capacity + allocator overhead — the
//     AlexNet OOM of §V-C),
//   - a message-passing cost profile ("Python" reference bindings with
//     NumPy conversions vs "C++" operators — Fig. 12's ≈10× gap).
//
// Backends are built from D5NX models through the graph Visitor, exactly
// as the paper converts ONNX models into framework networks (Fig. 4).
package frameworks

import (
	"time"

	"deep500/internal/executor"
	"deep500/internal/graph"
	"deep500/internal/kernels"
	"deep500/internal/mpi"
	"deep500/internal/ops"
)

// Profile describes one emulated framework backend.
type Profile struct {
	// Name identifies the backend ("tfgo", "torchgo", "cf2go", "deepbench").
	Name string
	// DisplayName is the paper-facing label.
	DisplayName string
	// OpOverhead is the per-operator dispatch cost.
	OpOverhead time.Duration
	// MemoryCapacity is device memory in bytes (0 = unlimited).
	MemoryCapacity int64
	// AllocOverhead multiplies allocations (allocator slack).
	AllocOverhead float64
	// SplitConcatCopies: Split/Concat materialize extra buffer copies (the
	// TensorFlow behaviour the paper blames for the Fig. 7 slowdown).
	SplitConcatCopies bool
	// ViewSplit: Split returns zero-copy views (PyTorch-style).
	ViewSplit bool
	// FusedOptimizers: the backend provides single-kernel optimizer
	// updates (Caffe2's Adam operator).
	FusedOptimizers bool
	// DefaultConvAlgo is used when a Conv node has no explicit algorithm.
	DefaultConvAlgo kernels.ConvAlgo
	// Comm is the distributed-binding cost profile for this backend.
	Comm mpi.CostModel
	// Eager reports define-by-run execution (vs deferred graphs); recorded
	// for the capability table.
	Eager bool
}

// The four built-in profiles. Overheads are calibrated for CPU-scale
// kernels: they keep the paper's ordering (DeepBench < torchgo < cf2go <
// tfgo) and visible-but-small gaps.
var (
	// DeepBench is the bare-kernel baseline: direct kernel invocation with
	// no graph, no dispatch, no instrumentation.
	DeepBench = Profile{
		Name: "deepbench", DisplayName: "DeepBench",
		DefaultConvAlgo: kernels.ConvIm2Col,
		AllocOverhead:   1.0,
	}
	// TFGo emulates TensorFlow: deferred graphs, many small composed ops,
	// the highest dispatch overhead, copies on split/concat.
	TFGo = Profile{
		Name: "tfgo", DisplayName: "TensorFlow (emulated)",
		OpOverhead:        150 * time.Microsecond,
		MemoryCapacity:    16 << 30,
		AllocOverhead:     1.10,
		SplitConcatCopies: true,
		DefaultConvAlgo:   kernels.ConvIm2Col,
		Comm: mpi.CostModel{Latency: 1500, Bandwidth: 10e9,
			PerMessageCPU: 250 * time.Microsecond, HostDeviceBandwidth: 4e9},
	}
	// TorchGo emulates PyTorch: eager execution, lowest framework
	// dispatch overhead, view-based splits, hungrier allocator (caching
	// allocator overhead → earlier OOM, §V-C).
	TorchGo = Profile{
		Name: "torchgo", DisplayName: "PyTorch (emulated)",
		OpOverhead:      30 * time.Microsecond,
		MemoryCapacity:  16 << 30,
		AllocOverhead:   1.30,
		ViewSplit:       true,
		DefaultConvAlgo: kernels.ConvIm2Col,
		Eager:           true,
		Comm: mpi.CostModel{Latency: 1500, Bandwidth: 10e9,
			PerMessageCPU: 200 * time.Microsecond, HostDeviceBandwidth: 4e9},
	}
	// CF2Go emulates Caffe2: deferred graphs, moderate overhead, fused
	// optimizer kernels.
	CF2Go = Profile{
		Name: "cf2go", DisplayName: "Caffe2 (emulated)",
		OpOverhead:      80 * time.Microsecond,
		MemoryCapacity:  16 << 30,
		AllocOverhead:   1.05,
		FusedOptimizers: true,
		DefaultConvAlgo: kernels.ConvIm2Col,
		Comm: mpi.CostModel{Latency: 1500, Bandwidth: 10e9,
			PerMessageCPU: 220 * time.Microsecond, HostDeviceBandwidth: 4e9},
	}
)

// All returns the built-in profiles in display order.
func All() []Profile { return []Profile{CF2Go, TFGo, TorchGo, DeepBench} }

// ByName returns the named profile.
func ByName(name string) (Profile, bool) {
	for _, p := range All() {
		if p.Name == name {
			return p, true
		}
	}
	return Profile{}, false
}

// NewExecutor builds an executor for the model under this profile,
// converting the model through the graph Visitor into backend-specific
// operator instances. Extra executor options (execution backend, tensor
// arena) are passed through.
func (p Profile) NewExecutor(m *graph.Model, opts ...executor.Option) (*executor.Executor, error) {
	e, err := executor.New(m, opts...)
	if err != nil {
		return nil, err
	}
	e.OpOverhead = p.OpOverhead
	if p.MemoryCapacity > 0 {
		mm := executor.NewMemoryModel(p.MemoryCapacity)
		if p.AllocOverhead > 0 {
			mm.AllocOverhead = p.AllocOverhead
		}
		e.Memory = mm
	}

	v := graph.NewVisitor()
	v.Default = func(_ *graph.Model, n *graph.Node) error { return nil }
	v.On("Conv", func(_ *graph.Model, n *graph.Node) error {
		if _, has := n.Attr("algo"); has {
			return nil // explicit choice (e.g. micro-batch plan) wins
		}
		conv, ok := e.Op(n).(*ops.Conv2DOp)
		if !ok {
			return nil
		}
		conv.Algo = p.DefaultConvAlgo
		return nil
	})
	// Fused Conv→ReLU nodes (compile pipeline, executor.WithOptimize) carry
	// the same conv geometry behind a different op type; retune their
	// embedded convolution identically so emulation fidelity survives -opt.
	v.On("FusedConvRelu", func(_ *graph.Model, n *graph.Node) error {
		if _, has := n.Attr("algo"); has {
			return nil
		}
		if f, ok := e.Op(n).(*ops.FusedConvReluOp); ok {
			f.ConvOp().Algo = p.DefaultConvAlgo
		}
		return nil
	})
	v.On("Split", func(_ *graph.Model, n *graph.Node) error {
		base := e.Op(n)
		switch {
		case p.ViewSplit:
			if sp, ok := base.(*ops.SplitOp); ok {
				e.SetOp(n, &ViewSplitOp{Sizes: sp.Sizes})
			}
		case p.SplitConcatCopies:
			e.SetOp(n, &CopyAmplified{Inner: base})
		}
		return nil
	})
	v.On("Concat", func(_ *graph.Model, n *graph.Node) error {
		if p.SplitConcatCopies {
			e.SetOp(n, &CopyAmplified{Inner: e.Op(n)})
		}
		return nil
	})
	// Walk the model the executor actually runs: with executor.WithOptimize
	// in opts the compile pipeline has rewritten the graph, and profile
	// customizations must bind to the compiled nodes, not the caller's.
	if err := v.Walk(e.Network().Model); err != nil {
		return nil, err
	}
	return e, nil
}
