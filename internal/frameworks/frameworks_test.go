package frameworks

import (
	"context"
	"errors"
	"testing"
	"time"

	"deep500/internal/executor"
	"deep500/internal/graph"
	"deep500/internal/models"
	"deep500/internal/tensor"
)

func lenetModel() *graph.Model {
	return models.LeNet(models.Config{Classes: 10, Channels: 1, Height: 28, Width: 28, WithHead: true, Seed: 4})
}

func feeds(rng *tensor.RNG, batch int) map[string]*tensor.Tensor {
	labels := make([]float32, batch)
	for i := range labels {
		labels[i] = float32(i % 10)
	}
	return map[string]*tensor.Tensor{
		"x":      tensor.RandNormal(rng, 0, 1, batch, 1, 28, 28),
		"labels": tensor.From(labels, batch),
	}
}

func TestAllBackendsAgreeNumerically(t *testing.T) {
	// Same model, same input: every backend must produce the same loss —
	// the §V-B correctness property (the paper's ℓ∞ across frameworks is
	// ~7e-4; ours share kernels so the gap is conv-algorithm rounding only).
	rng := tensor.NewRNG(5)
	f := feeds(rng, 4)
	var ref *tensor.Tensor
	for _, p := range All() {
		e, err := p.NewExecutor(lenetModel())
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		out, err := e.Inference(context.Background(), cloneFeeds(f))
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		if ref == nil {
			ref = out["loss"]
			continue
		}
		d := tensor.Compare(out["loss"], ref)
		if d.LInf > 1e-3 {
			t.Fatalf("%s: loss differs by %g", p.Name, d.LInf)
		}
	}
}

func cloneFeeds(f map[string]*tensor.Tensor) map[string]*tensor.Tensor {
	out := make(map[string]*tensor.Tensor, len(f))
	for k, v := range f {
		out[k] = v.Clone()
	}
	return out
}

func TestDispatchOverheadOrdering(t *testing.T) {
	// DeepBench (no overhead) must beat tfgo (highest overhead) on the
	// same model; torchgo sits between.
	rng := tensor.NewRNG(6)
	f := feeds(rng, 2)
	timeOf := func(p Profile) time.Duration {
		e, err := p.NewExecutor(lenetModel())
		if err != nil {
			t.Fatal(err)
		}
		// warmup
		if _, err := e.Inference(context.Background(), cloneFeeds(f)); err != nil {
			t.Fatal(err)
		}
		best := time.Hour
		for i := 0; i < 3; i++ {
			start := time.Now()
			e.Inference(context.Background(), cloneFeeds(f))
			if d := time.Since(start); d < best {
				best = d
			}
		}
		return best
	}
	// Wall-clock comparisons flake when the suite shares a loaded machine;
	// retry the whole measurement a few times before declaring a regression.
	const attempts = 4
	for attempt := 1; ; attempt++ {
		db := timeOf(DeepBench)
		tf := timeOf(TFGo)
		// LeNet has ~15 nodes à 150µs ⇒ ≥2ms extra
		if tf > db && tf-db >= time.Millisecond {
			return
		}
		if attempt == attempts {
			t.Fatalf("tfgo (%v) not ≥1ms slower than deepbench (%v) after %d attempts", tf, db, attempts)
		}
	}
}

func TestMemoryCapacityOOM(t *testing.T) {
	p := TorchGo
	p.MemoryCapacity = 1 << 20 // 1 MiB device: LeNet activations won't fit
	e, err := p.NewExecutor(lenetModel())
	if err != nil {
		t.Fatal(err)
	}
	rng := tensor.NewRNG(7)
	_, err = e.Inference(context.Background(), feeds(rng, 64))
	var oom *executor.OOMError
	if !errors.As(err, &oom) {
		t.Fatalf("want OOM, got %v", err)
	}
}

func TestAllocOverheadTriggersEarlierOOM(t *testing.T) {
	// With the same nominal capacity, torchgo's hungrier allocator (1.30×)
	// must OOM at a batch size that tfgo (1.10×) still fits — the §V-C
	// asymmetry.
	capacity := int64(6 << 20)
	fits := func(p Profile, batch int) bool {
		p.MemoryCapacity = capacity
		p.OpOverhead = 0
		e, err := p.NewExecutor(lenetModel())
		if err != nil {
			t.Fatal(err)
		}
		rng := tensor.NewRNG(8)
		_, err = e.Inference(context.Background(), feeds(rng, batch))
		return err == nil
	}
	// find a batch that fits tfgo but not torchgo
	found := false
	for batch := 8; batch <= 256; batch += 8 {
		if fits(TFGo, batch) && !fits(TorchGo, batch) {
			found = true
			break
		}
	}
	if !found {
		t.Fatal("no batch separates the allocators")
	}
}

func TestViewSplitZeroCopy(t *testing.T) {
	x := tensor.From([]float32{1, 2, 3, 4, 5, 6}, 3, 2)
	sp := &ViewSplitOp{Sizes: []int{1, 2}}
	outs := sp.Forward([]*tensor.Tensor{x})
	outs[1].Data()[0] = 42
	if x.At(1, 0) != 42 {
		t.Fatal("view split copied data")
	}
	g := sp.Backward([]*tensor.Tensor{tensor.Full(1, 1, 2), tensor.Full(2, 2, 2)},
		[]*tensor.Tensor{x}, outs)
	if g[0].At(0, 0) != 1 || g[0].At(2, 1) != 2 {
		t.Fatalf("view split backward %v", g[0].Data())
	}
}

func TestByName(t *testing.T) {
	if p, ok := ByName("cf2go"); !ok || !p.FusedOptimizers {
		t.Fatal("cf2go lookup")
	}
	if _, ok := ByName("theanogo"); ok {
		t.Fatal("phantom backend")
	}
}

func TestMicrobatchAsymmetry(t *testing.T) {
	// tfgo executes Split/Concat with extra copies, torchgo with views:
	// on a split-heavy graph, tfgo's extra copy work must be observable as
	// more bytes moved. We verify the op substitution, not wallclock.
	m := graph.NewModel("split")
	m.AddInput("x", 8, 4)
	m.AddNode(graph.NewNode("Split", "s", []string{"x"}, []string{"a", "b"},
		graph.IntAttr("axis", 0), graph.IntsAttr("split", 4, 4)))
	m.AddNode(graph.NewNode("Concat", "c", []string{"a", "b"}, []string{"y"},
		graph.IntAttr("axis", 0)))
	m.AddOutput("y")

	etf, err := TFGo.NewExecutor(m.Clone())
	if err != nil {
		t.Fatal(err)
	}
	etorch, err := TorchGo.NewExecutor(m.Clone())
	if err != nil {
		t.Fatal(err)
	}
	// check installed op types via behaviour: both must be correct
	rng := tensor.NewRNG(9)
	x := tensor.RandNormal(rng, 0, 1, 8, 4)
	for _, e := range []*executor.Executor{etf, etorch} {
		out, err := e.Inference(context.Background(), map[string]*tensor.Tensor{"x": x})
		if err != nil {
			t.Fatal(err)
		}
		if !tensor.AllClose(out["y"], x, 0, 0) {
			t.Fatal("split+concat not identity")
		}
	}
}

func TestBackendsTrainable(t *testing.T) {
	// A short training run must reduce loss on every backend.
	for _, p := range All() {
		p.OpOverhead = 0 // keep the test fast
		e, err := p.NewExecutor(lenetModel())
		if err != nil {
			t.Fatal(err)
		}
		e.SetTraining(true)
		rng := tensor.NewRNG(10)
		f := feeds(rng, 8)
		var first, last float32
		for i := 0; i < 10; i++ {
			out, err := e.InferenceAndBackprop(context.Background(), cloneFeeds(f), "loss")
			if err != nil {
				t.Fatalf("%s: %v", p.Name, err)
			}
			for _, pg := range e.Network().Gradients() {
				pg.Param.Axpy(-0.02, pg.Grad)
			}
			if i == 0 {
				first = out["loss"].Data()[0]
			}
			last = out["loss"].Data()[0]
		}
		if last >= first {
			t.Fatalf("%s: loss %v -> %v", p.Name, first, last)
		}
	}
}
