// Package validation implements the Deep500 validation procedures attached
// to each level (paper §III-E, §IV): operator forward/gradient checking via
// numerical differentiation, executor output comparison, optimizer
// trajectory comparison, sampler bias testing, and end-to-end training
// convergence testing. Results carry the paper's accuracy metrics — ℓ1, ℓ2
// and ℓ∞ norms, max error, variance and heatmaps.
package validation

import (
	"context"
	"fmt"
	"math"

	"deep500/internal/executor"
	"deep500/internal/metrics"
	"deep500/internal/ops"
	"deep500/internal/tensor"
	"deep500/internal/training"
)

// Result is the outcome of a validation procedure.
type Result struct {
	Name    string
	Passed  bool
	MaxErr  float64
	Norms   tensor.DiffNorms
	Details string
}

func (r Result) String() string {
	status := "PASS"
	if !r.Passed {
		status = "FAIL"
	}
	return fmt.Sprintf("[%s] %s: max err %.3g (l1=%.3g l2=%.3g linf=%.3g) %s",
		status, r.Name, r.MaxErr, r.Norms.L1, r.Norms.L2, r.Norms.LInf, r.Details)
}

// TestForward compares an operator's outputs against a reference operator
// on the same inputs (Level 0 test_forward). tol is the allowed ℓ∞
// difference.
func TestForward(op, ref ops.Operator, inputs []*tensor.Tensor, tol float64) Result {
	got := op.Forward(inputs)
	want := ref.Forward(inputs)
	res := Result{Name: "test_forward:" + op.Name(), Passed: true}
	if len(got) != len(want) {
		res.Passed = false
		res.Details = fmt.Sprintf("output count %d vs %d", len(got), len(want))
		return res
	}
	for i := range got {
		d := tensor.Compare(got[i], want[i])
		if d.LInf > res.MaxErr {
			res.MaxErr = d.LInf
			res.Norms = d
		}
	}
	if res.MaxErr > tol {
		res.Passed = false
		res.Details = fmt.Sprintf("exceeds tol %g", tol)
	}
	return res
}

// GradientCheckConfig tunes numerical differentiation.
type GradientCheckConfig struct {
	// Eps is the central-difference step (default 1e-2; fp32 arithmetic
	// needs a large step).
	Eps float64
	// Tol is the allowed absolute-or-5%-relative error (default 5e-3).
	Tol float64
	// MaxProbes bounds how many elements per input are probed (0 = 32).
	MaxProbes int
	// Seed drives the random output projection.
	Seed uint64
}

func (c *GradientCheckConfig) defaults() {
	if c.Eps == 0 {
		c.Eps = 1e-2
	}
	if c.Tol == 0 {
		c.Tol = 5e-3
	}
	if c.MaxProbes == 0 {
		c.MaxProbes = 32
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

// TestGradient verifies op.Backward against a numerical Jacobian-vector
// product (Level 0 test_gradient: "numerical differentiation with finite
// differences"). checkInputs marks which inputs must be verified.
func TestGradient(op ops.Operator, inputs []*tensor.Tensor, checkInputs []bool, cfg GradientCheckConfig) Result {
	cfg.defaults()
	rng := tensor.NewRNG(cfg.Seed)
	res := Result{Name: "test_gradient:" + op.Name(), Passed: true}

	outs := op.Forward(inputs)
	weights := make([]*tensor.Tensor, len(outs))
	for i, o := range outs {
		weights[i] = tensor.RandUniform(rng, -1, 1, o.Shape()...)
	}
	loss := func() float64 {
		os := op.Forward(inputs)
		var l float64
		for i, o := range os {
			l += tensor.Dot(o, weights[i])
		}
		return l
	}
	outs = op.Forward(inputs) // refresh cached state
	grads := op.Backward(weights, inputs, outs)

	for gi, check := range checkInputs {
		if !check {
			continue
		}
		if gi >= len(grads) || grads[gi] == nil {
			res.Passed = false
			res.Details = fmt.Sprintf("input %d: missing gradient", gi)
			return res
		}
		data := inputs[gi].Data()
		stride := len(data)/cfg.MaxProbes + 1
		for i := 0; i < len(data); i += stride {
			orig := data[i]
			data[i] = orig + float32(cfg.Eps)
			lp := loss()
			data[i] = orig - float32(cfg.Eps)
			lm := loss()
			data[i] = orig
			num := (lp - lm) / (2 * cfg.Eps)
			got := float64(grads[gi].Data()[i])
			diff := math.Abs(num - got)
			if diff > res.MaxErr {
				res.MaxErr = diff
			}
			scale := math.Max(math.Abs(num), math.Abs(got))
			if diff > cfg.Tol && diff > 0.05*scale {
				res.Passed = false
				res.Details = fmt.Sprintf("input %d elem %d: analytic %.4g vs numeric %.4g", gi, i, got, num)
			}
		}
	}
	return res
}

// TestExecutor compares the outputs of two executors on the same feeds
// (Level 1 test_executor). Outputs present in only one executor fail.
func TestExecutor(got, ref executor.GraphExecutor, feeds map[string]*tensor.Tensor, tol float64) Result {
	res := Result{Name: "test_executor", Passed: true}
	g, err := got.Inference(context.Background(), cloneFeeds(feeds))
	if err != nil {
		return Result{Name: res.Name, Details: "executor error: " + err.Error()}
	}
	w, err := ref.Inference(context.Background(), cloneFeeds(feeds))
	if err != nil {
		return Result{Name: res.Name, Details: "reference error: " + err.Error()}
	}
	for name, wt := range w {
		gt, ok := g[name]
		if !ok {
			res.Passed = false
			res.Details = fmt.Sprintf("output %q missing", name)
			return res
		}
		d := tensor.Compare(gt, wt)
		if d.LInf > res.MaxErr {
			res.MaxErr = d.LInf
			res.Norms = d
		}
	}
	if res.MaxErr > tol {
		res.Passed = false
		res.Details = fmt.Sprintf("exceeds tol %g", tol)
	}
	return res
}

// TestExecutorBackprop compares parameter gradients of two executors after
// a backward pass from the same loss (Level 1 test_executor_backprop).
func TestExecutorBackprop(got, ref executor.GraphExecutor, feeds map[string]*tensor.Tensor, loss string, tol float64) Result {
	res := Result{Name: "test_executor_backprop", Passed: true}
	if _, err := got.InferenceAndBackprop(context.Background(), cloneFeeds(feeds), loss); err != nil {
		return Result{Name: res.Name, Details: "executor error: " + err.Error()}
	}
	if _, err := ref.InferenceAndBackprop(context.Background(), cloneFeeds(feeds), loss); err != nil {
		return Result{Name: res.Name, Details: "reference error: " + err.Error()}
	}
	refGrads := ref.Network().Gradients()
	if len(refGrads) == 0 {
		return Result{Name: res.Name, Details: "reference produced no gradients"}
	}
	for _, pg := range refGrads {
		gt := got.Network().Gradient(pg.Name)
		if gt == nil {
			res.Passed = false
			res.Details = fmt.Sprintf("gradient %q missing", pg.Name)
			return res
		}
		d := tensor.Compare(gt, pg.Grad)
		if d.LInf > res.MaxErr {
			res.MaxErr = d.LInf
			res.Norms = d
		}
	}
	if res.MaxErr > tol {
		res.Passed = false
		res.Details = fmt.Sprintf("exceeds tol %g", tol)
	}
	return res
}

// TrajectoryPoint records the per-step parameter divergence of two
// optimizers (the data behind the paper's Fig. 11).
type TrajectoryPoint struct {
	Step     int
	L2, LInf float64
	PerParam map[string]tensor.DiffNorms
}

// TestOptimizer runs two optimizers side by side on identical batches and
// records parameter divergence per step (Level 2 test_optimizer: "ensuring
// that an optimizer trajectory does not diverge from the Deep500 one").
// It fails if the final total ℓ2 divergence exceeds tol.
func TestOptimizer(got, ref training.Optimizer, batches []*training.Batch, tol float64) (Result, []TrajectoryPoint) {
	res := Result{Name: "test_optimizer", Passed: true}
	var traj []TrajectoryPoint
	for step, b := range batches {
		if _, err := got.Train(context.Background(), b.Feeds()); err != nil {
			return Result{Name: res.Name, Details: err.Error()}, traj
		}
		if _, err := ref.Train(context.Background(), b.Feeds()); err != nil {
			return Result{Name: res.Name, Details: err.Error()}, traj
		}
		pt := TrajectoryPoint{Step: step + 1, PerParam: make(map[string]tensor.DiffNorms)}
		for _, name := range ref.Executor().Network().Params() {
			pr, err1 := ref.Executor().Network().FetchTensor(name)
			pg, err2 := got.Executor().Network().FetchTensor(name)
			if err1 != nil || err2 != nil {
				continue
			}
			d := tensor.Compare(pg, pr)
			pt.PerParam[name] = d
			pt.L2 += d.L2
			if d.LInf > pt.LInf {
				pt.LInf = d.LInf
			}
		}
		traj = append(traj, pt)
	}
	if len(traj) > 0 {
		last := traj[len(traj)-1]
		res.MaxErr = last.LInf
		if last.L2 > tol {
			res.Passed = false
			res.Details = fmt.Sprintf("final l2 divergence %.4g exceeds tol %g", last.L2, tol)
		}
	}
	return res, traj
}

// TestSampler validates a dataset sampler with the DatasetBias metric
// (Level 2 test_sampler): one epoch must visit labels within tolFraction
// of uniform.
func TestSampler(s training.Sampler, tolFraction float64) (Result, *metrics.DatasetBias) {
	bias := metrics.NewDatasetBias()
	type biasAttacher interface{ AttachBias(*metrics.DatasetBias) }
	if ba, ok := s.(biasAttacher); ok {
		ba.AttachBias(bias)
	}
	s.Reset()
	for b := s.Next(); b != nil; b = s.Next() {
		_ = b
	}
	res := Result{Name: "test_sampler", Passed: true}
	hist := bias.Histogram()
	if len(hist) == 0 {
		res.Details = "sampler does not support bias attachment"
		return res, bias
	}
	total := 0
	for _, c := range hist {
		total += c
	}
	expected := float64(total) / float64(len(hist))
	for label, c := range hist {
		dev := math.Abs(float64(c)-expected) / expected
		if dev > tolFraction {
			res.Passed = false
			res.Details = fmt.Sprintf("label %d count %d deviates %.1f%% from uniform", label, c, dev*100)
		}
	}
	res.MaxErr = bias.ChiSquare()
	return res, bias
}

// TrainingReport is the outcome of TestTraining.
type TrainingReport struct {
	FinalTestAccuracy float64
	FinalLoss         float64
	EpochLosses       []float64
	Converged         bool
}

// TestTraining runs a full training session and validates convergence
// (Level 2/3 test_training: "tests the convergence, performance, and the
// related tradeoff of the overall training"). The same call validates
// distributed optimizers, which implement the same Optimizer interface.
func TestTraining(opt training.Optimizer, train, test training.Sampler, epochs int, targetAcc float64) (TrainingReport, error) {
	r := training.NewRunner(opt, train, test)
	var report TrainingReport
	r.AfterEpoch = func(epoch int, testAcc float64) {
		report.FinalTestAccuracy = testAcc
	}
	for e := 0; e < epochs; e++ {
		loss, err := r.RunEpoch(context.Background())
		if err != nil {
			return report, err
		}
		report.EpochLosses = append(report.EpochLosses, loss)
		report.FinalLoss = loss
		if test != nil {
			acc, err := r.Evaluate(context.Background(), test)
			if err != nil {
				return report, err
			}
			report.FinalTestAccuracy = acc
		}
	}
	report.Converged = report.FinalTestAccuracy >= targetAcc
	return report, nil
}

func cloneFeeds(feeds map[string]*tensor.Tensor) map[string]*tensor.Tensor {
	out := make(map[string]*tensor.Tensor, len(feeds))
	for k, v := range feeds {
		out[k] = v.Clone()
	}
	return out
}
