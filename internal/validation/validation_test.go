package validation

import (
	"strings"
	"testing"

	"deep500/internal/executor"
	"deep500/internal/kernels"
	"deep500/internal/models"
	"deep500/internal/ops"
	"deep500/internal/tensor"
	"deep500/internal/training"
)

func TestForwardAgreement(t *testing.T) {
	rng := tensor.NewRNG(1)
	x := tensor.RandNormal(rng, 0, 1, 2, 3, 8, 8)
	w := tensor.RandNormal(rng, 0, 0.3, 4, 3, 3, 3)
	res := TestForward(
		ops.NewConv2D(kernels.ConvWinograd, 1, 1, 1, 1),
		ops.NewConv2D(kernels.ConvDirect, 1, 1, 1, 1),
		[]*tensor.Tensor{x, w}, 1e-3)
	if !res.Passed {
		t.Fatalf("%v", res)
	}
	// A deliberately wrong operator must fail.
	bad := TestForward(ops.NewReLU(), ops.NewTanh(), []*tensor.Tensor{x}, 1e-3)
	if bad.Passed {
		t.Fatal("mismatched operators reported as passing")
	}
}

func TestGradientCheckPassesAndFails(t *testing.T) {
	rng := tensor.NewRNG(2)
	a := tensor.RandNormal(rng, 0, 1, 3, 4)
	b := tensor.RandNormal(rng, 0, 1, 4, 2)
	res := TestGradient(ops.NewMatMul(kernels.GemmBlocked),
		[]*tensor.Tensor{a, b}, []bool{true, true}, GradientCheckConfig{})
	if !res.Passed {
		t.Fatalf("%v", res)
	}
	// An operator with a broken backward must fail.
	res = TestGradient(&brokenGrad{}, []*tensor.Tensor{a.Clone()}, []bool{true}, GradientCheckConfig{})
	if res.Passed {
		t.Fatal("broken gradient passed validation")
	}
}

// brokenGrad returns forward = 2x but claims gradient 5.
type brokenGrad struct{}

func (b *brokenGrad) Name() string { return "broken" }
func (b *brokenGrad) Forward(in []*tensor.Tensor) []*tensor.Tensor {
	return []*tensor.Tensor{tensor.Map(in[0], func(v float32) float32 { return 2 * v })}
}
func (b *brokenGrad) Backward(g, in, out []*tensor.Tensor) []*tensor.Tensor {
	return []*tensor.Tensor{tensor.Map(g[0], func(v float32) float32 { return 5 * v })}
}
func (b *brokenGrad) FLOPs(in []*tensor.Tensor) int64 { return 0 }

func lenetPair(t *testing.T) (*executor.Executor, *executor.Executor, map[string]*tensor.Tensor) {
	t.Helper()
	cfg := models.Config{Classes: 10, Channels: 1, Height: 28, Width: 28, WithHead: true, Seed: 4}
	m1 := models.LeNet(cfg)
	m2 := models.LeNet(cfg) // same seed ⇒ same weights
	e1, e2 := executor.MustNew(m1), executor.MustNew(m2)
	rng := tensor.NewRNG(5)
	feeds := map[string]*tensor.Tensor{
		"x":      tensor.RandNormal(rng, 0, 1, 2, 1, 28, 28),
		"labels": tensor.From([]float32{1, 7}, 2),
	}
	return e1, e2, feeds
}

func TestExecutorComparison(t *testing.T) {
	e1, e2, feeds := lenetPair(t)
	res := TestExecutor(e1, e2, feeds, 1e-5)
	if !res.Passed {
		t.Fatalf("%v", res)
	}
	res = TestExecutorBackprop(e1, e2, feeds, "loss", 1e-4)
	if !res.Passed {
		t.Fatalf("%v", res)
	}
}

func TestExecutorComparisonDetectsDifference(t *testing.T) {
	e1, e2, feeds := lenetPair(t)
	// Corrupt one weight of e2.
	name := e2.Network().Params()[0]
	w, _ := e2.Network().FetchTensor(name)
	w.AddScalar(0.5)
	res := TestExecutor(e1, e2, feeds, 1e-6)
	if res.Passed {
		t.Fatal("difference not detected")
	}
}

func TestOptimizerTrajectory(t *testing.T) {
	mk := func() training.Optimizer {
		m := models.MLP(models.Config{Classes: 3, Channels: 1, Height: 2, Width: 2, WithHead: true, Seed: 6}, 8)
		e := executor.MustNew(m)
		e.SetTraining(true)
		return training.NewDriver(e, training.NewAdam(0.01))
	}
	ds, _ := training.SyntheticSplit(64, 16, 3, []int{1, 2, 2}, 0.2, 7)
	s := training.NewSequentialSampler(ds, 16)
	var batches []*training.Batch
	for b := s.Next(); b != nil; b = s.Next() {
		batches = append(batches, b)
	}
	res, traj := TestOptimizer(mk(), mk(), batches, 1e-6)
	if !res.Passed {
		t.Fatalf("identical optimizers diverged: %v", res)
	}
	if len(traj) != len(batches) {
		t.Fatal("trajectory length")
	}
	// Different formulations must diverge measurably.
	mkVar := func(v training.AdamVariant) training.Optimizer {
		m := models.MLP(models.Config{Classes: 3, Channels: 1, Height: 2, Width: 2, WithHead: true, Seed: 6}, 8)
		e := executor.MustNew(m)
		e.SetTraining(true)
		return training.NewDriver(e, training.NewAdamVariant(0.01, v))
	}
	res2, traj2 := TestOptimizer(mkVar(training.AdamEpsInside), mkVar(training.AdamReference), batches, 1e-12)
	if res2.Passed {
		t.Fatal("variant optimizers unexpectedly identical")
	}
	if traj2[len(traj2)-1].L2 <= traj2[0].L2 {
		t.Fatal("divergence not growing")
	}
}

func TestSamplerValidation(t *testing.T) {
	ds := training.SyntheticClassification(100, 4, []int{2}, 0.1, 8)
	res, bias := TestSampler(training.NewSequentialSampler(ds, 10), 0.05)
	if !res.Passed {
		t.Fatalf("%v", res)
	}
	if len(bias.Histogram()) != 4 {
		t.Fatal("histogram incomplete")
	}
}

func TestTrainingConvergence(t *testing.T) {
	m := models.MLP(models.Config{Classes: 4, Channels: 1, Height: 4, Width: 4, WithHead: true, Seed: 9}, 32)
	e := executor.MustNew(m)
	e.SetTraining(true)
	train, test := training.SyntheticSplit(256, 64, 4, []int{1, 4, 4}, 0.3, 10)
	report, err := TestTraining(
		training.NewDriver(e, training.NewMomentum(0.05, 0.9)),
		training.NewShuffleSampler(train, 32, 1),
		training.NewSequentialSampler(test, 32),
		4, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if !report.Converged {
		t.Fatalf("did not converge: %+v", report)
	}
	if len(report.EpochLosses) != 4 || report.EpochLosses[3] >= report.EpochLosses[0] {
		t.Fatalf("loss not decreasing: %v", report.EpochLosses)
	}
}

func TestResultString(t *testing.T) {
	r := Result{Name: "x", Passed: false, MaxErr: 0.5, Details: "boom"}
	s := r.String()
	if !strings.Contains(s, "FAIL") || !strings.Contains(s, "boom") {
		t.Fatalf("%q", s)
	}
}
