package transform

import (
	"fmt"

	"deep500/internal/graph"
)

// PartitionPipeline splits a model into k sequential stages for pipeline
// parallelism — the Level 1 capability the paper calls out as "impossible
// automatically in any of the frameworks, but straightforwardly done in
// Deep500" (§IV-F Interoperability). Nodes are assigned to stages by
// topological order with balanced node counts; each stage becomes a
// self-contained Model whose inputs are the tensors crossing the stage
// boundary (plus the initializers it uses) and whose outputs are the
// tensors later stages or the original outputs consume.
func PartitionPipeline(m *graph.Model, k int) ([]*graph.Model, error) {
	if k < 1 {
		return nil, fmt.Errorf("transform: pipeline stages must be ≥ 1")
	}
	order, err := m.TopoSort()
	if err != nil {
		return nil, err
	}
	if k > len(order) {
		k = len(order)
	}
	// stage assignment: contiguous slices of the topological order
	stageOf := make(map[*graph.Node]int, len(order))
	for i, n := range order {
		stageOf[n] = i * k / len(order)
	}
	producerStage := make(map[string]int) // tensor -> producing stage
	for _, n := range order {
		for _, o := range n.Outputs {
			producerStage[o] = stageOf[n]
		}
	}
	graphInputs := make(map[string][]int, len(m.Inputs))
	for _, in := range m.Inputs {
		graphInputs[in.Name] = in.Shape
	}
	finalOutputs := make(map[string]bool, len(m.Outputs))
	for _, o := range m.Outputs {
		finalOutputs[o] = true
	}

	stages := make([]*graph.Model, k)
	for s := 0; s < k; s++ {
		stages[s] = graph.NewModel(fmt.Sprintf("%s-stage%d", m.Name, s))
	}
	// route nodes and discover boundary tensors
	needsAsInput := make([]map[string]bool, k)
	for s := range needsAsInput {
		needsAsInput[s] = make(map[string]bool)
	}
	producesForLater := make([]map[string]bool, k)
	for s := range producesForLater {
		producesForLater[s] = make(map[string]bool)
	}
	for _, n := range order {
		s := stageOf[n]
		stages[s].AddNode(graph.NewNode(n.OpType, n.Name, n.Inputs, n.Outputs, attrsOf(n)...))
		for _, in := range n.Inputs {
			if in == "" {
				continue
			}
			if t, ok := m.Initializers[in]; ok {
				stages[s].Initializers[in] = t // share parameter tensors
				continue
			}
			if shape, ok := graphInputs[in]; ok {
				if !needsAsInput[s][in] {
					needsAsInput[s][in] = true
					stages[s].AddInput(in, shape...)
				}
				continue
			}
			if ps := producerStage[in]; ps != s {
				if !needsAsInput[s][in] {
					needsAsInput[s][in] = true
					stages[s].AddInput(in, -2) // shape resolved at runtime
				}
				producesForLater[ps][in] = true
			}
		}
	}
	for _, n := range order {
		s := stageOf[n]
		for _, o := range n.Outputs {
			if producesForLater[s][o] || finalOutputs[o] {
				stages[s].AddOutput(o)
			}
		}
	}
	return stages, nil
}

func attrsOf(n *graph.Node) []graph.Attribute {
	out := make([]graph.Attribute, 0, len(n.Attrs))
	for _, a := range n.Attrs {
		out = append(out, a)
	}
	return out
}
