package transform

import (
	"context"
	"testing"

	"deep500/internal/executor"
	"deep500/internal/graph"
	"deep500/internal/kernels"
	"deep500/internal/models"
	"deep500/internal/tensor"
)

func convModel(batchDim int) *graph.Model {
	m := graph.NewModel("conv1")
	rng := tensor.NewRNG(1)
	m.AddInput("x", batchDim, 3, 16, 16)
	m.AddInitializer("w", tensor.RandNormal(rng, 0, 0.2, 8, 3, 3, 3))
	m.AddInitializer("b", tensor.New(8))
	m.AddNode(graph.NewNode("Conv", "c1", []string{"x", "w", "b"}, []string{"y"},
		graph.IntsAttr("strides", 1, 1), graph.IntsAttr("pads", 1, 1),
		graph.IntsAttr("kernel_shape", 3, 3)))
	m.AddOutput("y")
	return m
}

func TestPlanMicrobatchesCoversBatch(t *testing.T) {
	s := kernels.ConvShape{N: 1, C: 64, H: 32, W: 32, M: 64, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}
	plan, err := PlanMicrobatches(s, 100, 8<<20, nil)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, c := range plan {
		total += c.Size * c.Count
		ws := s
		ws.N = c.Size
		if ws.WorkspaceBytes(c.Algo) > 8<<20 {
			t.Fatalf("choice %+v violates memory budget", c)
		}
	}
	if total != 100 {
		t.Fatalf("plan covers %d of 100: %+v", total, plan)
	}
}

func TestPlanPrefersLargerMicrobatchesWithMoreMemory(t *testing.T) {
	s := kernels.ConvShape{N: 1, C: 32, H: 32, W: 32, M: 32, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}
	tight, err := PlanMicrobatches(s, 64, s.WorkspaceBytes(kernels.ConvIm2Col)*2, nil)
	if err != nil {
		t.Fatal(err)
	}
	roomy, err := PlanMicrobatches(s, 64, 1<<30, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(PlanSizes(tight)) <= len(PlanSizes(roomy)) {
		t.Fatalf("tight plan %v should have more chunks than roomy %v", PlanSizes(tight), PlanSizes(roomy))
	}
}

func TestPlanInfeasibleBudget(t *testing.T) {
	s := kernels.ConvShape{N: 1, C: 64, H: 64, W: 64, M: 64, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}
	// direct conv needs zero workspace, so even 1 byte is "feasible";
	// verify the plan falls back to direct.
	plan, err := PlanMicrobatches(s, 8, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range plan {
		if c.Algo != kernels.ConvDirect {
			t.Fatalf("expected direct-only plan, got %+v", plan)
		}
	}
}

func TestApplyMicrobatchPreservesSemantics(t *testing.T) {
	// Output of the transformed graph must equal the original.
	rng := tensor.NewRNG(7)
	x := tensor.RandNormal(rng, 0, 1, 12, 3, 16, 16)

	orig := convModel(-1)
	e1 := executor.MustNew(orig)
	want, err := e1.Inference(context.Background(), map[string]*tensor.Tensor{"x": x})
	if err != nil {
		t.Fatal(err)
	}

	transformed := convModel(-1)
	node := transformed.FindNode("c1")
	plan := []MicrobatchChoice{
		{Size: 4, Algo: kernels.ConvDirect, Count: 1},
		{Size: 2, Algo: kernels.ConvWinograd, Count: 2},
		{Size: 4, Algo: kernels.ConvIm2Col, Count: 1},
	}
	if err := ApplyMicrobatch(transformed, node, plan); err != nil {
		t.Fatal(err)
	}
	if err := transformed.Validate(); err != nil {
		t.Fatal(err)
	}
	e2 := executor.MustNew(transformed)
	got, err := e2.Inference(context.Background(), map[string]*tensor.Tensor{"x": x})
	if err != nil {
		t.Fatal(err)
	}
	if !tensor.AllClose(got["y"], want["y"], 1e-3, 1e-3) {
		d := tensor.Compare(got["y"], want["y"])
		t.Fatalf("transformed output differs: linf=%g", d.LInf)
	}
}

func TestApplyMicrobatchSingleChunkSetsAlgo(t *testing.T) {
	m := convModel(-1)
	node := m.FindNode("c1")
	if err := ApplyMicrobatch(m, node, []MicrobatchChoice{{Size: 8, Algo: kernels.ConvWinograd, Count: 1}}); err != nil {
		t.Fatal(err)
	}
	if m.FindNode("c1") == nil {
		t.Fatal("single-chunk plan should keep the node")
	}
	if m.FindNode("c1").AttrString("algo", "") != "winograd" {
		t.Fatal("algo attribute not set")
	}
}

func TestMicrobatchModelReducesPeakMemory(t *testing.T) {
	// A conv whose full-batch im2col workspace exceeds the budget must be
	// split, and the transformed model must execute within a memory model
	// where the original OOMs on workspace.
	const batch = 32
	budget := int64(256 << 10) // 256 KiB workspace budget

	m := convModel(-1)
	n, err := MicrobatchModel(m, batch, budget, nil)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("transformed %d nodes", n)
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	rng := tensor.NewRNG(9)
	x := tensor.RandNormal(rng, 0, 1, batch, 3, 16, 16)
	e := executor.MustNew(m)
	if _, err := e.Inference(context.Background(), map[string]*tensor.Tensor{"x": x}); err != nil {
		t.Fatal(err)
	}
}

func TestMicrobatchModelSkipsSmallConvs(t *testing.T) {
	m := convModel(-1)
	n, err := MicrobatchModel(m, 2, 1<<30, nil)
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("small conv transformed (%d)", n)
	}
}

func TestEliminateIdentity(t *testing.T) {
	m := graph.NewModel("id")
	m.AddInput("x", 2)
	m.AddNode(graph.NewNode("Identity", "i1", []string{"x"}, []string{"a"}))
	m.AddNode(graph.NewNode("Relu", "r", []string{"a"}, []string{"y"}))
	m.AddOutput("y")
	if removed := EliminateIdentity(m); removed != 1 {
		t.Fatalf("removed %d", removed)
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if m.FindNode("r").Inputs[0] != "x" {
		t.Fatal("consumer not rewired")
	}
}

func TestStripDropoutPreservesOutput(t *testing.T) {
	cfg := models.Config{Classes: 10, Channels: 3, Height: 224, Width: 224, Seed: 3, WidthScale: 0.1}
	m := models.AlexNet(cfg)
	before := len(m.Nodes)
	removed := StripDropout(m)
	if removed != 2 {
		t.Fatalf("removed %d dropouts", removed)
	}
	if len(m.Nodes) != before-2 {
		t.Fatal("node count wrong")
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
}
