package transform

import (
	"context"
	"testing"

	"deep500/internal/executor"
	"deep500/internal/models"
	"deep500/internal/tensor"
)

func TestPipelinePartitionPreservesSemantics(t *testing.T) {
	cfg := models.Config{Classes: 10, Channels: 1, Height: 28, Width: 28, WithHead: true, Seed: 8}
	full := models.LeNet(cfg)
	rng := tensor.NewRNG(4)
	feeds := map[string]*tensor.Tensor{
		"x":      tensor.RandNormal(rng, 0, 1, 2, 1, 28, 28),
		"labels": tensor.From([]float32{1, 7}, 2),
	}
	eFull := executor.MustNew(full)
	want, err := eFull.Inference(context.Background(), cloneFeeds(feeds))
	if err != nil {
		t.Fatal(err)
	}

	for _, k := range []int{2, 3, 5} {
		stages, err := PartitionPipeline(models.LeNet(cfg), k)
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if len(stages) != k {
			t.Fatalf("k=%d: got %d stages", k, len(stages))
		}
		// run stages sequentially, forwarding boundary tensors
		live := cloneFeeds(feeds)
		final := map[string]*tensor.Tensor{}
		for si, stage := range stages {
			e, err := executor.New(stage)
			if err != nil {
				t.Fatalf("k=%d stage %d: %v", k, si, err)
			}
			stageFeeds := map[string]*tensor.Tensor{}
			for _, in := range stage.Inputs {
				v, ok := live[in.Name]
				if !ok {
					t.Fatalf("k=%d stage %d: missing boundary tensor %q", k, si, in.Name)
				}
				stageFeeds[in.Name] = v
			}
			out, err := e.Inference(context.Background(), stageFeeds)
			if err != nil {
				t.Fatalf("k=%d stage %d: %v", k, si, err)
			}
			for name, v := range out {
				live[name] = v
				final[name] = v
			}
		}
		for _, name := range full.Outputs {
			if final[name] == nil {
				t.Fatalf("k=%d: output %q not produced by pipeline", k, name)
			}
			if !tensor.AllClose(final[name], want[name], 1e-5, 1e-5) {
				d := tensor.Compare(final[name], want[name])
				t.Fatalf("k=%d: output %q differs (linf=%g)", k, name, d.LInf)
			}
		}
	}
}

func TestPipelineSingleStageIsWholeModel(t *testing.T) {
	cfg := models.Config{Classes: 4, Channels: 1, Height: 8, Width: 8, Seed: 2}
	m := models.MLP(cfg, 16)
	stages, err := PartitionPipeline(m, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(stages) != 1 || len(stages[0].Nodes) != len(m.Nodes) {
		t.Fatalf("stage structure: %d stages, %d nodes", len(stages), len(stages[0].Nodes))
	}
}

func TestPipelineSharesParameterTensors(t *testing.T) {
	cfg := models.Config{Classes: 4, Channels: 1, Height: 8, Width: 8, Seed: 2}
	m := models.MLP(cfg, 16)
	stages, err := PartitionPipeline(m, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, st := range stages {
		for name, t2 := range st.Initializers {
			if t2 != m.Initializers[name] {
				t.Fatalf("stage %s copied parameter %q instead of sharing", st.Name, name)
			}
		}
	}
}

func TestPipelineRejectsBadK(t *testing.T) {
	cfg := models.Config{Classes: 4, Channels: 1, Height: 8, Width: 8, Seed: 2}
	if _, err := PartitionPipeline(models.MLP(cfg, 16), 0); err == nil {
		t.Fatal("k=0 accepted")
	}
}

func cloneFeeds(f map[string]*tensor.Tensor) map[string]*tensor.Tensor {
	out := make(map[string]*tensor.Tensor, len(f))
	for k, v := range f {
		out[k] = v.Clone()
	}
	return out
}
