// Package transform implements Deep500 Level 1 graph transformations
// (paper §IV-D: "researchers can build their own graph transformations to
// optimize between operators"), most importantly the micro-batching
// transformation of §V-C / Fig. 7: convolutions are split along the batch
// dimension into micro-batches, each with its own algorithm, chosen by an
// integer linear program that maximizes performance subject to a memory
// budget.
package transform

import (
	"fmt"

	"deep500/internal/graph"
	"deep500/internal/ilp"
	"deep500/internal/kernels"
)

// MicrobatchChoice is one entry of a micro-batch plan: Count micro-batches
// of Size samples computed with Algo.
type MicrobatchChoice struct {
	Size  int
	Algo  kernels.ConvAlgo
	Count int
}

// ConvCostModel estimates the execution time (seconds) of one micro-batch
// of the given shape with the given algorithm. The default is an analytic
// throughput model; benchmarks may substitute measured values.
type ConvCostModel func(s kernels.ConvShape, algo kernels.ConvAlgo) float64

// DefaultConvCost is a throughput model calibrated to this repository's
// CPU kernels (see BenchmarkAblationConv): parallel im2col+GEMM achieves
// the highest effective FLOP rate; the single-threaded Winograd kernel
// saves multiplications (÷2.25 for 3×3) but runs at a lower rate; direct
// convolution is slowest. A fixed per-invocation overhead penalizes very
// small micro-batches.
func DefaultConvCost(s kernels.ConvShape, algo kernels.ConvAlgo) float64 {
	flops := float64(s.FLOPs())
	const launchOverhead = 50e-6
	switch algo {
	case kernels.ConvIm2Col:
		return launchOverhead + flops/8e9
	case kernels.ConvWinograd:
		if !s.SupportsWinograd() {
			return launchOverhead + flops/8e9
		}
		return launchOverhead + (flops/2.25)/1.2e9
	default: // direct
		return launchOverhead + flops/1.5e9
	}
}

// candidate micro-batch sizes considered by the planner.
var microbatchSizes = []int{1, 2, 4, 8, 16, 32, 64, 128}

// PlanMicrobatches solves the ILP: split a batch of size batch into
// micro-batches with per-micro-batch algorithms, minimizing estimated time
// subject to every micro-batch's workspace fitting in memBudget bytes.
// shape describes the convolution at batch size 1 (the N field is ignored).
func PlanMicrobatches(shape kernels.ConvShape, batch int, memBudget int64, cost ConvCostModel) ([]MicrobatchChoice, error) {
	if cost == nil {
		cost = DefaultConvCost
	}
	type cand struct {
		size int
		algo kernels.ConvAlgo
	}
	var cands []cand
	var costs []float64
	algos := []kernels.ConvAlgo{kernels.ConvDirect, kernels.ConvIm2Col}
	if shape.SupportsWinograd() {
		algos = append(algos, kernels.ConvWinograd)
	}
	for _, size := range microbatchSizes {
		if size > batch {
			break
		}
		s := shape
		s.N = size
		for _, algo := range algos {
			if memBudget > 0 && s.WorkspaceBytes(algo) > memBudget {
				continue
			}
			cands = append(cands, cand{size, algo})
			costs = append(costs, cost(s, algo))
		}
	}
	if len(cands) == 0 {
		return nil, fmt.Errorf("transform: no micro-batch configuration fits %d bytes", memBudget)
	}
	p := ilp.Problem{
		Cost: costs,
		Lo:   make([]int, len(cands)),
		Hi:   make([]int, len(cands)),
	}
	coef := make([]float64, len(cands))
	for i, c := range cands {
		p.Hi[i] = batch / c.size
		coef[i] = float64(c.size)
	}
	p.Cons = []ilp.Constraint{{Coef: coef, Rel: ilp.EQ, RHS: float64(batch)}}
	x, _, err := ilp.Solve(p)
	if err != nil {
		return nil, fmt.Errorf("transform: micro-batch ILP: %w", err)
	}
	var plan []MicrobatchChoice
	for i, count := range x {
		if count > 0 {
			plan = append(plan, MicrobatchChoice{Size: cands[i].size, Algo: cands[i].algo, Count: count})
		}
	}
	return plan, nil
}

// PlanSizes expands a plan into the Split sizes list.
func PlanSizes(plan []MicrobatchChoice) []int {
	var sizes []int
	for _, c := range plan {
		for i := 0; i < c.Count; i++ {
			sizes = append(sizes, c.Size)
		}
	}
	return sizes
}

func algoName(a kernels.ConvAlgo) string {
	switch a {
	case kernels.ConvDirect:
		return "direct"
	case kernels.ConvWinograd:
		return "winograd"
	default:
		return "im2col"
	}
}

// ApplyMicrobatch rewrites one Conv node into Split → k micro-batch Convs
// (sharing the weight tensors, each with its planned algorithm) → Concat,
// exactly as Fig. 7 depicts. The node's output name is preserved so
// downstream consumers are untouched.
func ApplyMicrobatch(m *graph.Model, node *graph.Node, plan []MicrobatchChoice) error {
	if node.OpType != "Conv" {
		return fmt.Errorf("transform: micro-batching applies to Conv nodes, got %s", node.OpType)
	}
	if len(plan) == 0 {
		return fmt.Errorf("transform: empty plan")
	}
	sizes := PlanSizes(plan)
	if len(sizes) == 1 {
		// single micro-batch: just set the algorithm
		node.Attrs["algo"] = graph.StringAttr("algo", algoName(plan[0].Algo))
		return nil
	}
	input := node.Inputs[0]
	output := node.Outputs[0]

	splitOuts := make([]string, len(sizes))
	sizes64 := make([]int64, len(sizes))
	for i, s := range sizes {
		splitOuts[i] = fmt.Sprintf("%s_mb_in_%d", node.Name, i)
		sizes64[i] = int64(s)
	}
	m.AddNode(graph.NewNode("Split", node.Name+"_mb_split", []string{input}, splitOuts,
		graph.IntAttr("axis", 0), graph.IntsAttr("split", sizes64...)))

	// per-chunk algorithm, aligned with PlanSizes expansion order
	var algos []kernels.ConvAlgo
	for _, c := range plan {
		for i := 0; i < c.Count; i++ {
			algos = append(algos, c.Algo)
		}
	}
	convOuts := make([]string, len(sizes))
	for i := range sizes {
		convOuts[i] = fmt.Sprintf("%s_mb_out_%d", node.Name, i)
		inputs := append([]string{splitOuts[i]}, node.Inputs[1:]...)
		attrs := []graph.Attribute{graph.StringAttr("algo", algoName(algos[i]))}
		for _, a := range node.Attrs {
			if a.Name != "algo" {
				attrs = append(attrs, a)
			}
		}
		m.AddNode(graph.NewNode("Conv", fmt.Sprintf("%s_mb_%d", node.Name, i),
			inputs, []string{convOuts[i]}, attrs...))
	}
	m.AddNode(graph.NewNode("Concat", node.Name+"_mb_concat", convOuts, []string{output},
		graph.IntAttr("axis", 0)))
	m.RemoveNode(node)
	return nil
}

// MicrobatchModel plans and applies micro-batching to every Conv node whose
// im2col workspace at full batch exceeds memBudget. It returns the number
// of transformed nodes.
func MicrobatchModel(m *graph.Model, batch int, memBudget int64, cost ConvCostModel) (int, error) {
	shapes, err := m.InferShapes(batch)
	if err != nil {
		return 0, err
	}
	var convs []*graph.Node
	for _, n := range m.Nodes {
		if n.OpType == "Conv" {
			convs = append(convs, n)
		}
	}
	transformed := 0
	for _, n := range convs {
		x := shapes[n.Inputs[0]]
		w := shapes[n.Inputs[1]]
		strides := n.AttrInts("strides", []int64{1, 1})
		pads := n.AttrInts("pads", []int64{0, 0})
		s := kernels.ConvShape{
			N: 1, C: x[1], H: x[2], W: x[3],
			M: w[0], KH: w[2], KW: w[3],
			StrideH: int(strides[0]), StrideW: int(strides[1]),
			PadH: int(pads[0]), PadW: int(pads[1]),
		}
		full := s
		full.N = batch
		if memBudget > 0 && full.WorkspaceBytes(kernels.ConvIm2Col) <= memBudget {
			continue
		}
		plan, err := PlanMicrobatches(s, batch, memBudget, cost)
		if err != nil {
			return transformed, fmt.Errorf("node %q: %w", n.Name, err)
		}
		if err := ApplyMicrobatch(m, n, plan); err != nil {
			return transformed, err
		}
		transformed++
	}
	return transformed, nil
}

// EliminateIdentity removes Identity nodes, rewiring consumers to the
// identity's input. Identity nodes producing graph outputs are kept.
func EliminateIdentity(m *graph.Model) int {
	outputs := make(map[string]bool)
	for _, o := range m.Outputs {
		outputs[o] = true
	}
	removed := 0
	for _, n := range append([]*graph.Node(nil), m.Nodes...) {
		if n.OpType != "Identity" || outputs[n.Outputs[0]] {
			continue
		}
		src, dst := n.Inputs[0], n.Outputs[0]
		for _, c := range m.Consumers(dst) {
			for i, in := range c.Inputs {
				if in == dst {
					c.Inputs[i] = src
				}
			}
		}
		m.RemoveNode(n)
		removed++
	}
	return removed
}

// StripDropout removes Dropout nodes (an inference-time optimization),
// rewiring consumers to the dropout input.
func StripDropout(m *graph.Model) int {
	outputs := make(map[string]bool)
	for _, o := range m.Outputs {
		outputs[o] = true
	}
	removed := 0
	for _, n := range append([]*graph.Node(nil), m.Nodes...) {
		if n.OpType != "Dropout" || outputs[n.Outputs[0]] {
			continue
		}
		src, dst := n.Inputs[0], n.Outputs[0]
		for _, c := range m.Consumers(dst) {
			for i, in := range c.Inputs {
				if in == dst {
					c.Inputs[i] = src
				}
			}
		}
		m.RemoveNode(n)
		removed++
	}
	return removed
}
