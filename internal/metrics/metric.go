// Package metrics implements the Deep500 metric framework (paper §IV-B,
// challenge 2): a generic TestMetric interface, summary statistics with the
// paper's evaluation methodology (medians and nonparametric 95% confidence
// intervals over 30 re-runs, §V-A), and the concrete metric families
// attached to the four levels — wallclock time, FLOP/s, accuracy series,
// framework overhead, communication volume, dataset latency, dataset bias
// and time-to-accuracy.
package metrics

import (
	"fmt"
	"math"
	"sort"
)

// DefaultReruns is the paper's measurement count for non-distributed
// experiments (§V-A: "we run them 30 times and report median results and
// nonparametric 95% confidence intervals").
const DefaultReruns = 30

// TestMetric is the minimal metric interface: every metric can identify
// itself, report how many re-runs a sound measurement needs, and summarize
// what it has collected.
type TestMetric interface {
	Name() string
	RequiredReruns() int
	Summarize() Summary
}

// Summary holds order statistics of a sample set.
type Summary struct {
	Name              string
	Unit              string
	N                 int
	Mean              float64
	Median            float64
	Min, Max          float64
	CI95Low, CI95High float64 // nonparametric CI of the median
	P25, P75          float64
	P95               float64
	MAD               float64 // median absolute deviation from the median
	StdDev            float64
}

func (s Summary) String() string {
	return fmt.Sprintf("%s: median %.4g %s (95%% CI [%.4g, %.4g], n=%d)",
		s.Name, s.Median, s.Unit, s.CI95Low, s.CI95High, s.N)
}

// Sampler accumulates float64 samples and computes summaries. The zero
// value is unusable; construct with NewSampler. Sampler is the reusable
// core most concrete metrics embed.
type Sampler struct {
	name    string
	unit    string
	reruns  int
	samples []float64
}

// NewSampler returns a sampler with the default re-run requirement.
func NewSampler(name, unit string) *Sampler {
	return &Sampler{name: name, unit: unit, reruns: DefaultReruns}
}

// WithReruns overrides the required re-run count and returns the sampler.
func (s *Sampler) WithReruns(n int) *Sampler {
	s.reruns = n
	return s
}

// Name returns the metric name.
func (s *Sampler) Name() string { return s.name }

// RequiredReruns returns how many measurements a sound summary needs.
func (s *Sampler) RequiredReruns() int { return s.reruns }

// Record adds one sample.
func (s *Sampler) Record(v float64) { s.samples = append(s.samples, v) }

// Count returns the number of samples recorded so far.
func (s *Sampler) Count() int { return len(s.samples) }

// Samples returns the raw samples (not a copy).
func (s *Sampler) Samples() []float64 { return s.samples }

// Reset discards all samples.
func (s *Sampler) Reset() { s.samples = s.samples[:0] }

// Summarize computes order statistics over the recorded samples.
func (s *Sampler) Summarize() Summary {
	sum := Summarize(s.samples)
	sum.Name = s.name
	sum.Unit = s.unit
	return sum
}

// Summarize computes order statistics (median, nonparametric 95% CI of the
// median, quartiles, extrema) for a sample set.
func Summarize(samples []float64) Summary {
	n := len(samples)
	if n == 0 {
		return Summary{}
	}
	sorted := append([]float64(nil), samples...)
	sort.Float64s(sorted)
	var mean float64
	for _, v := range sorted {
		mean += v
	}
	mean /= float64(n)
	var sq float64
	for _, v := range sorted {
		sq += (v - mean) * (v - mean)
	}
	lo, hi := medianCIIndices(n)
	median := Percentile(sorted, 50)
	return Summary{
		N:        n,
		Mean:     mean,
		StdDev:   math.Sqrt(sq / float64(n)),
		Median:   median,
		Min:      sorted[0],
		Max:      sorted[n-1],
		P25:      Percentile(sorted, 25),
		P75:      Percentile(sorted, 75),
		P95:      Percentile(sorted, 95),
		MAD:      MAD(sorted, median),
		CI95Low:  sorted[lo],
		CI95High: sorted[hi],
	}
}

// MAD returns the median absolute deviation of the samples from center —
// the robust dispersion estimate the benchmark comparator uses for its
// significance windows (median ± MAD).
func MAD(samples []float64, center float64) float64 {
	if len(samples) == 0 {
		return 0
	}
	dev := make([]float64, len(samples))
	for i, v := range samples {
		dev[i] = math.Abs(v - center)
	}
	sort.Float64s(dev)
	return Percentile(dev, 50)
}

// Distribution is a Summary that retains the raw (post-warmup) samples it
// was computed from, so experiment results can be exported into the
// machine-readable benchmark schema (internal/bench) instead of being
// collapsed to printed order statistics.
type Distribution struct {
	Summary
	Samples []float64
}

// Distribution returns the summary together with a copy of the raw samples.
func (s *Sampler) Distribution() Distribution {
	return Distribution{
		Summary: s.Summarize(),
		Samples: append([]float64(nil), s.samples...),
	}
}

// medianCIIndices returns the order-statistic indices bounding a ~95%
// nonparametric confidence interval of the median (binomial method,
// Hoefler & Belli, "Scientific benchmarking of parallel computing
// systems", SC'15 — the paper's reference [27]).
func medianCIIndices(n int) (lo, hi int) {
	if n == 1 {
		return 0, 0
	}
	z := 1.96
	d := z * math.Sqrt(float64(n)) / 2
	lo = int(math.Floor(float64(n)/2 - d))
	hi = int(math.Ceil(float64(n)/2+d)) - 1
	if lo < 0 {
		lo = 0
	}
	if hi > n-1 {
		hi = n - 1
	}
	if hi < lo {
		lo, hi = hi, lo
	}
	return
}

// Percentile returns the p-th percentile (0–100) of sorted data using
// linear interpolation.
func Percentile(sorted []float64, p float64) float64 {
	n := len(sorted)
	if n == 0 {
		return math.NaN()
	}
	if n == 1 {
		return sorted[0]
	}
	rank := p / 100 * float64(n-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}
