package metrics

import (
	"math"
	"time"
)

// SeriesPoint is one observation of a training-curve metric.
type SeriesPoint struct {
	Step    int
	Epoch   int
	Elapsed time.Duration
	Value   float64
}

// Series collects a training curve — the TrainingAccuracy ("every k-th
// step") and TestAccuracy ("every k-th epoch") metrics of Level 2.
type Series struct {
	name   string
	unit   string
	Every  int // record every k-th observation (1 = all)
	points []SeriesPoint
	calls  int
	start  time.Time
}

// NewSeries returns a series metric recording every k-th observation.
func NewSeries(name, unit string, every int) *Series {
	if every < 1 {
		every = 1
	}
	return &Series{name: name, unit: unit, Every: every, start: time.Now()}
}

// NewTrainingAccuracy returns the Level 2 TrainingAccuracy metric.
func NewTrainingAccuracy(everyKSteps int) *Series {
	return NewSeries("TrainingAccuracy", "fraction", everyKSteps)
}

// NewTestAccuracy returns the Level 2 TestAccuracy metric.
func NewTestAccuracy(everyKEpochs int) *Series {
	return NewSeries("TestAccuracy", "fraction", everyKEpochs)
}

// Name returns the metric name.
func (s *Series) Name() string { return s.name }

// RequiredReruns is 1 for curve metrics.
func (s *Series) RequiredReruns() int { return 1 }

// Observe records value at (step, epoch) if it falls on the k-th cadence.
func (s *Series) Observe(step, epoch int, value float64) {
	s.calls++
	if (s.calls-1)%s.Every != 0 {
		return
	}
	s.points = append(s.points, SeriesPoint{
		Step: step, Epoch: epoch, Elapsed: time.Since(s.start), Value: value,
	})
}

// Points returns the recorded curve.
func (s *Series) Points() []SeriesPoint { return s.points }

// Last returns the most recent recorded value (NaN when empty).
func (s *Series) Last() float64 {
	if len(s.points) == 0 {
		return math.NaN()
	}
	return s.points[len(s.points)-1].Value
}

// Best returns the maximum recorded value (NaN when empty).
func (s *Series) Best() float64 {
	if len(s.points) == 0 {
		return math.NaN()
	}
	best := s.points[0].Value
	for _, p := range s.points[1:] {
		if p.Value > best {
			best = p.Value
		}
	}
	return best
}

// Summarize summarizes the recorded values.
func (s *Series) Summarize() Summary {
	vals := make([]float64, len(s.points))
	for i, p := range s.points {
		vals[i] = p.Value
	}
	sum := Summarize(vals)
	sum.Name = s.name
	sum.Unit = s.unit
	return sum
}

// DatasetBias collects a histogram of sampled labels and quantifies
// deviation from uniformity (Level 2 "DatasetBias": the paper validates
// dataset samplers by collecting a histogram of sampled elements w.r.t.
// labels, §IV-E).
type DatasetBias struct {
	name   string
	counts map[int]int
	total  int
}

// NewDatasetBias returns a label-histogram metric.
func NewDatasetBias() *DatasetBias {
	return &DatasetBias{name: "DatasetBias", counts: make(map[int]int)}
}

// Name returns the metric name.
func (b *DatasetBias) Name() string { return b.name }

// RequiredReruns is 1.
func (b *DatasetBias) RequiredReruns() int { return 1 }

// ObserveLabel counts one sampled label.
func (b *DatasetBias) ObserveLabel(label int) {
	b.counts[label]++
	b.total++
}

// Histogram returns the label counts.
func (b *DatasetBias) Histogram() map[int]int { return b.counts }

// ChiSquare returns the χ² statistic against the uniform distribution over
// the observed label set; larger means more biased sampling.
func (b *DatasetBias) ChiSquare() float64 {
	k := len(b.counts)
	if k == 0 || b.total == 0 {
		return 0
	}
	expected := float64(b.total) / float64(k)
	var chi float64
	for _, c := range b.counts {
		d := float64(c) - expected
		chi += d * d / expected
	}
	return chi
}

// Summarize reports per-label counts as a distribution summary.
func (b *DatasetBias) Summarize() Summary {
	vals := make([]float64, 0, len(b.counts))
	for _, c := range b.counts {
		vals = append(vals, float64(c))
	}
	s := Summarize(vals)
	s.Name = b.name
	s.Unit = "samples/label"
	return s
}
