package metrics

import (
	"context"
	"testing"

	"deep500/internal/executor"
	"deep500/internal/graph"
	"deep500/internal/tensor"
)

func TestFrameworkOverheadOnRealExecutor(t *testing.T) {
	m := graph.NewModel("tiny")
	rng := tensor.NewRNG(2)
	m.AddInput("x", -1, 16)
	m.AddInitializer("w", tensor.RandNormal(rng, 0, 0.1, 16, 16))
	m.AddNode(graph.NewNode("MatMul", "mm", []string{"x", "w"}, []string{"h"}))
	m.AddNode(graph.NewNode("Relu", "r", []string{"h"}, []string{"y"}))
	m.AddOutput("y")

	e := executor.MustNew(m)
	fo := NewFrameworkOverhead()
	e.Events = fo.Events()
	x := tensor.RandNormal(rng, 0, 1, 8, 16)
	for i := 0; i < 5; i++ {
		if _, err := e.Inference(context.Background(), map[string]*tensor.Tensor{"x": x}); err != nil {
			t.Fatal(err)
		}
	}
	if fo.Count() != 5 {
		t.Fatalf("overhead samples = %d", fo.Count())
	}
	sum := fo.Summarize()
	if sum.Median < 0 || sum.Median > 1 {
		t.Fatalf("overhead fraction out of range: %v", sum.Median)
	}
	if fo.AbsoluteSampler.Count() != 5 {
		t.Fatal("absolute overhead not sampled")
	}
}
