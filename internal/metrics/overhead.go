package metrics

import (
	"sync/atomic"
	"time"

	"deep500/internal/executor"
	"deep500/internal/graph"
)

// FrameworkOverhead measures, per forward pass, the difference between the
// whole-pass wallclock time and the sum of individual operator runtimes —
// the Level 1 metric the paper uses to expose framework and hardware
// management cost (GPU kernel invocation latency etc., §IV-D).
type FrameworkOverhead struct {
	*Sampler        // overhead fraction per pass (0.1 = 10%)
	opTime          time.Duration
	AbsoluteSampler *Sampler // overhead seconds per pass
}

// NewFrameworkOverhead returns the metric.
func NewFrameworkOverhead() *FrameworkOverhead {
	return &FrameworkOverhead{
		Sampler:         NewSampler("FrameworkOverhead", "fraction"),
		AbsoluteSampler: NewSampler("FrameworkOverheadAbs", "s"),
	}
}

// Events returns executor hooks that feed this metric; attach them with
// executor.Merge when other hooks are present. This is the paper's pattern
// of one class extending both TestMetric and Event.
//
// The per-pass overhead fraction is defined for the sequential backend:
// under the parallel dataflow backend concurrent operator durations can sum
// past the pass wall-clock, in which case the overhead clamps to zero.
// Wall-clock comparisons (e.g. the §V-D epoch-time experiment) remain valid
// on any backend.
func (f *FrameworkOverhead) Events() *executor.Events {
	return &executor.Events{
		BeforeInference: func() { f.opTime = 0 },
		AfterOp:         func(n *graph.Node, d time.Duration) { f.opTime += d },
		AfterInference: func(total time.Duration) {
			over := total - f.opTime
			if over < 0 {
				over = 0
			}
			f.AbsoluteSampler.Record(over.Seconds())
			if total > 0 {
				f.Record(float64(over) / float64(total))
			}
		},
	}
}

// CommunicationVolume accumulates bytes moved over the (simulated) network,
// the Level 3 metric of §IV-F. It is safe for concurrent use by many ranks.
type CommunicationVolume struct {
	name     string
	sent     atomic.Int64
	received atomic.Int64
	messages atomic.Int64
}

// NewCommunicationVolume returns the metric.
func NewCommunicationVolume() *CommunicationVolume {
	return &CommunicationVolume{name: "CommunicationVolume"}
}

// Name returns the metric name.
func (c *CommunicationVolume) Name() string { return c.name }

// RequiredReruns is 1: volume is deterministic for a fixed schedule.
func (c *CommunicationVolume) RequiredReruns() int { return 1 }

// AddSent, AddReceived record traffic; AddMessage counts one message.
func (c *CommunicationVolume) AddSent(b int64)     { c.sent.Add(b); c.messages.Add(1) }
func (c *CommunicationVolume) AddReceived(b int64) { c.received.Add(b) }

// Sent and Received return accumulated byte counts; Messages the message
// count.
func (c *CommunicationVolume) Sent() int64     { return c.sent.Load() }
func (c *CommunicationVolume) Received() int64 { return c.received.Load() }
func (c *CommunicationVolume) Messages() int64 { return c.messages.Load() }

// Reset zeroes the counters.
func (c *CommunicationVolume) Reset() {
	c.sent.Store(0)
	c.received.Store(0)
	c.messages.Store(0)
}

// Summarize reports total sent bytes.
func (c *CommunicationVolume) Summarize() Summary {
	v := float64(c.sent.Load())
	return Summary{Name: c.name, Unit: "B", N: 1,
		Mean: v, Median: v, Min: v, Max: v, CI95Low: v, CI95High: v}
}
