package metrics

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"deep500/internal/tensor"
)

func TestSummarizeBasics(t *testing.T) {
	s := Summarize([]float64{3, 1, 2})
	if s.Median != 2 || s.Min != 1 || s.Max != 3 || s.N != 3 {
		t.Fatalf("%+v", s)
	}
	if math.Abs(s.Mean-2) > 1e-12 {
		t.Fatalf("mean %v", s.Mean)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 {
		t.Fatalf("%+v", s)
	}
}

func TestSummarizeP95AndMAD(t *testing.T) {
	s := Summarize([]float64{1, 1, 1, 1, 1})
	if s.P95 != 1 || s.MAD != 0 {
		t.Fatalf("constant samples: %+v", s)
	}
	s = Summarize([]float64{1, 2, 3, 4, 100})
	if s.P95 <= s.P75 || s.P95 > s.Max {
		t.Fatalf("p95 ordering: %+v", s)
	}
	// median 3, deviations {2,1,0,1,97} → MAD 1
	if s.MAD != 1 {
		t.Fatalf("MAD = %v", s.MAD)
	}
}

func TestMADRobustToOutliers(t *testing.T) {
	base := MAD([]float64{1, 2, 3, 4, 5}, 3)
	spiked := MAD([]float64{1, 2, 3, 4, 5000}, 3)
	if base != 1 || spiked != 1 {
		t.Fatalf("MAD base %v spiked %v", base, spiked)
	}
	if MAD(nil, 0) != 0 {
		t.Fatal("empty MAD")
	}
}

func TestSamplerDistribution(t *testing.T) {
	s := NewSampler("d", "s")
	for _, v := range []float64{3, 1, 2} {
		s.Record(v)
	}
	d := s.Distribution()
	if d.Median != 2 || d.N != 3 {
		t.Fatalf("%+v", d.Summary)
	}
	if len(d.Samples) != 3 || d.Samples[0] != 3 {
		t.Fatalf("samples not retained in order: %v", d.Samples)
	}
	// the distribution owns a copy: mutating it must not corrupt the sampler
	d.Samples[0] = -1
	if s.Samples()[0] != 3 {
		t.Fatal("Distribution aliases sampler storage")
	}
}

func TestPercentile(t *testing.T) {
	sorted := []float64{1, 2, 3, 4, 5}
	if Percentile(sorted, 50) != 3 {
		t.Fatal("p50")
	}
	if Percentile(sorted, 0) != 1 || Percentile(sorted, 100) != 5 {
		t.Fatal("extremes")
	}
	if p := Percentile(sorted, 25); p != 2 {
		t.Fatalf("p25 = %v", p)
	}
}

func TestMedianCIContainsMedian(t *testing.T) {
	// For n=30 the binomial CI of the median must bracket the median.
	rng := tensor.NewRNG(5)
	vals := make([]float64, 30)
	for i := range vals {
		vals[i] = rng.Norm()
	}
	s := Summarize(vals)
	if s.CI95Low > s.Median || s.CI95High < s.Median {
		t.Fatalf("CI [%v, %v] does not contain median %v", s.CI95Low, s.CI95High, s.Median)
	}
	if s.CI95Low == s.CI95High {
		t.Fatal("degenerate CI for n=30")
	}
}

func TestPropCIOrdering(t *testing.T) {
	f := func(seed uint16) bool {
		rng := tensor.NewRNG(uint64(seed))
		n := rng.Intn(100) + 1
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = rng.Float64() * 100
		}
		s := Summarize(vals)
		return s.Min <= s.CI95Low && s.CI95Low <= s.CI95High && s.CI95High <= s.Max &&
			s.P25 <= s.Median && s.Median <= s.P75
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSamplerLifecycle(t *testing.T) {
	s := NewSampler("x", "unit").WithReruns(5)
	if s.RequiredReruns() != 5 || s.Name() != "x" {
		t.Fatal("config lost")
	}
	for i := 0; i < 5; i++ {
		s.Record(float64(i))
	}
	if s.Count() != 5 {
		t.Fatal("count")
	}
	sum := s.Summarize()
	if sum.Median != 2 || sum.Unit != "unit" {
		t.Fatalf("%+v", sum)
	}
	s.Reset()
	if s.Count() != 0 {
		t.Fatal("reset failed")
	}
}

func TestWallclockTime(t *testing.T) {
	w := NewWallclockTime("sleep")
	w.Measure(func() { time.Sleep(2 * time.Millisecond) })
	if w.Count() != 1 || w.Samples()[0] < 0.001 {
		t.Fatalf("samples %v", w.Samples())
	}
}

func TestFLOPSMetric(t *testing.T) {
	f := NewFLOPS("gemm")
	f.RecordWork(2_000_000, time.Millisecond)
	got := f.Samples()[0]
	if math.Abs(got-2e9)/2e9 > 0.01 {
		t.Fatalf("FLOP/s = %v", got)
	}
	f.RecordWork(100, 0) // zero duration must be ignored
	if f.Count() != 1 {
		t.Fatal("zero-duration sample recorded")
	}
}

func TestSeriesCadence(t *testing.T) {
	s := NewSeries("acc", "f", 3)
	for i := 0; i < 9; i++ {
		s.Observe(i, 0, float64(i))
	}
	pts := s.Points()
	if len(pts) != 3 || pts[0].Step != 0 || pts[1].Step != 3 || pts[2].Step != 6 {
		t.Fatalf("points %v", pts)
	}
	if s.Last() != 6 || s.Best() != 6 {
		t.Fatalf("last/best %v %v", s.Last(), s.Best())
	}
}

func TestSeriesEmpty(t *testing.T) {
	s := NewTrainingAccuracy(1)
	if !math.IsNaN(s.Last()) || !math.IsNaN(s.Best()) {
		t.Fatal("empty series should be NaN")
	}
}

func TestTimeToAccuracy(t *testing.T) {
	m := NewTimeToAccuracy("tta", 0.9)
	m.Start()
	m.Observe(0.5)
	if ok, _ := m.Reached(); ok {
		t.Fatal("reached too early")
	}
	time.Sleep(time.Millisecond)
	m.Observe(0.95)
	ok, when := m.Reached()
	if !ok || when <= 0 {
		t.Fatalf("reached=%v when=%v", ok, when)
	}
	// later lower observations must not reset
	m.Observe(0.1)
	if ok2, when2 := m.Reached(); !ok2 || when2 != when {
		t.Fatal("TTA changed after being reached")
	}
	if m.Summarize().N != 1 {
		t.Fatal("summary")
	}
}

func TestDatasetBiasUniform(t *testing.T) {
	b := NewDatasetBias()
	for i := 0; i < 1000; i++ {
		b.ObserveLabel(i % 10)
	}
	if chi := b.ChiSquare(); chi != 0 {
		t.Fatalf("uniform chi² = %v", chi)
	}
	skewed := NewDatasetBias()
	for i := 0; i < 1000; i++ {
		skewed.ObserveLabel(0)
	}
	skewed.ObserveLabel(1)
	if skewed.ChiSquare() < 100 {
		t.Fatalf("skewed chi² = %v", skewed.ChiSquare())
	}
}

func TestCommunicationVolume(t *testing.T) {
	c := NewCommunicationVolume()
	done := make(chan struct{})
	for i := 0; i < 8; i++ {
		go func() {
			for j := 0; j < 100; j++ {
				c.AddSent(10)
				c.AddReceived(10)
			}
			done <- struct{}{}
		}()
	}
	for i := 0; i < 8; i++ {
		<-done
	}
	if c.Sent() != 8000 || c.Received() != 8000 || c.Messages() != 800 {
		t.Fatalf("sent=%d recv=%d msgs=%d", c.Sent(), c.Received(), c.Messages())
	}
	c.Reset()
	if c.Sent() != 0 {
		t.Fatal("reset failed")
	}
}
