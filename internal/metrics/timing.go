package metrics

import (
	"time"
)

// WallclockTime measures elapsed time per run in seconds — the Level 0/1
// performance metric.
type WallclockTime struct {
	*Sampler
	start time.Time
}

// NewWallclockTime returns a wallclock-time metric.
func NewWallclockTime(name string) *WallclockTime {
	return &WallclockTime{Sampler: NewSampler(name, "s")}
}

// Begin marks the start of a measured region.
func (w *WallclockTime) Begin() { w.start = time.Now() }

// End closes the region and records its duration.
func (w *WallclockTime) End() { w.Record(time.Since(w.start).Seconds()) }

// Measure times one invocation of f.
func (w *WallclockTime) Measure(f func()) {
	w.Begin()
	f()
	w.End()
}

// FLOPS converts (work, duration) observations into FLOP/s samples — the
// Level 0 "FLOPs" performance metric.
type FLOPS struct{ *Sampler }

// NewFLOPS returns a FLOP/s metric.
func NewFLOPS(name string) *FLOPS {
	return &FLOPS{NewSampler(name, "FLOP/s")}
}

// RecordWork records one observation of work FLOPs done in d.
func (f *FLOPS) RecordWork(work int64, d time.Duration) {
	if d > 0 {
		f.Record(float64(work) / d.Seconds())
	}
}

// DatasetLatency measures minibatch-loading latency in seconds (Level 2/3
// I/O metric, paper Fig. 8).
type DatasetLatency struct{ *WallclockTime }

// NewDatasetLatency returns a dataset-latency metric.
func NewDatasetLatency(name string) *DatasetLatency {
	return &DatasetLatency{NewWallclockTime(name)}
}

// TimeToAccuracy combines performance and accuracy (paper §III-C, metric ¸):
// it watches (elapsed time, accuracy) observations and reports the first
// time the target accuracy was reached.
type TimeToAccuracy struct {
	name    string
	Target  float64
	reached bool
	when    time.Duration
	start   time.Time
}

// NewTimeToAccuracy returns a time-to-accuracy metric for the given target.
func NewTimeToAccuracy(name string, target float64) *TimeToAccuracy {
	return &TimeToAccuracy{name: name, Target: target, start: time.Now()}
}

// Name returns the metric name.
func (t *TimeToAccuracy) Name() string { return t.name }

// RequiredReruns is 1: time-to-accuracy is a single-trajectory metric.
func (t *TimeToAccuracy) RequiredReruns() int { return 1 }

// Start resets the clock.
func (t *TimeToAccuracy) Start() {
	t.start = time.Now()
	t.reached = false
}

// Observe records the current accuracy.
func (t *TimeToAccuracy) Observe(acc float64) {
	if !t.reached && acc >= t.Target {
		t.reached = true
		t.when = time.Since(t.start)
	}
}

// Reached reports whether the target was hit and when.
func (t *TimeToAccuracy) Reached() (bool, time.Duration) { return t.reached, t.when }

// Summarize reports the time-to-accuracy (seconds) or an empty summary.
func (t *TimeToAccuracy) Summarize() Summary {
	s := Summary{Name: t.name, Unit: "s"}
	if t.reached {
		s.N = 1
		v := t.when.Seconds()
		s.Mean, s.Median, s.Min, s.Max, s.CI95Low, s.CI95High = v, v, v, v, v, v
	}
	return s
}
