package bench

import (
	"os"
	"os/exec"
	"runtime"
	"strings"
)

// CaptureEnv records the measurement environment of the current process.
// Fields the harness controls (ExecBackend, Arena, Quick, Seed) are left
// for the caller to fill in.
func CaptureEnv() Environment {
	return Environment{
		GitRev:     gitRev(),
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		CPUModel:   cpuModel(),
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
}

// gitRev resolves the current commit: CI exposes it as GITHUB_SHA; locally
// we ask git. Absence is recorded as empty, never an error — a report from
// an exported tree is still a report.
func gitRev() string {
	if sha := os.Getenv("GITHUB_SHA"); sha != "" {
		return sha
	}
	out, err := exec.Command("git", "rev-parse", "HEAD").Output()
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(out))
}

// cpuModel reads the CPU model name where the OS exposes one.
func cpuModel() string {
	if runtime.GOOS != "linux" {
		return ""
	}
	data, err := os.ReadFile("/proc/cpuinfo")
	if err != nil {
		return ""
	}
	for _, line := range strings.Split(string(data), "\n") {
		if k, v, ok := strings.Cut(line, ":"); ok && strings.TrimSpace(k) == "model name" {
			return strings.TrimSpace(v)
		}
	}
	return ""
}
