package bench

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// goldenReport is a fully populated report with deterministic contents;
// every schema field appears at least once.
func goldenReport() *Report {
	rec := NewRecord("spotlight/deepbench/native", "s", LowerIsBetter, []float64{0.5, 0.25, 0.25, 0.25})
	rec.Work = 1_000_000
	rec.Warmup = 1
	rec.Stats.BytesPerOp = 4096
	rec.Stats.AllocsPerOp = 12
	rec.Finalize()
	return &Report{
		SchemaVersion: SchemaVersion,
		Suite:         "d500bench",
		CreatedAt:     "2026-07-25T12:00:00Z",
		Env: Environment{
			GitRev:      "0123456789abcdef",
			GoVersion:   "go1.22.0",
			GOOS:        "linux",
			GOARCH:      "amd64",
			CPUModel:    "Golden CPU @ 2.10GHz",
			NumCPU:      8,
			GOMAXPROCS:  8,
			ExecBackend: "parallel",
			Arena:       true,
			Quick:       true,
			Seed:        500,
		},
		Experiments: []Experiment{{
			ID:    "fig6gemm",
			Title: "Fig. 6b: GEMM performance",
			Records: []Record{
				rec,
				NewRecord("coverage", "rows", HigherIsBetter, []float64{20}),
				NewRecord("overhead-fraction", "ratio", ReportOnly, []float64{0.007}),
			},
			Notes: []string{"golden fixture"},
		}},
	}
}

// TestSchemaGolden pins the serialized report layout byte-for-byte:
// renaming or retyping any JSON field breaks this test loudly, which is
// the contract CI baselines and external consumers rely on. If the change
// is intentional, bump SchemaVersion and regenerate with
// UPDATE_GOLDEN=1 go test ./internal/bench -run TestSchemaGolden.
func TestSchemaGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenReport().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "report_golden.json")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (regenerate with UPDATE_GOLDEN=1)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("serialized schema drifted from golden file.\ngot:\n%s\nwant:\n%s", buf.Bytes(), want)
	}
}

func TestReadReportRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "r.json")
	rep := goldenReport()
	if err := rep.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Env != rep.Env {
		t.Fatalf("env round trip: %+v vs %+v", got.Env, rep.Env)
	}
	r := got.Experiments[0].Records[0]
	if r.Stats.Median != 0.25 || r.Stats.BytesPerOp != 4096 || r.Stats.AllocsPerOp != 12 {
		t.Fatalf("stats round trip: %+v", r.Stats)
	}
	if p95 := r.Stats.P95; p95 < 0.46 || p95 > 0.47 {
		t.Fatalf("p95 round trip: %v", p95)
	}
}

func TestReadReportRejectsWrongSchemaVersion(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "r.json")
	if err := os.WriteFile(path, []byte(`{"schema_version": 999}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadReport(path); err == nil {
		t.Fatal("wrong schema version must be rejected")
	}
}

// TestReadReportRederivesStats: samples are authoritative — a hand-edited
// report (e.g. an injected 2× slowdown) must shift the derived medians.
func TestReadReportRederivesStats(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "r.json")
	rep := mkReport(multiCPU, Record{
		Name: "m", Unit: "s", Better: LowerIsBetter,
		Samples: []float64{2, 2, 2},
		Stats:   Stats{N: 3, Median: 1}, // stale, disagrees with samples
	})
	if err := rep.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if med := got.Experiments[0].Records[0].Stats.Median; med != 2 {
		t.Fatalf("stats not re-derived from samples: median %v", med)
	}
}
