// Package bench is the machine-readable benchmark-result subsystem of
// Deep500-Go (paper §III-C / §V-A: metrics, environment capture and
// statistically sound timing are first-class artifacts, not printf output).
//
// It provides three pieces:
//
//   - a JSON schema (Report / Experiment / Record) capturing the experiment
//     id, git revision, execution environment, per-metric raw samples with
//     warmup discard, and derived statistics (min/median/p95, MAD, FLOP/s,
//     bytes and allocations per operation);
//   - a Suite registry experiments register themselves into, replacing the
//     hardcoded id switch that used to live in cmd/d500bench; and
//   - a comparator (Compare) that classifies every metric of two reports as
//     improved / regressed / neutral using overlap of median±MAD windows
//     plus a configurable relative threshold — the CI regression gate.
package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"deep500/internal/metrics"
)

// SchemaVersion identifies the report layout. Bump it on any breaking field
// change; the golden-file test (schema_test.go) breaks loudly on accidental
// renames.
const SchemaVersion = 1

// Direction states which way a metric should move to count as an
// improvement. ReportOnly metrics are captured for the record but never
// gate a comparison.
type Direction string

const (
	LowerIsBetter  Direction = "lower"
	HigherIsBetter Direction = "higher"
	ReportOnly     Direction = "report"
)

// Report is the top-level benchmark artifact: one run of one or more
// experiments in one captured environment.
type Report struct {
	SchemaVersion int          `json:"schema_version"`
	Suite         string       `json:"suite"`
	CreatedAt     string       `json:"created_at,omitempty"` // RFC 3339 UTC
	Env           Environment  `json:"environment"`
	Experiments   []Experiment `json:"experiments"`
}

// Environment captures everything needed to judge whether two reports are
// comparable (paper challenge: reproducibility requires recording the
// conditions of the measurement, not just its outcome).
type Environment struct {
	GitRev      string `json:"git_rev,omitempty"`
	GoVersion   string `json:"go_version"`
	GOOS        string `json:"goos"`
	GOARCH      string `json:"goarch"`
	CPUModel    string `json:"cpu_model,omitempty"`
	NumCPU      int    `json:"num_cpu"`
	GOMAXPROCS  int    `json:"gomaxprocs"`
	ExecBackend string `json:"exec_backend,omitempty"`
	Arena       bool   `json:"arena"`
	Optimize    bool   `json:"optimize"`
	Gemm        string `json:"gemm,omitempty"`
	MemPlan     bool   `json:"mem_plan,omitempty"`
	Quick       bool   `json:"quick"`
	Seed        uint64 `json:"seed"`
}

// Experiment is the result of one registered experiment id.
type Experiment struct {
	ID      string   `json:"id"`
	Title   string   `json:"title,omitempty"`
	Records []Record `json:"records"`
	Notes   []string `json:"notes,omitempty"`
}

// Record is one metric series: raw post-warmup samples plus derived stats.
type Record struct {
	Name    string    `json:"name"`
	Unit    string    `json:"unit"`
	Better  Direction `json:"better"`
	Work    int64     `json:"work_flop,omitempty"`        // FLOPs per measured op
	Warmup  int       `json:"warmup_discarded,omitempty"` // samples discarded before recording
	Samples []float64 `json:"samples,omitempty"`
	Stats   Stats     `json:"stats"`
}

// Stats are the derived statistics of one record.
type Stats struct {
	N           int     `json:"n"`
	Min         float64 `json:"min"`
	Median      float64 `json:"median"`
	Mean        float64 `json:"mean"`
	P95         float64 `json:"p95"`
	Max         float64 `json:"max"`
	MAD         float64 `json:"mad"`
	CI95Low     float64 `json:"ci95_low"`
	CI95High    float64 `json:"ci95_high"`
	FLOPS       float64 `json:"flop_per_sec,omitempty"` // Work / median, for "s" records with Work set
	BytesPerOp  int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
}

// NewRecord builds a record from raw samples, deriving its statistics.
func NewRecord(name, unit string, better Direction, samples []float64) Record {
	r := Record{
		Name:    name,
		Unit:    unit,
		Better:  better,
		Samples: append([]float64(nil), samples...),
	}
	r.Finalize()
	return r
}

// Finalize (re)derives Stats from Samples, preserving the memory counters,
// and computes FLOP/s when the record is a timing with known work.
func (r *Record) Finalize() {
	bytesPerOp, allocsPerOp := r.Stats.BytesPerOp, r.Stats.AllocsPerOp
	s := metrics.Summarize(r.Samples)
	r.Stats = Stats{
		N:           s.N,
		Min:         s.Min,
		Median:      s.Median,
		Mean:        s.Mean,
		P95:         s.P95,
		Max:         s.Max,
		MAD:         s.MAD,
		CI95Low:     s.CI95Low,
		CI95High:    s.CI95High,
		BytesPerOp:  bytesPerOp,
		AllocsPerOp: allocsPerOp,
	}
	if r.Work > 0 && r.Unit == "s" && r.Stats.Median > 0 {
		r.Stats.FLOPS = float64(r.Work) / r.Stats.Median
	}
}

// WriteJSON writes the indented JSON form of the report.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteFile writes the report to path as JSON.
func (r *Report) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := r.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadReport loads a report from a JSON file, rejecting unknown schema
// versions so a stale baseline fails loudly instead of comparing garbage.
func ReadReport(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if r.SchemaVersion != SchemaVersion {
		return nil, fmt.Errorf("%s: schema version %d, want %d (refresh the baseline)",
			path, r.SchemaVersion, SchemaVersion)
	}
	// Re-derive stats from raw samples so the samples are authoritative:
	// a hand-edited report (e.g. an injected slowdown) or a schema-checked
	// baseline can never carry stats that disagree with its data.
	for i := range r.Experiments {
		for j := range r.Experiments[i].Records {
			if rec := &r.Experiments[i].Records[j]; len(rec.Samples) > 0 {
				rec.Finalize()
			}
		}
	}
	return &r, nil
}
