package bench

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"testing"
	"time"
)

func TestSuiteRegisterAndRun(t *testing.T) {
	s := NewSuite()
	s.Register(Definition{ID: "one", Title: "first", Run: func(c *Context) error {
		c.Out.Write([]byte("human output\n"))
		c.RecordValue("metric", "s", LowerIsBetter, 1.5)
		c.Note("note %d", 7)
		return nil
	}})
	s.Register(Definition{ID: "two", Run: func(c *Context) error {
		r := c.RecordSamples("dist", "s", LowerIsBetter, []float64{1, 2, 3})
		r.Warmup = 2
		return nil
	}})

	if got := s.IDs(); len(got) != 2 || got[0] != "one" || got[1] != "two" {
		t.Fatalf("ids: %v", got)
	}
	if !s.Has("one") || s.Has("absent") {
		t.Fatal("Has broken")
	}

	var human bytes.Buffer
	env := Environment{NumCPU: 4, ExecBackend: "sequential", Seed: 7}
	now := func() time.Time { return time.Date(2026, 7, 25, 12, 0, 0, 0, time.UTC) }
	rep, err := s.Run(context.Background(), []string{"one", "two"}, RunConfig{Out: &human, Env: env, Now: now})
	if err != nil {
		t.Fatal(err)
	}
	if rep.SchemaVersion != SchemaVersion || rep.Suite != "d500bench" {
		t.Fatalf("report header: %+v", rep)
	}
	if rep.CreatedAt != "2026-07-25T12:00:00Z" {
		t.Fatalf("created_at: %s", rep.CreatedAt)
	}
	if rep.Env.Seed != 7 || rep.Env.ExecBackend != "sequential" {
		t.Fatalf("env not stamped: %+v", rep.Env)
	}
	if !strings.Contains(human.String(), "human output") {
		t.Fatal("human writer not wired")
	}
	if len(rep.Experiments) != 2 {
		t.Fatalf("experiments: %+v", rep.Experiments)
	}
	one := rep.Experiments[0]
	if one.ID != "one" || one.Title != "first" || len(one.Records) != 1 || len(one.Notes) != 1 {
		t.Fatalf("experiment one: %+v", one)
	}
	if one.Records[0].Stats.Median != 1.5 {
		t.Fatalf("stats: %+v", one.Records[0].Stats)
	}
	two := rep.Experiments[1]
	if two.Records[0].Warmup != 2 || two.Records[0].Stats.N != 3 || two.Records[0].Stats.Median != 2 {
		t.Fatalf("experiment two: %+v", two.Records[0])
	}
}

func TestSuiteDuplicateRegistrationPanics(t *testing.T) {
	s := NewSuite()
	run := func(*Context) error { return nil }
	s.Register(Definition{ID: "dup", Run: run})
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration must panic")
		}
	}()
	s.Register(Definition{ID: "dup", Run: run})
}

func TestSuiteUnknownIDFails(t *testing.T) {
	s := NewSuite()
	s.Register(Definition{ID: "known", Run: func(*Context) error { return nil }})
	if _, err := s.Run(context.Background(), []string{"missing"}, RunConfig{}); err == nil {
		t.Fatal("unknown id must error")
	}
}

func TestSuiteErrorKeepsPartialResults(t *testing.T) {
	s := NewSuite()
	s.Register(Definition{ID: "good", Run: func(c *Context) error {
		c.RecordValue("v", "s", LowerIsBetter, 1)
		return nil
	}})
	boom := errors.New("boom")
	s.Register(Definition{ID: "bad", Run: func(*Context) error { return boom }})
	rep, err := s.Run(context.Background(), []string{"good", "bad"}, RunConfig{})
	if !errors.Is(err, boom) {
		t.Fatalf("err: %v", err)
	}
	if len(rep.Experiments) != 1 || rep.Experiments[0].ID != "good" {
		t.Fatalf("partial results lost: %+v", rep.Experiments)
	}
}

func TestSuiteDeadlineExceededStopsRun(t *testing.T) {
	s := NewSuite()
	ran := 0
	slow := func(c *Context) error {
		ran++
		// Well-behaved experiments observe Context.Ctx mid-experiment.
		return c.Ctx.Err()
	}
	s.Register(Definition{ID: "a", Run: slow})
	s.Register(Definition{ID: "b", Run: slow})
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Millisecond))
	defer cancel()
	rep, err := s.Run(ctx, []string{"a", "b"}, RunConfig{})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want DeadlineExceeded, got %v", err)
	}
	if ran != 0 {
		t.Fatalf("%d experiments ran past an expired deadline", ran)
	}
	if len(rep.Experiments) != 0 {
		t.Fatalf("report should hold no completed experiments: %+v", rep.Experiments)
	}
}

func TestSuiteCancelBetweenExperiments(t *testing.T) {
	s := NewSuite()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	s.Register(Definition{ID: "first", Run: func(c *Context) error {
		c.RecordValue("v", "s", LowerIsBetter, 1)
		cancel() // the run must stop before the next experiment
		return nil
	}})
	s.Register(Definition{ID: "second", Run: func(*Context) error {
		t.Fatal("second experiment ran after cancellation")
		return nil
	}})
	rep, err := s.Run(ctx, []string{"first", "second"}, RunConfig{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want Canceled, got %v", err)
	}
	if len(rep.Experiments) != 1 {
		t.Fatalf("partial results lost: %+v", rep.Experiments)
	}
}

func TestSuiteObserveStreamsRecords(t *testing.T) {
	s := NewSuite()
	s.Register(Definition{ID: "exp", Run: func(c *Context) error {
		c.RecordValue("m1", "s", LowerIsBetter, 1)
		c.RecordSamples("m2", "B", HigherIsBetter, []float64{1, 2, 3})
		return nil
	}})
	type obs struct {
		id, name string
		median   float64
	}
	var seen []obs
	_, err := s.Run(context.Background(), []string{"exp"}, RunConfig{
		Observe: func(id string, r Record) {
			seen = append(seen, obs{id, r.Name, r.Stats.Median})
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != 2 || seen[0] != (obs{"exp", "m1", 1}) || seen[1] != (obs{"exp", "m2", 2}) {
		t.Fatalf("observed: %+v", seen)
	}
}

func TestRecordFLOPSDerivation(t *testing.T) {
	r := NewRecord("gemm", "s", LowerIsBetter, []float64{0.5})
	r.Work = 1_000_000
	r.Finalize()
	if r.Stats.FLOPS != 2_000_000 {
		t.Fatalf("FLOPS: %v", r.Stats.FLOPS)
	}
	// FLOP/s only makes sense for timings.
	c := NewRecord("count", "rows", HigherIsBetter, []float64{10})
	c.Work = 100
	c.Finalize()
	if c.Stats.FLOPS != 0 {
		t.Fatalf("non-timing FLOPS: %v", c.Stats.FLOPS)
	}
}
