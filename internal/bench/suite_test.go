package bench

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"time"
)

func TestSuiteRegisterAndRun(t *testing.T) {
	s := NewSuite()
	s.Register(Definition{ID: "one", Title: "first", Run: func(c *Context) error {
		c.Out.Write([]byte("human output\n"))
		c.RecordValue("metric", "s", LowerIsBetter, 1.5)
		c.Note("note %d", 7)
		return nil
	}})
	s.Register(Definition{ID: "two", Run: func(c *Context) error {
		r := c.RecordSamples("dist", "s", LowerIsBetter, []float64{1, 2, 3})
		r.Warmup = 2
		return nil
	}})

	if got := s.IDs(); len(got) != 2 || got[0] != "one" || got[1] != "two" {
		t.Fatalf("ids: %v", got)
	}
	if !s.Has("one") || s.Has("absent") {
		t.Fatal("Has broken")
	}

	var human bytes.Buffer
	env := Environment{NumCPU: 4, ExecBackend: "sequential", Seed: 7}
	now := func() time.Time { return time.Date(2026, 7, 25, 12, 0, 0, 0, time.UTC) }
	rep, err := s.Run([]string{"one", "two"}, RunConfig{Out: &human, Env: env, Now: now})
	if err != nil {
		t.Fatal(err)
	}
	if rep.SchemaVersion != SchemaVersion || rep.Suite != "d500bench" {
		t.Fatalf("report header: %+v", rep)
	}
	if rep.CreatedAt != "2026-07-25T12:00:00Z" {
		t.Fatalf("created_at: %s", rep.CreatedAt)
	}
	if rep.Env.Seed != 7 || rep.Env.ExecBackend != "sequential" {
		t.Fatalf("env not stamped: %+v", rep.Env)
	}
	if !strings.Contains(human.String(), "human output") {
		t.Fatal("human writer not wired")
	}
	if len(rep.Experiments) != 2 {
		t.Fatalf("experiments: %+v", rep.Experiments)
	}
	one := rep.Experiments[0]
	if one.ID != "one" || one.Title != "first" || len(one.Records) != 1 || len(one.Notes) != 1 {
		t.Fatalf("experiment one: %+v", one)
	}
	if one.Records[0].Stats.Median != 1.5 {
		t.Fatalf("stats: %+v", one.Records[0].Stats)
	}
	two := rep.Experiments[1]
	if two.Records[0].Warmup != 2 || two.Records[0].Stats.N != 3 || two.Records[0].Stats.Median != 2 {
		t.Fatalf("experiment two: %+v", two.Records[0])
	}
}

func TestSuiteDuplicateRegistrationPanics(t *testing.T) {
	s := NewSuite()
	run := func(*Context) error { return nil }
	s.Register(Definition{ID: "dup", Run: run})
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration must panic")
		}
	}()
	s.Register(Definition{ID: "dup", Run: run})
}

func TestSuiteUnknownIDFails(t *testing.T) {
	s := NewSuite()
	s.Register(Definition{ID: "known", Run: func(*Context) error { return nil }})
	if _, err := s.Run([]string{"missing"}, RunConfig{}); err == nil {
		t.Fatal("unknown id must error")
	}
}

func TestSuiteErrorKeepsPartialResults(t *testing.T) {
	s := NewSuite()
	s.Register(Definition{ID: "good", Run: func(c *Context) error {
		c.RecordValue("v", "s", LowerIsBetter, 1)
		return nil
	}})
	boom := errors.New("boom")
	s.Register(Definition{ID: "bad", Run: func(*Context) error { return boom }})
	rep, err := s.Run([]string{"good", "bad"}, RunConfig{})
	if !errors.Is(err, boom) {
		t.Fatalf("err: %v", err)
	}
	if len(rep.Experiments) != 1 || rep.Experiments[0].ID != "good" {
		t.Fatalf("partial results lost: %+v", rep.Experiments)
	}
}

func TestRecordFLOPSDerivation(t *testing.T) {
	r := NewRecord("gemm", "s", LowerIsBetter, []float64{0.5})
	r.Work = 1_000_000
	r.Finalize()
	if r.Stats.FLOPS != 2_000_000 {
		t.Fatalf("FLOPS: %v", r.Stats.FLOPS)
	}
	// FLOP/s only makes sense for timings.
	c := NewRecord("count", "rows", HigherIsBetter, []float64{10})
	c.Work = 100
	c.Finalize()
	if c.Stats.FLOPS != 0 {
		t.Fatalf("non-timing FLOPS: %v", c.Stats.FLOPS)
	}
}
