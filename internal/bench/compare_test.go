package bench

import (
	"bytes"
	"strings"
	"testing"
)

// multiCPU is an environment where wall-clock comparisons are sound.
var multiCPU = Environment{NumCPU: 8, GOMAXPROCS: 8, CPUModel: "testcpu"}

func mkReport(env Environment, recs ...Record) *Report {
	return &Report{
		SchemaVersion: SchemaVersion,
		Suite:         "d500bench",
		Env:           env,
		Experiments:   []Experiment{{ID: "exp", Records: recs}},
	}
}

func delta(t *testing.T, c *Comparison, metric string) Delta {
	t.Helper()
	for _, d := range c.Deltas {
		if d.Metric == metric {
			return d
		}
	}
	t.Fatalf("metric %q not in deltas: %+v", metric, c.Deltas)
	return Delta{}
}

func TestCompareClassifiesLowerIsBetter(t *testing.T) {
	oldR := mkReport(multiCPU,
		NewRecord("time", "s", LowerIsBetter, []float64{1, 1, 1}),
		NewRecord("slow", "s", LowerIsBetter, []float64{1, 1, 1}),
		NewRecord("steady", "s", LowerIsBetter, []float64{1, 1, 1}))
	newR := mkReport(multiCPU,
		NewRecord("time", "s", LowerIsBetter, []float64{0.4, 0.4, 0.4}),
		NewRecord("slow", "s", LowerIsBetter, []float64{2, 2, 2}),
		NewRecord("steady", "s", LowerIsBetter, []float64{1.05, 1.05, 1.05}))
	c := Compare(oldR, newR, CompareConfig{})
	if got := delta(t, c, "time").Class; got != ClassImproved {
		t.Fatalf("time: %v", got)
	}
	if got := delta(t, c, "slow").Class; got != ClassRegressed {
		t.Fatalf("slow: %v", got)
	}
	if got := delta(t, c, "steady").Class; got != ClassNeutral {
		t.Fatalf("steady: %v", got)
	}
	if c.Improved != 1 || c.Regressed != 1 || c.Neutral != 1 {
		t.Fatalf("counts: %+v", c)
	}
}

func TestCompareClassifiesHigherIsBetter(t *testing.T) {
	oldR := mkReport(multiCPU,
		NewRecord("tput", "img/s", HigherIsBetter, []float64{100}),
		NewRecord("acc", "frac", HigherIsBetter, []float64{0.9}))
	newR := mkReport(multiCPU,
		NewRecord("tput", "img/s", HigherIsBetter, []float64{50}),
		NewRecord("acc", "frac", HigherIsBetter, []float64{1.8}))
	c := Compare(oldR, newR, CompareConfig{})
	if got := delta(t, c, "tput").Class; got != ClassRegressed {
		t.Fatalf("tput: %v", got)
	}
	if got := delta(t, c, "acc").Class; got != ClassImproved {
		t.Fatalf("acc: %v", got)
	}
}

func TestCompareMADWindowOverlapIsNeutral(t *testing.T) {
	// 30% median shift, but both windows are wide (MAD 0.4): within noise.
	oldR := mkReport(multiCPU, NewRecord("noisy", "s", LowerIsBetter, []float64{0.6, 1.0, 1.4}))
	newR := mkReport(multiCPU, NewRecord("noisy", "s", LowerIsBetter, []float64{0.9, 1.3, 1.7}))
	c := Compare(oldR, newR, CompareConfig{})
	d := delta(t, c, "noisy")
	if d.Class != ClassNeutral || !strings.Contains(d.Reason, "noise") {
		t.Fatalf("want neutral/noise, got %+v", d)
	}
}

func TestCompareThresholdConfigurable(t *testing.T) {
	oldR := mkReport(multiCPU, NewRecord("m", "s", LowerIsBetter, []float64{1, 1, 1}))
	newR := mkReport(multiCPU, NewRecord("m", "s", LowerIsBetter, []float64{1.4, 1.4, 1.4}))
	if c := Compare(oldR, newR, CompareConfig{}); delta(t, c, "m").Class != ClassRegressed {
		t.Fatal("40% over default threshold should regress")
	}
	if c := Compare(oldR, newR, CompareConfig{Threshold: 0.5}); delta(t, c, "m").Class != ClassNeutral {
		t.Fatal("40% under a 50% threshold should be neutral")
	}
}

func TestCompareZeroSamples(t *testing.T) {
	oldR := mkReport(multiCPU, NewRecord("empty", "s", LowerIsBetter, nil))
	newR := mkReport(multiCPU, NewRecord("empty", "s", LowerIsBetter, []float64{5}))
	c := Compare(oldR, newR, CompareConfig{})
	d := delta(t, c, "empty")
	if d.Class != ClassNeutral || !strings.Contains(d.Reason, "zero samples") {
		t.Fatalf("want neutral/zero samples, got %+v", d)
	}
	if c.Regressed != 0 {
		t.Fatal("zero-sample records must never gate")
	}
}

func TestCompareReportOnlyNeverGates(t *testing.T) {
	oldR := mkReport(multiCPU, NewRecord("info", "ratio", ReportOnly, []float64{0.01}))
	newR := mkReport(multiCPU, NewRecord("info", "ratio", ReportOnly, []float64{10}))
	c := Compare(oldR, newR, CompareConfig{})
	if d := delta(t, c, "info"); d.Class != ClassNeutral {
		t.Fatalf("report-only metric classified %v", d.Class)
	}
}

func TestCompareMismatchedExperimentsListedNotFailed(t *testing.T) {
	oldR := &Report{SchemaVersion: SchemaVersion, Env: multiCPU, Experiments: []Experiment{
		{ID: "a", Records: []Record{NewRecord("m", "s", LowerIsBetter, []float64{1})}},
	}}
	newR := &Report{SchemaVersion: SchemaVersion, Env: multiCPU, Experiments: []Experiment{
		{ID: "b", Records: []Record{NewRecord("m", "s", LowerIsBetter, []float64{9})}},
	}}
	c := Compare(oldR, newR, CompareConfig{})
	if len(c.Deltas) != 0 {
		t.Fatalf("no metric overlaps, deltas: %+v", c.Deltas)
	}
	if c.Regressed != 0 {
		t.Fatal("disjoint reports must not regress")
	}
	if len(c.OnlyOld) != 1 || c.OnlyOld[0] != "a/m" {
		t.Fatalf("OnlyOld: %v", c.OnlyOld)
	}
	if len(c.OnlyNew) != 1 || c.OnlyNew[0] != "b/m" {
		t.Fatalf("OnlyNew: %v", c.OnlyNew)
	}
}

// TestCompareSingleCPUSkipsWallClock pins the CI de-flake contract: on a
// single-CPU environment wall-clock metrics are report-only, while
// non-time metrics keep gating.
func TestCompareSingleCPUSkipsWallClock(t *testing.T) {
	oneCPU := Environment{NumCPU: 1, GOMAXPROCS: 1, CPUModel: "testcpu"}
	oldR := mkReport(oneCPU,
		NewRecord("time", "s", LowerIsBetter, []float64{1}),
		NewRecord("count", "rows", HigherIsBetter, []float64{10}))
	newR := mkReport(oneCPU,
		NewRecord("time", "s", LowerIsBetter, []float64{5}),
		NewRecord("count", "rows", HigherIsBetter, []float64{4}))
	c := Compare(oldR, newR, CompareConfig{})
	d := delta(t, c, "time")
	if d.Class != ClassNeutral || !strings.Contains(d.Reason, "single-CPU") {
		t.Fatalf("want wall-clock skip, got %+v", d)
	}
	if delta(t, c, "count").Class != ClassRegressed {
		t.Fatal("non-time metrics must still gate on single-CPU environments")
	}
}

// TestCompareCrossMachineSkipsWallClock: a wall-clock delta between two CPU
// models measures the hardware, not the code.
func TestCompareCrossMachineSkipsWallClock(t *testing.T) {
	envA := Environment{NumCPU: 8, CPUModel: "cpu-a"}
	envB := Environment{NumCPU: 8, CPUModel: "cpu-b"}
	oldR := mkReport(envA, NewRecord("time", "s", LowerIsBetter, []float64{1}))
	newR := mkReport(envB, NewRecord("time", "s", LowerIsBetter, []float64{5}))
	c := Compare(oldR, newR, CompareConfig{})
	if d := delta(t, c, "time"); d.Class != ClassNeutral {
		t.Fatalf("cross-machine wall clock gated: %+v", d)
	}
	if len(c.Notes) == 0 {
		t.Fatal("expected a comparison note explaining the skip")
	}
}

// TestCompareSingleWallClockSampleIsReportOnly: one-shot timings carry no
// dispersion estimate, so they must never gate; deterministic non-time
// single observations still do.
func TestCompareSingleWallClockSampleIsReportOnly(t *testing.T) {
	oldR := mkReport(multiCPU,
		NewRecord("oneshot", "s", LowerIsBetter, []float64{1}),
		NewRecord("tput", "img/s", HigherIsBetter, []float64{100}))
	newR := mkReport(multiCPU,
		NewRecord("oneshot", "s", LowerIsBetter, []float64{5}),
		NewRecord("tput", "img/s", HigherIsBetter, []float64{10}))
	c := Compare(oldR, newR, CompareConfig{})
	d := delta(t, c, "oneshot")
	if d.Class != ClassNeutral || !strings.Contains(d.Reason, "single wall-clock sample") {
		t.Fatalf("want single-sample skip, got %+v", d)
	}
	if delta(t, c, "tput").Class != ClassRegressed {
		t.Fatal("deterministic single observations must still gate")
	}
}

func TestCompareRenderAndJSON(t *testing.T) {
	oldR := mkReport(multiCPU, NewRecord("m", "s", LowerIsBetter, []float64{1, 1, 1}))
	newR := mkReport(multiCPU, NewRecord("m", "s", LowerIsBetter, []float64{3, 3, 3}))
	c := Compare(oldR, newR, CompareConfig{})
	var human, js bytes.Buffer
	c.Render(&human)
	if !strings.Contains(human.String(), "regressed") {
		t.Fatalf("render output: %s", human.String())
	}
	if err := c.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(js.String(), `"class": "regressed"`) {
		t.Fatalf("json output: %s", js.String())
	}
}
