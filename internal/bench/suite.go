package bench

import (
	"context"
	"fmt"
	"io"
	"time"
)

// RunFunc executes one experiment: it renders human output to ctx.Out and
// emits machine-readable records through the ctx recording API.
type RunFunc func(ctx *Context) error

// Definition is one registered experiment.
type Definition struct {
	ID    string
	Title string
	Run   RunFunc
}

// Suite is the experiment registry: experiments register themselves instead
// of being a hardcoded id list in cmd/d500bench.
type Suite struct {
	defs []Definition
	byID map[string]int
}

// NewSuite returns an empty registry.
func NewSuite() *Suite {
	return &Suite{byID: map[string]int{}}
}

// Register adds an experiment. Duplicate or empty ids and nil run functions
// are programming errors and panic at startup.
func (s *Suite) Register(d Definition) {
	if d.ID == "" || d.Run == nil {
		panic("bench: Register requires an id and a run function")
	}
	if _, dup := s.byID[d.ID]; dup {
		panic(fmt.Sprintf("bench: experiment %q registered twice", d.ID))
	}
	s.byID[d.ID] = len(s.defs)
	s.defs = append(s.defs, d)
}

// IDs returns every registered experiment id in registration order.
func (s *Suite) IDs() []string {
	out := make([]string, len(s.defs))
	for i, d := range s.defs {
		out[i] = d.ID
	}
	return out
}

// Has reports whether id is registered.
func (s *Suite) Has(id string) bool {
	_, ok := s.byID[id]
	return ok
}

// Lookup returns the definition for id.
func (s *Suite) Lookup(id string) (Definition, bool) {
	i, ok := s.byID[id]
	if !ok {
		return Definition{}, false
	}
	return s.defs[i], true
}

// RunConfig configures one suite run.
type RunConfig struct {
	// Out receives the human-readable rendering (tables); nil discards it,
	// which is what -format json uses.
	Out io.Writer
	// Env is stamped into the report; callers fill the harness-controlled
	// fields (ExecBackend, Arena, Quick, Seed) on top of CaptureEnv().
	Env Environment
	// Now overrides the report clock (tests); nil uses time.Now.
	Now func() time.Time
	// Observe, when non-nil, is invoked for every record an experiment
	// appends, as it is appended — the hook the d500 event stream consumes
	// to surface BenchSample events while the suite is still running.
	Observe func(experimentID string, r Record)
}

// Run executes the named experiments in order and assembles the report.
// The context is checked before each experiment, so cancellation or an
// expired deadline stops the suite at an experiment boundary and is also
// visible to experiments through Context.Ctx. Experiments that were run
// before an error occurred stay in the returned report so partial results
// are not lost.
func (s *Suite) Run(ctx context.Context, ids []string, cfg RunConfig) (*Report, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	out := cfg.Out
	if out == nil {
		out = io.Discard
	}
	now := cfg.Now
	if now == nil {
		now = time.Now
	}
	rep := &Report{
		SchemaVersion: SchemaVersion,
		Suite:         "d500bench",
		CreatedAt:     now().UTC().Format(time.RFC3339),
		Env:           cfg.Env,
	}
	for _, id := range ids {
		if err := ctx.Err(); err != nil {
			return rep, err
		}
		def, ok := s.Lookup(id)
		if !ok {
			return rep, fmt.Errorf("unknown experiment %q (known: %v)", id, s.IDs())
		}
		c := &Context{Ctx: ctx, Out: out, observe: cfg.Observe, exp: Experiment{ID: def.ID, Title: def.Title}}
		if err := def.Run(c); err != nil {
			return rep, fmt.Errorf("%s: %w", id, err)
		}
		rep.Experiments = append(rep.Experiments, c.exp)
	}
	return rep, nil
}

// Context is handed to each experiment's RunFunc: human output plus the
// record sink for the machine-readable report.
type Context struct {
	// Ctx is the run's context; experiments that execute graphs or training
	// loops must pass it down so cancellation propagates mid-experiment.
	Ctx context.Context
	// Out is where tables render in text mode (io.Discard in json mode).
	Out io.Writer

	observe func(experimentID string, r Record)
	exp     Experiment
}

// Record appends a fully built record and returns a pointer to the stored
// copy so the caller can attach Work, Warmup or memory counters; use the
// pointer before the next append.
func (c *Context) Record(r Record) *Record {
	c.exp.Records = append(c.exp.Records, r)
	if c.observe != nil {
		c.observe(c.exp.ID, r)
	}
	return &c.exp.Records[len(c.exp.Records)-1]
}

// RecordSamples derives stats from samples and appends the record.
func (c *Context) RecordSamples(name, unit string, better Direction, samples []float64) *Record {
	return c.Record(NewRecord(name, unit, better, samples))
}

// RecordValue appends a single-observation record (deterministic counts,
// final accuracies, simulated-clock results).
func (c *Context) RecordValue(name, unit string, better Direction, v float64) *Record {
	return c.RecordSamples(name, unit, better, []float64{v})
}

// Note attaches a free-form note to the experiment.
func (c *Context) Note(format string, args ...any) {
	c.exp.Notes = append(c.exp.Notes, fmt.Sprintf(format, args...))
}
