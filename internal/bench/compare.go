package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strings"
)

// DefaultThreshold is the relative median change a metric must exceed —
// on top of disjoint median±MAD windows — to be classified as improved or
// regressed. 20% matches the CI gate in .github/workflows/ci.yml.
const DefaultThreshold = 0.20

// Class is the comparator's verdict for one metric.
type Class string

const (
	ClassImproved  Class = "improved"
	ClassRegressed Class = "regressed"
	ClassNeutral   Class = "neutral"
)

// CompareConfig tunes the significance check.
type CompareConfig struct {
	// Threshold is the minimum relative median change (|new-old|/old) for a
	// classification; 0 means DefaultThreshold.
	Threshold float64
}

// Delta is the comparison of one metric present in both reports.
type Delta struct {
	Experiment string  `json:"experiment"`
	Metric     string  `json:"metric"`
	Unit       string  `json:"unit"`
	OldMedian  float64 `json:"old_median"`
	NewMedian  float64 `json:"new_median"`
	Change     float64 `json:"change"` // (new-old)/old
	Class      Class   `json:"class"`
	Reason     string  `json:"reason,omitempty"`
}

// Comparison is the full machine-readable diff of two reports.
type Comparison struct {
	Threshold float64  `json:"threshold"`
	Deltas    []Delta  `json:"deltas"`
	OnlyOld   []string `json:"only_in_old,omitempty"`
	OnlyNew   []string `json:"only_in_new,omitempty"`
	Improved  int      `json:"improved"`
	Regressed int      `json:"regressed"`
	Neutral   int      `json:"neutral"`
	Notes     []string `json:"notes,omitempty"`
}

// Compare classifies every metric present in both reports. A metric is
// significant only when its relative median change exceeds the threshold
// AND the median±MAD windows of the two sample sets do not overlap; the
// sign of the change and the record's Direction decide improved vs
// regressed. Metrics present in only one report are listed, not failed, so
// adding or retiring an experiment never breaks the gate by itself.
//
// Wall-clock ("s"-unit) metrics are demoted to report-only — classified
// neutral with a reason — when the two environments are not comparable:
// either side measured on fewer than 2 CPUs (quick-mode CI de-flake; the
// parallel machinery degenerates there and timings carry no signal), or
// the reports come from different CPU models or core counts, where a
// wall-clock delta measures the hardware, not the code. The same demotion
// applies to wall-clock records with a single sample on either side: with
// no dispersion estimate the significance test cannot run, and one-shot
// timing jitter must never fail the gate.
func Compare(oldR, newR *Report, cfg CompareConfig) *Comparison {
	threshold := cfg.Threshold
	if threshold <= 0 {
		threshold = DefaultThreshold
	}
	cmp := &Comparison{Threshold: threshold}

	wallClockReason := wallClockSkipReason(oldR.Env, newR.Env)
	if wallClockReason != "" {
		cmp.Notes = append(cmp.Notes, "wall-clock metrics report-only: "+wallClockReason)
	}

	newIdx := indexRecords(newR)
	seen := map[string]bool{}
	for _, exp := range oldR.Experiments {
		for _, oldRec := range exp.Records {
			key := exp.ID + "/" + oldRec.Name
			newRec, ok := newIdx[key]
			if !ok {
				cmp.OnlyOld = append(cmp.OnlyOld, key)
				continue
			}
			seen[key] = true
			d := classify(exp.ID, oldRec, *newRec, threshold, wallClockReason)
			cmp.Deltas = append(cmp.Deltas, d)
			switch d.Class {
			case ClassImproved:
				cmp.Improved++
			case ClassRegressed:
				cmp.Regressed++
			default:
				cmp.Neutral++
			}
		}
	}
	for _, exp := range newR.Experiments {
		for _, rec := range exp.Records {
			if key := exp.ID + "/" + rec.Name; !seen[key] {
				cmp.OnlyNew = append(cmp.OnlyNew, key)
			}
		}
	}
	return cmp
}

func indexRecords(r *Report) map[string]*Record {
	idx := map[string]*Record{}
	for i := range r.Experiments {
		exp := &r.Experiments[i]
		for j := range exp.Records {
			idx[exp.ID+"/"+exp.Records[j].Name] = &exp.Records[j]
		}
	}
	return idx
}

// wallClockSkipReason decides whether wall-clock comparisons between the
// two environments are sound; empty means they are.
func wallClockSkipReason(a, b Environment) string {
	if a.NumCPU > 0 && a.NumCPU < 2 || b.NumCPU > 0 && b.NumCPU < 2 {
		return "single-CPU environment"
	}
	if a.CPUModel != "" && b.CPUModel != "" && a.CPUModel != b.CPUModel {
		return fmt.Sprintf("CPU model differs (%q vs %q)", a.CPUModel, b.CPUModel)
	}
	if a.NumCPU > 0 && b.NumCPU > 0 && a.NumCPU != b.NumCPU {
		return fmt.Sprintf("CPU count differs (%d vs %d)", a.NumCPU, b.NumCPU)
	}
	return ""
}

func classify(expID string, oldRec, newRec Record, threshold float64, wallClockReason string) Delta {
	d := Delta{
		Experiment: expID,
		Metric:     oldRec.Name,
		Unit:       oldRec.Unit,
		OldMedian:  oldRec.Stats.Median,
		NewMedian:  newRec.Stats.Median,
		Class:      ClassNeutral,
	}
	if oldRec.Stats.Median != 0 {
		d.Change = (newRec.Stats.Median - oldRec.Stats.Median) / math.Abs(oldRec.Stats.Median)
	}
	switch {
	case oldRec.Stats.N == 0 || newRec.Stats.N == 0:
		d.Reason = "zero samples"
		return d
	case oldRec.Better == ReportOnly || newRec.Better == ReportOnly:
		d.Reason = "report-only metric"
		return d
	case oldRec.Unit == "s" && wallClockReason != "":
		d.Reason = "wall-clock comparison skipped: " + wallClockReason
		return d
	case oldRec.Unit == "s" && (oldRec.Stats.N < 2 || newRec.Stats.N < 2):
		// A lone wall-clock observation has no dispersion estimate, so the
		// median±MAD significance test cannot run; one-shot timing jitter
		// must never fail the gate. (Deterministic non-time metrics still
		// gate at N=1.)
		d.Reason = "single wall-clock sample (no dispersion estimate)"
		return d
	case oldRec.Stats.Median == 0 && newRec.Stats.Median == 0:
		return d
	}
	// Significance: the median±MAD windows must be disjoint…
	oldLo, oldHi := oldRec.Stats.Median-oldRec.Stats.MAD, oldRec.Stats.Median+oldRec.Stats.MAD
	newLo, newHi := newRec.Stats.Median-newRec.Stats.MAD, newRec.Stats.Median+newRec.Stats.MAD
	if newLo <= oldHi && oldLo <= newHi {
		d.Reason = "within noise (median±MAD windows overlap)"
		return d
	}
	// …and the relative change must clear the threshold. A zero old median
	// with a nonzero new one is treated as an unbounded change.
	rel := d.Change
	if oldRec.Stats.Median == 0 {
		rel = math.Inf(1)
		if newRec.Stats.Median < 0 {
			rel = math.Inf(-1)
		}
		d.Change = rel
	}
	if math.Abs(rel) <= threshold {
		d.Reason = fmt.Sprintf("change %.1f%% within threshold", rel*100)
		return d
	}
	gotWorse := rel > 0
	if oldRec.Better == HigherIsBetter {
		gotWorse = rel < 0
	}
	if gotWorse {
		d.Class = ClassRegressed
	} else {
		d.Class = ClassImproved
	}
	return d
}

// Render writes the human-readable comparison.
func (c *Comparison) Render(w io.Writer) {
	fmt.Fprintf(w, "\n== bench compare (threshold %.0f%%) ==\n", c.Threshold*100)
	for _, n := range c.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	rows := [][]string{{"Experiment", "Metric", "Unit", "Old", "New", "Change", "Class"}}
	for _, d := range c.Deltas {
		change := "n/a"
		if !math.IsInf(d.Change, 0) {
			change = fmt.Sprintf("%+.1f%%", d.Change*100)
		}
		rows = append(rows, []string{d.Experiment, d.Metric, d.Unit,
			fmt.Sprintf("%.4g", d.OldMedian), fmt.Sprintf("%.4g", d.NewMedian),
			change, string(d.Class)})
	}
	widths := make([]int, len(rows[0]))
	for _, r := range rows {
		for i, cell := range r {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	for _, r := range rows {
		parts := make([]string, len(r))
		for i, cell := range r {
			parts[i] = cell + strings.Repeat(" ", widths[i]-len(cell))
		}
		fmt.Fprintln(w, "  "+strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	for _, k := range c.OnlyOld {
		fmt.Fprintf(w, "  only in old report: %s\n", k)
	}
	for _, k := range c.OnlyNew {
		fmt.Fprintf(w, "  only in new report: %s\n", k)
	}
	fmt.Fprintf(w, "  summary: %d improved, %d regressed, %d neutral\n",
		c.Improved, c.Regressed, c.Neutral)
}

// WriteJSON writes the machine-readable comparison.
func (c *Comparison) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(c)
}
