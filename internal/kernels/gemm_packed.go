package kernels

// BLIS-style packed GEMM. The operand matrices are repacked into
// cache-resident panels before any arithmetic happens:
//
//   - A is packed into row panels of packMR rows, stored k-major: panel ip
//     holds rows [ip·MR, ip·MR+MR) with layout dst[p*MR+r] = A[i0+ip*MR+r, p],
//     so the micro-kernel reads one contiguous MR-vector per k step.
//   - B is packed into column panels of packNR columns, stored k-major:
//     dst[p*NR+j] = B[p, j0+jp*NR+j], one contiguous NR-vector per k step.
//
// Because packing re-gathers elements anyway, transposed operands cost
// nothing extra: packA/packB just swap their index arithmetic, which is why
// GemmTransA / GemmTransB route here and stop paying for strided access.
// Edge panels are zero-padded in both the row/column and depth directions,
// so the micro-kernel never branches on bounds and its unrolled k loop
// needs no remainder handling.
//
// The micro-tile is 2×4 with the k loop unrolled ×4 — deliberately small:
// gc has 16 XMM registers and no auto-vectorization, so 8 accumulators
// plus the a/b temporaries is the largest shape that stays spill-free
// (4×8 and even 4×4 tiles spill half their accumulators to the stack and
// run slower than the plain blocked loop). See docs/kernels.md for the
// measurements and re-tuning guidance.
const (
	packMR = 2   // micro-tile rows (accumulator rows)
	packNR = 4   // micro-tile cols (accumulator cols)
	packKU = 4   // k-loop unroll; packed depth is padded to a multiple
	packMC = 128 // rows of A packed per block (block fits L2)
	packKC = 256 // depth of one packed block (panels stay L1-resident)
	packNC = 2048
)

// packedMinVol is the m·k·n volume below which packing overhead outweighs
// the micro-kernel win and callers fall back to the simple loops.
const packedMinVol = 32 * 32 * 32

// kcAligned rounds a depth up to the micro-kernel's unroll factor.
func kcAligned(kc int) int { return (kc + packKU - 1) / packKU * packKU }

// packAPanels packs the mc×kc block of A starting at logical (i0, p0) into
// MR-row panels of padded depth kcAligned(kc). A is m×k row-major, or its
// k×m transpose when trans is set; lda is the stored row stride. Rows past
// mc and depth past kc are zero-filled.
func packAPanels(a []float32, lda, i0, p0, mc, kc int, trans bool, dst []float32) {
	ka := kcAligned(kc)
	panels := (mc + packMR - 1) / packMR
	for ip := 0; ip < panels; ip++ {
		rows := min(packMR, mc-ip*packMR)
		panel := dst[ip*packMR*ka : (ip+1)*packMR*ka]
		if trans {
			// A stored k×m: element (i, p) lives at a[p*lda+i]; reading r
			// (the row of the logical block) is contiguous and matches the
			// panel layout, so both sides stream.
			for p := 0; p < kc; p++ {
				src := a[(p0+p)*lda+i0+ip*packMR:]
				d := panel[p*packMR : p*packMR+packMR]
				for r := 0; r < rows; r++ {
					d[r] = src[r]
				}
				for r := rows; r < packMR; r++ {
					d[r] = 0
				}
			}
		} else {
			for r := 0; r < rows; r++ {
				src := a[(i0+ip*packMR+r)*lda+p0:]
				for p := 0; p < kc; p++ {
					panel[p*packMR+r] = src[p]
				}
			}
			for r := rows; r < packMR; r++ {
				for p := 0; p < kc; p++ {
					panel[p*packMR+r] = 0
				}
			}
		}
		for i := kc * packMR; i < ka*packMR; i++ {
			panel[i] = 0
		}
	}
}

// packBPanels packs the kc×nc block of B starting at logical (p0, j0) into
// NR-column panels of padded depth kcAligned(kc). B is k×n row-major, or
// its n×k transpose when trans is set; ldb is the stored row stride.
// Columns past nc and depth past kc are zero-filled.
func packBPanels(b []float32, ldb, p0, j0, kc, nc int, trans bool, dst []float32) {
	ka := kcAligned(kc)
	panels := (nc + packNR - 1) / packNR
	for jp := 0; jp < panels; jp++ {
		cols := min(packNR, nc-jp*packNR)
		panel := dst[jp*packNR*ka : (jp+1)*packNR*ka]
		if trans {
			// B stored n×k: element (p, j) lives at b[j*ldb+p]; read each
			// logical column (contiguous in p) and scatter with stride NR.
			for j := 0; j < cols; j++ {
				src := b[(j0+jp*packNR+j)*ldb+p0:]
				for p := 0; p < kc; p++ {
					panel[p*packNR+j] = src[p]
				}
			}
		} else {
			for p := 0; p < kc; p++ {
				src := b[(p0+p)*ldb+j0+jp*packNR:]
				d := panel[p*packNR : p*packNR+packNR]
				for j := 0; j < cols; j++ {
					d[j] = src[j]
				}
			}
		}
		if cols < packNR {
			for p := 0; p < kc; p++ {
				d := panel[p*packNR : p*packNR+packNR]
				for j := cols; j < packNR; j++ {
					d[j] = 0
				}
			}
		}
		for i := kc * packNR; i < ka*packNR; i++ {
			panel[i] = 0
		}
	}
}

// microKernel2x4 accumulates a packMR×packNR tile of C += Aᵖ·Bᵖ over ka
// padded depth steps (ka is a multiple of packKU). pa and pb are the
// packed panels; dst points at C[i, j] with row stride ldc; mr×nr is the
// live (unpadded) extent of the tile. The 8 accumulators stay in registers
// across the whole k loop, and the constant-index re-slicing of pa/pb
// makes every load bounds-check-free.
func microKernel2x4(pa, pb []float32, ka int, dst []float32, ldc, mr, nr int) {
	var c00, c01, c02, c03 float32
	var c10, c11, c12, c13 float32
	for p := 0; p < ka; p += packKU {
		a := pa[: packMR*packKU : packMR*packKU]
		b := pb[: packNR*packKU : packNR*packKU]
		a0, a1 := a[0], a[1]
		b0, b1, b2, b3 := b[0], b[1], b[2], b[3]
		c00 += a0 * b0
		c01 += a0 * b1
		c02 += a0 * b2
		c03 += a0 * b3
		c10 += a1 * b0
		c11 += a1 * b1
		c12 += a1 * b2
		c13 += a1 * b3
		a2, a3 := a[2], a[3]
		b4, b5, b6, b7 := b[4], b[5], b[6], b[7]
		c00 += a2 * b4
		c01 += a2 * b5
		c02 += a2 * b6
		c03 += a2 * b7
		c10 += a3 * b4
		c11 += a3 * b5
		c12 += a3 * b6
		c13 += a3 * b7
		a4, a5 := a[4], a[5]
		b8, b9, b10, b11 := b[8], b[9], b[10], b[11]
		c00 += a4 * b8
		c01 += a4 * b9
		c02 += a4 * b10
		c03 += a4 * b11
		c10 += a5 * b8
		c11 += a5 * b9
		c12 += a5 * b10
		c13 += a5 * b11
		a6, a7 := a[6], a[7]
		b12, b13, b14, b15 := b[12], b[13], b[14], b[15]
		c00 += a6 * b12
		c01 += a6 * b13
		c02 += a6 * b14
		c03 += a6 * b15
		c10 += a7 * b12
		c11 += a7 * b13
		c12 += a7 * b14
		c13 += a7 * b15
		pa = pa[packMR*packKU:]
		pb = pb[packNR*packKU:]
	}
	if mr == packMR && nr == packNR {
		r0 := dst[0:packNR:packNR]
		r0[0] += c00
		r0[1] += c01
		r0[2] += c02
		r0[3] += c03
		r1 := dst[ldc : ldc+packNR : ldc+packNR]
		r1[0] += c10
		r1[1] += c11
		r1[2] += c12
		r1[3] += c13
		return
	}
	// Edge tile: stage the accumulators and add back the live extent only.
	acc := [packMR * packNR]float32{
		c00, c01, c02, c03,
		c10, c11, c12, c13,
	}
	for r := 0; r < mr; r++ {
		row := dst[r*ldc:]
		for j := 0; j < nr; j++ {
			row[j] += acc[r*packNR+j]
		}
	}
}

// gemmPacked computes C = op(A)·op(B) with panel packing and the
// register-tiled micro-kernel. A is m×k (or stored k×m when transA), B is
// k×n (or stored n×k when transB), C is m×n and is overwritten. Macro row
// blocks of A are distributed over the shared worker pool; each worker
// packs its own A block while the packed B block is shared read-only.
func gemmPacked(a, b, c []float32, m, k, n int, transA, transB bool) {
	for i := range c[:m*n] {
		c[i] = 0
	}
	if m == 0 || n == 0 || k == 0 {
		return
	}
	lda := k
	if transA {
		lda = m
	}
	ldb := n
	if transB {
		ldb = k
	}
	nc := packNC
	if n < nc {
		nc = (n + packNR - 1) / packNR * packNR
	}
	kc := min(packKC, k)
	aBufLen := (min(packMC, m) + packMR - 1) / packMR * packMR * kcAligned(kc)
	bBufLen := (nc + packNR - 1) / packNR * packNR * kcAligned(kc)
	pb := scratch.GetBuf(bBufLen)
	defer scratch.PutBuf(pb)
	for jc := 0; jc < n; jc += nc {
		ncb := min(nc, n-jc)
		for pc := 0; pc < k; pc += kc {
			kcb := min(kc, k-pc)
			packBPanels(b, ldb, pc, jc, kcb, ncb, transB, pb)
			mBlocks := (m + packMC - 1) / packMC
			nPanels := (ncb + packNR - 1) / packNR
			if Default.Span(mBlocks) <= 1 || mBlocks == 1 {
				pa := scratch.GetBuf(aBufLen)
				for ic := 0; ic < m; ic += packMC {
					packedMacroBlock(a, c, pb, lda, ic, pc, jc, min(packMC, m-ic), kcb, ncb, nPanels, n, transA, pa)
				}
				scratch.PutBuf(pa)
				continue
			}
			packedParallelBlocks(a, c, pb, lda, pc, jc, m, kcb, ncb, nPanels, n, transA, aBufLen, mBlocks)
		}
	}
}

// packedParallelBlocks distributes the MC row blocks of one (jc, pc)
// iteration over the worker pool, handing each worker slot a private A pack
// buffer. It lives apart from gemmPacked so the dispatch closure's captures
// don't force the serial path's loop variables onto the heap — single-worker
// pools run the whole GEMM allocation-free.
func packedParallelBlocks(a, c, pb []float32, lda, pc, jc, m, kcb, ncb, nPanels, ldc int, transA bool, aBufLen, mBlocks int) {
	pas := make([][]float32, Default.Span(mBlocks))
	Default.ParallelWorker(mBlocks, func(w, bi int) {
		if pas[w] == nil {
			pas[w] = scratch.GetBuf(aBufLen)
		}
		ic := bi * packMC
		packedMacroBlock(a, c, pb, lda, ic, pc, jc, min(packMC, m-ic), kcb, ncb, nPanels, ldc, transA, pas[w])
	})
	for _, buf := range pas {
		if buf != nil {
			scratch.PutBuf(buf)
		}
	}
}

// packedMacroBlock packs one MC×KC block of A and sweeps it against every
// packed B panel, issuing one micro-kernel call per MR×NR tile.
func packedMacroBlock(a, c, pb []float32, lda, ic, pc, jc, mcb, kcb, ncb, nPanels, ldc int, transA bool, pa []float32) {
	packAPanels(a, lda, ic, pc, mcb, kcb, transA, pa)
	ka := kcAligned(kcb)
	mPanels := (mcb + packMR - 1) / packMR
	for jp := 0; jp < nPanels; jp++ {
		nr := min(packNR, ncb-jp*packNR)
		bPanel := pb[jp*packNR*ka : (jp+1)*packNR*ka]
		for ip := 0; ip < mPanels; ip++ {
			mr := min(packMR, mcb-ip*packMR)
			microKernel2x4(
				pa[ip*packMR*ka:(ip+1)*packMR*ka],
				bPanel,
				ka,
				c[(ic+ip*packMR)*ldc+jc+jp*packNR:],
				ldc, mr, nr,
			)
		}
	}
}
