package kernels

import (
	"math"
	"testing"
	"testing/quick"

	"deep500/internal/tensor"
)

func randSlice(rng *tensor.RNG, n int) []float32 {
	s := make([]float32, n)
	for i := range s {
		s[i] = float32(rng.Norm())
	}
	return s
}

func gemmRef(a, b []float32, m, k, n int) []float32 {
	c := make([]float32, m*n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var s float64
			for p := 0; p < k; p++ {
				s += float64(a[i*k+p]) * float64(b[p*n+j])
			}
			c[i*n+j] = float32(s)
		}
	}
	return c
}

func maxAbsDiff(a, b []float32) float64 {
	var m float64
	for i := range a {
		if d := math.Abs(float64(a[i]) - float64(b[i])); d > m {
			m = d
		}
	}
	return m
}

func TestGemmAlgorithmsAgree(t *testing.T) {
	rng := tensor.NewRNG(1)
	shapes := [][3]int{{1, 1, 1}, {3, 5, 7}, {17, 9, 33}, {64, 64, 64}, {100, 3, 50}, {65, 130, 31}}
	for _, sh := range shapes {
		m, k, n := sh[0], sh[1], sh[2]
		a := randSlice(rng, m*k)
		b := randSlice(rng, k*n)
		want := gemmRef(a, b, m, k, n)
		for _, algo := range []GemmAlgo{GemmNaive, GemmBlocked, GemmParallel, GemmPacked} {
			c := make([]float32, m*n)
			Gemm(algo, a, b, c, m, k, n)
			if d := maxAbsDiff(c, want); d > 1e-3*float64(k) {
				t.Errorf("%v %dx%dx%d: max diff %g", algo, m, k, n, d)
			}
		}
	}
}

func TestGemmOverwritesOutput(t *testing.T) {
	a := []float32{1, 0, 0, 1}
	c := []float32{9, 9, 9, 9}
	Gemm(GemmBlocked, a, a, c, 2, 2, 2)
	if c[0] != 1 || c[1] != 0 || c[3] != 1 {
		t.Fatalf("stale output not cleared: %v", c)
	}
}

func TestGemmPanicsOnShortBuffer(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Gemm(GemmNaive, make([]float32, 3), make([]float32, 4), make([]float32, 4), 2, 2, 2)
}

func TestGemmTransB(t *testing.T) {
	rng := tensor.NewRNG(2)
	m, k, n := 7, 11, 5
	a := randSlice(rng, m*k)
	b := randSlice(rng, n*k) // B is n×k
	bt := make([]float32, k*n)
	for i := 0; i < n; i++ {
		for j := 0; j < k; j++ {
			bt[j*n+i] = b[i*k+j]
		}
	}
	want := gemmRef(a, bt, m, k, n)
	c := make([]float32, m*n)
	GemmTransB(a, b, c, m, k, n)
	if d := maxAbsDiff(c, want); d > 1e-4 {
		t.Fatalf("GemmTransB diff %g", d)
	}
}

func TestGemmTransA(t *testing.T) {
	rng := tensor.NewRNG(3)
	m, k, n := 6, 9, 4
	a := randSlice(rng, k*m) // A is k×m
	b := randSlice(rng, k*n)
	at := make([]float32, m*k)
	for i := 0; i < k; i++ {
		for j := 0; j < m; j++ {
			at[j*k+i] = a[i*m+j]
		}
	}
	want := gemmRef(at, b, m, k, n)
	c := make([]float32, m*n)
	GemmTransA(a, b, c, m, k, n)
	if d := maxAbsDiff(c, want); d > 1e-4 {
		t.Fatalf("GemmTransA diff %g", d)
	}
}

func TestGemmFLOPs(t *testing.T) {
	if GemmFLOPs(2, 3, 4) != 48 {
		t.Fatalf("GemmFLOPs = %d", GemmFLOPs(2, 3, 4))
	}
}

func TestPropGemmIdentity(t *testing.T) {
	f := func(seed uint16) bool {
		rng := tensor.NewRNG(uint64(seed))
		n := rng.Intn(20) + 1
		a := randSlice(rng, n*n)
		id := make([]float32, n*n)
		for i := 0; i < n; i++ {
			id[i*n+i] = 1
		}
		c := make([]float32, n*n)
		Gemm(GemmBlocked, a, id, c, n, n, n)
		return maxAbsDiff(c, a) < 1e-5
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropGemmLinearity(t *testing.T) {
	// (αA)·B == α(A·B)
	f := func(seed uint16, alpha8 int8) bool {
		rng := tensor.NewRNG(uint64(seed))
		alpha := float32(alpha8) / 16
		m, k, n := rng.Intn(8)+1, rng.Intn(8)+1, rng.Intn(8)+1
		a := randSlice(rng, m*k)
		b := randSlice(rng, k*n)
		sa := make([]float32, len(a))
		for i, v := range a {
			sa[i] = alpha * v
		}
		c1 := make([]float32, m*n)
		c2 := make([]float32, m*n)
		Gemm(GemmBlocked, sa, b, c1, m, k, n)
		Gemm(GemmBlocked, a, b, c2, m, k, n)
		for i := range c2 {
			c2[i] *= alpha
		}
		return maxAbsDiff(c1, c2) < 1e-3
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
