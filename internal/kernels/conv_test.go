package kernels

import (
	"testing"
	"testing/quick"

	"deep500/internal/tensor"
)

func TestConvAlgorithmsAgree(t *testing.T) {
	rng := tensor.NewRNG(11)
	shapes := []ConvShape{
		{N: 1, C: 1, H: 5, W: 5, M: 1, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 0, PadW: 0},
		{N: 2, C: 3, H: 8, W: 8, M: 4, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1},
		{N: 1, C: 2, H: 9, W: 7, M: 3, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1},
		{N: 3, C: 4, H: 6, W: 6, M: 2, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 0, PadW: 0},
	}
	for _, s := range shapes {
		in := randSlice(rng, s.InputSize())
		w := randSlice(rng, s.WeightSize())
		bias := randSlice(rng, s.M)
		ref := make([]float32, s.OutputSize())
		Conv2D(ConvDirect, s, in, w, bias, ref)
		for _, algo := range []ConvAlgo{ConvIm2Col, ConvWinograd} {
			out := make([]float32, s.OutputSize())
			Conv2D(algo, s, in, w, bias, out)
			if d := maxAbsDiff(out, ref); d > 2e-4*float64(s.C*s.KH*s.KW) {
				t.Errorf("%v vs direct on %v: max diff %g", algo, s, d)
			}
		}
	}
}

func TestConvStridedIm2Col(t *testing.T) {
	rng := tensor.NewRNG(12)
	s := ConvShape{N: 2, C: 3, H: 11, W: 9, M: 5, KH: 5, KW: 3, StrideH: 2, StrideW: 2, PadH: 2, PadW: 1}
	in := randSlice(rng, s.InputSize())
	w := randSlice(rng, s.WeightSize())
	ref := make([]float32, s.OutputSize())
	out := make([]float32, s.OutputSize())
	Conv2D(ConvDirect, s, in, w, nil, ref)
	Conv2D(ConvIm2Col, s, in, w, nil, out)
	if d := maxAbsDiff(out, ref); d > 1e-3 {
		t.Fatalf("strided im2col diff %g", d)
	}
}

func TestConvOutDims(t *testing.T) {
	s := ConvShape{N: 1, C: 1, H: 224, W: 224, M: 1, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}
	oh, ow := s.OutDims()
	if oh != 224 || ow != 224 {
		t.Fatalf("same-pad dims %dx%d", oh, ow)
	}
	s = ConvShape{N: 1, C: 1, H: 224, W: 224, M: 1, KH: 7, KW: 7, StrideH: 2, StrideW: 2, PadH: 3, PadW: 3}
	oh, ow = s.OutDims()
	if oh != 112 || ow != 112 {
		t.Fatalf("resnet stem dims %dx%d", oh, ow)
	}
}

func TestConvWinogradUnsupportedPanics(t *testing.T) {
	s := ConvShape{N: 1, C: 1, H: 5, W: 5, M: 1, KH: 5, KW: 5, StrideH: 1, StrideW: 1}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for 5x5 Winograd")
		}
	}()
	Conv2D(ConvWinograd, s, make([]float32, s.InputSize()), make([]float32, s.WeightSize()), nil, make([]float32, s.OutputSize()))
}

func TestConvWorkspaceOrdering(t *testing.T) {
	s := ConvShape{N: 1, C: 64, H: 56, W: 56, M: 64, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}
	if s.WorkspaceBytes(ConvDirect) != 0 {
		t.Fatal("direct should need no workspace")
	}
	if s.WorkspaceBytes(ConvIm2Col) <= s.WorkspaceBytes(ConvWinograd) {
		t.Fatalf("expected im2col workspace (%d) > winograd (%d) at this shape",
			s.WorkspaceBytes(ConvIm2Col), s.WorkspaceBytes(ConvWinograd))
	}
}

func TestIm2ColCol2ImRoundTripShape(t *testing.T) {
	// col2im(im2col(x)) with a 1x1 kernel and stride 1 is the identity.
	s := ConvShape{N: 1, C: 3, H: 4, W: 5, M: 1, KH: 1, KW: 1, StrideH: 1, StrideW: 1}
	rng := tensor.NewRNG(5)
	img := randSlice(rng, s.C*s.H*s.W)
	oh, ow := s.OutDims()
	col := make([]float32, s.C*s.KH*s.KW*oh*ow)
	Im2Col(s, img, col)
	back := make([]float32, len(img))
	Col2Im(s, col, back)
	if d := maxAbsDiff(img, back); d != 0 {
		t.Fatalf("1x1 round trip diff %g", d)
	}
}

func TestConvFLOPs(t *testing.T) {
	s := ConvShape{N: 1, C: 1, H: 3, W: 3, M: 1, KH: 3, KW: 3, StrideH: 1, StrideW: 1}
	// single output position, 9 MACs = 18 FLOPs
	if s.FLOPs() != 18 {
		t.Fatalf("FLOPs = %d", s.FLOPs())
	}
}

func TestPropConvLinearInInput(t *testing.T) {
	// conv(a·x) == a·conv(x)
	f := func(seed uint16, a8 int8) bool {
		rng := tensor.NewRNG(uint64(seed))
		alpha := float32(a8) / 8
		s := ConvShape{N: 1, C: rng.Intn(3) + 1, H: rng.Intn(6) + 3, W: rng.Intn(6) + 3,
			M: rng.Intn(3) + 1, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}
		in := randSlice(rng, s.InputSize())
		w := randSlice(rng, s.WeightSize())
		sin := make([]float32, len(in))
		for i, v := range in {
			sin[i] = alpha * v
		}
		o1 := make([]float32, s.OutputSize())
		o2 := make([]float32, s.OutputSize())
		Conv2D(ConvDirect, s, sin, w, nil, o1)
		Conv2D(ConvDirect, s, in, w, nil, o2)
		for i := range o2 {
			o2[i] *= alpha
		}
		return maxAbsDiff(o1, o2) < 1e-3
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
