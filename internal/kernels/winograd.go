package kernels

// Winograd F(2×2, 3×3) convolution. Each 4×4 input tile produces a 2×2
// output tile using 16 multiplications instead of 36, via
//
//	Y = Aᵀ [ (G g Gᵀ) ⊙ (Bᵀ d B) ] A
//
// with the standard transform matrices
//
//	Bᵀ = | 1  0 -1  0 |    G = | 1    0    0   |    Aᵀ = | 1 1  1  0 |
//	     | 0  1  1  0 |        | 1/2  1/2  1/2 |         | 0 1 -1 -1 |
//	     | 0 -1  1  0 |        | 1/2 -1/2  1/2 |
//	     | 0  1  0 -1 |        | 0    0    1   |

// winogradKernel transforms a 3×3 kernel g into its 4×4 Winograd domain
// image U = G·g·Gᵀ, written to u[0:16].
func winogradKernel(g []float32, u []float32) {
	// t = G·g  (4×3)
	var t [12]float32
	for c := 0; c < 3; c++ {
		g0, g1, g2 := g[c], g[3+c], g[6+c]
		t[c] = g0
		t[3+c] = 0.5 * (g0 + g1 + g2)
		t[6+c] = 0.5 * (g0 - g1 + g2)
		t[9+c] = g2
	}
	// U = t·Gᵀ (4×4)
	for r := 0; r < 4; r++ {
		t0, t1, t2 := t[r*3], t[r*3+1], t[r*3+2]
		u[r*4] = t0
		u[r*4+1] = 0.5 * (t0 + t1 + t2)
		u[r*4+2] = 0.5 * (t0 - t1 + t2)
		u[r*4+3] = t2
	}
}

// winogradInput transforms a 4×4 input tile d into V = Bᵀ·d·B, written to
// v[0:16].
func winogradInput(d *[16]float32, v []float32) {
	var t [16]float32
	// t = Bᵀ·d
	for c := 0; c < 4; c++ {
		d0, d1, d2, d3 := d[c], d[4+c], d[8+c], d[12+c]
		t[c] = d0 - d2
		t[4+c] = d1 + d2
		t[8+c] = d2 - d1
		t[12+c] = d1 - d3
	}
	// v = t·B
	for r := 0; r < 4; r++ {
		t0, t1, t2, t3 := t[r*4], t[r*4+1], t[r*4+2], t[r*4+3]
		v[r*4] = t0 - t2
		v[r*4+1] = t1 + t2
		v[r*4+2] = t2 - t1
		v[r*4+3] = t1 - t3
	}
}

// winogradOutput maps the accumulated 4×4 domain tile m back to the 2×2
// spatial output Y = Aᵀ·m·A.
func winogradOutput(m *[16]float32, y *[4]float32) {
	var t [8]float32
	// t = Aᵀ·m (2×4)
	for c := 0; c < 4; c++ {
		m0, m1, m2, m3 := m[c], m[4+c], m[8+c], m[12+c]
		t[c] = m0 + m1 + m2
		t[4+c] = m1 - m2 - m3
	}
	// y = t·A (2×2)
	for r := 0; r < 2; r++ {
		t0, t1, t2, t3 := t[r*4], t[r*4+1], t[r*4+2], t[r*4+3]
		y[r*2] = t0 + t1 + t2
		y[r*2+1] = t1 - t2 - t3
	}
}

func conv2DWinograd(s ConvShape, in, w, out []float32) {
	oh, ow := s.OutDims()
	tilesY := (oh + 1) / 2
	tilesX := (ow + 1) / 2

	// Pre-transform all kernels: U[m][c] is a 16-vector. Both workspaces
	// come from the kernel scratch arena and are fully overwritten before
	// use, so their recycled contents don't matter.
	u := scratch.GetBuf(s.M * s.C * 16)
	defer scratch.PutBuf(u)
	for m := 0; m < s.M; m++ {
		for c := 0; c < s.C; c++ {
			winogradKernel(w[(m*s.C+c)*9:(m*s.C+c)*9+9], u[(m*s.C+c)*16:(m*s.C+c)*16+16])
		}
	}

	var d, acc [16]float32
	var y [4]float32
	vs := scratch.GetBuf(s.C * 16) // transformed input tiles for one position
	defer scratch.PutBuf(vs)
	for n := 0; n < s.N; n++ {
		inImg := in[n*s.C*s.H*s.W:]
		outImg := out[n*s.M*oh*ow:]
		for ty := 0; ty < tilesY; ty++ {
			for tx := 0; tx < tilesX; tx++ {
				iy0 := ty*2 - s.PadH
				ix0 := tx*2 - s.PadW
				// Transform the 4×4 input tile of each channel once.
				for c := 0; c < s.C; c++ {
					inC := inImg[c*s.H*s.W:]
					for r := 0; r < 4; r++ {
						iy := iy0 + r
						for col := 0; col < 4; col++ {
							ix := ix0 + col
							if iy < 0 || iy >= s.H || ix < 0 || ix >= s.W {
								d[r*4+col] = 0
							} else {
								d[r*4+col] = inC[iy*s.W+ix]
							}
						}
					}
					winogradInput(&d, vs[c*16:c*16+16])
				}
				for m := 0; m < s.M; m++ {
					acc = [16]float32{}
					for c := 0; c < s.C; c++ {
						um := u[(m*s.C+c)*16 : (m*s.C+c)*16+16 : (m*s.C+c)*16+16]
						vc := vs[c*16 : c*16+16 : c*16+16]
						for i := 0; i < 16; i++ {
							acc[i] += um[i] * vc[i]
						}
					}
					winogradOutput(&acc, &y)
					dst := outImg[m*oh*ow:]
					for r := 0; r < 2; r++ {
						oy := ty*2 + r
						if oy >= oh {
							continue
						}
						for col := 0; col < 2; col++ {
							ox := tx*2 + col
							if ox >= ow {
								continue
							}
							dst[oy*ow+ox] = y[r*2+col]
						}
					}
				}
			}
		}
	}
}
