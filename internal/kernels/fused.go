package kernels

import "math"

// This file holds "fused" kernels: single passes that combine several
// logical operations. The paper's Use Case 1 (§III-A) contrasts Caffe2's
// fused Adam GPU kernel against TensorFlow's composition of many small Eigen
// ops; the same contrast exists here between AdamFused and an update built
// from a sequence of elementwise tensor operations.

// AdamFused applies one Adam step in a single pass over the parameters:
//
//	m ← β1·m + (1-β1)·g
//	v ← β2·v + (1-β2)·g²
//	p ← p - lr·( m/(1-β1ᵗ) ) / ( sqrt(v/(1-β2ᵗ)) + eps )
//
// param, grad, m and v must all have the same length.
func AdamFused(param, grad, m, v []float32, lr, beta1, beta2, eps float32, t int) {
	bc1 := float32(1 - math.Pow(float64(beta1), float64(t)))
	bc2 := float32(1 - math.Pow(float64(beta2), float64(t)))
	for i, g := range grad {
		m[i] = beta1*m[i] + (1-beta1)*g
		v[i] = beta2*v[i] + (1-beta2)*g*g
		mHat := m[i] / bc1
		vHat := v[i] / bc2
		param[i] -= lr * mHat / (float32(math.Sqrt(float64(vHat))) + eps)
	}
}

// MomentumFused applies one SGD-with-momentum step in a single pass:
// vel ← μ·vel - lr·g; p ← p + vel.
func MomentumFused(param, grad, vel []float32, lr, mu float32) {
	for i, g := range grad {
		vel[i] = mu*vel[i] - lr*g
		param[i] += vel[i]
	}
}

// SGDFused applies p ← p - lr·g in one pass.
func SGDFused(param, grad []float32, lr float32) {
	for i, g := range grad {
		param[i] -= lr * g
	}
}

// RMSPropFused applies one RMSProp step in a single pass:
// s ← ρ·s + (1-ρ)·g²; p ← p - lr·g/sqrt(s+eps).
func RMSPropFused(param, grad, s []float32, lr, rho, eps float32) {
	for i, g := range grad {
		s[i] = rho*s[i] + (1-rho)*g*g
		param[i] -= lr * g / float32(math.Sqrt(float64(s[i]+eps)))
	}
}

// AdaGradFused applies one AdaGrad step in a single pass:
// s ← s + g²; p ← p - lr·g/(sqrt(s)+eps).
func AdaGradFused(param, grad, s []float32, lr, eps float32) {
	for i, g := range grad {
		s[i] += g * g
		param[i] -= lr * g / (float32(math.Sqrt(float64(s[i]))) + eps)
	}
}

// BiasReLUFused adds a per-channel bias to an N×C×HW activation and applies
// ReLU in one pass (a typical operator-fusion example).
func BiasReLUFused(n, c, hw int, inout, bias []float32) {
	for i := 0; i < n; i++ {
		for ch := 0; ch < c; ch++ {
			b := bias[ch]
			dst := inout[(i*c+ch)*hw : (i*c+ch+1)*hw]
			for j, v := range dst {
				v += b
				if v < 0 {
					v = 0
				}
				dst[j] = v
			}
		}
	}
}
