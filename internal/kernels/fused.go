package kernels

import "math"

// This file holds "fused" kernels: single passes that combine several
// logical operations. The paper's Use Case 1 (§III-A) contrasts Caffe2's
// fused Adam GPU kernel against TensorFlow's composition of many small Eigen
// ops; the same contrast exists here between AdamFused and an update built
// from a sequence of elementwise tensor operations.

// AdamFused applies one Adam step in a single pass over the parameters:
//
//	m ← β1·m + (1-β1)·g
//	v ← β2·v + (1-β2)·g²
//	p ← p - lr·( m/(1-β1ᵗ) ) / ( sqrt(v/(1-β2ᵗ)) + eps )
//
// param, grad, m and v must all have the same length.
func AdamFused(param, grad, m, v []float32, lr, beta1, beta2, eps float32, t int) {
	bc1 := float32(1 - math.Pow(float64(beta1), float64(t)))
	bc2 := float32(1 - math.Pow(float64(beta2), float64(t)))
	for i, g := range grad {
		m[i] = beta1*m[i] + (1-beta1)*g
		v[i] = beta2*v[i] + (1-beta2)*g*g
		mHat := m[i] / bc1
		vHat := v[i] / bc2
		param[i] -= lr * mHat / (float32(math.Sqrt(float64(vHat))) + eps)
	}
}

// MomentumFused applies one SGD-with-momentum step in a single pass:
// vel ← μ·vel - lr·g; p ← p + vel.
func MomentumFused(param, grad, vel []float32, lr, mu float32) {
	for i, g := range grad {
		vel[i] = mu*vel[i] - lr*g
		param[i] += vel[i]
	}
}

// SGDFused applies p ← p - lr·g in one pass.
func SGDFused(param, grad []float32, lr float32) {
	for i, g := range grad {
		param[i] -= lr * g
	}
}

// RMSPropFused applies one RMSProp step in a single pass:
// s ← ρ·s + (1-ρ)·g²; p ← p - lr·g/sqrt(s+eps).
func RMSPropFused(param, grad, s []float32, lr, rho, eps float32) {
	for i, g := range grad {
		s[i] = rho*s[i] + (1-rho)*g*g
		param[i] -= lr * g / float32(math.Sqrt(float64(s[i]+eps)))
	}
}

// AdaGradFused applies one AdaGrad step in a single pass:
// s ← s + g²; p ← p - lr·g/(sqrt(s)+eps).
func AdaGradFused(param, grad, s []float32, lr, eps float32) {
	for i, g := range grad {
		s[i] += g * g
		param[i] -= lr * g / (float32(math.Sqrt(float64(s[i]))) + eps)
	}
}

// BiasReLUFused adds a per-channel bias to an N×C×HW activation and applies
// ReLU in one pass (a typical operator-fusion example). It is the epilogue
// kernel of the FusedConvRelu graph operator produced by the compile
// pipeline's fusion pass (internal/compile).
func BiasReLUFused(n, c, hw int, inout, bias []float32) {
	for i := 0; i < n; i++ {
		for ch := 0; ch < c; ch++ {
			b := bias[ch]
			dst := inout[(i*c+ch)*hw : (i*c+ch+1)*hw]
			for j, v := range dst {
				v += b
				if v < 0 {
					v = 0
				}
				dst[j] = v
			}
		}
	}
}

// ReLUInPlace rectifies a buffer in place: the bias-less epilogue of a fused
// Conv→ReLU node.
func ReLUInPlace(inout []float32) {
	for i, v := range inout {
		if v < 0 {
			inout[i] = 0
		}
	}
}

// Act selects the activation applied by a fused epilogue kernel.
type Act uint8

const (
	// ActNone applies no activation (bias-only epilogue).
	ActNone Act = iota
	// ActReLU is max(0, x).
	ActReLU
	// ActSigmoid is 1/(1+e^-x).
	ActSigmoid
	// ActTanh is the hyperbolic tangent.
	ActTanh
)

// String returns the graph op-type name of the activation ("Relu",
// "Sigmoid", "Tanh", "" for none) — the value the fusion pass stores in the
// fused node's "act" attribute.
func (a Act) String() string {
	switch a {
	case ActReLU:
		return "Relu"
	case ActSigmoid:
		return "Sigmoid"
	case ActTanh:
		return "Tanh"
	}
	return ""
}

// ActByName resolves an activation op-type name to its Act constant; ok is
// false for op types no fused kernel implements.
func ActByName(name string) (Act, bool) {
	switch name {
	case "":
		return ActNone, true
	case "Relu":
		return ActReLU, true
	case "Sigmoid":
		return ActSigmoid, true
	case "Tanh":
		return ActTanh, true
	}
	return ActNone, false
}

// BiasAct is the epilogue of a fused Dense→Bias→Activation node: one pass
// over a rows×cols row-major matrix adding a per-column bias (nil skips it)
// and applying the activation. Compared to the unfused graph this replaces
// two full memory sweeps (broadcast bias add, then activation into a fresh
// buffer) and one intermediate activation tensor with a single in-place
// sweep. The activation and bias-presence dispatch happen once per call;
// the inner loops are specialized per activation (same style as
// ActGradFromOutput), keeping the ReLU hot path a single compare.
func BiasAct(rows, cols int, inout, bias []float32, act Act) {
	if bias == nil {
		switch act {
		case ActReLU:
			ReLUInPlace(inout[:rows*cols])
		case ActSigmoid:
			for i, v := range inout[:rows*cols] {
				inout[i] = 1 / (1 + float32(math.Exp(float64(-v))))
			}
		case ActTanh:
			for i, v := range inout[:rows*cols] {
				inout[i] = float32(math.Tanh(float64(v)))
			}
		}
		return
	}
	switch act {
	case ActReLU:
		for r := 0; r < rows; r++ {
			row := inout[r*cols : (r+1)*cols]
			for j, v := range row {
				v += bias[j]
				if v < 0 {
					v = 0
				}
				row[j] = v
			}
		}
	case ActSigmoid:
		for r := 0; r < rows; r++ {
			row := inout[r*cols : (r+1)*cols]
			for j, v := range row {
				row[j] = 1 / (1 + float32(math.Exp(float64(-(v + bias[j])))))
			}
		}
	case ActTanh:
		for r := 0; r < rows; r++ {
			row := inout[r*cols : (r+1)*cols]
			for j, v := range row {
				row[j] = float32(math.Tanh(float64(v + bias[j])))
			}
		}
	default:
		for r := 0; r < rows; r++ {
			row := inout[r*cols : (r+1)*cols]
			for j := range row {
				row[j] += bias[j]
			}
		}
	}
}

// ActGradFromOutput computes the gradient w.r.t. the pre-activation value of
// a fused node in one pass, using only the forward *output* y = act(pre):
//
//	ReLU:    d = g · 1[y>0]        (y > 0 ⟺ pre > 0)
//	Sigmoid: d = g · y·(1-y)
//	Tanh:    d = g · (1-y²)
//	None:    d = g
//
// All three supported activations have derivatives expressible in the
// output, so fused nodes never need to materialize the pre-activation
// tensor the fusion eliminated.
func ActGradFromOutput(act Act, y, gradOut, gradPre []float32) {
	switch act {
	case ActReLU:
		for i, v := range y {
			if v > 0 {
				gradPre[i] = gradOut[i]
			} else {
				gradPre[i] = 0
			}
		}
	case ActSigmoid:
		for i, v := range y {
			gradPre[i] = gradOut[i] * v * (1 - v)
		}
	case ActTanh:
		for i, v := range y {
			gradPre[i] = gradOut[i] * (1 - v*v)
		}
	default:
		copy(gradPre, gradOut)
	}
}
