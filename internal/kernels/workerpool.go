package kernels

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Pool is the shared worker budget for all intra-operator and
// inter-operator parallelism in the repository. It replaces the ad-hoc
// goroutine fan-outs that gemmParallel, im2col convolution and the dataset
// decoders used to spawn independently: every parallel region now borrows
// workers from one fixed budget, so nested parallelism (a parallel graph
// scheduler dispatching operators whose kernels are themselves parallel)
// cannot oversubscribe the machine.
//
// The pool is a counting semaphore of worker tokens, not a task queue. A
// parallel region always executes on the calling goroutine and additionally
// borrows however many tokens are free at that moment. Because callers never
// wait for a token, progress is guaranteed even when every token is held —
// a kernel invoked from a saturated scheduler simply runs inline. This is
// what makes the budget composable: when the dataflow scheduler keeps all
// workers busy with operators, kernels degrade to sequential; when the graph
// is a chain and only one operator runs, that operator's kernels get the
// whole budget.
type Pool struct {
	workers int
	tokens  chan struct{}
}

// NewPool returns a pool with the given total worker budget (including the
// calling goroutine of each parallel region); budgets below 1 are clamped.
func NewPool(workers int) *Pool {
	if workers < 1 {
		workers = 1
	}
	p := &Pool{workers: workers, tokens: make(chan struct{}, workers-1)}
	for i := 0; i < workers-1; i++ {
		p.tokens <- struct{}{}
	}
	return p
}

// Default is the process-wide pool, sized to GOMAXPROCS once at package
// initialization; later GOMAXPROCS changes (e.g. go test -cpu) do not
// resize it — construct a dedicated NewPool for experiments that vary the
// worker budget.
var Default = NewPool(runtime.GOMAXPROCS(0))

// Workers returns the total worker budget.
func (p *Pool) Workers() int { return p.workers }

// Span returns the maximum number of workers a parallel region over n tasks
// can occupy — callers use it to size per-worker scratch buffers before
// invoking ParallelWorker.
func (p *Pool) Span(n int) int {
	s := min(p.workers, n)
	if s < 1 {
		s = 1
	}
	return s
}

// TryAcquire borrows one worker token without blocking. Callers that
// acquire a token must pair it with Release. Used by schedulers that manage
// their own goroutines against the shared budget.
func (p *Pool) TryAcquire() bool {
	select {
	case <-p.tokens:
		return true
	default:
		return false
	}
}

// Release returns a token borrowed with TryAcquire.
func (p *Pool) Release() { p.tokens <- struct{}{} }

// Parallel runs fn(i) for every i in [0, n), using the calling goroutine
// plus as many free pool workers as are available (at most Span(n) total).
// Iterations are distributed dynamically via an atomic counter, so uneven
// task costs balance automatically. fn must be safe for concurrent calls
// with distinct i.
func (p *Pool) Parallel(n int, fn func(i int)) {
	p.ParallelWorker(n, func(_, i int) { fn(i) })
}

// ParallelWorker is Parallel with a worker-slot identifier: fn(w, i) is
// invoked with w in [0, Span(n)), and no two concurrent calls share a w —
// callers can therefore hand each slot private scratch space (the im2col
// column buffer, for example) allocated once per slot instead of once per
// task.
func (p *Pool) ParallelWorker(n int, fn func(w, i int)) {
	if n <= 0 {
		return
	}
	want := min(p.workers, n) - 1
	borrowed := 0
	for borrowed < want && p.TryAcquire() {
		borrowed++
	}
	if borrowed == 0 {
		for i := 0; i < n; i++ {
			fn(0, i)
		}
		return
	}
	var next int64
	run := func(w int) {
		for {
			i := int(atomic.AddInt64(&next, 1)) - 1
			if i >= n {
				return
			}
			fn(w, i)
		}
	}
	var wg sync.WaitGroup
	for h := 1; h <= borrowed; h++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			defer p.Release()
			run(w)
		}(h)
	}
	run(0)
	wg.Wait()
}
