// Package kernels implements the low-level compute kernels that play the
// role of cuDNN/MKL-DNN in the Deep500 paper: GEMM with several blocking
// strategies, 2D convolution with three algorithms (direct, im2col+GEMM and
// Winograd F(2×2,3×3)), pooling, activations, and fused optimizer kernels.
//
// Calling a kernel directly — with no graph, no dispatch, no instrumentation
// — is this repository's "DeepBench baseline" (§V-B of the paper): the
// lowest achievable runtime against which framework overhead is measured.
//
// Public entry points: Gemm (with GemmAlgo selection) and the transposed
// variants, Conv2D (ConvAlgo: direct, im2col, Winograd) with ConvShape
// geometry, the pooling and activation kernels, the fused optimizer
// kernels (AdamFused, MomentumFused, …, §III-A Use Case 1) and the fused
// graph-operator epilogues (BiasAct, BiasReLUFused, ActGradFromOutput)
// used by the compile pipeline's fusion pass. Pool is the single shared
// worker budget every parallel code path in the repository draws from.
//
// The default GEMM algorithm is GemmPacked, the BLIS-style packed
// register-tiled kernel (gemm_packed.go): operands are repacked into
// cache-resident panels and multiplied by a spill-free 2×4 register
// micro-kernel, with transposes folded into the packing. docs/kernels.md
// documents the packing layout, the micro-tile sizing measurements and how
// to re-tune the blocking constants. All scratch flows through the
// package-level size-class buffer pool (scratch.go), so steady-state
// kernels allocate nothing.
package kernels

// gemmBlock is the cache-blocking tile edge used by the blocked kernels.
// 64×64 float32 tiles (16 KiB) fit comfortably in L1/L2 caches.
const gemmBlock = 64

// GemmAlgo selects a GEMM implementation.
type GemmAlgo int

const (
	// GemmNaive is the triple loop (reference; used for validation).
	GemmNaive GemmAlgo = iota
	// GemmBlocked adds cache blocking with an ikj inner order.
	GemmBlocked
	// GemmParallel is GemmBlocked parallelized over row panels.
	GemmParallel
	// GemmPacked is the BLIS-style kernel (gemm_packed.go): operands are
	// repacked into cache-resident panels and driven through a 4×8
	// register-tiled micro-kernel, parallelized over macro row blocks.
	GemmPacked
)

func (a GemmAlgo) String() string {
	switch a {
	case GemmNaive:
		return "naive"
	case GemmBlocked:
		return "blocked"
	case GemmParallel:
		return "parallel"
	case GemmPacked:
		return "packed"
	}
	return "unknown"
}

// ParseGemmAlgo maps an algorithm name (as printed by String) back to its
// GemmAlgo. The second result is false for unknown names.
func ParseGemmAlgo(name string) (GemmAlgo, bool) {
	switch name {
	case "naive":
		return GemmNaive, true
	case "blocked":
		return GemmBlocked, true
	case "parallel":
		return GemmParallel, true
	case "packed":
		return GemmPacked, true
	}
	return GemmPacked, false
}

// Gemm computes C = A·B for row-major matrices: A is M×K, B is K×N and C is
// M×N. C is overwritten. The algo parameter selects the implementation.
func Gemm(algo GemmAlgo, a, b, c []float32, m, k, n int) {
	if len(a) < m*k || len(b) < k*n || len(c) < m*n {
		panic("kernels: Gemm buffer too small")
	}
	switch algo {
	case GemmNaive:
		gemmNaive(a, b, c, m, k, n)
	case GemmBlocked:
		gemmBlocked(a, b, c, m, k, n)
	case GemmParallel:
		gemmParallel(a, b, c, m, k, n)
	case GemmPacked:
		gemmPacked(a, b, c, m, k, n, false, false)
	default:
		panic("kernels: unknown GEMM algorithm")
	}
}

// GemmT computes C = op(A)·op(B) where op transposes its operand when the
// corresponding flag is set: A is m×k logical (stored k×m when transA), B
// is k×n logical (stored n×k when transB), C is m×n and overwritten. With
// GemmPacked the transposes are folded into panel packing and cost nothing;
// other algorithms receive the plain layout directly and fall back to the
// strided loops when an operand is transposed.
func GemmT(algo GemmAlgo, a, b, c []float32, m, k, n int, transA, transB bool) {
	if len(a) < m*k || len(b) < k*n || len(c) < m*n {
		panic("kernels: GemmT buffer too small")
	}
	if !transA && !transB {
		Gemm(algo, a, b, c, m, k, n)
		return
	}
	if algo == GemmPacked && int64(m)*int64(k)*int64(n) >= packedMinVol {
		gemmPacked(a, b, c, m, k, n, transA, transB)
		return
	}
	switch {
	case transA && !transB:
		gemmTransALoop(a, b, c, m, k, n)
	case !transA && transB:
		gemmTransBLoop(a, b, c, m, k, n)
	default: // both: C[i,j] = Σ_p A[p,i]·B[j,p]
		for i := 0; i < m; i++ {
			ci := c[i*n : (i+1)*n]
			for j := 0; j < n; j++ {
				bj := b[j*k : (j+1)*k]
				var s float32
				for p := 0; p < k; p++ {
					s += a[p*m+i] * bj[p]
				}
				ci[j] = s
			}
		}
	}
}

// GemmFLOPs returns the floating-point operation count of an M×K×N GEMM.
func GemmFLOPs(m, k, n int) int64 { return 2 * int64(m) * int64(k) * int64(n) }

func gemmNaive(a, b, c []float32, m, k, n int) {
	for i := 0; i < m; i++ {
		ci := c[i*n : (i+1)*n]
		for j := range ci {
			ci[j] = 0
		}
		for p := 0; p < k; p++ {
			av := a[i*k+p]
			if av == 0 {
				continue
			}
			bp := b[p*n : (p+1)*n]
			for j, bv := range bp {
				ci[j] += av * bv
			}
		}
	}
}

func gemmBlocked(a, b, c []float32, m, k, n int) {
	for i := 0; i < m*n; i++ {
		c[i] = 0
	}
	gemmBlockedRange(a, b, c, m, k, n, 0, m)
}

// gemmBlockedRange accumulates rows [i0, i1) of C using cache blocking.
// C must be zeroed by the caller.
func gemmBlockedRange(a, b, c []float32, m, k, n, i0, i1 int) {
	for ii := i0; ii < i1; ii += gemmBlock {
		iMax := min(ii+gemmBlock, i1)
		for pp := 0; pp < k; pp += gemmBlock {
			pMax := min(pp+gemmBlock, k)
			for jj := 0; jj < n; jj += gemmBlock {
				jMax := min(jj+gemmBlock, n)
				for i := ii; i < iMax; i++ {
					ci := c[i*n : (i+1)*n]
					ai := a[i*k : (i+1)*k]
					for p := pp; p < pMax; p++ {
						av := ai[p]
						bp := b[p*n : (p+1)*n]
						for j := jj; j < jMax; j++ {
							ci[j] += av * bp[j]
						}
					}
				}
			}
		}
	}
}

func gemmParallel(a, b, c []float32, m, k, n int) {
	// Small problems are not worth the fan-out.
	if Default.Workers() <= 1 || int64(m)*int64(k)*int64(n) < 64*64*64 {
		gemmBlocked(a, b, c, m, k, n)
		return
	}
	for i := 0; i < m*n; i++ {
		c[i] = 0
	}
	// One task per row panel, at most one blocking tile tall but fine
	// enough that even short matrices (m below gemmBlock) split across the
	// worker budget; the pool balances panels across whatever workers are
	// free.
	rowsPer := (m + Default.Workers() - 1) / Default.Workers()
	if rowsPer > gemmBlock {
		rowsPer = gemmBlock
	}
	if rowsPer < 1 {
		rowsPer = 1
	}
	blocks := (m + rowsPer - 1) / rowsPer
	Default.Parallel(blocks, func(bi int) {
		i0 := bi * rowsPer
		gemmBlockedRange(a, b, c, m, k, n, i0, min(i0+rowsPer, m))
	})
}

// GemmTransB computes C = A·Bᵀ where A is M×K and B is N×K (both row-major),
// producing M×N. Used by backward passes of dense layers. Large problems
// route through the packed kernel, which folds the transpose into packing.
func GemmTransB(a, b, c []float32, m, k, n int) {
	if int64(m)*int64(k)*int64(n) >= packedMinVol {
		gemmPacked(a, b, c, m, k, n, false, true)
		return
	}
	gemmTransBLoop(a, b, c, m, k, n)
}

func gemmTransBLoop(a, b, c []float32, m, k, n int) {
	for i := 0; i < m; i++ {
		ai := a[i*k : (i+1)*k]
		ci := c[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			bj := b[j*k : (j+1)*k]
			var s float32
			for p := range ai {
				s += ai[p] * bj[p]
			}
			ci[j] = s
		}
	}
}

// GemmTransA computes C = Aᵀ·B where A is K×M and B is K×N (both row-major),
// producing M×N. Used by weight-gradient computation of dense layers. Large
// problems route through the packed kernel, which folds the transpose into
// packing.
func GemmTransA(a, b, c []float32, m, k, n int) {
	if int64(m)*int64(k)*int64(n) >= packedMinVol {
		gemmPacked(a, b, c, m, k, n, true, false)
		return
	}
	gemmTransALoop(a, b, c, m, k, n)
}

func gemmTransALoop(a, b, c []float32, m, k, n int) {
	for i := 0; i < m*n; i++ {
		c[i] = 0
	}
	for p := 0; p < k; p++ {
		ap := a[p*m : (p+1)*m]
		bp := b[p*n : (p+1)*n]
		for i, av := range ap {
			if av == 0 {
				continue
			}
			ci := c[i*n : (i+1)*n]
			for j, bv := range bp {
				ci[j] += av * bv
			}
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
