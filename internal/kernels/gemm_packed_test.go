package kernels

import (
	"fmt"
	"testing"

	"deep500/internal/tensor"
)

// raggedDims are deliberately awkward sizes around the micro-tile and
// cache-block boundaries, including 1 (GEMV-shaped calls).
var raggedDims = []int{1, 3, 17, 63, 64, 65, 127}

// transpose returns the n×m transpose of the m×n row-major matrix x.
func transpose(x []float32, m, n int) []float32 {
	t := make([]float32, m*n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			t[j*m+i] = x[i*n+j]
		}
	}
	return t
}

// TestGemmPackedRagged pits the packed kernel against the float64 reference
// on every ragged (m, k, n) combination: edge tiles in both directions,
// padded k depth, and m=1 GEMV shapes all hit their special paths.
func TestGemmPackedRagged(t *testing.T) {
	rng := tensor.NewRNG(11)
	for _, m := range raggedDims {
		for _, k := range raggedDims {
			for _, n := range raggedDims {
				a := randSlice(rng, m*k)
				b := randSlice(rng, k*n)
				want := gemmRef(a, b, m, k, n)
				c := make([]float32, m*n)
				Gemm(GemmPacked, a, b, c, m, k, n)
				if d := maxAbsDiff(c, want); d > 1e-3*float64(k) {
					t.Fatalf("packed %dx%dx%d: max diff %g", m, k, n, d)
				}
			}
		}
	}
}

// TestGemmTRagged checks every transpose combination of GemmT against the
// reference, on ragged shapes, for both the packed path and the strided
// fallback loops (selected via algo).
func TestGemmTRagged(t *testing.T) {
	rng := tensor.NewRNG(12)
	for _, algo := range []GemmAlgo{GemmPacked, GemmBlocked} {
		for _, m := range raggedDims {
			for _, k := range raggedDims {
				for _, n := range raggedDims {
					// Keep the full sweep for packed; thin out the fallback
					// sweep to keep the test fast.
					if algo == GemmBlocked && (m > 65 || k > 65) {
						continue
					}
					a := randSlice(rng, m*k)
					b := randSlice(rng, k*n)
					want := gemmRef(a, b, m, k, n)
					at := transpose(a, m, k) // stored k×m
					bt := transpose(b, k, n) // stored n×k
					for _, tc := range []struct {
						transA, transB bool
						a, b           []float32
					}{
						{false, false, a, b},
						{true, false, at, b},
						{false, true, a, bt},
						{true, true, at, bt},
					} {
						c := make([]float32, m*n)
						GemmT(algo, tc.a, tc.b, c, m, k, n, tc.transA, tc.transB)
						if d := maxAbsDiff(c, want); d > 1e-3*float64(k) {
							t.Fatalf("%v GemmT(%v,%v) %dx%dx%d: max diff %g",
								algo, tc.transA, tc.transB, m, k, n, d)
						}
					}
				}
			}
		}
	}
}

// TestGemmTransVariantsRagged exercises the exported GemmTransA/GemmTransB
// entry points across their packed/loop routing threshold.
func TestGemmTransVariantsRagged(t *testing.T) {
	rng := tensor.NewRNG(13)
	for _, m := range raggedDims {
		for _, k := range raggedDims {
			for _, n := range raggedDims {
				if m > 65 || n > 65 { // keep the cubic sweep affordable
					continue
				}
				a := randSlice(rng, m*k)
				b := randSlice(rng, k*n)
				want := gemmRef(a, b, m, k, n)

				// GemmTransB: C = A·(Bᵀ)ᵀ with B stored n×k.
				bt := transpose(b, k, n)
				c := make([]float32, m*n)
				GemmTransB(a, bt, c, m, k, n)
				if d := maxAbsDiff(c, want); d > 1e-3*float64(k) {
					t.Fatalf("GemmTransB %dx%dx%d: max diff %g", m, k, n, d)
				}

				// GemmTransA: C = (Aᵀ)ᵀ·B with A stored k×m.
				at := transpose(a, m, k)
				c2 := make([]float32, m*n)
				GemmTransA(at, b, c2, m, k, n)
				if d := maxAbsDiff(c2, want); d > 1e-3*float64(k) {
					t.Fatalf("GemmTransA %dx%dx%d: max diff %g", m, k, n, d)
				}
			}
		}
	}
}

// TestGemmPackedConcurrent runs many packed GEMMs from concurrent
// goroutines against a widened worker pool, so the race detector can see
// pack-buffer recycling and shared packed-B panels misbehave.
func TestGemmPackedConcurrent(t *testing.T) {
	old := Default
	Default = NewPool(4)
	defer func() { Default = old }()

	rng := tensor.NewRNG(14)
	m, k, n := 150, 140, 130
	a := randSlice(rng, m*k)
	b := randSlice(rng, k*n)
	want := gemmRef(a, b, m, k, n)

	const goroutines = 4
	errc := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		go func() {
			for iter := 0; iter < 8; iter++ {
				c := make([]float32, m*n)
				Gemm(GemmPacked, a, b, c, m, k, n)
				if d := maxAbsDiff(c, want); d > 1e-3*float64(k) {
					errc <- fmt.Errorf("concurrent packed: max diff %g", d)
					return
				}
			}
			errc <- nil
		}()
	}
	for g := 0; g < goroutines; g++ {
		if err := <-errc; err != nil {
			t.Fatal(err)
		}
	}
}

// TestGemmPackedScratchReuse asserts the pack buffers recycle: after a
// warm-up call, repeated packed GEMMs should be served entirely from the
// scratch arena.
func TestGemmPackedScratchReuse(t *testing.T) {
	rng := tensor.NewRNG(15)
	m, k, n := 96, 96, 96
	a := randSlice(rng, m*k)
	b := randSlice(rng, k*n)
	c := make([]float32, m*n)
	Gemm(GemmPacked, a, b, c, m, k, n) // warm the arena
	before := scratch.Stats()
	for i := 0; i < 4; i++ {
		Gemm(GemmPacked, a, b, c, m, k, n)
	}
	after := scratch.Stats()
	gets := after.Gets - before.Gets
	hits := after.Hits - before.Hits
	if gets == 0 {
		t.Fatal("packed GEMM made no scratch requests")
	}
	if hits != gets {
		t.Fatalf("scratch misses after warm-up: %d gets, %d hits", gets, hits)
	}
}

func TestParseGemmAlgo(t *testing.T) {
	for _, algo := range []GemmAlgo{GemmNaive, GemmBlocked, GemmParallel, GemmPacked} {
		got, ok := ParseGemmAlgo(algo.String())
		if !ok || got != algo {
			t.Fatalf("ParseGemmAlgo(%q) = %v, %v", algo.String(), got, ok)
		}
	}
	if _, ok := ParseGemmAlgo("nope"); ok {
		t.Fatal("ParseGemmAlgo accepted an unknown name")
	}
}
