package kernels

import (
	"math"
	"testing"
)

func almostEq(a, b []float32, tol float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Abs(float64(a[i]-b[i])) > tol {
			return false
		}
	}
	return true
}

// TestBiasActMatchesComposition validates the fused epilogue against the
// unfused kernels it replaces: broadcast bias add followed by the
// standalone activation kernel.
func TestBiasActMatchesComposition(t *testing.T) {
	const rows, cols = 3, 4
	src := []float32{
		-1.5, 0.25, 2, -0.125,
		0.5, -2, 1.25, 3,
		-0.75, 0.0625, -4, 0.875,
	}
	bias := []float32{0.5, -0.25, 0, 1}

	for _, tc := range []struct {
		act   Act
		apply func(in, out []float32)
	}{
		{ActReLU, ReLU},
		{ActSigmoid, Sigmoid},
		{ActTanh, Tanh},
		{ActNone, func(in, out []float32) { copy(out, in) }},
	} {
		for _, withBias := range []bool{true, false} {
			// Reference: bias sweep into a fresh buffer, then activation.
			pre := make([]float32, len(src))
			copy(pre, src)
			b := bias
			if !withBias {
				b = nil
			} else {
				for r := 0; r < rows; r++ {
					for j := 0; j < cols; j++ {
						pre[r*cols+j] += bias[j]
					}
				}
			}
			want := make([]float32, len(src))
			tc.apply(pre, want)

			got := make([]float32, len(src))
			copy(got, src)
			BiasAct(rows, cols, got, b, tc.act)
			if !almostEq(got, want, 1e-6) {
				t.Fatalf("BiasAct(%v, bias=%t) = %v, want %v", tc.act, withBias, got, want)
			}
		}
	}
}

// TestActGradFromOutputMatchesBackwardKernels validates the output-derived
// backward epilogue against the standalone backward kernels.
func TestActGradFromOutputMatchesBackwardKernels(t *testing.T) {
	pre := []float32{-1.5, 0.25, 2, -0.125, 0.5, -2}
	gradOut := []float32{1, -0.5, 0.25, 2, -1, 0.125}
	n := len(pre)

	for _, tc := range []struct {
		act Act
		fwd func(in, out []float32)
		bwd func(y []float32) []float32
	}{
		{ActReLU, ReLU, func(y []float32) []float32 {
			// Standalone ReLU backward keys on the forward *input*.
			want := make([]float32, n)
			ReLUBackward(pre, gradOut, want)
			return want
		}},
		{ActSigmoid, Sigmoid, func(y []float32) []float32 {
			want := make([]float32, n)
			SigmoidBackward(y, gradOut, want)
			return want
		}},
		{ActTanh, Tanh, func(y []float32) []float32 {
			want := make([]float32, n)
			TanhBackward(y, gradOut, want)
			return want
		}},
	} {
		y := make([]float32, n)
		tc.fwd(pre, y)
		want := tc.bwd(y)
		got := make([]float32, n)
		ActGradFromOutput(tc.act, y, gradOut, got)
		if !almostEq(got, want, 1e-6) {
			t.Fatalf("ActGradFromOutput(%v) = %v, want %v", tc.act, got, want)
		}
	}

	// ActNone passes the gradient through unchanged.
	got := make([]float32, n)
	ActGradFromOutput(ActNone, pre, gradOut, got)
	if !almostEq(got, gradOut, 0) {
		t.Fatalf("ActGradFromOutput(ActNone) = %v, want %v", got, gradOut)
	}
}
