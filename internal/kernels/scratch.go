package kernels

import "deep500/internal/tensor"

// scratch pools the package's kernel workspaces — GEMM pack panels, im2col
// column buffers, Winograd transform tables — so steady-state kernel calls
// allocate nothing. A dedicated arena (rather than an executor's activation
// arena) keeps kernel scratch out of activation statistics and serves bare
// kernel calls that have no executor at all. tensor.Arena is concurrency-
// safe, so parallel workers draw their private buffers from the same pool.
var scratch = tensor.NewArena()
