package kernels

import "math"

// ReLU computes out[i] = max(0, in[i]).
func ReLU(in, out []float32) {
	for i, v := range in {
		if v > 0 {
			out[i] = v
		} else {
			out[i] = 0
		}
	}
}

// ReLUBackward computes gradIn[i] = gradOut[i] if fwdIn[i] > 0 else 0.
func ReLUBackward(fwdIn, gradOut, gradIn []float32) {
	for i, v := range fwdIn {
		if v > 0 {
			gradIn[i] = gradOut[i]
		} else {
			gradIn[i] = 0
		}
	}
}

// Sigmoid computes out[i] = 1/(1+e^(-in[i])).
func Sigmoid(in, out []float32) {
	for i, v := range in {
		out[i] = float32(1 / (1 + math.Exp(-float64(v))))
	}
}

// SigmoidBackward uses the forward output: grad = y·(1-y)·gradOut.
func SigmoidBackward(fwdOut, gradOut, gradIn []float32) {
	for i, y := range fwdOut {
		gradIn[i] = gradOut[i] * y * (1 - y)
	}
}

// Tanh computes out[i] = tanh(in[i]).
func Tanh(in, out []float32) {
	for i, v := range in {
		out[i] = float32(math.Tanh(float64(v)))
	}
}

// TanhBackward uses the forward output: grad = (1-y²)·gradOut.
func TanhBackward(fwdOut, gradOut, gradIn []float32) {
	for i, y := range fwdOut {
		gradIn[i] = gradOut[i] * (1 - y*y)
	}
}

// Softmax computes a numerically stable row-wise softmax over an n×m matrix.
func Softmax(in, out []float32, n, m int) {
	for r := 0; r < n; r++ {
		row := in[r*m : (r+1)*m]
		dst := out[r*m : (r+1)*m]
		mx := float32(math.Inf(-1))
		for _, v := range row {
			if v > mx {
				mx = v
			}
		}
		var sum float64
		for i, v := range row {
			e := math.Exp(float64(v - mx))
			dst[i] = float32(e)
			sum += e
		}
		inv := float32(1 / sum)
		for i := range dst {
			dst[i] *= inv
		}
	}
}

// CrossEntropyForward computes mean cross-entropy loss of row-softmax
// probabilities probs (n×m) against integer labels, and returns the loss.
func CrossEntropyForward(probs []float32, labels []int, n, m int) float32 {
	var loss float64
	for r := 0; r < n; r++ {
		p := float64(probs[r*m+labels[r]])
		if p < 1e-12 {
			p = 1e-12
		}
		loss -= math.Log(p)
	}
	return float32(loss / float64(n))
}

// SoftmaxCrossEntropyBackward computes the fused gradient
// (probs - onehot(labels)) / n into gradIn.
func SoftmaxCrossEntropyBackward(probs []float32, labels []int, gradIn []float32, n, m int) {
	inv := 1 / float32(n)
	for r := 0; r < n; r++ {
		row := probs[r*m : (r+1)*m]
		dst := gradIn[r*m : (r+1)*m]
		for i, p := range row {
			dst[i] = p * inv
		}
		dst[labels[r]] -= inv
	}
}

// BatchNormForward normalizes an N×C×HW input per channel:
// out = gamma·(x-μ)/sqrt(σ²+eps) + beta. It returns the per-channel batch
// mean and variance (needed for backward), and updates running statistics
// with the given momentum if runMean/runVar are non-nil.
func BatchNormForward(n, c, hw int, in, gamma, beta, out []float32, eps float32,
	runMean, runVar []float32, momentum float32) (mean, variance []float32) {
	mean = make([]float32, c)
	variance = make([]float32, c)
	cnt := float64(n * hw)
	for ch := 0; ch < c; ch++ {
		var sum float64
		for i := 0; i < n; i++ {
			base := (i*c + ch) * hw
			for j := 0; j < hw; j++ {
				sum += float64(in[base+j])
			}
		}
		mu := sum / cnt
		var sq float64
		for i := 0; i < n; i++ {
			base := (i*c + ch) * hw
			for j := 0; j < hw; j++ {
				d := float64(in[base+j]) - mu
				sq += d * d
			}
		}
		v := sq / cnt
		mean[ch] = float32(mu)
		variance[ch] = float32(v)
		inv := float32(1 / math.Sqrt(v+float64(eps)))
		g, b := gamma[ch], beta[ch]
		for i := 0; i < n; i++ {
			base := (i*c + ch) * hw
			for j := 0; j < hw; j++ {
				out[base+j] = g*(in[base+j]-mean[ch])*inv + b
			}
		}
		if runMean != nil {
			runMean[ch] = (1-momentum)*runMean[ch] + momentum*mean[ch]
			runVar[ch] = (1-momentum)*runVar[ch] + momentum*variance[ch]
		}
	}
	return mean, variance
}

// BatchNormBackward computes input, gamma and beta gradients for
// BatchNormForward given the saved batch statistics.
func BatchNormBackward(n, c, hw int, in, gradOut, gamma, mean, variance []float32, eps float32,
	gradIn, gradGamma, gradBeta []float32) {
	cnt := float32(n * hw)
	for ch := 0; ch < c; ch++ {
		inv := float32(1 / math.Sqrt(float64(variance[ch])+float64(eps)))
		var sumDy, sumDyXhat float32
		for i := 0; i < n; i++ {
			base := (i*c + ch) * hw
			for j := 0; j < hw; j++ {
				dy := gradOut[base+j]
				xhat := (in[base+j] - mean[ch]) * inv
				sumDy += dy
				sumDyXhat += dy * xhat
			}
		}
		if gradGamma != nil {
			gradGamma[ch] = sumDyXhat
		}
		if gradBeta != nil {
			gradBeta[ch] = sumDy
		}
		g := gamma[ch]
		for i := 0; i < n; i++ {
			base := (i*c + ch) * hw
			for j := 0; j < hw; j++ {
				dy := gradOut[base+j]
				xhat := (in[base+j] - mean[ch]) * inv
				gradIn[base+j] = g * inv * (dy - sumDy/cnt - xhat*sumDyXhat/cnt)
			}
		}
	}
}
