package kernels

import (
	"math"
	"testing"

	"deep500/internal/tensor"
)

func TestReLU(t *testing.T) {
	in := []float32{-1, 0, 2}
	out := make([]float32, 3)
	ReLU(in, out)
	if out[0] != 0 || out[1] != 0 || out[2] != 2 {
		t.Fatalf("ReLU = %v", out)
	}
	g := make([]float32, 3)
	ReLUBackward(in, []float32{5, 5, 5}, g)
	if g[0] != 0 || g[1] != 0 || g[2] != 5 {
		t.Fatalf("ReLUBackward = %v", g)
	}
}

func TestSigmoidTanh(t *testing.T) {
	in := []float32{0}
	out := make([]float32, 1)
	Sigmoid(in, out)
	if math.Abs(float64(out[0])-0.5) > 1e-6 {
		t.Fatalf("sigmoid(0) = %v", out[0])
	}
	Tanh(in, out)
	if out[0] != 0 {
		t.Fatalf("tanh(0) = %v", out[0])
	}
	// backward via finite differences
	x := []float32{0.3}
	h := float32(1e-3)
	y0, y1, yb := make([]float32, 1), make([]float32, 1), make([]float32, 1)
	Sigmoid([]float32{x[0] - h}, y0)
	Sigmoid([]float32{x[0] + h}, y1)
	Sigmoid(x, yb)
	g := make([]float32, 1)
	SigmoidBackward(yb, []float32{1}, g)
	num := (y1[0] - y0[0]) / (2 * h)
	if math.Abs(float64(num-g[0])) > 1e-3 {
		t.Fatalf("sigmoid grad %v vs numeric %v", g[0], num)
	}
}

func TestSoftmaxRowsSumToOne(t *testing.T) {
	rng := tensor.NewRNG(4)
	n, m := 5, 7
	in := randSlice(rng, n*m)
	out := make([]float32, n*m)
	Softmax(in, out, n, m)
	for r := 0; r < n; r++ {
		var s float64
		for _, v := range out[r*m : (r+1)*m] {
			if v < 0 || v > 1 {
				t.Fatalf("prob out of range: %v", v)
			}
			s += float64(v)
		}
		if math.Abs(s-1) > 1e-5 {
			t.Fatalf("row %d sums to %v", r, s)
		}
	}
}

func TestSoftmaxStability(t *testing.T) {
	in := []float32{1000, 1001, 1002}
	out := make([]float32, 3)
	Softmax(in, out, 1, 3)
	for _, v := range out {
		if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
			t.Fatalf("softmax overflow: %v", out)
		}
	}
	if out[2] <= out[1] || out[1] <= out[0] {
		t.Fatalf("ordering lost: %v", out)
	}
}

func TestCrossEntropy(t *testing.T) {
	// perfect prediction ⇒ loss ≈ 0; uniform ⇒ log(m)
	probs := []float32{1, 0, 0}
	if l := CrossEntropyForward(probs, []int{0}, 1, 3); l > 1e-5 {
		t.Fatalf("perfect loss = %v", l)
	}
	uniform := []float32{1. / 3, 1. / 3, 1. / 3}
	if l := CrossEntropyForward(uniform, []int{1}, 1, 3); math.Abs(float64(l)-math.Log(3)) > 1e-5 {
		t.Fatalf("uniform loss = %v", l)
	}
}

func TestSoftmaxCrossEntropyGradient(t *testing.T) {
	// numeric check of d loss / d logits through softmax+CE
	rng := tensor.NewRNG(8)
	n, m := 3, 4
	logits := randSlice(rng, n*m)
	labels := []int{1, 3, 0}
	probs := make([]float32, n*m)
	Softmax(logits, probs, n, m)
	grad := make([]float32, n*m)
	SoftmaxCrossEntropyBackward(probs, labels, grad, n, m)
	h := float32(1e-2)
	for i := 0; i < n*m; i++ {
		lp := make([]float32, n*m)
		lm := make([]float32, n*m)
		copy(lp, logits)
		copy(lm, logits)
		lp[i] += h
		lm[i] -= h
		pp := make([]float32, n*m)
		pm := make([]float32, n*m)
		Softmax(lp, pp, n, m)
		Softmax(lm, pm, n, m)
		num := (CrossEntropyForward(pp, labels, n, m) - CrossEntropyForward(pm, labels, n, m)) / (2 * h)
		if math.Abs(float64(num-grad[i])) > 5e-3 {
			t.Fatalf("grad[%d] = %v, numeric %v", i, grad[i], num)
		}
	}
}

func TestMaxPoolForwardBackward(t *testing.T) {
	s := PoolShape{N: 1, C: 1, H: 4, W: 4, KH: 2, KW: 2, StrideH: 2, StrideW: 2}
	in := []float32{
		1, 2, 5, 6,
		3, 4, 7, 8,
		9, 10, 13, 14,
		11, 12, 15, 16,
	}
	out := make([]float32, s.OutputSize())
	argmax := make([]int32, s.OutputSize())
	MaxPool2D(s, in, out, argmax)
	want := []float32{4, 8, 12, 16}
	if maxAbsDiff(out, want) != 0 {
		t.Fatalf("maxpool = %v", out)
	}
	gin := make([]float32, len(in))
	MaxPool2DBackward(s, []float32{1, 2, 3, 4}, argmax, gin)
	if gin[5] != 1 || gin[7] != 2 || gin[13] != 3 || gin[15] != 4 {
		t.Fatalf("maxpool backward = %v", gin)
	}
}

func TestAvgPoolAndBackward(t *testing.T) {
	s := PoolShape{N: 1, C: 1, H: 2, W: 2, KH: 2, KW: 2, StrideH: 2, StrideW: 2}
	in := []float32{1, 2, 3, 4}
	out := make([]float32, 1)
	AvgPool2D(s, in, out)
	if out[0] != 2.5 {
		t.Fatalf("avgpool = %v", out[0])
	}
	gin := make([]float32, 4)
	AvgPool2DBackward(s, []float32{4}, gin)
	for _, g := range gin {
		if g != 1 {
			t.Fatalf("avgpool backward = %v", gin)
		}
	}
}

func TestGlobalAvgPool(t *testing.T) {
	in := []float32{1, 2, 3, 4, 10, 20, 30, 40}
	out := make([]float32, 2)
	GlobalAvgPool(1, 2, 2, 2, in, out)
	if out[0] != 2.5 || out[1] != 25 {
		t.Fatalf("gap = %v", out)
	}
	gin := make([]float32, 8)
	GlobalAvgPoolBackward(1, 2, 2, 2, []float32{4, 8}, gin)
	if gin[0] != 1 || gin[4] != 2 {
		t.Fatalf("gap backward = %v", gin)
	}
}

func TestBatchNormForwardNormalizes(t *testing.T) {
	rng := tensor.NewRNG(9)
	n, c, hw := 8, 3, 16
	in := randSlice(rng, n*c*hw)
	gamma := []float32{1, 1, 1}
	beta := []float32{0, 0, 0}
	out := make([]float32, len(in))
	BatchNormForward(n, c, hw, in, gamma, beta, out, 1e-5, nil, nil, 0.1)
	// each channel of out should have ≈0 mean and ≈1 variance
	for ch := 0; ch < c; ch++ {
		var sum, sq float64
		for i := 0; i < n; i++ {
			for j := 0; j < hw; j++ {
				v := float64(out[(i*c+ch)*hw+j])
				sum += v
				sq += v * v
			}
		}
		cnt := float64(n * hw)
		mean := sum / cnt
		variance := sq/cnt - mean*mean
		if math.Abs(mean) > 1e-4 || math.Abs(variance-1) > 1e-2 {
			t.Fatalf("channel %d: mean=%v var=%v", ch, mean, variance)
		}
	}
}

func TestBatchNormBackwardNumeric(t *testing.T) {
	rng := tensor.NewRNG(10)
	n, c, hw := 3, 2, 4
	in := randSlice(rng, n*c*hw)
	gamma := []float32{1.5, 0.5}
	beta := []float32{0.1, -0.2}
	eps := float32(1e-5)
	forward := func(x []float32) []float32 {
		out := make([]float32, len(x))
		BatchNormForward(n, c, hw, x, gamma, beta, out, eps, nil, nil, 0)
		return out
	}
	out := make([]float32, len(in))
	mean, variance := BatchNormForward(n, c, hw, in, gamma, beta, out, eps, nil, nil, 0)
	gradOut := randSlice(rng, len(in))
	gradIn := make([]float32, len(in))
	gradGamma := make([]float32, c)
	gradBeta := make([]float32, c)
	BatchNormBackward(n, c, hw, in, gradOut, gamma, mean, variance, eps, gradIn, gradGamma, gradBeta)
	h := float32(1e-2)
	for i := 0; i < len(in); i += 5 {
		xp := append([]float32(nil), in...)
		xm := append([]float32(nil), in...)
		xp[i] += h
		xm[i] -= h
		op, om := forward(xp), forward(xm)
		var num float64
		for j := range op {
			num += float64(op[j]-om[j]) / float64(2*h) * float64(gradOut[j])
		}
		if math.Abs(num-float64(gradIn[i])) > 2e-2 {
			t.Fatalf("bn gradIn[%d] = %v numeric %v", i, gradIn[i], num)
		}
	}
}

func TestFusedOptimizersMatchComposed(t *testing.T) {
	rng := tensor.NewRNG(13)
	n := 100
	param := randSlice(rng, n)
	grad := randSlice(rng, n)

	// Adam fused vs step-by-step composition
	pf := append([]float32(nil), param...)
	m := make([]float32, n)
	v := make([]float32, n)
	AdamFused(pf, grad, m, v, 0.001, 0.9, 0.999, 1e-8, 1)

	pc := append([]float32(nil), param...)
	mc := make([]float32, n)
	vc := make([]float32, n)
	for i := 0; i < n; i++ {
		mc[i] = 0.9*mc[i] + 0.1*grad[i]
		vc[i] = 0.999*vc[i] + 0.001*grad[i]*grad[i]
	}
	bc1 := 1 - float32(math.Pow(0.9, 1))
	bc2 := 1 - float32(math.Pow(0.999, 1))
	for i := 0; i < n; i++ {
		pc[i] -= 0.001 * (mc[i] / bc1) / (float32(math.Sqrt(float64(vc[i]/bc2))) + 1e-8)
	}
	if d := maxAbsDiff(pf, pc); d > 1e-5 {
		t.Fatalf("fused vs composed Adam diff %g", d)
	}
}

func TestBiasReLUFused(t *testing.T) {
	x := []float32{-2, 0.5, 1, -3}
	BiasReLUFused(1, 2, 2, x, []float32{1, 2})
	want := []float32{0, 1.5, 3, 0}
	if maxAbsDiff(x, want) != 0 {
		t.Fatalf("BiasReLUFused = %v", x)
	}
}
