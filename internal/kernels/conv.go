package kernels

import "fmt"

// ConvAlgo selects a 2D convolution implementation, mirroring the algorithm
// choices (im2col, Winograd, direct) that the paper's Level 0 and the
// micro-batching transformation (Fig. 7) reason about.
type ConvAlgo int

const (
	// ConvDirect is the straightforward 7-loop convolution: no workspace,
	// lowest memory, slowest for large channel counts.
	ConvDirect ConvAlgo = iota
	// ConvIm2Col lowers convolution to GEMM through an im2col buffer
	// ("implicit precompute GEMM" in the paper's Fig. 7): fast, but the
	// workspace grows with C·KH·KW·OH·OW per image.
	ConvIm2Col
	// ConvWinograd uses the F(2×2, 3×3) Winograd transform: fewer
	// multiplications for 3×3/stride-1 convolutions, moderate workspace.
	ConvWinograd
)

func (a ConvAlgo) String() string {
	switch a {
	case ConvDirect:
		return "direct"
	case ConvIm2Col:
		return "im2col"
	case ConvWinograd:
		return "winograd"
	}
	return "unknown"
}

// ConvShape describes a 2D convolution problem in NCHW layout.
type ConvShape struct {
	N, C, H, W int // input: batch, channels, height, width
	M          int // output channels (number of filters)
	KH, KW     int // kernel size
	StrideH    int
	StrideW    int
	PadH, PadW int
}

// OutDims returns the output spatial dimensions.
func (s ConvShape) OutDims() (oh, ow int) {
	oh = (s.H+2*s.PadH-s.KH)/s.StrideH + 1
	ow = (s.W+2*s.PadW-s.KW)/s.StrideW + 1
	return
}

// InputSize, WeightSize and OutputSize return element counts of the three
// tensors involved.
func (s ConvShape) InputSize() int  { return s.N * s.C * s.H * s.W }
func (s ConvShape) WeightSize() int { return s.M * s.C * s.KH * s.KW }
func (s ConvShape) OutputSize() int {
	oh, ow := s.OutDims()
	return s.N * s.M * oh * ow
}

// FLOPs returns the multiply-add count (×2) of the direct algorithm; the
// standard figure of merit for convolution throughput.
func (s ConvShape) FLOPs() int64 {
	oh, ow := s.OutDims()
	return 2 * int64(s.N) * int64(s.M) * int64(oh) * int64(ow) * int64(s.C) * int64(s.KH) * int64(s.KW)
}

// WorkspaceBytes returns the scratch memory (bytes) algo needs for a single
// invocation at this shape. This drives the device memory model used by the
// ILP micro-batching transformation: as on the paper's GPUs, the im2col
// ("implicit precompute GEMM") workspace lowers the *whole* batch at once
// and therefore grows linearly with N — the property micro-batching
// exploits. (The CPU kernels in this package stream per image; the model
// describes the emulated accelerator, not the host.)
func (s ConvShape) WorkspaceBytes(algo ConvAlgo) int64 {
	oh, ow := s.OutDims()
	n := int64(s.N)
	if n < 1 {
		n = 1
	}
	switch algo {
	case ConvDirect:
		return 0
	case ConvIm2Col:
		return n * int64(s.C*s.KH*s.KW) * int64(oh*ow) * 4
	case ConvWinograd:
		// transformed weights (M×C×16) plus per-image tile buffers
		tiles := ((oh + 1) / 2) * ((ow + 1) / 2)
		return (int64(s.M*s.C)*16 + n*int64(tiles)*int64(s.C+s.M)*16) * 4
	}
	return 0
}

// SupportsWinograd reports whether the shape satisfies the F(2×2,3×3)
// constraints (3×3 kernel, stride 1).
func (s ConvShape) SupportsWinograd() bool {
	return s.KH == 3 && s.KW == 3 && s.StrideH == 1 && s.StrideW == 1
}

func (s ConvShape) String() string {
	return fmt.Sprintf("N%d C%d H%d W%d M%d K%dx%d s%d p%d", s.N, s.C, s.H, s.W, s.M, s.KH, s.KW, s.StrideH, s.PadH)
}

// Conv2D computes out = conv(in, w) + bias with the selected algorithm.
// in is N×C×H×W, w is M×C×KH×KW, bias is length M (may be nil) and out is
// N×M×OH×OW, all row-major.
func Conv2D(algo ConvAlgo, s ConvShape, in, w, bias, out []float32) {
	if len(in) < s.InputSize() || len(w) < s.WeightSize() || len(out) < s.OutputSize() {
		panic("kernels: Conv2D buffer too small")
	}
	switch algo {
	case ConvDirect:
		conv2DDirect(s, in, w, out)
	case ConvIm2Col:
		conv2DIm2Col(s, in, w, out)
	case ConvWinograd:
		if !s.SupportsWinograd() {
			panic("kernels: Winograd requires 3x3 kernel with stride 1")
		}
		conv2DWinograd(s, in, w, out)
	default:
		panic("kernels: unknown convolution algorithm")
	}
	if bias != nil {
		addBiasNCHW(s, bias, out)
	}
}

func addBiasNCHW(s ConvShape, bias, out []float32) {
	oh, ow := s.OutDims()
	plane := oh * ow
	for n := 0; n < s.N; n++ {
		for m := 0; m < s.M; m++ {
			dst := out[(n*s.M+m)*plane : (n*s.M+m+1)*plane]
			b := bias[m]
			for i := range dst {
				dst[i] += b
			}
		}
	}
}

func conv2DDirect(s ConvShape, in, w, out []float32) {
	oh, ow := s.OutDims()
	for n := 0; n < s.N; n++ {
		inImg := in[n*s.C*s.H*s.W:]
		outImg := out[n*s.M*oh*ow:]
		for m := 0; m < s.M; m++ {
			wm := w[m*s.C*s.KH*s.KW:]
			dst := outImg[m*oh*ow:]
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					var acc float32
					iy0 := oy*s.StrideH - s.PadH
					ix0 := ox*s.StrideW - s.PadW
					for c := 0; c < s.C; c++ {
						inC := inImg[c*s.H*s.W:]
						wc := wm[c*s.KH*s.KW:]
						for ky := 0; ky < s.KH; ky++ {
							iy := iy0 + ky
							if iy < 0 || iy >= s.H {
								continue
							}
							rowIn := inC[iy*s.W:]
							rowW := wc[ky*s.KW:]
							for kx := 0; kx < s.KW; kx++ {
								ix := ix0 + kx
								if ix < 0 || ix >= s.W {
									continue
								}
								acc += rowIn[ix] * rowW[kx]
							}
						}
					}
					dst[oy*ow+ox] = acc
				}
			}
		}
	}
}

// Im2Col lowers one image (C×H×W) into a (C·KH·KW)×(OH·OW) matrix.
func Im2Col(s ConvShape, img, col []float32) {
	oh, ow := s.OutDims()
	idx := 0
	for c := 0; c < s.C; c++ {
		inC := img[c*s.H*s.W:]
		for ky := 0; ky < s.KH; ky++ {
			for kx := 0; kx < s.KW; kx++ {
				for oy := 0; oy < oh; oy++ {
					iy := oy*s.StrideH - s.PadH + ky
					for ox := 0; ox < ow; ox++ {
						ix := ox*s.StrideW - s.PadW + kx
						if iy < 0 || iy >= s.H || ix < 0 || ix >= s.W {
							col[idx] = 0
						} else {
							col[idx] = inC[iy*s.W+ix]
						}
						idx++
					}
				}
			}
		}
	}
}

// Col2Im scatters a (C·KH·KW)×(OH·OW) matrix back into a C×H×W image,
// accumulating overlaps; used by convolution backward-data.
func Col2Im(s ConvShape, col, img []float32) {
	oh, ow := s.OutDims()
	for i := range img[:s.C*s.H*s.W] {
		img[i] = 0
	}
	idx := 0
	for c := 0; c < s.C; c++ {
		imC := img[c*s.H*s.W:]
		for ky := 0; ky < s.KH; ky++ {
			for kx := 0; kx < s.KW; kx++ {
				for oy := 0; oy < oh; oy++ {
					iy := oy*s.StrideH - s.PadH + ky
					for ox := 0; ox < ow; ox++ {
						ix := ox*s.StrideW - s.PadW + kx
						if iy >= 0 && iy < s.H && ix >= 0 && ix < s.W {
							imC[iy*s.W+ix] += col[idx]
						}
						idx++
					}
				}
			}
		}
	}
}

func conv2DIm2Col(s ConvShape, in, w, out []float32) {
	oh, ow := s.OutDims()
	k := s.C * s.KH * s.KW
	spatial := oh * ow
	span := Default.Span(s.N)
	if span <= 1 {
		// Im2Col writes every column element, so the unspecified contents
		// of an arena scratch buffer are fine.
		col := scratch.GetBuf(k * spatial)
		for n := 0; n < s.N; n++ {
			Im2Col(s, in[n*s.C*s.H*s.W:], col)
			Gemm(GemmPacked, w, col, out[n*s.M*spatial:(n+1)*s.M*spatial], s.M, k, spatial)
		}
		scratch.PutBuf(col)
		return
	}
	// One task per image; each worker slot lowers through a private column
	// buffer drawn lazily from the scratch arena on first use.
	cols := make([][]float32, span)
	Default.ParallelWorker(s.N, func(wk, n int) {
		if cols[wk] == nil {
			cols[wk] = scratch.GetBuf(k * spatial)
		}
		Im2Col(s, in[n*s.C*s.H*s.W:], cols[wk])
		Gemm(GemmPacked, w, cols[wk], out[n*s.M*spatial:(n+1)*s.M*spatial], s.M, k, spatial)
	})
	for _, col := range cols {
		if col != nil {
			scratch.PutBuf(col)
		}
	}
}
