package kernels

import "math"

// PoolShape describes a 2D pooling problem in NCHW layout.
type PoolShape struct {
	N, C, H, W int
	KH, KW     int
	StrideH    int
	StrideW    int
	PadH, PadW int
}

// OutDims returns the output spatial dimensions.
func (s PoolShape) OutDims() (oh, ow int) {
	oh = (s.H+2*s.PadH-s.KH)/s.StrideH + 1
	ow = (s.W+2*s.PadW-s.KW)/s.StrideW + 1
	return
}

// OutputSize returns the element count of the pooled output.
func (s PoolShape) OutputSize() int {
	oh, ow := s.OutDims()
	return s.N * s.C * oh * ow
}

// MaxPool2D computes max pooling. If argmax is non-nil (length OutputSize)
// it receives the flat input index of each selected maximum, which the
// backward pass uses to scatter gradients.
func MaxPool2D(s PoolShape, in, out []float32, argmax []int32) {
	oh, ow := s.OutDims()
	for n := 0; n < s.N; n++ {
		for c := 0; c < s.C; c++ {
			inP := (n*s.C + c) * s.H * s.W
			outP := (n*s.C + c) * oh * ow
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					best := float32(math.Inf(-1))
					bestIdx := int32(-1)
					for ky := 0; ky < s.KH; ky++ {
						iy := oy*s.StrideH - s.PadH + ky
						if iy < 0 || iy >= s.H {
							continue
						}
						for kx := 0; kx < s.KW; kx++ {
							ix := ox*s.StrideW - s.PadW + kx
							if ix < 0 || ix >= s.W {
								continue
							}
							v := in[inP+iy*s.W+ix]
							if v > best {
								best = v
								bestIdx = int32(inP + iy*s.W + ix)
							}
						}
					}
					out[outP+oy*ow+ox] = best
					if argmax != nil {
						argmax[outP+oy*ow+ox] = bestIdx
					}
				}
			}
		}
	}
}

// MaxPool2DBackward scatters gradOut into gradIn at the argmax positions.
// gradIn must be zeroed by the caller or reused intentionally.
func MaxPool2DBackward(s PoolShape, gradOut []float32, argmax []int32, gradIn []float32) {
	for i := range gradIn[:s.N*s.C*s.H*s.W] {
		gradIn[i] = 0
	}
	for i, g := range gradOut[:s.OutputSize()] {
		if idx := argmax[i]; idx >= 0 {
			gradIn[idx] += g
		}
	}
}

// AvgPool2D computes average pooling (count excludes padding).
func AvgPool2D(s PoolShape, in, out []float32) {
	oh, ow := s.OutDims()
	for n := 0; n < s.N; n++ {
		for c := 0; c < s.C; c++ {
			inP := (n*s.C + c) * s.H * s.W
			outP := (n*s.C + c) * oh * ow
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					var sum float32
					var cnt int
					for ky := 0; ky < s.KH; ky++ {
						iy := oy*s.StrideH - s.PadH + ky
						if iy < 0 || iy >= s.H {
							continue
						}
						for kx := 0; kx < s.KW; kx++ {
							ix := ox*s.StrideW - s.PadW + kx
							if ix < 0 || ix >= s.W {
								continue
							}
							sum += in[inP+iy*s.W+ix]
							cnt++
						}
					}
					if cnt > 0 {
						out[outP+oy*ow+ox] = sum / float32(cnt)
					}
				}
			}
		}
	}
}

// AvgPool2DBackward distributes gradOut uniformly over each pooling window.
func AvgPool2DBackward(s PoolShape, gradOut, gradIn []float32) {
	oh, ow := s.OutDims()
	for i := range gradIn[:s.N*s.C*s.H*s.W] {
		gradIn[i] = 0
	}
	for n := 0; n < s.N; n++ {
		for c := 0; c < s.C; c++ {
			inP := (n*s.C + c) * s.H * s.W
			outP := (n*s.C + c) * oh * ow
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					// count matching forward
					var cnt int
					for ky := 0; ky < s.KH; ky++ {
						iy := oy*s.StrideH - s.PadH + ky
						if iy < 0 || iy >= s.H {
							continue
						}
						for kx := 0; kx < s.KW; kx++ {
							ix := ox*s.StrideW - s.PadW + kx
							if ix >= 0 && ix < s.W {
								cnt++
							}
						}
					}
					if cnt == 0 {
						continue
					}
					g := gradOut[outP+oy*ow+ox] / float32(cnt)
					for ky := 0; ky < s.KH; ky++ {
						iy := oy*s.StrideH - s.PadH + ky
						if iy < 0 || iy >= s.H {
							continue
						}
						for kx := 0; kx < s.KW; kx++ {
							ix := ox*s.StrideW - s.PadW + kx
							if ix < 0 || ix >= s.W {
								continue
							}
							gradIn[inP+iy*s.W+ix] += g
						}
					}
				}
			}
		}
	}
}

// GlobalAvgPool reduces each N×C×H×W channel plane to its mean, producing
// an N×C output.
func GlobalAvgPool(n, c, h, w int, in, out []float32) {
	plane := h * w
	inv := 1 / float32(plane)
	for i := 0; i < n*c; i++ {
		var s float32
		for _, v := range in[i*plane : (i+1)*plane] {
			s += v
		}
		out[i] = s * inv
	}
}

// GlobalAvgPoolBackward spreads each gradient uniformly over its plane.
func GlobalAvgPoolBackward(n, c, h, w int, gradOut, gradIn []float32) {
	plane := h * w
	inv := 1 / float32(plane)
	for i := 0; i < n*c; i++ {
		g := gradOut[i] * inv
		dst := gradIn[i*plane : (i+1)*plane]
		for j := range dst {
			dst[j] = g
		}
	}
}
