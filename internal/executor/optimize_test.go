package executor

import (
	"context"
	"testing"

	"deep500/internal/compile"
	"deep500/internal/tensor"
)

// TestOptimizedConformance is the acceptance gate of the compile pipeline:
// every zoo model must produce tolerance-equal outputs and parameter
// gradients with the passes on vs off, on both execution backends (and with
// the arena), validated under -race in CI. It also asserts the pipeline
// actually shrinks the dispatch schedule on every architecture with fusible
// chains.
func TestOptimizedConformance(t *testing.T) {
	const tol = 1e-5
	// Every conformance model ends convolution/dense blocks in ReLU (and the
	// MLP in ReLU after each hidden Gemm), so all of them must fuse.
	for name, m := range conformanceModels() {
		t.Run(name, func(t *testing.T) {
			feeds := feedsFor(m, 4, 11)
			ref := MustNew(m)

			variants := map[string]*Executor{
				"opt-sequential": MustNew(m, WithOptimize(compile.Defaults())),
				"opt-parallel": MustNew(m, WithOptimize(compile.Defaults()),
					WithBackend(NewParallelBackend(nil))),
				"opt-parallel+arena": MustNew(m, WithOptimize(compile.Defaults()),
					WithBackend(NewParallelBackend(nil)), WithArena(tensor.NewArena())),
				// Plan variants: pass 0 profiles, passes 1-2 run out of the
				// static slab — the repeat loop below exercises both modes, and
				// the backprop check exercises the plan-bypass path.
				"opt-plan-sequential": MustNew(m, WithOptimize(compile.Defaults()),
					WithMemPlan(true)),
				"opt-plan-parallel": MustNew(m, WithOptimize(compile.Defaults()),
					WithBackend(NewParallelBackend(nil)), WithMemPlan(true)),
				"opt-plan-parallel+arena": MustNew(m, WithOptimize(compile.Defaults()),
					WithBackend(NewParallelBackend(nil)), WithArena(tensor.NewArena()),
					WithMemPlan(true)),
			}
			for vname, e := range variants {
				rep := e.CompileReport()
				if rep == nil {
					t.Fatalf("%s: no compile report", vname)
				}
				if rep.Fused == 0 {
					t.Fatalf("%s: pipeline fused no chains on %s (%d nodes)", vname, name, rep.NodesBefore)
				}
				if rep.NodesAfter >= rep.NodesBefore {
					t.Fatalf("%s: schedule did not shrink: %d → %d nodes", vname, rep.NodesBefore, rep.NodesAfter)
				}
			}

			refOut, err := ref.Inference(context.Background(), feeds)
			if err != nil {
				t.Fatal(err)
			}
			for vname, e := range variants {
				for pass := 0; pass < 3; pass++ { // repeat to exercise arena reuse
					got, err := e.Inference(context.Background(), feeds)
					if err != nil {
						t.Fatalf("%s: %v", vname, err)
					}
					for oname, r := range refOut {
						g, ok := got[oname]
						if !ok {
							t.Fatalf("%s: missing output %q", vname, oname)
						}
						if d := maxAbsDiff(t, r, g); d > tol {
							t.Fatalf("%s pass %d: output %q diverges: max |Δ| = %g", vname, pass, oname, d)
						}
					}
				}
			}

			if _, err := ref.InferenceAndBackprop(context.Background(), feeds, "loss"); err != nil {
				t.Fatal(err)
			}
			refGrads := ref.Network().Gradients()
			if len(refGrads) == 0 {
				t.Fatal("reference produced no gradients")
			}
			for vname, e := range variants {
				if _, err := e.InferenceAndBackprop(context.Background(), feeds, "loss"); err != nil {
					t.Fatalf("%s: %v", vname, err)
				}
				gotGrads := e.Network().Gradients()
				if len(gotGrads) != len(refGrads) {
					t.Fatalf("%s: gradient count %d vs %d", vname, len(gotGrads), len(refGrads))
				}
				for i, pg := range refGrads {
					if gotGrads[i].Name != pg.Name {
						t.Fatalf("%s: gradient order %q vs %q", vname, gotGrads[i].Name, pg.Name)
					}
					if d := maxAbsDiff(t, pg.Grad, gotGrads[i].Grad); d > tol {
						t.Fatalf("%s: gradient %q diverges: max |Δ| = %g", vname, pg.Name, d)
					}
				}
			}
		})
	}
}

// TestOptimizeRejectsBrokenModel asserts compile errors surface from New.
func TestOptimizeRejectsBrokenModel(t *testing.T) {
	m := xorModel()
	m.Nodes[0].Inputs[0] = "undefined-tensor"
	if _, err := New(m, WithOptimize(compile.Defaults())); err == nil {
		t.Fatal("expected validation error from the compile pipeline")
	}
}
