package executor

import (
	"context"
	"fmt"
	"sync"

	"deep500/internal/graph"
	"deep500/internal/kernels"
)

// ExecBackend is the forward-pass execution strategy of the reference
// executor. The executor prepares per-pass state (feeds, parameters,
// per-node operator bindings) and then hands the node schedule to the
// backend, which must run every node exactly once respecting data
// dependencies, via (*Executor).execNode. Two implementations ship:
// SequentialBackend, the paper's "verified yet slow" topological
// interpreter, and ParallelBackend, a dependency-counting dataflow
// scheduler over the shared kernels.Pool worker budget. Backends must
// observe ctx between node dispatches: a cancelled context aborts the pass
// and surfaces ctx.Err() from RunForward.
type ExecBackend interface {
	// Name identifies the backend ("sequential", "parallel").
	Name() string
	// RunForward executes the forward node schedule of one pass.
	RunForward(ctx context.Context, e *Executor) error
}

// BackendByName resolves a backend selector from a CLI flag or option
// string. Valid names: "sequential" (or ""), "parallel".
func BackendByName(name string) (ExecBackend, error) {
	switch name {
	case "", "sequential":
		return SequentialBackend{}, nil
	case "parallel":
		return NewParallelBackend(nil), nil
	}
	return nil, fmt.Errorf("executor: unknown backend %q (sequential, parallel)", name)
}

// SequentialBackend interprets the graph in topological order on the
// calling goroutine — the Deep500 reference execution model.
type SequentialBackend struct{}

// Name returns "sequential".
func (SequentialBackend) Name() string { return "sequential" }

// RunForward executes nodes one after another in topological order,
// checking the context before every node.
func (SequentialBackend) RunForward(ctx context.Context, e *Executor) error {
	for _, n := range e.order {
		if err := ctx.Err(); err != nil {
			return err
		}
		if e.stopRequested() {
			break
		}
		if err := e.execNode(n); err != nil {
			return err
		}
	}
	return nil
}

// ParallelBackend is a dependency-counting dataflow scheduler: every node
// whose producers have completed is dispatched onto the shared worker pool,
// so independent branches of the graph (and independent towers inside one
// layer) execute concurrently. The scheduling goroutine always participates
// in execution, and extra workers are borrowed from the pool only while
// runnable nodes exist — a chain-shaped graph therefore leaves the whole
// worker budget to the intra-operator kernels, while a wide graph spends it
// on operators instead. Operator outputs are identical to the sequential
// backend: each node still runs exactly once, and the backward pass remains
// the sequential reference.
type ParallelBackend struct {
	pool *kernels.Pool
}

// NewParallelBackend returns a dataflow backend over the given pool
// (kernels.Default when nil).
func NewParallelBackend(p *kernels.Pool) *ParallelBackend {
	if p == nil {
		p = kernels.Default
	}
	return &ParallelBackend{pool: p}
}

// Name returns "parallel".
func (b *ParallelBackend) Name() string { return "parallel" }

// schedState is the per-pass scheduler state.
type schedState struct {
	mu      sync.Mutex
	cond    *sync.Cond
	ready   []*graph.Node
	waits   map[*graph.Node]int
	running int
	stopped bool
	err     error
}

func (st *schedState) pop() *graph.Node {
	n := st.ready[len(st.ready)-1]
	st.ready = st.ready[:len(st.ready)-1]
	return n
}

// RunForward executes the schedule with dependency counting. The context
// is checked before every node dispatch: cancellation marks the scheduler
// stopped, drains in-flight work, and returns ctx.Err().
func (b *ParallelBackend) RunForward(ctx context.Context, e *Executor) error {
	// passDeps returns the plan-augmented dependency graph when a memory
	// plan is active, so slab reuse never races ahead of a region's
	// previous readers.
	deps := e.passDeps()
	st := &schedState{waits: make(map[*graph.Node]int, len(e.order))}
	st.cond = sync.NewCond(&st.mu)
	for n, w := range deps.waits {
		st.waits[n] = w
	}
	st.ready = append(st.ready, deps.roots...)

	st.mu.Lock()
	for {
		if st.stopped {
			st.ready = st.ready[:0]
		}
		if len(st.ready) > 0 {
			n := st.pop()
			st.mu.Unlock()
			b.runChain(ctx, e, deps, st, n)
			st.mu.Lock()
			continue
		}
		if st.running == 0 {
			break
		}
		st.cond.Wait()
	}
	st.mu.Unlock()
	return st.err
}

// runChain executes n, then keeps executing newly-ready successors on this
// goroutine, offloading surplus ready nodes to borrowed pool workers.
// It returns when no runnable node is available to this goroutine.
func (b *ParallelBackend) runChain(ctx context.Context, e *Executor, deps *depInfo, st *schedState, n *graph.Node) {
	for {
		var err error
		st.mu.Lock()
		stopped := st.stopped
		st.mu.Unlock()
		if !stopped {
			switch {
			case ctx.Err() != nil:
				stopped = true
				err = ctx.Err()
			case e.stopRequested():
				stopped = true
			default:
				err = e.execNode(n)
			}
		}

		st.mu.Lock()
		if stopped {
			st.stopped = true
		}
		if err != nil {
			st.stopped = true
			if st.err == nil {
				st.err = err
			}
		}
		if !st.stopped {
			for _, c := range deps.consumers[n] {
				st.waits[c]--
				if st.waits[c] == 0 {
					st.ready = append(st.ready, c)
				}
			}
		}
		// Claim our own next node first, then offload the surplus onto any
		// free pool workers.
		var next *graph.Node
		if !st.stopped && len(st.ready) > 0 {
			next = st.pop()
		}
		for !st.stopped && len(st.ready) > 0 && b.pool.TryAcquire() {
			m := st.pop()
			st.running++
			go func(m *graph.Node) {
				b.runChain(ctx, e, deps, st, m)
				st.mu.Lock()
				st.running--
				st.cond.Broadcast()
				st.mu.Unlock()
				b.pool.Release()
			}(m)
		}
		if len(st.ready) > 0 {
			// Leftover work no worker could take: wake the scheduler loop so
			// the calling goroutine can help.
			st.cond.Broadcast()
		}
		st.mu.Unlock()
		if next == nil {
			st.mu.Lock()
			st.cond.Broadcast()
			st.mu.Unlock()
			return
		}
		n = next
	}
}

// depInfo is the static dataflow structure of a model: per-node indegrees
// (number of distinct producer nodes feeding it) and consumer adjacency.
type depInfo struct {
	waits     map[*graph.Node]int
	consumers map[*graph.Node][]*graph.Node
	roots     []*graph.Node
}

// depGraph lazily builds (and caches) the dependency structure for the
// executor's schedule. The structure depends only on graph topology, which
// is immutable after construction (SetOp swaps operator implementations,
// not edges).
func (e *Executor) depGraph() *depInfo {
	e.depOnce.Do(func() {
		producer := make(map[string]*graph.Node, len(e.order)*2)
		for _, n := range e.order {
			for _, out := range n.Outputs {
				if out != "" {
					producer[out] = n
				}
			}
		}
		d := &depInfo{
			waits:     make(map[*graph.Node]int, len(e.order)),
			consumers: make(map[*graph.Node][]*graph.Node, len(e.order)),
		}
		for _, n := range e.order {
			seen := make(map[*graph.Node]bool)
			for _, in := range n.Inputs {
				if in == "" {
					continue
				}
				if p, ok := producer[in]; ok && p != n && !seen[p] {
					seen[p] = true
					d.consumers[p] = append(d.consumers[p], n)
				}
			}
			d.waits[n] = len(seen)
			if len(seen) == 0 {
				d.roots = append(d.roots, n)
			}
		}
		e.deps = d
	})
	return e.deps
}
