// Package executor implements Deep500 Level 1: the Network abstraction over
// a D5NX graph, graph executors that run inference and backpropagation, the
// event ("hook") mechanism for fine-grained measurement and early exits, and
// a device memory model used to study out-of-memory behaviour (paper §IV-D).
//
// Public entry points: New (construction options WithBackend, WithArena,
// WithOptimize), the Executor's Inference / InferenceAndBackprop methods
// behind the GraphExecutor interface, Network (parameters and gradients),
// Events, MemoryModel, and ExecBackend — the pluggable forward-pass
// scheduling strategy (SequentialBackend, the paper's "verified yet slow"
// reference; ParallelBackend, the dependency-counting dataflow scheduler).
// WithOptimize routes the model through internal/compile before the
// executor is built, so both backends consume the optimized graph.
package executor

import (
	"fmt"
	"sort"

	"deep500/internal/graph"
	"deep500/internal/tensor"
)

// Network binds a graph.Model to live tensor state: current parameter
// values and, after a backward pass, parameter gradients. It exposes the
// fetch/feed tensor API the paper's Network class provides.
type Network struct {
	Model  *graph.Model
	values map[string]*tensor.Tensor // parameters (initializers), mutable
	grads  map[string]*tensor.Tensor // parameter gradients from last backprop
}

// NewNetwork wraps a model. Parameter tensors are referenced, not copied,
// so external optimizers and the network observe the same state.
func NewNetwork(m *graph.Model) *Network {
	n := &Network{
		Model:  m,
		values: make(map[string]*tensor.Tensor, len(m.Initializers)),
		grads:  make(map[string]*tensor.Tensor),
	}
	for name, t := range m.Initializers {
		n.values[name] = t
	}
	return n
}

// FetchTensor returns the named parameter tensor.
func (n *Network) FetchTensor(name string) (*tensor.Tensor, error) {
	t, ok := n.values[name]
	if !ok {
		return nil, fmt.Errorf("executor: network has no tensor %q", name)
	}
	return t, nil
}

// FeedTensor replaces the named parameter tensor.
func (n *Network) FeedTensor(name string, t *tensor.Tensor) {
	n.values[name] = t
	n.Model.Initializers[name] = t
}

// Params returns parameter names in deterministic order.
func (n *Network) Params() []string {
	names := make([]string, 0, len(n.values))
	for name := range n.values {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Gradient returns the gradient of the named parameter from the last
// backward pass (nil if none).
func (n *Network) Gradient(name string) *tensor.Tensor { return n.grads[name] }

// Gradients returns (param, grad) pairs for every parameter that received a
// gradient, in deterministic order — the analogue of network.gradient() in
// the paper's Listing 9.
func (n *Network) Gradients() []ParamGrad {
	var out []ParamGrad
	for _, name := range n.Params() {
		if g, ok := n.grads[name]; ok && g != nil {
			out = append(out, ParamGrad{Name: name, Param: n.values[name], Grad: g})
		}
	}
	return out
}

// ParamGrad pairs a parameter tensor with its gradient.
type ParamGrad struct {
	Name  string
	Param *tensor.Tensor
	Grad  *tensor.Tensor
}

// setGrad stores a parameter gradient (executor internal).
func (n *Network) setGrad(name string, g *tensor.Tensor) { n.grads[name] = g }

// ClearGradients drops all stored gradients.
func (n *Network) ClearGradients() { n.grads = make(map[string]*tensor.Tensor) }

// ParamBytes returns the total parameter footprint in bytes.
func (n *Network) ParamBytes() int64 {
	var b int64
	for _, t := range n.values {
		b += t.Bytes()
	}
	return b
}
