package executor

import (
	"context"
	"fmt"
	"sync"
	"time"

	"deep500/internal/compile"
	"deep500/internal/graph"
	"deep500/internal/kernels"
	"deep500/internal/obs/trace"
	"deep500/internal/ops"
	"deep500/internal/tensor"
)

// GraphExecutor controls DNN execution: inference, and inference combined
// with backpropagation (paper §IV-D). Implementations include the reference
// executor in this package and the emulated framework backends in
// internal/frameworks. Every execution entry point takes a context: passes
// observe cancellation and deadlines between operator invocations and
// return the context's error.
type GraphExecutor interface {
	// Network returns the executed network.
	Network() *Network
	// Inference runs a forward pass with the given input feeds and returns
	// the model's declared outputs.
	Inference(ctx context.Context, feeds map[string]*tensor.Tensor) (map[string]*tensor.Tensor, error)
	// InferenceAndBackprop runs forward and backward from the named loss
	// tensor; parameter gradients are afterwards available on the Network.
	InferenceAndBackprop(ctx context.Context, feeds map[string]*tensor.Tensor, loss string) (map[string]*tensor.Tensor, error)
	// SetTraining switches training-dependent operators (dropout, batch
	// normalization) between training and inference behaviour.
	SetTraining(training bool)
	// Training reports the current mode, so evaluation helpers can
	// restore whatever mode the executor was in.
	Training() bool
}

// Executor is the Deep500 reference graph executor: an interpreter over
// Level 0 operators whose forward-pass scheduling is delegated to a
// pluggable ExecBackend — the sequential topological interpreter by default
// (the paper positions reference code as "verified yet slow"), or the
// parallel dataflow scheduler. It supports the full event, memory-model and
// instrumentation surface, and can recycle activation storage through a
// tensor arena.
type Executor struct {
	net     *Network
	order   []*graph.Node
	nodeOps map[*graph.Node]ops.Operator

	// Events receives hook callbacks; nil disables instrumentation.
	Events *Events
	// Memory, when non-nil, enforces a device-memory capacity.
	Memory *MemoryModel
	// OpOverhead adds a fixed dispatch cost per operator invocation; the
	// framework emulation layer uses it to model runtime dispatch costs.
	OpOverhead time.Duration

	backend ExecBackend
	arena   *tensor.Arena
	// memPlan enables the static memory plan (WithMemPlan); planRT holds
	// the installed plan and planActive tells whether the current pass runs
	// out of it (training passes never do).
	memPlan    bool
	planRT     *planRuntime
	planActive bool
	// gemmAlgo, when non-nil, overrides the GEMM kernel algorithm on every
	// GEMM-backed operator at construction (WithGemm).
	gemmAlgo *kernels.GemmAlgo
	// optimize, when non-nil, runs the compile pipeline over the model at
	// construction; compileReport records what it rewrote.
	optimize      *compile.Options
	compileReport *compile.Report
	depOnce       sync.Once
	deps          *depInfo
	// stateMu guards the per-pass maps, the memory model and the FLOP
	// counter against concurrent node completions under ParallelBackend.
	stateMu sync.Mutex
	// eventMu serializes user event hooks, which need not be thread-safe.
	eventMu sync.Mutex

	training bool
	// last forward pass state. The maps are allocated once and cleared per
	// pass; nodeInBuf caches each node's input-gather slice so steady-state
	// passes do not allocate per node.
	values    map[string]*tensor.Tensor
	nodeIns   map[*graph.Node][]*tensor.Tensor
	nodeOuts  map[*graph.Node][]*tensor.Tensor
	nodeInBuf map[*graph.Node][]*tensor.Tensor
	// planOut is the reused outputs map handed back by plan-mode passes;
	// outScratch is freeActivations' reused protected-outputs buffer.
	planOut    map[string]*tensor.Tensor
	outScratch []*tensor.Tensor
	// passSpan is the current forward pass's trace span (nil when the pass
	// is untraced — the common case, costing execNode one nil check). It is
	// written by forward before the backend runs and read concurrently by
	// ParallelBackend workers; Span methods are concurrency-safe.
	passSpan *trace.Span
	// LastForwardFLOPs is the operator-reported FLOP total of the most
	// recent forward pass.
	LastForwardFLOPs int64
	// lastActivationBytes is the activation memory charged to the memory
	// model by the most recent forward pass, released by freeActivations.
	lastActivationBytes int64
}

// Option configures an Executor at construction.
type Option func(*Executor)

// WithBackend selects the forward-pass execution backend (sequential by
// default).
func WithBackend(b ExecBackend) Option {
	return func(e *Executor) {
		if b != nil {
			e.backend = b
		}
	}
}

// WithArena routes operator output allocation through a recycling tensor
// arena and releases intermediate activations back to it at the end of each
// pass. Model outputs are never recycled. With an arena installed,
// LastValue is only valid for model outputs, feeds and parameters — other
// activations are detached when the pass ends.
func WithArena(a *tensor.Arena) Option {
	return func(e *Executor) { e.arena = a }
}

// WithMemPlan enables liveness-based static memory planning for forward
// passes. The first inference at a given set of feed shapes profiles
// activation shapes through the ordinary allocation path, then installs a
// compile.PlanMemory slab; subsequent same-shape inferences write every
// planned activation into fixed slab offsets and allocate nothing. Feed
// shape changes transparently re-profile and re-plan.
//
// With a plan active, the tensors returned by Inference (and the map
// holding them) are views into the slab, valid until the next pass on this
// executor — copy them if they must outlive it. Training passes
// (InferenceAndBackprop) bypass the plan, because backpropagation reads
// activations past the lifetimes the plan assumes.
func WithMemPlan(enable bool) Option {
	return func(e *Executor) { e.memPlan = enable }
}

// WithGemm overrides the GEMM kernel algorithm on every GEMM-backed
// operator (Gemm, MatMul, FusedGemmAct) at construction, replacing the
// registry default. Use kernels.ParseGemmAlgo to resolve CLI flag values.
func WithGemm(algo kernels.GemmAlgo) Option {
	return func(e *Executor) { e.gemmAlgo = &algo }
}

// WithOptimize runs the compile pipeline (constant folding, dead-node
// elimination, operator fusion — see internal/compile) over the model
// before the executor is built, so *both* execution backends consume the
// optimized graph: the sequential interpreter dispatches fewer nodes, and
// the parallel scheduler's dependency DAG shrinks with them. The input
// model is not mutated; parameter tensors are shared between the original
// and the compiled graph, so training an optimized executor updates the
// caller's model too.
func WithOptimize(o compile.Options) Option {
	return func(e *Executor) { e.optimize = &o }
}

// New builds a reference executor for the model. It validates the graph,
// applies the compile pipeline when WithOptimize is set, instantiates one
// operator per node and fails on unknown op types.
func New(m *graph.Model, opts ...Option) (*Executor, error) {
	e := &Executor{
		nodeOps: make(map[*graph.Node]ops.Operator),
		backend: SequentialBackend{},
	}
	for _, opt := range opts {
		opt(e)
	}
	if e.optimize != nil {
		om, rep, err := compile.Optimize(m, *e.optimize)
		if err != nil {
			return nil, err
		}
		m, e.compileReport = om, rep
	} else if err := m.Validate(); err != nil {
		return nil, err
	}
	order, err := m.TopoSort()
	if err != nil {
		return nil, err
	}
	e.net = NewNetwork(m)
	e.order = order
	for _, n := range order {
		op, err := ops.FromNode(n)
		if err != nil {
			return nil, err
		}
		if e.arena != nil {
			if aa, ok := op.(ops.AllocatorAware); ok {
				aa.SetAllocator(e.arena)
			}
		}
		if e.gemmAlgo != nil {
			if ga, ok := op.(ops.GemmAlgoAware); ok {
				ga.SetGemmAlgo(*e.gemmAlgo)
			}
		}
		e.nodeOps[n] = op
	}
	e.nodeInBuf = make(map[*graph.Node][]*tensor.Tensor, len(e.order))
	return e, nil
}

// MustNew is New, panicking on error; for tests and examples.
func MustNew(m *graph.Model, opts ...Option) *Executor {
	e, err := New(m, opts...)
	if err != nil {
		panic(err)
	}
	return e
}

// Backend returns the active execution backend.
func (e *Executor) Backend() ExecBackend { return e.backend }

// CompileReport returns the compile pipeline's rewrite report, or nil when
// the executor was built without WithOptimize.
func (e *Executor) CompileReport() *compile.Report { return e.compileReport }

// Network returns the live network.
func (e *Executor) Network() *Network { return e.net }

// Training reports whether the executor is in training mode.
func (e *Executor) Training() bool { return e.training }

// SetTraining propagates the training flag to all training-aware operators.
func (e *Executor) SetTraining(training bool) {
	e.training = training
	for _, op := range e.nodeOps {
		if ta, ok := op.(ops.TrainingAware); ok {
			ta.SetTraining(training)
		}
	}
}

// Op returns the operator instance bound to a node (used by transforms and
// ablation benchmarks to tweak per-node algorithms).
func (e *Executor) Op(n *graph.Node) ops.Operator { return e.nodeOps[n] }

// SetOp replaces the operator bound to a node. The framework emulation
// layer uses this (via the graph visitor) to install backend-specific
// operator implementations, mirroring the paper's visitor-based network
// construction (Fig. 4).
func (e *Executor) SetOp(n *graph.Node, op ops.Operator) { e.nodeOps[n] = op }

// LastValue returns an activation tensor from the most recent pass.
func (e *Executor) LastValue(name string) (*tensor.Tensor, bool) {
	t, ok := e.values[name]
	return t, ok
}

func (e *Executor) spinOverhead() {
	if e.OpOverhead <= 0 {
		return
	}
	deadline := time.Now().Add(e.OpOverhead)
	for time.Now().Before(deadline) {
	}
}

// stopRequested polls the Stop event hook.
func (e *Executor) stopRequested() bool {
	ev := e.Events
	if ev == nil || ev.Stop == nil {
		return false
	}
	e.eventMu.Lock()
	defer e.eventMu.Unlock()
	return ev.Stop()
}

// forward runs the forward pass through the configured backend, populating
// e.values/nodeIns/nodeOuts. A nil ctx is treated as context.Background()
// so pre-context call sites that pass nil stay safe.
func (e *Executor) forward(ctx context.Context, feeds map[string]*tensor.Tensor) error {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	ev := e.Events
	if ev != nil && ev.BeforeInference != nil {
		ev.BeforeInference()
	}
	start := time.Now()

	if parent := trace.FromContext(ctx); parent != nil {
		e.passSpan = parent.StartChild("exec.forward",
			trace.String("backend", backendName(e.backend)),
			trace.Bool("plan", e.planActive),
			trace.Bool("arena", e.arena != nil),
			trace.Int("nodes", len(e.order)))
	}

	if e.values == nil {
		e.values = make(map[string]*tensor.Tensor, len(e.order)*2)
		e.nodeIns = make(map[*graph.Node][]*tensor.Tensor, len(e.order))
		e.nodeOuts = make(map[*graph.Node][]*tensor.Tensor, len(e.order))
	} else {
		clear(e.values)
		clear(e.nodeIns)
		clear(e.nodeOuts)
	}
	e.LastForwardFLOPs = 0
	e.lastActivationBytes = 0
	if e.planActive {
		for _, pa := range e.planRT.allocs {
			pa.next = 0
		}
	}

	for name, t := range feeds {
		e.values[name] = t
	}
	for name, t := range e.net.values {
		e.values[name] = t
	}

	err := e.backend.RunForward(ctx, e)

	if ps := e.passSpan; ps != nil {
		ps.AddAttrs(trace.Int("flops", int(e.LastForwardFLOPs)))
		ps.SetError(err)
		ps.End()
		e.passSpan = nil
	}
	if err == nil && ev != nil && ev.AfterInference != nil {
		ev.AfterInference(time.Since(start))
	}
	// Activations are released at the end of the enclosing pass by the
	// caller via freeActivations.
	return err
}

// execNode runs one node: gather inputs, invoke the operator, publish
// outputs. It is the unit of work both backends schedule; all shared-state
// mutation happens under stateMu so ParallelBackend can call it from many
// goroutines, while the operator's Forward itself runs unlocked.
func (e *Executor) execNode(n *graph.Node) error {
	ev := e.Events
	op := e.nodeOps[n]

	e.stateMu.Lock()
	ins := e.nodeInBuf[n]
	if ins == nil {
		ins = make([]*tensor.Tensor, len(n.Inputs))
		e.nodeInBuf[n] = ins
	}
	for i, name := range n.Inputs {
		if name == "" {
			ins[i] = nil
			continue
		}
		t, ok := e.values[name]
		if !ok {
			e.stateMu.Unlock()
			return fmt.Errorf("executor: node %q input %q not available (missing feed?)", n.Name, name)
		}
		ins[i] = t
	}
	// Workspace accounting for convolutions (fused ones delegate to their
	// embedded Conv2DOp, so -opt graphs charge the same im2col workspace).
	var workspace int64
	var conv *ops.Conv2DOp
	switch cop := op.(type) {
	case *ops.Conv2DOp:
		conv = cop
	case *ops.FusedConvReluOp:
		conv = cop.ConvOp()
	}
	if conv != nil && e.Memory != nil {
		x, w := ins[0], ins[1]
		cs := kernels.ConvShape{N: x.Dim(0), C: x.Dim(1), H: x.Dim(2), W: x.Dim(3),
			M: w.Dim(0), KH: w.Dim(2), KW: w.Dim(3),
			StrideH: conv.StrideH, StrideW: conv.StrideW, PadH: conv.PadH, PadW: conv.PadW}
		workspace = cs.WorkspaceBytes(conv.Algo)
		if err := e.Memory.Alloc(workspace); err != nil {
			e.stateMu.Unlock()
			return err
		}
	}
	e.stateMu.Unlock()

	if ev != nil && ev.BeforeOp != nil {
		e.eventMu.Lock()
		ev.BeforeOp(n)
		e.eventMu.Unlock()
	}
	var opSpan *trace.Span
	if ps := e.passSpan; ps != nil {
		opSpan = ps.StartChild("op:"+n.OpType, trace.String("node", n.Name))
	}
	opStart := time.Now()
	e.spinOverhead()
	outs := op.Forward(ins)
	opDur := time.Since(opStart)
	if opSpan != nil {
		opSpan.AddAttrs(e.opSpanAttrs(op, conv, outs)...)
		opSpan.End()
	}
	if ev != nil && ev.AfterOp != nil {
		e.eventMu.Lock()
		ev.AfterOp(n, opDur)
		e.eventMu.Unlock()
	}

	e.stateMu.Lock()
	defer e.stateMu.Unlock()
	if workspace > 0 {
		e.Memory.Free(workspace)
	}
	e.LastForwardFLOPs += op.FLOPs(ins)
	for i, name := range n.Outputs {
		if i >= len(outs) {
			break
		}
		if e.Memory != nil {
			if err := e.Memory.Alloc(outs[i].Bytes()); err != nil {
				return err
			}
			e.lastActivationBytes += outs[i].Bytes()
		}
		e.values[name] = outs[i]
	}
	e.nodeIns[n] = ins
	e.nodeOuts[n] = outs
	return nil
}

// opSpanAttrs builds a traced op span's attributes: output shape, arena
// placement and the kernel algorithm in effect. Only called on traced
// passes, so the allocations here never touch the untraced fast path.
func (e *Executor) opSpanAttrs(op ops.Operator, conv *ops.Conv2DOp, outs []*tensor.Tensor) []trace.Attr {
	attrs := make([]trace.Attr, 0, 3)
	if len(outs) > 0 && outs[0] != nil {
		attrs = append(attrs,
			trace.String("shape", fmt.Sprint(outs[0].Shape())),
			trace.Bool("arena_hit", outs[0].ArenaBacked()))
	}
	switch {
	case conv != nil:
		attrs = append(attrs, trace.String("algo", conv.Algo.String()))
	case e.gemmAlgo != nil:
		if _, ok := op.(ops.GemmAlgoAware); ok {
			attrs = append(attrs, trace.String("algo", e.gemmAlgo.String()))
		}
	}
	return attrs
}

// backendName names the execution backend for the pass span.
func backendName(b ExecBackend) string {
	switch b.(type) {
	case SequentialBackend:
		return "sequential"
	case *ParallelBackend:
		return "parallel"
	}
	return fmt.Sprintf("%T", b)
}

// freeActivations ends the activation lifetime of the last pass: it returns
// the charged bytes to the memory model and, when an arena is installed,
// recycles every intermediate activation buffer. Model outputs — and any
// activation whose storage a model output aliases (zero-copy views) — are
// left alive for the caller.
func (e *Executor) freeActivations() {
	if e.Memory != nil {
		e.Memory.Free(e.lastActivationBytes)
		e.lastActivationBytes = 0
	}
	if e.arena == nil || e.nodeOuts == nil {
		return
	}
	outputs := e.outScratch[:0]
	for _, name := range e.net.Model.Outputs {
		if t, ok := e.values[name]; ok && t != nil {
			outputs = append(outputs, t)
		}
	}
	e.outScratch = outputs
	for _, outs := range e.nodeOuts {
		for _, t := range outs {
			if t == nil || !t.ArenaBacked() {
				continue
			}
			protected := false
			for _, o := range outputs {
				if t == o || t.Overlaps(o) {
					protected = true
					break
				}
			}
			if !protected {
				t.Release()
			}
		}
	}
}

// Inference runs a forward pass and returns the model's declared outputs.
// Cancelling ctx aborts the pass between node executions and returns the
// context's error.
func (e *Executor) Inference(ctx context.Context, feeds map[string]*tensor.Tensor) (map[string]*tensor.Tensor, error) {
	if e.memPlan {
		if e.planRT != nil && !e.planRT.matches(feeds) {
			e.dropPlan() // feed shapes changed: re-profile
		}
		e.setPlanActive(e.planRT != nil)
	}
	if err := e.forward(ctx, feeds); err != nil {
		e.freeActivations()
		return nil, err
	}
	out := e.collectOutputs()
	if e.memPlan {
		if e.planActive && e.planRT.miss.Load() {
			e.dropPlan() // a shape drifted mid-pass: plan is stale
		} else if !e.planActive {
			e.buildPlan(feeds) // profiling pass done: install the plan
		}
	}
	e.freeActivations()
	return out, nil
}

func (e *Executor) collectOutputs() map[string]*tensor.Tensor {
	if e.planActive {
		// Plan-mode passes reuse one outputs map: like the slab tensors it
		// holds, it is valid until the next pass on this executor.
		if e.planOut == nil {
			e.planOut = make(map[string]*tensor.Tensor, len(e.net.Model.Outputs))
		} else {
			clear(e.planOut)
		}
		for _, name := range e.net.Model.Outputs {
			if t, ok := e.values[name]; ok {
				e.planOut[name] = t
			}
		}
		return e.planOut
	}
	out := make(map[string]*tensor.Tensor, len(e.net.Model.Outputs))
	for _, name := range e.net.Model.Outputs {
		if t, ok := e.values[name]; ok {
			out[name] = t
		}
	}
	return out
}

// InferenceAndBackprop runs forward then backpropagates from the named loss
// tensor. Parameter gradients become available via Network().Gradients().
// Cancelling ctx aborts either pass between node executions and returns the
// context's error.
func (e *Executor) InferenceAndBackprop(ctx context.Context, feeds map[string]*tensor.Tensor, loss string) (map[string]*tensor.Tensor, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	// Training passes never run out of the memory plan: backpropagation
	// reads forward activations after their plan-assumed last use, so slab
	// reuse would clobber them. The plan (if any) stays installed for the
	// next inference.
	e.setPlanActive(false)
	if err := e.forward(ctx, feeds); err != nil {
		e.freeActivations()
		return nil, err
	}
	defer e.freeActivations()

	lossT, ok := e.values[loss]
	if !ok {
		return nil, fmt.Errorf("executor: loss tensor %q not produced by forward pass", loss)
	}
	ev := e.Events
	if ev != nil && ev.BeforeBackprop != nil {
		ev.BeforeBackprop()
	}
	start := time.Now()
	bwdSpan := trace.FromContext(ctx).StartChild("exec.backward", trace.Int("nodes", len(e.order)))

	gradOf := make(map[string]*tensor.Tensor)
	gradOf[loss] = tensor.Full(1, lossT.Shape()...)

	e.net.ClearGradients()
	for i := len(e.order) - 1; i >= 0; i-- {
		n := e.order[i]
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if ev != nil && ev.Stop != nil && ev.Stop() {
			break
		}
		outs := e.nodeOuts[n]
		if outs == nil {
			continue // node skipped in forward (early exit)
		}
		gradOuts := make([]*tensor.Tensor, len(outs))
		any := false
		for j, name := range n.Outputs {
			if j >= len(outs) {
				break
			}
			if g, ok := gradOf[name]; ok {
				gradOuts[j] = g
				any = true
			}
		}
		if !any {
			continue // node not on the loss path
		}
		for j := range gradOuts {
			if gradOuts[j] == nil {
				gradOuts[j] = tensor.New(outs[j].Shape()...)
			}
		}
		op := e.nodeOps[n]
		if ev != nil && ev.BeforeBackwardOp != nil {
			ev.BeforeBackwardOp(n)
		}
		opSpan := bwdSpan.StartChild("op.bwd:"+n.OpType, trace.String("node", n.Name))
		opStart := time.Now()
		e.spinOverhead()
		gradIns := op.Backward(gradOuts, e.nodeIns[n], outs)
		opDur := time.Since(opStart)
		opSpan.End()
		if ev != nil && ev.AfterBackwardOp != nil {
			ev.AfterBackwardOp(n, opDur)
		}
		for j, name := range n.Inputs {
			if name == "" || j >= len(gradIns) || gradIns[j] == nil {
				continue
			}
			if prev, ok := gradOf[name]; ok {
				prev.AddInPlace(gradIns[j])
			} else {
				gradOf[name] = gradIns[j]
			}
		}
	}
	for _, name := range e.net.Params() {
		if g, ok := gradOf[name]; ok {
			e.net.setGrad(name, g)
		}
	}
	bwdSpan.End()
	if ev != nil && ev.AfterBackprop != nil {
		ev.AfterBackprop(time.Since(start))
	}
	return e.collectOutputs(), nil
}
