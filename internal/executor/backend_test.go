package executor

import (
	"context"
	"fmt"
	"testing"

	"deep500/internal/graph"
	"deep500/internal/models"
	"deep500/internal/tensor"
)

// conformanceModels builds every architecture in internal/models at a
// CPU-test scale, with training heads so both inference and backprop can be
// exercised.
func conformanceModels() map[string]*graph.Model {
	mlpCfg := models.Config{Classes: 10, Channels: 1, Height: 8, Width: 8, WithHead: true, Seed: 7}
	convCfg := models.Config{Classes: 10, Channels: 3, Height: 16, Width: 16, WithHead: true, Seed: 7, WidthScale: 0.25}
	lenetCfg := models.Config{Classes: 10, Channels: 1, Height: 28, Width: 28, WithHead: true, Seed: 7}
	alexCfg := models.Config{Classes: 10, Channels: 3, Height: 64, Width: 64, WithHead: true, Seed: 7, WidthScale: 0.0625}
	return map[string]*graph.Model{
		"mlp":     models.MLP(mlpCfg, 32, 16),
		"lenet":   models.LeNet(lenetCfg),
		"alexnet": models.AlexNet(alexCfg),
		"resnet8": models.ResNet(8, convCfg),
		"wrn16":   models.WideResNet(16, 1, convCfg),
	}
}

func feedsFor(m *graph.Model, batch int, seed uint64) map[string]*tensor.Tensor {
	rng := tensor.NewRNG(seed)
	var shape []int
	for _, in := range m.Inputs {
		if in.Name == "x" {
			shape = append([]int{batch}, in.Shape[1:]...)
		}
	}
	labels := tensor.New(batch)
	for i := 0; i < batch; i++ {
		labels.Data()[i] = float32(i % 4)
	}
	return map[string]*tensor.Tensor{
		"x":      tensor.RandNormal(rng, 0, 1, shape...),
		"labels": labels,
	}
}

func maxAbsDiff(t *testing.T, a, b *tensor.Tensor) float64 {
	t.Helper()
	if !tensor.SameShape(a, b) {
		t.Fatalf("shape mismatch %v vs %v", a.Shape(), b.Shape())
	}
	var m float64
	for i, v := range a.Data() {
		d := float64(v - b.Data()[i])
		if d < 0 {
			d = -d
		}
		if d > m {
			m = d
		}
	}
	return m
}

// TestParallelBackendConformance asserts the dataflow scheduler produces
// the same outputs and parameter gradients as the sequential reference on
// every model in internal/models, with and without the tensor arena. Run
// under -race in CI this also exercises the scheduler's synchronization.
func TestParallelBackendConformance(t *testing.T) {
	const tol = 1e-5
	for name, m := range conformanceModels() {
		t.Run(name, func(t *testing.T) {
			feeds := feedsFor(m, 4, 11)

			seq := MustNew(m)
			variants := map[string]*Executor{
				"parallel":       MustNew(m, WithBackend(NewParallelBackend(nil))),
				"parallel+arena": MustNew(m, WithBackend(NewParallelBackend(nil)), WithArena(tensor.NewArena())),
			}

			refOut, err := seq.Inference(context.Background(), feeds)
			if err != nil {
				t.Fatal(err)
			}
			for vname, par := range variants {
				for pass := 0; pass < 3; pass++ { // repeat to exercise arena reuse
					got, err := par.Inference(context.Background(), feeds)
					if err != nil {
						t.Fatalf("%s: %v", vname, err)
					}
					for oname, ref := range refOut {
						g, ok := got[oname]
						if !ok {
							t.Fatalf("%s: missing output %q", vname, oname)
						}
						if d := maxAbsDiff(t, ref, g); d > tol {
							t.Fatalf("%s pass %d: output %q diverges: max |Δ| = %g", vname, pass, oname, d)
						}
					}
				}
			}

			// Gradient conformance through InferenceAndBackprop.
			if _, err := seq.InferenceAndBackprop(context.Background(), feeds, "loss"); err != nil {
				t.Fatal(err)
			}
			for vname, par := range variants {
				if _, err := par.InferenceAndBackprop(context.Background(), feeds, "loss"); err != nil {
					t.Fatalf("%s: %v", vname, err)
				}
				refGrads := seq.Network().Gradients()
				gotGrads := par.Network().Gradients()
				if len(refGrads) == 0 || len(refGrads) != len(gotGrads) {
					t.Fatalf("%s: gradient count %d vs %d", vname, len(refGrads), len(gotGrads))
				}
				for i, pg := range refGrads {
					if d := maxAbsDiff(t, pg.Grad, gotGrads[i].Grad); d > tol {
						t.Fatalf("%s: gradient %q diverges: max |Δ| = %g", vname, pg.Name, d)
					}
				}
			}
		})
	}
}

// TestArenaRecyclesActivations asserts that steady-state inference through
// an arena actually reuses buffers instead of allocating fresh ones.
func TestArenaRecyclesActivations(t *testing.T) {
	ar := tensor.NewArena()
	m := models.LeNet(models.Config{Classes: 10, Channels: 1, Height: 28, Width: 28, WithHead: true, Seed: 3})
	e := MustNew(m, WithArena(ar))
	feeds := feedsFor(m, 2, 5)
	for i := 0; i < 4; i++ {
		if _, err := e.Inference(context.Background(), feeds); err != nil {
			t.Fatal(err)
		}
	}
	st := ar.Stats()
	if st.Gets == 0 {
		t.Fatal("arena saw no allocations — operators not wired to the allocator")
	}
	if st.Hits == 0 {
		t.Fatalf("arena never recycled a buffer across %d passes (gets=%d)", 4, st.Gets)
	}
	t.Logf("arena traffic: %d gets, %d hits (%.0f%% recycled)",
		st.Gets, st.Hits, 100*float64(st.Hits)/float64(st.Gets))
}

// TestBackendByName covers the CLI selector.
func TestBackendByName(t *testing.T) {
	for _, tc := range []struct{ in, want string }{
		{"", "sequential"}, {"sequential", "sequential"}, {"parallel", "parallel"},
	} {
		b, err := BackendByName(tc.in)
		if err != nil {
			t.Fatal(err)
		}
		if b.Name() != tc.want {
			t.Fatalf("BackendByName(%q) = %q", tc.in, b.Name())
		}
	}
	if _, err := BackendByName("gpu"); err == nil {
		t.Fatal("expected error for unknown backend")
	}
}

// TestParallelBackendErrorPropagates asserts a missing feed surfaces as an
// error, not a hang, under the dataflow scheduler.
func TestParallelBackendErrorPropagates(t *testing.T) {
	m := models.MLP(models.Config{Classes: 4, Channels: 1, Height: 4, Width: 4, WithHead: true, Seed: 1}, 8)
	e := MustNew(m, WithBackend(NewParallelBackend(nil)))
	_, err := e.Inference(context.Background(), map[string]*tensor.Tensor{}) // no "x", no "labels"
	if err == nil {
		t.Fatal("expected missing-feed error")
	}
	if got := fmt.Sprint(err); got == "" {
		t.Fatal("empty error")
	}
}
