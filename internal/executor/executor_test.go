package executor

import (
	"context"
	"errors"
	"math"
	"testing"
	"time"

	"deep500/internal/graph"
	"deep500/internal/kernels"
	"deep500/internal/tensor"
)

// xorModel builds a 2-layer MLP for the XOR problem with a fused
// softmax-cross-entropy loss.
func xorModel() *graph.Model {
	m := graph.NewModel("xor")
	rng := tensor.NewRNG(7)
	m.AddInput("x", -1, 2)
	m.AddInput("labels", -1)
	m.AddInitializer("w1", tensor.XavierInit(rng, 2, 8, 2, 8))
	m.AddInitializer("b1", tensor.New(8))
	m.AddInitializer("w2", tensor.XavierInit(rng, 8, 2, 8, 2))
	m.AddInitializer("b2", tensor.New(2))
	m.AddNode(graph.NewNode("Gemm", "fc1", []string{"x", "w1", "b1"}, []string{"h1"}))
	m.AddNode(graph.NewNode("Tanh", "act", []string{"h1"}, []string{"h2"}))
	m.AddNode(graph.NewNode("Gemm", "fc2", []string{"h2", "w2", "b2"}, []string{"logits"}))
	m.AddNode(graph.NewNode("SoftmaxCrossEntropy", "loss", []string{"logits", "labels"}, []string{"l", "probs"}))
	m.AddNode(graph.NewNode("Accuracy", "acc", []string{"logits", "labels"}, []string{"a"}))
	m.AddOutput("l")
	m.AddOutput("a")
	return m
}

func xorData() (x, labels *tensor.Tensor) {
	x = tensor.From([]float32{0, 0, 0, 1, 1, 0, 1, 1}, 4, 2)
	labels = tensor.From([]float32{0, 1, 1, 0}, 4)
	return
}

func TestInferenceProducesOutputs(t *testing.T) {
	e := MustNew(xorModel())
	x, labels := xorData()
	out, err := e.Inference(context.Background(), map[string]*tensor.Tensor{"x": x, "labels": labels})
	if err != nil {
		t.Fatal(err)
	}
	if out["l"] == nil || out["a"] == nil {
		t.Fatalf("missing outputs: %v", out)
	}
	if math.Abs(float64(out["l"].Data()[0])-math.Log(2)) > 0.5 {
		t.Fatalf("initial loss %v far from ln2", out["l"].Data()[0])
	}
}

func TestMissingFeedError(t *testing.T) {
	e := MustNew(xorModel())
	x, _ := xorData()
	if _, err := e.Inference(context.Background(), map[string]*tensor.Tensor{"x": x}); err == nil {
		t.Fatal("expected error on missing feed")
	}
}

func TestBackpropGradientsAvailable(t *testing.T) {
	e := MustNew(xorModel())
	x, labels := xorData()
	if _, err := e.InferenceAndBackprop(context.Background(), map[string]*tensor.Tensor{"x": x, "labels": labels}, "l"); err != nil {
		t.Fatal(err)
	}
	grads := e.Network().Gradients()
	if len(grads) != 4 {
		t.Fatalf("want 4 parameter gradients, got %d", len(grads))
	}
	var total float64
	for _, pg := range grads {
		if !tensor.ShapeEq(pg.Grad.Shape(), pg.Param.Shape()) {
			t.Fatalf("grad shape %v != param shape %v", pg.Grad.Shape(), pg.Param.Shape())
		}
		total += pg.Grad.Norm2()
	}
	if total == 0 {
		t.Fatal("all gradients zero")
	}
}

// TestXORLearns trains XOR to 100% accuracy with plain SGD: an end-to-end
// integration test of graph, ops and executor.
func TestXORLearns(t *testing.T) {
	e := MustNew(xorModel())
	x, labels := xorData()
	feeds := map[string]*tensor.Tensor{"x": x, "labels": labels}
	lr := float32(0.5)
	var acc float32
	for it := 0; it < 800; it++ {
		out, err := e.InferenceAndBackprop(context.Background(), feeds, "l")
		if err != nil {
			t.Fatal(err)
		}
		for _, pg := range e.Network().Gradients() {
			kernels.SGDFused(pg.Param.Data(), pg.Grad.Data(), lr)
		}
		acc = out["a"].Data()[0]
		if acc == 1 && it > 50 {
			break
		}
	}
	if acc != 1 {
		t.Fatalf("XOR did not converge; final accuracy %v", acc)
	}
}

func TestEventsFire(t *testing.T) {
	e := MustNew(xorModel())
	var ops, bops int
	var infDur, bpDur time.Duration
	e.Events = &Events{
		BeforeOp:        func(n *graph.Node) { ops++ },
		AfterOp:         func(n *graph.Node, d time.Duration) {},
		AfterBackwardOp: func(n *graph.Node, d time.Duration) { bops++ },
		AfterInference:  func(d time.Duration) { infDur = d },
		AfterBackprop:   func(d time.Duration) { bpDur = d },
	}
	x, labels := xorData()
	if _, err := e.InferenceAndBackprop(context.Background(), map[string]*tensor.Tensor{"x": x, "labels": labels}, "l"); err != nil {
		t.Fatal(err)
	}
	if ops != 5 {
		t.Fatalf("forward hooks fired %d times, want 5", ops)
	}
	// Accuracy node is off the loss path, so only 4 backward ops.
	if bops != 4 {
		t.Fatalf("backward hooks fired %d times, want 4", bops)
	}
	if infDur <= 0 || bpDur <= 0 {
		t.Fatal("durations not reported")
	}
}

func TestEarlyStop(t *testing.T) {
	e := MustNew(xorModel())
	count := 0
	e.Events = &Events{
		AfterOp: func(n *graph.Node, d time.Duration) { count++ },
		Stop:    func() bool { return count >= 2 },
	}
	x, labels := xorData()
	_, err := e.Inference(context.Background(), map[string]*tensor.Tensor{"x": x, "labels": labels})
	if err != nil {
		t.Fatal(err)
	}
	if count > 2 {
		t.Fatalf("executed %d ops after stop", count)
	}
}

func TestEventMerge(t *testing.T) {
	var a, b int
	ev := Merge(&Events{BeforeInference: func() { a++ }}, &Events{BeforeInference: func() { b++ }})
	ev.BeforeInference()
	if a != 1 || b != 1 {
		t.Fatal("merged hooks not both called")
	}
	if Merge(nil, ev) != ev || Merge(ev, nil) != ev {
		t.Fatal("nil merge should return the other side")
	}
}

func TestMemoryModelOOM(t *testing.T) {
	m := NewMemoryModel(100)
	if err := m.Alloc(60); err != nil {
		t.Fatal(err)
	}
	err := m.Alloc(60)
	var oom *OOMError
	if !errors.As(err, &oom) {
		t.Fatalf("want OOMError, got %v", err)
	}
	m.Free(60)
	if err := m.Alloc(90); err != nil {
		t.Fatal(err)
	}
	if m.Peak() != 90 {
		t.Fatalf("peak = %d", m.Peak())
	}
}

func TestExecutorOOMAndRecovery(t *testing.T) {
	model := xorModel()
	e := MustNew(model)
	e.Memory = NewMemoryModel(64) // absurdly small: first activation must fail
	x, labels := xorData()
	_, err := e.Inference(context.Background(), map[string]*tensor.Tensor{"x": x, "labels": labels})
	var oom *OOMError
	if !errors.As(err, &oom) {
		t.Fatalf("want OOM, got %v", err)
	}
	if e.Memory.Used() != 0 {
		t.Fatalf("memory leaked after OOM: %d", e.Memory.Used())
	}
	// Enough memory: same executor succeeds.
	e.Memory = NewMemoryModel(1 << 20)
	if _, err := e.Inference(context.Background(), map[string]*tensor.Tensor{"x": x, "labels": labels}); err != nil {
		t.Fatal(err)
	}
	if e.Memory.Used() != 0 {
		t.Fatalf("activations not freed: %d", e.Memory.Used())
	}
	if e.Memory.Peak() == 0 {
		t.Fatal("peak not recorded")
	}
}

func TestFLOPCounting(t *testing.T) {
	e := MustNew(xorModel())
	x, labels := xorData()
	if _, err := e.Inference(context.Background(), map[string]*tensor.Tensor{"x": x, "labels": labels}); err != nil {
		t.Fatal(err)
	}
	// fc1: 2*4*2*8 = 128, fc2: 2*4*8*2 = 128, plus elementwise terms
	if e.LastForwardFLOPs < 256 {
		t.Fatalf("FLOPs = %d, want ≥ 256", e.LastForwardFLOPs)
	}
}

func TestFeedFetchTensor(t *testing.T) {
	e := MustNew(xorModel())
	w, err := e.Network().FetchTensor("w1")
	if err != nil {
		t.Fatal(err)
	}
	repl := tensor.Full(0.5, w.Shape()...)
	e.Network().FeedTensor("w1", repl)
	got, _ := e.Network().FetchTensor("w1")
	if got.Data()[0] != 0.5 {
		t.Fatal("feed did not replace tensor")
	}
	if _, err := e.Network().FetchTensor("nope"); err == nil {
		t.Fatal("expected error for unknown tensor")
	}
}

func TestSetTrainingPropagates(t *testing.T) {
	m := graph.NewModel("dp")
	m.AddInput("x", -1, 4)
	m.AddNode(graph.NewNode("Dropout", "d", []string{"x"}, []string{"y"},
		graph.FloatAttr("ratio", 0.5), graph.IntAttr("seed", 3)))
	m.AddOutput("y")
	e := MustNew(m)
	x := tensor.Full(1, 16, 4)
	e.SetTraining(false)
	out, _ := e.Inference(context.Background(), map[string]*tensor.Tensor{"x": x})
	if !tensor.AllClose(out["y"], x, 0, 0) {
		t.Fatal("inference dropout should be identity")
	}
	e.SetTraining(true)
	out, _ = e.Inference(context.Background(), map[string]*tensor.Tensor{"x": x})
	if tensor.AllClose(out["y"], x, 0, 0) {
		t.Fatal("training dropout should perturb")
	}
}

func TestOpOverheadSlowsExecution(t *testing.T) {
	x, labels := xorData()
	feeds := map[string]*tensor.Tensor{"x": x, "labels": labels}
	fast := MustNew(xorModel())
	slow := MustNew(xorModel())
	slow.OpOverhead = 2 * time.Millisecond
	t0 := time.Now()
	fast.Inference(context.Background(), feeds)
	fastDur := time.Since(t0)
	t0 = time.Now()
	slow.Inference(context.Background(), feeds)
	slowDur := time.Since(t0)
	if slowDur < fastDur+5*time.Millisecond {
		t.Fatalf("overhead not applied: fast %v slow %v", fastDur, slowDur)
	}
}
