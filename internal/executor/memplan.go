package executor

import (
	"sync/atomic"

	"deep500/internal/compile"
	"deep500/internal/graph"
	"deep500/internal/ops"
	"deep500/internal/tensor"
)

// This file wires the compile pipeline's static memory plan
// (compile.PlanMemory) into the executor. With WithMemPlan enabled the
// first inference at a given set of feed shapes runs through the ordinary
// allocation path while the executor observes every activation's concrete
// shape; it then builds a plan — one slab, a fixed offset per intermediate
// — and all subsequent passes at those shapes write activations straight
// into the slab: zero steady-state allocations per forward pass.
//
// The plan is forward-only. Training passes (InferenceAndBackprop) bypass
// it, because backpropagation reads forward activations after the nodes
// that the plan considers their last consumers — slab reuse would hand the
// backward pass clobbered data. The parallel backend stays safe under the
// plan through the anti-dependency edges PlanMemory emits, merged into the
// scheduler's dependency graph by planDeps.

// planRuntime is the executor-side state of one installed memory plan,
// specialized to a fixed set of feed shapes.
type planRuntime struct {
	plan *compile.MemPlan
	// slab is the single backing array every planned activation points into.
	slab []float32
	// feedShapes are the feed shapes the plan was specialized to; a pass
	// with different shapes invalidates the plan.
	feedShapes map[string][]int
	// allocs maps each node to the allocator that hands out its planned
	// output tensors in declaration order.
	allocs map[*graph.Node]*planAlloc
	// deps is the plan-augmented dependency graph for the parallel backend
	// (base dataflow edges plus the plan's anti-dependency edges).
	deps *depInfo
	// miss is set when a planned pass had to fall back (a shape deviated
	// from the profile); the executor drops and rebuilds the plan.
	miss atomic.Bool
}

// matches reports whether feeds have exactly the shapes the plan was built
// for. It allocates nothing.
func (rt *planRuntime) matches(feeds map[string]*tensor.Tensor) bool {
	if len(feeds) != len(rt.feedShapes) {
		return false
	}
	for name, t := range feeds {
		s, ok := rt.feedShapes[name]
		if !ok || !shapeEq(s, t.Shape()) {
			return false
		}
	}
	return true
}

func shapeEq(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// planAlloc implements tensor.Allocator for one node: successive Get calls
// return the node's pre-built slab-backed output tensors in order. Operators
// request outputs through newOut exactly once per declared output, in
// declaration order, which is what lets call order stand in for output
// identity. A shape mismatch (the plan is stale) or an unplanned output
// falls back to the ordinary allocator.
type planAlloc struct {
	outs     []*tensor.Tensor // one per node output; nil = unplanned
	next     int
	fallback tensor.Allocator
	miss     *atomic.Bool
}

// Get returns the next planned output tensor, zero-filled to match the
// arena allocator's contract. Steady-state calls allocate nothing.
func (p *planAlloc) Get(shape ...int) *tensor.Tensor {
	if p.next < len(p.outs) {
		t := p.outs[p.next]
		p.next++
		if t != nil {
			if shapeEq(t.Shape(), shape) {
				clear(t.Data())
				return t
			}
			p.miss.Store(true) // shape drifted from the profile: plan stale
		}
	} else {
		p.miss.Store(true)
	}
	if p.fallback != nil {
		return p.fallback.Get(shape...)
	}
	return tensor.New(shape...)
}

// setPlanActive points every operator's output allocation at the plan (or
// back at the legacy arena/GC path) when the pass mode changes.
func (e *Executor) setPlanActive(active bool) {
	if active == e.planActive {
		return
	}
	e.planActive = active
	for _, n := range e.order {
		aa, ok := e.nodeOps[n].(ops.AllocatorAware)
		if !ok {
			continue
		}
		if active {
			if pa := e.planRT.allocs[n]; pa != nil {
				aa.SetAllocator(pa)
				continue
			}
		}
		if e.arena != nil {
			aa.SetAllocator(e.arena)
		} else {
			aa.SetAllocator(nil)
		}
	}
}

// dropPlan discards the installed plan (shape change or stale profile) and
// restores the legacy allocation path; the next inference re-profiles.
func (e *Executor) dropPlan() {
	e.setPlanActive(false)
	e.planRT = nil
}

// buildPlan runs the memory-planning pass over the activation sizes
// observed by the pass that just completed and installs the resulting slab.
// It is a no-op (the executor stays on the legacy path) when planning fails
// or finds nothing to plan.
func (e *Executor) buildPlan(feeds map[string]*tensor.Tensor) {
	sizes := make(map[string]int, len(e.order))
	for _, n := range e.order {
		for _, out := range n.Outputs {
			if out == "" {
				continue
			}
			if t, ok := e.values[out]; ok && t != nil {
				sizes[out] = t.Size()
			}
		}
	}
	plan, err := compile.PlanMemory(e.net.Model, sizes)
	if err != nil || len(plan.Slots) == 0 {
		return
	}
	rt := &planRuntime{
		plan:       plan,
		slab:       make([]float32, plan.SlabElems),
		feedShapes: make(map[string][]int, len(feeds)),
		allocs:     make(map[*graph.Node]*planAlloc, len(e.order)),
	}
	for name, t := range feeds {
		rt.feedShapes[name] = append([]int(nil), t.Shape()...)
	}
	var fallback tensor.Allocator
	if e.arena != nil {
		fallback = e.arena
	}
	for _, n := range e.order {
		pa := &planAlloc{fallback: fallback, miss: &rt.miss}
		for _, out := range n.Outputs {
			var t *tensor.Tensor
			if slot, ok := plan.Slots[out]; ok {
				if v := e.values[out]; v != nil {
					data := rt.slab[slot.Offset : slot.Offset+slot.Elems : slot.Offset+slot.Elems]
					t = tensor.From(data, v.Shape()...)
				}
			}
			pa.outs = append(pa.outs, t)
		}
		rt.allocs[n] = pa
	}
	rt.deps = e.planDeps(plan)
	e.planRT = rt
}

// planDeps returns the dependency graph the parallel backend must use while
// the plan is active: the base dataflow edges plus one edge per
// anti-dependency, so a node that writes into a recycled slab region cannot
// start before the region's previous users have finished.
func (e *Executor) planDeps(plan *compile.MemPlan) *depInfo {
	base := e.depGraph()
	if len(plan.Reuse) == 0 {
		return base
	}
	d := &depInfo{
		waits:     make(map[*graph.Node]int, len(base.waits)),
		consumers: make(map[*graph.Node][]*graph.Node, len(base.consumers)),
	}
	for n, w := range base.waits {
		d.waits[n] = w
	}
	for n, cs := range base.consumers {
		d.consumers[n] = append([]*graph.Node(nil), cs...)
	}
	byName := make(map[string]*graph.Node, len(e.order))
	for _, n := range e.order {
		byName[n.Name] = n
	}
	type edge struct{ from, to *graph.Node }
	seen := make(map[edge]bool, len(plan.Reuse))
	for n, cs := range d.consumers {
		for _, c := range cs {
			seen[edge{n, c}] = true
		}
	}
	for _, ad := range plan.Reuse {
		from, to := byName[ad.Before], byName[ad.After]
		if from == nil || to == nil || from == to || seen[edge{from, to}] {
			continue
		}
		seen[edge{from, to}] = true
		d.consumers[from] = append(d.consumers[from], to)
		d.waits[to]++
	}
	for _, n := range e.order {
		if d.waits[n] == 0 {
			d.roots = append(d.roots, n)
		}
	}
	return d
}

// passDeps selects the dependency graph for the current pass: the
// plan-augmented graph while the plan is active, the base graph otherwise.
func (e *Executor) passDeps() *depInfo {
	if e.planActive && e.planRT != nil && e.planRT.deps != nil {
		return e.planRT.deps
	}
	return e.depGraph()
}

// MemPlan returns the installed memory plan, or nil when none is active
// (planning disabled, or no planned pass has run yet). Benchmarks use it to
// report slab footprint and reuse ratio.
func (e *Executor) MemPlan() *compile.MemPlan {
	if e.planRT == nil {
		return nil
	}
	return e.planRT.plan
}
