package executor

import (
	"context"
	"testing"

	"deep500/internal/compile"
	"deep500/internal/models"
	"deep500/internal/tensor"
)

// TestMemPlanZeroAllocs is the acceptance gate of the static memory plan:
// once the plan is installed, a steady-state forward pass must allocate
// nothing — every activation lands in the pre-sized slab, every bookkeeping
// structure is reused.
func TestMemPlanZeroAllocs(t *testing.T) {
	m := models.MLP(models.Config{Classes: 10, Channels: 1, Height: 8, Width: 8, Seed: 7}, 32, 16)
	e := MustNew(m, WithOptimize(compile.Defaults()), WithMemPlan(true))
	rng := tensor.NewRNG(11)
	feeds := map[string]*tensor.Tensor{"x": tensor.RandNormal(rng, 0, 1, 4, 1, 8, 8)}
	ctx := context.Background()

	// Pass 1 profiles and installs the plan; pass 2 settles any lazy
	// bookkeeping (cached input slices, reused maps).
	for i := 0; i < 2; i++ {
		if _, err := e.Inference(ctx, feeds); err != nil {
			t.Fatal(err)
		}
	}
	if e.MemPlan() == nil {
		t.Fatal("no memory plan installed after profiling pass")
	}

	allocs := testing.AllocsPerRun(10, func() {
		if _, err := e.Inference(ctx, feeds); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state planned forward pass allocates: %v allocs/run, want 0", allocs)
	}
}

// BenchmarkPlannedForward measures a steady-state planned forward pass;
// run with -benchmem to confirm the zero-allocation property.
func BenchmarkPlannedForward(b *testing.B) {
	m := models.MLP(models.Config{Classes: 10, Channels: 1, Height: 8, Width: 8, Seed: 7}, 32, 16)
	e := MustNew(m, WithOptimize(compile.Defaults()), WithMemPlan(true))
	feeds := map[string]*tensor.Tensor{"x": tensor.RandNormal(tensor.NewRNG(11), 0, 1, 4, 1, 8, 8)}
	ctx := context.Background()
	for i := 0; i < 2; i++ {
		if _, err := e.Inference(ctx, feeds); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Inference(ctx, feeds); err != nil {
			b.Fatal(err)
		}
	}
}

// TestMemPlanRebuildOnShapeChange asserts a feed-shape change drops the
// stale plan, re-profiles at the new shapes, and keeps producing outputs
// identical to an unplanned executor.
func TestMemPlanRebuildOnShapeChange(t *testing.T) {
	const tol = 1e-6
	m := models.MLP(models.Config{Classes: 10, Channels: 1, Height: 8, Width: 8, Seed: 7}, 32, 16)
	planned := MustNew(m, WithMemPlan(true))
	ref := MustNew(m)
	ctx := context.Background()

	for _, batch := range []int{2, 2, 4, 4, 2} {
		rng := tensor.NewRNG(uint64(batch))
		feeds := map[string]*tensor.Tensor{"x": tensor.RandNormal(rng, 0, 1, batch, 1, 8, 8)}
		got, err := planned.Inference(ctx, feeds)
		if err != nil {
			t.Fatalf("batch %d: %v", batch, err)
		}
		want, err := ref.Inference(ctx, feeds)
		if err != nil {
			t.Fatal(err)
		}
		for name, w := range want {
			g, ok := got[name]
			if !ok {
				t.Fatalf("batch %d: missing output %q", batch, name)
			}
			if d := maxAbsDiff(t, w, g); d > tol {
				t.Fatalf("batch %d: output %q diverges: max |Δ| = %g", batch, name, d)
			}
		}
	}
	if planned.MemPlan() == nil {
		t.Fatal("no plan installed after steady shapes")
	}
}

// TestMemPlanReusesSlab asserts the planner actually overlaps intermediate
// lifetimes on a deep model — the slab must be smaller than the sum of all
// planned activations.
func TestMemPlanReusesSlab(t *testing.T) {
	m := models.LeNet(models.Config{Classes: 10, Channels: 1, Height: 28, Width: 28, Seed: 3})
	e := MustNew(m, WithOptimize(compile.Defaults()), WithMemPlan(true))
	feeds := map[string]*tensor.Tensor{"x": tensor.RandNormal(tensor.NewRNG(5), 0, 1, 2, 1, 28, 28)}
	if _, err := e.Inference(context.Background(), feeds); err != nil {
		t.Fatal(err)
	}
	plan := e.MemPlan()
	if plan == nil {
		t.Fatal("no plan installed")
	}
	if plan.SlabElems >= plan.NoReuseElems {
		t.Fatalf("planner found no reuse on LeNet: slab %d elems, no-reuse %d", plan.SlabElems, plan.NoReuseElems)
	}
	t.Logf("%s", plan)
}

// TestMemPlanTrainingBypass asserts the plan never poisons a training pass:
// gradients after planned inference passes match a plan-free executor.
func TestMemPlanTrainingBypass(t *testing.T) {
	const tol = 1e-5
	m := models.MLP(models.Config{Classes: 10, Channels: 1, Height: 8, Width: 8, WithHead: true, Seed: 7}, 32, 16)
	planned := MustNew(m, WithMemPlan(true))
	ref := MustNew(m)
	feeds := feedsFor(m, 4, 11)
	ctx := context.Background()

	// Install the plan with inference passes, then train through it.
	for i := 0; i < 2; i++ {
		if _, err := planned.Inference(ctx, feeds); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := planned.InferenceAndBackprop(ctx, feeds, "loss"); err != nil {
		t.Fatal(err)
	}
	if _, err := ref.InferenceAndBackprop(ctx, feeds, "loss"); err != nil {
		t.Fatal(err)
	}
	refGrads := ref.Network().Gradients()
	gotGrads := planned.Network().Gradients()
	if len(refGrads) == 0 || len(refGrads) != len(gotGrads) {
		t.Fatalf("gradient count %d vs %d", len(gotGrads), len(refGrads))
	}
	for i, pg := range refGrads {
		if d := maxAbsDiff(t, pg.Grad, gotGrads[i].Grad); d > tol {
			t.Fatalf("gradient %q diverges after planned passes: max |Δ| = %g", pg.Name, d)
		}
	}
	// And the plan still works for the next inference.
	if _, err := planned.Inference(ctx, feeds); err != nil {
		t.Fatal(err)
	}
}
