package executor

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"deep500/internal/graph"
	"deep500/internal/tensor"
)

// wideModel builds a graph with many independent Relu towers so the
// parallel scheduler has real concurrency to cancel into.
func wideModel(towers, depth int) *graph.Model {
	m := graph.NewModel("wide")
	m.AddInput("x", -1, 8)
	var outs []string
	for b := 0; b < towers; b++ {
		prev := "x"
		for d := 0; d < depth; d++ {
			out := nodeName("t", b, d)
			m.AddNode(graph.NewNode("Relu", out+"_n", []string{prev}, []string{out}))
			prev = out
		}
		outs = append(outs, prev)
	}
	m.AddNode(graph.NewNode("Sum", "merge", outs, []string{"y"}))
	m.AddOutput("y")
	return m
}

func nodeName(p string, b, d int) string {
	return p + string(rune('a'+b)) + string(rune('a'+d))
}

// cancelAfterOps returns Events whose BeforeOp hook cancels the context
// after n operator dispatches — a deterministic mid-graph cancellation.
func cancelAfterOps(cancel context.CancelFunc, n int64) *Events {
	var seen int64
	return &Events{BeforeOp: func(*graph.Node) {
		if atomic.AddInt64(&seen, 1) == n {
			cancel()
		}
	}}
}

func TestSequentialCancelMidGraph(t *testing.T) {
	e := MustNew(wideModel(4, 6))
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	e.Events = cancelAfterOps(cancel, 3)
	feeds := map[string]*tensor.Tensor{"x": tensor.Full(1, 2, 8)}
	_, err := e.Inference(ctx, feeds)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	// The executor must stay usable for the next (uncancelled) pass.
	e.Events = nil
	if _, err := e.Inference(context.Background(), feeds); err != nil {
		t.Fatalf("pass after cancellation failed: %v", err)
	}
}

func TestParallelCancelMidGraph(t *testing.T) {
	e := MustNew(wideModel(6, 8), WithBackend(NewParallelBackend(nil)))
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	e.Events = cancelAfterOps(cancel, 5)
	feeds := map[string]*tensor.Tensor{"x": tensor.Full(1, 2, 8)}
	_, err := e.Inference(ctx, feeds)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	e.Events = nil
	if _, err := e.Inference(context.Background(), feeds); err != nil {
		t.Fatalf("pass after cancellation failed: %v", err)
	}
}

func TestExpiredDeadlineRejectsPass(t *testing.T) {
	for name, e := range map[string]*Executor{
		"sequential": MustNew(wideModel(2, 2)),
		"parallel":   MustNew(wideModel(2, 2), WithBackend(NewParallelBackend(nil))),
	} {
		ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
		defer cancel()
		if _, err := e.Inference(ctx, map[string]*tensor.Tensor{"x": tensor.Full(1, 2, 8)}); !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("%s: want DeadlineExceeded, got %v", name, err)
		}
	}
}

func TestBackpropCancelBetweenNodes(t *testing.T) {
	e := MustNew(xorModel())
	e.SetTraining(true)
	x, labels := xorData()
	feeds := map[string]*tensor.Tensor{"x": x, "labels": labels}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	// Cancel after the forward pass completes: the backward loop's ctx
	// check must abort backprop.
	e.Events = &Events{BeforeBackprop: cancel}
	_, err := e.InferenceAndBackprop(ctx, feeds, "l")
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled from backward pass, got %v", err)
	}
}
