package executor

import (
	"time"

	"deep500/internal/graph"
)

// Events is the hook set a graph executor invokes during complex actions
// (paper §IV-D: "Events are user-specified hooks called at certain points
// during backpropagation and training"). Any field may be nil. A metric can
// implement both the metrics.TestMetric interface and populate an Events
// value, exactly as the paper suggests extending TestMetric and Event
// together.
type Events struct {
	// BeforeOp/AfterOp wrap each node execution (forward direction).
	BeforeOp func(n *graph.Node)
	AfterOp  func(n *graph.Node, d time.Duration)
	// BeforeBackwardOp/AfterBackwardOp wrap each node's backward execution.
	BeforeBackwardOp func(n *graph.Node)
	AfterBackwardOp  func(n *graph.Node, d time.Duration)
	// BeforeInference/AfterInference wrap a whole forward pass.
	BeforeInference func()
	AfterInference  func(d time.Duration)
	// BeforeBackprop/AfterBackprop wrap a whole backward pass.
	BeforeBackprop func()
	AfterBackprop  func(d time.Duration)
	// Stop, if non-nil, is polled between nodes; returning true aborts the
	// pass early (the paper's "early stopping condition" example).
	Stop func() bool
}

// Merge returns an Events value that invokes the hooks of both a and b.
func Merge(a, b *Events) *Events {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	out := &Events{}
	out.BeforeOp = chain1(a.BeforeOp, b.BeforeOp)
	out.AfterOp = chain2(a.AfterOp, b.AfterOp)
	out.BeforeBackwardOp = chain1(a.BeforeBackwardOp, b.BeforeBackwardOp)
	out.AfterBackwardOp = chain2(a.AfterBackwardOp, b.AfterBackwardOp)
	out.BeforeInference = chain0(a.BeforeInference, b.BeforeInference)
	out.AfterInference = chainD(a.AfterInference, b.AfterInference)
	out.BeforeBackprop = chain0(a.BeforeBackprop, b.BeforeBackprop)
	out.AfterBackprop = chainD(a.AfterBackprop, b.AfterBackprop)
	switch {
	case a.Stop != nil && b.Stop != nil:
		out.Stop = func() bool { return a.Stop() || b.Stop() }
	case a.Stop != nil:
		out.Stop = a.Stop
	default:
		out.Stop = b.Stop
	}
	return out
}

func chain0(f, g func()) func() {
	if f == nil {
		return g
	}
	if g == nil {
		return f
	}
	return func() { f(); g() }
}

func chainD(f, g func(time.Duration)) func(time.Duration) {
	if f == nil {
		return g
	}
	if g == nil {
		return f
	}
	return func(d time.Duration) { f(d); g(d) }
}

func chain1(f, g func(*graph.Node)) func(*graph.Node) {
	if f == nil {
		return g
	}
	if g == nil {
		return f
	}
	return func(n *graph.Node) { f(n); g(n) }
}

func chain2(f, g func(*graph.Node, time.Duration)) func(*graph.Node, time.Duration) {
	if f == nil {
		return g
	}
	if g == nil {
		return f
	}
	return func(n *graph.Node, d time.Duration) { f(n, d); g(n, d) }
}
