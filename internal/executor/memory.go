package executor

import "fmt"

// OOMError reports that a device memory allocation exceeded capacity — the
// condition the paper's Level 1 micro-batching experiment (§V-C) provokes
// with AlexNet at minibatch 468 and then eliminates via the graph transform.
type OOMError struct {
	Requested int64
	Used      int64
	Capacity  int64
}

func (e *OOMError) Error() string {
	return fmt.Sprintf("executor: out of device memory: requested %d B with %d/%d B in use",
		e.Requested, e.Used, e.Capacity)
}

// MemoryModel tracks device-memory usage against a capacity, emulating an
// accelerator allocator. Capacity ≤ 0 means unlimited.
type MemoryModel struct {
	Capacity int64
	// AllocOverhead multiplies every allocation, modeling allocator
	// fragmentation and framework bookkeeping (1.0 = none).
	AllocOverhead float64
	used, peak    int64
}

// NewMemoryModel returns a tracker with the given capacity in bytes.
func NewMemoryModel(capacity int64) *MemoryModel {
	return &MemoryModel{Capacity: capacity, AllocOverhead: 1.0}
}

// Alloc records an allocation, failing with *OOMError when it would exceed
// capacity.
func (m *MemoryModel) Alloc(bytes int64) error {
	if m == nil {
		return nil
	}
	eff := int64(float64(bytes) * m.AllocOverhead)
	if m.Capacity > 0 && m.used+eff > m.Capacity {
		return &OOMError{Requested: eff, Used: m.used, Capacity: m.Capacity}
	}
	m.used += eff
	if m.used > m.peak {
		m.peak = m.used
	}
	return nil
}

// Free records a deallocation.
func (m *MemoryModel) Free(bytes int64) {
	if m == nil {
		return
	}
	m.used -= int64(float64(bytes) * m.AllocOverhead)
	if m.used < 0 {
		m.used = 0
	}
}

// Used returns the bytes currently allocated.
func (m *MemoryModel) Used() int64 {
	if m == nil {
		return 0
	}
	return m.used
}

// Peak returns the high-water mark.
func (m *MemoryModel) Peak() int64 {
	if m == nil {
		return 0
	}
	return m.peak
}

// Reset zeroes usage and peak.
func (m *MemoryModel) Reset() {
	if m == nil {
		return
	}
	m.used, m.peak = 0, 0
}
