package executor

import (
	"context"
	"testing"
	"time"

	"deep500/internal/obs/trace"
	"deep500/internal/tensor"
)

// traceCtx builds a retain-everything tracer and a context carrying a
// fresh root span.
func traceCtx(t *testing.T) (*trace.Tracer, *trace.Span, context.Context) {
	t.Helper()
	tr := trace.New(trace.Options{Seed: 9, SampleEvery: 1, SlowThreshold: time.Hour, Process: "test"})
	root := tr.StartRoot("pass")
	return tr, root, trace.NewContext(context.Background(), root)
}

// TestTracedForwardOpSpans: a traced inference yields one pass span plus
// one op span per executed node, parented correctly, in both backends.
func TestTracedForwardOpSpans(t *testing.T) {
	x, labels := xorData()
	feeds := map[string]*tensor.Tensor{"x": x, "labels": labels}
	for name, opts := range map[string][]Option{
		"sequential": nil,
		"parallel":   {WithBackend(NewParallelBackend(nil))},
	} {
		t.Run(name, func(t *testing.T) {
			e := MustNew(xorModel(), opts...)
			tr, root, ctx := traceCtx(t)
			if _, err := e.Inference(ctx, feeds); err != nil {
				t.Fatal(err)
			}
			root.End()
			td, ok := tr.Recorder().Trace(root.TraceID())
			if !ok {
				t.Fatal("trace not retained")
			}
			if err := trace.VerifyTree(td); err != nil {
				t.Fatal(err)
			}
			var fwd trace.SpanData
			ops := 0
			for _, s := range td.Spans {
				switch {
				case s.Name == "exec.forward":
					fwd = s
				case len(s.Name) > 3 && s.Name[:3] == "op:":
					ops++
				}
			}
			if fwd.ID == 0 || fwd.Parent != root.SpanID() {
				t.Fatalf("pass span %+v not parented on root", fwd)
			}
			if want := len(e.order); ops != want {
				t.Fatalf("%d op spans, want %d", ops, want)
			}
			attrs := map[string]any{}
			for _, a := range fwd.Attrs {
				attrs[a.Key] = a.Value
			}
			if attrs["backend"] != name {
				t.Fatalf("pass span backend attr %v, want %q", attrs["backend"], name)
			}
		})
	}
}

// TestTracedBackwardSpans: a traced training pass adds the backward loop
// span with per-node backward op spans.
func TestTracedBackwardSpans(t *testing.T) {
	e := MustNew(xorModel())
	x, labels := xorData()
	tr, root, ctx := traceCtx(t)
	if _, err := e.InferenceAndBackprop(ctx, map[string]*tensor.Tensor{"x": x, "labels": labels}, "l"); err != nil {
		t.Fatal(err)
	}
	root.End()
	td, ok := tr.Recorder().Trace(root.TraceID())
	if !ok {
		t.Fatal("trace not retained")
	}
	if err := trace.VerifyTree(td); err != nil {
		t.Fatal(err)
	}
	var bwd bool
	bops := 0
	for _, s := range td.Spans {
		switch {
		case s.Name == "exec.backward":
			bwd = true
		case len(s.Name) > 7 && s.Name[:7] == "op.bwd:":
			bops++
		}
	}
	if !bwd || bops == 0 {
		t.Fatalf("backward spans missing (loop=%v, ops=%d)", bwd, bops)
	}
}

// TestUntracedPassZeroOverhead pins the disabled-tracing cost: an
// untraced context adds zero allocations to a planned steady-state pass
// (the same property TestMemPlanZeroAllocs gates, re-stated here against
// the instrumented execNode path).
func TestUntracedPassZeroOverhead(t *testing.T) {
	e := MustNew(xorModel())
	x, labels := xorData()
	feeds := map[string]*tensor.Tensor{"x": x, "labels": labels}
	ctx := context.Background()
	if _, err := e.Inference(ctx, feeds); err != nil {
		t.Fatal(err)
	}
	if e.passSpan != nil {
		t.Fatal("untraced pass left a pass span behind")
	}
	// A context without a span behaves identically to Background.
	ctx2 := trace.NewContext(context.Background(), nil)
	if _, err := e.Inference(ctx2, feeds); err != nil {
		t.Fatal(err)
	}
}
