package executor

import (
	"context"
	"math"
	"testing"
	"testing/quick"

	"deep500/internal/graph"
	"deep500/internal/tensor"
)

// TestPropEndToEndGradients is the repository's strongest correctness
// property: for randomly shaped MLPs, the parameter gradients produced by
// whole-graph backpropagation must match central finite differences of the
// scalar loss. This covers the executor's gradient routing (accumulation
// across consumers, loss seeding, parameter extraction) on top of the
// per-operator checks in internal/ops.
func TestPropEndToEndGradients(t *testing.T) {
	f := func(seed uint16) bool {
		rng := tensor.NewRNG(uint64(seed) + 1000)
		hidden := rng.Intn(12) + 4
		classes := rng.Intn(3) + 2
		batch := rng.Intn(4) + 2
		side := rng.Intn(3) + 2

		// Build a smooth (tanh) MLP: ReLU kinks would poison the finite
		// differences when a perturbation flips an activation.
		feat := side * side
		m := graph.NewModel("smooth-mlp")
		m.AddInput("x", -1, 1, side, side)
		m.AddInput("labels", -1)
		wrng := tensor.NewRNG(uint64(seed) + 7)
		m.AddInitializer("w1", tensor.XavierInit(wrng, feat, hidden, feat, hidden))
		m.AddInitializer("b1", tensor.RandNormal(wrng, 0, 0.1, hidden))
		m.AddInitializer("w2", tensor.XavierInit(wrng, hidden, classes, hidden, classes))
		m.AddInitializer("b2", tensor.RandNormal(wrng, 0, 0.1, classes))
		m.AddNode(graph.NewNode("Flatten", "fl", []string{"x"}, []string{"f"}, graph.IntAttr("axis", 1)))
		m.AddNode(graph.NewNode("Gemm", "fc1", []string{"f", "w1", "b1"}, []string{"h1"}))
		m.AddNode(graph.NewNode("Tanh", "act", []string{"h1"}, []string{"h2"}))
		m.AddNode(graph.NewNode("Gemm", "fc2", []string{"h2", "w2", "b2"}, []string{"logits"}))
		m.AddNode(graph.NewNode("SoftmaxCrossEntropy", "ce", []string{"logits", "labels"}, []string{"loss", "probs"}))
		m.AddOutput("loss")
		e := MustNew(m)
		x := tensor.RandNormal(rng, 0, 1, batch, 1, side, side)
		labels := tensor.New(batch)
		for i := 0; i < batch; i++ {
			labels.Data()[i] = float32(rng.Intn(classes))
		}
		feeds := map[string]*tensor.Tensor{"x": x, "labels": labels}

		if _, err := e.InferenceAndBackprop(context.Background(), feeds, "loss"); err != nil {
			t.Log(err)
			return false
		}
		lossAt := func() float64 {
			out, err := e.Inference(context.Background(), feeds)
			if err != nil {
				return math.NaN()
			}
			return float64(out["loss"].Data()[0])
		}
		const h = 1e-2
		for _, pg := range e.Network().Gradients() {
			data := pg.Param.Data()
			// probe a few elements per parameter
			stride := len(data)/4 + 1
			for i := 0; i < len(data); i += stride {
				orig := data[i]
				data[i] = orig + h
				lp := lossAt()
				data[i] = orig - h
				lm := lossAt()
				data[i] = orig
				num := (lp - lm) / (2 * h)
				got := float64(pg.Grad.Data()[i])
				diff := math.Abs(num - got)
				scale := math.Max(math.Abs(num), math.Abs(got))
				if diff > 5e-3 && diff > 0.08*scale {
					t.Logf("seed %d param %s[%d]: analytic %g numeric %g", seed, pg.Name, i, got, num)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// TestGradientAccumulationAcrossConsumers checks the executor adds
// gradient contributions when one tensor feeds multiple nodes (the
// residual-connection pattern).
func TestGradientAccumulationAcrossConsumers(t *testing.T) {
	m := graph.NewModel("fanout")
	rng := tensor.NewRNG(3)
	m.AddInput("x", -1, 4)
	m.AddInitializer("w", tensor.RandNormal(rng, 0, 0.5, 4, 4))
	// y = relu(x·w) + x·w  — w's gradient must combine both paths
	m.AddNode(graph.NewNode("MatMul", "mm", []string{"x", "w"}, []string{"a"}))
	m.AddNode(graph.NewNode("Relu", "r", []string{"a"}, []string{"b"}))
	m.AddNode(graph.NewNode("Add", "add", []string{"b", "a"}, []string{"c"}))
	m.AddNode(graph.NewNode("MeanSquaredError", "mse", []string{"c", "target"}, []string{"loss"}))
	m.AddInput("target", -1, 4)
	m.AddOutput("loss")
	e := MustNew(m)
	feeds := map[string]*tensor.Tensor{
		"x":      tensor.RandNormal(rng, 0, 1, 3, 4),
		"target": tensor.RandNormal(rng, 0, 1, 3, 4),
	}
	if _, err := e.InferenceAndBackprop(context.Background(), feeds, "loss"); err != nil {
		t.Fatal(err)
	}
	w, _ := e.Network().FetchTensor("w")
	g := e.Network().Gradient("w")
	if g == nil {
		t.Fatal("no gradient for shared tensor")
	}
	const h = 1e-2
	lossAt := func() float64 {
		out, err := e.Inference(context.Background(), feeds)
		if err != nil {
			t.Fatal(err)
		}
		return float64(out["loss"].Data()[0])
	}
	for i := 0; i < w.Size(); i += 3 {
		orig := w.Data()[i]
		w.Data()[i] = orig + h
		lp := lossAt()
		w.Data()[i] = orig - h
		lm := lossAt()
		w.Data()[i] = orig
		num := (lp - lm) / (2 * h)
		if math.Abs(num-float64(g.Data()[i])) > 6e-3 {
			t.Fatalf("w[%d]: analytic %g numeric %g (fan-out accumulation broken?)",
				i, g.Data()[i], num)
		}
	}
}
